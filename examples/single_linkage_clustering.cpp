// Single-linkage hierarchical clustering via the MST (the paper cites MST
// clustering applications in cancer detection and proteomics).
//
// Single-linkage clustering into k clusters is exactly: compute the MST of
// the complete distance graph and remove its k−1 heaviest edges.  We plant
// five well-separated Gaussian blobs in the plane and recover them.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/dendrogram.hpp"
#include "core/msf.hpp"
#include "pprim/rng.hpp"

namespace {

using namespace smp;
using namespace smp::graph;

struct Pt {
  double x, y;
  int blob;  // ground truth
};

std::vector<Pt> make_blobs(int per_blob, std::uint64_t seed) {
  const double cx[] = {0.0, 8.0, 0.5, 9.0, 4.5};
  const double cy[] = {0.0, 1.0, 7.5, 8.0, 4.0};
  Rng rng(seed);
  std::vector<Pt> pts;
  pts.reserve(static_cast<std::size_t>(per_blob) * 5);
  for (int b = 0; b < 5; ++b) {
    for (int i = 0; i < per_blob; ++i) {
      // Box-Muller for roughly Gaussian blobs with sigma 0.5.
      const double u1 = rng.next_double() + 1e-12, u2 = rng.next_double();
      const double r = 0.5 * std::sqrt(-2.0 * std::log(u1));
      pts.push_back({cx[b] + r * std::cos(6.2831853 * u2),
                     cy[b] + r * std::sin(6.2831853 * u2), b});
    }
  }
  return pts;
}

}  // namespace

int main() {
  constexpr int kPerBlob = 300;
  constexpr int kClusters = 5;
  const auto pts = make_blobs(kPerBlob, 3);
  const auto n = static_cast<VertexId>(pts.size());

  // Complete distance graph (n=1500 → ~1.1M edges; sparse solvers eat it).
  EdgeList g(n);
  g.edges.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (VertexId i = 0; i < n; ++i) {
    for (VertexId j = i + 1; j < n; ++j) {
      const double dx = pts[i].x - pts[j].x, dy = pts[i].y - pts[j].y;
      g.add_edge(i, j, std::sqrt(dx * dx + dy * dy));
    }
  }
  std::printf("clustering %u points via MST of %llu distances\n", n,
              static_cast<unsigned long long>(g.num_edges()));

  core::MsfOptions opts;
  opts.algorithm = core::Algorithm::kMstBC;  // Prim-flavoured: good on dense
  opts.threads = 4;
  const MsfResult mst = core::minimum_spanning_forest(g, opts);
  std::printf("MST weight %.3f\n", mst.total_weight);

  // Single-linkage clustering is a cut of the MST dendrogram: asking for k
  // clusters undoes the k-1 heaviest merges.
  const core::Dendrogram dendro(n, mst);
  std::size_t found = 0;
  const auto cluster = dendro.cut_into(kClusters, &found);
  std::printf("clusters found: %zu (cut height %.3f)\n", found,
              dendro.merge_height(dendro.num_merges() - kClusters));

  // Score against ground truth: every point joins its blob's representative
  // (completeness) and no two blob representatives share a cluster (purity).
  bool perfect = found == kClusters;
  for (VertexId i = 0; i < n && perfect; ++i) {
    const auto rep = static_cast<VertexId>(pts[i].blob * kPerBlob);
    if (cluster[i] != cluster[rep]) perfect = false;
  }
  for (int b1 = 0; b1 < kClusters && perfect; ++b1) {
    for (int b2 = b1 + 1; b2 < kClusters && perfect; ++b2) {
      if (cluster[static_cast<VertexId>(b1 * kPerBlob)] ==
          cluster[static_cast<VertexId>(b2 * kPerBlob)]) {
        perfect = false;
      }
    }
  }
  std::printf("recovered planted blobs exactly: %s\n", perfect ? "yes" : "no");
  return perfect ? 0 : 1;
}
