// MST-based image segmentation (one of the paper's motivating applications:
// medical imaging / computer vision).
//
// A synthetic grayscale image containing several flat regions plus noise is
// turned into a 4-neighbour grid graph whose edge weights are intensity
// differences.  The minimum spanning forest of that graph, with every edge
// heavier than a threshold removed, yields the segmentation: connected
// pixels whose intensities vary smoothly end up in one segment.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/msf.hpp"
#include "pprim/rng.hpp"
#include "seq/union_find.hpp"

namespace {

using namespace smp;
using namespace smp::graph;

constexpr int kW = 256;
constexpr int kH = 192;

/// Synthetic image: dark background, bright rectangle, mid-gray disk, plus
/// mild uniform noise.
std::vector<double> make_image(std::uint64_t seed) {
  std::vector<double> img(static_cast<std::size_t>(kW) * kH);
  Rng rng(seed);
  for (int y = 0; y < kH; ++y) {
    for (int x = 0; x < kW; ++x) {
      double v = 0.15;  // background
      if (x >= 30 && x < 110 && y >= 40 && y < 150) v = 0.85;  // rectangle
      const double dx = x - 190.0, dy = y - 90.0;
      if (dx * dx + dy * dy < 45.0 * 45.0) v = 0.5;  // disk
      img[static_cast<std::size_t>(y) * kW + x] = v + 0.02 * (rng.next_double() - 0.5);
    }
  }
  return img;
}

}  // namespace

int main(int argc, char** argv) {
  const double threshold = argc > 1 ? std::atof(argv[1]) : 0.1;
  const auto img = make_image(11);

  // 4-neighbour grid graph; weight = absolute intensity difference.
  EdgeList g(static_cast<VertexId>(kW * kH));
  const auto id = [](int x, int y) { return static_cast<VertexId>(y * kW + x); };
  for (int y = 0; y < kH; ++y) {
    for (int x = 0; x < kW; ++x) {
      const double v = img[id(x, y)];
      if (x + 1 < kW) g.add_edge(id(x, y), id(x + 1, y), std::abs(v - img[id(x + 1, y)]));
      if (y + 1 < kH) g.add_edge(id(x, y), id(x, y + 1), std::abs(v - img[id(x, y + 1)]));
    }
  }
  std::printf("image %dx%d -> graph n=%u m=%llu\n", kW, kH, g.num_vertices,
              static_cast<unsigned long long>(g.num_edges()));

  core::MsfOptions opts;
  opts.algorithm = core::Algorithm::kBorALM;
  opts.threads = 4;
  const MsfResult msf = core::minimum_spanning_forest(g, opts);
  std::printf("MSF: %zu edges, weight %.3f\n", msf.edges.size(), msf.total_weight);

  // Segmentation = components of the forest after dropping heavy edges.
  seq::UnionFind uf(g.num_vertices);
  std::size_t kept = 0;
  for (const auto& e : msf.edges) {
    if (e.w <= threshold) {
      uf.unite(e.u, e.v);
      ++kept;
    }
  }
  std::printf("threshold %.3f: kept %zu/%zu forest edges\n", threshold, kept,
              msf.edges.size());

  // Report the large segments (area > 0.5% of the image).
  std::vector<std::size_t> area(g.num_vertices, 0);
  for (VertexId v = 0; v < g.num_vertices; ++v) ++area[uf.find(v)];
  std::size_t large = 0, covered = 0;
  for (VertexId v = 0; v < g.num_vertices; ++v) {
    if (area[v] * 200 > static_cast<std::size_t>(kW) * kH) {
      ++large;
      covered += area[v];
      std::printf("  segment %u: %zu px (%.1f%% of image)\n", v, area[v],
                  100.0 * static_cast<double>(area[v]) / (kW * kH));
    }
  }
  std::printf("%zu total segments, %zu large; large segments cover %.1f%%\n",
              uf.num_sets(), large,
              100.0 * static_cast<double>(covered) / (kW * kH));
  // The synthetic scene has three flat regions; expect exactly 3 large
  // segments (background, rectangle, disk).
  return large == 3 ? 0 : 1;
}
