// Quickstart: build a graph, compute its minimum spanning forest with the
// parallel Bor-FAL algorithm, and inspect the result.
#include <cstdio>

#include "core/msf.hpp"
#include "graph/generators.hpp"
#include "graph/validate.hpp"

int main() {
  using namespace smp;
  using namespace smp::graph;

  // A random sparse graph: 50,000 vertices, 200,000 edges, uniform weights.
  const EdgeList g = random_graph(50000, 200000, /*seed=*/7);
  std::printf("graph: %u vertices, %llu edges\n", g.num_vertices,
              static_cast<unsigned long long>(g.num_edges()));

  // Pick an algorithm and a thread count; everything else is defaulted.
  core::MsfOptions opts;
  opts.algorithm = core::Algorithm::kBorFAL;
  opts.threads = 4;

  const MsfResult msf = core::minimum_spanning_forest(g, opts);
  std::printf("forest: %zu edges, total weight %.6f, %zu tree(s)\n",
              msf.edges.size(), msf.total_weight, msf.num_trees);

  // Every result can be validated structurally against the input.
  const auto check = validate_spanning_forest(g, msf.edges);
  std::printf("validation: %s\n", check.ok ? "OK" : check.error.c_str());

  // Forest edges reference the input: edge_ids[i] indexes g.edges.
  std::printf("first forest edge: (%u, %u) w=%.6f  [input edge #%llu]\n",
              msf.edges[0].u, msf.edges[0].v, msf.edges[0].w,
              static_cast<unsigned long long>(msf.edge_ids[0]));
  return check.ok ? 0 : 1;
}
