// Maze generation — the classic playful MST application.  A perfect maze is
// exactly a uniform-ish spanning tree of the grid: assign random weights to
// the grid graph's edges, take the MST, and knock down the wall for every
// tree edge.  Every pair of cells then has exactly one path between them.
#include <cstdio>
#include <string>
#include <vector>

#include "core/msf.hpp"
#include "graph/generators.hpp"

int main(int argc, char** argv) {
  using namespace smp;
  using namespace smp::graph;

  const int cols = argc > 1 ? std::atoi(argv[1]) : 39;
  const int rows = argc > 2 ? std::atoi(argv[2]) : 15;
  if (cols < 2 || rows < 2 || cols > 500 || rows > 500) {
    std::fprintf(stderr, "usage: maze_generation [cols rows]  (2..500)\n");
    return 2;
  }

  // Grid graph with uniform random weights; its MST is the maze.
  const EdgeList g =
      mesh2d(static_cast<VertexId>(rows), static_cast<VertexId>(cols), 2024);
  core::MsfOptions opts;
  opts.algorithm = core::Algorithm::kBorFAL;
  opts.threads = 2;
  const MsfResult mst = core::minimum_spanning_forest(g, opts);

  // Wall bitmap: open[cell][direction] with 0=east, 1=south.
  std::vector<std::array<bool, 2>> open(g.num_vertices, {false, false});
  for (const auto& e : mst.edges) {
    const VertexId a = std::min(e.u, e.v);
    const VertexId b = std::max(e.u, e.v);
    if (b == a + 1) {
      open[a][0] = true;  // east
    } else {
      open[a][1] = true;  // south
    }
  }

  // Render: each cell is 2x1 characters plus a border.
  std::string top(static_cast<std::size_t>(2 * cols + 1), '_');
  std::printf(" %s\n", top.c_str() + 1);
  for (int r = 0; r < rows; ++r) {
    std::string line = "|";
    for (int c = 0; c < cols; ++c) {
      const auto cell = static_cast<VertexId>(r) * static_cast<VertexId>(cols) +
                        static_cast<VertexId>(c);
      const bool south = open[cell][1];
      const bool east = open[cell][0];
      line += south ? ' ' : '_';
      line += east ? (south ? ' ' : '_') : '|';
    }
    std::printf("%s\n", line.c_str());
  }
  std::printf("%d x %d maze, %zu corridors (tree edges)\n", cols, rows,
              mst.edges.size());

  // A perfect maze has exactly rows*cols - 1 corridors.
  return mst.edges.size() == static_cast<std::size_t>(rows) * cols - 1 ? 0 : 1;
}
