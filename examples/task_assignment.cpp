// Task assignment as maximum bipartite matching via max flow (the flow
// substrate implements the paper's §6 future-work direction).
//
// `kWorkers` workers each qualify for a random subset of `kTasks` tasks; the
// maximum number of simultaneously assignable tasks is the max matching,
// computed as an s→workers→tasks→t unit-capacity max flow.  König's theorem
// is checked on the way out: |max matching| = |min vertex cover|, recovered
// from the min cut.
#include <cstdio>
#include <vector>

#include "flow/flow_network.hpp"
#include "pprim/rng.hpp"

int main() {
  using namespace smp;
  using namespace smp::flow;
  using graph::VertexId;

  constexpr VertexId kWorkers = 600;
  constexpr VertexId kTasks = 500;
  constexpr int kSkillsPerWorker = 3;

  Rng rng(17);
  FlowNetwork net(kWorkers + kTasks + 2);
  const VertexId s = kWorkers + kTasks;
  const VertexId t = s + 1;

  struct Qual {
    VertexId worker, task;
    std::uint32_t arc;
  };
  std::vector<Qual> quals;
  for (VertexId w = 0; w < kWorkers; ++w) {
    net.add_edge(s, w, 1);
    for (int k = 0; k < kSkillsPerWorker; ++k) {
      const auto task = static_cast<VertexId>(rng.next_below(kTasks));
      const auto arc = net.add_edge(w, kWorkers + task, 1);
      quals.push_back({w, task, arc});
    }
  }
  for (VertexId task = 0; task < kTasks; ++task) {
    net.add_edge(kWorkers + task, t, 1);
  }

  const Cap matched = max_flow_dinic(net, s, t);
  std::printf("%u workers, %u tasks, %zu qualification edges\n", kWorkers, kTasks,
              quals.size());
  std::printf("maximum assignment: %lld tasks staffed\n",
              static_cast<long long>(matched));

  // Extract the assignment.
  int shown = 0;
  for (const auto& q : quals) {
    if (net.flow_on(q.arc) == 1 && shown < 5) {
      std::printf("  e.g. worker %u -> task %u\n", q.worker, q.task);
      ++shown;
    }
  }

  // König: min vertex cover = (left vertices NOT reachable from s in the
  // residual) ∪ (right vertices reachable).  Its size must equal the flow.
  const auto side = min_cut_side(net, s);
  std::size_t cover = 0;
  for (VertexId w = 0; w < kWorkers; ++w) cover += !side[w];
  for (VertexId task = 0; task < kTasks; ++task) cover += side[kWorkers + task];
  std::printf("min vertex cover size: %zu (König: equals matching: %s)\n", cover,
              cover == static_cast<std::size_t>(matched) ? "yes" : "NO");

  return cover == static_cast<std::size_t>(matched) ? 0 : 1;
}
