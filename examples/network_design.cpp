// Minimum-cost network design (the paper's VLSI-layout / wireless-network
// motivation): connect n radio towers with the least total cable, where only
// sufficiently short links are feasible and a mountain ridge blocks a band
// of the map.
//
// Feasible links form a geometric graph; the ridge knocks out the edges
// crossing it, so the result is in general a minimum spanning *forest* — one
// optimal backbone per connectable region — exactly the problem the paper's
// algorithms solve.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/msf.hpp"
#include "graph/stats.hpp"
#include "pprim/rng.hpp"
#include "seq/union_find.hpp"

namespace {

using namespace smp;
using namespace smp::graph;

struct Tower {
  double x, y;
};

}  // namespace

int main() {
  constexpr VertexId kTowers = 4000;
  constexpr double kRange = 0.045;        // max feasible link length
  constexpr double kRidgeLo = 0.48;       // blocked band: kRidgeLo < x < kRidgeHi
  constexpr double kRidgeHi = 0.52;

  Rng rng(29);
  std::vector<Tower> towers(kTowers);
  for (auto& t : towers) t = {rng.next_double(), rng.next_double()};

  // Feasible links: grid-bucketed radius search, skipping ridge crossings.
  const auto cells = static_cast<std::uint32_t>(1.0 / kRange);
  std::vector<std::vector<VertexId>> bucket(static_cast<std::size_t>(cells) * cells);
  const auto cell_of = [&](const Tower& t) {
    auto cx = std::min<std::uint32_t>(static_cast<std::uint32_t>(t.x * cells), cells - 1);
    auto cy = std::min<std::uint32_t>(static_cast<std::uint32_t>(t.y * cells), cells - 1);
    return cy * cells + cx;
  };
  for (VertexId i = 0; i < kTowers; ++i) bucket[cell_of(towers[i])].push_back(i);

  EdgeList g(kTowers);
  for (VertexId i = 0; i < kTowers; ++i) {
    const Tower& a = towers[i];
    const auto cx = static_cast<std::int64_t>(std::min<std::uint32_t>(
        static_cast<std::uint32_t>(a.x * cells), cells - 1));
    const auto cy = static_cast<std::int64_t>(std::min<std::uint32_t>(
        static_cast<std::uint32_t>(a.y * cells), cells - 1));
    for (std::int64_t dy = -1; dy <= 1; ++dy) {
      for (std::int64_t dx = -1; dx <= 1; ++dx) {
        const std::int64_t x = cx + dx, y = cy + dy;
        if (x < 0 || y < 0 || x >= cells || y >= cells) continue;
        for (const VertexId j : bucket[static_cast<std::size_t>(y) * cells +
                                       static_cast<std::size_t>(x)]) {
          if (j <= i) continue;  // one direction per pair
          const Tower& b = towers[j];
          const double d = std::hypot(a.x - b.x, a.y - b.y);
          if (d > kRange) continue;
          // Links crossing the ridge band are infeasible.
          const double lo = std::min(a.x, b.x), hi = std::max(a.x, b.x);
          if (lo < kRidgeHi && hi > kRidgeLo) continue;
          g.add_edge(i, j, d);
        }
      }
    }
  }
  std::printf("towers: %u, feasible links: %llu\n", kTowers,
              static_cast<unsigned long long>(g.num_edges()));
  std::printf("link graph components: %zu\n", num_components(g));

  core::MsfOptions opts;
  opts.algorithm = core::Algorithm::kBorFAL;
  opts.threads = 4;
  const MsfResult msf = core::minimum_spanning_forest(g, opts);
  std::printf("backbone: %zu cables, total length %.3f, %zu regional network(s)\n",
              msf.edges.size(), msf.total_weight, msf.num_trees);

  // Compare against a naive design: connect every tower to its nearest
  // feasible neighbour and patch the rest greedily in input order.
  double naive = 0;
  {
    seq::UnionFind uf(kTowers);
    for (const auto& e : g.edges) {
      if (uf.unite(e.u, e.v)) naive += e.w;
    }
  }
  std::printf("greedy-arbitrary design length: %.3f (MSF saves %.1f%%)\n", naive,
              100.0 * (1.0 - msf.total_weight / naive));

  const bool sane = msf.num_trees >= 2 && msf.total_weight < naive;
  return sane ? 0 : 1;
}
