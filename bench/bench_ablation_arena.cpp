// Ablation (google-benchmark): per-thread arena allocation versus the system
// heap under concurrency — the mechanism behind Bor-ALM (§2.2).  The system
// allocator serializes threads on shared state; the arenas never touch
// shared state after warm-up.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "pprim/arena.hpp"
#include "pprim/rng.hpp"
#include "pprim/thread_team.hpp"

namespace {

using namespace smp;

constexpr int kAllocsPerTask = 20000;

/// Allocation-size schedule shaped like Bor-AL's scratch buffers.
std::vector<std::size_t> sizes() {
  std::vector<std::size_t> s(kAllocsPerTask);
  Rng rng(3);
  for (auto& x : s) x = 8 + rng.next_below(120);  // 8..127 elements
  return s;
}

void BM_HeapAllocConcurrent(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  ThreadTeam team(threads);
  const auto sched = sizes();
  for (auto _ : state) {
    team.run([&](TeamCtx&) {
      for (const std::size_t count : sched) {
        auto buf = std::make_unique<std::uint64_t[]>(count);
        buf[0] = count;
        benchmark::DoNotOptimize(buf.get());
      }
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kAllocsPerTask * threads);
}
BENCHMARK(BM_HeapAllocConcurrent)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_ArenaAllocConcurrent(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  ThreadTeam team(threads);
  ThreadArenas arenas(threads);
  const auto sched = sizes();
  for (auto _ : state) {
    team.run([&](TeamCtx& ctx) {
      auto& arena = arenas.local(ctx.tid());
      for (const std::size_t count : sched) {
        auto buf = arena.alloc_array<std::uint64_t>(count);
        buf[0] = count;
        benchmark::DoNotOptimize(buf.data());
      }
    });
    arenas.reset_all();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kAllocsPerTask * threads);
}
BENCHMARK(BM_ArenaAllocConcurrent)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
