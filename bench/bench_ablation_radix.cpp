// Ablation (google-benchmark): Bor-EL's compact-graph sorts directed edges
// by ⟨supervertex(u), supervertex(v), weight⟩.  The paper uses a comparison
// sample sort [14]; when the two supervertex ids fit a packed 64-bit key, an
// LSD radix sort is a drop-in alternative.  This bench compares the two (and
// std::sort) on a realistic arc array.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "pprim/radix_sort.hpp"
#include "pprim/rng.hpp"
#include "pprim/sample_sort.hpp"
#include "pprim/thread_team.hpp"

namespace {

using namespace smp;

struct Arc {
  std::uint32_t u, v;
  double w;
  std::uint64_t orig;
};

const std::vector<Arc>& arcs() {
  static const std::vector<Arc> a = [] {
    Rng rng(5);
    std::vector<Arc> out(1 << 20);
    for (std::uint64_t i = 0; i < out.size(); ++i) {
      out[i] = {static_cast<std::uint32_t>(rng.next_below(100000)),
                static_cast<std::uint32_t>(rng.next_below(100000)),
                rng.next_double(), i};
    }
    return out;
  }();
  return a;
}

const auto kCmp = [](const Arc& x, const Arc& y) {
  if (x.u != y.u) return x.u < y.u;
  if (x.v != y.v) return x.v < y.v;
  return x.w != y.w ? x.w < y.w : x.orig < y.orig;
};

void BM_StdSort(benchmark::State& state) {
  for (auto _ : state) {
    auto copy = arcs();
    std::sort(copy.begin(), copy.end(), kCmp);
    benchmark::DoNotOptimize(copy.data());
  }
}
BENCHMARK(BM_StdSort);

void BM_SampleSort(benchmark::State& state) {
  ThreadTeam team(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto copy = arcs();
    sample_sort(team, copy, kCmp);
    benchmark::DoNotOptimize(copy.data());
  }
}
BENCHMARK(BM_SampleSort)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_RadixByPackedPair(benchmark::State& state) {
  // Radix orders by (u, v) only; within a pair the weight order is restored
  // by a tiny per-run sort — mirroring what compact-graph actually needs.
  ThreadTeam team(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto copy = arcs();
    radix_sort_by_key(team, copy, [](const Arc& a) {
      return (static_cast<std::uint64_t>(a.u) << 32) | a.v;
    });
    std::size_t run = 0;
    for (std::size_t i = 1; i <= copy.size(); ++i) {
      if (i == copy.size() || copy[i].u != copy[run].u || copy[i].v != copy[run].v) {
        if (i - run > 1) {
          std::sort(copy.begin() + static_cast<std::ptrdiff_t>(run),
                    copy.begin() + static_cast<std::ptrdiff_t>(i), kCmp);
        }
        run = i;
      }
    }
    benchmark::DoNotOptimize(copy.data());
  }
}
BENCHMARK(BM_RadixByPackedPair)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
