// Serving-layer bench: open-loop request mixes against an in-process
// ServiceCore.  Each mix fires requests on a fixed arrival schedule
// (latency is measured from the *scheduled* arrival, so queueing delay is
// charged to the service, not hidden by a slow client), runs ≥2 read:write
// ratios, and reports client-side p50/p95/p99 plus achieved throughput and
// the registry's coalescing counters.  --json writes BENCH_04.json.
//
// Mix selection (BENCH_08):
//   --mix SPEC       replace the default {r90w10, r50w50} mixes; repeatable.
//                    SPEC is rNN[qNN]wNN — read/query/write percentages
//                    summing to 100, where q ops hit the ForestIndex
//                    (pathmax/conn, occasional topk).  e.g. --mix r40q40w20.
//
// Durability extensions (BENCH_06):
//   --data-dir DIR   run the mixes against a durable service (WAL + group
//                    commit under --fsync) rooted at DIR; every JSON row
//                    records the fsync policy so throughput can be compared
//                    against the non-durable BENCH_04 numbers.
//   --fsync P        always | interval | none (default interval)
//   --recover        instead of the mixes, time cold-start recovery: log
//                    10^4..10^6 updates (scaled by --scale), tear the core
//                    down without the clean-shutdown marker, and time a
//                    fresh ServiceCore replaying the WAL tail.  Replay goes
//                    through the same coalescing apply_batch path as live
//                    traffic, so the ratio recover_s/apply_s stays far
//                    below the acceptance bound of 10.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "persist/wal.hpp"
#include "serve/service_core.hpp"

using namespace smp;
using namespace smp::graph;
using namespace smp::serve;

namespace {

struct Mix {
  std::string name;
  int read_pct;   // plain reads (weight/connected) per 100 ops
  int query_pct;  // index queries (pathmax/conn/topk) per 100 ops
  // the rest are single-edge insertions
};

/// Parses a mix spec like "r90w10" or "r40q40w20": each letter (r = read,
/// q = query, w = write) is followed by its percentage; the three must sum
/// to 100.  Letters may appear in any order; omitted ones default to 0.
Mix parse_mix(const std::string& spec) {
  Mix mix{spec, 0, 0};
  int write_pct = 0;
  std::size_t i = 0;
  while (i < spec.size()) {
    const char kind = spec[i++];
    std::size_t j = i;
    while (j < spec.size() && std::isdigit(static_cast<unsigned char>(spec[j]))) {
      ++j;
    }
    if (j == i || (kind != 'r' && kind != 'q' && kind != 'w')) {
      std::fprintf(stderr,
                   "bench_serve: bad --mix %s (want rNN[qNN]wNN)\n",
                   spec.c_str());
      std::exit(2);
    }
    const int pct = std::atoi(spec.substr(i, j - i).c_str());
    if (kind == 'r') mix.read_pct = pct;
    if (kind == 'q') mix.query_pct = pct;
    if (kind == 'w') write_pct = pct;
    i = j;
  }
  if (mix.read_pct + mix.query_pct + write_pct != 100) {
    std::fprintf(stderr, "bench_serve: --mix %s percentages must sum to 100\n",
                 spec.c_str());
    std::exit(2);
  }
  return mix;
}

struct MixResult {
  std::size_t ok = 0;
  std::size_t rejected = 0;
  std::size_t errors = 0;
  double wall_s = 0;
  std::vector<double> read_us;
  std::vector<double> query_us;
  std::vector<double> write_us;
};

double quantile_us(std::vector<double>& v, double q) {
  if (v.empty()) return 0;
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(v.size() - 1));
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(idx), v.end());
  return v[idx];
}

/// Opens a session and grows it to `m` edges through the service itself
/// (chunked bulk inserts), so the bench exercises the store the way a
/// client would have built it.
void prepopulate(ServiceCore& svc, VertexId n, EdgeId m, std::uint64_t seed) {
  Request open;
  open.op = Op::kOpen;
  open.session = "g";
  open.num_vertices = n;
  if (!svc.call(open).ok()) {
    std::fprintf(stderr, "prepopulate: open failed\n");
    std::exit(1);
  }
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<VertexId> vtx(0, n - 1);
  std::uniform_real_distribution<double> wgt(0.0, 1.0);
  constexpr EdgeId kChunk = 5000;
  for (EdgeId done = 0; done < m;) {
    Request ins;
    ins.op = Op::kInsert;
    ins.session = "g";
    const EdgeId want = std::min(kChunk, m - done);
    for (EdgeId i = 0; i < want; ++i) {
      VertexId u = vtx(rng), v = vtx(rng);
      while (v == u) v = vtx(rng);
      ins.insertions.push_back(WEdge{u, v, wgt(rng)});
    }
    if (!svc.call(ins).ok()) {
      std::fprintf(stderr, "prepopulate: insert failed\n");
      std::exit(1);
    }
    done += want;
  }
}

/// One open-loop run: `threads` clients each fire `ops_per_thread` requests
/// on a fixed schedule of `period` between arrivals, read/write chosen per
/// the mix.  Latency slots are preallocated per request index — callbacks
/// run on dispatcher threads and never contend.
MixResult run_mix(ServiceCore& svc, const Mix& mix, VertexId n, int threads,
                  std::size_t ops_per_thread, double target_rps,
                  std::uint64_t seed) {
  using Clock = std::chrono::steady_clock;
  const std::size_t total = static_cast<std::size_t>(threads) * ops_per_thread;
  // Each thread fires every `period`; threads are staggered by a fraction
  // of it so the aggregate arrival process is near-uniform at target_rps.
  const auto period = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(static_cast<double>(threads) / target_rps));
  const auto stagger = period / threads;

  // -1 = rejected, -2 = service error, >= 0 = latency in microseconds.
  std::vector<double> lat(total, 0.0);
  std::vector<std::uint8_t> is_read(total, 0);
  std::atomic<std::size_t> completed{0};
  std::mutex mu;
  std::condition_variable cv;

  const auto t0 = Clock::now() + std::chrono::milliseconds(10);
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      std::mt19937_64 rng(seed + static_cast<std::uint64_t>(t) * 7919);
      std::uniform_int_distribution<VertexId> vtx(0, n - 1);
      std::uniform_int_distribution<int> pct(0, 99);
      std::uniform_real_distribution<double> wgt(0.0, 1.0);
      for (std::size_t i = 0; i < ops_per_thread; ++i) {
        const std::size_t slot = static_cast<std::size_t>(t) * ops_per_thread + i;
        const auto scheduled = t0 +
                               period * static_cast<Clock::duration::rep>(i) +
                               stagger * t;
        std::this_thread::sleep_until(scheduled);

        Request req;
        req.session = "g";
        const int roll = pct(rng);
        // 0 = write, 1 = read, 2 = index query.
        const int kind = roll < mix.read_pct                  ? 1
                         : roll < mix.read_pct + mix.query_pct ? 2
                                                               : 0;
        is_read[slot] = static_cast<std::uint8_t>(kind);
        if (kind == 1) {
          if (pct(rng) < 50) {
            req.op = Op::kWeight;
          } else {
            req.op = Op::kConnected;
            req.u = vtx(rng);
            req.v = vtx(rng);
            while (req.v == req.u) req.v = vtx(rng);
          }
        } else if (kind == 2) {
          // Mostly the O(log n)/O(1) index ops, an occasional top-k scan.
          const int q = pct(rng);
          if (q < 45) {
            req.op = Op::kPathMax;
          } else if (q < 90) {
            req.op = Op::kConn;
          } else {
            req.op = Op::kTopK;
            req.limit = 8;
          }
          if (req.op != Op::kTopK) {
            req.u = vtx(rng);
            req.v = vtx(rng);
            while (req.v == req.u) req.v = vtx(rng);
          }
        } else {
          req.op = Op::kInsert;
          VertexId u = vtx(rng), v = vtx(rng);
          while (v == u) v = vtx(rng);
          req.insertions.push_back(WEdge{u, v, wgt(rng)});
        }
        const bool accepted = svc.submit(req, [&, slot, scheduled](const Response& r) {
          if (r.ok()) {
            lat[slot] = std::chrono::duration<double, std::micro>(
                            Clock::now() - scheduled)
                            .count();
          } else {
            lat[slot] = r.status == Status::kOverloaded ? -1.0 : -2.0;
          }
          if (completed.fetch_add(1, std::memory_order_acq_rel) + 1 == total) {
            std::lock_guard<std::mutex> lk(mu);
            cv.notify_one();
          }
        });
        if (!accepted && completed.load(std::memory_order_acquire) == total) {
          break;  // unreachable in practice; submit always invokes done
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return completed.load(std::memory_order_acquire) == total; });
  }
  MixResult r;
  r.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  for (std::size_t i = 0; i < total; ++i) {
    if (lat[i] == -1.0) {
      ++r.rejected;
    } else if (lat[i] == -2.0) {
      ++r.errors;
    } else {
      ++r.ok;
      (is_read[i] == 1   ? r.read_us
       : is_read[i] == 2 ? r.query_us
                         : r.write_us)
          .push_back(lat[i]);
    }
  }
  return r;
}

/// One cold-start recovery measurement: log `updates` single-edge inserts
/// through a durable core under maximum write pressure (a large in-flight
/// window, so the flusher coalesces exactly as it would for a real burst),
/// tear the core down with the clean-shutdown marker disabled, then time a
/// fresh ServiceCore recovering the directory (snapshot load + WAL replay).
struct RecoverResult {
  double apply_s = 0;
  double recover_s = 0;
  std::uint64_t wal_records = 0;
  std::uint64_t replayed_records = 0;
  std::size_t errors = 0;
};

RecoverResult run_recover(const std::string& dir, persist::FsyncPolicy fsync,
                          VertexId n, std::size_t updates,
                          std::uint64_t seed) {
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  ServeOptions opts;
  opts.msf.threads = 4;
  opts.dispatchers = 4;
  opts.queue_capacity = 1u << 15;
  opts.data_dir = dir;
  opts.fsync = fsync;
  // The whole point is to replay the tail: never truncate it mid-run and
  // leave no clean marker behind, so the restart takes the cold path.
  opts.snapshot_wal_bytes = ~0ull;
  opts.clean_shutdown = false;

  RecoverResult res;
  {
    ServiceCore svc(opts);
    Request open;
    open.op = Op::kOpen;
    open.session = "g";
    open.num_vertices = n;
    if (!svc.call(open).ok()) {
      std::fprintf(stderr, "recover bench: open failed\n");
      std::exit(1);
    }
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<VertexId> vtx(0, n - 1);
    std::uniform_real_distribution<double> wgt(0.0, 1.0);
    std::atomic<std::size_t> done{0};
    std::atomic<std::size_t> errors{0};
    constexpr std::size_t kWindow = 1u << 14;  // max in-flight writes
    WallTimer t;
    for (std::size_t i = 0; i < updates; ++i) {
      Request ins;
      ins.op = Op::kInsert;
      ins.session = "g";
      VertexId u = vtx(rng), v = vtx(rng);
      while (v == u) v = vtx(rng);
      ins.insertions.push_back(WEdge{u, v, wgt(rng)});
      while (i - done.load(std::memory_order_acquire) >= kWindow) {
        std::this_thread::yield();
      }
      while (!svc.submit(ins, [&](const Response& r) {
        if (!r.ok()) errors.fetch_add(1, std::memory_order_relaxed);
        done.fetch_add(1, std::memory_order_release);
      })) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
    while (done.load(std::memory_order_acquire) < updates) {
      std::this_thread::yield();
    }
    res.apply_s = t.elapsed_s();
    res.errors = errors.load();
    res.wal_records = svc.metrics().persist.wal_appends.load();
    svc.shutdown();  // clean_shutdown=false: the WAL tail stays behind
  }
  {
    WallTimer t;
    ServiceCore svc(opts);  // recovery happens in the constructor
    res.recover_s = t.elapsed_s();
    res.replayed_records = svc.metrics().replayed_records.load();
    svc.shutdown();
  }
  std::filesystem::remove_all(dir, ec);
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the durability flags before the shared parser sees them (it
  // rejects unknown flags).
  std::string data_dir;
  persist::FsyncPolicy fsync = persist::FsyncPolicy::kInterval;
  bool recover_mode = false;
  std::vector<Mix> mixes;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const auto need = [&](const char* flag) -> char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_serve: missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--data-dir") == 0) {
      data_dir = need("--data-dir");
    } else if (std::strcmp(argv[i], "--fsync") == 0) {
      fsync = persist::parse_fsync_policy(need("--fsync"));
    } else if (std::strcmp(argv[i], "--recover") == 0) {
      recover_mode = true;
    } else if (std::strcmp(argv[i], "--mix") == 0) {
      mixes.push_back(parse_mix(need("--mix")));
    } else {
      rest.push_back(argv[i]);
    }
  }
  if (mixes.empty()) {
    mixes = {parse_mix("r90w10"), parse_mix("r50w50")};
  }
  const bench::Args args =
      bench::parse_args(static_cast<int>(rest.size()), rest.data());
  if ((recover_mode || !data_dir.empty()) && data_dir.empty()) {
    data_dir = (std::filesystem::temp_directory_path() /
                ("bench_serve_data_" + std::to_string(::getpid())))
                   .string();
  }

  if (recover_mode) {
    std::printf("bench_serve --recover  fsync=%s\n",
                std::string(persist::to_string(fsync)).c_str());
    std::printf("%-10s %10s %10s %10s %8s %10s %10s\n", "updates", "n",
                "apply_s", "recover_s", "ratio", "wal_recs", "replayed");
    bench::JsonSink sink;
    for (const std::size_t base : {10'000ul, 100'000ul, 1'000'000ul}) {
      const std::size_t updates = std::max<std::size_t>(64, args.size(base, base));
      const auto n = static_cast<VertexId>(
          std::max<std::size_t>(256, updates / 20));
      const RecoverResult r = run_recover(
          data_dir + "/recover_" + std::to_string(base), fsync, n, updates,
          args.seed);
      const double ratio = r.apply_s > 0 ? r.recover_s / r.apply_s : 0.0;
      std::printf("%-10zu %10llu %10.3f %10.3f %8.2f %10llu %10llu\n",
                  updates, static_cast<unsigned long long>(n), r.apply_s,
                  r.recover_s, ratio,
                  static_cast<unsigned long long>(r.wal_records),
                  static_cast<unsigned long long>(r.replayed_records));
      if (r.errors != 0) {
        std::fprintf(stderr, "recover bench: %zu write errors\n", r.errors);
        return 1;
      }
      char rec[512];
      std::snprintf(
          rec, sizeof rec,
          "{\"tag\": \"recover\", \"updates\": %zu, \"n\": %llu, "
          "\"fsync\": \"%s\", \"apply_s\": %.4f, \"recover_s\": %.4f, "
          "\"replay_ratio\": %.3f, \"wal_records\": %llu, "
          "\"replayed_records\": %llu}",
          updates, static_cast<unsigned long long>(n),
          std::string(persist::to_string(fsync)).c_str(), r.apply_s,
          r.recover_s, ratio, static_cast<unsigned long long>(r.wal_records),
          static_cast<unsigned long long>(r.replayed_records));
      sink.add(rec);
    }
    sink.write("bench_serve_recover", args);
    return 0;
  }
  const auto n = static_cast<VertexId>(args.size(20000, 100000));
  const auto m = static_cast<EdgeId>(3 * static_cast<EdgeId>(n));
  const int clients = std::max(2, args.max_threads);
  const double target_rps = 1500.0;
  const std::size_t ops_per_client = 3000 / static_cast<std::size_t>(clients);

  const bool durable = !data_dir.empty();
  const std::string fsync_name =
      durable ? std::string(persist::to_string(fsync)) : "none";

  std::printf("bench_serve  n=%llu m=%llu clients=%d target_rps=%.0f"
              " fsync=%s\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(m), clients, target_rps,
              fsync_name.c_str());
  std::printf("%-10s %10s %8s %8s %9s %9s %9s %9s %9s %9s %7s\n", "mix",
              "rps", "ok", "rej", "p50ms", "p95ms", "p99ms", "w.p50ms",
              "w.p99ms", "q.p99ms", "coal");

  bench::JsonSink sink;
  for (const Mix& mix : mixes) {
    // A fresh core per mix isolates the metrics registry and the store.
    ServeOptions opts;
    opts.msf.threads = 4;
    opts.dispatchers = 4;
    opts.queue_capacity = 1024;
    opts.coalesce_window_s = 0.002;
    if (durable) {
      // Fresh per-mix directory: mixes must not recover each other's state.
      opts.data_dir = data_dir + "/mix_" + mix.name;
      opts.fsync = fsync;
      std::error_code ec;
      std::filesystem::remove_all(opts.data_dir, ec);
    }
    ServiceCore svc(opts);
    prepopulate(svc, n, m, args.seed);
    svc.metrics().reset_counters();

    MixResult r =
        run_mix(svc, mix, n, clients, ops_per_client, target_rps, args.seed);

    std::vector<double> all;
    all.reserve(r.read_us.size() + r.write_us.size());
    all.insert(all.end(), r.read_us.begin(), r.read_us.end());
    all.insert(all.end(), r.write_us.begin(), r.write_us.end());
    const double p50 = quantile_us(all, 0.50) / 1000.0;
    const double p95 = quantile_us(all, 0.95) / 1000.0;
    const double p99 = quantile_us(all, 0.99) / 1000.0;
    const double wp50 = quantile_us(r.write_us, 0.50) / 1000.0;
    const double wp99 = quantile_us(r.write_us, 0.99) / 1000.0;
    const double rp50 = quantile_us(r.read_us, 0.50) / 1000.0;
    const double rp99 = quantile_us(r.read_us, 0.99) / 1000.0;
    const double qp50 = quantile_us(r.query_us, 0.50) / 1000.0;
    const double qp99 = quantile_us(r.query_us, 0.99) / 1000.0;
    const double rps = static_cast<double>(r.ok) / r.wall_s;
    const auto batches = svc.metrics().apply_batches.load();
    const auto coalesced = svc.metrics().coalesced_writes.load();
    const double avg_coalesce =
        batches == 0 ? 0.0
                     : static_cast<double>(coalesced) / static_cast<double>(batches);

    std::printf(
        "%-10s %10.1f %8zu %8zu %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f %7.2f\n",
        mix.name.c_str(), rps, r.ok, r.rejected, p50, p95, p99, wp50, wp99,
        qp99, avg_coalesce);

    char rec[1024];
    std::snprintf(
        rec, sizeof rec,
        "{\"tag\": \"serve\", \"mix\": \"%s\", \"read_pct\": %d, "
        "\"query_pct\": %d, \"fsync\": \"%s\", "
        "\"n\": %llu, \"m\": %llu, \"clients\": %d, \"target_rps\": %.0f, "
        "\"achieved_rps\": %.1f, \"ok\": %zu, \"rejected\": %zu, "
        "\"errors\": %zu, \"p50_ms\": %.3f, \"p95_ms\": %.3f, "
        "\"p99_ms\": %.3f, \"read_p50_ms\": %.3f, \"read_p99_ms\": %.3f, "
        "\"query_p50_ms\": %.3f, \"query_p99_ms\": %.3f, "
        "\"write_p50_ms\": %.3f, \"write_p99_ms\": %.3f, "
        "\"apply_batches\": %llu, \"coalesced_writes\": %llu, "
        "\"avg_coalesce\": %.2f}",
        mix.name.c_str(), mix.read_pct, mix.query_pct, fsync_name.c_str(),
        static_cast<unsigned long long>(n),
        static_cast<unsigned long long>(m), clients, target_rps, rps, r.ok,
        r.rejected, r.errors, p50, p95, p99, rp50, rp99, qp50, qp99, wp50,
        wp99, static_cast<unsigned long long>(batches),
        static_cast<unsigned long long>(coalesced), avg_coalesce);
    sink.add(rec);
    svc.shutdown();
  }
  sink.write("bench_serve", args);
  if (durable) {
    std::error_code ec;
    std::filesystem::remove_all(data_dir, ec);
  }
  return 0;
}
