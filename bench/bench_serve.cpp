// Serving-layer bench: open-loop request mixes against an in-process
// ServiceCore.  Each mix fires requests on a fixed arrival schedule
// (latency is measured from the *scheduled* arrival, so queueing delay is
// charged to the service, not hidden by a slow client), runs ≥2 read:write
// ratios, and reports client-side p50/p95/p99 plus achieved throughput and
// the registry's coalescing counters.  --json writes BENCH_04.json.
//
// Mix selection (BENCH_08):
//   --mix SPEC       replace the default {r90w10, r50w50} mixes; repeatable.
//                    SPEC is rNN[qNN]wNN — read/query/write percentages
//                    summing to 100, where q ops hit the ForestIndex
//                    (pathmax/conn, occasional topk).  e.g. --mix r40q40w20.
//
// Scale-out extensions (BENCH_09):
//   --transport T    inproc (default, the open-loop mixes above) | uds |
//                    tcp | both.  Non-inproc transports run the closed-loop
//                    scale sweep instead: shards in {1, 2, 4}, 2*shards
//                    sessions, pipelined client windows over a real socket,
//                    reporting rps plus read/write latency tails per
//                    (transport, shards) as "serve_scale" JSON records.
//   --dispatchers N  per-shard dispatcher threads for the scale sweep.
//
// Durability extensions (BENCH_06):
//   --data-dir DIR   run the mixes against a durable service (WAL + group
//                    commit under --fsync) rooted at DIR; every JSON row
//                    records the fsync policy so throughput can be compared
//                    against the non-durable BENCH_04 numbers.
//   --fsync P        always | interval | none (default interval)
//   --recover        instead of the mixes, time cold-start recovery: log
//                    10^4..10^6 updates (scaled by --scale), tear the core
//                    down without the clean-shutdown marker, and time a
//                    fresh ServiceCore replaying the WAL tail.  Replay goes
//                    through the same coalescing apply_batch path as live
//                    traffic, so the ratio recover_s/apply_s stays far
//                    below the acceptance bound of 10.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common.hpp"
#include "net/tcp_client.hpp"
#include "net/tcp_server.hpp"
#include "persist/wal.hpp"
#include "serve/service_core.hpp"
#include "serve/uds_client.hpp"
#include "serve/uds_server.hpp"

using namespace smp;
using namespace smp::graph;
using namespace smp::serve;

namespace {

struct Mix {
  std::string name;
  int read_pct;   // plain reads (weight/connected) per 100 ops
  int query_pct;  // index queries (pathmax/conn/topk) per 100 ops
  // the rest are single-edge insertions
};

/// Parses a mix spec like "r90w10" or "r40q40w20": each letter (r = read,
/// q = query, w = write) is followed by its percentage; the three must sum
/// to 100.  Letters may appear in any order; omitted ones default to 0.
Mix parse_mix(const std::string& spec) {
  Mix mix{spec, 0, 0};
  int write_pct = 0;
  std::size_t i = 0;
  while (i < spec.size()) {
    const char kind = spec[i++];
    std::size_t j = i;
    while (j < spec.size() && std::isdigit(static_cast<unsigned char>(spec[j]))) {
      ++j;
    }
    if (j == i || (kind != 'r' && kind != 'q' && kind != 'w')) {
      std::fprintf(stderr,
                   "bench_serve: bad --mix %s (want rNN[qNN]wNN)\n",
                   spec.c_str());
      std::exit(2);
    }
    const int pct = std::atoi(spec.substr(i, j - i).c_str());
    if (kind == 'r') mix.read_pct = pct;
    if (kind == 'q') mix.query_pct = pct;
    if (kind == 'w') write_pct = pct;
    i = j;
  }
  if (mix.read_pct + mix.query_pct + write_pct != 100) {
    std::fprintf(stderr, "bench_serve: --mix %s percentages must sum to 100\n",
                 spec.c_str());
    std::exit(2);
  }
  return mix;
}

struct MixResult {
  std::size_t ok = 0;
  std::size_t rejected = 0;
  std::size_t errors = 0;
  double wall_s = 0;
  std::vector<double> read_us;
  std::vector<double> query_us;
  std::vector<double> write_us;
};

double quantile_us(std::vector<double>& v, double q) {
  if (v.empty()) return 0;
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(v.size() - 1));
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(idx), v.end());
  return v[idx];
}

/// Opens a session and grows it to `m` edges through the service itself
/// (chunked bulk inserts), so the bench exercises the store the way a
/// client would have built it.
void prepopulate(ServiceCore& svc, VertexId n, EdgeId m, std::uint64_t seed) {
  Request open;
  open.op = Op::kOpen;
  open.session = "g";
  open.num_vertices = n;
  if (!svc.call(open).ok()) {
    std::fprintf(stderr, "prepopulate: open failed\n");
    std::exit(1);
  }
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<VertexId> vtx(0, n - 1);
  std::uniform_real_distribution<double> wgt(0.0, 1.0);
  constexpr EdgeId kChunk = 5000;
  for (EdgeId done = 0; done < m;) {
    Request ins;
    ins.op = Op::kInsert;
    ins.session = "g";
    const EdgeId want = std::min(kChunk, m - done);
    for (EdgeId i = 0; i < want; ++i) {
      VertexId u = vtx(rng), v = vtx(rng);
      while (v == u) v = vtx(rng);
      ins.insertions.push_back(WEdge{u, v, wgt(rng)});
    }
    if (!svc.call(ins).ok()) {
      std::fprintf(stderr, "prepopulate: insert failed\n");
      std::exit(1);
    }
    done += want;
  }
}

/// One open-loop run: `threads` clients each fire `ops_per_thread` requests
/// on a fixed schedule of `period` between arrivals, read/write chosen per
/// the mix.  Latency slots are preallocated per request index — callbacks
/// run on dispatcher threads and never contend.
MixResult run_mix(ServiceCore& svc, const Mix& mix, VertexId n, int threads,
                  std::size_t ops_per_thread, double target_rps,
                  std::uint64_t seed) {
  using Clock = std::chrono::steady_clock;
  const std::size_t total = static_cast<std::size_t>(threads) * ops_per_thread;
  // Each thread fires every `period`; threads are staggered by a fraction
  // of it so the aggregate arrival process is near-uniform at target_rps.
  const auto period = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(static_cast<double>(threads) / target_rps));
  const auto stagger = period / threads;

  // -1 = rejected, -2 = service error, >= 0 = latency in microseconds.
  std::vector<double> lat(total, 0.0);
  std::vector<std::uint8_t> is_read(total, 0);
  std::atomic<std::size_t> completed{0};
  std::mutex mu;
  std::condition_variable cv;

  const auto t0 = Clock::now() + std::chrono::milliseconds(10);
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      std::mt19937_64 rng(seed + static_cast<std::uint64_t>(t) * 7919);
      std::uniform_int_distribution<VertexId> vtx(0, n - 1);
      std::uniform_int_distribution<int> pct(0, 99);
      std::uniform_real_distribution<double> wgt(0.0, 1.0);
      for (std::size_t i = 0; i < ops_per_thread; ++i) {
        const std::size_t slot = static_cast<std::size_t>(t) * ops_per_thread + i;
        const auto scheduled = t0 +
                               period * static_cast<Clock::duration::rep>(i) +
                               stagger * t;
        std::this_thread::sleep_until(scheduled);

        Request req;
        req.session = "g";
        const int roll = pct(rng);
        // 0 = write, 1 = read, 2 = index query.
        const int kind = roll < mix.read_pct                  ? 1
                         : roll < mix.read_pct + mix.query_pct ? 2
                                                               : 0;
        is_read[slot] = static_cast<std::uint8_t>(kind);
        if (kind == 1) {
          if (pct(rng) < 50) {
            req.op = Op::kWeight;
          } else {
            req.op = Op::kConnected;
            req.u = vtx(rng);
            req.v = vtx(rng);
            while (req.v == req.u) req.v = vtx(rng);
          }
        } else if (kind == 2) {
          // Mostly the O(log n)/O(1) index ops, an occasional top-k scan.
          const int q = pct(rng);
          if (q < 45) {
            req.op = Op::kPathMax;
          } else if (q < 90) {
            req.op = Op::kConn;
          } else {
            req.op = Op::kTopK;
            req.limit = 8;
          }
          if (req.op != Op::kTopK) {
            req.u = vtx(rng);
            req.v = vtx(rng);
            while (req.v == req.u) req.v = vtx(rng);
          }
        } else {
          req.op = Op::kInsert;
          VertexId u = vtx(rng), v = vtx(rng);
          while (v == u) v = vtx(rng);
          req.insertions.push_back(WEdge{u, v, wgt(rng)});
        }
        const bool accepted = svc.submit(req, [&, slot, scheduled](const Response& r) {
          if (r.ok()) {
            lat[slot] = std::chrono::duration<double, std::micro>(
                            Clock::now() - scheduled)
                            .count();
          } else {
            lat[slot] = r.status == Status::kOverloaded ? -1.0 : -2.0;
          }
          if (completed.fetch_add(1, std::memory_order_acq_rel) + 1 == total) {
            std::lock_guard<std::mutex> lk(mu);
            cv.notify_one();
          }
        });
        if (!accepted && completed.load(std::memory_order_acquire) == total) {
          break;  // unreachable in practice; submit always invokes done
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return completed.load(std::memory_order_acquire) == total; });
  }
  MixResult r;
  r.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  for (std::size_t i = 0; i < total; ++i) {
    if (lat[i] == -1.0) {
      ++r.rejected;
    } else if (lat[i] == -2.0) {
      ++r.errors;
    } else {
      ++r.ok;
      (is_read[i] == 1   ? r.read_us
       : is_read[i] == 2 ? r.query_us
                         : r.write_us)
          .push_back(lat[i]);
    }
  }
  return r;
}

/// One cold-start recovery measurement: log `updates` single-edge inserts
/// through a durable core under maximum write pressure (a large in-flight
/// window, so the flusher coalesces exactly as it would for a real burst),
/// tear the core down with the clean-shutdown marker disabled, then time a
/// fresh ServiceCore recovering the directory (snapshot load + WAL replay).
struct RecoverResult {
  double apply_s = 0;
  double recover_s = 0;
  std::uint64_t wal_records = 0;
  std::uint64_t replayed_records = 0;
  std::size_t errors = 0;
};

RecoverResult run_recover(const std::string& dir, persist::FsyncPolicy fsync,
                          VertexId n, std::size_t updates,
                          std::uint64_t seed) {
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  ServeOptions opts;
  opts.msf.threads = 4;
  opts.dispatchers = 4;
  opts.queue_capacity = 1u << 15;
  opts.data_dir = dir;
  opts.fsync = fsync;
  // The whole point is to replay the tail: never truncate it mid-run and
  // leave no clean marker behind, so the restart takes the cold path.
  opts.snapshot_wal_bytes = ~0ull;
  opts.clean_shutdown = false;

  RecoverResult res;
  {
    ServiceCore svc(opts);
    Request open;
    open.op = Op::kOpen;
    open.session = "g";
    open.num_vertices = n;
    if (!svc.call(open).ok()) {
      std::fprintf(stderr, "recover bench: open failed\n");
      std::exit(1);
    }
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<VertexId> vtx(0, n - 1);
    std::uniform_real_distribution<double> wgt(0.0, 1.0);
    std::atomic<std::size_t> done{0};
    std::atomic<std::size_t> errors{0};
    constexpr std::size_t kWindow = 1u << 14;  // max in-flight writes
    WallTimer t;
    for (std::size_t i = 0; i < updates; ++i) {
      Request ins;
      ins.op = Op::kInsert;
      ins.session = "g";
      VertexId u = vtx(rng), v = vtx(rng);
      while (v == u) v = vtx(rng);
      ins.insertions.push_back(WEdge{u, v, wgt(rng)});
      while (i - done.load(std::memory_order_acquire) >= kWindow) {
        std::this_thread::yield();
      }
      while (!svc.submit(ins, [&](const Response& r) {
        if (!r.ok()) errors.fetch_add(1, std::memory_order_relaxed);
        done.fetch_add(1, std::memory_order_release);
      })) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
    while (done.load(std::memory_order_acquire) < updates) {
      std::this_thread::yield();
    }
    res.apply_s = t.elapsed_s();
    res.errors = errors.load();
    res.wal_records = svc.metrics().persist.wal_appends.load();
    svc.shutdown();  // clean_shutdown=false: the WAL tail stays behind
  }
  {
    WallTimer t;
    ServiceCore svc(opts);  // recovery happens in the constructor
    res.recover_s = t.elapsed_s();
    res.replayed_records = svc.metrics().replayed_records.load();
    svc.shutdown();
  }
  std::filesystem::remove_all(dir, ec);
  return res;
}

// ---------------------------------------------------------------------------
// Scale-out mode (BENCH_09): the same r90w10 mix over a real transport —
// UDS line protocol or TCP binary frames — against a sharded core, swept
// over shard counts.  Clients run closed-loop with a pipelining window of
// `kWindow` requests per batch (the binary transport sends the batch as ONE
// frame), so the comparison captures framing + syscall overhead, not
// client-side think time.

constexpr std::size_t kWindow = 32;

struct ScaleResult {
  std::size_t ok = 0;
  std::size_t errors = 0;
  double wall_s = 0;
  std::vector<double> read_us;
  std::vector<double> write_us;
};

/// One client's worth of requests for one batch: 90 reads / 10 writes.
/// kind: 0 = write, 1 = read.
struct BatchOp {
  int kind;
  Op op;
  VertexId u, v;
  double w;
};

std::vector<BatchOp> make_batch(std::mt19937_64& rng, VertexId n) {
  std::uniform_int_distribution<VertexId> vtx(0, n - 1);
  std::uniform_int_distribution<int> pct(0, 99);
  std::uniform_real_distribution<double> wgt(0.0, 1.0);
  std::vector<BatchOp> ops;
  ops.reserve(kWindow);
  for (std::size_t i = 0; i < kWindow; ++i) {
    BatchOp b{};
    if (pct(rng) < 90) {
      b.kind = 1;
      if (pct(rng) < 50) {
        b.op = Op::kWeight;
      } else {
        b.op = Op::kConnected;
        b.u = vtx(rng);
        b.v = vtx(rng);
        while (b.v == b.u) b.v = vtx(rng);
      }
    } else {
      b.kind = 0;
      b.op = Op::kInsert;
      b.u = vtx(rng);
      b.v = vtx(rng);
      while (b.v == b.u) b.v = vtx(rng);
      b.w = wgt(rng);
    }
    ops.push_back(b);
  }
  return ops;
}

void record_latency(ScaleResult& r, const BatchOp& b, double us, bool ok) {
  if (!ok) {
    ++r.errors;
    return;
  }
  ++r.ok;
  (b.kind == 1 ? r.read_us : r.write_us).push_back(us);
}

/// TCP client loop: each batch goes out as one kBatch frame; responses are
/// matched by correlation id (they may arrive out of order).
void run_scale_client_tcp(std::uint16_t port,
                          const std::vector<std::string>& sessions,
                          VertexId n, std::size_t batches, std::uint64_t seed,
                          ScaleResult& out) {
  using Clock = std::chrono::steady_clock;
  net::TcpClient client("127.0.0.1", port);
  std::mt19937_64 rng(seed);
  for (std::size_t bi = 0; bi < batches; ++bi) {
    const std::string& session = sessions[bi % sessions.size()];
    const std::vector<BatchOp> ops = make_batch(rng, n);
    std::vector<Request> reqs;
    reqs.reserve(ops.size());
    for (const BatchOp& b : ops) {
      Request req;
      req.op = b.op;
      req.session = session;
      req.u = b.u;
      req.v = b.v;
      if (b.op == Op::kInsert) req.insertions.push_back(WEdge{b.u, b.v, b.w});
      reqs.push_back(std::move(req));
    }
    const auto t0 = Clock::now();
    const std::vector<std::uint64_t> ids = client.send_batch(reqs);
    std::unordered_map<std::uint64_t, std::size_t> slot_of;
    slot_of.reserve(ids.size());
    for (std::size_t i = 0; i < ids.size(); ++i) slot_of[ids[i]] = i;
    for (std::size_t got = 0; got < ids.size(); ++got) {
      const net::BinResponse r = client.recv();
      const double us = std::chrono::duration<double, std::micro>(
                            Clock::now() - t0)
                            .count();
      const auto it = slot_of.find(r.id);
      if (it == slot_of.end()) continue;
      record_latency(out, ops[it->second], us, r.resp.ok());
    }
  }
  client.quit();
}

/// UDS client loop: the same batches as pipelined line-protocol requests
/// (kWindow lines written back-to-back, then kWindow responses drained).
void run_scale_client_uds(const std::string& path,
                          const std::vector<std::string>& sessions,
                          VertexId n, std::size_t batches, std::uint64_t seed,
                          ScaleResult& out) {
  using Clock = std::chrono::steady_clock;
  UdsClient client(path);
  std::mt19937_64 rng(seed);
  char line[128];
  for (std::size_t bi = 0; bi < batches; ++bi) {
    const std::string& session = sessions[bi % sessions.size()];
    const std::vector<BatchOp> ops = make_batch(rng, n);
    std::vector<std::string> lines;
    lines.reserve(ops.size());
    for (const BatchOp& b : ops) {
      // The wire is 1-based (DIMACS convention).
      if (b.op == Op::kWeight) {
        std::snprintf(line, sizeof line, "weight %s", session.c_str());
      } else if (b.op == Op::kConnected) {
        std::snprintf(line, sizeof line, "connected %s %llu %llu",
                      session.c_str(),
                      static_cast<unsigned long long>(b.u) + 1,
                      static_cast<unsigned long long>(b.v) + 1);
      } else {
        std::snprintf(line, sizeof line, "insert %s %llu %llu %.17g",
                      session.c_str(),
                      static_cast<unsigned long long>(b.u) + 1,
                      static_cast<unsigned long long>(b.v) + 1, b.w);
      }
      lines.emplace_back(line);
    }
    const auto t0 = Clock::now();
    for (const std::string& l : lines) client.send_line(l);
    for (std::size_t i = 0; i < lines.size(); ++i) {
      const std::vector<std::string> resp = client.read_response(lines[i]);
      const double us = std::chrono::duration<double, std::micro>(
                            Clock::now() - t0)
                            .count();
      record_latency(out, ops[i], us,
                     !resp.empty() && resp.front().rfind("ok", 0) == 0);
    }
  }
}

/// One (transport, shards) configuration: fresh sharded core, 2*shards
/// sessions spread across the shards by name hash, `clients` closed-loop
/// connections.  Returns aggregate throughput and latency tails.
ScaleResult run_scale_config(const std::string& transport, int shards,
                             int dispatchers, int clients, VertexId n,
                             EdgeId m, std::size_t batches_per_client,
                             std::uint64_t seed) {
  ServeOptions opts;
  opts.msf.threads = 2;
  opts.dispatchers = dispatchers;
  opts.queue_capacity = 1u << 14;
  opts.coalesce_window_s = 0.002;
  opts.shards = shards;
  ServiceCore svc(opts);

  std::vector<std::string> sessions;
  for (int s = 0; s < 2 * shards; ++s) {
    sessions.push_back("sc" + std::to_string(s));
  }
  for (std::size_t s = 0; s < sessions.size(); ++s) {
    Request open;
    open.op = Op::kOpen;
    open.session = sessions[s];
    open.num_vertices = n;
    if (!svc.call(open).ok()) {
      std::fprintf(stderr, "scale bench: open %s failed\n",
                   sessions[s].c_str());
      std::exit(1);
    }
    std::mt19937_64 rng(seed + s);
    std::uniform_int_distribution<VertexId> vtx(0, n - 1);
    std::uniform_real_distribution<double> wgt(0.0, 1.0);
    Request ins;
    ins.op = Op::kInsert;
    ins.session = sessions[s];
    for (EdgeId i = 0; i < m; ++i) {
      VertexId u = vtx(rng), v = vtx(rng);
      while (v == u) v = vtx(rng);
      ins.insertions.push_back(WEdge{u, v, wgt(rng)});
    }
    if (!svc.call(ins).ok()) {
      std::fprintf(stderr, "scale bench: prepopulate failed\n");
      std::exit(1);
    }
  }

  std::unique_ptr<UdsServer> uds;
  std::unique_ptr<net::TcpServer> tcp;
  std::string socket_path;
  std::uint16_t port = 0;
  if (transport == "uds") {
    socket_path = (std::filesystem::temp_directory_path() /
                   ("bench_serve_scale_" + std::to_string(::getpid()) +
                    ".sock"))
                      .string();
    uds = std::make_unique<UdsServer>(
        svc, UdsServerOptions{.socket_path = socket_path});
    uds->start();
  } else {
    tcp = std::make_unique<net::TcpServer>(svc,
                                           net::TcpServerOptions{.port = 0});
    tcp->start();
    port = tcp->port();
  }

  using Clock = std::chrono::steady_clock;
  std::vector<ScaleResult> per_client(static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  const auto t0 = Clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const std::uint64_t s = seed + 31 * static_cast<std::uint64_t>(c);
      if (transport == "uds") {
        run_scale_client_uds(socket_path, sessions, n, batches_per_client, s,
                             per_client[static_cast<std::size_t>(c)]);
      } else {
        run_scale_client_tcp(port, sessions, n, batches_per_client, s,
                             per_client[static_cast<std::size_t>(c)]);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  ScaleResult total;
  total.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  for (ScaleResult& r : per_client) {
    total.ok += r.ok;
    total.errors += r.errors;
    total.read_us.insert(total.read_us.end(), r.read_us.begin(),
                         r.read_us.end());
    total.write_us.insert(total.write_us.end(), r.write_us.begin(),
                          r.write_us.end());
  }
  if (uds != nullptr) uds->stop();
  if (tcp != nullptr) tcp->stop();
  svc.shutdown();
  return total;
}

int run_scale_mode(const std::string& transport, int dispatchers,
                   const bench::Args& args) {
  const auto n = static_cast<VertexId>(
      std::max<std::size_t>(64, args.size(2000, 20000)));
  const auto m = static_cast<EdgeId>(3 * static_cast<EdgeId>(n));
  const int clients = std::max(2, args.max_threads / 2);
  const std::size_t batches_per_client = std::max<std::size_t>(
      4, args.size(4000, 40000) / kWindow);

  std::vector<std::string> transports;
  if (transport == "both") {
    transports = {"uds", "tcp"};
  } else {
    transports = {transport};
  }

  std::printf("bench_serve --transport %s  n=%llu m=%llu clients=%d"
              " window=%zu dispatchers=%d\n",
              transport.c_str(), static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(m), clients, kWindow,
              dispatchers);
  std::printf("%-6s %7s %10s %8s %8s %9s %9s %9s %9s\n", "trans", "shards",
              "rps", "ok", "err", "r.p50ms", "r.p99ms", "w.p50ms", "w.p99ms");

  bench::JsonSink sink;
  for (const int shards : {1, 2, 4}) {
    for (const std::string& t : transports) {
      ScaleResult r = run_scale_config(t, shards, dispatchers, clients, n, m,
                                       batches_per_client, args.seed);
      const double rps = static_cast<double>(r.ok) / r.wall_s;
      const double rp50 = quantile_us(r.read_us, 0.50) / 1000.0;
      const double rp99 = quantile_us(r.read_us, 0.99) / 1000.0;
      const double wp50 = quantile_us(r.write_us, 0.50) / 1000.0;
      const double wp99 = quantile_us(r.write_us, 0.99) / 1000.0;
      std::printf("%-6s %7d %10.1f %8zu %8zu %9.3f %9.3f %9.3f %9.3f\n",
                  t.c_str(), shards, rps, r.ok, r.errors, rp50, rp99, wp50,
                  wp99);
      if (r.errors != 0) {
        std::fprintf(stderr, "scale bench: %zu request errors\n", r.errors);
        return 1;
      }
      char rec[512];
      std::snprintf(
          rec, sizeof rec,
          "{\"tag\": \"serve_scale\", \"transport\": \"%s\", \"shards\": %d, "
          "\"dispatchers\": %d, \"clients\": %d, \"window\": %zu, "
          "\"sessions\": %d, \"mix\": \"r90w10\", \"n\": %llu, \"m\": %llu, "
          "\"ok\": %zu, \"rps\": %.1f, \"read_p50_ms\": %.3f, "
          "\"read_p99_ms\": %.3f, \"write_p50_ms\": %.3f, "
          "\"write_p99_ms\": %.3f}",
          t.c_str(), shards, dispatchers, clients, kWindow, 2 * shards,
          static_cast<unsigned long long>(n),
          static_cast<unsigned long long>(m), r.ok, rps, rp50, rp99, wp50,
          wp99);
      sink.add(rec);
    }
  }
  sink.write("bench_serve_scale", args);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the durability flags before the shared parser sees them (it
  // rejects unknown flags).
  std::string data_dir;
  persist::FsyncPolicy fsync = persist::FsyncPolicy::kInterval;
  bool recover_mode = false;
  std::string transport = "inproc";
  int dispatchers = 4;
  std::vector<Mix> mixes;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const auto need = [&](const char* flag) -> char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_serve: missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--data-dir") == 0) {
      data_dir = need("--data-dir");
    } else if (std::strcmp(argv[i], "--fsync") == 0) {
      fsync = persist::parse_fsync_policy(need("--fsync"));
    } else if (std::strcmp(argv[i], "--recover") == 0) {
      recover_mode = true;
    } else if (std::strcmp(argv[i], "--mix") == 0) {
      mixes.push_back(parse_mix(need("--mix")));
    } else if (std::strcmp(argv[i], "--transport") == 0) {
      transport = need("--transport");
      if (transport != "inproc" && transport != "uds" && transport != "tcp" &&
          transport != "both") {
        std::fprintf(stderr,
                     "bench_serve: --transport wants inproc|uds|tcp|both\n");
        std::exit(2);
      }
    } else if (std::strcmp(argv[i], "--dispatchers") == 0) {
      dispatchers = std::atoi(need("--dispatchers"));
      if (dispatchers < 1) {
        std::fprintf(stderr, "bench_serve: --dispatchers wants >= 1\n");
        std::exit(2);
      }
    } else {
      rest.push_back(argv[i]);
    }
  }
  if (mixes.empty()) {
    mixes = {parse_mix("r90w10"), parse_mix("r50w50")};
  }
  const bench::Args args =
      bench::parse_args(static_cast<int>(rest.size()), rest.data());
  if (transport != "inproc") {
    return run_scale_mode(transport, dispatchers, args);
  }
  if ((recover_mode || !data_dir.empty()) && data_dir.empty()) {
    data_dir = (std::filesystem::temp_directory_path() /
                ("bench_serve_data_" + std::to_string(::getpid())))
                   .string();
  }

  if (recover_mode) {
    std::printf("bench_serve --recover  fsync=%s\n",
                std::string(persist::to_string(fsync)).c_str());
    std::printf("%-10s %10s %10s %10s %8s %10s %10s\n", "updates", "n",
                "apply_s", "recover_s", "ratio", "wal_recs", "replayed");
    bench::JsonSink sink;
    for (const std::size_t base : {10'000ul, 100'000ul, 1'000'000ul}) {
      const std::size_t updates = std::max<std::size_t>(64, args.size(base, base));
      const auto n = static_cast<VertexId>(
          std::max<std::size_t>(256, updates / 20));
      const RecoverResult r = run_recover(
          data_dir + "/recover_" + std::to_string(base), fsync, n, updates,
          args.seed);
      const double ratio = r.apply_s > 0 ? r.recover_s / r.apply_s : 0.0;
      std::printf("%-10zu %10llu %10.3f %10.3f %8.2f %10llu %10llu\n",
                  updates, static_cast<unsigned long long>(n), r.apply_s,
                  r.recover_s, ratio,
                  static_cast<unsigned long long>(r.wal_records),
                  static_cast<unsigned long long>(r.replayed_records));
      if (r.errors != 0) {
        std::fprintf(stderr, "recover bench: %zu write errors\n", r.errors);
        return 1;
      }
      char rec[512];
      std::snprintf(
          rec, sizeof rec,
          "{\"tag\": \"recover\", \"updates\": %zu, \"n\": %llu, "
          "\"fsync\": \"%s\", \"apply_s\": %.4f, \"recover_s\": %.4f, "
          "\"replay_ratio\": %.3f, \"wal_records\": %llu, "
          "\"replayed_records\": %llu}",
          updates, static_cast<unsigned long long>(n),
          std::string(persist::to_string(fsync)).c_str(), r.apply_s,
          r.recover_s, ratio, static_cast<unsigned long long>(r.wal_records),
          static_cast<unsigned long long>(r.replayed_records));
      sink.add(rec);
    }
    sink.write("bench_serve_recover", args);
    return 0;
  }
  const auto n = static_cast<VertexId>(args.size(20000, 100000));
  const auto m = static_cast<EdgeId>(3 * static_cast<EdgeId>(n));
  const int clients = std::max(2, args.max_threads);
  const double target_rps = 1500.0;
  const std::size_t ops_per_client = 3000 / static_cast<std::size_t>(clients);

  const bool durable = !data_dir.empty();
  const std::string fsync_name =
      durable ? std::string(persist::to_string(fsync)) : "none";

  std::printf("bench_serve  n=%llu m=%llu clients=%d target_rps=%.0f"
              " fsync=%s\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(m), clients, target_rps,
              fsync_name.c_str());
  std::printf("%-10s %10s %8s %8s %9s %9s %9s %9s %9s %9s %7s\n", "mix",
              "rps", "ok", "rej", "p50ms", "p95ms", "p99ms", "w.p50ms",
              "w.p99ms", "q.p99ms", "coal");

  bench::JsonSink sink;
  for (const Mix& mix : mixes) {
    // A fresh core per mix isolates the metrics registry and the store.
    ServeOptions opts;
    opts.msf.threads = 4;
    opts.dispatchers = 4;
    opts.queue_capacity = 1024;
    opts.coalesce_window_s = 0.002;
    if (durable) {
      // Fresh per-mix directory: mixes must not recover each other's state.
      opts.data_dir = data_dir + "/mix_" + mix.name;
      opts.fsync = fsync;
      std::error_code ec;
      std::filesystem::remove_all(opts.data_dir, ec);
    }
    ServiceCore svc(opts);
    prepopulate(svc, n, m, args.seed);
    svc.metrics().reset_counters();

    MixResult r =
        run_mix(svc, mix, n, clients, ops_per_client, target_rps, args.seed);

    std::vector<double> all;
    all.reserve(r.read_us.size() + r.write_us.size());
    all.insert(all.end(), r.read_us.begin(), r.read_us.end());
    all.insert(all.end(), r.write_us.begin(), r.write_us.end());
    const double p50 = quantile_us(all, 0.50) / 1000.0;
    const double p95 = quantile_us(all, 0.95) / 1000.0;
    const double p99 = quantile_us(all, 0.99) / 1000.0;
    const double wp50 = quantile_us(r.write_us, 0.50) / 1000.0;
    const double wp99 = quantile_us(r.write_us, 0.99) / 1000.0;
    const double rp50 = quantile_us(r.read_us, 0.50) / 1000.0;
    const double rp99 = quantile_us(r.read_us, 0.99) / 1000.0;
    const double qp50 = quantile_us(r.query_us, 0.50) / 1000.0;
    const double qp99 = quantile_us(r.query_us, 0.99) / 1000.0;
    const double rps = static_cast<double>(r.ok) / r.wall_s;
    const auto batches = svc.metrics().apply_batches.load();
    const auto coalesced = svc.metrics().coalesced_writes.load();
    const double avg_coalesce =
        batches == 0 ? 0.0
                     : static_cast<double>(coalesced) / static_cast<double>(batches);

    std::printf(
        "%-10s %10.1f %8zu %8zu %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f %7.2f\n",
        mix.name.c_str(), rps, r.ok, r.rejected, p50, p95, p99, wp50, wp99,
        qp99, avg_coalesce);

    char rec[1024];
    std::snprintf(
        rec, sizeof rec,
        "{\"tag\": \"serve\", \"mix\": \"%s\", \"read_pct\": %d, "
        "\"query_pct\": %d, \"fsync\": \"%s\", "
        "\"n\": %llu, \"m\": %llu, \"clients\": %d, \"target_rps\": %.0f, "
        "\"achieved_rps\": %.1f, \"ok\": %zu, \"rejected\": %zu, "
        "\"errors\": %zu, \"p50_ms\": %.3f, \"p95_ms\": %.3f, "
        "\"p99_ms\": %.3f, \"read_p50_ms\": %.3f, \"read_p99_ms\": %.3f, "
        "\"query_p50_ms\": %.3f, \"query_p99_ms\": %.3f, "
        "\"write_p50_ms\": %.3f, \"write_p99_ms\": %.3f, "
        "\"apply_batches\": %llu, \"coalesced_writes\": %llu, "
        "\"avg_coalesce\": %.2f}",
        mix.name.c_str(), mix.read_pct, mix.query_pct, fsync_name.c_str(),
        static_cast<unsigned long long>(n),
        static_cast<unsigned long long>(m), clients, target_rps, rps, r.ok,
        r.rejected, r.errors, p50, p95, p99, rp50, rp99, qp50, qp99, wp50,
        wp99, static_cast<unsigned long long>(batches),
        static_cast<unsigned long long>(coalesced), avg_coalesce);
    sink.add(rec);
    svc.shutdown();
  }
  sink.write("bench_serve", args);
  if (durable) {
    std::error_code ec;
    std::filesystem::remove_all(data_dir, ec);
  }
  return 0;
}
