// Extension bench: the 2004 designs versus their modern successor.  Bor-UF
// (Borůvka over a shared lock-free union-find, the structure Galois and
// PBBS/GBBS later converged on) never materializes the contracted graph —
// comparing it with the paper's best two variants shows how much of their
// compact-graph engineering the union-find sidesteps.
#include <cstdio>

#include "common.hpp"
#include "core/bor_uf.hpp"
#include "core/msf.hpp"
#include "graph/generators.hpp"

using namespace smp;
using namespace smp::graph;

namespace {

void run_case(const char* name, const EdgeList& g, const bench::Args& args) {
  bench::banner(name, g);
  std::printf("  %-10s %12s %12s %12s\n", "p", "Bor-ALM", "Bor-FAL", "Bor-UF");
  for (int p = 1; p <= args.max_threads; p *= 2) {
    double t_alm = 0, t_fal = 0, t_uf = 0;
    {
      core::MsfOptions opts;
      opts.threads = p;
      opts.algorithm = core::Algorithm::kBorALM;
      t_alm = bench::time_best_of(
          args.reps, [&] { (void)core::minimum_spanning_forest(g, opts); });
      opts.algorithm = core::Algorithm::kBorFAL;
      t_fal = bench::time_best_of(
          args.reps, [&] { (void)core::minimum_spanning_forest(g, opts); });
    }
    t_uf = bench::time_best_of(args.reps, [&] { (void)core::bor_uf_msf(g, p); });
    std::printf("  %-10d %11.3fs %11.3fs %11.3fs\n", p, t_alm, t_fal, t_uf);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  const auto n = static_cast<VertexId>(args.size(100000, 1000000));
  run_case("2004 vs modern / random m=6n",
           random_graph(n, 6 * static_cast<EdgeId>(n), args.seed), args);
  run_case("2004 vs modern / mesh2d60",
           mesh2d_p(static_cast<VertexId>(args.size(316, 1000)),
                    static_cast<VertexId>(args.size(316, 1000)), 0.6, args.seed),
           args);
  run_case("2004 vs modern / rmat m=8n", rmat_graph(17, 8ull << 17, args.seed),
           args);
  run_case("2004 vs modern / str0", structured_graph(0, n, args.seed), args);
  return 0;
}
