#include "common.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "core/msf.hpp"
#include "pprim/machine.hpp"
#include "seq/seq_msf.hpp"

namespace bench {

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--scale") == 0) {
      a.scale = std::strtod(next(), nullptr);
    } else if (std::strcmp(arg, "--paper") == 0) {
      a.paper = true;
    } else if (std::strcmp(arg, "--threads") == 0) {
      a.max_threads = std::atoi(next());
    } else if (std::strcmp(arg, "--seed") == 0) {
      a.seed = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(arg, "--reps") == 0) {
      a.reps = std::atoi(next());
    } else if (std::strcmp(arg, "--json") == 0) {
      a.json_path = next();
    } else if (std::strcmp(arg, "--help") == 0) {
      std::printf(
          "options: --scale F  --paper  --threads N  --seed S  --reps R  "
          "--json PATH\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option %s (try --help)\n", arg);
      std::exit(2);
    }
  }
  // Benches sweep p up to --threads even on smaller machines (the paper's
  // oversubscription runs); flag it so a result file is never mistaken for a
  // true scaling measurement.
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw != 0 && a.max_threads > static_cast<int>(hw)) {
    std::fprintf(stderr,
                 "warning: --threads %d exceeds the %u available hardware "
                 "thread(s); timings reflect oversubscription\n",
                 a.max_threads, hw);
  }
  return a;
}

double time_best_of(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < (reps > 0 ? reps : 1); ++r) {
    smp::WallTimer t;
    fn();
    best = std::min(best, t.elapsed_s());
  }
  return best;
}

void banner(const std::string& title, const smp::graph::EdgeList& g) {
  std::printf("== %s: n=%u m=%llu ==\n", title.c_str(), g.num_vertices,
              static_cast<unsigned long long>(g.num_edges()));
}

SeqBest run_sequential_baselines(const smp::graph::EdgeList& g, int reps) {
  using smp::core::Algorithm;
  SeqBest best;
  best.seconds = 1e300;
  struct Row {
    Algorithm alg;
    smp::graph::MsfResult (*fn)(const smp::graph::EdgeList&);
  };
  const Row rows[] = {{Algorithm::kSeqPrim, smp::seq::prim_msf},
                      {Algorithm::kSeqKruskal, smp::seq::kruskal_msf},
                      {Algorithm::kSeqBoruvka, smp::seq::boruvka_msf}};
  for (const auto& row : rows) {
    double weight = 0;
    const double s = time_best_of(reps, [&] { weight = row.fn(g).total_weight; });
    std::printf("  seq %-8s %8.3fs   (weight %.4f)\n",
                std::string(smp::core::to_string(row.alg)).c_str(), s, weight);
    if (s < best.seconds) {
      best.seconds = s;
      best.name = smp::core::to_string(row.alg);
    }
  }
  std::printf("  best sequential: %s (%.3fs)\n", best.name.c_str(), best.seconds);
  return best;
}

void run_parallel_comparison(const smp::graph::EdgeList& g, const Args& args,
                             JsonSink* sink, const std::string& tag) {
  const SeqBest best = run_sequential_baselines(g, args.reps);

  std::vector<int> thread_counts;
  for (int p = 1; p <= args.max_threads; p *= 2) thread_counts.push_back(p);
  if (thread_counts.back() != args.max_threads) thread_counts.push_back(args.max_threads);

  std::printf("  %-8s", "p");
  for (const auto alg : smp::core::kParallelAlgorithms) {
    std::printf(" %14s", std::string(smp::core::to_string(alg)).c_str());
  }
  std::printf("\n");
  for (const int p : thread_counts) {
    std::printf("  %-8d", p);
    for (const auto alg : smp::core::kParallelAlgorithms) {
      smp::core::MsfOptions opts;
      opts.algorithm = alg;
      opts.threads = p;
      opts.seed = args.seed;
      const double s = time_best_of(
          args.reps, [&] { (void)smp::core::minimum_spanning_forest(g, opts); });
      std::printf(" %7.3fs %5.2fx", s, best.seconds / s);
      if (sink != nullptr) {
        char buf[512];
        std::snprintf(buf, sizeof buf,
                      "{\"tag\": \"%s\", \"n\": %u, \"m\": %llu, "
                      "\"alg\": \"%s\", \"threads\": %d, \"seconds\": %.6f, "
                      "\"speedup_vs_best_seq\": %.4f, \"best_seq\": \"%s\"}",
                      tag.c_str(), g.num_vertices,
                      static_cast<unsigned long long>(g.num_edges()),
                      std::string(smp::core::to_string(alg)).c_str(), p, s,
                      best.seconds / s, best.name.c_str());
        sink->add(buf);
      }
    }
    std::printf("\n");
  }
  std::printf("  (speedup is versus best sequential: %s)\n\n", best.name.c_str());
}

void JsonSink::write(const std::string& bench_name, const Args& args) const {
  if (args.json_path.empty()) return;
  std::FILE* f = std::fopen(args.json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", args.json_path.c_str());
    std::exit(2);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"%s\",\n"
               "  \"meta\": {\"scale\": %g, \"paper\": %s, \"max_threads\": %d, "
               "\"seed\": %llu, \"reps\": %d, \"hardware_concurrency\": %u, "
               "\"threads_requested\": %d, \"threads_available\": %u, "
               "\"oversubscribed\": %s, \"machine\": %s",
               bench_name.c_str(), args.scale, args.paper ? "true" : "false",
               args.max_threads, static_cast<unsigned long long>(args.seed),
               args.reps, hw, args.max_threads, hw,
               (hw != 0 && args.max_threads > static_cast<int>(hw)) ? "true"
                                                                    : "false",
               smp::machine_profile_json().c_str());
  for (const auto& [key, value] : meta_extra_) {
    std::fprintf(f, ", \"%s\": %s", key.c_str(), value.c_str());
  }
  std::fprintf(f, "},\n  \"records\": [\n");
  for (std::size_t i = 0; i < records_.size(); ++i) {
    std::fprintf(f, "    %s%s\n", records_[i].c_str(),
                 i + 1 < records_.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu records)\n", args.json_path.c_str(), records_.size());
}

}  // namespace bench
