// Fig. 4 of the paper: all five parallel algorithms versus the best
// sequential algorithm on random graphs with n fixed and m = 4n, 6n, 10n,
// 20n, across a thread sweep.  The paper's headline: Bor-FAL reaches ~5x
// speedup at p=8 on the 1M/20M input (against sequential Prim).
#include "common.hpp"
#include "graph/generators.hpp"

using namespace smp;
using namespace smp::graph;

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  const auto n = static_cast<VertexId>(args.size(100000, 1000000));
  bench::JsonSink sink;
  for (const int density : {4, 6, 10, 20}) {
    const auto m = static_cast<EdgeId>(density) * n;
    const EdgeList g = random_graph(n, m, args.seed + static_cast<std::uint64_t>(density));
    bench::banner("Fig 4 / random", g);
    bench::run_parallel_comparison(g, args, &sink,
                                   "random/m=" + std::to_string(density) + "n");
  }
  sink.write("fig4_random", args);
  return 0;
}
