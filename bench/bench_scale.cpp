// BENCH_10: the billion-edge storage path.  For random degree-10 graphs at
// two sizes (defaults m = 1M and 10M; --paper m = 10M and 100M) this
// measures
//
//   scale_storage  bytes/edge of the compressed CSR (structure and total),
//                  encode time, and bulk varint decode throughput in GB/s
//   scale_solve    Champion solve time streaming from the compressed graph
//                  versus the identical canonicalized uncompressed edge
//                  list, per thread count, plus a forest bit-identity check
//   scale_tuning   Champion solve with the compile-time default cutoffs
//                  versus the machine auto-calibrated ones
//
// bench_compare.py gates all three families: structure bytes/edge <= 5.0 at
// degree 10, compressed solve <= 1.25x uncompressed, calibrated solve never
// > 5% slower than the defaults, forests identical.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/compressed_solve.hpp"
#include "core/msf.hpp"
#include "graph/compressed_csr.hpp"
#include "graph/generators.hpp"
#include "pprim/machine.hpp"
#include "pprim/timer.hpp"
#include "pprim/tuning.hpp"

using namespace smp;
using namespace smp::graph;

namespace {

bool same_forest(const MsfResult& a, const MsfResult& b) {
  return a.edge_ids == b.edge_ids && a.total_weight == b.total_weight &&
         a.num_trees == b.num_trees;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  bench::JsonSink sink;

  const CalibrationResult cal = auto_calibrate(/*apply=*/false);
  sink.add_meta("calibration", calibration_json(cal));
  std::printf("machine: %s\n", machine_profile_json().c_str());
  std::printf("calibration (%.3fs): parallel_for=%zu sample_sort=%zu "
              "hash_seq=%zu\n\n",
              cal.elapsed_s, cal.parallel_for_cutoff, cal.sample_sort_cutoff,
              cal.compact_hash_seq_cutoff);

  std::vector<int> thread_counts;
  for (int p = 1; p <= args.max_threads; p *= 2) thread_counts.push_back(p);

  for (const std::size_t mult : {std::size_t{1}, std::size_t{10}}) {
    const auto n = static_cast<VertexId>(args.size(100000, 1000000) * mult);
    const auto m = EdgeId{10} * n;
    const EdgeList raw =
        random_graph(n, m, args.seed + static_cast<std::uint64_t>(mult));
    bench::banner("BENCH_10 / scale", raw);

    // --- scale_storage: encode, footprint, decode throughput. ------------
    WallTimer enc_t;
    const CompressedCsr cz = CompressedCsr::build(raw);
    const double enc_s = enc_t.elapsed_s();
    const auto cm = cz.num_edges();
    const double structure_bpe =
        static_cast<double>(cz.structure_bytes()) / static_cast<double>(cm);
    const double total_bpe =
        static_cast<double>(cz.total_bytes()) / static_cast<double>(cm);
    std::vector<VertexId> targets(cm);
    const double dec_s =
        bench::time_best_of(args.reps, [&] { cz.decode_targets(targets.data()); });
    const double dec_gbps =
        static_cast<double>(cz.adjacency_bytes()) / 1e9 / dec_s;
    std::printf("  storage: %.2f B/edge structure (%.2f total), encode %.3fs, "
                "decode %.2f GB/s\n",
                structure_bpe, total_bpe, enc_s, dec_gbps);
    {
      char buf[512];
      std::snprintf(buf, sizeof buf,
                    "{\"tag\": \"scale_storage\", \"n\": %u, \"m\": %llu, "
                    "\"density\": 10, \"structure_bytes_per_edge\": %.4f, "
                    "\"total_bytes_per_edge\": %.4f, \"encode_s\": %.6f, "
                    "\"decode_gbps\": %.4f}",
                    cz.num_vertices(), static_cast<unsigned long long>(cm),
                    structure_bpe, total_bpe, enc_s, dec_gbps);
      sink.add(buf);
    }

    // --- scale_solve: compressed stream vs identical uncompressed list. ---
    const EdgeList decoded = cz.decode_edge_list();
    for (const int p : thread_counts) {
      core::MsfOptions opts;
      opts.algorithm = core::Algorithm::kChampion;
      opts.threads = p;
      opts.seed = args.seed;
      MsfResult rc, ru;
      const double sc = bench::time_best_of(
          args.reps, [&] { rc = core::minimum_spanning_forest_compressed(cz, opts); });
      const double su = bench::time_best_of(
          args.reps, [&] { ru = core::minimum_spanning_forest(decoded, opts); });
      const bool ident = same_forest(rc, ru);
      std::printf("  solve p=%d: compressed %.3fs vs uncompressed %.3fs "
                  "(%.2fx)%s\n",
                  p, sc, su, sc / su, ident ? "" : "  FOREST MISMATCH");
      char buf[512];
      std::snprintf(buf, sizeof buf,
                    "{\"tag\": \"scale_solve\", \"n\": %u, \"m\": %llu, "
                    "\"threads\": %d, \"compressed_s\": %.6f, "
                    "\"uncompressed_s\": %.6f, \"ratio\": %.4f, "
                    "\"identical\": %s}",
                    cz.num_vertices(), static_cast<unsigned long long>(cm), p,
                    sc, su, sc / su, ident ? "true" : "false");
      sink.add(buf);
      if (p == thread_counts.back()) {
        std::snprintf(buf, sizeof buf,
                      "{\"check\": \"compressed_identity\", \"m\": %llu, "
                      "\"identical\": %s}",
                      static_cast<unsigned long long>(cm),
                      ident ? "true" : "false");
        sink.add(buf);
      }
    }

    // --- scale_tuning: default cutoffs vs auto-calibrated. ----------------
    {
      core::MsfOptions opts;
      opts.algorithm = core::Algorithm::kChampion;
      opts.threads = args.max_threads;
      opts.seed = args.seed;
      double s_def, s_cal;
      {
        ScopedTuning st(kDefaultParallelForCutoff, kDefaultSampleSortCutoff,
                        kCompactHashSeqCutoff);
        s_def = bench::time_best_of(
            args.reps, [&] { (void)core::minimum_spanning_forest(decoded, opts); });
      }
      {
        ScopedTuning st(cal.parallel_for_cutoff, cal.sample_sort_cutoff,
                        cal.compact_hash_seq_cutoff);
        s_cal = bench::time_best_of(
            args.reps, [&] { (void)core::minimum_spanning_forest(decoded, opts); });
      }
      std::printf("  tuning p=%d: default %.3fs vs calibrated %.3fs (%.2fx)\n\n",
                  args.max_threads, s_def, s_cal, s_cal / s_def);
      char buf[512];
      std::snprintf(buf, sizeof buf,
                    "{\"tag\": \"scale_tuning\", \"n\": %u, \"m\": %llu, "
                    "\"threads\": %d, \"default_s\": %.6f, "
                    "\"calibrated_s\": %.6f, \"ratio\": %.4f}",
                    cz.num_vertices(), static_cast<unsigned long long>(cm),
                    args.max_threads, s_def, s_cal, s_cal / s_def);
      sink.add(buf);
    }
  }

  sink.write("bench_scale", args);
  return 0;
}
