#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "graph/edge_list.hpp"
#include "pprim/timer.hpp"

namespace bench {

/// Shared command line of all paper-reproduction benches.
///
///   --scale F     multiply default problem sizes by F (default 1.0)
///   --paper       use the paper's full sizes (n = 1M etc.)
///   --threads N   max thread count for sweeps (default 8)
///   --seed S      generator seed
///   --reps R      timing repetitions, best-of (default 1)
///   --json PATH   also write machine-readable results to PATH
struct Args {
  double scale = 1.0;
  bool paper = false;
  int max_threads = 8;
  std::uint64_t seed = 12345;
  int reps = 1;
  std::string json_path;

  /// Scaled size: `paper_value` when --paper, else `default_value * scale`.
  [[nodiscard]] std::size_t size(std::size_t default_value, std::size_t paper_value) const {
    if (paper) return paper_value;
    return static_cast<std::size_t>(static_cast<double>(default_value) * scale);
  }
};

Args parse_args(int argc, char** argv);

/// Best-of-`reps` wall time of `fn`, in seconds.
double time_best_of(int reps, const std::function<void()>& fn);

/// Prints "name  n=<n> m=<m>" style banner.
void banner(const std::string& title, const smp::graph::EdgeList& g);

/// Times the three sequential baselines; prints one row per algorithm and
/// returns the best (name, seconds) — the paper's speedup reference.
struct SeqBest {
  std::string name;
  double seconds = 0;
};
SeqBest run_sequential_baselines(const smp::graph::EdgeList& g, int reps);

/// Collects machine-readable result rows and writes them as one JSON
/// document.  Each row is a complete JSON object literal the bench formats
/// itself (flat string/number fields); write() wraps them with a meta block
/// (sizes, thread cap, seed, reps, hardware concurrency, and always a
/// "machine" MachineProfile object — committed baselines must carry the host
/// they were recorded on) so a result file is self-describing.  No-op when
/// --json was not given.
class JsonSink {
 public:
  void add(std::string record) { records_.push_back(std::move(record)); }
  /// Splice an extra `"key": value_json` pair into the meta block (e.g. the
  /// auto-calibration result).  `value_json` must be a complete JSON value.
  void add_meta(std::string key, std::string value_json) {
    meta_extra_.emplace_back(std::move(key), std::move(value_json));
  }
  void write(const std::string& bench_name, const Args& args) const;

 private:
  std::vector<std::string> records_;
  std::vector<std::pair<std::string, std::string>> meta_extra_;
};

/// The Fig. 4/5/6 harness: per parallel algorithm × thread count, wall time
/// and speedup versus the best sequential algorithm on this input.  When
/// `sink` is non-null every timed row is also appended to it, tagged `tag`.
void run_parallel_comparison(const smp::graph::EdgeList& g, const Args& args,
                             JsonSink* sink = nullptr,
                             const std::string& tag = {});

}  // namespace bench
