// Ablation: MST-BC's sequential-base-size knob.  §4 notes the algorithm
// behaves as Prim at p=1 and Borůvka at p=n; the base size decides how much
// of the recursion tail is handed to sequential Kruskal.  Sweep it on a
// random graph and a structured worst case.
#include <cstdio>

#include "common.hpp"
#include "core/msf.hpp"
#include "graph/generators.hpp"

using namespace smp;
using namespace smp::graph;

namespace {

void sweep(const char* name, const EdgeList& g, const bench::Args& args) {
  bench::banner(name, g);
  std::printf("  %-12s", "base size");
  for (int p = 1; p <= args.max_threads; p *= 2) std::printf(" %9s%d", "p=", p);
  std::printf("\n");
  for (const VertexId base : {0u, 64u, 512u, 4096u, 32768u}) {
    std::printf("  %-12u", base);
    for (int p = 1; p <= args.max_threads; p *= 2) {
      core::MsfOptions opts;
      opts.algorithm = core::Algorithm::kMstBC;
      opts.threads = p;
      opts.bc_base_size = base;
      opts.seed = args.seed;
      const double s = bench::time_best_of(
          args.reps, [&] { (void)core::minimum_spanning_forest(g, opts); });
      std::printf(" %9.3fs", s);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  const auto n = static_cast<VertexId>(args.size(100000, 1000000));
  sweep("MST-BC base sweep / random m=6n",
        random_graph(n, 6 * static_cast<EdgeId>(n), args.seed), args);
  sweep("MST-BC base sweep / str0", structured_graph(0, n, args.seed), args);
  return 0;
}
