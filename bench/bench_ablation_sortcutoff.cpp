// Ablation (google-benchmark): the insertion-sort cutoff in Bor-AL's
// per-adjacency-list sorts.  §2.2 of the paper observes that ~80% of the
// lists of a very sparse random graph have 1–100 elements and picks
// insertion sort for those; this bench sweeps the cutoff over a realistic
// list-length distribution (the degree distribution of a random graph).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "pprim/rng.hpp"
#include "pprim/seq_sort.hpp"

namespace {

using namespace smp;
using namespace smp::graph;

struct Workload {
  // Concatenated lists with their extents, mirroring adjacency arrays.
  std::vector<std::uint64_t> data;
  std::vector<std::size_t> offsets;
};

/// Lists sized like the adjacency lists of random_graph(n, 3n).
const Workload& workload() {
  static const Workload w = [] {
    Workload wl;
    const EdgeList g = random_graph(20000, 60000, 42);
    const CsrGraph c(g);
    Rng rng(7);
    wl.offsets.push_back(0);
    for (VertexId v = 0; v < c.num_vertices(); ++v) {
      for (std::size_t i = 0; i < c.degree(v); ++i) wl.data.push_back(rng.next());
      wl.offsets.push_back(wl.data.size());
    }
    return wl;
  }();
  return w;
}

void BM_PerListSort(benchmark::State& state) {
  const auto cutoff = static_cast<std::size_t>(state.range(0));
  const Workload& w = workload();
  std::vector<std::uint64_t> buf;
  std::vector<std::uint64_t> scratch;
  for (auto _ : state) {
    for (std::size_t v = 0; v + 1 < w.offsets.size(); ++v) {
      const std::size_t len = w.offsets[v + 1] - w.offsets[v];
      buf.assign(w.data.begin() + static_cast<std::ptrdiff_t>(w.offsets[v]),
                 w.data.begin() + static_cast<std::ptrdiff_t>(w.offsets[v + 1]));
      scratch.resize(len);
      seq_sort(std::span<std::uint64_t>(buf), std::span<std::uint64_t>(scratch),
               std::less<>{}, cutoff);
      benchmark::DoNotOptimize(buf.data());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.data.size()));
}

// cutoff 0 = always merge sort; huge cutoff = always insertion sort.
BENCHMARK(BM_PerListSort)->Arg(0)->Arg(8)->Arg(32)->Arg(100)->Arg(256)->Arg(4096);

void BM_WholeArraySortBaseline(benchmark::State& state) {
  // For contrast: one flat std::sort of all list data (ignores bucketing —
  // what Bor-EL effectively pays per iteration, sans parallelism).
  const Workload& w = workload();
  for (auto _ : state) {
    auto copy = w.data;
    std::sort(copy.begin(), copy.end());
    benchmark::DoNotOptimize(copy.data());
  }
}
BENCHMARK(BM_WholeArraySortBaseline);

}  // namespace

BENCHMARK_MAIN();
