// Extension bench: batch-dynamic MSF maintenance versus from-scratch
// recomputation.  For each batch size B we replay K mixed update batches
// (half insertions, half deletions) through DynamicMsf and compare the
// amortised per-batch cost against one full solve of the final live graph —
// the cost a recompute-per-batch strategy would pay.  The crossover point
// (smallest B whose batches start falling back to scratch solves) is
// reported so docs/PERFORMANCE.md numbers can be regenerated.
#include <algorithm>
#include <cstdio>
#include <random>
#include <vector>

#include "common.hpp"
#include "core/msf.hpp"
#include "dynamic/dynamic_msf.hpp"
#include "graph/generators.hpp"

using namespace smp;
using namespace smp::graph;

namespace {

struct Batch {
  std::vector<WEdge> ins;
  std::vector<EdgeId> del;
};

/// Builds one deterministic mixed batch: `ops/2` deletions drawn from the
/// currently-live ids and the remainder fresh random insertions.  `live` is
/// kept in sync so successive batches see the post-update id population.
Batch make_batch(std::size_t ops, VertexId n, std::vector<EdgeId>& live,
                 EdgeId next_id, std::mt19937_64& rng) {
  Batch b;
  std::uniform_int_distribution<VertexId> vtx(0, n - 1);
  std::uniform_real_distribution<double> wgt(0.0, 1.0);
  std::size_t dels = std::min(ops / 2, live.size() > 1 ? live.size() - 1 : 0);
  for (std::size_t i = 0; i < dels; ++i) {
    std::uniform_int_distribution<std::size_t> pick(0, live.size() - 1);
    const std::size_t j = pick(rng);
    b.del.push_back(live[j]);
    live[j] = live.back();
    live.pop_back();
  }
  std::sort(b.del.begin(), b.del.end());
  for (std::size_t i = dels; i < ops; ++i) {
    VertexId u = vtx(rng), v = vtx(rng);
    while (v == u) v = vtx(rng);
    b.ins.push_back({u, v, wgt(rng)});
    live.push_back(next_id++);
  }
  return b;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  const auto n = static_cast<VertexId>(args.size(1000000, 1000000));
  const auto m = static_cast<EdgeId>(4 * static_cast<EdgeId>(n));
  const EdgeList base = random_graph(n, m, args.seed);
  bench::banner("dynamic MSF / random", base);

  dynamic::DynamicMsfOptions dopts;
  dopts.msf.threads = args.max_threads;
  dopts.msf.seed = args.seed;
  core::MsfOptions sopts = dopts.msf;

  bench::JsonSink sink;
  constexpr int kBatches = 8;
  std::size_t crossover = 0;
  std::printf("  %-10s %12s %14s %9s %7s %6s\n", "batch", "s/batch",
              "scratch s", "speedup", "scratch", "match");
  for (const std::size_t batch_size : {std::size_t{1}, std::size_t{16},
                                       std::size_t{256}, std::size_t{4096},
                                       std::size_t{65536}}) {
    dynamic::DynamicMsf d(base, dopts);
    std::vector<EdgeId> live(base.num_edges());
    for (EdgeId i = 0; i < base.num_edges(); ++i) live[i] = i;
    std::mt19937_64 rng(args.seed ^ batch_size);

    int recomputed = 0;
    double dyn_seconds = 0;
    for (int k = 0; k < kBatches; ++k) {
      const Batch b =
          make_batch(batch_size, n, live, static_cast<EdgeId>(d.store().size()), rng);
      const double t = bench::time_best_of(
          1, [&] { recomputed += d.apply_batch(b.ins, b.del).recomputed_from_scratch; });
      dyn_seconds += t;
    }
    const double per_batch = dyn_seconds / kBatches;

    // What recompute-per-batch would pay: one full parallel solve of the
    // final live graph, and the bit-identity check against the maintained
    // forest (the acceptance criterion, not just a sanity check).
    std::vector<EdgeId> ids;
    const EdgeList final_graph = d.store().live_graph(&ids);
    graph::MsfResult ref;
    const double scratch = bench::time_best_of(args.reps, [&] {
      ref = core::minimum_spanning_forest_of_candidates(final_graph, ids, sopts);
    });
    std::vector<EdgeId> ref_ids = ref.edge_ids;
    std::sort(ref_ids.begin(), ref_ids.end());
    const bool match = ref_ids == d.forest_edge_ids() &&
                       ref.total_weight == d.total_weight();
    if (recomputed > 0 && crossover == 0) crossover = batch_size;

    std::printf("  %-10zu %11.6fs %13.6fs %8.2fx %4d/%-2d %6s\n", batch_size,
                per_batch, scratch, scratch / per_batch, recomputed, kBatches,
                match ? "yes" : "NO");
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "{\"tag\": \"dynamic\", \"n\": %u, \"m\": %llu, "
                  "\"batch_size\": %zu, \"batches\": %d, "
                  "\"seconds_per_batch\": %.6f, \"scratch_seconds\": %.6f, "
                  "\"speedup_vs_scratch\": %.4f, \"recomputed\": %d, "
                  "\"match\": %s}",
                  base.num_vertices,
                  static_cast<unsigned long long>(base.num_edges()), batch_size,
                  kBatches, per_batch, scratch, scratch / per_batch, recomputed,
                  match ? "true" : "false");
    sink.add(buf);
    if (!match) {
      std::fprintf(stderr, "FATAL: dynamic forest diverged at batch size %zu\n",
                   batch_size);
      return 1;
    }
  }
  if (crossover != 0) {
    std::printf("  crossover to scratch recompute at batch size %zu\n", crossover);
  }
  sink.write("bench_dynamic", args);
  return 0;
}
