// Ablation: thread scaling of the pprim substrate itself — prefix sums,
// sample sort, radix sort, random permutation, counting sort.  These bound
// what the algorithms built on top can achieve.
#include <cstdint>
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "pprim/counting_sort.hpp"
#include "pprim/permutation.hpp"
#include "pprim/prefix_sum.hpp"
#include "pprim/radix_sort.hpp"
#include "pprim/rng.hpp"
#include "pprim/sample_sort.hpp"
#include "pprim/thread_team.hpp"

using namespace smp;

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  const auto n = args.size(1u << 22, 1u << 25);

  std::vector<std::uint64_t> base(n);
  {
    Rng rng(args.seed);
    for (auto& x : base) x = rng.next();
  }

  std::printf("primitive scaling, n = %zu\n", n);
  std::printf("%-18s", "p");
  for (int p = 1; p <= args.max_threads; p *= 2) std::printf(" %11d", p);
  std::printf("\n");

  const auto row = [&](const char* name, auto&& fn) {
    std::printf("%-18s", name);
    for (int p = 1; p <= args.max_threads; p *= 2) {
      ThreadTeam team(p);
      const double s = bench::time_best_of(args.reps, [&] { fn(team); });
      std::printf(" %10.3fs", s);
    }
    std::printf("\n");
  };

  row("prefix-sum", [&](ThreadTeam& team) {
    auto data = base;
    (void)exclusive_scan(team, std::span<std::uint64_t>(data));
  });
  row("sample-sort", [&](ThreadTeam& team) {
    auto data = base;
    sample_sort(team, data, std::less<>{});
  });
  row("radix-sort", [&](ThreadTeam& team) {
    auto data = base;
    radix_sort_by_key(team, data, [](std::uint64_t x) { return x; });
  });
  row("counting-sort", [&](ThreadTeam& team) {
    std::vector<std::uint64_t> out(base.size());
    std::vector<std::uint64_t> offsets;
    counting_sort_by_key(team, std::span<const std::uint64_t>(base),
                         std::span<std::uint64_t>(out), 1 << 16,
                         [](std::uint64_t x) { return x >> 48; }, offsets);
  });
  row("random-perm", [&](ThreadTeam& team) {
    (void)random_permutation(team, static_cast<std::uint32_t>(n / 8), args.seed);
  });
  return 0;
}
