// Table 1 of the paper: rate of decrease of the number m of edges per
// Borůvka iteration (Bor-EL) for two random sparse graphs.
//
//   G1 = 1,000,000 vertices, 6,000,006 edges   (default run: scaled down)
//   G2 =    10,000 vertices,    30,024 edges   (always at paper size)
//
// Columns: iteration, 2m (size of the directed edge list), decrease, % dec.,
// and m/n (density), exactly as the paper prints them.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/msf.hpp"
#include "graph/generators.hpp"

using namespace smp;
using namespace smp::graph;

namespace {

void run_case(const char* name, VertexId n, EdgeId m, std::uint64_t seed) {
  const EdgeList g = random_graph(n, m, seed);
  bench::banner(name, g);

  std::vector<core::IterationStat> stats;
  core::MsfOptions opts;
  opts.algorithm = core::Algorithm::kBorEL;
  opts.threads = 1;
  opts.iteration_stats = &stats;
  (void)core::minimum_spanning_forest(g, opts);

  std::printf("%-10s %14s %14s %8s %10s\n", "iteration", "2m", "decrease",
              "% dec.", "m/n");
  for (std::size_t i = 0; i < stats.size(); ++i) {
    const double mm = static_cast<double>(stats[i].directed_edges) / 2.0;
    const double nn = static_cast<double>(stats[i].vertices);
    if (i == 0) {
      std::printf("%-10zu %14llu %14s %8s %10.1f\n", i + 1,
                  static_cast<unsigned long long>(stats[i].directed_edges), "N/A",
                  "N/A", mm / nn);
    } else {
      const auto prev = stats[i - 1].directed_edges;
      const auto cur = stats[i].directed_edges;
      const auto dec = prev - cur;
      std::printf("%-10zu %14llu %14llu %7.1f%% %10.1f\n", i + 1,
                  static_cast<unsigned long long>(cur),
                  static_cast<unsigned long long>(dec),
                  100.0 * static_cast<double>(dec) / static_cast<double>(prev),
                  mm / nn);
    }
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);

  // G1: the paper uses n = 1M, m = 6,000,006.  Scaled default: n = 100k.
  const auto n1 = static_cast<VertexId>(args.size(100000, 1000000));
  const auto m1 = static_cast<EdgeId>(6 * static_cast<EdgeId>(n1) + 6);
  run_case("Table 1 / G1 (random)", n1, m1, args.seed);

  // G2 is small enough to always run at paper size.
  run_case("Table 1 / G2 (random)", 10000, 30024, args.seed + 1);
  return 0;
}
