// Query-engine bench (BENCH_08): ForestIndex rebuild cost versus the
// apply_batch solve that triggers it, and per-op latency percentiles for
// the four query ops (pathmax / conn / cut / topk) on the final state.
//
//   * rebuild rows: for each batch size B, one insertion batch is applied
//     through DynamicMsf and the index is rebuilt from the committed
//     forest; the acceptance gate is rebuild_s <= 1.0 x apply_s (the index
//     rides along with the solve it follows instead of dominating it).
//   * op rows: p50/p95/p99 over per-op wall times — pathmax/conn answered
//     from the immutable index, cut split into cold (first call builds the
//     dendrogram) and warm, topk scanning the live store with the SIMD
//     argmin skim.
//   * identity row: every sampled pathmax answer is checked against a
//     naive parent-pointer climb (independent of the skip tables) and conn
//     against root comparison; any mismatch fails the bench.
//
// --json writes BENCH_08.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <optional>
#include <random>
#include <vector>

#include "common.hpp"
#include "dynamic/dynamic_msf.hpp"
#include "graph/generators.hpp"
#include "pprim/thread_team.hpp"
#include "query/forest_index.hpp"

using namespace smp;
using namespace smp::graph;

namespace {

double quantile_us(std::vector<double>& v, double q) {
  if (v.empty()) return 0;
  const auto idx =
      static_cast<std::size_t>(q * static_cast<double>(v.size() - 1));
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(idx),
                   v.end());
  return v[idx];
}

/// Emits one "query_op" row: table line + JSON record.
void report_op(bench::JsonSink& sink, const char* op, VertexId n,
               std::vector<double> lat_us) {
  const std::size_t ops = lat_us.size();
  const double p50 = quantile_us(lat_us, 0.50);
  const double p95 = quantile_us(lat_us, 0.95);
  const double p99 = quantile_us(lat_us, 0.99);
  std::printf("  %-10s %10zu %10.2f %10.2f %10.2f\n", op, ops, p50, p95, p99);
  char rec[256];
  std::snprintf(rec, sizeof rec,
                "{\"tag\": \"query_op\", \"op\": \"%s\", \"n\": %llu, "
                "\"ops\": %zu, \"p50_us\": %.3f, \"p95_us\": %.3f, "
                "\"p99_us\": %.3f}",
                op, static_cast<unsigned long long>(n), ops, p50, p95, p99);
  sink.add(rec);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  const auto n = static_cast<VertexId>(args.size(200000, 1000000));
  const auto m = static_cast<EdgeId>(4 * static_cast<EdgeId>(n));
  const EdgeList base = random_graph(n, m, args.seed);
  bench::banner("query engine / random", base);

  ThreadTeam team(args.max_threads);
  dynamic::DynamicMsfOptions dopts;
  dopts.team = &team;
  dopts.msf.seed = args.seed;
  dynamic::DynamicMsf d(base, dopts);

  bench::JsonSink sink;
  std::mt19937_64 rng(args.seed ^ 0x9e3779b97f4a7c15ull);
  std::uniform_int_distribution<VertexId> vtx(0, n - 1);
  std::uniform_real_distribution<double> wgt(0.0, 1.0);

  // --- rebuild vs. the apply_batch that triggers it ---
  std::printf("  %-10s %12s %12s %8s\n", "batch", "apply_s", "rebuild_s",
              "ratio");
  std::uint64_t version = 0;
  for (const std::size_t batch :
       {std::size_t{1}, std::size_t{100}, std::size_t{10000}}) {
    std::vector<WEdge> ins;
    ins.reserve(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      VertexId u = vtx(rng), v = vtx(rng);
      while (v == u) v = vtx(rng);
      ins.push_back({u, v, wgt(rng)});
    }
    WallTimer t;
    d.apply_batch(ins, {});
    const double apply_s = t.elapsed_s();
    ++version;
    const double rebuild_s = bench::time_best_of(args.reps, [&] {
      query::ForestIndex idx(team, d.store(),
                             std::span<const EdgeId>(d.forest_edge_ids()),
                             version);
    });
    const double ratio = apply_s > 0 ? rebuild_s / apply_s : 0.0;
    std::printf("  %-10zu %12.4f %12.4f %8.2f\n", batch, apply_s, rebuild_s,
                ratio);
    char rec[256];
    std::snprintf(rec, sizeof rec,
                  "{\"tag\": \"query_rebuild\", \"batch\": %zu, \"n\": %llu, "
                  "\"apply_s\": %.5f, \"rebuild_s\": %.5f, \"ratio\": %.3f}",
                  batch, static_cast<unsigned long long>(n), apply_s,
                  rebuild_s, ratio);
    sink.add(rec);
  }

  // --- per-op latency on the final committed state ---
  const query::ForestIndex idx(
      team, d.store(), std::span<const EdgeId>(d.forest_edge_ids()), version);
  const auto& st = idx.stats();
  std::printf("  index: %zu forest edges, %zu components, depth %u, "
              "%u levels, built in %.4f s\n",
              st.num_forest_edges, st.num_components, st.max_depth, st.levels,
              st.build_seconds);
  {
    char rec[320];
    std::snprintf(
        rec, sizeof rec,
        "{\"tag\": \"query_index\", \"n\": %llu, \"forest_edges\": %zu, "
        "\"components\": %zu, \"max_depth\": %u, \"levels\": %u, "
        "\"build_s\": %.5f}",
        static_cast<unsigned long long>(n), st.num_forest_edges,
        st.num_components, st.max_depth, st.levels, st.build_seconds);
    sink.add(rec);
  }

  using Clock = std::chrono::steady_clock;
  const std::size_t q_ops = args.size(20000, 20000);
  std::vector<VertexId> us(q_ops), vs(q_ops);
  for (std::size_t i = 0; i < q_ops; ++i) {
    us[i] = vtx(rng);
    vs[i] = vtx(rng);
    while (vs[i] == us[i]) vs[i] = vtx(rng);
  }

  std::printf("  %-10s %10s %10s %10s %10s\n", "op", "ops", "p50us", "p95us",
              "p99us");
  {
    std::vector<double> lat(q_ops);
    std::size_t found = 0;
    for (std::size_t i = 0; i < q_ops; ++i) {
      const auto t0 = Clock::now();
      const auto pm = idx.path_max(us[i], vs[i]);
      lat[i] =
          std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
      found += pm.connected ? 1 : 0;
    }
    report_op(sink, "pathmax", n, std::move(lat));
    if (found == 0) {
      std::fprintf(stderr, "bench_query: no connected pair sampled?\n");
      return 1;
    }
  }
  {
    std::vector<double> lat(q_ops);
    volatile bool sink_b = false;
    for (std::size_t i = 0; i < q_ops; ++i) {
      const auto t0 = Clock::now();
      sink_b = idx.connected(us[i], vs[i]);
      lat[i] =
          std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
    }
    (void)sink_b;
    report_op(sink, "conn", n, std::move(lat));
  }
  {
    // Cold = the first cut (pays the dendrogram build), then warm cuts
    // across sweeping thresholds.
    std::vector<double> cold(1);
    const auto t0 = Clock::now();
    volatile std::size_t k0 = idx.cut(0.5).num_clusters;
    cold[0] =
        std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
    (void)k0;
    report_op(sink, "cut_cold", n, std::move(cold));
    const std::size_t cut_ops = 200;
    std::vector<double> lat(cut_ops);
    for (std::size_t i = 0; i < cut_ops; ++i) {
      const double thr = static_cast<double>(i) / static_cast<double>(cut_ops);
      const auto t1 = Clock::now();
      volatile std::size_t k = idx.cut(thr).num_clusters;
      (void)k;
      lat[i] =
          std::chrono::duration<double, std::micro>(Clock::now() - t1).count();
    }
    report_op(sink, "cut_warm", n, std::move(lat));
  }
  {
    const std::size_t topk_ops = 20;
    std::vector<double> lat(topk_ops);
    for (std::size_t i = 0; i < topk_ops; ++i) {
      const auto t0 = Clock::now();
      const auto top = idx.top_k(team, d.store(), 10, std::nullopt);
      lat[i] =
          std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
      if (top.size() != 10) {
        std::fprintf(stderr, "bench_query: topk returned %zu edges\n",
                     top.size());
        return 1;
      }
    }
    report_op(sink, "topk10", n, std::move(lat));
  }

  // --- identity: skip-table answers vs. a naive parent-pointer climb ---
  // Parent-edge weight/id per vertex, recovered from the forest edge list
  // (independent of the packed-key tables the fast path uses).
  std::vector<Weight> pw(n, 0);
  std::vector<EdgeId> pid(n, kInvalidEdge);
  for (std::size_t i = 0; i < idx.num_forest_edges(); ++i) {
    const WEdge& e = idx.forest_edge(i);
    const VertexId child = idx.parent(e.u) == e.v ? e.u : e.v;
    pw[child] = e.w;
    pid[child] = idx.forest_id(i);
  }
  const std::size_t pairs = std::min<std::size_t>(q_ops, 2000);
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < pairs; ++i) {
    VertexId a = us[i], b = vs[i];
    // Naive root check.
    VertexId ra = a, rb = b;
    while (idx.parent(ra) != ra) ra = idx.parent(ra);
    while (idx.parent(rb) != rb) rb = idx.parent(rb);
    const bool conn_naive = ra == rb;
    if (conn_naive != idx.connected(a, b)) {
      ++mismatches;
      continue;
    }
    const auto pm = idx.path_max(a, b);
    if (pm.connected != conn_naive) {
      ++mismatches;
      continue;
    }
    if (!conn_naive) continue;
    Weight bw = 0;
    EdgeId bi = kInvalidEdge;
    bool has = false;
    const auto consider = [&](VertexId x) {
      if (!has || pw[x] > bw || (pw[x] == bw && pid[x] > bi)) {
        bw = pw[x];
        bi = pid[x];
        has = true;
      }
    };
    while (idx.depth(a) > idx.depth(b)) {
      consider(a);
      a = idx.parent(a);
    }
    while (idx.depth(b) > idx.depth(a)) {
      consider(b);
      b = idx.parent(b);
    }
    while (a != b) {
      consider(a);
      consider(b);
      a = idx.parent(a);
      b = idx.parent(b);
    }
    if (pm.edge_id != bi || pm.weight != bw) ++mismatches;
  }
  std::printf("  identity: %zu pairs, %zu mismatches\n", pairs, mismatches);
  {
    char rec[192];
    std::snprintf(rec, sizeof rec,
                  "{\"tag\": \"identity\", \"check\": \"query_pathmax\", "
                  "\"pairs\": %zu, \"mismatches\": %zu}",
                  pairs, mismatches);
    sink.add(rec);
  }

  sink.write("bench_query", args);
  return mismatches == 0 ? 0 : 1;
}
