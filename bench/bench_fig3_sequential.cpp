// Fig. 3 of the paper: the performance *ranking* of the three sequential
// algorithms (Prim / Kruskal / Borůvka) differs across input classes —
// density alone does not decide the winner; weight assignment and structure
// matter.  One row per input family, fastest algorithm flagged.
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "graph/generators.hpp"
#include "seq/seq_msf.hpp"

using namespace smp;
using namespace smp::graph;

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  const auto n = static_cast<VertexId>(args.size(100000, 1000000));
  const auto side = static_cast<VertexId>(args.size(316, 1000));
  const auto side3 = static_cast<VertexId>(args.size(46, 100));

  struct Case {
    std::string name;
    EdgeList g;
  };
  std::vector<Case> cases;
  cases.push_back({"random m=2n", random_graph(n, 2 * static_cast<EdgeId>(n), args.seed)});
  cases.push_back({"random m=6n", random_graph(n, 6 * static_cast<EdgeId>(n), args.seed)});
  cases.push_back(
      {"random m=10n", random_graph(n, 10 * static_cast<EdgeId>(n), args.seed)});
  cases.push_back({"mesh2d", mesh2d(side, side, args.seed)});
  cases.push_back({"mesh2d60", mesh2d_p(side, side, 0.6, args.seed)});
  cases.push_back({"mesh3d40", mesh3d_p(side3, side3, side3, 0.4, args.seed)});
  cases.push_back({"geometric k=6", geometric_knn(n, 6, args.seed)});
  cases.push_back({"str0", structured_graph(0, n, args.seed)});
  cases.push_back({"str2", structured_graph(2, n, args.seed)});

  // Bor-2003 is the literal compact-the-graph "m log m" Borůvka the paper
  // era measured; Boruvka is our modern union-find variant.
  std::printf("%-16s %12s %12s %12s %12s   %s\n", "input", "Prim", "Kruskal",
              "Boruvka", "Bor-2003", "fastest");
  for (const auto& c : cases) {
    const double tp = bench::time_best_of(args.reps, [&] { (void)seq::prim_msf(c.g); });
    const double tk =
        bench::time_best_of(args.reps, [&] { (void)seq::kruskal_msf(c.g); });
    const double tb =
        bench::time_best_of(args.reps, [&] { (void)seq::boruvka_msf(c.g); });
    const double tc =
        bench::time_best_of(args.reps, [&] { (void)seq::boruvka_compact_msf(c.g); });
    const char* fastest = tp <= tk && tp <= tb ? "Prim"
                          : tk <= tb           ? "Kruskal"
                                               : "Boruvka";
    std::printf("%-16s %11.3fs %11.3fs %11.3fs %11.3fs   %s\n", c.name.c_str(),
                tp, tk, tb, tc, fastest);
  }
  return 0;
}
