// Ablation (google-benchmark): heap arity under a Prim-like workload.
// Sequential Prim and MST-BC's per-processor heaps are decrease-key heavy;
// wider heaps shorten sift-up paths (decrease-key, push) at the price of
// more comparisons per sift-down (pop).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "pprim/rng.hpp"
#include "seq/indexed_heap.hpp"

namespace {

using namespace smp;

/// Pre-generated Prim-like op tape: interleaved pushes, decreases, pops.
struct Op {
  enum Kind : std::uint8_t { kPush, kDecrease, kPop } kind;
  std::uint32_t id;
  std::uint64_t key;
};

const std::vector<Op>& tape() {
  static const std::vector<Op> t = [] {
    constexpr std::uint32_t kIds = 200000;
    Rng rng(21);
    std::vector<Op> ops;
    std::vector<std::uint64_t> key(kIds, 0);
    std::vector<bool> in(kIds, false);
    std::size_t live = 0;
    for (int i = 0; i < 1500000; ++i) {
      const auto id = static_cast<std::uint32_t>(rng.next_below(kIds));
      const auto r = rng.next_below(10);
      if (r < 4 && !in[id]) {
        key[id] = rng.next();
        ops.push_back({Op::kPush, id, key[id]});
        in[id] = true;
        ++live;
      } else if (r < 8 && in[id] && key[id] > 1) {
        key[id] = rng.next_below(key[id]);
        ops.push_back({Op::kDecrease, id, key[id]});
      } else if (live > 0) {
        ops.push_back({Op::kPop, 0, 0});
        --live;
        // The popped id is workload-dependent; mark nothing and let the
        // replay handle membership.
      }
    }
    return ops;
  }();
  return t;
}

template <unsigned Arity>
void run_tape(benchmark::State& state) {
  const auto& ops = tape();
  for (auto _ : state) {
    seq::IndexedHeap<std::uint64_t, std::less<std::uint64_t>, Arity> h(200000);
    std::uint64_t sink = 0;
    for (const Op& op : ops) {
      switch (op.kind) {
        case Op::kPush:
          if (!h.contains(op.id)) h.push(op.id, op.key);
          break;
        case Op::kDecrease:
          if (h.contains(op.id)) h.decrease(op.id, op.key);
          break;
        case Op::kPop:
          if (!h.empty()) sink ^= h.pop().key;
          break;
      }
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ops.size()));
}

void BM_Heap2(benchmark::State& s) { run_tape<2>(s); }
void BM_Heap4(benchmark::State& s) { run_tape<4>(s); }
void BM_Heap8(benchmark::State& s) { run_tape<8>(s); }
void BM_Heap16(benchmark::State& s) { run_tape<16>(s); }
BENCHMARK(BM_Heap2);
BENCHMARK(BM_Heap4);
BENCHMARK(BM_Heap8);
BENCHMARK(BM_Heap16);

}  // namespace

BENCHMARK_MAIN();
