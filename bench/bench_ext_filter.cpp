// Extension bench: the §3 hypothesis.  The paper's Table 1 analysis argues
// that excluding heavy edges early via the cycle property should pay off
// once m/n ≥ 2 ("more than half of the edges are not in the MST").
// Filter-Kruskal is that idea; this bench sweeps density and compares it
// with plain Kruskal and Borůvka.  The expected shape: the denser the graph,
// the larger Filter-Kruskal's win over Kruskal.
#include <cstdio>

#include "common.hpp"
#include "core/filter_kruskal.hpp"
#include "core/sample_filter.hpp"
#include "graph/generators.hpp"
#include "seq/seq_msf.hpp"

using namespace smp;
using namespace smp::graph;

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  const auto n = static_cast<VertexId>(args.size(100000, 1000000));

  std::printf("%-10s %12s %12s %14s %14s %14s %10s\n", "m/n", "Kruskal",
              "Boruvka", "FilterK(p=1)", "FilterK(p=4)", "SampleF(p=4)", "K/FK1");
  for (const int density : {1, 2, 4, 8, 16, 32}) {
    const auto m = static_cast<EdgeId>(density) * n;
    const EdgeList g =
        random_graph(n, m, args.seed + static_cast<std::uint64_t>(density));
    const double tk =
        bench::time_best_of(args.reps, [&] { (void)seq::kruskal_msf(g); });
    const double tb =
        bench::time_best_of(args.reps, [&] { (void)seq::boruvka_msf(g); });
    const double tf1 =
        bench::time_best_of(args.reps, [&] { (void)core::filter_kruskal_msf(g, 1); });
    const double tf4 =
        bench::time_best_of(args.reps, [&] { (void)core::filter_kruskal_msf(g, 4); });
    const double tsf = bench::time_best_of(
        args.reps, [&] { (void)core::sample_filter_msf(g, 4, args.seed); });
    std::printf("%-10d %11.3fs %11.3fs %13.3fs %13.3fs %13.3fs %9.2fx\n", density,
                tk, tb, tf1, tf4, tsf, tk / tf1);
  }
  return 0;
}
