// Fig. 2 of the paper: breakdown of the running time into the three Borůvka
// steps (find-min / connect-components / compact-graph) for Bor-EL, Bor-AL,
// Bor-ALM and Bor-FAL, on random graphs with fixed n and m = 4n, 6n, 10n.
//
// The paper's claims to check:
//   * compact-graph dominates for Bor-EL and Bor-AL,
//   * Bor-EL is much slower than Bor-AL and degrades as density grows,
//   * Bor-FAL's compact-graph time is tiny and nearly independent of m,
//   * Bor-FAL's find-min grows (it rescans all m edges each iteration),
//   * connect-components is a small fraction everywhere.
//
// Also reports the fused-execution counters: iterations, SPMD regions, and
// regions per iteration (1.0 for the fused algorithms — each Borůvka
// iteration is one persistent region, not one fork/join per parallel loop),
// and the find-min layer facts: which kernel ran (mode + SIMD ISA) and how
// many arcs Bor-FAL's live-arc pruning retired.  Every density block ends
// with a determinism check — the Bor-FAL forest must be bit-identical
// across p ∈ {1,2,4,8} × {scan,simd}; a mismatch aborts the bench.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/find_min.hpp"
#include "core/msf.hpp"
#include "graph/generators.hpp"
#include "pprim/simd.hpp"

using namespace smp;
using namespace smp::graph;

namespace {

/// Sorted forest edge ids of one solve — the bit-identical-forest witness.
std::vector<EdgeId> forest_ids(const EdgeList& g, core::Algorithm alg,
                               int threads, core::FindMinMode mode,
                               core::CompactSortMode sort,
                               double live_threshold = 0) {
  core::MsfOptions opts;
  opts.algorithm = alg;
  opts.threads = threads;
  opts.find_min = mode;
  opts.compact_sort = sort;
  opts.compact_live_threshold = live_threshold;
  auto r = core::minimum_spanning_forest(g, opts);
  std::sort(r.edge_ids.begin(), r.edge_ids.end());
  return r.edge_ids;
}

/// Per-iteration strategy trace as a compact JSON array, e.g.
/// ["defer","defer","hash"].
std::string strategies_json(const std::vector<core::IterationStat>& stats) {
  std::string out = "[";
  for (std::size_t i = 0; i < stats.size(); ++i) {
    if (i > 0) out += ", ";
    out += '"';
    out += core::to_string(stats[i].strategy);
    out += '"';
  }
  out += "]";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  const auto n = static_cast<VertexId>(args.size(100000, 1000000));
  bench::JsonSink sink;

  const core::Algorithm algs[] = {core::Algorithm::kBorEL, core::Algorithm::kBorAL,
                                  core::Algorithm::kBorALM, core::Algorithm::kBorFAL,
                                  core::Algorithm::kChampion};
  for (const int density : {4, 6, 10}) {
    const auto m = static_cast<EdgeId>(density) * n;
    const EdgeList g = random_graph(n, m, args.seed + static_cast<std::uint64_t>(density));
    bench::banner("Fig 2 / random", g);
    std::printf("  %-8s %10s %10s %10s %10s %10s %6s %8s\n", "alg", "find-min",
                "connect", "compact", "other", "total", "iters", "reg/iter");
    for (const auto alg : algs) {
      core::StepTimes best{};
      core::PhaseStats best_ps{};
      std::vector<core::IterationStat> best_iters;
      double best_total = 1e300;
      for (int r = 0; r < args.reps; ++r) {
        core::StepTimes st;
        core::PhaseStats ps;
        std::vector<core::IterationStat> iters;
        core::MsfOptions opts;
        opts.algorithm = alg;
        opts.threads = args.max_threads;
        opts.step_times = &st;
        opts.phase_stats = &ps;
        opts.iteration_stats = &iters;
        (void)core::minimum_spanning_forest(g, opts);
        if (st.total() < best_total) {
          best_total = st.total();
          best = st;
          best_ps = ps;
          best_iters = std::move(iters);
        }
      }
      const std::string name(core::to_string(alg));
      std::printf("  %-8s %9.3fs %9.3fs %9.3fs %9.3fs %9.3fs %6llu %8.2f\n",
                  name.c_str(), best.find_min, best.connect, best.compact,
                  best.other, best.total(),
                  static_cast<unsigned long long>(best_ps.iterations),
                  best_ps.regions_per_iteration());
      const core::FindMinMode resolved =
          core::resolve_find_min_mode(core::FindMinMode::kAuto, g.num_edges());
      double live_last = 1.0;
      if (!best_iters.empty()) live_last = best_iters.back().live_fraction;
      char buf[1024];
      std::snprintf(
          buf, sizeof buf,
          "{\"density\": %d, \"n\": %u, \"m\": %llu, \"alg\": \"%s\", "
          "\"threads\": %d, \"find_min\": %.6f, \"connect\": %.6f, "
          "\"compact\": %.6f, \"other\": %.6f, \"total\": %.6f, "
          "\"iterations\": %llu, \"regions\": %llu, "
          "\"regions_per_iteration\": %.4f, "
          "\"find_min_mode\": \"%s\", \"simd_kernel\": \"%s\", "
          "\"find_min_pruned_arcs\": %llu, "
          "\"deferred_iterations\": %llu, \"hash_compacts\": %llu, "
          "\"sort_compacts\": %llu, \"merge_rebuilds\": %llu, "
          "\"hash_keys\": %llu, \"hash_probe_steps\": %llu, "
          "\"hash_max_probe\": %llu, \"live_fraction_last\": %.4f, "
          "\"strategies\": %s}",
          density, g.num_vertices, static_cast<unsigned long long>(g.num_edges()),
          name.c_str(), args.max_threads, best.find_min, best.connect,
          best.compact, best.other, best.total(),
          static_cast<unsigned long long>(best_ps.iterations),
          static_cast<unsigned long long>(best_ps.regions),
          best_ps.regions_per_iteration(),
          std::string(core::to_string(resolved)).c_str(), simd_isa_name(),
          static_cast<unsigned long long>(best.pruned_arcs),
          static_cast<unsigned long long>(best_ps.deferred_iterations),
          static_cast<unsigned long long>(best_ps.hash_compacts),
          static_cast<unsigned long long>(best_ps.sort_compacts),
          static_cast<unsigned long long>(best_ps.merge_rebuilds),
          static_cast<unsigned long long>(best_ps.hash_keys),
          static_cast<unsigned long long>(best_ps.hash_probe_steps),
          static_cast<unsigned long long>(best_ps.hash_max_probe), live_last,
          strategies_json(best_iters).c_str());
      sink.add(buf);
    }

    // Determinism gate: neither the accelerated find-min nor any compact
    // strategy may change the forest.  Compare Bor-FAL across p ∈ {1,2,4,8}
    // and both kernels, plus champion across p and every compact-sort mode,
    // against the single-threaded seed scan; any drift is a correctness bug,
    // so fail the whole bench rather than record timings for a wrong answer.
    const std::vector<EdgeId> ref =
        forest_ids(g, core::Algorithm::kBorFAL, 1, core::FindMinMode::kScan,
                   core::CompactSortMode::kAuto);
    int configs = 0;
    for (const int p : {1, 2, 4, 8}) {
      for (const auto mode : {core::FindMinMode::kScan, core::FindMinMode::kSimd}) {
        ++configs;
        if (forest_ids(g, core::Algorithm::kBorFAL, p, mode,
                       core::CompactSortMode::kAuto) != ref) {
          std::fprintf(stderr,
                       "FAIL: Bor-FAL forest differs at p=%d find-min=%s "
                       "(density %d)\n",
                       p, std::string(core::to_string(mode)).c_str(), density);
          return 1;
        }
      }
      // The explicit threshold pins the champion onto the deferred engine
      // (its default routes to Bor-FAL) so every compact mode runs at scale.
      for (const auto sort :
           {core::CompactSortMode::kRadix, core::CompactSortMode::kSample,
            core::CompactSortMode::kHash}) {
        ++configs;
        if (forest_ids(g, core::Algorithm::kChampion, p,
                       core::FindMinMode::kAuto, sort,
                       /*live_threshold=*/0.5) != ref) {
          std::fprintf(stderr,
                       "FAIL: champion forest differs at p=%d compact-sort=%d "
                       "(density %d)\n",
                       p, static_cast<int>(sort), density);
          return 1;
        }
      }
    }
    std::printf(
        "  forest identity: OK (%d Bor-FAL/champion configs bit-identical)\n\n",
        configs);
    char check[192];
    std::snprintf(check, sizeof check,
                  "{\"density\": %d, \"check\": \"forest_identity\", "
                  "\"alg\": \"Bor-FAL+champion\", \"configs\": %d, "
                  "\"forests_identical\": true}",
                  density, configs);
    sink.add(check);
  }
  sink.write("fig2_breakdown", args);
  return 0;
}
