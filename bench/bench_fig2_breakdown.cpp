// Fig. 2 of the paper: breakdown of the running time into the three Borůvka
// steps (find-min / connect-components / compact-graph) for Bor-EL, Bor-AL,
// Bor-ALM and Bor-FAL, on random graphs with fixed n and m = 4n, 6n, 10n.
//
// The paper's claims to check:
//   * compact-graph dominates for Bor-EL and Bor-AL,
//   * Bor-EL is much slower than Bor-AL and degrades as density grows,
//   * Bor-FAL's compact-graph time is tiny and nearly independent of m,
//   * Bor-FAL's find-min grows (it rescans all m edges each iteration),
//   * connect-components is a small fraction everywhere.
//
// Also reports the fused-execution counters: iterations, SPMD regions, and
// regions per iteration (1.0 for the fused algorithms — each Borůvka
// iteration is one persistent region, not one fork/join per parallel loop).
#include <cstdio>
#include <string>

#include "common.hpp"
#include "core/msf.hpp"
#include "graph/generators.hpp"

using namespace smp;
using namespace smp::graph;

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  const auto n = static_cast<VertexId>(args.size(100000, 1000000));
  bench::JsonSink sink;

  const core::Algorithm algs[] = {core::Algorithm::kBorEL, core::Algorithm::kBorAL,
                                  core::Algorithm::kBorALM, core::Algorithm::kBorFAL};
  for (const int density : {4, 6, 10}) {
    const auto m = static_cast<EdgeId>(density) * n;
    const EdgeList g = random_graph(n, m, args.seed + static_cast<std::uint64_t>(density));
    bench::banner("Fig 2 / random", g);
    std::printf("  %-8s %10s %10s %10s %10s %10s %6s %8s\n", "alg", "find-min",
                "connect", "compact", "other", "total", "iters", "reg/iter");
    for (const auto alg : algs) {
      core::StepTimes best{};
      core::PhaseStats best_ps{};
      double best_total = 1e300;
      for (int r = 0; r < args.reps; ++r) {
        core::StepTimes st;
        core::PhaseStats ps;
        core::MsfOptions opts;
        opts.algorithm = alg;
        opts.threads = args.max_threads;
        opts.step_times = &st;
        opts.phase_stats = &ps;
        (void)core::minimum_spanning_forest(g, opts);
        if (st.total() < best_total) {
          best_total = st.total();
          best = st;
          best_ps = ps;
        }
      }
      const std::string name(core::to_string(alg));
      std::printf("  %-8s %9.3fs %9.3fs %9.3fs %9.3fs %9.3fs %6llu %8.2f\n",
                  name.c_str(), best.find_min, best.connect, best.compact,
                  best.other, best.total(),
                  static_cast<unsigned long long>(best_ps.iterations),
                  best_ps.regions_per_iteration());
      char buf[512];
      std::snprintf(
          buf, sizeof buf,
          "{\"density\": %d, \"n\": %u, \"m\": %llu, \"alg\": \"%s\", "
          "\"threads\": %d, \"find_min\": %.6f, \"connect\": %.6f, "
          "\"compact\": %.6f, \"other\": %.6f, \"total\": %.6f, "
          "\"iterations\": %llu, \"regions\": %llu, "
          "\"regions_per_iteration\": %.4f}",
          density, g.num_vertices, static_cast<unsigned long long>(g.num_edges()),
          name.c_str(), args.max_threads, best.find_min, best.connect,
          best.compact, best.other, best.total(),
          static_cast<unsigned long long>(best_ps.iterations),
          static_cast<unsigned long long>(best_ps.regions),
          best_ps.regions_per_iteration());
      sink.add(buf);
    }
    std::printf("\n");
  }
  sink.write("fig2_breakdown", args);
  return 0;
}
