// Fig. 2 of the paper: breakdown of the running time into the three Borůvka
// steps (find-min / connect-components / compact-graph) for Bor-EL, Bor-AL,
// Bor-ALM and Bor-FAL, on random graphs with fixed n and m = 4n, 6n, 10n.
//
// The paper's claims to check:
//   * compact-graph dominates for Bor-EL and Bor-AL,
//   * Bor-EL is much slower than Bor-AL and degrades as density grows,
//   * Bor-FAL's compact-graph time is tiny and nearly independent of m,
//   * Bor-FAL's find-min grows (it rescans all m edges each iteration),
//   * connect-components is a small fraction everywhere.
#include <cstdio>

#include "common.hpp"
#include "core/msf.hpp"
#include "graph/generators.hpp"

using namespace smp;
using namespace smp::graph;

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  const auto n = static_cast<VertexId>(args.size(100000, 1000000));

  const core::Algorithm algs[] = {core::Algorithm::kBorEL, core::Algorithm::kBorAL,
                                  core::Algorithm::kBorALM, core::Algorithm::kBorFAL};
  for (const int density : {4, 6, 10}) {
    const auto m = static_cast<EdgeId>(density) * n;
    const EdgeList g = random_graph(n, m, args.seed + static_cast<std::uint64_t>(density));
    bench::banner("Fig 2 / random", g);
    std::printf("  %-8s %10s %10s %10s %10s %10s\n", "alg", "find-min",
                "connect", "compact", "other", "total");
    for (const auto alg : algs) {
      core::StepTimes best{};
      double best_total = 1e300;
      for (int r = 0; r < args.reps; ++r) {
        core::StepTimes st;
        core::MsfOptions opts;
        opts.algorithm = alg;
        opts.threads = args.max_threads;
        opts.step_times = &st;
        (void)core::minimum_spanning_forest(g, opts);
        if (st.total() < best_total) {
          best_total = st.total();
          best = st;
        }
      }
      std::printf("  %-8s %9.3fs %9.3fs %9.3fs %9.3fs %9.3fs\n",
                  std::string(core::to_string(alg)).c_str(), best.find_min,
                  best.connect, best.compact, best.other, best.total());
    }
    std::printf("\n");
  }
  return 0;
}
