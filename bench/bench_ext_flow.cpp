// Extension bench: the max-flow substrate (the paper's §6 future work) —
// Dinic versus FIFO push-relabel on random sparse networks, layered DAGs,
// and unit-capacity bipartite matchings.
#include <cstdio>

#include "common.hpp"
#include "flow/flow_network.hpp"
#include "pprim/rng.hpp"
#include "pprim/timer.hpp"

using namespace smp;
using namespace smp::flow;
using graph::VertexId;

namespace {

FlowNetwork random_network(VertexId n, std::size_t m, std::uint64_t seed) {
  Rng rng(seed);
  FlowNetwork net(n);
  for (std::size_t i = 0; i < m; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(n));
    auto v = static_cast<VertexId>(rng.next_below(n - 1));
    if (v >= u) ++v;
    net.add_edge(u, v, static_cast<Cap>(1 + rng.next_below(1000)));
  }
  return net;
}

FlowNetwork layered_dag(VertexId layers, VertexId width, std::uint64_t seed) {
  Rng rng(seed);
  FlowNetwork net(layers * width + 2);
  const VertexId s = layers * width, t = s + 1;
  for (VertexId w = 0; w < width; ++w) {
    net.add_edge(s, w, static_cast<Cap>(1 + rng.next_below(100)));
    net.add_edge((layers - 1) * width + w, t, static_cast<Cap>(1 + rng.next_below(100)));
  }
  for (VertexId l = 0; l + 1 < layers; ++l) {
    for (VertexId w = 0; w < width; ++w) {
      for (int k = 0; k < 3; ++k) {
        const auto to = static_cast<VertexId>(rng.next_below(width));
        net.add_edge(l * width + w, (l + 1) * width + to,
                     static_cast<Cap>(1 + rng.next_below(100)));
      }
    }
  }
  return net;
}

FlowNetwork bipartite(VertexId k, std::uint64_t seed) {
  Rng rng(seed);
  FlowNetwork net(2 * k + 2);
  const VertexId s = 2 * k, t = s + 1;
  for (VertexId i = 0; i < k; ++i) {
    net.add_edge(s, i, 1);
    net.add_edge(k + i, t, 1);
    for (int d = 0; d < 4; ++d) {
      net.add_edge(i, k + static_cast<VertexId>(rng.next_below(k)), 1);
    }
  }
  return net;
}

template <class Make>
void run_case(const char* name, Make&& make, VertexId s, VertexId t, int reps) {
  double td = 0, tp = 0;
  Cap fd = 0, fp = 0;
  td = bench::time_best_of(reps, [&] {
    FlowNetwork net = make();
    fd = max_flow_dinic(net, s, t);
  });
  tp = bench::time_best_of(reps, [&] {
    FlowNetwork net = make();
    fp = max_flow_push_relabel(net, s, t);
  });
  std::printf("%-28s dinic %8.3fs   push-relabel %8.3fs   flow %lld%s\n", name,
              td, tp, static_cast<long long>(fd), fd == fp ? "" : "  MISMATCH!");
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  const auto n = static_cast<VertexId>(args.size(50000, 200000));
  const auto layers = static_cast<VertexId>(args.size(40, 80));
  const auto width = static_cast<VertexId>(args.size(500, 2000));
  const auto k = static_cast<VertexId>(args.size(30000, 200000));

  run_case("random sparse m=8n", [&] { return random_network(n, 8ull * n, args.seed); },
           0, n - 1, args.reps);
  run_case("layered DAG", [&] { return layered_dag(layers, width, args.seed); },
           layers * width, layers * width + 1, args.reps);
  run_case("unit bipartite matching", [&] { return bipartite(k, args.seed); },
           2 * k, 2 * k + 1, args.reps);
  return 0;
}
