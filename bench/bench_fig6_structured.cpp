// Fig. 6 of the paper: the Chung–Condon structured graphs str0–str3 —
// degenerate tree inputs that are worst cases for Borůvka's iteration count.
// The paper finds MST-BC is often the only algorithm beating the best
// sequential one here (with modest speedups).
#include <cstdio>

#include "common.hpp"
#include "graph/generators.hpp"

using namespace smp;
using namespace smp::graph;

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  const auto n = static_cast<VertexId>(args.size(262144, 1048576));
  for (int variant = 0; variant < 4; ++variant) {
    const EdgeList g = structured_graph(variant, n, args.seed);
    char title[32];
    std::snprintf(title, sizeof title, "Fig 6 / str%d", variant);
    bench::banner(title, g);
    bench::run_parallel_comparison(g, args);
  }
  return 0;
}
