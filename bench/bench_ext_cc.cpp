// Extension bench: parallel connected components (the paper's §6 future
// work) — hook + pointer-jump versus the sequential union-find sweep, across
// input families and a thread sweep.
#include <cstdio>

#include "common.hpp"
#include "core/connected_components.hpp"
#include "graph/generators.hpp"
#include "seq/union_find.hpp"

using namespace smp;
using namespace smp::graph;

namespace {

std::size_t seq_cc(const EdgeList& g) {
  seq::UnionFind uf(g.num_vertices);
  for (const auto& e : g.edges) uf.unite(e.u, e.v);
  return uf.num_sets();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  const auto n = static_cast<VertexId>(args.size(200000, 1000000));
  const auto side = static_cast<VertexId>(args.size(450, 1000));

  struct Case {
    const char* name;
    EdgeList g;
  };
  const Case cases[] = {
      {"random m=2n", random_graph(n, 2 * static_cast<EdgeId>(n), args.seed)},
      {"random m=0.5n", random_graph(n, static_cast<EdgeId>(n) / 2, args.seed)},
      {"mesh2d60", mesh2d_p(side, side, 0.6, args.seed)},
      {"rmat m=4n", rmat_graph(18, 4ull << 18, args.seed)},
  };

  for (const auto& c : cases) {
    bench::banner(std::string("CC / ") + c.name, c.g);
    std::size_t comps = 0;
    const double ts = bench::time_best_of(args.reps, [&] { comps = seq_cc(c.g); });
    std::printf("  union-find (seq): %.3fs, %zu components\n", ts, comps);
    for (int p = 1; p <= args.max_threads; p *= 2) {
      std::size_t pc = 0;
      const double tp = bench::time_best_of(args.reps, [&] {
        pc = core::connected_components(c.g, p).num_components;
      });
      std::printf("  hook+jump p=%-2d:   %.3fs %5.2fx  (%zu components)\n", p, tp,
                  ts / tp, pc);
    }
    std::printf("\n");
  }
  return 0;
}
