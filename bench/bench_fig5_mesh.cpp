// Fig. 5 of the paper: regular and irregular meshes plus a fixed-degree
// geometric graph — regular mesh, geometric k=6, 2D60, 3D40 — parallel
// algorithms versus best sequential across a thread sweep.  The paper finds
// Bor-ALM often best here.
#include "common.hpp"
#include "graph/generators.hpp"

using namespace smp;
using namespace smp::graph;

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  const auto side = static_cast<VertexId>(args.size(316, 1000));   // side^2 ≈ n
  const auto side3 = static_cast<VertexId>(args.size(46, 100));    // side3^3 ≈ n
  const auto n = static_cast<VertexId>(args.size(100000, 1000000));

  {
    const EdgeList g = mesh2d(side, side, args.seed);
    bench::banner("Fig 5 / regular mesh", g);
    bench::run_parallel_comparison(g, args);
  }
  {
    const EdgeList g = geometric_knn(n, 6, args.seed);
    bench::banner("Fig 5 / geometric k=6", g);
    bench::run_parallel_comparison(g, args);
  }
  {
    const EdgeList g = mesh2d_p(side, side, 0.6, args.seed);
    bench::banner("Fig 5 / 2D60", g);
    bench::run_parallel_comparison(g, args);
  }
  {
    const EdgeList g = mesh3d_p(side3, side3, side3, 0.4, args.seed);
    bench::banner("Fig 5 / 3D40", g);
    bench::run_parallel_comparison(g, args);
  }
  return 0;
}
