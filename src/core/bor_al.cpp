#include <atomic>
#include <memory>
#include <vector>

#include "core/atomic_min.hpp"
#include "core/deferred_el.hpp"
#include "core/detail.hpp"
#include "core/find_min.hpp"
#include "core/hook_jump.hpp"
#include "core/msf.hpp"
#include "pprim/arena.hpp"
#include "pprim/cacheline.hpp"
#include "pprim/fault.hpp"
#include "pprim/parallel_for.hpp"
#include "pprim/prefix_sum.hpp"
#include "pprim/sample_sort.hpp"
#include "pprim/seq_sort.hpp"
#include "pprim/timer.hpp"

namespace smp::core {

using graph::EdgeId;
using graph::EdgeList;
using graph::kInvalidEdge;
using graph::MsfResult;
using graph::VertexId;
using graph::Weight;
using graph::WeightOrder;

namespace {

/// One entry of a vertex's adjacency array.
struct AdjArc {
  VertexId target;
  Weight w;
  EdgeId orig;

  [[nodiscard]] WeightOrder order() const { return {w, orig}; }
};

/// Mutable adjacency-array graph (offsets + packed arc records).
struct AdjGraph {
  VertexId n = 0;
  std::vector<EdgeId> offsets;  // n + 1
  std::vector<AdjArc> arcs;
};

AdjGraph build_adj(const EdgeList& g) {
  AdjGraph a;
  a.n = g.num_vertices;
  a.offsets.assign(static_cast<std::size_t>(a.n) + 1, 0);
  for (const auto& e : g.edges) {
    ++a.offsets[e.u + 1];
    ++a.offsets[e.v + 1];
  }
  for (std::size_t i = 1; i < a.offsets.size(); ++i) a.offsets[i] += a.offsets[i - 1];
  a.arcs.resize(a.offsets.back());
  std::vector<EdgeId> cur(a.offsets.begin(), a.offsets.end() - 1);
  for (EdgeId i = 0; i < g.edges.size(); ++i) {
    const auto& e = g.edges[i];
    a.arcs[cur[e.u]++] = {e.v, e.w, i};
    a.arcs[cur[e.v]++] = {e.u, e.w, i};
  }
  return a;
}

/// Scratch allocation policy: Bor-AL takes per-task buffers from the system
/// heap (every list sort and k-way merge pays `operator new`, serializing on
/// the shared allocator exactly as the paper's Bor-AL pays `malloc`);
/// Bor-ALM draws from per-thread arenas instead (§2.2's custom memory
/// management), making steady-state allocation synchronization-free.
class Scratch {
 public:
  explicit Scratch(ThreadArenas* arenas) : arenas_(arenas) {}

  template <class T>
  std::span<T> get(int tid, std::size_t count, std::unique_ptr<T[]>& owned) {
    if (count == 0) return {};
    if (arenas_ != nullptr) {
      return arenas_->local(tid).alloc_array<T>(count);
    }
    owned = std::make_unique<T[]>(count);
    return {owned.get(), count};
  }

  void next_iteration() {
    if (arenas_ != nullptr) arenas_->reset_all();
  }

 private:
  ThreadArenas* arenas_;
};

/// Cursor over one member's sorted adjacency slice during the k-way merge.
struct MergeCursor {
  EdgeId pos;
  EdgeId end;
};

/// K-way merge of one supervertex's member adjacency slices (§2.2 steps d/e),
/// dropping internal arcs and all but the lightest arc per neighboring
/// supervertex.  `label` maps each arc target to its supervertex; member v's
/// (sorted) slice is adj.arcs[adj.offsets[v] .. slice_end[v]) — the eager
/// loop passes the full lists, the deferred loop passes live watermarks.
/// With `out == nullptr` this is the count pass.
void merge_group_slices(const AdjGraph& adj, std::span<const VertexId> order,
                        std::span<const EdgeId> group_start,
                        std::span<const VertexId> label,
                        std::span<const EdgeId> slice_end, Scratch& scratch,
                        int tid, VertexId s, AdjArc* out, EdgeId* count) {
  const auto arc_less = [&](const AdjArc& x, const AdjArc& y) {
    const VertexId lx = label[x.target];
    const VertexId ly = label[y.target];
    return lx != ly ? lx < ly : x.order() < y.order();
  };
  const EdgeId gs = group_start[s];
  const EdgeId ge = group_start[s + 1];
  const auto k = static_cast<std::size_t>(ge - gs);
  std::unique_ptr<MergeCursor[]> owned;
  std::span<MergeCursor> heap = scratch.get<MergeCursor>(tid, k, owned);
  // Build a binary min-heap of non-empty member cursors.
  const auto cursor_key = [&](const MergeCursor& c) { return adj.arcs[c.pos]; };
  const auto cursor_less = [&](const MergeCursor& x, const MergeCursor& y) {
    return arc_less(cursor_key(x), cursor_key(y));
  };
  std::size_t hn = 0;
  for (EdgeId gi = gs; gi < ge; ++gi) {
    const VertexId member = order[gi];
    const EdgeId lo = adj.offsets[member];
    const EdgeId hi = slice_end[member];
    if (lo < hi) heap[hn++] = {lo, hi};
  }
  for (std::size_t i = hn / 2; i-- > 0;) {  // heapify (sift down)
    std::size_t j = i;
    for (;;) {
      std::size_t c = 2 * j + 1;
      if (c >= hn) break;
      if (c + 1 < hn && cursor_less(heap[c + 1], heap[c])) ++c;
      if (!cursor_less(heap[c], heap[j])) break;
      std::swap(heap[j], heap[c]);
      j = c;
    }
  }
  EdgeId written = 0;
  VertexId last_label = graph::kInvalidVertex;
  while (hn > 0) {
    const AdjArc& a = adj.arcs[heap[0].pos];
    const VertexId lbl = label[a.target];
    if (lbl != s && lbl != last_label) {
      if (out != nullptr) out[written] = {lbl, a.w, a.orig};
      ++written;
      last_label = lbl;
    }
    // Advance the top cursor and restore the heap.
    if (++heap[0].pos == heap[0].end) heap[0] = heap[--hn];
    std::size_t j = 0;
    for (;;) {
      std::size_t c = 2 * j + 1;
      if (c >= hn) break;
      if (c + 1 < hn && cursor_less(heap[c + 1], heap[c])) ++c;
      if (!cursor_less(heap[c], heap[j])) break;
      std::swap(heap[j], heap[c]);
      j = c;
    }
  }
  *count = written;
}

MsfResult bor_al_impl(ThreadTeam& team, const EdgeList& g, const MsfOptions& opts,
                      ThreadArenas* arenas) {
  StepTimes st;
  WallTimer phase;

  AdjGraph adj = build_adj(g);
  Scratch scratch(arenas);
  detail::EdgeCollector collector(team.size());
  std::vector<EdgeId> best(adj.n);
  std::vector<VertexId> parent(adj.n);
  // Fused-region shared state, reused (grow-only) across iterations.
  ComponentsScratch comp_scratch;
  SampleSortScratch<VertexId> order_sort;
  ScanScratch<EdgeId> size_scan;
  std::vector<VertexId> order;
  std::vector<EdgeId> group_start;
  std::vector<EdgeId> new_size;
  std::atomic<std::size_t> find_cursor{0};
  std::atomic<std::size_t> sort_cursor{0};
  std::atomic<std::size_t> count_cursor{0};
  std::atomic<std::size_t> fill_cursor{0};
  size_scan.ensure(team.size());
  st.other += phase.elapsed_s();

  while (!adj.arcs.empty()) {
    iteration_checkpoint(opts, "Bor-AL iteration");
    const VertexId cur_n = adj.n;
    if (opts.iteration_stats) {
      opts.iteration_stats->push_back({cur_n, adj.arcs.size()});
    }
    const std::uint64_t regions_before = team.regions_started();
    order.resize(cur_n);
    find_cursor.store(0, std::memory_order_relaxed);
    sort_cursor.store(0, std::memory_order_relaxed);
    count_cursor.store(0, std::memory_order_relaxed);
    fill_cursor.store(0, std::memory_order_relaxed);
    AdjGraph next;

    // The whole iteration — find-min, connect, and the five-step adjacency
    // compaction — runs as ONE persistent SPMD region.
    team.run([&](TeamCtx& ctx) {
      WallTimer t0;
      // --- find-min: per-vertex scan of its adjacency array, through the
      //     shared slice-argmin of the find-min layer ------------------------
      if (ctx.tid() == 0) fault_point("bor-al.find-min");
      for_range_dynamic(ctx, find_cursor, cur_n, 128, [&](std::size_t v) {
        best[v] = best_arc_in_slice(adj.arcs, adj.offsets[v], adj.offsets[v + 1]);
      });
      ctx.barrier();

      // --- connect-components ---------------------------------------------
      if (ctx.tid() == 0) {
        st.find_min += t0.elapsed_s();
        t0.reset();
        fault_point("bor-al.connect");
      }
      fault_point("bor-al.connect.region");
      for_range(ctx, cur_n, [&](std::size_t v) {
        const EdgeId b = best[v];
        if (b == kInvalidEdge) {
          parent[v] = static_cast<VertexId>(v);
          return;
        }
        const AdjArc& e = adj.arcs[b];
        parent[v] = e.target;
        const EdgeId ob = best[e.target];
        const bool other_also_chose = ob != kInvalidEdge && adj.arcs[ob].orig == e.orig;
        if (!(other_also_chose && e.target < v)) {
          collector.add(ctx.tid(), e.orig);
        }
      });
      ctx.barrier();
      pointer_jump_components_in_region(
          ctx, std::span<VertexId>(parent.data(), cur_n), comp_scratch);
      const VertexId next_n = densify_labels_in_region(
          ctx, std::span<VertexId>(parent.data(), cur_n), comp_scratch);

      // --- compact-graph --------------------------------------------------
      if (ctx.tid() == 0) {
        st.connect += t0.elapsed_s();
        t0.reset();
        fault_point("bor-al.compact");
      }
      fault_point("bor-al.compact.region");

      // (a) Sort the vertex array by supervertex label, so members of one
      //     supervertex become contiguous (§2.2).
      for_range(ctx, cur_n, [&](std::size_t v) {
        order[v] = static_cast<VertexId>(v);
      });
      ctx.barrier();
      sample_sort_in_region(ctx, order, order_sort, [&](VertexId a, VertexId b) {
        return parent[a] != parent[b] ? parent[a] < parent[b] : a < b;
      });

      // (b) Concurrently sort each vertex's adjacency list by the supervertex
      //     of the other endpoint (insertion sort for short lists, bottom-up
      //     merge sort for long — the paper's hybrid).
      const auto arc_less = [&](const AdjArc& x, const AdjArc& y) {
        const VertexId lx = parent[x.target];
        const VertexId ly = parent[y.target];
        return lx != ly ? lx < ly : x.order() < y.order();
      };
      for_range_dynamic(ctx, sort_cursor, cur_n, 64, [&](std::size_t v) {
        const EdgeId lo = adj.offsets[v];
        const EdgeId len = adj.offsets[v + 1] - lo;
        std::span<AdjArc> list(adj.arcs.data() + lo, len);
        std::unique_ptr<AdjArc[]> owned;
        std::span<AdjArc> buf;
        if (len > kInsertionSortCutoff) {
          buf = scratch.get<AdjArc>(ctx.tid(), len, owned);
        }
        seq_sort(list, buf, arc_less);
      });
      if (ctx.tid() == 0) {
        group_start.resize(static_cast<std::size_t>(next_n) + 1);
        new_size.resize(static_cast<std::size_t>(next_n) + 1);
      }
      ctx.barrier();

      // (c) Group boundaries: labels along `order` are non-decreasing and
      //     dense, so supervertex s owns order[group_start[s]..group_start[s+1]).
      for_range(ctx, cur_n, [&](std::size_t i) {
        if (i == 0 || parent[order[i]] != parent[order[i - 1]]) {
          group_start[parent[order[i]]] = i;
        }
      });
      if (ctx.tid() == 0) {
        group_start[next_n] = cur_n;
        new_size[next_n] = 0;
      }
      ctx.barrier();

      // (d) Count pass: k-way merge of member lists per supervertex, dropping
      //     self-loops and all but the lightest multi-edge.
      const auto merge_group = [&](int tid, VertexId s, AdjArc* out, EdgeId* count) {
        merge_group_slices(
            adj, order, group_start,
            std::span<const VertexId>(parent.data(), cur_n),
            std::span<const EdgeId>(adj.offsets.data() + 1, cur_n), scratch,
            tid, s, out, count);
      };
      for_range_dynamic(ctx, count_cursor, next_n, 16, [&](std::size_t s) {
        merge_group(ctx.tid(), static_cast<VertexId>(s), nullptr, &new_size[s]);
      });
      ctx.barrier();
      const EdgeId new_arc_count = prefix_sum_in_region(
          ctx, std::span<EdgeId>(new_size.data(), next_n + 1), size_scan);

      // (e) Fill pass into the fresh adjacency arrays.
      if (ctx.tid() == 0) {
        next.n = next_n;
        next.offsets.assign(new_size.begin(),
                            new_size.begin() + next_n + 1);
        next.offsets.back() = new_arc_count;
        next.arcs.resize(new_arc_count);
      }
      ctx.barrier();
      for_range_dynamic(ctx, fill_cursor, next_n, 16, [&](std::size_t s) {
        EdgeId written = 0;
        merge_group(ctx.tid(), static_cast<VertexId>(s),
                    next.arcs.data() + next.offsets[s], &written);
      });
      if (ctx.tid() == 0) st.compact += t0.elapsed_s();
    });

    adj = std::move(next);
    scratch.next_iteration();
    if (opts.phase_stats) {
      opts.phase_stats->iterations += 1;
      opts.phase_stats->regions += team.regions_started() - regions_before;
    }
  }

  phase.reset();
  MsfResult res = detail::assemble_result(g, collector.gather());
  st.other += phase.elapsed_s();
  if (opts.step_times) *opts.step_times += st;
  return res;
}

/// Deferred-compaction Bor-AL/ALM: the adjacency structure stays in the
/// vertex space of the last full rebuild ("base" space).  Per-vertex live
/// watermarks shrink each base vertex's slice in place — internal
/// (self-loop) arcs are swapped past live_end[v] during the find-min scan —
/// and a labels[] indirection composed per contraction maps base vertices to
/// current supervertices.  The expensive five-step §2.2 rebuild runs only
/// when the live fraction sinks below the threshold, and then merges the
/// LIVE slice prefixes only.
///
/// find-min races one packed ⟨rank, base-target⟩ key per supervertex
/// (multiple base vertices share a supervertex, so unlike the eager loop the
/// per-slice argmin alone is not enough); hence this path requires the
/// packed find-min.  No dominated-parallel filter here: a parallel arc lives
/// in some other base vertex's slice and retiring it would race that slice's
/// single owner — the merge rebuild removes parallels instead.
MsfResult bor_al_deferred_impl(ThreadTeam& team, const EdgeList& g,
                               const MsfOptions& opts, ThreadArenas* arenas) {
  StepTimes st;
  WallTimer phase;

  AdjGraph adj = build_adj(g);
  Scratch scratch(arenas);
  const int p = team.size();

  std::vector<std::uint32_t> rank_to_edge;
  const std::vector<std::uint32_t> rank =
      build_weight_ranks(team, g, &rank_to_edge);

  detail::EdgeCollector collector(p);
  std::vector<std::uint64_t> best_keys(adj.n);
  std::vector<VertexId> parent(adj.n);
  std::vector<VertexId> labels(adj.n);
  for (VertexId x = 0; x < adj.n; ++x) labels[x] = x;
  std::vector<EdgeId> live_end(adj.n);
  for (VertexId v = 0; v < adj.n; ++v) live_end[v] = adj.offsets[v + 1];
  std::vector<Padded<std::uint64_t>> pruned_partial(
      static_cast<std::size_t>(p));
  ComponentsScratch comp_scratch;
  SampleSortScratch<VertexId> order_sort;
  ScanScratch<EdgeId> size_scan;
  std::vector<VertexId> order;
  std::vector<EdgeId> group_start;
  std::vector<EdgeId> new_size;
  std::atomic<bool> any{false};
  std::atomic<std::size_t> scan_cursor{0};
  std::atomic<std::size_t> sort_cursor{0};
  std::atomic<std::size_t> count_cursor{0};
  std::atomic<std::size_t> fill_cursor{0};
  size_scan.ensure(p);
  EdgeId live_total = adj.arcs.size();
  VertexId cur_n = adj.n;
  PhaseStats local_ps;
  st.other += phase.elapsed_s();

  while (!adj.arcs.empty()) {
    iteration_checkpoint(opts, "Bor-AL iteration");
    if (opts.iteration_stats) {
      IterationStat is;
      is.vertices = cur_n;
      is.directed_edges = live_total;
      is.live_fraction = static_cast<double>(live_total) /
                         static_cast<double>(adj.arcs.size());
      is.strategy = CompactStrategy::kDefer;
      opts.iteration_stats->push_back(is);
    }
    const std::uint64_t regions_before = team.regions_started();
    const VertexId base_n = adj.n;
    any.store(false, std::memory_order_relaxed);
    scan_cursor.store(0, std::memory_order_relaxed);
    sort_cursor.store(0, std::memory_order_relaxed);
    count_cursor.store(0, std::memory_order_relaxed);
    fill_cursor.store(0, std::memory_order_relaxed);
    order.resize(base_n);
    VertexId next_n_shared = 0;
    CompactStrategy strat = CompactStrategy::kDefer;
    AdjGraph next;

    team.run([&](TeamCtx& ctx) {
      WallTimer t0;
      const auto t = static_cast<std::size_t>(ctx.tid());
      // --- find-min: prune + publish over live slices ----------------------
      if (ctx.tid() == 0) fault_point("bor-al.find-min");
      for_range(ctx, cur_n, [&](std::size_t s) { best_keys[s] = kEmptyKey; });
      ctx.barrier();
      std::uint64_t pruned = 0;
      for_range_dynamic(ctx, scan_cursor, base_n, 64, [&](std::size_t v) {
        // Single owner: only this call touches v's slice this iteration.
        const VertexId s = labels[v];
        const EdgeId lo = adj.offsets[v];
        EdgeId end = live_end[v];
        std::uint64_t kmin = kEmptyKey;
        EdgeId i = lo;
        while (i < end) {
          const AdjArc& a = adj.arcs[i];
          if (labels[a.target] == s) {
            --end;
            std::swap(adj.arcs[i], adj.arcs[end]);
            ++pruned;
            continue;
          }
          const std::uint64_t k = pack_key(rank[a.orig], a.target);
          if (k < kmin) kmin = k;
          ++i;
        }
        live_end[v] = end;
        if (kmin != kEmptyKey) atomic_min_u64(best_keys[s], kmin);
      });
      pruned_partial[t].value = pruned;
      ctx.barrier();
      if (ctx.tid() == 0) {
        std::uint64_t total_pruned = 0;
        for (int t2 = 0; t2 < p; ++t2) {
          total_pruned += pruned_partial[static_cast<std::size_t>(t2)].value;
        }
        st.pruned_arcs += total_pruned;
        live_total -= total_pruned;
      }

      // --- connect-components ---------------------------------------------
      if (ctx.tid() == 0) {
        st.find_min += t0.elapsed_s();
        t0.reset();
        fault_point("bor-al.connect");
      }
      fault_point("bor-al.connect.region");
      bool local_any = false;
      for_range(ctx, cur_n, [&](std::size_t s) {
        const std::uint64_t bk = best_keys[s];
        if (bk == kEmptyKey) {
          parent[s] = static_cast<VertexId>(s);
          return;
        }
        local_any = true;
        // Payload is the target BASE vertex (stable under prune swaps).
        const VertexId other = labels[key_index(bk)];
        parent[s] = other;
        // Same undirected edge ⇔ same weight rank (ranks are unique).
        const std::uint64_t ob = best_keys[other];
        const bool other_also_chose =
            ob != kEmptyKey && key_rank(ob) == key_rank(bk);
        if (!(other_also_chose && other < s)) {
          collector.add(ctx.tid(), rank_to_edge[key_rank(bk)]);
        }
      });
      if (local_any) any.store(true, std::memory_order_relaxed);
      ctx.barrier();
      // Uniform exit decision: nobody writes `any` past the barrier.
      if (!any.load(std::memory_order_relaxed)) {
        if (ctx.tid() == 0) st.connect += t0.elapsed_s();
        return;  // every component fully contracted
      }
      pointer_jump_components_in_region(
          ctx, std::span<VertexId>(parent.data(), cur_n), comp_scratch);
      const VertexId next_n = densify_labels_in_region(
          ctx, std::span<VertexId>(parent.data(), cur_n), comp_scratch);

      // --- compact-graph decision -----------------------------------------
      if (ctx.tid() == 0) {
        next_n_shared = next_n;
        st.connect += t0.elapsed_s();
        t0.reset();
        fault_point("bor-al.compact");
      }
      fault_point("bor-al.compact.region");
      if (next_n == 1) {
        // Fully contracted: no cross arc can remain, skip the probe.
        if (ctx.tid() == 0) st.compact += t0.elapsed_s();
        return;
      }
      // Uniform: live_total was written by tid 0 before the post-find-min
      // barrier, next_n is returned on every thread.
      const bool full_rebuild =
          detail::want_full_compact(opts, live_total, adj.arcs.size());
      // Compose the indirection: base vertex → new supervertex.
      for_range(ctx, base_n, [&](std::size_t x) {
        labels[x] = parent[labels[x]];
      });
      if (!full_rebuild) {
        if (ctx.tid() == 0) {
          strat = CompactStrategy::kDefer;
          st.compact += t0.elapsed_s();
        }
        return;
      }

      // Five-step §2.2 rebuild over the live slice prefixes, grouping by the
      // just-composed labels so the result lands in the new vertex space.
      // (a) Sort the base vertex array by new supervertex label.
      for_range(ctx, base_n, [&](std::size_t v) {
        order[v] = static_cast<VertexId>(v);
      });
      ctx.barrier();  // also publishes the label composition above
      sample_sort_in_region(ctx, order, order_sort, [&](VertexId a, VertexId b) {
        return labels[a] != labels[b] ? labels[a] < labels[b] : a < b;
      });
      // (b) Sort each base vertex's LIVE slice by neighbor supervertex.
      const auto arc_less = [&](const AdjArc& x, const AdjArc& y) {
        const VertexId lx = labels[x.target];
        const VertexId ly = labels[y.target];
        return lx != ly ? lx < ly : x.order() < y.order();
      };
      for_range_dynamic(ctx, sort_cursor, base_n, 64, [&](std::size_t v) {
        const EdgeId lo = adj.offsets[v];
        const EdgeId len = live_end[v] - lo;
        std::span<AdjArc> list(adj.arcs.data() + lo, len);
        std::unique_ptr<AdjArc[]> owned;
        std::span<AdjArc> buf;
        if (len > kInsertionSortCutoff) {
          buf = scratch.get<AdjArc>(ctx.tid(), len, owned);
        }
        seq_sort(list, buf, arc_less);
      });
      if (ctx.tid() == 0) {
        group_start.resize(static_cast<std::size_t>(next_n) + 1);
        new_size.resize(static_cast<std::size_t>(next_n) + 1);
      }
      ctx.barrier();
      // (c) Group boundaries along `order`.
      for_range(ctx, base_n, [&](std::size_t i) {
        if (i == 0 || labels[order[i]] != labels[order[i - 1]]) {
          group_start[labels[order[i]]] = i;
        }
      });
      if (ctx.tid() == 0) {
        group_start[next_n] = base_n;
        new_size[next_n] = 0;
      }
      ctx.barrier();
      // (d) Count pass over live prefixes.
      const auto merge_group = [&](int tid, VertexId s, AdjArc* out,
                                   EdgeId* count) {
        merge_group_slices(adj, order, group_start,
                           std::span<const VertexId>(labels.data(), base_n),
                           std::span<const EdgeId>(live_end.data(), base_n),
                           scratch, tid, s, out, count);
      };
      for_range_dynamic(ctx, count_cursor, next_n, 16, [&](std::size_t s) {
        merge_group(ctx.tid(), static_cast<VertexId>(s), nullptr, &new_size[s]);
      });
      ctx.barrier();
      const EdgeId new_arc_count = prefix_sum_in_region(
          ctx, std::span<EdgeId>(new_size.data(), next_n + 1), size_scan);
      // (e) Fill pass into the fresh adjacency arrays.
      if (ctx.tid() == 0) {
        next.n = next_n;
        next.offsets.assign(new_size.begin(), new_size.begin() + next_n + 1);
        next.offsets.back() = new_arc_count;
        next.arcs.resize(new_arc_count);
      }
      ctx.barrier();
      for_range_dynamic(ctx, fill_cursor, next_n, 16, [&](std::size_t s) {
        EdgeId written = 0;
        merge_group(ctx.tid(), static_cast<VertexId>(s),
                    next.arcs.data() + next.offsets[s], &written);
      });
      ctx.barrier();  // fill reads labels; reset them only after
      // Reset the indirection to the identity over the new vertex space.
      for_range(ctx, next_n, [&](std::size_t x) {
        labels[x] = static_cast<VertexId>(x);
      });
      if (ctx.tid() == 0) {
        strat = CompactStrategy::kMerge;
        st.compact += t0.elapsed_s();
      }
    });

    local_ps.iterations += 1;
    local_ps.regions += team.regions_started() - regions_before;
    if (opts.iteration_stats) opts.iteration_stats->back().strategy = strat;
    switch (strat) {
      case CompactStrategy::kDefer:
        local_ps.deferred_iterations += 1;
        break;
      case CompactStrategy::kMerge:
        local_ps.merge_rebuilds += 1;
        adj = std::move(next);
        labels.resize(next_n_shared);
        live_end.resize(next_n_shared);
        for (VertexId v = 0; v < next_n_shared; ++v) {
          live_end[v] = adj.offsets[v + 1];
        }
        live_total = adj.arcs.size();
        scratch.next_iteration();
        break;
      default:
        break;
    }
    if (!any.load(std::memory_order_relaxed)) break;
    if (next_n_shared == 1) break;
    cur_n = next_n_shared;
  }

  phase.reset();
  MsfResult res = detail::assemble_result(g, collector.gather());
  st.other += phase.elapsed_s();
  if (opts.step_times) *opts.step_times += st;
  if (opts.phase_stats) *opts.phase_stats += local_ps;
  return res;
}

}  // namespace

MsfResult bor_al_msf(ThreadTeam& team, const EdgeList& g, const MsfOptions& opts) {
  if (detail::deferred_compact_enabled(
          opts, resolve_find_min_mode(opts.find_min, g.edges.size()) ==
                    FindMinMode::kSimd)) {
    return bor_al_deferred_impl(team, g, opts, nullptr);
  }
  return bor_al_impl(team, g, opts, nullptr);
}

MsfResult bor_alm_msf(ThreadTeam& team, const EdgeList& g, const MsfOptions& opts) {
  // The budget's memory cap binds the per-thread arenas to a shared ledger;
  // a reservation that would cross it fails as std::bad_alloc and the
  // dispatcher degrades to sequential Kruskal.
  const std::size_t cap =
      opts.budget != nullptr ? opts.budget->memory_cap() : 0;
  ThreadArenas arenas(team.size(), std::size_t{1} << 20, cap);
  if (detail::deferred_compact_enabled(
          opts, resolve_find_min_mode(opts.find_min, g.edges.size()) ==
                    FindMinMode::kSimd)) {
    return bor_al_deferred_impl(team, g, opts, &arenas);
  }
  return bor_al_impl(team, g, opts, &arenas);
}

}  // namespace smp::core
