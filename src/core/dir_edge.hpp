#pragma once

#include "graph/types.hpp"

namespace smp::core {

/// Internal directed edge record used by Bor-EL and by the contraction
/// cascades of MST-BC.  Each undirected edge appears twice, once per
/// direction, exactly as §2.1 of the paper describes.
struct DirEdge {
  graph::VertexId u;
  graph::VertexId v;
  graph::Weight w;
  graph::EdgeId orig;  ///< index of the undirected edge in the input list

  [[nodiscard]] graph::WeightOrder order() const { return {w, orig}; }
};

/// How compact-graph deduplicates the relabeled arc array.
///
/// kAuto packs ⟨u, v⟩ into one uint64_t and dispatches to the parallel LSD
/// radix sort whenever VertexId fits 32 bits (always, with the current
/// 32-bit VertexId), falling back to comparison sample sort otherwise.
/// kHash skips sorting entirely: duplicate ⟨u, v⟩ pairs are resolved in a
/// cache-aware radix hash map (pprim/radix_hash_map.hpp) and the output is
/// deduplicated but NOT pair-sorted — callers that need sorted arcs (none of
/// the Borůvka loops do; the forest never depends on arc order) must pin a
/// sort mode.  The explicit modes pin one path for ablation benches; all
/// modes keep exactly the lightest arc of every ⟨u, v⟩ group under the
/// WeightOrder total order, so every downstream forest is bit-identical.
enum class CompactSortMode {
  kAuto,
  kRadix,
  kSample,
  kHash,
};

/// Sample-sort key for compact-graph: supervertex of the first endpoint is
/// the primary key, of the second endpoint the secondary key, and the edge
/// weight (with orig tie-break) the tertiary key (§2.1).
struct DirEdgeCompactLess {
  bool operator()(const DirEdge& a, const DirEdge& b) const {
    if (a.u != b.u) return a.u < b.u;
    if (a.v != b.v) return a.v < b.v;
    return a.order() < b.order();
  }
};

}  // namespace smp::core
