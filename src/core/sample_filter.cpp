#include "core/sample_filter.hpp"

#include <algorithm>
#include <vector>

#include "core/verify_msf.hpp"
#include "graph/types.hpp"
#include "pprim/cacheline.hpp"
#include "pprim/partition.hpp"
#include "pprim/rng.hpp"
#include "pprim/seq_sort.hpp"
#include "seq/union_find.hpp"

namespace smp::core {

using graph::EdgeId;
using graph::EdgeList;
using graph::MsfResult;
using graph::VertexId;
using graph::WEdge;
using graph::WeightOrder;

namespace {

/// Kruskal restricted to a subset of edge ids; returns the MSF's ids.
std::vector<EdgeId> kruskal_subset(const EdgeList& g, std::vector<EdgeId> ids) {
  std::vector<EdgeId> scratch(ids.size());
  seq_sort(std::span<EdgeId>(ids), std::span<EdgeId>(scratch),
           [&](EdgeId a, EdgeId b) {
             return WeightOrder{g.edges[a].w, a} < WeightOrder{g.edges[b].w, b};
           });
  seq::UnionFind uf(g.num_vertices);
  std::vector<EdgeId> out;
  for (const EdgeId i : ids) {
    const auto& e = g.edges[i];
    if (uf.unite(e.u, e.v)) out.push_back(i);
  }
  return out;
}

std::vector<EdgeId> solve(ThreadTeam& team, const EdgeList& g,
                          std::vector<EdgeId> ids, Rng& rng, int depth) {
  // Base: once the edge count is within a small factor of n, sampling stops
  // paying — Kruskal directly.
  if (depth == 0 ||
      ids.size() <= std::max<std::size_t>(4096, 2 * g.num_vertices)) {
    return kruskal_subset(g, std::move(ids));
  }

  // Coin-flip sample (expected half the edges).
  std::vector<EdgeId> sampled, unsampled;
  sampled.reserve(ids.size() / 2 + 16);
  unsampled.reserve(ids.size() / 2 + 16);
  for (const EdgeId i : ids) {
    (rng.next() & 1u ? sampled : unsampled).push_back(i);
  }
  ids.clear();
  ids.shrink_to_fit();
  if (sampled.empty() || unsampled.empty()) {
    std::vector<EdgeId> all = std::move(sampled);
    all.insert(all.end(), unsampled.begin(), unsampled.end());
    return kruskal_subset(g, std::move(all));
  }

  // MSF of the sample.
  std::vector<EdgeId> forest_ids = solve(team, g, std::move(sampled), rng, depth - 1);

  // Filter the unsampled edges against the sample forest: keep an edge iff
  // it bridges two sample trees or beats the heaviest path edge (i.e. it is
  // F-light).  Parallel pass with per-thread buffers.
  std::vector<WEdge> forest_edges;
  forest_edges.reserve(forest_ids.size());
  for (const EdgeId i : forest_ids) forest_edges.push_back(g.edges[i]);
  const ForestPathMax fpm(g.num_vertices, forest_edges, forest_ids);

  std::vector<EdgeId> keep = std::move(forest_ids);
  const std::size_t nu = unsampled.size();
  if (team.size() == 1 || nu < 8192) {
    for (const EdgeId i : unsampled) {
      const auto& e = g.edges[i];
      const auto pm = fpm.path_max(e.u, e.v);
      if (!pm || WeightOrder{e.w, i} < *pm) keep.push_back(i);
    }
  } else {
    std::vector<Padded<std::vector<EdgeId>>> local(
        static_cast<std::size_t>(team.size()));
    team.run([&](TeamCtx& ctx) {
      auto& mine = local[static_cast<std::size_t>(ctx.tid())].value;
      const IndexRange r = block_range(nu, ctx.tid(), ctx.nthreads());
      for (std::size_t j = r.begin; j < r.end; ++j) {
        const EdgeId i = unsampled[j];
        const auto& e = g.edges[i];
        const auto pm = fpm.path_max(e.u, e.v);
        if (!pm || WeightOrder{e.w, i} < *pm) mine.push_back(i);
      }
    });
    for (auto& l : local) {
      keep.insert(keep.end(), l.value.begin(), l.value.end());
      l.value.clear();
    }
  }

  // In expectation |keep| = O(n): finish with Kruskal.
  return kruskal_subset(g, std::move(keep));
}

}  // namespace

MsfResult sample_filter_msf(ThreadTeam& team, const EdgeList& g, std::uint64_t seed) {
  std::vector<EdgeId> ids(g.edges.size());
  for (EdgeId i = 0; i < g.edges.size(); ++i) ids[i] = i;
  Rng rng(seed);
  std::vector<EdgeId> msf_ids = solve(team, g, std::move(ids), rng, /*depth=*/8);

  MsfResult res;
  res.edge_ids = std::move(msf_ids);
  std::sort(res.edge_ids.begin(), res.edge_ids.end());
  res.edges.reserve(res.edge_ids.size());
  for (const EdgeId id : res.edge_ids) {
    res.edges.push_back(g.edges[id]);
    res.total_weight += g.edges[id].w;
  }
  res.num_trees = g.num_vertices - res.edges.size();
  return res;
}

MsfResult sample_filter_msf(const EdgeList& g, int threads, std::uint64_t seed) {
  ThreadTeam team(threads);
  return sample_filter_msf(team, g, seed);
}

}  // namespace smp::core
