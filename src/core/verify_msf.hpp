#pragma once

#include <optional>
#include <span>
#include <string>

#include "graph/edge_list.hpp"
#include "graph/msf_result.hpp"
#include "graph/types.hpp"

namespace smp::core {

/// Maximum-weight edge on forest paths, answered in O(log n) after
/// O(n log n) preprocessing (binary lifting over rooted trees).
///
/// This is the core of MST *verification* by the cycle property: a spanning
/// forest F is minimum iff every non-forest edge e = (u,v) satisfies
/// order(e) > max-order edge on F's u–v path (with our strict total edge
/// order).  It also powers the sample-and-filter MSF algorithm the paper's
/// §3 discussion points at (Cole–Klein–Tarjan [8]).
class ForestPathMax {
 public:
  /// Builds the structure over a forest on `n` vertices.  `edges[i]` must
  /// form a forest (no cycles); `ids[i]` is each edge's identity used in the
  /// WeightOrder tie-break.
  ForestPathMax(graph::VertexId n, std::span<const graph::WEdge> edges,
                std::span<const graph::EdgeId> ids);

  /// True if u and v are in the same tree.
  [[nodiscard]] bool connected(graph::VertexId u, graph::VertexId v) const {
    return comp_[u] == comp_[v] && comp_[u] != graph::kInvalidVertex;
  }

  /// The heaviest edge order on the tree path u..v, or nullopt when u and v
  /// lie in different trees (or u == v).
  [[nodiscard]] std::optional<graph::WeightOrder> path_max(graph::VertexId u,
                                                           graph::VertexId v) const;

 private:
  [[nodiscard]] graph::WeightOrder lift(graph::VertexId& v, std::uint32_t target_depth,
                                        graph::WeightOrder acc) const;

  std::vector<graph::VertexId> comp_;    // tree id (root) per vertex
  std::vector<std::uint32_t> depth_;
  int levels_ = 1;
  // up_[k*n + v] = 2^k-th ancestor; upmax_[k*n + v] = heaviest edge order on
  // the way there.  Roots point at themselves with a -inf order.
  std::vector<graph::VertexId> up_;
  std::vector<graph::WeightOrder> upmax_;
  std::size_t n_ = 0;
};

/// Full MSF verification in O(m log n): structural checks (membership,
/// acyclicity, maximality — via graph::validate_spanning_forest) plus the
/// cycle property for every non-forest edge.  Unlike
/// graph::verify_cut_property (O(m · t), test-sized inputs only), this runs
/// comfortably at the paper's 1M/20M scale.
bool verify_msf(const graph::EdgeList& g, const graph::MsfResult& msf,
                std::string* error = nullptr);

}  // namespace smp::core
