#pragma once

#include "graph/edge_list.hpp"
#include "graph/msf_result.hpp"
#include "pprim/thread_team.hpp"

namespace smp::core {

/// Bor-UF: Borůvka over a shared lock-free union-find — the design that the
/// systems following this paper (Galois, PBBS/GBBS) converged on.
///
/// Where the paper's four variants pay a compact-graph step to materialize
/// the contracted graph, Bor-UF never rebuilds anything: components live in
/// an AtomicUnionFind, find-min races atomic write-mins keyed by *current
/// root*, and each iteration merely filters the live edge array in parallel.
/// Included as an extension so the benches can situate the 2004 designs
/// against their modern successor on identical inputs.
graph::MsfResult bor_uf_msf(ThreadTeam& team, const graph::EdgeList& g);

/// Convenience overload owning a temporary team.
graph::MsfResult bor_uf_msf(const graph::EdgeList& g, int threads = 1);

}  // namespace smp::core
