#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/msf.hpp"
#include "graph/edge_list.hpp"
#include "graph/types.hpp"
#include "pprim/cacheline.hpp"
#include "pprim/parallel_for.hpp"
#include "pprim/thread_team.hpp"
#include "pprim/tuning.hpp"

namespace smp::graph {
class CompressedCsr;
}

namespace smp::core {

/// Shared find-min layer (FindMinMode::kSimd / kAuto).
///
/// The packed-key scheme: a 64-bit weight cannot share a word with a 64-bit
/// tie-break index, so instead of the weight itself each input edge carries
/// its *weight rank* — its position in the WeightOrder-ascending order of
/// all m edges (build_weight_ranks).  Ranks are unique (WeightOrder is a
/// total order: ties broken by input index), fit 32 bits for any packable
/// graph, and compare exactly like ⟨weight, orig⟩.  A find-min key is then
///
///     key = rank(edge of arc) << 32 | payload
///
/// so (a) unsigned uint64 comparison of keys == WeightOrder comparison of
/// the underlying edges (distinct edges never share a rank, so the payload
/// half only ever breaks ties between a key and itself), (b) the winning
/// payload comes back for free from the low half, and (c) two arcs of the
/// same edge (its two directions) share a rank, which is what the
/// mutual-minimum test in the connect step compares.  The payload is the
/// algorithm's choice: Bor-EL packs the arc index; Bor-FAL packs the arc's
/// *target vertex*, which removes the arc-array gather from its prune loop
/// (labels[target] indexes a small cache-resident table) and recovers the
/// input edge at selection time through the rank permutation
/// (rank_to_edge).  The cross-thread race collapses from a two-word
/// comparator CAS loop to atomic_min_u64, and the per-vertex inner scan
/// becomes the branch-light u64_argmin SIMD kernel.

/// Empty best-slot sentinel: all-ones loses every unsigned min for free.
inline constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

/// Order-preserving map from weights to uint64: w1 < w2 ⇔ bits(w1) < bits(w2)
/// for all finite doubles.  -0.0 is collapsed onto +0.0 first — they compare
/// equal as weights, so their rank order must fall back to the input index,
/// which the stable rank sort only guarantees for identical sort keys.
[[nodiscard]] inline std::uint64_t monotone_weight_bits(graph::Weight w) {
  if (w == 0) w = 0;  // normalize -0.0
  const auto bits = std::bit_cast<std::uint64_t>(w);
  return (bits & (std::uint64_t{1} << 63)) != 0 ? ~bits
                                                : bits | (std::uint64_t{1} << 63);
}

[[nodiscard]] inline std::uint64_t pack_key(std::uint32_t rank,
                                            std::uint64_t arc) {
  return (std::uint64_t{rank} << 32) | arc;
}
[[nodiscard]] inline std::uint32_t key_rank(std::uint64_t key) {
  return static_cast<std::uint32_t>(key >> 32);
}
[[nodiscard]] inline std::uint64_t key_index(std::uint64_t key) {
  return key & 0xffffffffULL;
}

/// Whether the packed path can represent this graph: m ≤ 2^31 keeps every
/// rank below 2^32 and every directed-arc index (< 2m) within 32 bits.
[[nodiscard]] inline bool find_min_packable(std::size_t num_edges) {
  return num_edges <= (std::size_t{1} << 31);
}

/// Resolve the requested mode against the graph (see FindMinMode).
[[nodiscard]] inline FindMinMode resolve_find_min_mode(FindMinMode requested,
                                                       std::size_t num_edges) {
  if (requested == FindMinMode::kScan) return FindMinMode::kScan;
  return find_min_packable(num_edges) ? FindMinMode::kSimd : FindMinMode::kScan;
}

/// MsfOptions knob resolution (0 = the pprim/tuning.hpp default).
[[nodiscard]] inline int find_min_local_best_threads(const MsfOptions& o) {
  return o.find_min_local_best_threads > 0 ? o.find_min_local_best_threads
                                           : kFindMinLocalBestThreads;
}
[[nodiscard]] inline std::size_t find_min_local_best_cutoff(
    const MsfOptions& o) {
  return o.find_min_local_best_cutoff > 0 ? o.find_min_local_best_cutoff
                                          : kFindMinLocalBestCutoff;
}
[[nodiscard]] inline std::size_t find_min_prune_block(const MsfOptions& o) {
  return o.find_min_prune_block > 0 ? o.find_min_prune_block
                                    : kFindMinPruneBlock;
}

/// rank[e] ∈ [0, m): position of input edge e under the WeightOrder total
/// order.  Stable parallel LSD radix sort of an index permutation keyed by
/// monotone_weight_bits — stability is what breaks weight ties by input
/// index, completing the total order.  Fork-join (runs its own region); call
/// during setup, not inside an open region.  If `rank_to_edge` is non-null
/// it receives the inverse permutation ((*rank_to_edge)[r] = the input edge
/// with rank r) — the sort materializes it anyway, so this is free.
[[nodiscard]] std::vector<std::uint32_t> build_weight_ranks(
    ThreadTeam& team, const graph::EdgeList& g,
    std::vector<std::uint32_t>* rank_to_edge = nullptr);

/// Same sort over a flat weight array — the compressed-graph path, whose
/// weights are already a contiguous f64 section, skips the AoS gather.
[[nodiscard]] std::vector<std::uint32_t> build_weight_ranks(
    ThreadTeam& team, std::span<const graph::Weight> weights,
    std::vector<std::uint32_t>* rank_to_edge = nullptr);

/// Packed-path adjacency build: n + 1 offsets plus one pre-packed
/// ⟨rank, target⟩ key per directed arc, straight from the edge list.  This
/// replaces a full CsrGraph for Bor-FAL's packed find-min — the key array
/// IS the adjacency structure, so the target/weight/orig arc arrays (and
/// the separate key-packing pass over them, with its random rank gathers —
/// here rank[e] is a sequential read) are never materialized.
void build_packed_arcs(const graph::EdgeList& g, graph::VertexId n,
                       std::span<const std::uint32_t> rank,
                       std::vector<graph::EdgeId>& offsets,
                       std::unique_ptr<std::uint64_t[]>& keys);

/// Decode-on-the-fly variant over the compressed CSR: streams the varint
/// rows straight into packed ⟨rank, target⟩ keys.  The only uncompressed
/// scratch is one u32 target per edge for the scatter; no EdgeList or
/// CsrGraph is ever materialized (the eager path costs 16 B/edge more).
void build_packed_arcs(const graph::CompressedCsr& g,
                       std::span<const std::uint32_t> rank,
                       std::vector<graph::EdgeId>& offsets,
                       std::unique_ptr<std::uint64_t[]>& keys);

/// Per-thread slabs for the contention-aware local-best reduction: when the
/// team is large and cur_n small, every thread min-merges into its own slab
/// and the slabs are reduced into best[0..n) by merge_local_best_in_region,
/// replacing p-way CAS contention on a handful of hot lines with private
/// writes plus one parallel merge pass.
class LocalBestScratch {
 public:
  /// Size for p threads × n slots.  tid-0-only, behind a barrier.  Slabs are
  /// rounded up to whole cache lines so neighbours never share a line;
  /// grow-only so the fused Borůvka loop reuses the allocation.
  void ensure(int p, std::size_t n) {
    constexpr std::size_t kLine = kCacheLineBytes / sizeof(std::uint64_t);
    stride_ = (n + kLine - 1) / kLine * kLine;
    const std::size_t need = static_cast<std::size_t>(p) * stride_;
    if (slab_.size() < need) slab_.resize(need);
  }

  [[nodiscard]] std::uint64_t* slab(int tid) {
    return slab_.data() + static_cast<std::size_t>(tid) * stride_;
  }

 private:
  std::vector<std::uint64_t> slab_;
  std::size_t stride_ = 0;
};

/// Reduce the team's slabs into best[0..n): one for_range pass, slot s
/// min-reduced across all p slabs.  Call inside the region, after a barrier
/// has published every thread's slab writes; follow with a barrier before
/// reading best.
inline void merge_local_best_in_region(TeamCtx& ctx, LocalBestScratch& s,
                                       std::span<std::uint64_t> best) {
  const int p = ctx.nthreads();
  for_range(ctx, best.size(), [&](std::size_t v) {
    std::uint64_t b = s.slab(0)[v];
    for (int t = 1; t < p; ++t) {
      const std::uint64_t cand = s.slab(t)[v];
      if (cand < b) b = cand;
    }
    best[v] = b;
  });
}

/// Scalar argmin over one adjacency slice under the ⟨weight, orig⟩ order —
/// the shared inner loop of the per-vertex find-min variants (Bor-AL/ALM and
/// MST-BC's Borůvka rounds), whose arcs are rebuilt AoS each iteration and
/// whose slices are private to one thread (no packing or atomics needed).
/// Returns kInvalidEdge for an empty slice.
template <class Arcs>
[[nodiscard]] graph::EdgeId best_arc_in_slice(const Arcs& arcs,
                                              graph::EdgeId lo,
                                              graph::EdgeId hi) {
  graph::EdgeId best = graph::kInvalidEdge;
  for (graph::EdgeId a = lo; a < hi; ++a) {
    if (best == graph::kInvalidEdge || arcs[a].order() < arcs[best].order()) {
      best = a;
    }
  }
  return best;
}

}  // namespace smp::core
