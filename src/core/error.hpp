#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>

namespace smp {

/// Failure classes surfaced by the execution layer.  Long-running kernels
/// fail *as values* of this taxonomy (wrapped in smp::Error) instead of
/// terminating the process or deadlocking a thread team; the CLI maps each
/// class to a distinct exit code.
enum class ErrorCode {
  kCancelled,         ///< the caller's cancellation token fired
  kDeadlineExceeded,  ///< the wall-clock budget ran out
  kOutOfMemory,       ///< an allocation failed or the arena cap tripped
  kInvalidInput,      ///< malformed graph or MsfOptions
};

[[nodiscard]] constexpr std::string_view to_string(ErrorCode c) {
  switch (c) {
    case ErrorCode::kCancelled:
      return "cancelled";
    case ErrorCode::kDeadlineExceeded:
      return "deadline exceeded";
    case ErrorCode::kOutOfMemory:
      return "out of memory";
    case ErrorCode::kInvalidInput:
      return "invalid input";
  }
  return "?";
}

/// Structured error: an ErrorCode plus a human-readable location/reason.
class Error : public std::runtime_error {
 public:
  Error(ErrorCode code, const std::string& detail)
      : std::runtime_error(std::string(to_string(code)) + ": " + detail),
        code_(code) {}

  [[nodiscard]] ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

/// Cooperative execution budget for a single MSF request: a cancellation
/// token, an optional wall-clock deadline, and an optional cap on scratch
/// (arena) memory.  The solver checks it at per-iteration checkpoints — the
/// points between barrier-synchronized regions where only the orchestrating
/// thread runs — so cancellation latency is one Borůvka iteration, not one
/// edge.  `request_cancel` may be called from any thread at any time.
class ExecutionBudget {
 public:
  using Clock = std::chrono::steady_clock;

  ExecutionBudget() = default;
  ExecutionBudget(const ExecutionBudget&) = delete;
  ExecutionBudget& operator=(const ExecutionBudget&) = delete;

  void request_cancel() noexcept { cancelled_.store(true, std::memory_order_release); }
  [[nodiscard]] bool cancel_requested() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Fail with kDeadlineExceeded at the first checkpoint more than `seconds`
  /// from now (0 trips at the very first checkpoint).
  void set_deadline_after(double seconds) {
    deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(seconds));
    has_deadline_ = true;
  }
  void clear_deadline() { has_deadline_ = false; }

  /// Cap on bytes of arena scratch the request may reserve (0 = unlimited).
  /// Tripping it raises std::bad_alloc inside the solver, which the
  /// dispatcher turns into sequential fallback or Error{kOutOfMemory}.
  void set_memory_cap(std::size_t bytes) { memory_cap_ = bytes; }
  [[nodiscard]] std::size_t memory_cap() const noexcept { return memory_cap_; }

  [[nodiscard]] bool deadline_expired() const {
    return has_deadline_ && Clock::now() >= deadline_;
  }

  /// Checkpoint: throws Error{kCancelled} or Error{kDeadlineExceeded}.
  /// `where` names the checkpoint for the error message.
  void check(std::string_view where) const {
    if (cancel_requested()) {
      throw Error(ErrorCode::kCancelled, "at checkpoint " + std::string(where));
    }
    if (deadline_expired()) {
      throw Error(ErrorCode::kDeadlineExceeded, "at checkpoint " + std::string(where));
    }
  }

 private:
  std::atomic<bool> cancelled_{false};
  Clock::time_point deadline_{};
  bool has_deadline_ = false;
  std::size_t memory_cap_ = 0;
};

}  // namespace smp
