#pragma once

#include <span>

#include "graph/types.hpp"
#include "pprim/thread_team.hpp"

namespace smp::core {

/// Connected components of the pseudo-forest induced by the find-min step.
///
/// `parent[v]` must hold the other endpoint of v's chosen minimum edge (or v
/// itself if v chose nothing).  Under a strict total edge order the only
/// cycles such pointers can form are mutual-minimum 2-cycles; this routine
/// breaks them toward the smaller id and then pointer-jumps (Chung & Condon
/// style [7]) until every vertex points at its component root.
void pointer_jump_components(ThreadTeam& team, std::span<graph::VertexId> parent);

/// Rewrites root labels to dense ids 0..n'-1.
///
/// Precondition: `parent[v]` is a root label (parent[root] == root), i.e.
/// pointer_jump_components has run.  Returns n', the number of roots (the
/// supervertex count after this Borůvka iteration).
graph::VertexId densify_labels(ThreadTeam& team, std::span<graph::VertexId> parent);

}  // namespace smp::core
