#pragma once

#include <atomic>
#include <span>
#include <vector>

#include "graph/types.hpp"
#include "pprim/prefix_sum.hpp"
#include "pprim/thread_team.hpp"

namespace smp::core {

/// Team-shared scratch for the in-region connectivity helpers.  Grow-only,
/// so one instance serves every iteration of a fused Borůvka loop.
///
/// The two `changed` flags implement the race-free fixpoint test of the
/// in-region pointer jumping: round r publishes progress into changed[r%2]
/// while tid 0 clears the *other* flag, so no thread ever reads a flag that
/// is concurrently being reset (a single-flag clear-after-read scheme lets a
/// slow reader observe the cleared flag and diverge on barrier counts).
struct ComponentsScratch {
  std::vector<graph::VertexId> rank;
  ScanScratch<graph::VertexId> scan;
  std::atomic<bool> changed[2] = {false, false};
};

/// Connected components of the pseudo-forest induced by the find-min step.
///
/// `parent[v]` must hold the other endpoint of v's chosen minimum edge (or v
/// itself if v chose nothing).  Under a strict total edge order the only
/// cycles such pointers can form are mutual-minimum 2-cycles; this routine
/// breaks them toward the smaller id and then pointer-jumps (Chung & Condon
/// style [7]) until every vertex points at its component root.
void pointer_jump_components(ThreadTeam& team, std::span<graph::VertexId> parent);

/// Rewrites root labels to dense ids 0..n'-1.
///
/// Precondition: `parent[v]` is a root label (parent[root] == root), i.e.
/// pointer_jump_components has run.  Returns n', the number of roots (the
/// supervertex count after this Borůvka iteration).
graph::VertexId densify_labels(ThreadTeam& team, std::span<graph::VertexId> parent);

/// In-region variant of pointer_jump_components: all team threads call it
/// inside an open SPMD region with identical arguments; synchronization is
/// ctx.barrier() only.  On return `parent` is fully jumped and visible to
/// every thread.
void pointer_jump_components_in_region(TeamCtx& ctx,
                                       std::span<graph::VertexId> parent,
                                       ComponentsScratch& scratch);

/// In-region variant of densify_labels; returns the root count on every
/// thread (so the fused iteration can size its next-round structures without
/// leaving the region).
graph::VertexId densify_labels_in_region(TeamCtx& ctx,
                                         std::span<graph::VertexId> parent,
                                         ComponentsScratch& scratch);

}  // namespace smp::core
