#include "core/detail.hpp"

#include <algorithm>

#include "pprim/parallel_for.hpp"
#include "pprim/prefix_sum.hpp"
#include "pprim/sample_sort.hpp"

namespace smp::core::detail {

using graph::EdgeId;
using graph::EdgeList;
using graph::MsfResult;
using graph::VertexId;

MsfResult assemble_result(const EdgeList& input, std::vector<EdgeId> ids) {
  MsfResult res;
  res.edge_ids = std::move(ids);
  // Canonical order: makes the result (including the floating-point sum)
  // bit-identical across thread counts and scheduling.
  std::sort(res.edge_ids.begin(), res.edge_ids.end());
  res.edges.reserve(res.edge_ids.size());
  for (const EdgeId id : res.edge_ids) {
    const auto& e = input.edges[id];
    res.edges.push_back(e);
    res.total_weight += e.w;
  }
  res.num_trees = input.num_vertices - res.edges.size();
  return res;
}

std::vector<DirEdge> compact_arcs(ThreadTeam& team, std::vector<DirEdge>&& arcs,
                                  std::span<const VertexId> labels) {
  const std::size_t m = arcs.size();

  // Relabel and mark survivors (non-self-loops) in one pass.
  std::vector<EdgeId> keep(m);
  parallel_for(team, m, [&](std::size_t i) {
    DirEdge& e = arcs[i];
    e.u = labels[e.u];
    e.v = labels[e.v];
    keep[i] = e.u != e.v ? 1 : 0;
  });
  const EdgeId survivors = exclusive_scan(team, std::span<EdgeId>(keep));
  std::vector<DirEdge> filtered(survivors);
  parallel_for(team, m, [&](std::size_t i) {
    const bool live = (i + 1 < m ? keep[i + 1] : survivors) != keep[i];
    if (live) filtered[keep[i]] = arcs[i];
  });
  arcs.clear();
  arcs.shrink_to_fit();

  // Sort so that multi-edges between the same supervertex pair become
  // consecutive with the lightest first, then prefix-sum-compact the heads.
  sample_sort(team, filtered, DirEdgeCompactLess{});
  const std::size_t f = filtered.size();
  std::vector<EdgeId> head(f);
  parallel_for(team, f, [&](std::size_t i) {
    head[i] = (i == 0 || filtered[i].u != filtered[i - 1].u ||
               filtered[i].v != filtered[i - 1].v)
                  ? 1
                  : 0;
  });
  const EdgeId uniques = exclusive_scan(team, std::span<EdgeId>(head));
  std::vector<DirEdge> out(uniques);
  parallel_for(team, f, [&](std::size_t i) {
    const bool is_head = (i + 1 < f ? head[i + 1] : uniques) != head[i];
    if (is_head) out[head[i]] = filtered[i];
  });
  return out;
}

}  // namespace smp::core::detail
