#include "core/detail.hpp"

#include <algorithm>

#include "core/atomic_min.hpp"
#include "pprim/parallel_for.hpp"
#include "pprim/prefix_sum.hpp"
#include "pprim/radix_sort.hpp"
#include "pprim/sample_sort.hpp"

namespace smp::core::detail {

using graph::EdgeId;
using graph::EdgeList;
using graph::kInvalidEdge;
using graph::MsfResult;
using graph::VertexId;

MsfResult assemble_result(const EdgeList& input, std::vector<EdgeId> ids) {
  MsfResult res;
  res.edge_ids = std::move(ids);
  // Canonical order: makes the result (including the floating-point sum)
  // bit-identical across thread counts and scheduling.
  std::sort(res.edge_ids.begin(), res.edge_ids.end());
  res.edges.reserve(res.edge_ids.size());
  for (const EdgeId id : res.edge_ids) {
    const auto& e = input.edges[id];
    res.edges.push_back(e);
    res.total_weight += e.w;
  }
  res.num_trees = input.num_vertices - res.edges.size();
  return res;
}

std::size_t CompactScratch::footprint_bytes() const {
  std::size_t b = 0;
  b += keep.capacity() * sizeof(EdgeId);
  b += filtered.capacity() * sizeof(DirEdge);
  b += head.capacity() * sizeof(EdgeId);
  b += out.capacity() * sizeof(DirEdge);
  b += radix.aux.capacity() * sizeof(DirEdge);
  b += (radix.keys.capacity() + radix.keys_aux.capacity() +
        radix.counts.capacity() + radix.scan.capacity()) *
       sizeof(std::uint64_t);
  b += (sample.samples.capacity() + sample.splitters.capacity() +
        sample.aux.capacity()) *
       sizeof(DirEdge);
  b += (sample.counts.capacity() + sample.piece_begin.capacity()) *
       sizeof(std::size_t);
  b += hash.footprint_bytes();
  b += winner_cap * sizeof(std::atomic<EdgeId>);
  return b;
}

void CompactScratch::maybe_release(std::size_t need) {
  // The largest per-arc buffer tracks the biggest compact seen so far; once
  // the current arc count is a small fraction of that, re-allocating at the
  // new scale is cheaper than pinning the peak slabs until solve end.
  const std::size_t retained =
      std::max({keep.capacity(), filtered.capacity(), out.capacity(),
                hash.part.capacity()});
  if (retained < kShrinkFloor) return;
  if (need >= retained / kShrinkDivisor) return;
  std::vector<EdgeId>().swap(keep);
  std::vector<DirEdge>().swap(filtered);
  std::vector<EdgeId>().swap(head);
  std::vector<DirEdge>().swap(out);
  radix = RadixSortScratch<DirEdge>{};
  sample = SampleSortScratch<DirEdge>{};
  hash.release();
  winner.reset();
  winner_cap = 0;
}

void compact_arcs_in_region(TeamCtx& ctx, std::vector<DirEdge>& arcs,
                            std::span<const VertexId> labels,
                            CompactSortMode mode, CompactScratch& s) {
  const std::size_t m = arcs.size();
  const int p = ctx.nthreads();

  if (ctx.tid() == 0) {
    s.maybe_release(m);
    if (s.keep.size() < m) s.keep.resize(m);
    s.scan.ensure(p);
  }
  ctx.barrier();

  // Relabel and mark survivors (non-self-loops) in one pass.
  for_range(ctx, m, [&](std::size_t i) {
    DirEdge& e = arcs[i];
    e.u = labels[e.u];
    e.v = labels[e.v];
    s.keep[i] = e.u != e.v ? 1 : 0;
  });
  ctx.barrier();
  const EdgeId survivors =
      prefix_sum_in_region(ctx, std::span<EdgeId>(s.keep.data(), m), s.scan);
  if (ctx.tid() == 0) s.filtered.resize(survivors);
  ctx.barrier();
  for_range(ctx, m, [&](std::size_t i) {
    const bool live = (i + 1 < m ? s.keep[i + 1] : survivors) != s.keep[i];
    if (live) s.filtered[s.keep[i]] = arcs[i];
  });
  ctx.barrier();

  constexpr bool kPackable = sizeof(VertexId) <= 4;

  // Hash mode resolves duplicate ⟨u, v⟩ pairs without sorting at all: one
  // stable bucket scatter plus L2-resident open-addressing tables keep the
  // WeightOrder-minimal arc per pair.  The output is deduplicated but not
  // pair-sorted — no Borůvka loop depends on arc order.
  if (mode == CompactSortMode::kHash && kPackable) {
    radix_hash_dedup_in_region(
        ctx, s.filtered, s.hash,
        [](const DirEdge& e) {
          return (static_cast<std::uint64_t>(e.u) << 32) |
                 static_cast<std::uint64_t>(e.v);
        },
        [](const DirEdge& a, const DirEdge& b) { return a.order() < b.order(); },
        ctx.tid() == 0 ? &s.hash_stats : nullptr);
    if (ctx.tid() == 0) arcs.swap(s.filtered);
    ctx.barrier();
    return;
  }

  // Sort so that multi-edges between the same supervertex pair become
  // consecutive.  When ⟨u, v⟩ packs into a 64-bit integer (always with a
  // 32-bit VertexId), LSD radix sort beats the comparison sample sort.
  const bool use_radix =
      mode == CompactSortMode::kRadix ||
      (mode == CompactSortMode::kAuto && kPackable) ||
      (mode == CompactSortMode::kHash && !kPackable);
  if (use_radix) {
    radix_sort_in_region(ctx, s.filtered, s.radix, [](const DirEdge& e) {
      return (static_cast<std::uint64_t>(e.u) << 32) |
             static_cast<std::uint64_t>(e.v);
    });
  } else {
    sample_sort_in_region(ctx, s.filtered, s.sample, DirEdgeCompactLess{});
  }

  // Mark ⟨u, v⟩ group heads and prefix-sum them into dense group ids.
  const std::size_t f = s.filtered.size();
  if (ctx.tid() == 0) {
    if (s.head.size() < f) s.head.resize(f);
  }
  ctx.barrier();
  for_range(ctx, f, [&](std::size_t i) {
    s.head[i] = (i == 0 || s.filtered[i].u != s.filtered[i - 1].u ||
                 s.filtered[i].v != s.filtered[i - 1].v)
                    ? 1
                    : 0;
  });
  ctx.barrier();
  const EdgeId uniques =
      prefix_sum_in_region(ctx, std::span<EdgeId>(s.head.data(), f), s.scan);
  if (ctx.tid() == 0) {
    s.out.resize(uniques);
    if (use_radix && s.winner_cap < uniques) {
      s.winner = std::make_unique<std::atomic<EdgeId>[]>(uniques);
      s.winner_cap = uniques;
    }
  }
  ctx.barrier();

  if (use_radix) {
    // The radix sort grouped by ⟨u, v⟩ but (being stable on the packed key
    // alone) did not order groups by weight — resolve each group's lightest
    // arc by atomic write-min under the WeightOrder total order, which is
    // deterministic regardless of scheduling.
    for_range(ctx, uniques, [&](std::size_t g) {
      s.winner[g].store(kInvalidEdge, std::memory_order_relaxed);
    });
    ctx.barrier();
    const auto better = [&](EdgeId a, EdgeId b) {
      return s.filtered[a].order() < s.filtered[b].order();
    };
    for_range(ctx, f, [&](std::size_t i) {
      // After the exclusive scan, head[i] equals the group id only at head
      // positions; for every element the group id is the inclusive scan
      // (head[i+1], or `uniques` at the end) minus one.
      const EdgeId grp = (i + 1 < f ? s.head[i + 1] : uniques) - 1;
      atomic_write_min(s.winner[grp], static_cast<EdgeId>(i), better);
    });
    ctx.barrier();
    for_range(ctx, uniques, [&](std::size_t g) {
      s.out[g] = s.filtered[s.winner[g].load(std::memory_order_relaxed)];
    });
  } else {
    // The comparator sort put the lightest arc of each group first.
    for_range(ctx, f, [&](std::size_t i) {
      const bool is_head = (i + 1 < f ? s.head[i + 1] : uniques) != s.head[i];
      if (is_head) s.out[s.head[i]] = s.filtered[i];
    });
  }
  ctx.barrier();
  if (ctx.tid() == 0) arcs.swap(s.out);
  ctx.barrier();
}

std::vector<DirEdge> compact_arcs(ThreadTeam& team, std::vector<DirEdge>&& arcs,
                                  std::span<const VertexId> labels,
                                  CompactSortMode mode) {
  std::vector<DirEdge> result = std::move(arcs);
  CompactScratch scratch;
  team.run([&](TeamCtx& ctx) {
    compact_arcs_in_region(ctx, result, labels, mode, scratch);
  });
  return result;
}

}  // namespace smp::core::detail
