#include "core/connected_components.hpp"

#include <atomic>

#include "core/hook_jump.hpp"
#include "pprim/parallel_for.hpp"
#include "pprim/prefix_sum.hpp"

namespace smp::core {

using graph::EdgeList;
using graph::VertexId;

CcResult connected_components(ThreadTeam& team, const EdgeList& g) {
  const VertexId n = g.num_vertices;
  CcResult res;

  // Atomic parents so concurrent hooks race safely; hooking to the smaller
  // root via CAS-min keeps the forest acyclic and the outcome deterministic.
  std::vector<std::atomic<VertexId>> parent(n);
  parallel_for(team, n, [&](std::size_t v) {
    parent[v].store(static_cast<VertexId>(v), std::memory_order_relaxed);
  });

  const std::size_t m = g.edges.size();
  std::atomic<bool> changed{true};
  while (changed.load(std::memory_order_relaxed)) {
    changed.store(false, std::memory_order_relaxed);

    // Hook: try to point the larger of the two roots at the smaller.
    parallel_for(team, m, [&](std::size_t i) {
      const auto& e = g.edges[i];
      VertexId ru = parent[e.u].load(std::memory_order_relaxed);
      VertexId rv = parent[e.v].load(std::memory_order_relaxed);
      if (ru == rv) return;
      // Only roots may be re-pointed (star-hooking); retry via CAS-min.
      for (;;) {
        if (ru > rv) std::swap(ru, rv);
        VertexId expected = rv;
        // rv must currently be a root for the hook to be valid.
        if (parent[rv].load(std::memory_order_relaxed) != rv) break;
        if (parent[rv].compare_exchange_weak(expected, ru,
                                             std::memory_order_acq_rel,
                                             std::memory_order_relaxed)) {
          changed.store(true, std::memory_order_relaxed);
          break;
        }
        // Lost the race: expected holds rv's new parent; re-evaluate.
        if (expected <= ru) break;  // someone hooked it even lower — done
        rv = expected;
      }
    });

    // Jump: halve every chain.
    parallel_for(team, n, [&](std::size_t v) {
      const VertexId p = parent[v].load(std::memory_order_relaxed);
      const VertexId gp = parent[p].load(std::memory_order_relaxed);
      if (p != gp) {
        parent[v].store(gp, std::memory_order_relaxed);
        changed.store(true, std::memory_order_relaxed);
      }
    });
  }

  // Densify through the existing label machinery.
  res.label.resize(n);
  parallel_for(team, n, [&](std::size_t v) {
    res.label[v] = parent[v].load(std::memory_order_relaxed);
  });
  res.num_components = densify_labels(team, res.label);
  return res;
}

CcResult connected_components(const EdgeList& g, int threads) {
  ThreadTeam team(threads);
  return connected_components(team, g);
}

}  // namespace smp::core
