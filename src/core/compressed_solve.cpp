#include "core/compressed_solve.hpp"

#include <algorithm>
#include <new>
#include <span>
#include <string>
#include <vector>

#include "core/bor_fal_packed.hpp"
#include "core/find_min.hpp"
#include "graph/edge_list.hpp"
#include "pprim/timer.hpp"
#include "pprim/tuning.hpp"
#include "seq/seq_msf.hpp"

namespace smp::core {

using graph::CompressedCsr;
using graph::EdgeId;
using graph::EdgeList;
using graph::MsfResult;
using graph::VertexId;
using graph::Weight;

namespace {

/// Whether the streaming Bor-FAL engine serves this request.  kChampion's
/// sparse-graph pick IS Bor-FAL-with-packed-keys (see champion.cpp), so both
/// stream; every other algorithm keeps its own arc layout and goes eager.
[[nodiscard]] bool streamable(const MsfOptions& opts, std::size_t m) {
  if (opts.algorithm != Algorithm::kBorFAL &&
      opts.algorithm != Algorithm::kChampion) {
    return false;
  }
  return resolve_find_min_mode(opts.find_min, m) == FindMinMode::kSimd;
}

/// Streaming solve: ranks from the flat weight section, packed arcs straight
/// from the varint rows, and one final row walk to materialize just the
/// forest edges (sorted-id two-pointer against the implicit edge-id order).
MsfResult solve_streaming(ThreadTeam& team, const CompressedCsr& g,
                          const MsfOptions& opts) {
  StepTimes st;
  WallTimer phase;
  const std::size_t m = g.num_edges();

  PackedSolveInput in;
  in.n = g.num_vertices();
  const std::vector<std::uint32_t> rank = build_weight_ranks(
      team, std::span<const Weight>(g.weights(), m), &in.rank_to_edge);
  build_packed_arcs(g, rank, in.offsets, in.keys);
  st.other += phase.elapsed_s();

  std::vector<EdgeId> ids = bor_fal_packed_engine(team, std::move(in), opts, st);

  phase.reset();
  MsfResult res;
  res.edge_ids = std::move(ids);
  // Canonical order, exactly like detail::assemble_result: makes the result
  // (including the floating-point sum) bit-identical across thread counts.
  std::sort(res.edge_ids.begin(), res.edge_ids.end());
  res.edges.reserve(res.edge_ids.size());
  std::size_t next = 0;
  g.for_each_edge([&](EdgeId e, VertexId u, VertexId v, Weight w) {
    if (next < res.edge_ids.size() && res.edge_ids[next] == e) {
      res.edges.push_back({u, v, w});
      res.total_weight += w;
      ++next;
    }
  });
  res.num_trees = g.num_vertices() - res.edges.size();
  st.other += phase.elapsed_s();
  if (opts.step_times) *opts.step_times += st;
  return res;
}

MsfResult solve_with(ThreadTeam* external_team, const CompressedCsr& g,
                     const MsfOptions& opts) {
  // Option validation only: the graph itself was validated at build/open
  // time (no self-loops, in-range monotone targets, finite weights), so the
  // per-edge scan of validate_request has nothing left to check.
  validate_request(EdgeList{}, opts);
  iteration_checkpoint(opts, "request start");
  ScopedTuning tuning(opts.parallel_for_cutoff, opts.sample_sort_cutoff);

  try {
    if (streamable(opts, g.num_edges())) {
      if (external_team != nullptr) return solve_streaming(*external_team, g, opts);
      ThreadTeam team(opts.threads);
      return solve_streaming(team, g, opts);
    }
    // Eager fallback: materialize the canonical edge list and hand it to the
    // standard dispatcher.  Compressed ids ARE positions in this list, so
    // edge_ids need no remapping.
    const EdgeList el = g.decode_edge_list();
    if (external_team != nullptr) {
      return minimum_spanning_forest(*external_team, el, opts);
    }
    return minimum_spanning_forest(el, opts);
  } catch (const std::bad_alloc&) {
    if (!opts.allow_sequential_fallback) {
      throw Error(ErrorCode::kOutOfMemory,
                  std::string(to_string(opts.algorithm)) +
                      " exhausted its memory budget (fallback disabled)");
    }
    iteration_checkpoint(opts, "sequential fallback");
    try {
      MsfResult r = seq::kruskal_msf(g.decode_edge_list());
      r.degraded_to_sequential = true;
      return r;
    } catch (const std::bad_alloc&) {
      throw Error(ErrorCode::kOutOfMemory,
                  "sequential fallback also exhausted memory");
    }
  }
}

}  // namespace

MsfResult minimum_spanning_forest_compressed(const CompressedCsr& g,
                                             const MsfOptions& opts) {
  return solve_with(nullptr, g, opts);
}

MsfResult minimum_spanning_forest_compressed(ThreadTeam& team,
                                             const CompressedCsr& g,
                                             const MsfOptions& opts) {
  return solve_with(&team, g, opts);
}

}  // namespace smp::core
