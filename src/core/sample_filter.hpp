#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"
#include "graph/msf_result.hpp"
#include "pprim/thread_team.hpp"

namespace smp::core {

/// MSF by random sampling + cycle-property filtering, after Cole, Klein &
/// Tarjan [8] (cited in §3 of the paper as the linear-work approach that
/// "first uses random sampling to find a spanning forest F, then identifies
/// the heavy edges to F and excludes them from the final MST").
///
/// Recursion: flip a coin per edge; compute the MSF F of the sampled half;
/// drop every unsampled edge that is F-heavy (checked with ForestPathMax in
/// a parallel pass); solve the survivors — in expectation only O(n) of them
/// — with Kruskal.  Randomness affects only the running time, never the
/// result: the returned forest is the unique MSF under WeightOrder.
graph::MsfResult sample_filter_msf(ThreadTeam& team, const graph::EdgeList& g,
                                   std::uint64_t seed = 1);

/// Convenience overload owning a temporary team.
graph::MsfResult sample_filter_msf(const graph::EdgeList& g, int threads = 1,
                                   std::uint64_t seed = 1);

}  // namespace smp::core
