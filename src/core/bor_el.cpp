#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "core/atomic_min.hpp"
#include "core/deferred_el.hpp"
#include "core/detail.hpp"
#include "core/find_min.hpp"
#include "core/hook_jump.hpp"
#include "core/msf.hpp"
#include "pprim/cacheline.hpp"
#include "pprim/fault.hpp"
#include "pprim/parallel_for.hpp"
#include "pprim/timer.hpp"

namespace smp::core {

using graph::EdgeId;
using graph::EdgeList;
using graph::kInvalidEdge;
using graph::MsfResult;
using graph::VertexId;

/// Bor-EL (§2.1): edge-list representation.  find-min races atomic
/// write-mins per vertex; compact-graph packs ⟨supervertex(u),
/// supervertex(v)⟩ into one 64-bit key and radix-sorts the directed edge
/// list, then merges self-loops and multi-edges by prefix sum.
///
/// The packed-key find-min path (FindMinMode::kSimd, the kAuto default)
/// folds each arc's ⟨weight-rank, index⟩ into one uint64 on the fly, so the
/// per-arc race is a single atomic_min_u64 instead of the two-word
/// comparator CAS; in late iterations with few supervertices the publish
/// switches to per-thread local-best slabs merged in-region (the
/// contention-aware reduction of core/find_min.hpp).  No pruning here —
/// compact-graph already removes dead arcs physically each iteration.
/// FindMinMode::kScan keeps the seed kernel exactly.
///
/// Each Borůvka iteration runs as ONE persistent SPMD region: find-min,
/// connect-components (pointer jumping + label densification), and
/// compact-graph all synchronize through ctx.barrier() instead of paying a
/// ThreadTeam fork/join per parallel loop.  Budget checkpoints stay on the
/// orchestrating thread between regions; fault points that used to fire on
/// the orchestrator fire on tid 0 inside the region (same once-per-iteration
/// semantics, and a throw there poisons the barrier so the whole team
/// unwinds).
MsfResult bor_el_msf(ThreadTeam& team, const EdgeList& g, const MsfOptions& opts) {
  // Deferred compaction (the default on the packed find-min path) runs the
  // same edge-list algorithm through the shared watermark engine; the eager
  // loop below is the reference and the FindMinMode::kScan / opted-out path.
  if (detail::deferred_compact_enabled(
          opts, resolve_find_min_mode(opts.find_min, g.edges.size()) ==
                    FindMinMode::kSimd)) {
    static constexpr detail::DeferredElConfig cfg{
        "bor-el.find-min",       "bor-el.connect",
        "bor-el.connect.region", "bor-el.compact",
        "bor-el.compact.region", "Bor-EL iteration",
        /*prefer_hash=*/false};
    return detail::deferred_el_msf(team, g, opts, cfg);
  }

  const VertexId n = g.num_vertices;
  StepTimes st;
  WallTimer phase;

  // Each undirected edge appears in both directions, as in the paper.
  std::vector<DirEdge> arcs;
  arcs.reserve(2 * g.edges.size());
  for (EdgeId i = 0; i < g.edges.size(); ++i) {
    const auto& e = g.edges[i];
    arcs.push_back({e.u, e.v, e.w, i});
    arcs.push_back({e.v, e.u, e.w, i});
  }

  const int p = team.size();
  const FindMinMode mode = resolve_find_min_mode(opts.find_min, g.edges.size());
  const bool packed = mode == FindMinMode::kSimd;
  const int lb_threads = find_min_local_best_threads(opts);
  const std::size_t lb_cutoff = find_min_local_best_cutoff(opts);

  detail::EdgeCollector collector(team.size());
  std::vector<std::atomic<EdgeId>> best;  // scan path: per vertex arc id
  std::vector<std::uint64_t> best_keys;   // packed path: per vertex key
  std::vector<std::uint32_t> rank;        // packed path: per input edge
  LocalBestScratch local_best;
  if (packed) {
    rank = build_weight_ranks(team, g);
    best_keys.resize(n);
  } else {
    best = std::vector<std::atomic<EdgeId>>(n);
  }
  std::vector<VertexId> parent(n);
  ComponentsScratch comp_scratch;
  detail::CompactScratch compact_scratch;
  VertexId cur_n = n;
  st.other += phase.elapsed_s();

  while (!arcs.empty()) {
    iteration_checkpoint(opts, "Bor-EL iteration");
    if (opts.iteration_stats) {
      opts.iteration_stats->push_back({cur_n, arcs.size()});
    }
    const std::uint64_t regions_before = team.regions_started();
    const std::size_t m = arcs.size();
    VertexId next_n = 0;
    const bool local_best_on =
        packed && p > 1 && p >= lb_threads && cur_n <= lb_cutoff;

    team.run([&](TeamCtx& ctx) {
      WallTimer t0;
      // --- find-min -------------------------------------------------------
      if (ctx.tid() == 0) fault_point("bor-el.find-min");
      if (packed) {
        if (local_best_on) {
          if (ctx.tid() == 0) local_best.ensure(p, cur_n);
          ctx.barrier();
          std::uint64_t* mine = local_best.slab(ctx.tid());
          std::fill(mine, mine + cur_n, kEmptyKey);
        } else {
          for_range(ctx, cur_n,
                    [&](std::size_t v) { best_keys[v] = kEmptyKey; });
        }
        ctx.barrier();
        std::uint64_t* mine = local_best_on ? local_best.slab(ctx.tid()) : nullptr;
        for_range(ctx, m, [&](std::size_t i) {
          const std::uint64_t k = pack_key(rank[arcs[i].orig], i);
          const VertexId u = arcs[i].u;
          if (mine != nullptr) {
            if (k < mine[u]) mine[u] = k;
          } else {
            atomic_min_u64(best_keys[u], k);
          }
        });
        ctx.barrier();
        if (local_best_on) {
          merge_local_best_in_region(
              ctx, local_best, std::span<std::uint64_t>(best_keys.data(), cur_n));
          ctx.barrier();
        }
      } else {
        for_range(ctx, cur_n, [&](std::size_t v) {
          best[v].store(kInvalidEdge, std::memory_order_relaxed);
        });
        ctx.barrier();
        const auto better = [&](EdgeId a, EdgeId b) {
          return arcs[a].order() < arcs[b].order();
        };
        for_range(ctx, m, [&](std::size_t i) {
          atomic_write_min(best[arcs[i].u], static_cast<EdgeId>(i), better);
        });
        ctx.barrier();
      }

      // --- connect-components ---------------------------------------------
      if (ctx.tid() == 0) {
        st.find_min += t0.elapsed_s();
        t0.reset();
        fault_point("bor-el.connect");
      }
      fault_point("bor-el.connect.region");
      // Record chosen edges (each mutual-minimum pair exactly once) and set
      // up the pseudo-forest parent pointers.
      if (packed) {
        for_range(ctx, cur_n, [&](std::size_t v) {
          const std::uint64_t bk = best_keys[v];
          if (bk == kEmptyKey) {
            parent[v] = static_cast<VertexId>(v);
            return;
          }
          const DirEdge& e = arcs[key_index(bk)];
          parent[v] = e.v;
          // Same undirected edge ⇔ same weight rank (ranks are unique).
          const std::uint64_t ob = best_keys[e.v];
          const bool other_also_chose =
              ob != kEmptyKey && key_rank(ob) == key_rank(bk);
          if (!(other_also_chose && e.v < v)) {
            collector.add(ctx.tid(), e.orig);
          }
        });
      } else {
        for_range(ctx, cur_n, [&](std::size_t v) {
          const EdgeId b = best[v].load(std::memory_order_relaxed);
          if (b == kInvalidEdge) {
            parent[v] = static_cast<VertexId>(v);
            return;
          }
          const DirEdge& e = arcs[b];
          parent[v] = e.v;
          const EdgeId ob = best[e.v].load(std::memory_order_relaxed);
          const bool other_also_chose =
              ob != kInvalidEdge && arcs[ob].orig == e.orig;
          if (!(other_also_chose && e.v < v)) {
            collector.add(ctx.tid(), e.orig);
          }
        });
      }
      ctx.barrier();
      pointer_jump_components_in_region(
          ctx, std::span<VertexId>(parent.data(), cur_n), comp_scratch);
      const VertexId roots = densify_labels_in_region(
          ctx, std::span<VertexId>(parent.data(), cur_n), comp_scratch);

      // --- compact-graph --------------------------------------------------
      if (ctx.tid() == 0) {
        next_n = roots;
        st.connect += t0.elapsed_s();
        t0.reset();
        fault_point("bor-el.compact");
      }
      fault_point("bor-el.compact.region");
      detail::compact_arcs_in_region(
          ctx, arcs, std::span<const VertexId>(parent.data(), cur_n),
          opts.compact_sort, compact_scratch);
      if (ctx.tid() == 0) st.compact += t0.elapsed_s();
    });

    cur_n = next_n;
    if (opts.phase_stats) {
      opts.phase_stats->iterations += 1;
      opts.phase_stats->regions += team.regions_started() - regions_before;
    }
  }

  phase.reset();
  MsfResult res = detail::assemble_result(g, collector.gather());
  st.other += phase.elapsed_s();
  if (opts.step_times) *opts.step_times += st;
  return res;
}

}  // namespace smp::core
