#include <atomic>
#include <vector>

#include "core/atomic_min.hpp"
#include "core/detail.hpp"
#include "core/hook_jump.hpp"
#include "core/msf.hpp"
#include "pprim/fault.hpp"
#include "pprim/parallel_for.hpp"
#include "pprim/timer.hpp"

namespace smp::core {

using graph::EdgeId;
using graph::EdgeList;
using graph::kInvalidEdge;
using graph::MsfResult;
using graph::VertexId;

/// Bor-EL (§2.1): edge-list representation.  find-min races atomic
/// write-mins per vertex; compact-graph packs ⟨supervertex(u),
/// supervertex(v)⟩ into one 64-bit key and radix-sorts the directed edge
/// list, then merges self-loops and multi-edges by prefix sum.
///
/// Each Borůvka iteration runs as ONE persistent SPMD region: find-min,
/// connect-components (pointer jumping + label densification), and
/// compact-graph all synchronize through ctx.barrier() instead of paying a
/// ThreadTeam fork/join per parallel loop.  Budget checkpoints stay on the
/// orchestrating thread between regions; fault points that used to fire on
/// the orchestrator fire on tid 0 inside the region (same once-per-iteration
/// semantics, and a throw there poisons the barrier so the whole team
/// unwinds).
MsfResult bor_el_msf(ThreadTeam& team, const EdgeList& g, const MsfOptions& opts) {
  const VertexId n = g.num_vertices;
  StepTimes st;
  WallTimer phase;

  // Each undirected edge appears in both directions, as in the paper.
  std::vector<DirEdge> arcs;
  arcs.reserve(2 * g.edges.size());
  for (EdgeId i = 0; i < g.edges.size(); ++i) {
    const auto& e = g.edges[i];
    arcs.push_back({e.u, e.v, e.w, i});
    arcs.push_back({e.v, e.u, e.w, i});
  }

  detail::EdgeCollector collector(team.size());
  std::vector<std::atomic<EdgeId>> best(n);
  std::vector<VertexId> parent(n);
  ComponentsScratch comp_scratch;
  detail::CompactScratch compact_scratch;
  VertexId cur_n = n;
  st.other += phase.elapsed_s();

  while (!arcs.empty()) {
    iteration_checkpoint(opts, "Bor-EL iteration");
    if (opts.iteration_stats) {
      opts.iteration_stats->push_back({cur_n, arcs.size()});
    }
    const std::uint64_t regions_before = team.regions_started();
    const std::size_t m = arcs.size();
    VertexId next_n = 0;

    team.run([&](TeamCtx& ctx) {
      WallTimer t0;
      // --- find-min -------------------------------------------------------
      if (ctx.tid() == 0) fault_point("bor-el.find-min");
      for_range(ctx, cur_n, [&](std::size_t v) {
        best[v].store(kInvalidEdge, std::memory_order_relaxed);
      });
      ctx.barrier();
      const auto better = [&](EdgeId a, EdgeId b) {
        return arcs[a].order() < arcs[b].order();
      };
      for_range(ctx, m, [&](std::size_t i) {
        atomic_write_min(best[arcs[i].u], static_cast<EdgeId>(i), better);
      });
      ctx.barrier();

      // --- connect-components ---------------------------------------------
      if (ctx.tid() == 0) {
        st.find_min += t0.elapsed_s();
        t0.reset();
        fault_point("bor-el.connect");
      }
      fault_point("bor-el.connect.region");
      // Record chosen edges (each mutual-minimum pair exactly once) and set
      // up the pseudo-forest parent pointers.
      for_range(ctx, cur_n, [&](std::size_t v) {
        const EdgeId b = best[v].load(std::memory_order_relaxed);
        if (b == kInvalidEdge) {
          parent[v] = static_cast<VertexId>(v);
          return;
        }
        const DirEdge& e = arcs[b];
        parent[v] = e.v;
        const EdgeId ob = best[e.v].load(std::memory_order_relaxed);
        const bool other_also_chose =
            ob != kInvalidEdge && arcs[ob].orig == e.orig;
        if (!(other_also_chose && e.v < v)) {
          collector.add(ctx.tid(), e.orig);
        }
      });
      ctx.barrier();
      pointer_jump_components_in_region(
          ctx, std::span<VertexId>(parent.data(), cur_n), comp_scratch);
      const VertexId roots = densify_labels_in_region(
          ctx, std::span<VertexId>(parent.data(), cur_n), comp_scratch);

      // --- compact-graph --------------------------------------------------
      if (ctx.tid() == 0) {
        next_n = roots;
        st.connect += t0.elapsed_s();
        t0.reset();
        fault_point("bor-el.compact");
      }
      fault_point("bor-el.compact.region");
      detail::compact_arcs_in_region(
          ctx, arcs, std::span<const VertexId>(parent.data(), cur_n),
          opts.compact_sort, compact_scratch);
      if (ctx.tid() == 0) st.compact += t0.elapsed_s();
    });

    cur_n = next_n;
    if (opts.phase_stats) {
      opts.phase_stats->iterations += 1;
      opts.phase_stats->regions += team.regions_started() - regions_before;
    }
  }

  phase.reset();
  MsfResult res = detail::assemble_result(g, collector.gather());
  st.other += phase.elapsed_s();
  if (opts.step_times) *opts.step_times += st;
  return res;
}

}  // namespace smp::core
