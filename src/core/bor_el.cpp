#include <atomic>
#include <vector>

#include "core/atomic_min.hpp"
#include "core/detail.hpp"
#include "core/hook_jump.hpp"
#include "core/msf.hpp"
#include "pprim/fault.hpp"
#include "pprim/parallel_for.hpp"
#include "pprim/timer.hpp"

namespace smp::core {

using graph::EdgeId;
using graph::EdgeList;
using graph::kInvalidEdge;
using graph::MsfResult;
using graph::VertexId;

/// Bor-EL (§2.1): edge-list representation.  find-min races atomic
/// write-mins per vertex; compact-graph is one global parallel sample sort
/// of the directed edge list by ⟨supervertex(u), supervertex(v), weight⟩
/// followed by a prefix-sum merge of self-loops and multi-edges.
MsfResult bor_el_msf(ThreadTeam& team, const EdgeList& g, const MsfOptions& opts) {
  const VertexId n = g.num_vertices;
  StepTimes st;
  WallTimer phase;

  // Each undirected edge appears in both directions, as in the paper.
  std::vector<DirEdge> arcs;
  arcs.reserve(2 * g.edges.size());
  for (EdgeId i = 0; i < g.edges.size(); ++i) {
    const auto& e = g.edges[i];
    arcs.push_back({e.u, e.v, e.w, i});
    arcs.push_back({e.v, e.u, e.w, i});
  }

  detail::EdgeCollector collector(team.size());
  std::vector<std::atomic<EdgeId>> best(n);
  std::vector<VertexId> parent(n);
  VertexId cur_n = n;
  st.other += phase.elapsed_s();

  while (!arcs.empty()) {
    iteration_checkpoint(opts, "Bor-EL iteration");
    if (opts.iteration_stats) {
      opts.iteration_stats->push_back({cur_n, arcs.size()});
    }

    // --- find-min ---------------------------------------------------------
    phase.reset();
    fault_point("bor-el.find-min");
    parallel_for(team, cur_n, [&](std::size_t v) {
      best[v].store(kInvalidEdge, std::memory_order_relaxed);
    });
    const auto better = [&](EdgeId a, EdgeId b) {
      return arcs[a].order() < arcs[b].order();
    };
    parallel_for(team, arcs.size(), [&](std::size_t i) {
      atomic_write_min(best[arcs[i].u], static_cast<EdgeId>(i), better);
    });
    st.find_min += phase.elapsed_s();

    // --- connect-components ------------------------------------------------
    phase.reset();
    fault_point("bor-el.connect");
    // Record chosen edges (each mutual-minimum pair exactly once) and set up
    // the pseudo-forest parent pointers.
    team.run([&](TeamCtx& ctx) {
      fault_point("bor-el.connect.region");
      for_range(ctx, cur_n, [&](std::size_t v) {
        const EdgeId b = best[v].load(std::memory_order_relaxed);
        if (b == kInvalidEdge) {
          parent[v] = static_cast<VertexId>(v);
          return;
        }
        const DirEdge& e = arcs[b];
        parent[v] = e.v;
        const EdgeId ob = best[e.v].load(std::memory_order_relaxed);
        const bool other_also_chose =
            ob != kInvalidEdge && arcs[ob].orig == e.orig;
        if (!(other_also_chose && e.v < v)) {
          collector.add(ctx.tid(), e.orig);
        }
      });
    });
    pointer_jump_components(team, std::span<VertexId>(parent.data(), cur_n));
    const VertexId next_n =
        densify_labels(team, std::span<VertexId>(parent.data(), cur_n));
    st.connect += phase.elapsed_s();

    // --- compact-graph ------------------------------------------------------
    phase.reset();
    fault_point("bor-el.compact");
    arcs = detail::compact_arcs(team, std::move(arcs),
                                std::span<const VertexId>(parent.data(), cur_n));
    cur_n = next_n;
    st.compact += phase.elapsed_s();
  }

  phase.reset();
  MsfResult res = detail::assemble_result(g, collector.gather());
  st.other += phase.elapsed_s();
  if (opts.step_times) *opts.step_times += st;
  return res;
}

}  // namespace smp::core
