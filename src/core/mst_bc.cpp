#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/detail.hpp"
#include "core/find_min.hpp"
#include "core/hook_jump.hpp"
#include "core/msf.hpp"
#include "pprim/cacheline.hpp"
#include "pprim/counting_sort.hpp"
#include "pprim/fault.hpp"
#include "pprim/parallel_for.hpp"
#include "pprim/permutation.hpp"
#include "pprim/rng.hpp"
#include "pprim/timer.hpp"
#include "seq/indexed_heap.hpp"
#include "seq/union_find.hpp"

namespace smp::core {

using graph::EdgeId;
using graph::EdgeList;
using graph::kInvalidEdge;
using graph::kInvalidVertex;
using graph::MsfResult;
using graph::VertexId;
using graph::Weight;
using graph::WeightOrder;

namespace {

/// Working graph between contraction rounds: CSR over dense vertex ids with
/// each arc carrying the input edge index.
struct BcGraph {
  VertexId n = 0;
  std::vector<EdgeId> offsets;  // n + 1
  struct Arc {
    VertexId target;
    Weight w;
    EdgeId orig;
    [[nodiscard]] WeightOrder order() const { return {w, orig}; }
  };
  std::vector<Arc> arcs;
};

BcGraph build_from_edge_list(const EdgeList& g) {
  BcGraph b;
  b.n = g.num_vertices;
  b.offsets.assign(static_cast<std::size_t>(b.n) + 1, 0);
  for (const auto& e : g.edges) {
    ++b.offsets[e.u + 1];
    ++b.offsets[e.v + 1];
  }
  for (std::size_t i = 1; i < b.offsets.size(); ++i) b.offsets[i] += b.offsets[i - 1];
  b.arcs.resize(b.offsets.back());
  std::vector<EdgeId> cur(b.offsets.begin(), b.offsets.end() - 1);
  for (EdgeId i = 0; i < g.edges.size(); ++i) {
    const auto& e = g.edges[i];
    b.arcs[cur[e.u]++] = {e.v, e.w, i};
    b.arcs[cur[e.v]++] = {e.u, e.w, i};
  }
  return b;
}

/// Team-shared scratch for contract_rebuild_in_region (grow-only across
/// contraction rounds — arc counts only shrink).
struct RebuildScratch {
  std::vector<DirEdge> des;
  std::vector<DirEdge> sorted;
  std::vector<EdgeId> cs_counts;
  std::vector<EdgeId> next_offsets;
  std::vector<BcGraph::Arc> next_arcs;
  detail::CompactScratch compact;
};

/// Heap key of a fringe vertex: its best known connecting edge.
struct BcKey {
  WeightOrder order;
  VertexId parent;

  friend bool operator<(const BcKey& a, const BcKey& b) { return a.order < b.order; }
};

/// Per-partition work-stealing bounds.  The owner advances `lo`; thieves
/// advance from the "decreasing pointer that marks the end of the
/// unprocessed list" (§4).  Counters may briefly cross; the color CAS makes
/// double-processing harmless.
struct alignas(kCacheLineBytes) Part {
  std::atomic<std::int64_t> lo{0};
  std::atomic<std::int64_t> hi{0};
};

/// Solve the remaining problem on one processor (step 6 of Alg. 1) using
/// Kruskal over the deduplicated arcs.
void solve_base_case(const BcGraph& g, std::vector<EdgeId>& out_ids) {
  std::vector<EdgeId> idx;
  idx.reserve(g.arcs.size() / 2);
  for (EdgeId a = 0; a < g.arcs.size(); ++a) idx.push_back(a);
  std::sort(idx.begin(), idx.end(), [&](EdgeId x, EdgeId y) {
    return g.arcs[x].order() < g.arcs[y].order();
  });
  // Source vertex of an arc via binary search on offsets.
  const auto source_of = [&](EdgeId a) {
    const auto it = std::upper_bound(g.offsets.begin(), g.offsets.end(), a);
    return static_cast<VertexId>(it - g.offsets.begin() - 1);
  };
  seq::UnionFind uf(g.n);
  for (const EdgeId a : idx) {
    const VertexId u = source_of(a);
    const VertexId v = g.arcs[a].target;
    if (uf.unite(u, v)) out_ids.push_back(g.arcs[a].orig);
  }
}

/// step 5: relabel through `labels`, drop self-loops, keep only the lightest
/// multi-edge per supervertex pair, and rebuild the CSR for the next round.
/// In-region: all team threads call it inside an open SPMD region with
/// identical arguments; the CSR rebuild is an in-region counting sort by
/// source vertex whose key_offsets array is exactly the offsets array.
void contract_rebuild_in_region(TeamCtx& ctx, BcGraph& cur,
                                std::span<const VertexId> labels, VertexId next_n,
                                CompactSortMode mode, RebuildScratch& s) {
  if (ctx.tid() == 0) s.des.resize(cur.arcs.size());
  ctx.barrier();
  for_range(ctx, cur.n, [&](std::size_t v) {
    for (EdgeId a = cur.offsets[v]; a < cur.offsets[v + 1]; ++a) {
      const auto& arc = cur.arcs[a];
      s.des[a] = {static_cast<VertexId>(v), arc.target, arc.w, arc.orig};
    }
  });
  ctx.barrier();
  detail::compact_arcs_in_region(ctx, s.des, labels, mode, s.compact);

  const std::size_t f = s.des.size();
  if (ctx.tid() == 0) {
    s.sorted.resize(f);
    s.next_arcs.resize(f);
  }
  ctx.barrier();
  counting_sort_in_region(
      ctx, std::span<const DirEdge>(s.des), std::span<DirEdge>(s.sorted.data(), f),
      next_n, [](const DirEdge& e) { return static_cast<std::size_t>(e.u); },
      s.next_offsets, s.cs_counts);
  for_range(ctx, f, [&](std::size_t i) {
    s.next_arcs[i] = {s.sorted[i].v, s.sorted[i].w, s.sorted[i].orig};
  });
  ctx.barrier();
  if (ctx.tid() == 0) {
    cur.n = next_n;
    cur.offsets.swap(s.next_offsets);
    cur.arcs.swap(s.next_arcs);
  }
  ctx.barrier();
}

}  // namespace

/// MST-BC (§4, Alg. 1 + Alg. 2): p coordinated Prim instances growing
/// vertex-disjoint subtrees, claiming vertices with an atomic color CAS.  A
/// tree *matures* (stops) the moment it learns of an adjacent foreign tree —
/// continuing past that point could select a non-minimum cut edge.  Vertices
/// left unvisited pick their lightest incident edge Borůvka-style (step 3);
/// the induced components are contracted and the algorithm recurses, solving
/// sequentially below `bc_base_size`.  On 1 thread this behaves as Prim, on
/// n as Borůvka.
MsfResult mst_bc_msf(ThreadTeam& team, const EdgeList& g, const MsfOptions& opts) {
  const int p = team.size();
  StepTimes st;
  WallTimer phase;

  BcGraph cur = build_from_edge_list(g);
  detail::EdgeCollector collector(team.size());
  std::atomic<std::uint64_t> color_counter{1};
  ComponentsScratch comp_scratch;
  RebuildScratch rebuild_scratch;
  std::vector<EdgeId> best;
  st.other += phase.elapsed_s();

  while (cur.n > opts.bc_base_size && !cur.arcs.empty()) {
    iteration_checkpoint(opts, "MST-BC round");
    const VertexId n = cur.n;
    const std::size_t edges_before = collector.total();
    const std::uint64_t regions_before = team.regions_started();

    // --- steps 1-2: coordinated Prim growth --------------------------------
    phase.reset();
    fault_point("mst-bc.grow");
    std::vector<std::atomic<std::uint64_t>> color(n);
    std::vector<char> visited(n, 0);
    std::vector<VertexId> parent(n, kInvalidVertex);

    std::vector<VertexId> perm;
    if (opts.bc_permute) {
      perm = random_permutation(team, n, opts.seed);
    } else {
      perm.resize(n);
      parallel_for(team, n, [&](std::size_t i) {
        perm[i] = static_cast<VertexId>(i);
      });
    }

    std::vector<Part> parts(static_cast<std::size_t>(p));
    for (int t = 0; t < p; ++t) {
      const IndexRange r = block_range(n, t, p);
      parts[static_cast<std::size_t>(t)].lo.store(static_cast<std::int64_t>(r.begin),
                                                  std::memory_order_relaxed);
      parts[static_cast<std::size_t>(t)].hi.store(static_cast<std::int64_t>(r.end),
                                                  std::memory_order_relaxed);
    }

    team.run([&](TeamCtx& ctx) {
      fault_point("mst-bc.grow.region");
      const int tid = ctx.tid();
      seq::IndexedHeap<BcKey> heap(n);

      // Grow one Prim subtree from start vertex v (if still unclaimed).
      const auto process = [&](VertexId v) {
        if (color[v].load(std::memory_order_relaxed) != 0) return;
        const std::uint64_t my_color =
            color_counter.fetch_add(1, std::memory_order_relaxed);
        std::uint64_t expected = 0;
        if (!color[v].compare_exchange_strong(expected, my_color,
                                              std::memory_order_acq_rel)) {
          return;  // lost the race for the start vertex
        }
        heap.clear();
        heap.push(v, BcKey{{std::numeric_limits<Weight>::lowest(), 0}, kInvalidVertex});
        while (!heap.empty()) {
          const auto top = heap.pop();
          const VertexId w = top.id;
          // w is ours by CAS; add it to the tree.
          visited[w] = 1;
          if (top.key.parent != kInvalidVertex) {
            parent[w] = top.key.parent;
            collector.add(tid, top.key.order.orig);
          } else {
            parent[w] = w;  // subtree root
          }
          // Relax w's arcs.  Any foreign color seen means an edge crosses to
          // another tree — possibly lighter than our future picks — so the
          // tree matures at the end of this relaxation.
          bool stop = false;
          for (EdgeId a = cur.offsets[w]; a < cur.offsets[w + 1]; ++a) {
            const auto& arc = cur.arcs[a];
            const VertexId u = arc.target;
            std::uint64_t c = color[u].load(std::memory_order_acquire);
            if (c == 0) {
              std::uint64_t exp = 0;
              if (color[u].compare_exchange_strong(exp, my_color,
                                                   std::memory_order_acq_rel)) {
                heap.push(u, BcKey{arc.order(), w});
              } else {
                stop = true;  // claimed by a foreign tree under us
              }
            } else if (c == my_color) {
              if (heap.contains(u)) heap.decrease(u, BcKey{arc.order(), w});
            } else {
              stop = true;
            }
          }
          if (stop) break;
        }
      };

      // Own partition front-to-back, then steal from the back of others.
      Part& mine = parts[static_cast<std::size_t>(tid)];
      for (;;) {
        const std::int64_t i = mine.lo.fetch_add(1, std::memory_order_acq_rel);
        if (i >= mine.hi.load(std::memory_order_acquire)) break;
        process(perm[static_cast<std::size_t>(i)]);
      }
      Rng steal_rng = Rng(opts.seed ^ 0x9e3779b97f4a7c15ULL)
                          .fork(static_cast<std::uint64_t>(tid));
      const int start = p > 1 ? static_cast<int>(steal_rng.next_below(
                                    static_cast<std::uint64_t>(p)))
                              : 0;
      for (int off = 0; off < p; ++off) {
        Part& q = parts[static_cast<std::size_t>((start + off) % p)];
        for (;;) {
          const std::int64_t i = q.hi.fetch_sub(1, std::memory_order_acq_rel) - 1;
          if (i < q.lo.load(std::memory_order_acquire)) break;
          process(perm[static_cast<std::size_t>(i)]);
        }
      }
    });
    st.find_min += phase.elapsed_s();

    // --- steps 3-5: ONE fused SPMD region ------------------------------------
    // Step-3 picks, the pointer-jump contraction, the (rare) Borůvka fallback
    // round, and the relabel + dedup + CSR rebuild all synchronize via
    // ctx.barrier() instead of paying ~8 fork/joins per round.  The
    // no-progress decision is uniform: every input to it (densify's return
    // value, the collector totals) is published by a barrier before any
    // thread branches on it.
    best.assign(n, kInvalidEdge);
    team.run([&](TeamCtx& ctx) {
      WallTimer t0;
      // Fault point ahead of an in-region barrier: an injected throw here
      // leaves the siblings blocked at ctx.barrier() unless the poisoned
      // release rescues them — the hardest failure shape this layer covers.
      fault_point("mst-bc.step3.region");
      // step 3: unvisited vertices pick their lightest incident edge via the
      // shared slice-argmin of the find-min layer.
      for_range(ctx, n, [&](std::size_t v) {
        if (visited[v]) return;
        const EdgeId b =
            best_arc_in_slice(cur.arcs, cur.offsets[v], cur.offsets[v + 1]);
        best[v] = b;
        parent[v] = b == kInvalidEdge ? static_cast<VertexId>(v) : cur.arcs[b].target;
      });
      ctx.barrier();
      // Record step-3 edges, mutual minima once.  A step-3 edge can never
      // duplicate a tree edge: tree edges join two visited vertices.
      for_range(ctx, n, [&](std::size_t v) {
        const EdgeId b = best[v];
        if (b == kInvalidEdge) return;
        const VertexId other = cur.arcs[b].target;
        const EdgeId ob = best[other];
        const bool mutual = ob != kInvalidEdge && cur.arcs[ob].orig == cur.arcs[b].orig;
        if (!(mutual && other < v)) collector.add(ctx.tid(), cur.arcs[b].orig);
      });
      ctx.barrier();

      // step 4: contract the induced components.
      if (ctx.tid() == 0) {
        st.find_min += t0.elapsed_s();
        t0.reset();
      }
      pointer_jump_components_in_region(
          ctx, std::span<VertexId>(parent.data(), n), comp_scratch);
      VertexId next_n = densify_labels_in_region(
          ctx, std::span<VertexId>(parent.data(), n), comp_scratch);
      if (ctx.tid() == 0) {
        st.connect += t0.elapsed_s();
        t0.reset();
      }

      // Every thread reads the same collector totals (the record pass sits
      // behind two barriers) and the same next_n, so the branch is uniform.
      if (next_n == n && collector.total() == edges_before) {
        // Pathological round: no tree grew an edge and no step-3 pick merged
        // anything (only possible when every component is already a single
        // vertex — then arcs is empty and the loop exits — or under the
        // adversarial schedule the paper notes; the permutation makes it
        // vanishingly rare).  Borůvka always progresses, so fall back to one
        // find-min-over-all-vertices round.
        for_range(ctx, n, [&](std::size_t v) {
          const EdgeId b =
              best_arc_in_slice(cur.arcs, cur.offsets[v], cur.offsets[v + 1]);
          best[v] = b;
          parent[v] = b == kInvalidEdge ? static_cast<VertexId>(v) : cur.arcs[b].target;
        });
        ctx.barrier();
        for_range(ctx, n, [&](std::size_t v) {
          const EdgeId b = best[v];
          if (b == kInvalidEdge) return;
          const VertexId other = cur.arcs[b].target;
          const EdgeId ob = best[other];
          const bool mutual =
              ob != kInvalidEdge && cur.arcs[ob].orig == cur.arcs[b].orig;
          if (!(mutual && other < v)) collector.add(ctx.tid(), cur.arcs[b].orig);
        });
        ctx.barrier();
        pointer_jump_components_in_region(
            ctx, std::span<VertexId>(parent.data(), n), comp_scratch);
        next_n = densify_labels_in_region(
            ctx, std::span<VertexId>(parent.data(), n), comp_scratch);
      } else if (ctx.tid() == 0) {
        // step 5 only (fault semantics: the compact site never fires on the
        // fallback path, matching the pre-fusion behaviour).
        fault_point("mst-bc.compact");
      }
      fault_point("mst-bc.compact.region");
      contract_rebuild_in_region(ctx, cur,
                                 std::span<const VertexId>(parent.data(), n),
                                 next_n, opts.compact_sort, rebuild_scratch);
      if (ctx.tid() == 0) st.compact += t0.elapsed_s();
    });

    if (opts.phase_stats) {
      opts.phase_stats->iterations += 1;
      opts.phase_stats->regions += team.regions_started() - regions_before;
    }
  }

  // --- step 6: sequential base case ---------------------------------------
  phase.reset();
  if (!cur.arcs.empty()) {
    std::vector<EdgeId> base_ids;
    solve_base_case(cur, base_ids);
    for (const EdgeId id : base_ids) collector.add(0, id);
  }
  MsfResult res = detail::assemble_result(g, collector.gather());
  st.other += phase.elapsed_s();
  if (opts.step_times) *opts.step_times += st;
  return res;
}

}  // namespace smp::core
