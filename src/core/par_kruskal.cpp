#include <algorithm>
#include <vector>

#include "core/msf.hpp"
#include "graph/types.hpp"
#include "pprim/parallel_for.hpp"
#include "pprim/sample_sort.hpp"
#include "pprim/timer.hpp"
#include "seq/union_find.hpp"

namespace smp::core {

using graph::EdgeId;
using graph::EdgeList;
using graph::MsfResult;
using graph::Weight;
using graph::WeightOrder;

namespace {

struct SortRec {
  Weight w;
  EdgeId id;
};

}  // namespace

/// Parallel-sort Kruskal: the sort — Kruskal's asymptotic bottleneck — runs
/// on the team via sample sort; the union-find sweep stays sequential but
/// usually stops long before exhausting the sorted array (once a spanning
/// tree per component is complete).  Amdahl caps the speedup well below the
/// Borůvka variants', which is exactly why the paper engineers those.
MsfResult par_kruskal_msf(ThreadTeam& team, const EdgeList& g, const MsfOptions& opts) {
  StepTimes st;
  WallTimer phase;
  const std::size_t m = g.edges.size();

  std::vector<SortRec> order(m);
  parallel_for(team, m, [&](std::size_t i) {
    order[i] = {g.edges[i].w, i};
  });
  sample_sort(team, order, [](const SortRec& a, const SortRec& b) {
    return WeightOrder{a.w, a.id} < WeightOrder{b.w, b.id};
  });
  st.compact += phase.elapsed_s();  // the sort is this algorithm's "compact"

  phase.reset();
  MsfResult res;
  seq::UnionFind uf(g.num_vertices);
  for (const SortRec& r : order) {
    const auto& e = g.edges[r.id];
    if (uf.unite(e.u, e.v)) {
      res.edges.push_back(e);
      res.edge_ids.push_back(r.id);
      res.total_weight += e.w;
      if (uf.num_sets() == 1) break;
    }
  }
  res.num_trees = g.num_vertices - res.edges.size();
  st.find_min += phase.elapsed_s();
  if (opts.step_times) *opts.step_times += st;
  return res;
}

}  // namespace smp::core
