#include "core/filter_kruskal.hpp"

#include <algorithm>
#include <vector>

#include "graph/types.hpp"
#include "pprim/cacheline.hpp"
#include "pprim/parallel_for.hpp"
#include "pprim/partition.hpp"
#include "pprim/seq_sort.hpp"
#include "seq/union_find.hpp"

namespace smp::core {

using graph::EdgeId;
using graph::EdgeList;
using graph::MsfResult;
using graph::WeightOrder;

namespace {

/// Below this many edges we stop pivoting and run plain Kruskal.
constexpr std::size_t kBaseSize = 1024;

struct Ctx {
  ThreadTeam& team;
  const EdgeList& g;
  seq::UnionFind uf;
  std::vector<EdgeId> out_ids;

  Ctx(ThreadTeam& t, const EdgeList& graph)
      : team(t), g(graph), uf(graph.num_vertices) {}

  [[nodiscard]] WeightOrder key(EdgeId i) const { return {g.edges[i].w, i}; }

  /// Plain Kruskal on a small id range (sorted in place).
  void base_case(std::vector<EdgeId>& ids) {
    std::vector<EdgeId> scratch(ids.size());
    seq_sort(std::span<EdgeId>(ids), std::span<EdgeId>(scratch),
             [&](EdgeId a, EdgeId b) { return key(a) < key(b); });
    for (const EdgeId i : ids) {
      const auto& e = g.edges[i];
      if (uf.unite(e.u, e.v)) out_ids.push_back(i);
    }
  }

  /// Drop edges whose endpoints are already connected.  Parallel scan with
  /// per-thread buffers; reads of the union-find are safe here because no
  /// unites happen during the pass (find() uses path halving, which *writes*
  /// parents — so threads each use a read-only find instead).
  void filter(std::vector<EdgeId>& ids) {
    const std::size_t n = ids.size();
    const int p = team.size();
    if (p == 1 || n < 4096) {
      std::size_t w = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const auto& e = g.edges[ids[i]];
        if (uf.find(e.u) != uf.find(e.v)) ids[w++] = ids[i];
      }
      ids.resize(w);
      return;
    }
    std::vector<Padded<std::vector<EdgeId>>> kept(static_cast<std::size_t>(p));
    team.run([&](TeamCtx& ctx) {
      auto& local = kept[static_cast<std::size_t>(ctx.tid())].value;
      const IndexRange r = block_range(n, ctx.tid(), ctx.nthreads());
      for (std::size_t i = r.begin; i < r.end; ++i) {
        const auto& e = g.edges[ids[i]];
        if (find_ro(e.u) != find_ro(e.v)) local.push_back(ids[i]);
      }
    });
    ids.clear();
    for (auto& k : kept) {
      ids.insert(ids.end(), k.value.begin(), k.value.end());
      k.value.clear();
    }
  }

  /// Read-only find (no path compression) for the concurrent filter pass.
  [[nodiscard]] graph::VertexId find_ro(graph::VertexId x) const {
    while (true) {
      const graph::VertexId p = uf.parent_of(x);
      if (p == x) return x;
      x = p;
    }
  }

  void solve(std::vector<EdgeId>& ids) {
    if (ids.size() <= kBaseSize) {
      base_case(ids);
      return;
    }
    // Pivot = median-of-three on weights.
    const WeightOrder a = key(ids.front());
    const WeightOrder b = key(ids[ids.size() / 2]);
    const WeightOrder c = key(ids.back());
    const WeightOrder pivot = std::max(std::min(a, b), std::min(std::max(a, b), c));

    const auto mid = std::partition(ids.begin(), ids.end(),
                                    [&](EdgeId i) { return key(i) < pivot; });
    std::vector<EdgeId> light(ids.begin(), mid);
    std::vector<EdgeId> heavy(mid, ids.end());
    ids.clear();
    ids.shrink_to_fit();

    if (light.empty()) {
      // All keys >= pivot (degenerate split, distinct keys make this rare):
      // fall back to the base case to guarantee progress.
      base_case(heavy);
      return;
    }
    solve(light);
    filter(heavy);
    solve(heavy);
  }
};

}  // namespace

MsfResult filter_kruskal_msf(ThreadTeam& team, const EdgeList& g) {
  Ctx ctx(team, g);
  std::vector<EdgeId> ids(g.edges.size());
  for (EdgeId i = 0; i < g.edges.size(); ++i) ids[i] = i;
  ctx.solve(ids);

  MsfResult res;
  res.edge_ids = std::move(ctx.out_ids);
  std::sort(res.edge_ids.begin(), res.edge_ids.end());
  res.edges.reserve(res.edge_ids.size());
  for (const EdgeId id : res.edge_ids) {
    res.edges.push_back(g.edges[id]);
    res.total_weight += g.edges[id].w;
  }
  res.num_trees = g.num_vertices - res.edges.size();
  return res;
}

MsfResult filter_kruskal_msf(const EdgeList& g, int threads) {
  ThreadTeam team(threads);
  return filter_kruskal_msf(team, g);
}

}  // namespace smp::core
