#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "core/atomic_min.hpp"
#include "core/bor_fal_packed.hpp"
#include "core/detail.hpp"
#include "core/find_min.hpp"
#include "core/hook_jump.hpp"
#include "core/msf.hpp"
#include "graph/flex_adj_list.hpp"
#include "pprim/cacheline.hpp"
#include "pprim/fault.hpp"
#include "pprim/parallel_for.hpp"
#include "pprim/simd.hpp"
#include "pprim/timer.hpp"

namespace smp::core {

using graph::CsrGraph;
using graph::EdgeId;
using graph::EdgeList;
using graph::FlexAdjList;
using graph::kInvalidEdge;
using graph::MsfResult;
using graph::VertexId;
using graph::WeightOrder;

/// Bor-FAL (§2.3): the flexible adjacency list keeps the original edge
/// arrays intact forever.  compact-graph degenerates to a small sort of the
/// supervertices plus O(n) pointer appends and a lookup-table update; in
/// exchange, the paper's find-min rescans all m edges every iteration,
/// filtering self-loops and multi-edges through the lookup table.
///
/// The packed-key path (FindMinMode::kSimd, the kAuto default) removes that
/// rescan tax with the shared find-min layer (core/find_min.hpp): each arc
/// slot holds a uint64 ⟨weight-rank, arc⟩ key; find-min walks each original
/// vertex's *live* prefix, block-compacting keys whose target now shares the
/// vertex's supervertex (a permanent self-loop — contraction only merges),
/// runs the SIMD u64_argmin over what survives, and publishes ONE
/// atomic_min_u64 per original vertex instead of one two-word CAS per arc.
/// When the team is large and cur_n small, the publish switches to
/// per-thread local-best slabs merged in-region (contention-aware
/// reduction).  Iteration k therefore scans Σ live_k arcs, not 2m, and the
/// selected arcs are identical to the seed scan — WeightOrder is encoded in
/// the key order — so forests stay bit-identical.  FindMinMode::kScan keeps
/// the seed kernel exactly, as the A/B baseline.
///
/// Each Borůvka iteration runs as ONE persistent SPMD region (find-min,
/// connect-components, and the pointer-based contraction all synchronize via
/// ctx.barrier()).  The no-progress exit is decided uniformly: every thread
/// reads the shared `any` flag after the connect barrier and leaves the
/// region together; the orchestrator then breaks out of the loop.
///
/// The packed loop lives in bor_fal_packed_engine so the compressed-CSR
/// streaming path (core/compressed_solve.cpp) can drive the identical
/// engine from decoded varint rows without ever materializing an EdgeList.
std::vector<EdgeId> bor_fal_packed_engine(ThreadTeam& team,
                                          PackedSolveInput in,
                                          const MsfOptions& opts,
                                          StepTimes& st) {
  const VertexId n = in.n;
  const int p = team.size();
  const int lb_threads = find_min_local_best_threads(opts);
  const std::size_t lb_cutoff = find_min_local_best_cutoff(opts);
  const std::size_t prune_block = find_min_prune_block(opts);

  const std::vector<EdgeId>& offsets = in.offsets;
  const std::unique_ptr<std::uint64_t[]> keys = std::move(in.keys);
  const std::vector<std::uint32_t>& rank_to_edge = in.rank_to_edge;
  const EdgeId num_arcs = offsets.back();
  FlexAdjList fal(n, offsets);

  detail::EdgeCollector collector(p);
  std::vector<std::uint64_t> best_keys(n);  // per supervertex key
  std::vector<Padded<std::uint64_t>> pruned_partial(
      static_cast<std::size_t>(p));
  LocalBestScratch local_best;
  std::vector<VertexId> parent(n);
  ComponentsScratch comp_scratch;
  FlexAdjList::ContractScratch contract_scratch;
  std::atomic<bool> any{false};
  std::atomic<std::size_t> scan_cursor{0};
  EdgeId live_total = num_arcs;
  bool first_iter = true;

  for (;;) {
    iteration_checkpoint(opts, "Bor-FAL iteration");
    const VertexId cur_n = fal.num_super();
    if (opts.iteration_stats) {
      // The live-arc working set (monotone non-increasing).
      IterationStat is;
      is.vertices = cur_n;
      is.directed_edges = live_total;
      is.live_fraction =
          num_arcs > 0
              ? static_cast<double>(live_total) / static_cast<double>(num_arcs)
              : 1.0;
      is.strategy = CompactStrategy::kPointer;  // contraction never rebuilds
      opts.iteration_stats->push_back(is);
    }
    const std::uint64_t regions_before = team.regions_started();
    any.store(false, std::memory_order_relaxed);
    scan_cursor.store(0, std::memory_order_relaxed);
    const bool local_best_on =
        !first_iter && p > 1 && p >= lb_threads && cur_n <= lb_cutoff;

    team.run([&](TeamCtx& ctx) {
      WallTimer t0;
      // --- find-min -------------------------------------------------------
      if (ctx.tid() == 0) fault_point("bor-fal.find-min");
      const auto labels = fal.labels();
      if (ctx.tid() == 0) fault_point("bor-fal.find-min.prune");
      std::uint64_t pruned = 0;
      if (first_iter) {
        // Iteration 1 fast path: labels are still the identity and the
        // input has no self-loops, so no arc can prune and slot x belongs
        // to original vertex x alone — a pure streaming SIMD argmin per
        // adjacency block, with plain stores instead of atomics and no
        // separate sentinel-init pass.
        for_range_dynamic(ctx, scan_cursor, n, prune_block, [&](std::size_t x) {
          const EdgeId lo = offsets[x];
          const EdgeId end = offsets[x + 1];
          best_keys[x] = end == lo
                             ? kEmptyKey
                             : keys[lo + u64_argmin(keys.get() + lo, end - lo)];
        });
      } else {
        if (local_best_on) {
          if (ctx.tid() == 0) local_best.ensure(p, cur_n);
          ctx.barrier();
          std::uint64_t* slab = local_best.slab(ctx.tid());
          std::fill(slab, slab + cur_n, kEmptyKey);
        } else {
          for_range(ctx, cur_n,
                    [&](std::size_t s) { best_keys[s] = kEmptyKey; });
        }
        ctx.barrier();
        const auto live_end = fal.live_ends();
        std::uint64_t* mine =
            local_best_on ? local_best.slab(ctx.tid()) : nullptr;
        // Per original vertex: compact newly dead arcs out of the live
        // prefix, then one SIMD argmin over the survivors and a single
        // publish into the owning supervertex's slot.  Dynamic chunks: live
        // prefix lengths skew wildly after a few contractions.
        for_range_dynamic(ctx, scan_cursor, n, prune_block, [&](std::size_t x) {
          const VertexId s = labels[x];
          const EdgeId lo = offsets[x];
          EdgeId end = live_end[x];
          for (EdgeId i = lo; i < end;) {
            if (labels[key_index(keys[i])] == s) {
              --end;
              std::swap(keys[i], keys[end]);
              ++pruned;
            } else {
              ++i;
            }
          }
          live_end[x] = end;
          if (end == lo) return;
          const std::uint64_t k =
              keys[lo + u64_argmin(keys.get() + lo, end - lo)];
          if (mine != nullptr) {
            if (k < mine[s]) mine[s] = k;
          } else {
            atomic_min_u64(best_keys[s], k);
          }
        });
      }
      pruned_partial[static_cast<std::size_t>(ctx.tid())].value = pruned;
      ctx.barrier();
      if (local_best_on) {
        merge_local_best_in_region(
            ctx, local_best, std::span<std::uint64_t>(best_keys.data(), cur_n));
        ctx.barrier();
      }
      if (ctx.tid() == 0) {
        std::uint64_t total_pruned = 0;
        for (int t = 0; t < p; ++t) {
          total_pruned += pruned_partial[static_cast<std::size_t>(t)].value;
        }
        st.pruned_arcs += total_pruned;
        live_total -= total_pruned;
      }

      // --- connect-components ---------------------------------------------
      if (ctx.tid() == 0) {
        st.find_min += t0.elapsed_s();
        t0.reset();
        fault_point("bor-fal.connect");
      }
      fault_point("bor-fal.connect.region");
      bool local_any = false;
      for_range(ctx, cur_n, [&](std::size_t s) {
        const std::uint64_t bk = best_keys[s];
        if (bk == kEmptyKey) {
          parent[s] = static_cast<VertexId>(s);
          return;
        }
        local_any = true;
        const VertexId other = labels[key_index(bk)];
        parent[s] = other;
        // Same undirected edge ⇔ same weight rank (ranks are unique).
        const std::uint64_t ob = best_keys[other];
        const bool other_also_chose =
            ob != kEmptyKey && key_rank(ob) == key_rank(bk);
        if (!(other_also_chose && other < s)) {
          collector.add(ctx.tid(), rank_to_edge[key_rank(bk)]);
        }
      });
      if (local_any) any.store(true, std::memory_order_relaxed);
      ctx.barrier();
      // Uniform exit decision: nobody writes `any` past the barrier.
      if (!any.load(std::memory_order_relaxed)) {
        if (ctx.tid() == 0) st.connect += t0.elapsed_s();
        return;  // every component fully contracted
      }
      pointer_jump_components_in_region(
          ctx, std::span<VertexId>(parent.data(), cur_n), comp_scratch);
      const VertexId next_n = densify_labels_in_region(
          ctx, std::span<VertexId>(parent.data(), cur_n), comp_scratch);

      // --- compact-graph: sort + pointer ops + lookup-table update --------
      if (ctx.tid() == 0) {
        st.connect += t0.elapsed_s();
        t0.reset();
        fault_point("bor-fal.compact");
      }
      fault_point("bor-fal.compact.region");
      fal.contract(ctx, std::span<const VertexId>(parent.data(), cur_n), next_n,
                   contract_scratch);
      if (ctx.tid() == 0) st.compact += t0.elapsed_s();
    });

    first_iter = false;
    if (opts.phase_stats) {
      opts.phase_stats->iterations += 1;
      opts.phase_stats->regions += team.regions_started() - regions_before;
    }
    if (!any.load(std::memory_order_relaxed)) break;
  }
  return collector.gather();
}

MsfResult bor_fal_msf(ThreadTeam& team, const EdgeList& g, const MsfOptions& opts) {
  const VertexId n = g.num_vertices;
  StepTimes st;
  WallTimer phase;

  const int p = team.size();
  const FindMinMode mode = resolve_find_min_mode(opts.find_min, g.edges.size());

  if (mode == FindMinMode::kSimd) {
    PackedSolveInput in;
    in.n = n;
    const std::vector<std::uint32_t> rank =
        build_weight_ranks(team, g, &in.rank_to_edge);
    build_packed_arcs(g, n, rank, in.offsets, in.keys);
    st.other += phase.elapsed_s();
    std::vector<EdgeId> ids = bor_fal_packed_engine(team, std::move(in), opts, st);
    phase.reset();
    MsfResult res = detail::assemble_result(g, std::move(ids));
    st.other += phase.elapsed_s();
    if (opts.step_times) *opts.step_times += st;
    return res;
  }

  // Scan path (FindMinMode::kScan): the seed kernel, kept verbatim as the
  // A/B baseline — full CSR, all m edges checked every iteration.
  const std::size_t prune_block = find_min_prune_block(opts);
  (void)prune_block;
  const CsrGraph csr(g);
  const auto& offsets = csr.offsets();
  const EdgeId num_arcs = offsets.back();
  FlexAdjList fal(n, offsets);
  const auto& targets = csr.targets();
  const auto& weights = csr.arc_weights();
  const auto& origs = csr.arc_origs();

  detail::EdgeCollector collector(p);
  std::vector<std::atomic<EdgeId>> best(n);  // per supervertex arc id
  std::vector<VertexId> parent(n);
  ComponentsScratch comp_scratch;
  FlexAdjList::ContractScratch contract_scratch;
  std::atomic<bool> any{false};
  st.other += phase.elapsed_s();

  for (;;) {
    iteration_checkpoint(opts, "Bor-FAL iteration");
    const VertexId cur_n = fal.num_super();
    if (opts.iteration_stats) {
      // m never shrinks under lazy filtering — always 2m.
      IterationStat is;
      is.vertices = cur_n;
      is.directed_edges = num_arcs;
      is.live_fraction = 1.0;
      is.strategy = CompactStrategy::kPointer;  // contraction never rebuilds
      opts.iteration_stats->push_back(is);
    }
    const std::uint64_t regions_before = team.regions_started();
    any.store(false, std::memory_order_relaxed);

    team.run([&](TeamCtx& ctx) {
      WallTimer t0;
      // --- find-min -------------------------------------------------------
      if (ctx.tid() == 0) fault_point("bor-fal.find-min");
      const auto labels = fal.labels();
      // Seed kernel: all m edges checked every iteration, each processor
      // covering O(m/p), racing two-word atomic write-mins per arc.
      for_range(ctx, cur_n, [&](std::size_t s) {
        best[s].store(kInvalidEdge, std::memory_order_relaxed);
      });
      ctx.barrier();
      const auto better = [&](EdgeId a, EdgeId b) {
        return WeightOrder{weights[a], origs[a]} <
               WeightOrder{weights[b], origs[b]};
      };
      for_range(ctx, n, [&](std::size_t x) {
        const VertexId s = labels[x];
        for (EdgeId a = offsets[x]; a < offsets[x + 1]; ++a) {
          if (labels[targets[a]] == s) continue;  // supervertex self-loop
          atomic_write_min(best[s], a, better);
        }
      });
      ctx.barrier();

      // --- connect-components ---------------------------------------------
      if (ctx.tid() == 0) {
        st.find_min += t0.elapsed_s();
        t0.reset();
        fault_point("bor-fal.connect");
      }
      fault_point("bor-fal.connect.region");
      bool local_any = false;
      for_range(ctx, cur_n, [&](std::size_t s) {
        const EdgeId b = best[s].load(std::memory_order_relaxed);
        if (b == kInvalidEdge) {
          parent[s] = static_cast<VertexId>(s);
          return;
        }
        local_any = true;
        const VertexId other = labels[targets[b]];
        parent[s] = other;
        const EdgeId ob = best[other].load(std::memory_order_relaxed);
        const bool other_also_chose =
            ob != kInvalidEdge && origs[ob] == origs[b];
        if (!(other_also_chose && other < s)) {
          collector.add(ctx.tid(), origs[b]);
        }
      });
      if (local_any) any.store(true, std::memory_order_relaxed);
      ctx.barrier();
      // Uniform exit decision: nobody writes `any` past the barrier.
      if (!any.load(std::memory_order_relaxed)) {
        if (ctx.tid() == 0) st.connect += t0.elapsed_s();
        return;  // every component fully contracted
      }
      pointer_jump_components_in_region(
          ctx, std::span<VertexId>(parent.data(), cur_n), comp_scratch);
      const VertexId next_n = densify_labels_in_region(
          ctx, std::span<VertexId>(parent.data(), cur_n), comp_scratch);

      // --- compact-graph: sort + pointer ops + lookup-table update --------
      if (ctx.tid() == 0) {
        st.connect += t0.elapsed_s();
        t0.reset();
        fault_point("bor-fal.compact");
      }
      fault_point("bor-fal.compact.region");
      fal.contract(ctx, std::span<const VertexId>(parent.data(), cur_n), next_n,
                   contract_scratch);
      if (ctx.tid() == 0) st.compact += t0.elapsed_s();
    });

    if (opts.phase_stats) {
      opts.phase_stats->iterations += 1;
      opts.phase_stats->regions += team.regions_started() - regions_before;
    }
    if (!any.load(std::memory_order_relaxed)) break;
  }

  phase.reset();
  MsfResult res = detail::assemble_result(g, collector.gather());
  st.other += phase.elapsed_s();
  if (opts.step_times) *opts.step_times += st;
  return res;
}

}  // namespace smp::core
