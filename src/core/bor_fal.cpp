#include <atomic>
#include <vector>

#include "core/atomic_min.hpp"
#include "core/detail.hpp"
#include "core/hook_jump.hpp"
#include "core/msf.hpp"
#include "graph/flex_adj_list.hpp"
#include "pprim/fault.hpp"
#include "pprim/parallel_for.hpp"
#include "pprim/timer.hpp"

namespace smp::core {

using graph::CsrGraph;
using graph::EdgeId;
using graph::EdgeList;
using graph::FlexAdjList;
using graph::kInvalidEdge;
using graph::MsfResult;
using graph::VertexId;
using graph::WeightOrder;

/// Bor-FAL (§2.3): the flexible adjacency list keeps the original edge
/// arrays intact forever.  compact-graph degenerates to a small sort of the
/// supervertices plus O(n) pointer appends and a lookup-table update; in
/// exchange, find-min rescans all m edges every iteration, filtering
/// self-loops and multi-edges through the lookup table.  Fewer memory writes
/// per iteration — the property the paper targets on SMPs.
///
/// Each Borůvka iteration runs as ONE persistent SPMD region (find-min,
/// connect-components, and the pointer-based contraction all synchronize via
/// ctx.barrier()).  The no-progress exit is decided uniformly: every thread
/// reads the shared `any` flag after the connect barrier and leaves the
/// region together; the orchestrator then breaks out of the loop.
MsfResult bor_fal_msf(ThreadTeam& team, const EdgeList& g, const MsfOptions& opts) {
  const VertexId n = g.num_vertices;
  StepTimes st;
  WallTimer phase;

  const CsrGraph csr(g);
  FlexAdjList fal(csr);
  const auto& targets = csr.targets();
  const auto& weights = csr.arc_weights();
  const auto& origs = csr.arc_origs();
  const auto& offsets = csr.offsets();

  detail::EdgeCollector collector(team.size());
  std::vector<std::atomic<EdgeId>> best(n);  // per supervertex: best arc index
  std::vector<VertexId> parent(n);
  ComponentsScratch comp_scratch;
  FlexAdjList::ContractScratch contract_scratch;
  std::atomic<bool> any{false};
  st.other += phase.elapsed_s();

  for (;;) {
    iteration_checkpoint(opts, "Bor-FAL iteration");
    const VertexId cur_n = fal.num_super();
    if (opts.iteration_stats) {
      // m never shrinks under Bor-FAL; the live edge list is always 2m.
      opts.iteration_stats->push_back({cur_n, csr.num_arcs()});
    }
    const std::uint64_t regions_before = team.regions_started();
    any.store(false, std::memory_order_relaxed);

    team.run([&](TeamCtx& ctx) {
      WallTimer t0;
      // --- find-min -------------------------------------------------------
      // All m edges are checked, each processor covering O(m/p) of them: we
      // scan per *original* vertex (balanced) and race atomic write-mins
      // into the owning supervertex's slot, filtering via the lookup table.
      if (ctx.tid() == 0) fault_point("bor-fal.find-min");
      for_range(ctx, cur_n, [&](std::size_t s) {
        best[s].store(kInvalidEdge, std::memory_order_relaxed);
      });
      ctx.barrier();
      const auto better = [&](EdgeId a, EdgeId b) {
        return WeightOrder{weights[a], origs[a]} <
               WeightOrder{weights[b], origs[b]};
      };
      const auto labels = fal.labels();
      for_range(ctx, n, [&](std::size_t x) {
        const VertexId s = labels[x];
        for (EdgeId a = offsets[x]; a < offsets[x + 1]; ++a) {
          if (labels[targets[a]] == s) continue;  // supervertex self-loop
          atomic_write_min(best[s], a, better);
        }
      });
      ctx.barrier();

      // --- connect-components ---------------------------------------------
      if (ctx.tid() == 0) {
        st.find_min += t0.elapsed_s();
        t0.reset();
        fault_point("bor-fal.connect");
      }
      fault_point("bor-fal.connect.region");
      bool local_any = false;
      for_range(ctx, cur_n, [&](std::size_t s) {
        const EdgeId b = best[s].load(std::memory_order_relaxed);
        if (b == kInvalidEdge) {
          parent[s] = static_cast<VertexId>(s);
          return;
        }
        local_any = true;
        const VertexId other = labels[targets[b]];
        parent[s] = other;
        const EdgeId ob = best[other].load(std::memory_order_relaxed);
        const bool other_also_chose = ob != kInvalidEdge && origs[ob] == origs[b];
        if (!(other_also_chose && other < s)) {
          collector.add(ctx.tid(), origs[b]);
        }
      });
      if (local_any) any.store(true, std::memory_order_relaxed);
      ctx.barrier();
      // Uniform exit decision: nobody writes `any` past the barrier.
      if (!any.load(std::memory_order_relaxed)) {
        if (ctx.tid() == 0) st.connect += t0.elapsed_s();
        return;  // every component fully contracted
      }
      pointer_jump_components_in_region(
          ctx, std::span<VertexId>(parent.data(), cur_n), comp_scratch);
      const VertexId next_n = densify_labels_in_region(
          ctx, std::span<VertexId>(parent.data(), cur_n), comp_scratch);

      // --- compact-graph: sort + pointer ops + lookup-table update --------
      if (ctx.tid() == 0) {
        st.connect += t0.elapsed_s();
        t0.reset();
        fault_point("bor-fal.compact");
      }
      fault_point("bor-fal.compact.region");
      fal.contract(ctx, std::span<const VertexId>(parent.data(), cur_n), next_n,
                   contract_scratch);
      if (ctx.tid() == 0) st.compact += t0.elapsed_s();
    });

    if (opts.phase_stats) {
      opts.phase_stats->iterations += 1;
      opts.phase_stats->regions += team.regions_started() - regions_before;
    }
    if (!any.load(std::memory_order_relaxed)) break;
  }

  phase.reset();
  MsfResult res = detail::assemble_result(g, collector.gather());
  st.other += phase.elapsed_s();
  if (opts.step_times) *opts.step_times += st;
  return res;
}

}  // namespace smp::core
