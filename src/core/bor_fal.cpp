#include <atomic>
#include <vector>

#include "core/atomic_min.hpp"
#include "core/detail.hpp"
#include "core/hook_jump.hpp"
#include "core/msf.hpp"
#include "graph/flex_adj_list.hpp"
#include "pprim/fault.hpp"
#include "pprim/parallel_for.hpp"
#include "pprim/timer.hpp"

namespace smp::core {

using graph::CsrGraph;
using graph::EdgeId;
using graph::EdgeList;
using graph::FlexAdjList;
using graph::kInvalidEdge;
using graph::MsfResult;
using graph::VertexId;
using graph::WeightOrder;

/// Bor-FAL (§2.3): the flexible adjacency list keeps the original edge
/// arrays intact forever.  compact-graph degenerates to a small sort of the
/// supervertices plus O(n) pointer appends and a lookup-table update; in
/// exchange, find-min rescans all m edges every iteration, filtering
/// self-loops and multi-edges through the lookup table.  Fewer memory writes
/// per iteration — the property the paper targets on SMPs.
MsfResult bor_fal_msf(ThreadTeam& team, const EdgeList& g, const MsfOptions& opts) {
  const VertexId n = g.num_vertices;
  StepTimes st;
  WallTimer phase;

  const CsrGraph csr(g);
  FlexAdjList fal(csr);
  const auto& targets = csr.targets();
  const auto& weights = csr.arc_weights();
  const auto& origs = csr.arc_origs();
  const auto& offsets = csr.offsets();

  detail::EdgeCollector collector(team.size());
  std::vector<std::atomic<EdgeId>> best(n);  // per supervertex: best arc index
  std::vector<VertexId> parent(n);
  st.other += phase.elapsed_s();

  for (;;) {
    iteration_checkpoint(opts, "Bor-FAL iteration");
    const VertexId cur_n = fal.num_super();
    if (opts.iteration_stats) {
      // m never shrinks under Bor-FAL; the live edge list is always 2m.
      opts.iteration_stats->push_back({cur_n, csr.num_arcs()});
    }

    // --- find-min -----------------------------------------------------------
    // All m edges are checked, each processor covering O(m/p) of them: we
    // scan per *original* vertex (balanced) and race atomic write-mins into
    // the owning supervertex's slot, filtering via the lookup table.
    phase.reset();
    fault_point("bor-fal.find-min");
    parallel_for(team, cur_n, [&](std::size_t s) {
      best[s].store(kInvalidEdge, std::memory_order_relaxed);
    });
    const auto better = [&](EdgeId a, EdgeId b) {
      return WeightOrder{weights[a], origs[a]} < WeightOrder{weights[b], origs[b]};
    };
    const auto labels = fal.labels();
    parallel_for(team, n, [&](std::size_t x) {
      const VertexId s = labels[x];
      for (EdgeId a = offsets[x]; a < offsets[x + 1]; ++a) {
        if (labels[targets[a]] == s) continue;  // self-loop at supervertex level
        atomic_write_min(best[s], a, better);
      }
    });
    st.find_min += phase.elapsed_s();

    // --- connect-components -------------------------------------------------
    phase.reset();
    fault_point("bor-fal.connect");
    std::atomic<bool> any{false};
    team.run([&](TeamCtx& ctx) {
      fault_point("bor-fal.connect.region");
      bool local_any = false;
      for_range(ctx, cur_n, [&](std::size_t s) {
        const EdgeId b = best[s].load(std::memory_order_relaxed);
        if (b == kInvalidEdge) {
          parent[s] = static_cast<VertexId>(s);
          return;
        }
        local_any = true;
        const VertexId other = labels[targets[b]];
        parent[s] = other;
        const EdgeId ob = best[other].load(std::memory_order_relaxed);
        const bool other_also_chose = ob != kInvalidEdge && origs[ob] == origs[b];
        if (!(other_also_chose && other < s)) {
          collector.add(ctx.tid(), origs[b]);
        }
      });
      if (local_any) any.store(true, std::memory_order_relaxed);
    });
    if (!any.load(std::memory_order_relaxed)) {
      st.connect += phase.elapsed_s();
      break;  // every component fully contracted
    }
    pointer_jump_components(team, std::span<VertexId>(parent.data(), cur_n));
    const VertexId next_n =
        densify_labels(team, std::span<VertexId>(parent.data(), cur_n));
    st.connect += phase.elapsed_s();

    // --- compact-graph: sort + pointer ops + lookup-table update ------------
    phase.reset();
    fault_point("bor-fal.compact");
    fal.contract(team, std::span<const VertexId>(parent.data(), cur_n), next_n);
    st.compact += phase.elapsed_s();
  }

  phase.reset();
  MsfResult res = detail::assemble_result(g, collector.gather());
  st.other += phase.elapsed_s();
  if (opts.step_times) *opts.step_times += st;
  return res;
}

}  // namespace smp::core
