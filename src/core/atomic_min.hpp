#pragma once

#include <atomic>

#include "graph/types.hpp"

namespace smp::core {

/// Lock-free write-min: install `cand` into `slot` if it beats the current
/// occupant under `better(cand, cur)`.  `slot` holds an opaque id (e.g. an
/// arc index) with kInvalidEdge meaning empty.
///
/// This is the concurrent heart of the parallel find-min step: every thread
/// races to publish the lightest edge it has seen for a supervertex.
template <class Better>
void atomic_write_min(std::atomic<graph::EdgeId>& slot, graph::EdgeId cand,
                      Better&& better) {
  graph::EdgeId cur = slot.load(std::memory_order_relaxed);
  while (cur == graph::kInvalidEdge || better(cand, cur)) {
    if (slot.compare_exchange_weak(cur, cand, std::memory_order_acq_rel,
                                   std::memory_order_relaxed)) {
      return;
    }
    if (cand == cur) return;
  }
}

}  // namespace smp::core
