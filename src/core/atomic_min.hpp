#pragma once

#include <atomic>
#include <cstdint>

#include "graph/types.hpp"

namespace smp::core {

/// Lock-free write-min: install `cand` into `slot` if it beats the current
/// occupant under `better(cand, cur)`.  `slot` holds an opaque id (e.g. an
/// arc index) with kInvalidEdge meaning empty.
///
/// This is the concurrent heart of the parallel find-min step: every thread
/// races to publish the lightest edge it has seen for a supervertex.
template <class Better>
void atomic_write_min(std::atomic<graph::EdgeId>& slot, graph::EdgeId cand,
                      Better&& better) {
  graph::EdgeId cur = slot.load(std::memory_order_relaxed);
  while (cur == graph::kInvalidEdge || better(cand, cur)) {
    if (slot.compare_exchange_weak(cur, cand, std::memory_order_acq_rel,
                                   std::memory_order_relaxed)) {
      return;
    }
    if (cand == cur) return;
  }
}

/// Single-CAS write-min over a packed 64-bit find-min key whose integer
/// order IS the ⟨weight, orig⟩ total order (see core/find_min.hpp), so the
/// two-word comparator above collapses to one unsigned compare.  `slot` is a
/// plain uint64 (kEmptyKey == all-ones means empty, and loses every compare
/// for free); relaxed ordering suffices because results are only read after
/// the region's next barrier.
inline void atomic_min_u64(std::uint64_t& slot, std::uint64_t key) {
  std::atomic_ref<std::uint64_t> ref(slot);
  std::uint64_t cur = ref.load(std::memory_order_relaxed);
  while (key < cur && !ref.compare_exchange_weak(cur, key,
                                                 std::memory_order_relaxed)) {
  }
}

}  // namespace smp::core
