#pragma once

#include <atomic>
#include <memory>
#include <span>
#include <vector>

#include "core/dir_edge.hpp"
#include "graph/edge_list.hpp"
#include "graph/msf_result.hpp"
#include "pprim/cacheline.hpp"
#include "pprim/prefix_sum.hpp"
#include "pprim/radix_hash_map.hpp"
#include "pprim/radix_sort.hpp"
#include "pprim/sample_sort.hpp"
#include "pprim/thread_team.hpp"

namespace smp::core::detail {

/// Per-thread buffers for MSF edge ids found during parallel phases; avoids
/// any synchronization on the hot path and concatenates once at the end.
class EdgeCollector {
 public:
  explicit EdgeCollector(int nthreads) : slots_(static_cast<std::size_t>(nthreads)) {}

  void add(int tid, graph::EdgeId orig) {
    slots_[static_cast<std::size_t>(tid)].value.push_back(orig);
  }

  [[nodiscard]] std::size_t total() const {
    std::size_t s = 0;
    for (const auto& sl : slots_) s += sl.value.size();
    return s;
  }

  /// Move all buffers into one vector (tid order; within a tid, find order).
  std::vector<graph::EdgeId> gather() {
    std::vector<graph::EdgeId> out;
    out.reserve(total());
    for (auto& sl : slots_) {
      out.insert(out.end(), sl.value.begin(), sl.value.end());
      sl.value.clear();
    }
    return out;
  }

 private:
  std::vector<Padded<std::vector<graph::EdgeId>>> slots_;
};

/// Builds the public result from the collected input-edge indices.
graph::MsfResult assemble_result(const graph::EdgeList& input,
                                 std::vector<graph::EdgeId> ids);

/// Team-shared scratch for compact_arcs_in_region.  Grow-only within a
/// plateau: the fused Borůvka loop allocates once and later iterations
/// (whose arc count only shrinks) reuse the capacity — until the arc count
/// collapses far below it, at which point maybe_release() returns the peak
/// slabs to the allocator (and thus to the arena memory-cap headroom)
/// instead of pinning iteration-1-sized buffers until solve end.
struct CompactScratch {
  std::vector<graph::EdgeId> keep;
  std::vector<DirEdge> filtered;
  std::vector<graph::EdgeId> head;
  std::vector<DirEdge> out;
  RadixSortScratch<DirEdge> radix;
  SampleSortScratch<DirEdge> sample;
  RadixHashMapScratch<DirEdge> hash;
  HashDedupStats hash_stats;
  ScanScratch<graph::EdgeId> scan;
  /// Per-⟨u,v⟩-group index of the lightest arc (radix path only; atomics are
  /// not movable, hence the manual grow-only buffer instead of a vector).
  std::unique_ptr<std::atomic<graph::EdgeId>[]> winner;
  std::size_t winner_cap = 0;

  /// Bytes currently retained across all member buffers (capacity, not size).
  [[nodiscard]] std::size_t footprint_bytes() const;

  /// Release every retained buffer when `need` (the arc count about to be
  /// compacted) has dropped below 1/kShrinkDivisor of the largest retained
  /// capacity — the next compact re-allocates at the new, smaller scale.
  /// Single-threaded: call on tid 0 behind a barrier (compact_arcs_in_region
  /// does) or outside any region.
  void maybe_release(std::size_t need);

  /// Capacity ratio that triggers maybe_release.  4x means a release can
  /// recoup at least ~75% of the retained bytes.
  static constexpr std::size_t kShrinkDivisor = 4;
  /// Never bother releasing below this many retained arcs' worth of buffers.
  static constexpr std::size_t kShrinkFloor = std::size_t{1} << 14;
};

/// In-region compact-graph (Bor-EL §2.1; also MST-BC's between-rounds
/// contraction): relabel endpoints through `labels`, drop self-loops, sort
/// so multi-edges between the same supervertex pair become consecutive, and
/// keep only the lightest arc of every ⟨u, v⟩ group.  Replaces `arcs` in
/// place.  All team threads call it inside an open SPMD region with
/// identical arguments; the final barrier publishes the result.
///
/// Sort dispatch (CompactSortMode::kAuto): ⟨u, v⟩ packs into one uint64_t
/// whenever VertexId fits 32 bits, so the compact sort runs as a packed-key
/// LSD radix sort; group minima are then resolved by atomic write-min under
/// the WeightOrder total order — the identical deduplicated output the
/// three-field-comparator sample sort produces.
void compact_arcs_in_region(TeamCtx& ctx, std::vector<DirEdge>& arcs,
                            std::span<const graph::VertexId> labels,
                            CompactSortMode mode, CompactScratch& scratch);

/// Fork-join wrapper around compact_arcs_in_region (one SPMD region).
std::vector<DirEdge> compact_arcs(ThreadTeam& team, std::vector<DirEdge>&& arcs,
                                  std::span<const graph::VertexId> labels,
                                  CompactSortMode mode = CompactSortMode::kAuto);

}  // namespace smp::core::detail
