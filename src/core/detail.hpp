#pragma once

#include <span>
#include <vector>

#include "core/dir_edge.hpp"
#include "graph/edge_list.hpp"
#include "graph/msf_result.hpp"
#include "pprim/cacheline.hpp"
#include "pprim/thread_team.hpp"

namespace smp::core::detail {

/// Per-thread buffers for MSF edge ids found during parallel phases; avoids
/// any synchronization on the hot path and concatenates once at the end.
class EdgeCollector {
 public:
  explicit EdgeCollector(int nthreads) : slots_(static_cast<std::size_t>(nthreads)) {}

  void add(int tid, graph::EdgeId orig) {
    slots_[static_cast<std::size_t>(tid)].value.push_back(orig);
  }

  [[nodiscard]] std::size_t total() const {
    std::size_t s = 0;
    for (const auto& sl : slots_) s += sl.value.size();
    return s;
  }

  /// Move all buffers into one vector (tid order; within a tid, find order).
  std::vector<graph::EdgeId> gather() {
    std::vector<graph::EdgeId> out;
    out.reserve(total());
    for (auto& sl : slots_) {
      out.insert(out.end(), sl.value.begin(), sl.value.end());
      sl.value.clear();
    }
    return out;
  }

 private:
  std::vector<Padded<std::vector<graph::EdgeId>>> slots_;
};

/// Builds the public result from the collected input-edge indices.
graph::MsfResult assemble_result(const graph::EdgeList& input,
                                 std::vector<graph::EdgeId> ids);

/// compact-graph for edge-list representations (Bor-EL §2.1; also MST-BC's
/// between-rounds contraction): relabel endpoints through `labels`, drop
/// self-loops, parallel sample sort by ⟨u, v, weight⟩, and keep only the
/// lightest edge of every (u, v) group.
std::vector<DirEdge> compact_arcs(ThreadTeam& team, std::vector<DirEdge>&& arcs,
                                  std::span<const graph::VertexId> labels);

}  // namespace smp::core::detail
