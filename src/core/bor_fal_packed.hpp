#pragma once

#include <memory>
#include <vector>

#include "core/msf.hpp"
#include "graph/types.hpp"
#include "pprim/thread_team.hpp"

namespace smp::core {

/// Prebuilt input for the packed Bor-FAL iteration engine: everything the
/// Borůvka loop touches, with no reference to how the graph was stored.
/// bor_fal_msf fills it from an EdgeList; the compressed streaming path
/// (core/compressed_solve.cpp) fills it by decoding varint rows straight
/// into the key array — the engine cannot tell the difference, which is the
/// point: identical inputs, identical forests.
struct PackedSolveInput {
  graph::VertexId n = 0;
  /// n + 1 arc offsets (both directions of every edge).
  std::vector<graph::EdgeId> offsets;
  /// One ⟨weight-rank, target⟩ key per arc slot (see core/find_min.hpp).
  std::unique_ptr<std::uint64_t[]> keys;
  /// rank -> input edge id permutation from build_weight_ranks.
  std::vector<std::uint32_t> rank_to_edge;
};

/// The packed-key Bor-FAL Borůvka loop (see bor_fal.cpp for the algorithm
/// commentary) over prebuilt structures: consumes `in`, returns the
/// selected input-edge ids (unsorted — callers assemble the result).
/// Accumulates phase timings into `st`; honors the budget, instrumentation
/// and find-min knobs of `opts` exactly like bor_fal_msf's packed path —
/// it IS bor_fal_msf's packed path.
std::vector<graph::EdgeId> bor_fal_packed_engine(ThreadTeam& team,
                                                 PackedSolveInput in,
                                                 const MsfOptions& opts,
                                                 StepTimes& st);

}  // namespace smp::core
