#include "core/verify_msf.hpp"

#include <algorithm>
#include <limits>
#include <unordered_set>
#include <vector>

#include "graph/validate.hpp"

namespace smp::core {

using graph::EdgeId;
using graph::EdgeList;
using graph::kInvalidVertex;
using graph::MsfResult;
using graph::VertexId;
using graph::WEdge;
using graph::Weight;
using graph::WeightOrder;

namespace {

constexpr WeightOrder kMinusInf{-std::numeric_limits<Weight>::infinity(), 0};

WeightOrder max_order(const WeightOrder& a, const WeightOrder& b) {
  return a < b ? b : a;
}

}  // namespace

ForestPathMax::ForestPathMax(VertexId n, std::span<const WEdge> edges,
                             std::span<const EdgeId> ids)
    : comp_(n, kInvalidVertex), depth_(n, 0), n_(n) {
  // Forest adjacency (arc -> (target, order)).
  struct Arc {
    VertexId to;
    WeightOrder order;
  };
  std::vector<std::uint32_t> off(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& e : edges) {
    ++off[e.u + 1];
    ++off[e.v + 1];
  }
  for (std::size_t i = 1; i < off.size(); ++i) off[i] += off[i - 1];
  std::vector<Arc> arcs(edges.size() * 2);
  {
    std::vector<std::uint32_t> cur(off.begin(), off.end() - 1);
    for (std::size_t i = 0; i < edges.size(); ++i) {
      const WeightOrder ord{edges[i].w, ids[i]};
      arcs[cur[edges[i].u]++] = {edges[i].v, ord};
      arcs[cur[edges[i].v]++] = {edges[i].u, ord};
    }
  }

  // Root every tree (iterative DFS); level-0 lifting tables.
  std::vector<VertexId> parent(n);
  std::vector<WeightOrder> parent_edge(n, kMinusInf);
  std::uint32_t max_depth = 0;
  std::vector<VertexId> stack;
  for (VertexId root = 0; root < n; ++root) {
    if (comp_[root] != kInvalidVertex) continue;
    comp_[root] = root;
    parent[root] = root;
    depth_[root] = 0;
    stack.push_back(root);
    while (!stack.empty()) {
      const VertexId x = stack.back();
      stack.pop_back();
      for (std::uint32_t a = off[x]; a < off[x + 1]; ++a) {
        const VertexId y = arcs[a].to;
        if (comp_[y] != kInvalidVertex) continue;
        comp_[y] = root;
        parent[y] = x;
        parent_edge[y] = arcs[a].order;
        depth_[y] = depth_[x] + 1;
        max_depth = std::max(max_depth, depth_[y]);
        stack.push_back(y);
      }
    }
  }

  levels_ = 1;
  while ((std::uint32_t{1} << levels_) <= max_depth) ++levels_;
  up_.resize(static_cast<std::size_t>(levels_) * n);
  upmax_.resize(static_cast<std::size_t>(levels_) * n);
  for (VertexId v = 0; v < n; ++v) {
    up_[v] = parent[v];
    upmax_[v] = parent[v] == v ? kMinusInf : parent_edge[v];
  }
  for (int k = 1; k < levels_; ++k) {
    const std::size_t cur = static_cast<std::size_t>(k) * n;
    const std::size_t prev = cur - n;
    for (VertexId v = 0; v < n; ++v) {
      const VertexId mid = up_[prev + v];
      up_[cur + v] = up_[prev + mid];
      upmax_[cur + v] = max_order(upmax_[prev + v], upmax_[prev + mid]);
    }
  }
}

WeightOrder ForestPathMax::lift(VertexId& v, std::uint32_t target_depth,
                                WeightOrder acc) const {
  std::uint32_t diff = depth_[v] - target_depth;
  for (int k = 0; diff != 0; ++k, diff >>= 1) {
    if (diff & 1u) {
      acc = max_order(acc, upmax_[static_cast<std::size_t>(k) * n_ + v]);
      v = up_[static_cast<std::size_t>(k) * n_ + v];
    }
  }
  return acc;
}

std::optional<WeightOrder> ForestPathMax::path_max(VertexId u, VertexId v) const {
  if (u == v || comp_[u] != comp_[v] || comp_[u] == kInvalidVertex) {
    return std::nullopt;
  }
  WeightOrder acc = kMinusInf;
  const std::uint32_t d = std::min(depth_[u], depth_[v]);
  acc = lift(u, d, acc);
  acc = lift(v, d, acc);
  if (u == v) return acc;
  // Binary-search the LCA from the top level down.
  for (int k = levels_ - 1; k >= 0; --k) {
    const std::size_t base = static_cast<std::size_t>(k) * n_;
    if (up_[base + u] != up_[base + v]) {
      acc = max_order(acc, max_order(upmax_[base + u], upmax_[base + v]));
      u = up_[base + u];
      v = up_[base + v];
    }
  }
  acc = max_order(acc, max_order(upmax_[u], upmax_[v]));
  return acc;
}

bool verify_msf(const EdgeList& g, const MsfResult& msf, std::string* error) {
  const auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };

  if (msf.edges.size() != msf.edge_ids.size()) {
    return fail("edges / edge_ids size mismatch");
  }
  const auto structural = graph::validate_spanning_forest(g, msf.edges);
  if (!structural.ok) return fail(structural.error);

  ForestPathMax fpm(g.num_vertices, msf.edges, msf.edge_ids);
  std::unordered_set<EdgeId> in_forest(msf.edge_ids.begin(), msf.edge_ids.end());
  for (EdgeId i = 0; i < g.edges.size(); ++i) {
    if (in_forest.contains(i)) continue;
    const auto& e = g.edges[i];
    if (e.u == e.v) continue;
    const auto pm = fpm.path_max(e.u, e.v);
    if (!pm) {
      // Maximality already passed, so endpoints must share a tree.
      return fail("non-forest edge bridges two trees: forest not maximal");
    }
    if (WeightOrder{e.w, i} < *pm) {
      return fail("cycle property violated: edge #" + std::to_string(i) +
                  " is lighter than the heaviest forest edge on its path");
    }
  }
  return true;
}

}  // namespace smp::core
