#include "core/dendrogram.hpp"

#include <algorithm>
#include <numeric>

#include "seq/union_find.hpp"

namespace smp::core {

using graph::EdgeId;
using graph::kInvalidVertex;
using graph::MsfResult;
using graph::VertexId;
using graph::Weight;
using graph::WeightOrder;

Dendrogram::Dendrogram(VertexId num_vertices, const MsfResult& msf)
    : n_(num_vertices) {
  const std::size_t k = msf.edges.size();
  parent_.assign(static_cast<std::size_t>(n_) + k, kInvalidVertex);
  merge_height_.reserve(k);

  // Kruskal order over the forest edges (ties by edge id, as everywhere).
  std::vector<std::size_t> order(k);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return WeightOrder{msf.edges[a].w, msf.edge_ids[a]} <
           WeightOrder{msf.edges[b].w, msf.edge_ids[b]};
  });

  // cluster_node[r]: current dendrogram node representing root r's cluster.
  std::vector<VertexId> cluster_node(n_);
  std::iota(cluster_node.begin(), cluster_node.end(), VertexId{0});
  seq::UnionFind uf(n_);
  for (const std::size_t i : order) {
    const auto& e = msf.edges[i];
    const VertexId ru = uf.find(e.u);
    const VertexId rv = uf.find(e.v);
    // MSF edges never close a cycle.
    const auto merge_node = static_cast<VertexId>(n_ + merge_height_.size());
    parent_[cluster_node[ru]] = merge_node;
    parent_[cluster_node[rv]] = merge_node;
    merge_height_.push_back(e.w);
    uf.unite(ru, rv);
    cluster_node[uf.find(ru)] = merge_node;
  }
}

std::vector<VertexId> Dendrogram::labels_keeping(std::size_t merges_kept,
                                                 std::size_t* num_clusters) const {
  // Keep leaves plus the first `merges_kept` merge nodes; a node is a
  // cluster root if it has no kept parent.  Resolve each leaf upward.
  const std::size_t total = parent_.size();
  const std::size_t kept_limit = static_cast<std::size_t>(n_) + merges_kept;
  std::vector<VertexId> top(total, kInvalidVertex);
  // Merge nodes were appended in ascending height, so node ids below
  // kept_limit are exactly the kept ones; process top-down (descending id)
  // so `top` of a parent is final before its children ask.
  const auto top_of = [&](VertexId node) {
    const VertexId p = parent_[node];
    if (p == kInvalidVertex || p >= kept_limit) return node;
    return top[p];
  };
  for (std::size_t node = total; node-- > 0;) {
    top[node] = top_of(static_cast<VertexId>(node));
  }

  // Densify cluster roots into labels.
  std::vector<VertexId> label(n_);
  std::vector<VertexId> dense(total, kInvalidVertex);
  VertexId next = 0;
  for (VertexId v = 0; v < n_; ++v) {
    const VertexId root = top[v];
    if (dense[root] == kInvalidVertex) dense[root] = next++;
    label[v] = dense[root];
  }
  if (num_clusters != nullptr) *num_clusters = next;
  return label;
}

std::vector<VertexId> Dendrogram::cut_at(Weight threshold,
                                         std::size_t* num_clusters) const {
  const auto it =
      std::upper_bound(merge_height_.begin(), merge_height_.end(), threshold);
  return labels_keeping(static_cast<std::size_t>(it - merge_height_.begin()),
                        num_clusters);
}

std::vector<VertexId> Dendrogram::cut_into(std::size_t k,
                                           std::size_t* num_clusters) const {
  // With c initial components and j merges kept, clusters = n - ... easier:
  // every merge reduces the cluster count by one from n.
  const std::size_t clusters_all_kept = static_cast<std::size_t>(n_) - num_merges();
  const std::size_t want = std::max(k, clusters_all_kept);
  const std::size_t kept =
      want >= static_cast<std::size_t>(n_) ? 0 : static_cast<std::size_t>(n_) - want;
  return labels_keeping(std::min(kept, num_merges()), num_clusters);
}

}  // namespace smp::core
