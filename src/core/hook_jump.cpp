#include "core/hook_jump.hpp"

#include <atomic>
#include <vector>

#include "pprim/parallel_for.hpp"
#include "pprim/prefix_sum.hpp"

namespace smp::core {

using graph::VertexId;

void pointer_jump_components_in_region(TeamCtx& ctx, std::span<VertexId> parent,
                                       ComponentsScratch& s) {
  const std::size_t n = parent.size();

  // Both loops below read parent[] entries owned by other threads while those
  // threads overwrite their own entries.  Any interleaving is benign — a stale
  // read still yields a valid ancestor and the fixpoint is unchanged — but the
  // accesses must be relaxed atomics to be defined behavior (and TSan-clean).
  const auto load = [](VertexId& x) {
    return std::atomic_ref<VertexId>(x).load(std::memory_order_relaxed);
  };
  const auto store = [](VertexId& x, VertexId val) {
    std::atomic_ref<VertexId>(x).store(val, std::memory_order_relaxed);
  };

  // Break mutual-minimum 2-cycles: keep the smaller endpoint as root.
  for_range(ctx, n, [&](std::size_t v) {
    const VertexId p = load(parent[v]);
    if (load(parent[p]) == v && v < p) store(parent[v], static_cast<VertexId>(v));
  });
  if (ctx.tid() == 0) {
    s.changed[0].store(false, std::memory_order_relaxed);
    s.changed[1].store(false, std::memory_order_relaxed);
  }
  ctx.barrier();

  // Pointer jumping to the roots; converges in O(log n) rounds.  Round r
  // raises changed[cur]; after the barrier every thread reads the same flag
  // value (nobody writes it in that window) while tid 0 pre-clears the flag
  // of round r+1, so the fixpoint decision is uniform across the team.
  int cur = 0;
  for (;;) {
    for_range(ctx, n, [&](std::size_t v) {
      const VertexId p = load(parent[v]);
      const VertexId gp = load(parent[p]);
      if (p != gp) {
        store(parent[v], gp);
        if (!s.changed[cur].load(std::memory_order_relaxed)) {
          s.changed[cur].store(true, std::memory_order_relaxed);
        }
      }
    });
    ctx.barrier();
    const bool go = s.changed[cur].load(std::memory_order_relaxed);
    if (ctx.tid() == 0) s.changed[cur ^ 1].store(false, std::memory_order_relaxed);
    if (!go) break;
    cur ^= 1;
    ctx.barrier();  // publish the clear before the next round's stores
  }
}

VertexId densify_labels_in_region(TeamCtx& ctx, std::span<VertexId> parent,
                                  ComponentsScratch& s) {
  const std::size_t n = parent.size();
  if (ctx.tid() == 0) {
    if (s.rank.size() < n) s.rank.resize(n);
    s.scan.ensure(ctx.nthreads());
  }
  ctx.barrier();
  for_range(ctx, n, [&](std::size_t v) {
    s.rank[v] = parent[v] == v ? 1u : 0u;
  });
  ctx.barrier();
  const auto num_roots = static_cast<VertexId>(prefix_sum_in_region(
      ctx, std::span<VertexId>(s.rank.data(), n), s.scan));
  for_range(ctx, n, [&](std::size_t v) {
    parent[v] = s.rank[parent[v]];
  });
  ctx.barrier();
  return num_roots;
}

void pointer_jump_components(ThreadTeam& team, std::span<VertexId> parent) {
  ComponentsScratch scratch;
  team.run([&](TeamCtx& ctx) {
    pointer_jump_components_in_region(ctx, parent, scratch);
  });
}

VertexId densify_labels(ThreadTeam& team, std::span<VertexId> parent) {
  ComponentsScratch scratch;
  VertexId num_roots = 0;
  team.run([&](TeamCtx& ctx) {
    const VertexId r = densify_labels_in_region(ctx, parent, scratch);
    if (ctx.tid() == 0) num_roots = r;
  });
  return num_roots;
}

}  // namespace smp::core
