#include "core/hook_jump.hpp"

#include <atomic>
#include <vector>

#include "pprim/parallel_for.hpp"
#include "pprim/prefix_sum.hpp"

namespace smp::core {

using graph::VertexId;

void pointer_jump_components(ThreadTeam& team, std::span<VertexId> parent) {
  const std::size_t n = parent.size();

  // Break mutual-minimum 2-cycles: keep the smaller endpoint as root.
  parallel_for(team, n, [&](std::size_t v) {
    const VertexId p = parent[v];
    if (parent[p] == v && v < p) parent[v] = static_cast<VertexId>(v);
  });

  // Pointer jumping to the roots.  Each round halves every chain length, so
  // this converges in O(log n) rounds; `changed` detects the fixpoint.
  std::atomic<bool> changed{true};
  while (changed.load(std::memory_order_relaxed)) {
    changed.store(false, std::memory_order_relaxed);
    parallel_for(team, n, [&](std::size_t v) {
      const VertexId p = parent[v];
      const VertexId gp = parent[p];
      if (p != gp) {
        parent[v] = gp;
        if (!changed.load(std::memory_order_relaxed)) {
          changed.store(true, std::memory_order_relaxed);
        }
      }
    });
  }
}

VertexId densify_labels(ThreadTeam& team, std::span<VertexId> parent) {
  const std::size_t n = parent.size();
  std::vector<VertexId> rank(n);
  parallel_for(team, n, [&](std::size_t v) {
    rank[v] = parent[v] == v ? 1u : 0u;
  });
  const VertexId num_roots =
      static_cast<VertexId>(exclusive_scan(team, std::span<VertexId>(rank)));
  parallel_for(team, n, [&](std::size_t v) {
    parent[v] = rank[parent[v]];
  });
  return num_roots;
}

}  // namespace smp::core
