#pragma once

#include <cstddef>

#include "core/msf.hpp"
#include "pprim/tuning.hpp"

namespace smp::core::detail {

[[nodiscard]] inline double resolve_compact_live_threshold(
    const MsfOptions& o) {
  return o.compact_live_threshold > 0 ? o.compact_live_threshold
                                      : kDefaultCompactLiveThreshold;
}

[[nodiscard]] inline std::size_t resolve_compact_chunk(const MsfOptions& o) {
  return o.compact_chunk > 0 ? o.compact_chunk : kDefaultDeferredChunkArcs;
}

/// Full-compact trigger, shared by the deferred EL and AL engines: the live
/// fraction must sink below the threshold, and — under the auto-tuned
/// threshold only — the live set must still be big enough that a rebuild
/// beats just scanning the tail to the end.  An explicit user threshold is
/// honored exactly (no size floor), so tests and ablations can force a
/// rebuild on arbitrarily small graphs.
[[nodiscard]] inline bool want_full_compact(const MsfOptions& o,
                                            std::size_t live,
                                            std::size_t total) {
  if (static_cast<double>(live) >=
      resolve_compact_live_threshold(o) * static_cast<double>(total)) {
    return false;
  }
  return o.compact_live_threshold > 0 || live >= kDeferredMinCompactArcs;
}

/// Deferral needs the packed ⟨rank, payload⟩ keys (the watermark scan
/// publishes one atomic_min_u64 per arc and never re-reads another thread's
/// arc slots), so it is only available on the packed find-min path.
[[nodiscard]] inline bool deferred_compact_enabled(const MsfOptions& o,
                                                   bool packed) {
  return packed && o.deferred_compact != DeferredCompactMode::kOff;
}

/// Per-caller wiring of the shared deferred edge-list engine: fault-site
/// names (so Bor-EL keeps its historical sites and the champion gets its
/// own) and the compact-mode policy.
struct DeferredElConfig {
  const char* site_find_min;
  const char* site_connect;
  const char* site_connect_region;
  const char* site_compact;
  const char* site_compact_region;
  /// Budget-checkpoint label, e.g. "Bor-EL iteration".
  const char* checkpoint;
  /// Champion policy: resolve CompactSortMode::kAuto full compacts to the
  /// radix hash-map dedup instead of the packed-key radix sort.
  bool prefer_hash = false;
};

/// Bor-EL's edge list under deferred compaction (see bor_el.cpp for the
/// eager reference loop).  The arc array stays in the vertex space of the
/// last full compact; per-chunk live watermarks drop self-loops and
/// dominated parallels during the find-min scan, labels compose in place
/// each contraction, and the full dedup/relabel runs only when the live
/// fraction sinks below the threshold.  Forests are bit-identical to the
/// eager path.  Precondition: the packed find-min path is available
/// (find_min_packable(g.edges.size())).
graph::MsfResult deferred_el_msf(ThreadTeam& team, const graph::EdgeList& g,
                                 const MsfOptions& opts,
                                 const DeferredElConfig& cfg);

}  // namespace smp::core::detail
