#include "core/msf.hpp"

#include <new>
#include <string>

#include "core/bor_uf.hpp"
#include "core/filter_kruskal.hpp"
#include "core/sample_filter.hpp"
#include "pprim/tuning.hpp"
#include "seq/seq_msf.hpp"

namespace smp::core {

std::string_view to_string(Algorithm a) {
  switch (a) {
    case Algorithm::kBorEL:
      return "Bor-EL";
    case Algorithm::kBorAL:
      return "Bor-AL";
    case Algorithm::kBorALM:
      return "Bor-ALM";
    case Algorithm::kBorFAL:
      return "Bor-FAL";
    case Algorithm::kMstBC:
      return "MST-BC";
    case Algorithm::kSeqPrim:
      return "Prim";
    case Algorithm::kSeqKruskal:
      return "Kruskal";
    case Algorithm::kSeqBoruvka:
      return "Boruvka";
    case Algorithm::kParKruskal:
      return "Par-Kruskal";
    case Algorithm::kFilterKruskal:
      return "Filter-Kruskal";
    case Algorithm::kSampleFilter:
      return "Sample-Filter";
    case Algorithm::kBorUF:
      return "Bor-UF";
    case Algorithm::kChampion:
      return "Champion";
  }
  return "?";
}

std::string_view to_string(DeferredCompactMode m) {
  switch (m) {
    case DeferredCompactMode::kAuto:
      return "auto";
    case DeferredCompactMode::kOn:
      return "on";
    case DeferredCompactMode::kOff:
      return "off";
  }
  return "?";
}

std::string_view to_string(CompactStrategy s) {
  switch (s) {
    case CompactStrategy::kEager:
      return "eager";
    case CompactStrategy::kDefer:
      return "defer";
    case CompactStrategy::kHash:
      return "hash";
    case CompactStrategy::kSort:
      return "sort";
    case CompactStrategy::kMerge:
      return "merge";
    case CompactStrategy::kPointer:
      return "pointer";
  }
  return "?";
}

namespace {

[[nodiscard]] bool known_algorithm(Algorithm a) {
  switch (a) {
    case Algorithm::kBorEL:
    case Algorithm::kBorAL:
    case Algorithm::kBorALM:
    case Algorithm::kBorFAL:
    case Algorithm::kMstBC:
    case Algorithm::kSeqPrim:
    case Algorithm::kSeqKruskal:
    case Algorithm::kSeqBoruvka:
    case Algorithm::kParKruskal:
    case Algorithm::kFilterKruskal:
    case Algorithm::kSampleFilter:
    case Algorithm::kBorUF:
    case Algorithm::kChampion:
      return true;
  }
  return false;
}

[[nodiscard]] bool known_find_min_mode(FindMinMode m) {
  switch (m) {
    case FindMinMode::kAuto:
    case FindMinMode::kScan:
    case FindMinMode::kSimd:
      return true;
  }
  return false;
}

}  // namespace

void validate_request(const graph::EdgeList& g, const MsfOptions& opts) {
  if (!known_algorithm(opts.algorithm)) {
    throw Error(ErrorCode::kInvalidInput,
                "unknown algorithm id " +
                    std::to_string(static_cast<int>(opts.algorithm)));
  }
  if (!known_find_min_mode(opts.find_min)) {
    throw Error(ErrorCode::kInvalidInput,
                "unknown find-min mode id " +
                    std::to_string(static_cast<int>(opts.find_min)));
  }
  if (opts.threads < 1) {
    throw Error(ErrorCode::kInvalidInput,
                "threads must be >= 1, got " + std::to_string(opts.threads));
  }
  if (opts.bc_base_size == 0) {
    throw Error(ErrorCode::kInvalidInput,
                "bc_base_size must be >= 1 (0 would be an empty base case)");
  }
  for (const auto& e : g.edges) {
    if (e.u == e.v || e.u >= g.num_vertices || e.v >= g.num_vertices) {
      throw Error(ErrorCode::kInvalidInput,
                  "self-loop or out-of-range endpoint in edge list");
    }
  }
}

namespace {

/// The parallel-algorithm switch, shared by the per-call-team and
/// caller-team entry points.
graph::MsfResult dispatch_parallel(ThreadTeam& team, const graph::EdgeList& g,
                                   const MsfOptions& opts) {
  switch (opts.algorithm) {
    case Algorithm::kBorEL:
      return bor_el_msf(team, g, opts);
    case Algorithm::kBorAL:
      return bor_al_msf(team, g, opts);
    case Algorithm::kBorALM:
      return bor_alm_msf(team, g, opts);
    case Algorithm::kBorFAL:
      return bor_fal_msf(team, g, opts);
    case Algorithm::kMstBC:
      return mst_bc_msf(team, g, opts);
    case Algorithm::kParKruskal:
      return par_kruskal_msf(team, g, opts);
    case Algorithm::kFilterKruskal:
      return filter_kruskal_msf(team, g);
    case Algorithm::kSampleFilter:
      return sample_filter_msf(team, g, opts.seed);
    case Algorithm::kBorUF:
      return bor_uf_msf(team, g);
    case Algorithm::kChampion:
      return champion_msf(team, g, opts);
    default:
      throw Error(ErrorCode::kInvalidInput, "unreachable algorithm dispatch");
  }
}

/// Common body: `external_team` null means "create a team of opts.threads
/// for this call", non-null means "run on the caller's persistent team".
graph::MsfResult solve_with(ThreadTeam* external_team, const graph::EdgeList& g,
                            const MsfOptions& opts) {
  validate_request(g, opts);
  iteration_checkpoint(opts, "request start");
  // Cutoff-ablation overrides (0 = keep the process-global tuning value);
  // restored when the solve returns or unwinds.
  ScopedTuning tuning(opts.parallel_for_cutoff, opts.sample_sort_cutoff);
  try {
    switch (opts.algorithm) {
      case Algorithm::kSeqPrim:
        return seq::prim_msf(g);
      case Algorithm::kSeqKruskal:
        return seq::kruskal_msf(g);
      case Algorithm::kSeqBoruvka:
        return seq::boruvka_msf(g);
      default:
        break;
    }
  } catch (const std::bad_alloc&) {
    // Sequential baselines have nothing to degrade to.
    throw Error(ErrorCode::kOutOfMemory,
                std::string(to_string(opts.algorithm)) + " exhausted memory");
  }
  try {
    if (external_team != nullptr) {
      return dispatch_parallel(*external_team, g, opts);
    }
    ThreadTeam team(opts.threads);
    return dispatch_parallel(team, g, opts);
    // ~ThreadTeam joins the (now idle) workers even on the throw path: run()
    // never rethrows before every worker has left the region.
  } catch (const std::bad_alloc&) {
    // Graceful degradation: the parallel variant ran out of memory (heap or
    // the budget's arena cap).  The whole team has unwound, so recompute
    // sequentially rather than fail the request — Kruskal's working set is
    // the smallest of any algorithm here.
    if (!opts.allow_sequential_fallback) {
      throw Error(ErrorCode::kOutOfMemory,
                  std::string(to_string(opts.algorithm)) +
                      " exhausted its memory budget (fallback disabled)");
    }
    iteration_checkpoint(opts, "sequential fallback");
    try {
      graph::MsfResult r = seq::kruskal_msf(g);
      r.degraded_to_sequential = true;
      return r;
    } catch (const std::bad_alloc&) {
      throw Error(ErrorCode::kOutOfMemory,
                  "sequential fallback also exhausted memory");
    }
  }
}

void validate_candidate_ids(const graph::EdgeList& candidates,
                            std::span<const graph::EdgeId> candidate_ids) {
  if (candidate_ids.size() != candidates.edges.size()) {
    throw Error(ErrorCode::kInvalidInput,
                "candidate id count (" + std::to_string(candidate_ids.size()) +
                    ") does not match candidate edge count (" +
                    std::to_string(candidates.edges.size()) + ")");
  }
  for (std::size_t i = 1; i < candidate_ids.size(); ++i) {
    if (candidate_ids[i] <= candidate_ids[i - 1]) {
      throw Error(ErrorCode::kInvalidInput,
                  "candidate ids must be strictly increasing (position " +
                      std::to_string(i) + ")");
    }
  }
}

}  // namespace

graph::MsfResult minimum_spanning_forest(const graph::EdgeList& g,
                                         const MsfOptions& opts) {
  return solve_with(nullptr, g, opts);
}

graph::MsfResult minimum_spanning_forest(ThreadTeam& team,
                                         const graph::EdgeList& g,
                                         const MsfOptions& opts) {
  return solve_with(&team, g, opts);
}

graph::MsfResult minimum_spanning_forest_of_candidates(
    const graph::EdgeList& candidates,
    std::span<const graph::EdgeId> candidate_ids, const MsfOptions& opts) {
  validate_candidate_ids(candidates, candidate_ids);
  graph::MsfResult r = minimum_spanning_forest(candidates, opts);
  for (auto& id : r.edge_ids) id = candidate_ids[id];
  return r;
}

graph::MsfResult minimum_spanning_forest_of_candidates(
    ThreadTeam& team, const graph::EdgeList& candidates,
    std::span<const graph::EdgeId> candidate_ids, const MsfOptions& opts) {
  validate_candidate_ids(candidates, candidate_ids);
  graph::MsfResult r = minimum_spanning_forest(team, candidates, opts);
  for (auto& id : r.edge_ids) id = candidate_ids[id];
  return r;
}

}  // namespace smp::core
