#include "core/msf.hpp"

#include <stdexcept>

#include "core/bor_uf.hpp"
#include "core/filter_kruskal.hpp"
#include "core/sample_filter.hpp"
#include "seq/seq_msf.hpp"

namespace smp::core {

std::string_view to_string(Algorithm a) {
  switch (a) {
    case Algorithm::kBorEL:
      return "Bor-EL";
    case Algorithm::kBorAL:
      return "Bor-AL";
    case Algorithm::kBorALM:
      return "Bor-ALM";
    case Algorithm::kBorFAL:
      return "Bor-FAL";
    case Algorithm::kMstBC:
      return "MST-BC";
    case Algorithm::kSeqPrim:
      return "Prim";
    case Algorithm::kSeqKruskal:
      return "Kruskal";
    case Algorithm::kSeqBoruvka:
      return "Boruvka";
    case Algorithm::kParKruskal:
      return "Par-Kruskal";
    case Algorithm::kFilterKruskal:
      return "Filter-Kruskal";
    case Algorithm::kSampleFilter:
      return "Sample-Filter";
    case Algorithm::kBorUF:
      return "Bor-UF";
  }
  return "?";
}

graph::MsfResult minimum_spanning_forest(const graph::EdgeList& g,
                                         const MsfOptions& opts) {
  for (const auto& e : g.edges) {
    if (e.u == e.v || e.u >= g.num_vertices || e.v >= g.num_vertices) {
      throw std::invalid_argument(
          "minimum_spanning_forest: self-loop or out-of-range endpoint");
    }
  }
  switch (opts.algorithm) {
    case Algorithm::kSeqPrim:
      return seq::prim_msf(g);
    case Algorithm::kSeqKruskal:
      return seq::kruskal_msf(g);
    case Algorithm::kSeqBoruvka:
      return seq::boruvka_msf(g);
    default:
      break;
  }
  ThreadTeam team(opts.threads);
  switch (opts.algorithm) {
    case Algorithm::kBorEL:
      return bor_el_msf(team, g, opts);
    case Algorithm::kBorAL:
      return bor_al_msf(team, g, opts);
    case Algorithm::kBorALM:
      return bor_alm_msf(team, g, opts);
    case Algorithm::kBorFAL:
      return bor_fal_msf(team, g, opts);
    case Algorithm::kMstBC:
      return mst_bc_msf(team, g, opts);
    case Algorithm::kParKruskal:
      return par_kruskal_msf(team, g, opts);
    case Algorithm::kFilterKruskal:
      return filter_kruskal_msf(team, g);
    case Algorithm::kSampleFilter:
      return sample_filter_msf(team, g, opts.seed);
    case Algorithm::kBorUF:
      return bor_uf_msf(team, g);
    default:
      throw std::logic_error("minimum_spanning_forest: unknown algorithm");
  }
}

}  // namespace smp::core
