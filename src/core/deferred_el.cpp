#include "core/deferred_el.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "core/atomic_min.hpp"
#include "core/detail.hpp"
#include "core/find_min.hpp"
#include "core/hook_jump.hpp"
#include "pprim/cacheline.hpp"
#include "pprim/fault.hpp"
#include "pprim/parallel_for.hpp"
#include "pprim/radix_hash_map.hpp"
#include "pprim/timer.hpp"

namespace smp::core::detail {

using graph::EdgeId;
using graph::EdgeList;
using graph::MsfResult;
using graph::VertexId;

namespace {

/// One slot of the per-thread direct-mapped dominated-parallel filter: the
/// packed ⟨su, sv⟩ pair it last saw, the global position of that arc, and
/// its weight rank.  Whenever two live arcs of the same iteration collide on
/// the same pair, the strictly heavier one is a parallel duplicate that can
/// never enter the forest (cycle property: the lighter arc of the pair is a
/// strictly better swap under the unique rank order) — it is retired on the
/// spot.  Entries are only ever dereferenced by the thread that wrote them,
/// and only at positions inside chunks that thread owns this iteration, so
/// the recorded position is guaranteed stable (prune swaps touch positions
/// at or after the owner's current scan index).
struct DomEntry {
  std::uint64_t pair;
  EdgeId pos;
  std::uint32_t rank;
};

}  // namespace

MsfResult deferred_el_msf(ThreadTeam& team, const EdgeList& g,
                          const MsfOptions& opts, const DeferredElConfig& cfg) {
  const VertexId n = g.num_vertices;
  StepTimes st;
  WallTimer phase;

  // Each undirected edge appears in both directions, as in the paper.
  std::vector<DirEdge> arcs;
  arcs.reserve(2 * g.edges.size());
  for (EdgeId i = 0; i < g.edges.size(); ++i) {
    const auto& e = g.edges[i];
    arcs.push_back({e.u, e.v, e.w, i});
    arcs.push_back({e.v, e.u, e.w, i});
  }

  const int p = team.size();
  const int lb_threads = find_min_local_best_threads(opts);
  const std::size_t lb_cutoff = find_min_local_best_cutoff(opts);
  const std::size_t chunk_arcs = resolve_compact_chunk(opts);
  CompactSortMode full_mode = opts.compact_sort;
  if (full_mode == CompactSortMode::kAuto && cfg.prefer_hash) {
    full_mode = CompactSortMode::kHash;
  }

  std::vector<std::uint32_t> rank_to_edge;
  const std::vector<std::uint32_t> rank =
      build_weight_ranks(team, g, &rank_to_edge);

  detail::EdgeCollector collector(p);
  std::vector<std::uint64_t> best_keys(n);
  std::vector<VertexId> parent(n);
  // labels: base vertex (the space of the last full compact) → current
  // supervertex.  The arc array is never touched between compacts; all
  // relabeling is this one indirection, composed in place per contraction.
  std::vector<VertexId> labels(n);
  for (VertexId x = 0; x < n; ++x) labels[x] = x;
  // Per-chunk live watermark: arcs[c*chunk .. c*chunk + chunk_live[c]) are
  // live; the rest of the chunk is retired.  A chunk is grabbed by exactly
  // one thread per iteration (dynamic cursor), so watermark updates and
  // prune swaps are single-owner.
  std::vector<EdgeId> chunk_live;
  const auto reset_watermarks = [&] {
    const std::size_t sz = arcs.size();
    const std::size_t nchunks = (sz + chunk_arcs - 1) / chunk_arcs;
    chunk_live.resize(nchunks);
    for (std::size_t c = 0; c < nchunks; ++c) {
      const std::size_t base = c * chunk_arcs;
      chunk_live[c] = static_cast<EdgeId>(std::min(chunk_arcs, sz - base));
    }
  };
  reset_watermarks();

  constexpr std::size_t kDomSize = std::size_t{1} << kDominatedTableBits;
  constexpr std::uint64_t kDomMask = kDomSize - 1;
  std::vector<std::vector<DomEntry>> dom(static_cast<std::size_t>(p));
  std::vector<Padded<std::uint64_t>> pruned_partial(static_cast<std::size_t>(p));
  LocalBestScratch local_best;
  ComponentsScratch comp_scratch;
  detail::CompactScratch compact_scratch;
  std::atomic<bool> any{false};
  std::atomic<std::size_t> scan_cursor{0};
  EdgeId live_total = arcs.size();
  PhaseStats local_ps;
  st.other += phase.elapsed_s();

  VertexId super_n = n;
  while (!arcs.empty()) {
    iteration_checkpoint(opts, cfg.checkpoint);
    const VertexId it_n = super_n;
    const double live_fraction =
        arcs.empty() ? 0.0
                     : static_cast<double>(live_total) /
                           static_cast<double>(arcs.size());
    if (opts.iteration_stats) {
      IterationStat is;
      is.vertices = it_n;
      is.directed_edges = live_total;
      is.live_fraction = live_fraction;
      is.strategy = CompactStrategy::kDefer;
      opts.iteration_stats->push_back(is);
    }
    const std::uint64_t regions_before = team.regions_started();
    any.store(false, std::memory_order_relaxed);
    scan_cursor.store(0, std::memory_order_relaxed);
    const bool local_best_on =
        p > 1 && p >= lb_threads && it_n <= lb_cutoff;
    VertexId next_n_shared = 0;
    CompactStrategy strat = CompactStrategy::kDefer;

    team.run([&](TeamCtx& ctx) {
      WallTimer t0;
      const auto t = static_cast<std::size_t>(ctx.tid());
      // --- find-min: prune + dominated-filter + publish, one pass ---------
      if (ctx.tid() == 0) fault_point(cfg.site_find_min);
      if (local_best_on) {
        if (ctx.tid() == 0) local_best.ensure(p, it_n);
        ctx.barrier();
        std::uint64_t* slab = local_best.slab(ctx.tid());
        std::fill(slab, slab + it_n, kEmptyKey);
      } else {
        for_range(ctx, it_n, [&](std::size_t v) { best_keys[v] = kEmptyKey; });
      }
      if (dom[t].empty()) dom[t].resize(kDomSize);
      for (auto& d : dom[t]) d.pair = ~std::uint64_t{0};
      ctx.barrier();
      std::uint64_t* mine = local_best_on ? local_best.slab(ctx.tid()) : nullptr;
      DomEntry* dt = dom[t].data();
      std::uint64_t pruned = 0;
      for_range_dynamic(ctx, scan_cursor, chunk_live.size(), 1, [&](std::size_t c) {
        const std::size_t base = c * chunk_arcs;
        EdgeId live = chunk_live[c];
        EdgeId i = 0;
        while (i < live) {
          DirEdge& e = arcs[base + i];
          const VertexId su = labels[e.u];
          const VertexId sv = labels[e.v];
          if (su == sv) {
            --live;
            std::swap(arcs[base + i], arcs[base + live]);
            ++pruned;
            continue;
          }
          const std::uint32_t rk = rank[e.orig];
          const std::uint64_t pr =
              (static_cast<std::uint64_t>(su) << 32) | sv;
          DomEntry& d = dt[hash_mix64(pr) & kDomMask];
          if (d.pair == pr) {
            if (d.rank < rk) {
              // Current arc is the heavier parallel: retire it now.
              --live;
              std::swap(arcs[base + i], arcs[base + live]);
              ++pruned;
              continue;
            }
            // The recorded arc is the heavier parallel.  It already
            // published this iteration (harmless — its key is larger and
            // can never win su's minimum); rewriting it into a self-loop
            // retires it on the next scan.  Its position is stable: it lies
            // in this thread's current or completed chunks, before any
            // position a later swap can touch.
            arcs[d.pos].u = arcs[d.pos].v;
            d.pos = static_cast<EdgeId>(base + i);
            d.rank = rk;
          } else {
            d.pair = pr;
            d.pos = static_cast<EdgeId>(base + i);
            d.rank = rk;
          }
          const std::uint64_t k = pack_key(rk, e.v);
          if (mine != nullptr) {
            if (k < mine[su]) mine[su] = k;
          } else {
            atomic_min_u64(best_keys[su], k);
          }
          ++i;
        }
        chunk_live[c] = live;
      });
      pruned_partial[t].value = pruned;
      ctx.barrier();
      if (local_best_on) {
        merge_local_best_in_region(
            ctx, local_best, std::span<std::uint64_t>(best_keys.data(), it_n));
        ctx.barrier();
      }
      if (ctx.tid() == 0) {
        std::uint64_t total_pruned = 0;
        for (int t2 = 0; t2 < p; ++t2) {
          total_pruned += pruned_partial[static_cast<std::size_t>(t2)].value;
        }
        st.pruned_arcs += total_pruned;
        live_total -= total_pruned;
      }

      // --- connect-components ---------------------------------------------
      if (ctx.tid() == 0) {
        st.find_min += t0.elapsed_s();
        t0.reset();
        fault_point(cfg.site_connect);
      }
      fault_point(cfg.site_connect_region);
      bool local_any = false;
      for_range(ctx, it_n, [&](std::size_t s) {
        const std::uint64_t bk = best_keys[s];
        if (bk == kEmptyKey) {
          parent[s] = static_cast<VertexId>(s);
          return;
        }
        local_any = true;
        // Payload is the target BASE vertex (stable under prune swaps,
        // unlike an arc index); one labels[] lookup yields the supervertex.
        const VertexId other = labels[key_index(bk)];
        parent[s] = other;
        // Same undirected edge ⇔ same weight rank (ranks are unique).
        const std::uint64_t ob = best_keys[other];
        const bool other_also_chose =
            ob != kEmptyKey && key_rank(ob) == key_rank(bk);
        if (!(other_also_chose && other < s)) {
          collector.add(ctx.tid(), rank_to_edge[key_rank(bk)]);
        }
      });
      if (local_any) any.store(true, std::memory_order_relaxed);
      ctx.barrier();
      // Uniform exit decision: nobody writes `any` past the barrier.
      if (!any.load(std::memory_order_relaxed)) {
        if (ctx.tid() == 0) st.connect += t0.elapsed_s();
        return;  // every component fully contracted
      }
      pointer_jump_components_in_region(
          ctx, std::span<VertexId>(parent.data(), it_n), comp_scratch);
      const VertexId next_n = densify_labels_in_region(
          ctx, std::span<VertexId>(parent.data(), it_n), comp_scratch);

      // --- compact-graph decision -----------------------------------------
      if (ctx.tid() == 0) {
        next_n_shared = next_n;
        st.connect += t0.elapsed_s();
        t0.reset();
        fault_point(cfg.site_compact);
      }
      fault_point(cfg.site_compact_region);
      if (next_n == 1) {
        // Fully contracted into one supervertex: no cross arc can remain,
        // so skip both the label composition and the probe iteration.
        if (ctx.tid() == 0) st.compact += t0.elapsed_s();
        return;
      }
      // Uniform across the team: live_total was written by tid 0 before the
      // post-find-min barrier, next_n is returned on every thread.
      const bool full_compact = want_full_compact(opts, live_total, arcs.size());
      const std::size_t base_n = labels.size();
      // Compose the indirection: base vertex → new supervertex.  Retired
      // arcs stay self-loops under composition (merging preserves label
      // equality), so a later full compact filters them naturally.
      for_range(ctx, base_n, [&](std::size_t x) {
        labels[x] = parent[labels[x]];
      });
      if (!full_compact) {
        if (ctx.tid() == 0) {
          strat = CompactStrategy::kDefer;
          st.compact += t0.elapsed_s();
        }
        return;
      }
      // Full dedup/relabel through the composed labels (the entry barrier
      // inside compact_arcs_in_region publishes the composition).
      detail::compact_arcs_in_region(
          ctx, arcs, std::span<const VertexId>(labels.data(), base_n),
          full_mode, compact_scratch);
      // Reset the indirection to the identity over the new vertex space.
      for_range(ctx, next_n, [&](std::size_t x) {
        labels[x] = static_cast<VertexId>(x);
      });
      if (ctx.tid() == 0) {
        strat = full_mode == CompactSortMode::kHash ? CompactStrategy::kHash
                                                    : CompactStrategy::kSort;
        st.compact += t0.elapsed_s();
      }
    });

    local_ps.iterations += 1;
    local_ps.regions += team.regions_started() - regions_before;
    if (opts.iteration_stats) opts.iteration_stats->back().strategy = strat;
    switch (strat) {
      case CompactStrategy::kDefer:
        local_ps.deferred_iterations += 1;
        break;
      case CompactStrategy::kHash:
      case CompactStrategy::kSort:
        if (strat == CompactStrategy::kHash) {
          local_ps.hash_compacts += 1;
        } else {
          local_ps.sort_compacts += 1;
        }
        // The region already reset labels to the identity over the new
        // vertex space; shrink the table so labels.size() keeps tracking it.
        labels.resize(next_n_shared);
        live_total = arcs.size();
        reset_watermarks();
        break;
      default:
        break;
    }
    if (!any.load(std::memory_order_relaxed)) break;
    if (next_n_shared == 1) break;
    super_n = next_n_shared;
  }

  phase.reset();
  MsfResult res = detail::assemble_result(g, collector.gather());
  st.other += phase.elapsed_s();
  if (opts.step_times) *opts.step_times += st;
  if (opts.phase_stats) {
    local_ps.hash_keys = compact_scratch.hash_stats.keys;
    local_ps.hash_probe_steps = compact_scratch.hash_stats.probe_steps;
    local_ps.hash_max_probe = compact_scratch.hash_stats.max_probe;
    *opts.phase_stats += local_ps;
  }
  return res;
}

}  // namespace smp::core::detail
