#pragma once

#include "core/msf.hpp"
#include "graph/compressed_csr.hpp"
#include "pprim/thread_team.hpp"

namespace smp::core {

/// MSF over a compressed CSR (the billion-edge path, see
/// graph/compressed_csr.hpp).
///
/// Edge ids in the result are *compressed* edge ids — positions in the
/// canonical row walk — which index g.weights() and g.decode_edge_list()
/// alike.  Since CompressedCsr::build keeps the canonically-minimal parallel
/// edge, the forest equals minimum_spanning_forest(g.decode_edge_list())
/// edge-for-edge and bit-for-bit.
///
/// Dispatch: when the packed find-min path applies (m <= 2^31, mode not
/// kScan) and the algorithm contracts via Bor-FAL (kBorFAL, or kChampion
/// whose sparse-graph pick is Bor-FAL), the solve STREAMS: weight ranks come
/// from the flat f64 section, the packed ⟨rank, target⟩ arcs are scattered
/// straight out of the varint rows (build_packed_arcs over CompressedCsr),
/// and result assembly is one more row walk — no EdgeList or CsrGraph is
/// ever materialized, so peak memory stays ~20 B/edge past the graph itself.
/// Anything else (kScan A/B runs, the non-FAL algorithms, oversized m) falls
/// back to eager decode_edge_list() + the standard dispatcher, trading
/// memory for generality.
[[nodiscard]] graph::MsfResult minimum_spanning_forest_compressed(
    const graph::CompressedCsr& g, const MsfOptions& opts = {});

/// Team-reusing variant (see the ThreadTeam overload of
/// minimum_spanning_forest for the contract).
[[nodiscard]] graph::MsfResult minimum_spanning_forest_compressed(
    ThreadTeam& team, const graph::CompressedCsr& g,
    const MsfOptions& opts = {});

}  // namespace smp::core
