#pragma once

#include <cstddef>
#include <vector>

#include "graph/edge_list.hpp"
#include "pprim/thread_team.hpp"

namespace smp::core {

/// Result of a connected-components computation.
struct CcResult {
  /// Dense component label in [0, num_components) per vertex.
  std::vector<graph::VertexId> label;
  std::size_t num_components = 0;
};

/// Parallel connected components by Shiloach–Vishkin-style hooking plus
/// pointer jumping — the paper lists connected components as the natural
/// next application of its SMP techniques (§6), and the MSF algorithms
/// already contain the machinery.
///
/// Deterministic: hooks always point the larger root at the smaller one, so
/// labels are independent of scheduling and thread count.
CcResult connected_components(ThreadTeam& team, const graph::EdgeList& g);

/// Convenience overload owning a temporary team.
CcResult connected_components(const graph::EdgeList& g, int threads = 1);

}  // namespace smp::core
