#pragma once

#include "graph/edge_list.hpp"
#include "graph/msf_result.hpp"
#include "pprim/thread_team.hpp"

namespace smp::core {

/// MSF by cycle-property filtering (Filter-Kruskal).
///
/// §3 of the paper observes that for m/n ≥ 2 more than half the edges are
/// not in the MSF, and that excluding heavy edges early (the "cycle"
/// property, as in Cole et al. [8] and Katriel et al. [17, 18]) could beat
/// growing a spanning tree of the denser graph.  This is that idea as an
/// implementable algorithm: quicksort-style pivoting on the edge weights,
/// solving the light half first, then *filtering* the heavy half — dropping
/// every heavy edge whose endpoints the light forest already connects —
/// before recursing on what is left.
///
/// The filter pass (the dominant cost on dense inputs) runs on the team's
/// threads; union-find updates stay sequential.
graph::MsfResult filter_kruskal_msf(ThreadTeam& team, const graph::EdgeList& g);

/// Convenience overload owning a temporary team.
graph::MsfResult filter_kruskal_msf(const graph::EdgeList& g, int threads = 1);

}  // namespace smp::core
