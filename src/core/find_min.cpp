#include "core/find_min.hpp"

#include <algorithm>
#include <memory>
#include <thread>

#include "graph/compressed_csr.hpp"
#include "pprim/partition.hpp"

namespace smp::core {

std::string_view to_string(FindMinMode m) {
  switch (m) {
    case FindMinMode::kAuto:
      return "auto";
    case FindMinMode::kScan:
      return "scan";
    case FindMinMode::kSimd:
      return "simd";
  }
  return "?";
}

namespace {

// Rank sort: 16-bit digits, so a full 64-bit key costs 4 scatter passes
// instead of the 8 the general-purpose 8-bit radix sort pays.  The rank
// build is the packed path's setup tax on every solve, and its keys are
// weight bits — nearly every byte position varies, so the shared sort's
// constant-byte skipping rarely helps it.  The wider digit doubles the
// count-slab footprint (64Ki counters per thread) but halves the passes
// over the m-element key/index arrays, which is what dominates.
constexpr int kRankDigitBits = 16;
constexpr std::size_t kRankBuckets = std::size_t{1} << kRankDigitBits;
// Below this size the parallel machinery costs more than one std::sort.
constexpr std::size_t kRankSeqCutoff = std::size_t{1} << 15;
// Sequential packed variant: when the index fits 24 bits it shares the
// 64-bit sort element with the top 40 weight bits (see below).
constexpr int kRankPackedIdxBits = 24;

}  // namespace

namespace {

// Shared rank-build engine: the only thing the two public overloads differ
// in is where weight i comes from, so the whole sort is templated on that
// accessor (EdgeList AoS gather vs the compressed graph's flat weight
// array) and instantiated twice below.
template <class WeightAt>
std::vector<std::uint32_t> build_weight_ranks_impl(
    ThreadTeam& team, std::size_t m, WeightAt w_at,
    std::vector<std::uint32_t>* rank_to_edge) {
  std::vector<std::uint32_t> rank(m);
  if (m == 0) {
    if (rank_to_edge != nullptr) rank_to_edge->clear();
    return rank;
  }

  // ⟨weight bits, input index⟩ pairs; the index both carries the payload and
  // completes the WeightOrder tie-break, so sorting pairs needs no stability.
  auto keys = std::make_unique_for_overwrite<std::uint64_t[]>(m);
  auto idx = std::make_unique_for_overwrite<std::uint32_t[]>(m);

  if (m < kRankSeqCutoff) {
    for (std::size_t i = 0; i < m; ++i) {
      keys[i] = monotone_weight_bits(w_at(i));
      idx[i] = static_cast<std::uint32_t>(i);
    }
    std::sort(idx.get(), idx.get() + m, [&](std::uint32_t a, std::uint32_t b) {
      return keys[a] != keys[b] ? keys[a] < keys[b] : a < b;
    });
    for (std::size_t i = 0; i < m; ++i) {
      rank[idx[i]] = static_cast<std::uint32_t>(i);
    }
    if (rank_to_edge != nullptr) rank_to_edge->assign(idx.get(), idx.get() + m);
    return rank;
  }

  auto keys_aux = std::make_unique_for_overwrite<std::uint64_t[]>(m);
  auto idx_aux = std::make_unique_for_overwrite<std::uint32_t[]>(m);

  // With one worker — or a team oversubscribed onto a single hardware
  // thread — the parallel sort's barriers and count-merge buy nothing, so
  // run the same passes serially without them.
  const unsigned hw = std::thread::hardware_concurrency();
  if (team.size() == 1 || hw == 1) {
    std::vector<std::uint64_t> count(kRankBuckets);
    if (m <= (std::size_t{1} << kRankPackedIdxBits)) {
      // Self-contained 8-byte elements: the index rides in the low 24 bits
      // of the sort element, so each scatter moves 8 bytes instead of a
      // 12-byte (key, idx) pair, and only the top 40 weight bits are radix
      // passes (3 instead of 4).  Distinct weights that collide in those 40
      // bits are rare for real inputs; the run fix-up below restores the
      // exact order for them.
      constexpr std::uint64_t kIdxMask =
          (std::uint64_t{1} << kRankPackedIdxBits) - 1;
      std::uint64_t key_or = 0;
      for (std::size_t i = 0; i < m; ++i) {
        const std::uint64_t k = monotone_weight_bits(w_at(i));
        keys[i] = (k & ~kIdxMask) | i;
        key_or |= k;
      }
      std::uint64_t* vsrc = keys.get();
      std::uint64_t* vdst = keys_aux.get();
      for (int shift = kRankPackedIdxBits; shift < 64; shift += kRankDigitBits) {
        const int width = std::min(64 - shift, kRankDigitBits);
        const std::uint64_t mask = (std::uint64_t{1} << width) - 1;
        if (((key_or >> shift) & mask) == 0) continue;
        std::fill(count.begin(), count.begin() + (std::size_t{1} << width), 0);
        for (std::size_t i = 0; i < m; ++i) {
          ++count[(vsrc[i] >> shift) & mask];
        }
        std::uint64_t sum = 0;
        for (std::size_t b = 0; b <= mask; ++b) {
          const std::uint64_t c = count[b];
          count[b] = sum;
          sum += c;
        }
        for (std::size_t i = 0; i < m; ++i) {
          vdst[count[(vsrc[i] >> shift) & mask]++] = vsrc[i];
        }
        std::swap(vsrc, vdst);
      }
      // Fix-up: inside a run of equal top-40 bits the stable passes left
      // input-index order, which is correct only if the low 24 weight bits
      // agree too.  Re-sort mixed runs under the full ⟨weight bits, index⟩
      // order; runs are short and rare, so this gathers a handful of edges.
      std::vector<std::pair<std::uint64_t, std::uint32_t>> run;
      for (std::size_t i = 0; i < m;) {
        std::size_t j = i + 1;
        const std::uint64_t hi = vsrc[i] & ~kIdxMask;
        while (j < m && (vsrc[j] & ~kIdxMask) == hi) ++j;
        if (j - i > 1) {
          run.clear();
          bool mixed = false;
          for (std::size_t k = i; k < j; ++k) {
            const auto e = static_cast<std::uint32_t>(vsrc[k] & kIdxMask);
            run.emplace_back(monotone_weight_bits(w_at(e)), e);
            mixed = mixed || run.back().first != run.front().first;
          }
          if (mixed) {
            std::sort(run.begin(), run.end());
            for (std::size_t k = i; k < j; ++k) {
              vsrc[k] = hi | run[k - i].second;
            }
          }
        }
        i = j;
      }
      for (std::size_t i = 0; i < m; ++i) {
        rank[vsrc[i] & kIdxMask] = static_cast<std::uint32_t>(i);
      }
      if (rank_to_edge != nullptr) {
        rank_to_edge->resize(m);
        for (std::size_t i = 0; i < m; ++i) {
          (*rank_to_edge)[i] = static_cast<std::uint32_t>(vsrc[i] & kIdxMask);
        }
      }
      return rank;
    }

    std::uint64_t key_or = 0;
    for (std::size_t i = 0; i < m; ++i) {
      const std::uint64_t k = monotone_weight_bits(w_at(i));
      keys[i] = k;
      idx[i] = static_cast<std::uint32_t>(i);
      key_or |= k;
    }
    std::uint64_t* ksrc = keys.get();
    std::uint64_t* kdst = keys_aux.get();
    std::uint32_t* isrc = idx.get();
    std::uint32_t* idst = idx_aux.get();
    for (int shift = 0; shift < 64; shift += kRankDigitBits) {
      if (((key_or >> shift) & (kRankBuckets - 1)) == 0) continue;
      std::fill(count.begin(), count.end(), 0);
      for (std::size_t i = 0; i < m; ++i) {
        ++count[(ksrc[i] >> shift) & (kRankBuckets - 1)];
      }
      std::uint64_t sum = 0;
      for (std::size_t b = 0; b < kRankBuckets; ++b) {
        const std::uint64_t c = count[b];
        count[b] = sum;
        sum += c;
      }
      for (std::size_t i = 0; i < m; ++i) {
        const std::size_t b = (ksrc[i] >> shift) & (kRankBuckets - 1);
        const std::uint64_t pos = count[b]++;
        kdst[pos] = ksrc[i];
        idst[pos] = isrc[i];
      }
      std::swap(ksrc, kdst);
      std::swap(isrc, idst);
    }
    for (std::size_t i = 0; i < m; ++i) {
      rank[isrc[i]] = static_cast<std::uint32_t>(i);
    }
    if (rank_to_edge != nullptr) rank_to_edge->assign(isrc, isrc + m);
    return rank;
  }

  const int p = team.size();
  const auto P = static_cast<std::size_t>(p);
  // Per-thread count slabs, thread-major; 64Ki buckets is too large to pad
  // per line, but threads only touch their own slab between barriers.
  std::vector<std::uint64_t> counts(P * kRankBuckets);
  std::vector<Padded<std::uint64_t>> or_partial(P);
  std::uint64_t key_or = 0;

  team.run([&](TeamCtx& ctx) {
    const auto t = static_cast<std::size_t>(ctx.tid());
    const IndexRange r = block_range(m, ctx.tid(), ctx.nthreads());
    {
      std::uint64_t acc = 0;
      for (std::size_t i = r.begin; i < r.end; ++i) {
        const std::uint64_t k = monotone_weight_bits(w_at(i));
        keys[i] = k;
        idx[i] = static_cast<std::uint32_t>(i);
        acc |= k;
      }
      or_partial[t].value = acc;
    }
    ctx.barrier();
    if (ctx.tid() == 0) {
      std::uint64_t acc = 0;
      for (std::size_t t2 = 0; t2 < P; ++t2) acc |= or_partial[t2].value;
      key_or = acc;
    }
    ctx.barrier();

    std::uint64_t* ksrc = keys.get();
    std::uint64_t* kdst = keys_aux.get();
    std::uint32_t* isrc = idx.get();
    std::uint32_t* idst = idx_aux.get();
    std::uint64_t* my_counts = counts.data() + t * kRankBuckets;

    for (int shift = 0; shift < 64; shift += kRankDigitBits) {
      if (((key_or >> shift) & (kRankBuckets - 1)) == 0) continue;
      std::fill(my_counts, my_counts + kRankBuckets, 0);
      for (std::size_t i = r.begin; i < r.end; ++i) {
        ++my_counts[(ksrc[i] >> shift) & (kRankBuckets - 1)];
      }
      ctx.barrier();
      // Serial (bucket, thread)-order scan on tid 0: 64Ki·p additions, dwarfed
      // by the m-element scatter it steers.
      if (ctx.tid() == 0) {
        std::uint64_t sum = 0;
        for (std::size_t b = 0; b < kRankBuckets; ++b) {
          for (std::size_t t2 = 0; t2 < P; ++t2) {
            const std::uint64_t c = counts[t2 * kRankBuckets + b];
            counts[t2 * kRankBuckets + b] = sum;
            sum += c;
          }
        }
      }
      ctx.barrier();
      for (std::size_t i = r.begin; i < r.end; ++i) {
        const std::size_t b = (ksrc[i] >> shift) & (kRankBuckets - 1);
        const std::uint64_t pos = my_counts[b]++;
        kdst[pos] = ksrc[i];
        idst[pos] = isrc[i];
      }
      ctx.barrier();
      std::swap(ksrc, kdst);
      std::swap(isrc, idst);
    }

    // Every pass scatters each thread's contiguous range in order behind a
    // (bucket, thread)-ordered scan, so the sort is stable: equal weight
    // bits stay in input-index order, which is exactly WeightOrder's
    // tie-break.  An odd pass count leaves the result in the aux arrays.
    if (ctx.tid() == 0 && isrc != idx.get()) {
      std::copy(ksrc, ksrc + m, keys.get());
      std::copy(isrc, isrc + m, idx.get());
    }
    ctx.barrier();
    for (std::size_t i = r.begin; i < r.end; ++i) {
      rank[idx[i]] = static_cast<std::uint32_t>(i);
    }
  });
  if (rank_to_edge != nullptr) rank_to_edge->assign(idx.get(), idx.get() + m);
  return rank;
}

}  // namespace

std::vector<std::uint32_t> build_weight_ranks(
    ThreadTeam& team, const graph::EdgeList& g,
    std::vector<std::uint32_t>* rank_to_edge) {
  return build_weight_ranks_impl(
      team, g.edges.size(), [&](std::size_t i) { return g.edges[i].w; },
      rank_to_edge);
}

std::vector<std::uint32_t> build_weight_ranks(
    ThreadTeam& team, std::span<const graph::Weight> weights,
    std::vector<std::uint32_t>* rank_to_edge) {
  return build_weight_ranks_impl(
      team, weights.size(), [&](std::size_t i) { return weights[i]; },
      rank_to_edge);
}

void build_packed_arcs(const graph::EdgeList& g, graph::VertexId n,
                       std::span<const std::uint32_t> rank,
                       std::vector<graph::EdgeId>& offsets,
                       std::unique_ptr<std::uint64_t[]>& keys) {
  using graph::EdgeId;
  offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& e : g.edges) {
    ++offsets[e.u + 1];
    ++offsets[e.v + 1];
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

  keys = std::make_unique_for_overwrite<std::uint64_t[]>(offsets.back());
  std::vector<EdgeId> cursor(offsets.begin(), offsets.end() - 1);
  for (EdgeId i = 0; i < g.edges.size(); ++i) {
    const graph::WEdge& e = g.edges[i];
    const std::uint32_t r = rank[i];
    keys[cursor[e.u]++] = pack_key(r, e.v);
    keys[cursor[e.v]++] = pack_key(r, e.u);
  }
}

void build_packed_arcs(const graph::CompressedCsr& g,
                       std::span<const std::uint32_t> rank,
                       std::vector<graph::EdgeId>& offsets,
                       std::unique_ptr<std::uint64_t[]>& keys) {
  using graph::EdgeId;
  using graph::VertexId;
  const VertexId n = g.num_vertices();
  const EdgeId m = g.num_edges();
  // Decode targets once (bulk varint kernel): 4 bytes/edge of scratch is
  // the only uncompressed structure this path ever materializes — the
  // 16-byte WEdge list never exists.
  std::vector<VertexId> targets(static_cast<std::size_t>(m));
  g.decode_targets(targets.data());

  offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  for (VertexId u = 0; u < n; ++u) {
    offsets[std::size_t{u} + 1] += g.out_degree(u);
  }
  for (EdgeId e = 0; e < m; ++e) {
    ++offsets[std::size_t{targets[static_cast<std::size_t>(e)]} + 1];
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

  keys = std::make_unique_for_overwrite<std::uint64_t[]>(offsets.back());
  std::vector<EdgeId> cursor(offsets.begin(), offsets.end() - 1);
  for (VertexId u = 0; u < n; ++u) {
    const EdgeId e_end = g.edge_offset(u + 1);
    for (EdgeId e = g.edge_offset(u); e < e_end; ++e) {
      const VertexId v = targets[static_cast<std::size_t>(e)];
      const std::uint32_t r = rank[static_cast<std::size_t>(e)];
      keys[cursor[u]++] = pack_key(r, v);
      keys[cursor[v]++] = pack_key(r, u);
    }
  }
}

}  // namespace smp::core
