#include "core/bor_uf.hpp"

#include <algorithm>
#include <atomic>
#include <vector>

#include "core/atomic_min.hpp"
#include "graph/types.hpp"
#include "pprim/atomic_union_find.hpp"
#include "pprim/cacheline.hpp"
#include "pprim/fault.hpp"
#include "pprim/parallel_for.hpp"
#include "pprim/prefix_sum.hpp"
#include "pprim/thread_team.hpp"

namespace smp::core {

using graph::EdgeId;
using graph::EdgeList;
using graph::kInvalidEdge;
using graph::MsfResult;
using graph::VertexId;
using graph::WeightOrder;

MsfResult bor_uf_msf(ThreadTeam& team, const EdgeList& g) {
  const VertexId n = g.num_vertices;
  MsfResult res;
  if (n == 0) return res;

  AtomicUnionFind uf(n);
  // Live edges: ids of edges whose endpoints are in different components.
  std::vector<EdgeId> live(g.edges.size());
  for (EdgeId i = 0; i < g.edges.size(); ++i) live[i] = i;

  std::vector<std::atomic<EdgeId>> best(n);
  std::vector<Padded<std::vector<EdgeId>>> found(static_cast<std::size_t>(team.size()));
  std::vector<EdgeId> keep_flags;
  std::vector<EdgeId> next;
  ScanScratch<EdgeId> scan;
  scan.ensure(team.size());
  std::atomic<bool> any{false};

  const auto better = [&](EdgeId a, EdgeId b) {
    return WeightOrder{g.edges[a].w, a} < WeightOrder{g.edges[b].w, b};
  };

  // Each Borůvka iteration is ONE persistent SPMD region: find-min, gather,
  // parallel unions, and the live-edge filter synchronize via ctx.barrier()
  // instead of paying four fork/joins.  The progress flag is raised before a
  // barrier and read after it, so every thread takes the same exit branch.
  while (!live.empty()) {
    const std::size_t m = live.size();
    if (keep_flags.size() < m) keep_flags.resize(m);
    any.store(false, std::memory_order_relaxed);

    team.run([&](TeamCtx& ctx) {
      // find-min per component root.  Roots drift during the scan (no unions
      // run concurrently, so they don't — only between iterations).
      if (ctx.tid() == 0) fault_point("bor-uf.find-min");
      for_range(ctx, n, [&](std::size_t v) {
        best[v].store(kInvalidEdge, std::memory_order_relaxed);
      });
      ctx.barrier();
      for_range(ctx, m, [&](std::size_t j) {
        const EdgeId i = live[j];
        const auto& e = g.edges[i];
        const VertexId ru = uf.find(e.u);
        const VertexId rv = uf.find(e.v);
        if (ru == rv) return;
        atomic_write_min(best[ru], i, better);
        atomic_write_min(best[rv], i, better);
      });
      ctx.barrier();
      // Gather the chosen set while roots are still stable (no unions have
      // run yet): a mutual-minimum edge sits in both roots' slots; the
      // smaller root keeps it.  The chosen set of a Borůvka round is a
      // forest, so every union below must succeed — record unconditionally.
      auto& mine = found[static_cast<std::size_t>(ctx.tid())].value;
      for_range(ctx, n, [&](std::size_t v) {
        const EdgeId b = best[v].load(std::memory_order_relaxed);
        if (b == kInvalidEdge) return;
        const auto& e = g.edges[b];
        const VertexId ru = uf.find(e.u);
        const VertexId other = ru == static_cast<VertexId>(v) ? uf.find(e.v) : ru;
        const bool mutual = best[other].load(std::memory_order_relaxed) == b;
        if (mutual && other < static_cast<VertexId>(v)) return;
        mine.push_back(b);
      });
      if (!mine.empty()) any.store(true, std::memory_order_relaxed);
      ctx.barrier();
      // connect-components: parallel unions over the (cycle-free) chosen set.
      for (const EdgeId b : mine) {
        const auto& e = g.edges[b];
        const bool merged = uf.unite(e.u, e.v);
        (void)merged;
      }
      ctx.barrier();
      // Uniform exit: `any` was last written before the gather barrier.
      if (!any.load(std::memory_order_relaxed)) return;

      // compact: drop edges that became intra-component (parallel filter via
      // an in-region prefix sum over keep flags).
      fault_point("bor-uf.compact.region");
      for_range(ctx, m, [&](std::size_t j) {
        const auto& e = g.edges[live[j]];
        keep_flags[j] = uf.find(e.u) != uf.find(e.v) ? 1 : 0;
      });
      ctx.barrier();
      const EdgeId survivors =
          prefix_sum_in_region(ctx, std::span<EdgeId>(keep_flags.data(), m), scan);
      if (ctx.tid() == 0) next.resize(survivors);
      ctx.barrier();
      for_range(ctx, m, [&](std::size_t j) {
        const bool kept = (j + 1 < m ? keep_flags[j + 1] : survivors) != keep_flags[j];
        if (kept) next[keep_flags[j]] = live[j];
      });
      ctx.barrier();
      if (ctx.tid() == 0) live.swap(next);
      ctx.barrier();
    });

    for (auto& f : found) {
      res.edge_ids.insert(res.edge_ids.end(), f.value.begin(), f.value.end());
      f.value.clear();
    }
    if (!any.load(std::memory_order_relaxed)) break;
  }

  std::sort(res.edge_ids.begin(), res.edge_ids.end());
  res.edges.reserve(res.edge_ids.size());
  for (const EdgeId id : res.edge_ids) {
    res.edges.push_back(g.edges[id]);
    res.total_weight += g.edges[id].w;
  }
  res.num_trees = n - res.edges.size();
  return res;
}

MsfResult bor_uf_msf(const EdgeList& g, int threads) {
  ThreadTeam team(threads);
  return bor_uf_msf(team, g);
}

}  // namespace smp::core
