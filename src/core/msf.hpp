#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "core/dir_edge.hpp"
#include "core/error.hpp"
#include "graph/edge_list.hpp"
#include "graph/msf_result.hpp"
#include "pprim/thread_team.hpp"

namespace smp::core {

/// The algorithms of the paper.  kBorEL/kBorAL/kBorALM/kBorFAL are the four
/// parallel Borůvka variants of §2; kMstBC is the new Prim/Borůvka hybrid of
/// §4; the kSeq* entries are the sequential baselines of §5.2 routed through
/// the same interface.
enum class Algorithm {
  kBorEL,
  kBorAL,
  kBorALM,
  kBorFAL,
  kMstBC,
  kSeqPrim,
  kSeqKruskal,
  kSeqBoruvka,
  // Extensions beyond the paper (see DESIGN.md):
  kParKruskal,     ///< Kruskal with a parallel sample sort of the edges
  kFilterKruskal,  ///< cycle-property filtering (§3's hinted approach)
  kSampleFilter,   ///< Cole–Klein–Tarjan random sampling + filtering
  kBorUF,          ///< Borůvka over a lock-free union-find (GBBS/Galois style)
  kChampion,       ///< auto-tuned pipeline: deferred compaction + per-iteration
                   ///< strategy choice (defer / hash dedup / sort compact)
};

[[nodiscard]] std::string_view to_string(Algorithm a);

/// The paper's five parallel algorithms, for iteration in tests/benches.
inline constexpr Algorithm kParallelAlgorithms[] = {
    Algorithm::kBorEL, Algorithm::kBorAL, Algorithm::kBorALM,
    Algorithm::kBorFAL, Algorithm::kMstBC};

/// Extension algorithms (not part of the paper's evaluation).
inline constexpr Algorithm kExtensionAlgorithms[] = {
    Algorithm::kParKruskal, Algorithm::kFilterKruskal, Algorithm::kSampleFilter,
    Algorithm::kBorUF, Algorithm::kChampion};

/// How the find-min step scans for each supervertex's lightest arc.
///
/// kScan is the seed kernel: every arc compared under the two-word
/// ⟨weight, orig⟩ comparator, no pruning, no packing — kept as the exact
/// A/B baseline.  kSimd is the accelerated path: per-edge weight ranks
/// packed with the arc index into a uint64 whose integer order equals
/// WeightOrder, live-arc pruning (Bor-FAL), the runtime-dispatched SIMD
/// min-scan kernel, and the contention-aware local-best reduction.  The
/// packed path needs ranks and directed-arc indices to fit 32 bits
/// (m ≤ 2^31); kAuto picks kSimd when that holds and kScan otherwise, and a
/// forced kSimd on an unpackable graph silently degrades to kScan.  Both
/// paths produce bit-identical forests.
enum class FindMinMode { kAuto, kScan, kSimd };

[[nodiscard]] std::string_view to_string(FindMinMode m);

/// Whether the edge-list variants defer compact-graph behind live-prefix
/// watermarks (Bor-FAL's filter-on-the-fly ported to Bor-EL/AL/ALM): dead
/// arcs are dropped during the find-min scan and the full dedup/relabel only
/// runs when the live-edge fraction sinks below the compact_live_threshold.
/// kAuto enables deferral whenever the packed find-min path is available
/// (the watermark scan needs the uint64 ⟨rank, payload⟩ keys); kOff pins the
/// paper's eager compact-every-iteration behaviour for A/B benches.  Both
/// settings produce bit-identical forests.
enum class DeferredCompactMode { kAuto, kOn, kOff };

[[nodiscard]] std::string_view to_string(DeferredCompactMode m);

/// What an iteration's compact-graph step actually did — recorded per
/// iteration in IterationStat and counted in PhaseStats so BENCH_07 can
/// explain *why* the champion picked each path.
enum class CompactStrategy {
  kEager,  ///< eager per-iteration sort compact (paper reference path)
  kDefer,  ///< deferred: labels composed in place, no arc-array rebuild
  kHash,   ///< full compact via the radix hash-map dedup
  kSort,   ///< full compact via radix/sample sort
  kMerge,  ///< Bor-AL/ALM k-way-merge adjacency rebuild
  kPointer,  ///< Bor-FAL pointer contraction (never rebuilds arc storage)
};

[[nodiscard]] std::string_view to_string(CompactStrategy s);

/// Wall-clock seconds spent in each step of the Borůvka iteration — the
/// instrumentation behind the Fig. 2 breakdown.
struct StepTimes {
  double find_min = 0;
  double connect = 0;
  double compact = 0;
  double other = 0;  ///< setup, result assembly, base-case solve (MST-BC)
  /// Arcs permanently retired from a live-arc working set across all
  /// iterations — Bor-FAL's prune as well as the deferred-compaction
  /// watermark prunes of Bor-EL/AL/ALM and the champion (0 under
  /// FindMinMode::kScan and for eager algorithms).
  std::uint64_t pruned_arcs = 0;

  [[nodiscard]] double total() const { return find_min + connect + compact + other; }

  StepTimes& operator+=(const StepTimes& o) {
    find_min += o.find_min;
    connect += o.connect;
    compact += o.compact;
    other += o.other;
    pruned_arcs += o.pruned_arcs;
    return *this;
  }
};

/// Region accounting for the fused SPMD execution model: how many ThreadTeam
/// regions each algorithm iteration forked.  A fused algorithm runs one
/// persistent region per Borůvka iteration (regions_per_iteration() == 1);
/// anything larger means the iteration still pays extra fork/join wake-ups.
struct PhaseStats {
  std::uint64_t iterations = 0;  ///< Borůvka iterations / MST-BC rounds
  std::uint64_t regions = 0;     ///< SPMD regions started inside those iterations
  // Compact-strategy accounting (deferred engines and the champion):
  std::uint64_t deferred_iterations = 0;  ///< iterations that skipped the full compact
  std::uint64_t hash_compacts = 0;   ///< full compacts resolved by hash dedup
  std::uint64_t sort_compacts = 0;   ///< full compacts resolved by sorting
  std::uint64_t merge_rebuilds = 0;  ///< Bor-AL/ALM k-way-merge rebuilds
  // Radix hash-map probe statistics (see pprim/radix_hash_map.hpp):
  std::uint64_t hash_keys = 0;         ///< elements inserted across all dedups
  std::uint64_t hash_probe_steps = 0;  ///< probe advances past the home slot
  std::uint64_t hash_max_probe = 0;    ///< longest single probe chain

  [[nodiscard]] double regions_per_iteration() const {
    return iterations == 0
               ? 0.0
               : static_cast<double>(regions) / static_cast<double>(iterations);
  }

  PhaseStats& operator+=(const PhaseStats& o) {
    iterations += o.iterations;
    regions += o.regions;
    deferred_iterations += o.deferred_iterations;
    hash_compacts += o.hash_compacts;
    sort_compacts += o.sort_compacts;
    merge_rebuilds += o.merge_rebuilds;
    hash_keys += o.hash_keys;
    hash_probe_steps += o.hash_probe_steps;
    hash_max_probe = hash_max_probe > o.hash_max_probe ? hash_max_probe
                                                       : o.hash_max_probe;
    return *this;
  }
};

/// Per-iteration size trace (Table 1: how fast the edge list shrinks).
struct IterationStat {
  graph::VertexId vertices = 0;    ///< supervertices at iteration start
  graph::EdgeId directed_edges = 0;  ///< live directed edges (the "2m" column)
  /// Live arcs divided by arc-array size at iteration start (1.0 for the
  /// eager paths, which rebuild the array every iteration).
  double live_fraction = 1.0;
  /// What compact-graph did this iteration.
  CompactStrategy strategy = CompactStrategy::kEager;
};

struct MsfOptions {
  Algorithm algorithm = Algorithm::kChampion;
  /// Worker threads (the paper's p).  <= 1 runs inline.
  int threads = 1;
  /// Seed for MST-BC's random vertex permutation.
  std::uint64_t seed = 1;
  /// MST-BC: below this many supervertices the rest is solved sequentially.
  graph::VertexId bc_base_size = 512;
  /// MST-BC: randomly reorder the vertex set (guarantees progress w.h.p.).
  bool bc_permute = true;
  /// Optional out-params for instrumentation; may be nullptr.
  StepTimes* step_times = nullptr;
  std::vector<IterationStat>* iteration_stats = nullptr;
  PhaseStats* phase_stats = nullptr;
  /// compact-graph sort dispatch (kAuto = packed-key radix when possible;
  /// the champion resolves kAuto to the hash dedup instead).
  CompactSortMode compact_sort = CompactSortMode::kAuto;
  /// Deferred-compaction dispatch for Bor-EL/AL/ALM and the champion
  /// (kAuto = deferred whenever the packed find-min path is available).
  DeferredCompactMode deferred_compact = DeferredCompactMode::kAuto;
  /// Live-edge fraction below which a deferred engine runs the full compact;
  /// 0 keeps kDefaultCompactLiveThreshold (pprim/tuning.hpp).
  double compact_live_threshold = 0;
  /// Arcs per chunk of the deferred find-min scan (the watermark/ownership
  /// granule); 0 keeps kDefaultDeferredChunkArcs.
  std::size_t compact_chunk = 0;
  /// find-min scan dispatch (kAuto = packed-key SIMD path when possible).
  FindMinMode find_min = FindMinMode::kAuto;
  /// Find-min contention-cutoff overrides; 0 keeps the defaults in
  /// pprim/tuning.hpp (kFindMinLocalBestThreads / kFindMinLocalBestCutoff /
  /// kFindMinPruneBlock).  Setting find_min_local_best_threads above the
  /// team size disables the local-best reduction entirely.
  int find_min_local_best_threads = 0;
  std::size_t find_min_local_best_cutoff = 0;
  std::size_t find_min_prune_block = 0;
  /// Sequential-cutoff overrides for the cutoff-ablation benches; 0 keeps
  /// the process-global tuning value (see pprim/tuning.hpp).  Applied for
  /// the duration of the minimum_spanning_forest call.
  std::size_t parallel_for_cutoff = 0;
  std::size_t sample_sort_cutoff = 0;
  /// Optional execution budget (cancellation token, deadline, arena memory
  /// cap), checked at per-iteration checkpoints; may be nullptr.  The budget
  /// outlives the call and may be shared with a canceller thread.
  const ExecutionBudget* budget = nullptr;
  /// When a parallel variant fails with std::bad_alloc (heap exhaustion or
  /// the budget's arena cap), recompute sequentially with Kruskal instead of
  /// failing the request; the result records the degradation.  When false,
  /// the dispatcher surfaces Error{kOutOfMemory}.
  bool allow_sequential_fallback = true;
};

/// Validate a request before running it: endpoint ranges / self-loops in the
/// graph, `threads >= 1`, `bc_base_size >= 1`, and a known Algorithm.
/// Throws Error{kInvalidInput}; called by minimum_spanning_forest.
void validate_request(const graph::EdgeList& g, const MsfOptions& opts);

/// Per-iteration cooperative checkpoint.  Called between parallel regions on
/// the orchestrating thread only (never inside a team region), so a throw
/// here unwinds without any barrier interaction.
inline void iteration_checkpoint(const MsfOptions& opts, std::string_view where) {
  if (opts.budget != nullptr) opts.budget->check(where);
}

/// Compute the minimum spanning forest of `g`.
///
/// All algorithms resolve equal weights by input edge index, so the forest
/// (as a set of input edge indices) is unique and identical across
/// algorithms and thread counts.
graph::MsfResult minimum_spanning_forest(const graph::EdgeList& g,
                                         const MsfOptions& opts = {});

/// As above, but parallel algorithms run on the caller's persistent `team`
/// instead of a team created per call — the thread-spawn cost matters when a
/// long-lived service solves many small candidate sets back to back.  The
/// run's p is team.size(); MsfOptions::threads is ignored.  The team must be
/// idle (regions must not nest), so callers sharing one team across threads
/// serialize solves externally.
graph::MsfResult minimum_spanning_forest(ThreadTeam& team,
                                         const graph::EdgeList& g,
                                         const MsfOptions& opts = {});

/// Candidate-set entry point for the batch-dynamic subsystem (and anything
/// else that already knows a superset of the forest).
///
/// Solves the MSF of `candidates`, a subset of some larger graph's edges,
/// where `candidates.edges[i]` is the caller's edge `candidate_ids[i]`.
/// The ids must be *strictly increasing*: WeightOrder breaks weight ties by
/// edge index, so ascending ids make the candidate-local total order agree
/// with the full graph's order — exactly what the sparsification identity
/// MSF(G ∪ B) = MSF(F ∪ B) needs to return the same forest, edge for edge,
/// as a from-scratch run on the full graph.  The returned MsfResult has
/// edge_ids mapped back into the caller's id space.
///
/// Throws Error{kInvalidInput} on a size mismatch or non-increasing ids.
graph::MsfResult minimum_spanning_forest_of_candidates(
    const graph::EdgeList& candidates,
    std::span<const graph::EdgeId> candidate_ids, const MsfOptions& opts = {});

/// Team-reusing variant of the candidate-set entry point (see the
/// ThreadTeam overload of minimum_spanning_forest for the contract).
graph::MsfResult minimum_spanning_forest_of_candidates(
    ThreadTeam& team, const graph::EdgeList& candidates,
    std::span<const graph::EdgeId> candidate_ids, const MsfOptions& opts = {});

/// Entry points taking an existing thread team (reused across calls; the
/// team's size is the p of the run).  These are what the dispatcher calls.
graph::MsfResult bor_el_msf(ThreadTeam& team, const graph::EdgeList& g,
                            const MsfOptions& opts = {});
graph::MsfResult bor_al_msf(ThreadTeam& team, const graph::EdgeList& g,
                            const MsfOptions& opts = {});
graph::MsfResult bor_alm_msf(ThreadTeam& team, const graph::EdgeList& g,
                             const MsfOptions& opts = {});
graph::MsfResult bor_fal_msf(ThreadTeam& team, const graph::EdgeList& g,
                             const MsfOptions& opts = {});
graph::MsfResult mst_bc_msf(ThreadTeam& team, const graph::EdgeList& g,
                            const MsfOptions& opts = {});

/// Kruskal with a parallel sample sort of the edge array (the union-find
/// scan stays sequential) — the natural "just parallelize the sort" baseline
/// that the paper's algorithms are implicitly measured against.
graph::MsfResult par_kruskal_msf(ThreadTeam& team, const graph::EdgeList& g,
                                 const MsfOptions& opts = {});

/// The auto-tuned champion pipeline (the `solve` default): Bor-EL's edge
/// list under deferred compaction, choosing per iteration between deferring
/// (label composition only), the radix hash-map dedup, and a sort compact,
/// from the measured live fraction and the working-set size.  Falls back to
/// Bor-FAL when the packed find-min path is unavailable (m > 2^31 or a
/// pinned FindMinMode::kScan).  Forests are bit-identical to every other
/// variant.
graph::MsfResult champion_msf(ThreadTeam& team, const graph::EdgeList& g,
                              const MsfOptions& opts = {});

}  // namespace smp::core
