#pragma once

#include <cstddef>
#include <vector>

#include "graph/edge_list.hpp"
#include "graph/msf_result.hpp"
#include "graph/types.hpp"

namespace smp::core {

/// Single-linkage dendrogram over the vertices of a graph, built from its
/// MSF in one Kruskal-ordered union pass (the "Kruskal reconstruction
/// tree").  Single-linkage clustering is exactly MST clustering — the
/// paper's §1 motivates MST with this family of applications (cancer
/// detection, proteomics) — and the dendrogram is its complete output:
/// every cut of the tree at a height yields the clustering at that linkage
/// distance.
///
/// Nodes 0..n-1 are the leaves (input vertices); nodes n..n+k-1 are merge
/// nodes in ascending merge-height order.  Vertices in different components
/// of the input are never merged (the forest case is preserved).
class Dendrogram {
 public:
  /// Builds from a graph's MSF result (edges need not be sorted).
  Dendrogram(graph::VertexId num_vertices, const graph::MsfResult& msf);

  [[nodiscard]] graph::VertexId num_leaves() const { return n_; }
  [[nodiscard]] std::size_t num_merges() const { return merge_height_.size(); }

  /// Height (edge weight) of merge node `n_ + i`.  Non-decreasing in i.
  [[nodiscard]] graph::Weight merge_height(std::size_t i) const {
    return merge_height_[i];
  }

  /// Parent of any node (kInvalidVertex for roots).
  [[nodiscard]] graph::VertexId parent(graph::VertexId node) const {
    return parent_[node];
  }

  /// Cluster labels after cutting all merges with height > `threshold`:
  /// label[v] in [0, k), k returned via the out-param if non-null.
  [[nodiscard]] std::vector<graph::VertexId> cut_at(
      graph::Weight threshold, std::size_t* num_clusters = nullptr) const;

  /// Cluster labels for exactly `k` clusters (undoing the k-1 heaviest
  /// merges of a connected input; with c components, k >= c is required).
  [[nodiscard]] std::vector<graph::VertexId> cut_into(
      std::size_t k, std::size_t* num_clusters = nullptr) const;

 private:
  [[nodiscard]] std::vector<graph::VertexId> labels_keeping(
      std::size_t merges_kept, std::size_t* num_clusters) const;

  graph::VertexId n_ = 0;
  // Tree over n_ + num_merges() nodes.
  std::vector<graph::VertexId> parent_;
  std::vector<graph::Weight> merge_height_;  // ascending
};

}  // namespace smp::core
