#include "core/deferred_el.hpp"
#include "core/find_min.hpp"
#include "core/msf.hpp"

namespace smp::core {

/// Champion: the auto-tuned pipeline and the library default.
///
/// Strategy selection happens at two levels.  Per solve it picks an ENGINE:
/// the Bor-FAL flexible-adjacency-list engine whenever the packed find-min
/// path is available.  BENCH_07 measures why: FAL's find-min is
/// vertex-parallel — each thread scans its vertices' live arc prefixes with
/// the SIMD argmin and no cross-thread writes — while any edge-list engine
/// is edge-parallel and pays an atomic min per arc into shared per-vertex
/// bests.  At density 10 that is 0.94s vs 2.4s of find-min, which no
/// compact-side saving recovers (champion-on-EL measured 1.96x FAL total).
/// The deferred edge-list engine (watermark pruning, hash full-compacts)
/// runs instead when the caller explicitly asks for deferral — an
/// overridden compact_live_threshold or DeferredCompactMode::kOn — keeping
/// every strategy reachable for ablations and tests.  Eager fallback
/// (deferral kOff, which FAL's lazy design cannot express) also routes to
/// Bor-FAL, the paper's strongest variant.
///
/// Per iteration, inside the deferred engine: the measured live-edge
/// fraction decides between deferring (watermark pruning only) and a full
/// compact, and CompactSortMode::kAuto resolves full compacts to the hash
/// dedup (`prefer_hash`) instead of the radix sort.  An explicit
/// --compact-sort still wins, so ablations stay expressible.
///
/// Every path produces the WeightOrder-unique forest, so the champion is
/// bit-identical to all five paper variants.
graph::MsfResult champion_msf(ThreadTeam& team, const graph::EdgeList& g,
                              const MsfOptions& opts) {
  const FindMinMode mode = resolve_find_min_mode(opts.find_min, g.edges.size());
  const bool deferral_requested =
      opts.deferred_compact == DeferredCompactMode::kOn ||
      opts.compact_live_threshold > 0;
  if (mode != FindMinMode::kSimd ||
      opts.deferred_compact == DeferredCompactMode::kOff ||
      !deferral_requested) {
    return bor_fal_msf(team, g, opts);
  }
  static constexpr detail::DeferredElConfig cfg{
      "champion.find-min",       "champion.connect",
      "champion.connect.region", "champion.compact",
      "champion.compact.region", "Champion iteration",
      /*prefer_hash=*/true};
  return detail::deferred_el_msf(team, g, opts, cfg);
}

}  // namespace smp::core
