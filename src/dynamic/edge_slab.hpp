#pragma once

#include <cstdint>
#include <string>

#include "graph/edge_list.hpp"
#include "graph/mmap_file.hpp"
#include "graph/types.hpp"

namespace smp::dynamic {

/// Read-only, mmap-backed slab of WEdge records — the zero-copy base layer
/// a billion-edge EdgeStore sits on (format .slab, written by
/// smpmsf-convert).  Records are the in-memory WEdge layout, so opening a
/// slab costs one mmap plus one validation scan; the store then serves
/// reads straight from the page cache instead of materializing 16 bytes per
/// edge on the heap.
///
/// Layout (native-endian): { "SMPB", u32 version=1, u32 n, u32 pad, u64 m }
/// header (24 bytes, so m and the records stay 8-aligned), then m x
/// WEdge{u32 u, u32 v, f64 w}.
///
/// open() validates the header, the exact file length, and every record
/// against the EdgeStore insertion invariants (no self-loops, endpoints in
/// range, finite weights) — a slab that passes is safe to adopt as store
/// slots without per-access checks.  Every failure throws
/// smp::Error{kInvalidInput} naming the path and the byte offset of the
/// violation.
class EdgeSlab {
 public:
  EdgeSlab() = default;

  [[nodiscard]] static EdgeSlab open(const std::string& path);

  /// Writes `g` as a slab file (converter and test helper).  Performs the
  /// same per-edge validation as open().
  static void write_file(const std::string& path, const graph::EdgeList& g);

  [[nodiscard]] graph::VertexId num_vertices() const { return n_; }
  [[nodiscard]] graph::EdgeId num_edges() const { return m_; }
  [[nodiscard]] const graph::WEdge* edges() const { return edges_; }
  [[nodiscard]] const std::string& path() const { return map_.path(); }

 private:
  graph::MmapFile map_;
  graph::VertexId n_ = 0;
  graph::EdgeId m_ = 0;
  const graph::WEdge* edges_ = nullptr;
};

}  // namespace smp::dynamic
