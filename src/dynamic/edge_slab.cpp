#include "dynamic/edge_slab.hpp"

#include <cmath>
#include <cstring>
#include <fstream>

#include "core/error.hpp"

namespace smp::dynamic {

namespace {

constexpr char kMagic[4] = {'S', 'M', 'P', 'B'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 24;

[[noreturn]] void fail(const std::string& path, const std::string& what,
                       std::uint64_t offset) {
  throw Error(ErrorCode::kInvalidInput, "edge slab " + path + ": " + what +
                                            " at offset " +
                                            std::to_string(offset));
}

void check_record(const std::string& path, const graph::WEdge& e,
                  graph::VertexId n, std::uint64_t offset) {
  if (e.u == e.v) {
    fail(path, "self-loop at vertex " + std::to_string(e.u), offset);
  }
  if (e.u >= n || e.v >= n) {
    fail(path,
         "endpoint out of range (" + std::to_string(e.u) + ", " +
             std::to_string(e.v) + ") with n = " + std::to_string(n),
         offset);
  }
  if (!std::isfinite(e.w)) fail(path, "non-finite weight", offset);
}

}  // namespace

EdgeSlab EdgeSlab::open(const std::string& path) {
  static_assert(sizeof(graph::WEdge) == 16);
  graph::MmapFile map = graph::MmapFile::open(path);
  if (map.size() < kHeaderBytes) {
    fail(path, "short header (" + std::to_string(map.size()) + " bytes)",
         map.size());
  }
  const std::uint8_t* base = map.data();
  if (std::memcmp(base, kMagic, 4) != 0) {
    fail(path, "bad magic (not an SMPB slab)", 0);
  }
  std::uint32_t version, n;
  std::uint64_t m;
  std::memcpy(&version, base + 4, 4);
  std::memcpy(&n, base + 8, 4);
  std::memcpy(&m, base + 16, 8);  // offset 12 is padding: m stays 8-aligned
  if (version != kVersion) fail(path, "unsupported version", 4);
  const std::uint64_t expect =
      kHeaderBytes + m * std::uint64_t{sizeof(graph::WEdge)};
  if (map.size() != expect) {
    fail(path,
         "file size " + std::to_string(map.size()) + " != expected " +
             std::to_string(expect) + " for " + std::to_string(m) +
             " records (truncated or trailing bytes)",
         map.size() < expect ? map.size() : expect);
  }
  EdgeSlab s;
  s.n_ = n;
  s.m_ = m;
  s.edges_ = reinterpret_cast<const graph::WEdge*>(base + kHeaderBytes);
  for (std::uint64_t i = 0; i < m; ++i) {
    check_record(path, s.edges_[i], n,
                 kHeaderBytes + i * sizeof(graph::WEdge));
  }
  s.map_ = std::move(map);
  return s;
}

void EdgeSlab::write_file(const std::string& path, const graph::EdgeList& g) {
  for (std::size_t i = 0; i < g.edges.size(); ++i) {
    check_record(path, g.edges[i], g.num_vertices,
                 kHeaderBytes + i * sizeof(graph::WEdge));
  }
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) {
    throw Error(ErrorCode::kInvalidInput,
                "edge slab " + path + ": cannot open for write");
  }
  const std::uint32_t n = g.num_vertices;
  const std::uint32_t pad = 0;
  const std::uint64_t m = g.edges.size();
  os.write(kMagic, 4);
  os.write(reinterpret_cast<const char*>(&kVersion), 4);
  os.write(reinterpret_cast<const char*>(&n), 4);
  os.write(reinterpret_cast<const char*>(&pad), 4);
  os.write(reinterpret_cast<const char*>(&m), 8);
  os.write(reinterpret_cast<const char*>(g.edges.data()),
           static_cast<std::streamsize>(m * sizeof(graph::WEdge)));
  if (!os) {
    throw Error(ErrorCode::kInvalidInput,
                "edge slab " + path + ": write failed");
  }
}

}  // namespace smp::dynamic
