#include "dynamic/edge_store.hpp"

#include <cmath>
#include <cstring>
#include <string>

#include "core/error.hpp"

namespace smp::dynamic {

using graph::EdgeId;
using graph::EdgeList;
using graph::VertexId;
using graph::WEdge;
using graph::Weight;
using graph::WeightOrder;

void EdgeStore::check_edge(VertexId u, VertexId v, Weight w, VertexId n) {
  if (u == v) {
    throw Error(ErrorCode::kInvalidInput,
                "edge store: self-loop at vertex " + std::to_string(u));
  }
  if (u >= n || v >= n) {
    throw Error(ErrorCode::kInvalidInput,
                "edge store: endpoint out of range (" + std::to_string(u) +
                    ", " + std::to_string(v) + ") with n = " + std::to_string(n));
  }
  if (!std::isfinite(w)) {
    throw Error(ErrorCode::kInvalidInput, "edge store: non-finite weight");
  }
}

EdgeStore::EdgeStore(const EdgeList& g) : n_(g.num_vertices) {
  edges_.reserve(g.edges.size());
  for (const auto& e : g.edges) check_edge(e.u, e.v, e.w, n_);
  edges_ = g.edges;
  dead_.assign(edges_.size(), 0);
  live_ = edges_.size();
}

EdgeStore::EdgeStore(std::shared_ptr<const EdgeSlab> slab)
    : n_(slab->num_vertices()),
      base_(std::move(slab)),
      base_m_(base_->num_edges()) {
  // EdgeSlab::open already enforced the insertion invariants per record, so
  // adoption is O(m) flag bytes, not another validation pass.
  dead_.assign(static_cast<std::size_t>(base_m_), 0);
  live_ = static_cast<std::size_t>(base_m_);
}

EdgeId EdgeStore::insert(VertexId u, VertexId v, Weight w) {
  check_edge(u, v, w, n_);
  const EdgeId id = size();
  edges_.push_back(WEdge{u, v, w});
  dead_.push_back(0);
  ++live_;
  if (pair_index_built_) pair_index_.emplace(pair_key(u, v), id);
  return id;
}

void EdgeStore::erase(EdgeId id) {
  if (!is_live(id)) {
    throw Error(ErrorCode::kInvalidInput,
                "edge store: erase of dead or out-of-range id " +
                    std::to_string(id));
  }
  dead_[static_cast<std::size_t>(id)] = 1;
  --live_;
  if (pair_index_built_) {
    const auto& e = edge(id);
    auto [it, last] = pair_index_.equal_range(pair_key(e.u, e.v));
    for (; it != last; ++it) {
      if (it->second == id) {
        pair_index_.erase(it);
        break;
      }
    }
  }
}

void EdgeStore::ensure_pair_index() const {
  if (pair_index_built_) return;
  pair_index_.reserve(live_);
  for (EdgeId id = 0; id < size(); ++id) {
    if (dead_[static_cast<std::size_t>(id)]) continue;
    const auto& e = edge(id);
    pair_index_.emplace(pair_key(e.u, e.v), id);
  }
  pair_index_built_ = true;
}

std::optional<EdgeId> EdgeStore::find_live(VertexId u, VertexId v) const {
  ensure_pair_index();
  auto [it, last] = pair_index_.equal_range(pair_key(u, v));
  std::optional<EdgeId> best;
  for (; it != last; ++it) {
    const EdgeId id = it->second;
    if (!best) {
      best = id;
      continue;
    }
    const WeightOrder cand{edge(id).w, id};
    const WeightOrder cur{edge(*best).w, *best};
    if (cand < cur) best = id;
  }
  return best;
}

std::vector<EdgeId> EdgeStore::compact() {
  std::vector<EdgeId> remap(static_cast<std::size_t>(size()),
                            graph::kInvalidEdge);
  std::vector<WEdge> kept;
  kept.reserve(live_);
  EdgeId next = 0;
  for (EdgeId id = 0; id < size(); ++id) {
    if (dead_[static_cast<std::size_t>(id)]) continue;
    remap[static_cast<std::size_t>(id)] = next;
    kept.push_back(edge(id));
    ++next;
  }
  // Compaction materializes everything into the owned tail and releases the
  // mmap base (a compacted slab no longer matches its file anyway).
  base_.reset();
  base_m_ = 0;
  edges_ = std::move(kept);
  dead_.assign(edges_.size(), 0);
  dead_.shrink_to_fit();
  live_ = edges_.size();
  // The pair index maps to old ids; cheaper to rebuild lazily than remap.
  pair_index_.clear();
  pair_index_built_ = false;
  return remap;
}

namespace {

template <typename T>
void put(std::string& out, T v) {
  char buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  out.append(buf, sizeof v);
}

template <typename T>
T take(const unsigned char* data, std::size_t size, std::size_t& off,
       const char* what) {
  if (off + sizeof(T) > size) {
    throw Error(ErrorCode::kInvalidInput,
                std::string("edge store restore: truncated ") + what);
  }
  T v;
  std::memcpy(&v, data + off, sizeof v);
  off += sizeof v;
  return v;
}

}  // namespace

void EdgeStore::serialize(std::string& out) const {
  put<std::uint32_t>(out, n_);
  put<std::uint64_t>(out, size());
  for (EdgeId i = 0; i < size(); ++i) {
    const WEdge& e = edge(i);
    put<std::uint32_t>(out, e.u);
    put<std::uint32_t>(out, e.v);
    put<double>(out, e.w);
    put<std::uint8_t>(out,
                      static_cast<std::uint8_t>(dead_[static_cast<std::size_t>(i)]));
  }
}

EdgeStore EdgeStore::restore(const unsigned char* data, std::size_t size,
                             std::size_t* consumed) {
  std::size_t off = 0;
  EdgeStore s(take<std::uint32_t>(data, size, off, "vertex count"));
  const auto slots = take<std::uint64_t>(data, size, off, "slot count");
  // 17 bytes per slot: reject counts the remaining bytes cannot hold before
  // reserving anything.
  if (slots > (size - off) / 17) {
    throw Error(ErrorCode::kInvalidInput,
                "edge store restore: slot count " + std::to_string(slots) +
                    " exceeds the serialized payload");
  }
  s.edges_.reserve(static_cast<std::size_t>(slots));
  s.dead_.reserve(static_cast<std::size_t>(slots));
  for (std::uint64_t i = 0; i < slots; ++i) {
    WEdge e;
    e.u = take<std::uint32_t>(data, size, off, "edge");
    e.v = take<std::uint32_t>(data, size, off, "edge");
    e.w = take<double>(data, size, off, "edge");
    const auto dead = take<std::uint8_t>(data, size, off, "dead flag");
    if (dead > 1) {
      throw Error(ErrorCode::kInvalidInput,
                  "edge store restore: bad dead flag at slot " +
                      std::to_string(i));
    }
    check_edge(e.u, e.v, e.w, s.n_);  // tombstoned slots were once live too
    s.edges_.push_back(e);
    s.dead_.push_back(static_cast<char>(dead));
    if (dead == 0) ++s.live_;
  }
  if (consumed != nullptr) *consumed = off;
  return s;
}

EdgeList EdgeStore::live_graph(std::vector<EdgeId>* out_ids) const {
  EdgeList g(n_);
  g.edges.reserve(live_);
  if (out_ids != nullptr) {
    out_ids->clear();
    out_ids->reserve(live_);
  }
  for (EdgeId id = 0; id < size(); ++id) {
    if (dead_[static_cast<std::size_t>(id)]) continue;
    g.edges.push_back(edge(id));
    if (out_ids != nullptr) out_ids->push_back(id);
  }
  return g;
}

}  // namespace smp::dynamic
