#include "dynamic/dynamic_msf.hpp"

#include <algorithm>
#include <iterator>
#include <string>
#include <utility>

#include "core/connected_components.hpp"
#include "core/error.hpp"

namespace smp::dynamic {

using graph::EdgeId;
using graph::EdgeList;
using graph::MsfResult;
using graph::VertexId;
using graph::WEdge;

DynamicMsf::DynamicMsf(const EdgeList& initial, DynamicMsfOptions opts)
    : store_(initial), opts_(std::move(opts)) {
  // The dispatcher re-validates the graph; this also vets the MsfOptions
  // (threads, bc_base_size, algorithm) once, up front.
  MsfResult r = opts_.team != nullptr
                    ? core::minimum_spanning_forest(*opts_.team, initial,
                                                    opts_.msf)
                    : core::minimum_spanning_forest(initial, opts_.msf);
  forest_ = std::move(r.edge_ids);
  std::sort(forest_.begin(), forest_.end());
  trees_ = r.num_trees;
  recompute_weight();
}

DynamicMsf::DynamicMsf(EdgeStore store, DynamicMsfOptions opts)
    : store_(std::move(store)), opts_(std::move(opts)) {
  // Candidate-set solve over the full live graph: ids come back in store id
  // space, which for a fresh slab store is the identity.  The EdgeList copy
  // live_graph materializes is transient — it dies with this frame while the
  // store keeps serving from its mmap base.
  std::vector<EdgeId> ids;
  const EdgeList live = store_.live_graph(&ids);
  MsfResult r =
      opts_.team != nullptr
          ? core::minimum_spanning_forest_of_candidates(*opts_.team, live, ids,
                                                        opts_.msf)
          : core::minimum_spanning_forest_of_candidates(live, ids, opts_.msf);
  forest_ = std::move(r.edge_ids);
  std::sort(forest_.begin(), forest_.end());
  trees_ = r.num_trees;
  recompute_weight();
}

DynamicMsf::DynamicMsf(VertexId num_vertices, DynamicMsfOptions opts)
    : store_(num_vertices), opts_(std::move(opts)) {
  core::validate_request(EdgeList(num_vertices), opts_.msf);
  trees_ = num_vertices;
}

DynamicMsf::DynamicMsf(EdgeStore store, std::vector<EdgeId> forest,
                       DynamicMsfOptions opts)
    : store_(std::move(store)), opts_(std::move(opts)),
      forest_(std::move(forest)) {
  core::validate_request(EdgeList(store_.num_vertices()), opts_.msf);
  std::sort(forest_.begin(), forest_.end());
  for (std::size_t i = 0; i < forest_.size(); ++i) {
    if (i > 0 && forest_[i] == forest_[i - 1]) {
      throw Error(ErrorCode::kInvalidInput,
                  "restore: duplicate forest id " + std::to_string(forest_[i]));
    }
    if (!store_.is_live(forest_[i])) {
      throw Error(ErrorCode::kInvalidInput,
                  "restore: forest id " + std::to_string(forest_[i]) +
                      " is dead or unknown in the store");
    }
  }
  const auto n = static_cast<std::size_t>(store_.num_vertices());
  if (!forest_.empty() && forest_.size() >= n) {
    throw Error(ErrorCode::kInvalidInput,
                "restore: " + std::to_string(forest_.size()) +
                    " forest edges cannot be acyclic on " + std::to_string(n) +
                    " vertices");
  }
  // A forest with k edges on n vertices has exactly n - k trees.
  trees_ = n - forest_.size();
  recompute_weight();
}

MsfDelta DynamicMsf::apply_batch(std::span<const WEdge> insertions,
                                 std::span<const EdgeId> deletions) {
  // ---- Validate the whole batch before mutating anything (a bad batch
  // must not leave the store half-applied). ----
  for (const auto& e : insertions) store_.validate_edge(e.u, e.v, e.w);
  std::vector<EdgeId> del(deletions.begin(), deletions.end());
  std::sort(del.begin(), del.end());
  for (std::size_t i = 0; i < del.size(); ++i) {
    if (i > 0 && del[i] == del[i - 1]) {
      throw Error(ErrorCode::kInvalidInput,
                  "apply_batch: duplicate deletion of id " +
                      std::to_string(del[i]));
    }
    if (!store_.is_live(del[i])) {
      throw Error(ErrorCode::kInvalidInput,
                  "apply_batch: deletion of dead or unknown id " +
                      std::to_string(del[i]));
    }
  }

  const std::vector<EdgeId> old_forest = forest_;

  // ---- Deletions first: a batch's ids always name pre-batch edges. ----
  for (const EdgeId id : del) store_.erase(id);
  std::vector<EdgeId> retained;
  retained.reserve(forest_.size());
  std::set_difference(forest_.begin(), forest_.end(), del.begin(), del.end(),
                      std::back_inserter(retained));
  const bool forest_cut = retained.size() != forest_.size();

  // ---- Insertions: appended after every existing id. ----
  const EdgeId first_new = store_.size();
  for (const auto& e : insertions) store_.insert(e.u, e.v, e.w);

  // ---- Fast paths that need no solve. ----
  if (insertions.empty() && !forest_cut) {
    // Nothing inserted and only non-tree edges died: each dead edge was the
    // WeightOrder-maximum of a cycle whose other edges all survive, so the
    // forest is unchanged.  (Covers the empty batch too.)
    forest_ = retained;  // == forest_, kept for clarity
    return snapshot_delta(old_forest);
  }

  // ---- Crossover heuristic: a batch touching a large fraction of the
  // graph gains nothing from sparsification — the candidate set approaches
  // the live set while the filtering adds a components pass and a full
  // store scan on top. ----
  const std::size_t live = store_.num_live();
  const std::size_t batch_ops = insertions.size() + del.size();
  const bool scratch =
      static_cast<double>(batch_ops) >=
      opts_.scratch_batch_fraction * static_cast<double>(live);

  EdgeList cand(store_.num_vertices());
  std::vector<EdgeId> ids;
  if (scratch) {
    cand = store_.live_graph(&ids);
  } else if (!forest_cut) {
    // Insertion-only sparsification: MSF(G ∪ B) = MSF(F ∪ B), so the
    // candidate set is ~n−1+|B| edges no matter how large m is.
    ids = retained;
    ids.reserve(retained.size() + insertions.size());
    for (EdgeId id = first_new; id < store_.size(); ++id) ids.push_back(id);
    cand.edges.reserve(ids.size());
    for (const EdgeId id : ids) cand.edges.push_back(store_.edge(id));
  } else {
    // Deletions cut the forest: label the surviving forest components, then
    // one ascending store sweep merges the three candidate groups —
    // retained forest edges, batch insertions, and retained non-tree edges
    // now crossing two components (a retained non-tree edge *within* a
    // component still closes a surviving forest cycle it is the maximum of,
    // so it can never enter the new forest).
    EdgeList fg(store_.num_vertices());
    fg.edges.reserve(retained.size());
    for (const EdgeId id : retained) fg.edges.push_back(store_.edge(id));
    const core::CcResult cc =
        core::connected_components(fg, opts_.msf.threads);

    std::size_t ri = 0;
    for (EdgeId id = 0; id < store_.size(); ++id) {
      if (!store_.is_live(id)) continue;
      bool take = false;
      if (ri < retained.size() && retained[ri] == id) {
        take = true;
        ++ri;
      } else if (id >= first_new) {
        take = true;
      } else {
        const WEdge& e = store_.edge(id);
        take = cc.label[e.u] != cc.label[e.v];
      }
      if (take) {
        ids.push_back(id);
        cand.edges.push_back(store_.edge(id));
      }
    }
  }
  return solve_and_commit(cand, ids, old_forest, scratch);
}

std::vector<EdgeId> DynamicMsf::compact_store() {
  const std::vector<EdgeId> remap = store_.compact();
  // Forest ids are live by definition, so every remap hit is valid; the
  // renumbering is monotone, so the forest stays ascending.
  for (EdgeId& id : forest_) id = remap[static_cast<std::size_t>(id)];
  return remap;
}

MsfDelta DynamicMsf::recompute() {
  const std::vector<EdgeId> old_forest = forest_;
  std::vector<EdgeId> ids;
  const EdgeList live = store_.live_graph(&ids);
  return solve_and_commit(live, ids, old_forest, /*from_scratch=*/true);
}

MsfDelta DynamicMsf::solve_and_commit(const EdgeList& candidates,
                                      const std::vector<EdgeId>& ids,
                                      const std::vector<EdgeId>& old_forest,
                                      bool from_scratch) {
  MsfResult r = opts_.team != nullptr
                    ? core::minimum_spanning_forest_of_candidates(
                          *opts_.team, candidates, ids, opts_.msf)
                    : core::minimum_spanning_forest_of_candidates(
                          candidates, ids, opts_.msf);
  forest_ = std::move(r.edge_ids);
  std::sort(forest_.begin(), forest_.end());
  trees_ = r.num_trees;
  recompute_weight();

  MsfDelta d = snapshot_delta(old_forest);
  d.candidate_edges = candidates.edges.size();
  d.recomputed_from_scratch = from_scratch;
  return d;
}

MsfDelta DynamicMsf::snapshot_delta(
    const std::vector<EdgeId>& old_forest) const {
  MsfDelta d;
  std::set_difference(forest_.begin(), forest_.end(), old_forest.begin(),
                      old_forest.end(), std::back_inserter(d.forest_added));
  std::set_difference(old_forest.begin(), old_forest.end(), forest_.begin(),
                      forest_.end(), std::back_inserter(d.forest_removed));
  d.total_weight = weight_;
  d.num_trees = trees_;
  d.live_edges = store_.num_live();
  return d;
}

void DynamicMsf::recompute_weight() {
  weight_ = 0;
  for (const EdgeId id : forest_) weight_ += store_.edge(id).w;
}

MsfResult DynamicMsf::forest() const {
  MsfResult r;
  r.edge_ids = forest_;
  r.edges.reserve(forest_.size());
  for (const EdgeId id : forest_) r.edges.push_back(store_.edge(id));
  r.total_weight = weight_;
  r.num_trees = trees_;
  return r;
}

}  // namespace smp::dynamic
