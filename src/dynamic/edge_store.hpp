#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dynamic/edge_slab.hpp"
#include "graph/edge_list.hpp"
#include "graph/types.hpp"

namespace smp::dynamic {

/// Mutable edge container backing the batch-dynamic subsystem.
///
/// Storage is two layers: an optional read-only mmap-backed base slab
/// (billion-edge sessions preload one; see EdgeSlab) followed by an owned
/// append-only tail.  Ids are global across both layers, so everything
/// below is layout-agnostic.
///
/// Edges get a *store id* on insertion — their index in the append-only
/// slab — and keep it forever: deletion tombstones the slot instead of
/// compacting, so ids held by callers (forest membership, deltas, update
/// traces) never dangle or get reused.  Ascending store-id order therefore
/// doubles as the repo-wide WeightOrder tie-break order: `live_graph()`
/// materializes live edges ascending, which makes a from-scratch solve on
/// the snapshot resolve weight ties exactly like the incremental solver
/// does (the determinism the test suite asserts).
///
/// Parallel edges are allowed (they are ordinary edges under the total
/// order); `find_live` resolves an endpoint pair to its canonical
/// ⟨weight, store-id⟩-minimal live edge, matching
/// graph::canonicalize_parallel_edges, so delete-by-endpoints trace
/// operations are deterministic.
///
/// Not thread-safe: one writer, external synchronization if shared.
class EdgeStore {
 public:
  EdgeStore() = default;
  explicit EdgeStore(graph::VertexId num_vertices) : n_(num_vertices) {}
  /// Adopts `g` with store ids equal to positions in `g.edges`.
  /// Throws Error{kInvalidInput} on self-loops, out-of-range endpoints or
  /// non-finite weights.
  explicit EdgeStore(const graph::EdgeList& g);
  /// Adopts a validated mmap-backed slab as the base layer: slots
  /// [0, slab->num_edges()) serve reads straight from the mapped file (zero
  /// heap bytes per edge), while later insert()s append to an owned tail —
  /// store-id semantics are identical to the all-owned store.  compact()
  /// and restore() drop the base layer (they materialize owned slots).
  explicit EdgeStore(std::shared_ptr<const EdgeSlab> slab);

  [[nodiscard]] graph::VertexId num_vertices() const { return n_; }
  /// Total slots, live and tombstoned; also the next id to be assigned.
  [[nodiscard]] graph::EdgeId size() const { return base_m_ + edges_.size(); }
  [[nodiscard]] std::size_t num_live() const { return live_; }
  [[nodiscard]] bool is_live(graph::EdgeId id) const {
    return id < size() && !dead_[static_cast<std::size_t>(id)];
  }
  /// The edge in slot `id` (live or tombstoned; id must be < size()).
  [[nodiscard]] const graph::WEdge& edge(graph::EdgeId id) const {
    return id < base_m_
               ? base_->edges()[static_cast<std::size_t>(id)]
               : edges_[static_cast<std::size_t>(id - base_m_)];
  }
  /// Slots served from the mmap-backed base layer (0 = fully owned).
  [[nodiscard]] graph::EdgeId base_size() const { return base_m_; }

  /// Appends a live edge and returns its store id.
  /// Throws Error{kInvalidInput} like the adopting constructor.
  graph::EdgeId insert(graph::VertexId u, graph::VertexId v, graph::Weight w);

  /// The validation insert() would apply, without inserting — lets batch
  /// callers reject a whole batch before mutating anything.
  void validate_edge(graph::VertexId u, graph::VertexId v,
                     graph::Weight w) const {
    check_edge(u, v, w, n_);
  }

  /// Tombstones a live edge.  Throws Error{kInvalidInput} if `id` is out of
  /// range or already dead.
  void erase(graph::EdgeId id);

  /// The canonical live edge with unordered endpoints {u, v}: minimal under
  /// ⟨weight, store-id⟩ among live parallels, or nullopt if none is live.
  /// Builds a pair index lazily on first call (kept incrementally after).
  [[nodiscard]] std::optional<graph::EdgeId> find_live(graph::VertexId u,
                                                       graph::VertexId v) const;

  /// Snapshot of the live edges in ascending store-id order.
  /// `out_ids` (optional) receives the store id of each snapshot position —
  /// strictly increasing, as minimum_spanning_forest_of_candidates requires.
  [[nodiscard]] graph::EdgeList live_graph(
      std::vector<graph::EdgeId>* out_ids = nullptr) const;

  /// Drops every tombstoned slot, renumbering the live edges to
  /// [0, num_live()) in ascending old-id order.  Because the renumbering is
  /// order-preserving, the relative ⟨weight, store-id⟩ total order of the
  /// live edges — the repo-wide WeightOrder tie-break — is unchanged, so a
  /// from-scratch solve after compaction picks the same forest edge for
  /// edge.  Returns the remap table: old id -> new id, kInvalidEdge for
  /// tombstoned slots.  Every id held outside the store is stale afterwards
  /// and must be translated through the table.  Without compaction a
  /// sustained delete workload grows the slab (and every live_graph scan)
  /// without bound; the serving layer calls this when live/size falls below
  /// its threshold.
  std::vector<graph::EdgeId> compact();

  /// Appends the full store state — vertex count, every slot (live *and*
  /// tombstoned, so store ids survive the round trip), dead flags — to
  /// `out` in the fixed little-endian layout the persistence layer
  /// snapshots.  The pair index is derived state and not serialized.
  void serialize(std::string& out) const;

  /// Inverse of serialize(): reconstructs a store from `size` bytes at
  /// `data`, validating structure and every slot like the adopting
  /// constructor (tombstoned slots are exempt from liveness-only checks but
  /// still bounds-checked).  `consumed` (optional) receives the bytes read.
  /// Throws Error{kInvalidInput} on truncated or malformed input.
  static EdgeStore restore(const unsigned char* data, std::size_t size,
                           std::size_t* consumed = nullptr);

 private:
  static void check_edge(graph::VertexId u, graph::VertexId v, graph::Weight w,
                         graph::VertexId n);
  void ensure_pair_index() const;
  static std::uint64_t pair_key(graph::VertexId u, graph::VertexId v) {
    if (u > v) std::swap(u, v);
    return (static_cast<std::uint64_t>(u) << 32) | v;
  }

  graph::VertexId n_ = 0;
  /// Base layer: validated mmap-backed records for ids [0, base_m_).
  /// Shared so snapshot copies of the store share one mapping.
  std::shared_ptr<const EdgeSlab> base_;
  graph::EdgeId base_m_ = 0;
  std::vector<graph::WEdge> edges_;  ///< owned tail: ids [base_m_, size())
  std::vector<char> dead_;  ///< parallel to ALL slots; 1 = tombstoned
  std::size_t live_ = 0;
  /// pair_key -> live store ids, built on first find_live (delete-by-id
  /// workloads never pay for it).
  mutable std::unordered_multimap<std::uint64_t, graph::EdgeId> pair_index_;
  mutable bool pair_index_built_ = false;
};

}  // namespace smp::dynamic
