#pragma once

#include <cstddef>
#include <vector>

#include "graph/types.hpp"

namespace smp::dynamic {

/// What one DynamicMsf::apply_batch changed about the maintained forest.
///
/// Edge ids are *store ids*: stable indices into the owning EdgeStore,
/// assigned at insertion and never reused.  A forest edge deleted by the
/// batch shows up in `forest_removed`; a replacement edge promoted from the
/// non-tree reservoir (or a fresh insertion that entered the forest) shows
/// up in `forest_added`.
struct MsfDelta {
  /// Store ids that entered the forest this batch, ascending.
  std::vector<graph::EdgeId> forest_added;
  /// Store ids that left the forest this batch (deleted or displaced),
  /// ascending.
  std::vector<graph::EdgeId> forest_removed;
  /// Forest weight after the batch: sum over forest edges in ascending
  /// store-id order, so it is bit-identical to the same sum over a
  /// from-scratch solve (which returns the identical edge set).
  graph::Weight total_weight = 0;
  /// Trees in the forest after the batch (isolated vertices count).
  std::size_t num_trees = 0;
  /// Edges in the candidate set handed to the solver (diagnostics: how much
  /// the sparsification shrank the problem versus `live_edges`).
  std::size_t candidate_edges = 0;
  /// Live edges in the store after the batch.
  std::size_t live_edges = 0;
  /// True when the crossover heuristic gave up on filtering and solved the
  /// whole live graph from scratch.
  bool recomputed_from_scratch = false;

  [[nodiscard]] bool changed_forest() const {
    return !forest_added.empty() || !forest_removed.empty();
  }
};

}  // namespace smp::dynamic
