#pragma once

#include <span>
#include <vector>

#include "core/msf.hpp"
#include "dynamic/delta.hpp"
#include "dynamic/edge_store.hpp"
#include "graph/edge_list.hpp"
#include "graph/msf_result.hpp"

namespace smp::dynamic {

struct DynamicMsfOptions {
  /// Backend for every (re)solve: algorithm, threads, seed, budget,
  /// sequential fallback — the full static engine rides along, including
  /// the fused ThreadTeam regions and FaultInjector checkpoints.
  /// Instrumentation out-pointers are honored per solve.
  core::MsfOptions msf;
  /// Crossover heuristic: when a batch touches at least this fraction of
  /// the live edges (insertions + deletions vs. live count), skip the
  /// sparsified candidate construction and recompute on the whole live
  /// graph — at that size the filtered problem approaches the full one and
  /// the filtering scan is pure overhead.  bench_dynamic measures the real
  /// crossover; <= 0 forces every batch to recompute, >= 1 never does.
  double scratch_batch_fraction = 0.25;
  /// Optional persistent thread team for every (re)solve.  When set, solves
  /// run on it (the run's p is team->size(); msf.threads is ignored) instead
  /// of spawning a team per solve — the serving layer shares one pool across
  /// all sessions this way.  Must outlive the DynamicMsf, and the caller
  /// must serialize solves if the team is shared (regions must not nest).
  ThreadTeam* team = nullptr;
};

/// Batch-dynamic minimum spanning forest.
///
/// Owns the current graph (an EdgeStore, ids stable under mutation) and the
/// current forest, and maintains the forest under batches of edge
/// insertions and deletions without solving the full graph each time:
///
///  * Insertions use the sparsification identity MSF(G ∪ B) = MSF(F ∪ B):
///    a non-tree edge of G is the heaviest on a cycle through forest edges,
///    and stays so in any supergraph, so the candidate set is the ~n−1
///    forest edges plus the batch — independent of m.
///  * Deletions drop the dead edges, label the split forest components with
///    the hook-and-jump connected-components pass, and promote candidates
///    from the retained non-tree edges whose endpoints now lie in different
///    components (every other retained non-tree edge still closes a
///    surviving forest cycle it is the maximum of, so it cannot enter).
///  * The candidate set — retained forest ∪ batch insertions ∪ replacement
///    candidates, in ascending store-id order — goes to
///    core::minimum_spanning_forest_of_candidates, so weight ties resolve
///    exactly as a from-scratch run would and the maintained forest is
///    bit-identical (edge ids and weight) to MSF(live graph) after every
///    batch, for every backend and thread count.
///
/// Not thread-safe (one writer); the solve itself parallelizes internally
/// per DynamicMsfOptions::msf.threads.
class DynamicMsf {
 public:
  /// Starts from `initial` (store ids = positions in initial.edges) and
  /// solves it once with the configured backend.
  explicit DynamicMsf(const graph::EdgeList& initial,
                      DynamicMsfOptions opts = {});
  /// Starts from an edgeless graph on `num_vertices` vertices.
  explicit DynamicMsf(graph::VertexId num_vertices,
                      DynamicMsfOptions opts = {});
  /// Starts from an adopted store (typically slab-backed, see
  /// EdgeStore(shared_ptr<const EdgeSlab>)) and solves its live graph once.
  /// The transient solve copy is released afterwards; the maintained graph
  /// keeps serving reads from the store's mmap base.
  explicit DynamicMsf(EdgeStore store, DynamicMsfOptions opts = {});

  /// Restores a previously maintained state without solving: adopts `store`
  /// as-is and `forest` as the committed forest (store ids, any order; they
  /// are sorted here).  Used by the persistence layer to rebuild a session
  /// from a snapshot — the forest was bit-identical to MSF(live graph) when
  /// snapshotted, so no recompute is needed.  Validates that every forest id
  /// is live, that ids are unique, and that the edge count is consistent
  /// with a forest (<= n - 1); throws Error{kInvalidInput} otherwise.
  DynamicMsf(EdgeStore store, std::vector<graph::EdgeId> forest,
             DynamicMsfOptions opts = {});

  /// Applies one batch: `deletions` are store ids that must be live at
  /// batch entry (deletions are processed first, so a batch cannot delete
  /// its own insertions) and batch-unique; `insertions` are new edges
  /// validated like EdgeStore::insert.  Throws Error{kInvalidInput} before
  /// any mutation on a bad batch.  Returns what changed.
  MsfDelta apply_batch(std::span<const graph::WEdge> insertions,
                       std::span<const graph::EdgeId> deletions);

  /// Solves the whole live graph from scratch and commits the result.
  /// Exception semantics of apply_batch: if the *solver* fails mid-batch
  /// (budget cancellation, deadline, OOM with fallback disabled), the store
  /// mutations persist but the forest is stale — call recompute() to repair
  /// before trusting accessors again.
  MsfDelta recompute();

  /// Compacts the underlying store (drops every tombstoned slot, renumbering
  /// live edges to [0, num_live) in ascending old-id order) and remaps the
  /// maintained forest, which stays bit-identical as an edge *set* — only
  /// the ids change, order-preservingly, so the WeightOrder tie-break order
  /// is untouched.  Returns the remap table (old id -> new id,
  /// graph::kInvalidEdge for dead slots); any store ids held by the caller
  /// (deltas, traces) are stale after this and must be translated through
  /// it.  No solve happens: O(slots) time.
  std::vector<graph::EdgeId> compact_store();

  /// Installs (or clears, with nullptr) the execution budget consulted by
  /// subsequent solves — apply_batch, recompute and nothing else.  The
  /// serving layer points this at a per-request deadline budget for the
  /// duration of one call and clears it right after; the budget must outlive
  /// every solve it covers.  Overrides any budget set in the constructor
  /// options.
  void set_budget(const ExecutionBudget* budget) { opts_.msf.budget = budget; }

  [[nodiscard]] const EdgeStore& store() const { return store_; }
  /// Current forest as ascending store ids.
  [[nodiscard]] const std::vector<graph::EdgeId>& forest_edge_ids() const {
    return forest_;
  }
  /// Forest weight, summed in ascending store-id order (bit-identical to
  /// the same deterministic sum over a from-scratch solve).
  [[nodiscard]] graph::Weight total_weight() const { return weight_; }
  [[nodiscard]] std::size_t num_trees() const { return trees_; }
  /// Materializes the forest as an MsfResult in store-id space.
  [[nodiscard]] graph::MsfResult forest() const;

 private:
  /// Solve `candidates`/`ids`, commit the new forest, and diff it against
  /// `old_forest` into a delta.
  MsfDelta solve_and_commit(const graph::EdgeList& candidates,
                            const std::vector<graph::EdgeId>& ids,
                            const std::vector<graph::EdgeId>& old_forest,
                            bool from_scratch);
  MsfDelta snapshot_delta(const std::vector<graph::EdgeId>& old_forest) const;
  void recompute_weight();

  EdgeStore store_;
  DynamicMsfOptions opts_;
  std::vector<graph::EdgeId> forest_;  ///< ascending store ids
  graph::Weight weight_ = 0;
  std::size_t trees_ = 0;
};

}  // namespace smp::dynamic
