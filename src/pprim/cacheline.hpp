#pragma once

#include <cstddef>
#include <new>

namespace smp {

/// Size used to pad per-thread hot state so neighbouring slots never share a
/// cache line (false sharing is the classic SMP scalability killer the paper
/// engineers around).
inline constexpr std::size_t kCacheLineBytes = 64;

/// A value of T padded out to a whole number of cache lines.
template <class T>
struct alignas(kCacheLineBytes) Padded {
  T value{};

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

}  // namespace smp
