#pragma once

#include <chrono>

namespace smp {

/// Monotonic wall-clock stopwatch used by the benchmark harnesses and the
/// per-step instrumentation of the Borůvka variants (Fig. 2 of the paper).
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds since construction or the last reset().
  [[nodiscard]] double elapsed_s() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace smp
