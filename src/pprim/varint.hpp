#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace smp {

/// LEB128 unsigned varint codec for u32 values, the storage primitive under
/// graph::CompressedCsr's delta-encoded adjacency.  Seven payload bits per
/// byte, least-significant group first, high bit = "continuation"; a u32
/// therefore occupies 1..5 bytes and a 5-byte encoding must keep its final
/// byte <= 0x0F or the value overflows 32 bits.
///
/// Two decode families:
///  * the *trusted* decoders assume the buffer was validated when the
///    compressed graph was built or opened (see varint_validate_region) and
///    run branch-light — the AVX2+BMI2 bulk kernel finds varint boundaries
///    with one movemask per 32 bytes and extracts payload bits with pext;
///  * the *checked* decoders never read past `end` and reject truncation,
///    overlong runs, and u32 overflow — the file readers and the fuzz tests
///    use these.
/// Both families decode the identical value for every well-formed input;
/// the SIMD dispatch is a speed choice, never a semantic one.

inline constexpr std::size_t kMaxVarint32Bytes = 5;

/// Encode `v`, returning the number of bytes written (1..5).  `out` must
/// have room for kMaxVarint32Bytes.
inline std::size_t varint_encode_u32(std::uint32_t v, std::uint8_t* out) {
  std::size_t n = 0;
  while (v >= 0x80u) {
    out[n++] = static_cast<std::uint8_t>(v | 0x80u);
    v >>= 7;
  }
  out[n++] = static_cast<std::uint8_t>(v);
  return n;
}

inline void varint_append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  std::uint8_t buf[kMaxVarint32Bytes];
  std::size_t n = varint_encode_u32(v, buf);
  out.insert(out.end(), buf, buf + n);
}

/// Trusted single-value decode: advances `p` past the varint.
inline std::uint32_t varint_decode_u32(const std::uint8_t*& p) {
  std::uint32_t b = *p++;
  if (b < 0x80u) return b;
  std::uint32_t v = b & 0x7Fu;
  int shift = 7;
  do {
    b = *p++;
    v |= (b & 0x7Fu) << shift;
    shift += 7;
  } while (b >= 0x80u);
  return v;
}

/// Checked single-value decode from [p, end).  On success stores the value
/// and encoded length and returns true; returns false on truncation (ran
/// into `end` mid-varint), overlong encodings (> 5 bytes), or 5-byte
/// encodings whose final byte overflows u32.
inline bool varint_decode_u32_checked(const std::uint8_t* p,
                                      const std::uint8_t* end,
                                      std::uint32_t* value,
                                      std::size_t* len) {
  std::uint64_t v = 0;
  std::size_t n = 0;
  while (true) {
    if (p + n == end) return false;  // truncated
    std::uint8_t b = p[n];
    if (n + 1 == kMaxVarint32Bytes && b > 0x0Fu) return false;  // > 2^32-1
    v |= static_cast<std::uint64_t>(b & 0x7Fu) << (7 * n);
    ++n;
    if (b < 0x80u) break;
    if (n == kMaxVarint32Bytes) return false;  // overlong
  }
  *value = static_cast<std::uint32_t>(v);
  *len = n;
  return true;
}

/// Trusted bulk decode: reads exactly `count` varints starting at `p` and
/// returns the number of bytes consumed.  `end` bounds the *readable*
/// region (the encoded data itself ends earlier or exactly at `end`); the
/// SIMD fast path needs the bound to know when wide loads are safe and
/// falls back to the scalar loop near it.  Dispatches to AVX2+BMI2 when the
/// CPU has both (see pprim/simd.hpp for the dispatch idiom).
std::size_t varint_decode_bulk(const std::uint8_t* p, const std::uint8_t* end,
                               std::size_t count, std::uint32_t* out);

/// Checked bulk decode: like varint_decode_bulk but never reads at or past
/// `end` and validates every encoding.  Returns false (leaving *consumed
/// unspecified) on any malformed or truncated varint.
bool varint_decode_bulk_checked(const std::uint8_t* p, const std::uint8_t* end,
                                std::size_t count, std::uint32_t* out,
                                std::size_t* consumed);

/// Structural validation of a varint region: exactly `count` varints must
/// occupy [p, end) with no trailing bytes, no overlong/overflowing
/// encodings, and no truncation.  This is what makes the trusted decoders
/// safe on mmap'd files — open validates once, every later decode skips the
/// checks.  Returns false on any violation.
bool varint_validate_region(const std::uint8_t* p, const std::uint8_t* end,
                            std::size_t count);

/// Pinned-path variants exposed for the kernel unit tests, mirroring
/// u64_argmin_scalar/_avx2.
std::size_t varint_decode_bulk_scalar(const std::uint8_t* p,
                                      const std::uint8_t* end,
                                      std::size_t count, std::uint32_t* out);
#if defined(__x86_64__) || defined(_M_X64)
/// Call only when the CPU supports AVX2 and BMI2 (the dispatcher checks).
std::size_t varint_decode_bulk_avx2(const std::uint8_t* p,
                                    const std::uint8_t* end, std::size_t count,
                                    std::uint32_t* out);
#endif

}  // namespace smp
