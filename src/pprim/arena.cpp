#include "pprim/arena.hpp"

#include <algorithm>

namespace smp {

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  if (bytes == 0) bytes = 1;
  for (;;) {
    if (current_ < chunks_.size()) {
      Chunk& c = chunks_[current_];
      const auto base = reinterpret_cast<std::uintptr_t>(c.mem.get());
      const std::size_t aligned = (offset_ + (align - 1)) & ~(align - 1);
      // `base` is max_align-aligned from new[]; align relative offsets only.
      if (aligned + bytes <= c.capacity) {
        offset_ = aligned + bytes;
        bytes_in_use_ += bytes;
        return reinterpret_cast<void*>(base + aligned);
      }
      ++current_;
      offset_ = 0;
      continue;
    }
    // Need a fresh chunk; size it to fit oversized requests.
    const std::size_t cap = std::max(chunk_bytes_, bytes + align);
    chunks_.push_back(Chunk{std::make_unique<std::byte[]>(cap), cap});
    bytes_reserved_ += cap;
  }
}

void Arena::reset() {
  current_ = 0;
  offset_ = 0;
  bytes_in_use_ = 0;
}

ThreadArenas::ThreadArenas(int nthreads, std::size_t chunk_bytes) {
  slots_.reserve(static_cast<std::size_t>(nthreads));
  for (int i = 0; i < nthreads; ++i) {
    slots_.emplace_back();
    slots_.back().value = Arena(chunk_bytes);
  }
}

void ThreadArenas::reset_all() {
  for (auto& s : slots_) s.value.reset();
}

}  // namespace smp
