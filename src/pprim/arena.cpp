#include "pprim/arena.hpp"

#include <algorithm>
#include <new>

#include "pprim/fault.hpp"

namespace smp {

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  fault_point("arena.alloc");
  if (bytes == 0) bytes = 1;
  for (;;) {
    if (current_ < chunks_.size()) {
      Chunk& c = chunks_[current_];
      const auto base = reinterpret_cast<std::uintptr_t>(c.mem.get());
      const std::size_t aligned = (offset_ + (align - 1)) & ~(align - 1);
      // `base` is max_align-aligned from new[]; align relative offsets only.
      if (aligned + bytes <= c.capacity) {
        offset_ = aligned + bytes;
        bytes_in_use_ += bytes;
        return reinterpret_cast<void*>(base + aligned);
      }
      ++current_;
      offset_ = 0;
      continue;
    }
    // Need a fresh chunk; size it to fit oversized requests.
    const std::size_t cap = std::max(chunk_bytes_, bytes + align);
    if (shared_reserved_ != nullptr) {
      const std::size_t total =
          shared_reserved_->fetch_add(cap, std::memory_order_relaxed) + cap;
      if (shared_cap_ != 0 && total > shared_cap_) {
        shared_reserved_->fetch_sub(cap, std::memory_order_relaxed);
        throw std::bad_alloc();
      }
    }
    try {
      chunks_.push_back(Chunk{std::make_unique<std::byte[]>(cap), cap});
    } catch (...) {
      // Roll the ledger back so a failed reservation doesn't count forever.
      if (shared_reserved_ != nullptr) {
        shared_reserved_->fetch_sub(cap, std::memory_order_relaxed);
      }
      throw;
    }
    bytes_reserved_ += cap;
  }
}

void Arena::reset() {
  current_ = 0;
  offset_ = 0;
  bytes_in_use_ = 0;
}

ThreadArenas::ThreadArenas(int nthreads, std::size_t chunk_bytes,
                           std::size_t cap_bytes) {
  // Under a cap, never request chunks bigger than the cap itself, or the
  // first reservation would trip it regardless of actual demand.
  if (cap_bytes != 0) chunk_bytes = std::min(chunk_bytes, cap_bytes);
  slots_.reserve(static_cast<std::size_t>(nthreads));
  for (int i = 0; i < nthreads; ++i) {
    slots_.emplace_back();
    slots_.back().value = Arena(chunk_bytes);
    slots_.back().value.set_reservation_ledger(&total_reserved_, cap_bytes);
  }
}

void ThreadArenas::reset_all() {
  for (auto& s : slots_) s.value.reset();
}

}  // namespace smp
