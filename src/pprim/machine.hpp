#pragma once

#include <cstddef>
#include <string>

namespace smp {

/// What the process learned about its host at startup: thread counts (both
/// what the hardware has and what the affinity mask actually grants — CI
/// containers routinely differ), cache geometry, page size, and the SIMD
/// kernel the dispatchers picked.  Detected once and cached; stamped into
/// every bench JSON meta so committed baselines carry the host they were
/// recorded on (BENCH_05/BENCH_09 were recorded 8-threads-oversubscribed on
/// one hardware thread, which silently degenerated the scaling gates — the
/// profile makes that visible to bench_compare.py).
struct MachineProfile {
  unsigned hardware_threads = 0;  ///< std::thread::hardware_concurrency()
  unsigned available_threads = 0;  ///< affinity-mask CPUs (<= hardware)
  std::size_t cache_line_bytes = 0;
  std::size_t l1d_bytes = 0;  ///< 0 = the OS would not say
  std::size_t l2_bytes = 0;
  std::size_t l3_bytes = 0;
  std::size_t page_bytes = 0;
  const char* simd = "";  ///< simd_isa_name()
};

/// The cached profile (probed on first call, thread-safe).
[[nodiscard]] const MachineProfile& machine_profile();

/// The profile as a JSON object, e.g.
/// {"hardware_threads":1,...,"simd":"avx2"} — spliced verbatim into bench
/// meta blocks and stats dumps.
[[nodiscard]] std::string machine_profile_json();

/// What auto_calibrate() measured and (optionally) installed.
struct CalibrationResult {
  std::size_t parallel_for_cutoff = 0;
  std::size_t sample_sort_cutoff = 0;
  std::size_t compact_hash_seq_cutoff = 0;
  double elapsed_s = 0;  ///< wall time the calibration pass itself took
  bool applied = false;  ///< cutoffs were installed via set_*()
};

/// Micro-calibration pass: measures where forking a team actually beats the
/// inline loop and where sample sort beats std::sort ON THIS MACHINE, and
/// derives the hash-dedup sequential gate from the measured L2 size, instead
/// of trusting the compile-time defaults (which were tuned blind — see
/// ROADMAP).  Costs well under a second; deterministic work items (seeded
/// LCG), timing-dependent *thresholds*.  With `apply` the winning cutoffs are
/// installed process-globally through pprim/tuning.hpp; forest results are
/// unaffected by construction (cutoffs only pick execution strategies, never
/// outputs — the bit-identity suite pins this).  On a 1-thread host the
/// parallel cutoffs are pushed high so nothing ever pays fork overhead that
/// cannot be repaid.
CalibrationResult auto_calibrate(bool apply = true);

/// The calibration result as a JSON object for bench meta.
[[nodiscard]] std::string calibration_json(const CalibrationResult& r);

}  // namespace smp
