#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "pprim/cacheline.hpp"
#include "pprim/partition.hpp"
#include "pprim/thread_team.hpp"

namespace smp {

/// Parallel sample sort after Helman & JáJá — the sort that drives Bor-EL's
/// compact-graph step (§2.1 of the paper).
///
/// Phases: (1) each thread sorts a contiguous block; (2) regular oversampling
/// picks p−1 splitters; (3) each thread partitions its sorted block by the
/// splitters and scatters to bucket-major order; (4) each thread sorts its
/// bucket by multiway-merge-equivalent std::sort.  One n-element aux buffer.
template <class T, class Less>
void sample_sort(ThreadTeam& team, std::vector<T>& data, Less less) {
  const std::size_t n = data.size();
  const int p = team.size();
  if (p == 1 || n < 1u << 15) {
    std::sort(data.begin(), data.end(), less);
    return;
  }

  const auto P = static_cast<std::size_t>(p);
  constexpr std::size_t kOversample = 32;
  std::vector<T> samples(P * kOversample);
  std::vector<T> splitters(P - 1);
  std::vector<T> aux(n);
  // counts[t * P + b] = number of elements of thread t falling in bucket b.
  std::vector<std::size_t> counts(P * P, 0);
  // piece_begin[t * (P+1) + b] = start offset of bucket b within t's block.
  std::vector<std::size_t> piece_begin(P * (P + 1), 0);

  team.run([&](TeamCtx& ctx) {
    const auto t = static_cast<std::size_t>(ctx.tid());
    const IndexRange r = block_range(n, ctx.tid(), ctx.nthreads());
    std::sort(data.begin() + static_cast<std::ptrdiff_t>(r.begin),
              data.begin() + static_cast<std::ptrdiff_t>(r.end), less);
    // Regular sampling from the sorted block.
    for (std::size_t s = 0; s < kOversample; ++s) {
      const std::size_t idx =
          r.empty() ? 0 : r.begin + (s * r.size()) / kOversample;
      samples[t * kOversample + s] = data[std::min(idx, n - 1)];
    }
    ctx.barrier();
    if (ctx.tid() == 0) {
      std::sort(samples.begin(), samples.end(), less);
      for (std::size_t b = 1; b < P; ++b) {
        splitters[b - 1] = samples[b * kOversample];
      }
    }
    ctx.barrier();
    // Locate bucket boundaries in this thread's sorted block.
    std::size_t* pb = &piece_begin[t * (P + 1)];
    pb[0] = r.begin;
    for (std::size_t b = 0; b + 1 < P; ++b) {
      const auto it = std::upper_bound(
          data.begin() + static_cast<std::ptrdiff_t>(pb[b]),
          data.begin() + static_cast<std::ptrdiff_t>(r.end), splitters[b], less);
      pb[b + 1] = static_cast<std::size_t>(it - data.begin());
    }
    pb[P] = r.end;
    for (std::size_t b = 0; b < P; ++b) counts[t * P + b] = pb[b + 1] - pb[b];
    ctx.barrier();
    // Serial exclusive scan over P*P counts in bucket-major order (tiny).
    if (ctx.tid() == 0) {
      std::size_t running = 0;
      for (std::size_t b = 0; b < P; ++b) {
        for (std::size_t tt = 0; tt < P; ++tt) {
          const std::size_t c = counts[tt * P + b];
          counts[tt * P + b] = running;
          running += c;
        }
      }
    }
    ctx.barrier();
    // Scatter this thread's pieces to their bucket-major positions.
    for (std::size_t b = 0; b < P; ++b) {
      std::size_t out = counts[t * P + b];
      for (std::size_t i = pb[b]; i < pb[b + 1]; ++i) aux[out++] = std::move(data[i]);
    }
    ctx.barrier();
    // Sort bucket t (its extent is [counts[0*P+t], end-of-bucket)).
    const std::size_t bucket_begin = counts[t];  // counts[0 * P + t]
    const std::size_t bucket_end =
        (t + 1 < P) ? counts[t + 1] : n;  // counts[0 * P + (t+1)] or n
    std::sort(aux.begin() + static_cast<std::ptrdiff_t>(bucket_begin),
              aux.begin() + static_cast<std::ptrdiff_t>(bucket_end), less);
  });
  data.swap(aux);
}

}  // namespace smp
