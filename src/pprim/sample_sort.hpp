#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "pprim/cacheline.hpp"
#include "pprim/partition.hpp"
#include "pprim/thread_team.hpp"
#include "pprim/tuning.hpp"

namespace smp {

/// Team-shared scratch for sample_sort_in_region.  Grow-only across calls,
/// so a fused Borůvka loop allocates the buffers once and reuses them every
/// iteration.  Tid 0 (re)sizes the members inside the region behind a
/// barrier; the other threads only touch them afterwards.
template <class T>
struct SampleSortScratch {
  std::vector<T> samples;
  std::vector<T> splitters;
  std::vector<T> aux;
  /// counts[t * P + b] = number of elements of thread t falling in bucket b.
  std::vector<std::size_t> counts;
  /// piece_begin[t * (P+1) + b] = start offset of bucket b within t's block.
  std::vector<std::size_t> piece_begin;
};

/// Parallel sample sort after Helman & JáJá — the sort that drives Bor-EL's
/// compact-graph step (§2.1 of the paper) — as an in-region primitive: all
/// team threads call it inside an open SPMD region with identical arguments,
/// and it synchronizes through ctx.barrier() instead of forking a region of
/// its own.
///
/// Phases: (1) each thread sorts a contiguous block; (2) regular oversampling
/// picks p−1 splitters; (3) each thread partitions its sorted block by the
/// splitters and scatters to bucket-major order; (4) each thread sorts its
/// bucket.  One n-element aux buffer, owned by the scratch.
///
/// The final barrier publishes the sorted `data`, so on return every thread
/// may read any element.
template <class T, class Less>
void sample_sort_in_region(TeamCtx& ctx, std::vector<T>& data,
                           SampleSortScratch<T>& s, Less less) {
  const std::size_t n = data.size();
  const int p = ctx.nthreads();
  if (p == 1 || n < sample_sort_cutoff()) {
    if (ctx.tid() == 0) std::sort(data.begin(), data.end(), less);
    if (p > 1) ctx.barrier();
    return;
  }

  const auto P = static_cast<std::size_t>(p);
  constexpr std::size_t kOversample = 32;
  if (ctx.tid() == 0) {
    s.samples.resize(P * kOversample);
    s.splitters.resize(P - 1);
    s.aux.resize(n);
    s.counts.assign(P * P, 0);
    s.piece_begin.assign(P * (P + 1), 0);
  }
  ctx.barrier();

  const auto t = static_cast<std::size_t>(ctx.tid());
  const IndexRange r = block_range(n, ctx.tid(), ctx.nthreads());
  std::sort(data.begin() + static_cast<std::ptrdiff_t>(r.begin),
            data.begin() + static_cast<std::ptrdiff_t>(r.end), less);
  // Regular sampling from the sorted block.
  for (std::size_t i = 0; i < kOversample; ++i) {
    const std::size_t idx = r.empty() ? 0 : r.begin + (i * r.size()) / kOversample;
    s.samples[t * kOversample + i] = data[std::min(idx, n - 1)];
  }
  ctx.barrier();
  if (ctx.tid() == 0) {
    std::sort(s.samples.begin(), s.samples.end(), less);
    for (std::size_t b = 1; b < P; ++b) {
      s.splitters[b - 1] = s.samples[b * kOversample];
    }
  }
  ctx.barrier();
  // Locate bucket boundaries in this thread's sorted block.
  std::size_t* pb = &s.piece_begin[t * (P + 1)];
  pb[0] = r.begin;
  for (std::size_t b = 0; b + 1 < P; ++b) {
    const auto it = std::upper_bound(
        data.begin() + static_cast<std::ptrdiff_t>(pb[b]),
        data.begin() + static_cast<std::ptrdiff_t>(r.end), s.splitters[b], less);
    pb[b + 1] = static_cast<std::size_t>(it - data.begin());
  }
  pb[P] = r.end;
  for (std::size_t b = 0; b < P; ++b) s.counts[t * P + b] = pb[b + 1] - pb[b];
  ctx.barrier();
  // Serial exclusive scan over P*P counts in bucket-major order (tiny).
  if (ctx.tid() == 0) {
    std::size_t running = 0;
    for (std::size_t b = 0; b < P; ++b) {
      for (std::size_t tt = 0; tt < P; ++tt) {
        const std::size_t c = s.counts[tt * P + b];
        s.counts[tt * P + b] = running;
        running += c;
      }
    }
  }
  ctx.barrier();
  // Scatter this thread's pieces to their bucket-major positions.
  for (std::size_t b = 0; b < P; ++b) {
    std::size_t out = s.counts[t * P + b];
    for (std::size_t i = pb[b]; i < pb[b + 1]; ++i) s.aux[out++] = std::move(data[i]);
  }
  ctx.barrier();
  // Sort bucket t (its extent is [counts[0*P+t], end-of-bucket)).
  const std::size_t bucket_begin = s.counts[t];  // counts[0 * P + t]
  const std::size_t bucket_end =
      (t + 1 < P) ? s.counts[t + 1] : n;  // counts[0 * P + (t+1)] or n
  std::sort(s.aux.begin() + static_cast<std::ptrdiff_t>(bucket_begin),
            s.aux.begin() + static_cast<std::ptrdiff_t>(bucket_end), less);
  ctx.barrier();
  if (ctx.tid() == 0) data.swap(s.aux);
  ctx.barrier();
}

/// Fork-join wrapper around sample_sort_in_region: one SPMD region for the
/// whole sort.  Callers already inside a region must use the in-region
/// variant instead (regions do not nest).
template <class T, class Less>
void sample_sort(ThreadTeam& team, std::vector<T>& data, Less less) {
  if (team.size() == 1 || data.size() < sample_sort_cutoff()) {
    std::sort(data.begin(), data.end(), less);
    return;
  }
  SampleSortScratch<T> scratch;
  team.run([&](TeamCtx& ctx) { sample_sort_in_region(ctx, data, scratch, less); });
}

}  // namespace smp
