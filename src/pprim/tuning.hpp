#pragma once

#include <atomic>
#include <cstddef>

namespace smp {

/// Central home of the sequential-cutoff constants that used to be hard-coded
/// in the primitives.  The values are process-global so every primitive (and
/// every team) sees the same thresholds; benches override them through
/// ScopedTuning (or MsfOptions) for cutoff-ablation runs.
///
/// Changing a cutoff while a parallel region is executing is not supported:
/// the primitives read these on every thread to pick the sequential-vs-
/// parallel branch, and the branch must be uniform across the team.

/// Below this many items, parallel_for runs inline on the calling thread.
inline constexpr std::size_t kDefaultParallelForCutoff = 2048;
/// Below this many items, sample_sort degrades to a single std::sort.
inline constexpr std::size_t kDefaultSampleSortCutoff = std::size_t{1} << 15;

/// Find-min contention cutoffs (see core/find_min.hpp).  With at least this
/// many threads AND at most kFindMinLocalBestCutoff supervertices, the
/// packed-key find-min switches from shared atomic write-mins to per-thread
/// local-best arrays merged by a for_range reduce in the same region: late
/// Borůvka iterations leave a handful of best[s] slots that every thread
/// would otherwise hammer through the coherence protocol.  Both bounds must
/// hold — small teams don't contend enough to amortize the p·cur_n merge,
/// and large cur_n makes the per-thread arrays themselves the cost.
/// Overridable per solve via MsfOptions::find_min_local_best_{threads,cutoff}
/// (0 = these defaults), like the compact-sort cutoffs.
inline constexpr int kFindMinLocalBestThreads = 4;
inline constexpr std::size_t kFindMinLocalBestCutoff = 4096;
/// Vertices per dynamic-scheduling chunk of the Bor-FAL prune+scan loop.
/// Live-arc counts skew heavily after a few contractions, so static blocks
/// load-imbalance; 64 vertices keeps the cursor traffic negligible.
/// Overridable via MsfOptions::find_min_prune_block.
inline constexpr std::size_t kFindMinPruneBlock = 64;

/// Compact-graph deferral knobs (see core/deferred_el.hpp).  The deferred
/// engines skip the full dedup/relabel while the live-edge fraction (arcs
/// that survived self-loop/dominated-parallel pruning divided by the arc
/// array size) stays at or above this threshold; below it, a full compact
/// pays for itself by shrinking every later scan.  Overridable per solve via
/// MsfOptions::compact_live_threshold.
inline constexpr double kDefaultCompactLiveThreshold = 0.25;
/// Arcs per dynamic-scheduling chunk of the deferred find-min scan; one
/// chunk is also the exclusive ownership unit that makes dominated-parallel
/// kill slots stable (see deferred_el.cpp).  Overridable via
/// MsfOptions::compact_chunk.
inline constexpr std::size_t kDefaultDeferredChunkArcs = 4096;
/// Below this many live arcs a full compact is never worth the relabel
/// traffic — the deferred engines just keep scanning the remnant in place.
inline constexpr std::size_t kDeferredMinCompactArcs = std::size_t{1} << 14;
/// Below this many elements the radix hash-map dedup runs single-threaded on
/// tid 0.  The gate reads the input size ONLY (never the team size) so the
/// dedup output is bit-identical across p.
inline constexpr std::size_t kCompactHashSeqCutoff = std::size_t{1} << 13;
/// Target elements per hash bucket: at 2x slots a bucket's probe table is
/// ~8k slots of 8-byte keys plus values, comfortably L2-resident.
inline constexpr std::size_t kCompactHashBucketTarget = 4096;
/// log2 size of the per-thread direct-mapped dominated-parallel filter used
/// by the deferred find-min scan (2^11 entries x 24 B = 48 KiB, L1-adjacent).
inline constexpr int kDominatedTableBits = 11;

namespace tuning_detail {
inline std::atomic<std::size_t> g_parallel_for_cutoff{kDefaultParallelForCutoff};
inline std::atomic<std::size_t> g_sample_sort_cutoff{kDefaultSampleSortCutoff};
inline std::atomic<std::size_t> g_compact_hash_seq_cutoff{
    kCompactHashSeqCutoff};
}  // namespace tuning_detail

[[nodiscard]] inline std::size_t parallel_for_cutoff() {
  return tuning_detail::g_parallel_for_cutoff.load(std::memory_order_relaxed);
}
[[nodiscard]] inline std::size_t sample_sort_cutoff() {
  return tuning_detail::g_sample_sort_cutoff.load(std::memory_order_relaxed);
}
/// Runtime value of the radix hash-map's sequential gate (see
/// kCompactHashSeqCutoff).  Still read per input size only, never per team
/// size, so dedup output stays bit-identical across p for any fixed setting;
/// machine auto-calibration re-derives it from the measured L2 size.
[[nodiscard]] inline std::size_t compact_hash_seq_cutoff() {
  return tuning_detail::g_compact_hash_seq_cutoff.load(
      std::memory_order_relaxed);
}

inline void set_parallel_for_cutoff(std::size_t n) {
  tuning_detail::g_parallel_for_cutoff.store(n, std::memory_order_relaxed);
}
inline void set_sample_sort_cutoff(std::size_t n) {
  tuning_detail::g_sample_sort_cutoff.store(n, std::memory_order_relaxed);
}
inline void set_compact_hash_seq_cutoff(std::size_t n) {
  tuning_detail::g_compact_hash_seq_cutoff.store(n, std::memory_order_relaxed);
}

/// RAII override of the global cutoffs.  A zero value means "keep the current
/// setting" (the MsfOptions convention); the previous values are restored on
/// destruction, so nested solves with different overrides compose.
class ScopedTuning {
 public:
  ScopedTuning(std::size_t pf_cutoff, std::size_t ss_cutoff,
               std::size_t hash_seq_cutoff = 0)
      : saved_pf_(parallel_for_cutoff()),
        saved_ss_(sample_sort_cutoff()),
        saved_hash_(compact_hash_seq_cutoff()) {
    if (pf_cutoff != 0) set_parallel_for_cutoff(pf_cutoff);
    if (ss_cutoff != 0) set_sample_sort_cutoff(ss_cutoff);
    if (hash_seq_cutoff != 0) set_compact_hash_seq_cutoff(hash_seq_cutoff);
  }
  ~ScopedTuning() {
    set_parallel_for_cutoff(saved_pf_);
    set_sample_sort_cutoff(saved_ss_);
    set_compact_hash_seq_cutoff(saved_hash_);
  }

  ScopedTuning(const ScopedTuning&) = delete;
  ScopedTuning& operator=(const ScopedTuning&) = delete;

 private:
  std::size_t saved_pf_;
  std::size_t saved_ss_;
  std::size_t saved_hash_;
};

}  // namespace smp
