#pragma once

#include <cstddef>
#include <vector>

#include "pprim/cacheline.hpp"
#include "pprim/partition.hpp"
#include "pprim/thread_team.hpp"

namespace smp {

/// Parallel reduction: combine(fn(i)) over i in [0, n) with an associative,
/// commutative `combine` and identity `init`.  Per-thread partials are
/// cache-line padded; the final fold is serial over p values.
template <class T, class Map, class Combine>
T parallel_reduce(ThreadTeam& team, std::size_t n, T init, Map&& map,
                  Combine&& combine) {
  if (team.size() == 1 || n < 4096) {
    T acc = init;
    for (std::size_t i = 0; i < n; ++i) acc = combine(acc, map(i));
    return acc;
  }
  std::vector<Padded<T>> partial(static_cast<std::size_t>(team.size()), Padded<T>{init});
  team.run([&](TeamCtx& ctx) {
    T acc = init;
    const IndexRange r = block_range(n, ctx.tid(), ctx.nthreads());
    for (std::size_t i = r.begin; i < r.end; ++i) acc = combine(acc, map(i));
    partial[static_cast<std::size_t>(ctx.tid())].value = acc;
  });
  T acc = init;
  for (const auto& p : partial) acc = combine(acc, p.value);
  return acc;
}

/// Convenience sum.
template <class T, class Map>
T parallel_sum(ThreadTeam& team, std::size_t n, Map&& map) {
  return parallel_reduce(team, n, T{}, std::forward<Map>(map),
                         [](T a, T b) { return a + b; });
}

}  // namespace smp
