#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "pprim/cacheline.hpp"
#include "pprim/partition.hpp"
#include "pprim/thread_team.hpp"

namespace smp {

/// In-place exclusive prefix sum; returns the grand total.
template <class T>
T exclusive_scan_seq(std::span<T> data) {
  T running{};
  for (auto& x : data) {
    const T v = x;
    x = running;
    running += v;
  }
  return running;
}

/// Team-shared scratch for prefix_sum_in_region: one cache-line-padded block
/// total per thread plus one slot for the grand total.  Grow-only, so one
/// instance serves every scan of a fused iteration.  ensure() is not
/// thread-safe: call it on the orchestrating thread before the region, or on
/// tid 0 followed by a barrier.
template <class T>
struct ScanScratch {
  std::vector<Padded<T>> block_total;

  void ensure(int nthreads) {
    const auto need = static_cast<std::size_t>(nthreads) + 1;
    if (block_total.size() < need) block_total.resize(need);
  }
};

/// In-region two-pass exclusive prefix sum.  All team threads must call it
/// with identical arguments; it synchronizes internally and its last barrier
/// publishes the fully scanned array, so on return every thread may read any
/// element of `data`.  Returns the grand total on every thread.
///
/// The sequential cutoff scales with the team (p·128) rather than reusing
/// the fork-cost-driven team-level cutoff: inside a region a scan only costs
/// barriers, so even small arrays (e.g. radix count matrices) profit.
template <class T>
T prefix_sum_in_region(TeamCtx& ctx, std::span<T> data, ScanScratch<T>& scratch) {
  const std::size_t n = data.size();
  const int p = ctx.nthreads();
  const auto P = static_cast<std::size_t>(p);
  Padded<T>* bt = scratch.block_total.data();

  if (p == 1 || n < P * 128) {
    if (ctx.tid() == 0) bt[P].value = exclusive_scan_seq(data);
    ctx.barrier();
    return bt[P].value;
  }

  const IndexRange r = block_range(n, ctx.tid(), ctx.nthreads());
  T sum{};
  for (std::size_t i = r.begin; i < r.end; ++i) sum += data[i];
  bt[static_cast<std::size_t>(ctx.tid())].value = sum;
  ctx.barrier();
  if (ctx.tid() == 0) {
    T running{};
    for (std::size_t t = 0; t <= P; ++t) {
      T v{};
      if (t < P) v = bt[t].value;
      bt[t].value = running;
      running += v;
    }
  }
  ctx.barrier();
  T running = bt[static_cast<std::size_t>(ctx.tid())].value;
  for (std::size_t i = r.begin; i < r.end; ++i) {
    const T v = data[i];
    data[i] = running;
    running += v;
  }
  ctx.barrier();
  return bt[P].value;
}

/// Two-pass parallel exclusive prefix sum (the workhorse behind every
/// compaction/scatter in the Borůvka variants).  `data` is replaced by its
/// exclusive prefix sums; returns the grand total.
template <class T>
T exclusive_scan(ThreadTeam& team, std::span<T> data) {
  const std::size_t n = data.size();
  if (team.size() == 1 || n < 1u << 14) return exclusive_scan_seq(data);

  const int p = team.size();
  // Slot p holds the grand total after the serial scan of block sums.
  std::vector<Padded<T>> block_total(static_cast<std::size_t>(p) + 1);
  team.run([&](TeamCtx& ctx) {
    const IndexRange r = block_range(n, ctx.tid(), ctx.nthreads());
    T sum{};
    for (std::size_t i = r.begin; i < r.end; ++i) sum += data[i];
    block_total[static_cast<std::size_t>(ctx.tid())].value = sum;
    ctx.barrier();
    if (ctx.tid() == 0) {
      T running{};
      for (int t = 0; t <= p; ++t) {
        T v{};
        if (t < p) v = block_total[static_cast<std::size_t>(t)].value;
        block_total[static_cast<std::size_t>(t)].value = running;
        running += v;
      }
    }
    ctx.barrier();
    T running = block_total[static_cast<std::size_t>(ctx.tid())].value;
    for (std::size_t i = r.begin; i < r.end; ++i) {
      const T v = data[i];
      data[i] = running;
      running += v;
    }
  });
  return block_total[static_cast<std::size_t>(p)].value;
}

}  // namespace smp
