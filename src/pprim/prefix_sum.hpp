#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "pprim/cacheline.hpp"
#include "pprim/partition.hpp"
#include "pprim/thread_team.hpp"

namespace smp {

/// In-place exclusive prefix sum; returns the grand total.
template <class T>
T exclusive_scan_seq(std::span<T> data) {
  T running{};
  for (auto& x : data) {
    const T v = x;
    x = running;
    running += v;
  }
  return running;
}

/// Two-pass parallel exclusive prefix sum (the workhorse behind every
/// compaction/scatter in the Borůvka variants).  `data` is replaced by its
/// exclusive prefix sums; returns the grand total.
template <class T>
T exclusive_scan(ThreadTeam& team, std::span<T> data) {
  const std::size_t n = data.size();
  if (team.size() == 1 || n < 1u << 14) return exclusive_scan_seq(data);

  const int p = team.size();
  // Slot p holds the grand total after the serial scan of block sums.
  std::vector<Padded<T>> block_total(static_cast<std::size_t>(p) + 1);
  team.run([&](TeamCtx& ctx) {
    const IndexRange r = block_range(n, ctx.tid(), ctx.nthreads());
    T sum{};
    for (std::size_t i = r.begin; i < r.end; ++i) sum += data[i];
    block_total[static_cast<std::size_t>(ctx.tid())].value = sum;
    ctx.barrier();
    if (ctx.tid() == 0) {
      T running{};
      for (int t = 0; t <= p; ++t) {
        T v{};
        if (t < p) v = block_total[static_cast<std::size_t>(t)].value;
        block_total[static_cast<std::size_t>(t)].value = running;
        running += v;
      }
    }
    ctx.barrier();
    T running = block_total[static_cast<std::size_t>(ctx.tid())].value;
    for (std::size_t i = r.begin; i < r.end; ++i) {
      const T v = data[i];
      data[i] = running;
      running += v;
    }
  });
  return block_total[static_cast<std::size_t>(p)].value;
}

}  // namespace smp
