#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "pprim/cacheline.hpp"
#include "pprim/partition.hpp"
#include "pprim/prefix_sum.hpp"
#include "pprim/thread_team.hpp"

namespace smp {

/// Digit width of the LSD radix sort: 8 bits per pass, 256 buckets.
inline constexpr int kRadixBits = 8;
inline constexpr std::size_t kRadixBuckets = std::size_t{1} << kRadixBits;
/// Stride between per-thread count slabs: one cache line of padding after
/// the 256 counters so neighbouring threads' slabs never share a line.
inline constexpr std::size_t kRadixSlabStride =
    kRadixBuckets + kCacheLineBytes / sizeof(std::uint64_t);
/// Below this many elements a single-threaded sort on tid 0 beats the
/// per-pass barrier traffic of the parallel path.
inline constexpr std::size_t kRadixSeqCutoff = std::size_t{1} << 13;
/// At or above this team size the 256·p cross-thread scan is itself done
/// with the parallel prefix-sum primitive instead of serialized on tid 0.
inline constexpr int kRadixParallelScanThreads = 8;

/// Team-shared scratch for radix_sort_in_region.  Grow-only across calls so
/// a fused Borůvka loop reuses the buffers every iteration.  After a sort
/// returns, `keys[i]` still holds the key of `data[i]` — callers that need
/// the sorted keys (e.g. compact-graph's duplicate-group detection) can read
/// them instead of recomputing key().
template <class T>
struct RadixSortScratch {
  std::vector<T> aux;
  std::vector<std::uint64_t> keys;      ///< key cache, permuted along with data
  std::vector<std::uint64_t> keys_aux;
  /// Thread-major padded count slabs: thread t owns [t*kRadixSlabStride,
  /// t*kRadixSlabStride + kRadixBuckets), so the count and scatter passes
  /// never write another thread's cache lines (the old bucket-major
  /// counts[b*p + t] layout interleaved all threads within each line).
  std::vector<std::uint64_t> counts;
  /// Bucket-major (b*p + t) staging area for the cross-thread scan.
  std::vector<std::uint64_t> scan;
  std::vector<Padded<std::uint64_t>> or_partial;
  ScanScratch<std::uint64_t> scan_scratch;
  std::uint64_t key_or = 0;  ///< published by tid 0 behind a barrier
};

/// Parallel LSD radix sort by a 64-bit unsigned key, 8 bits per pass, as an
/// in-region primitive: all team threads call it inside an open SPMD region
/// with identical arguments; synchronization is ctx.barrier() only.
///
/// Stable.  Passes over all-zero high bytes are skipped, so sorting keys
/// that only occupy k bits costs ceil(k/8) scatters.  `key` is evaluated
/// exactly once per element on the parallel path: the keys are cached up
/// front and scattered alongside the data each pass.
///
/// The final barrier publishes the sorted `data` (and `s.keys`), so on
/// return every thread may read any element.
template <class T, class KeyFn>
void radix_sort_in_region(TeamCtx& ctx, std::vector<T>& data,
                          RadixSortScratch<T>& s, KeyFn&& key) {
  const std::size_t n = data.size();
  const int p = ctx.nthreads();
  const auto P = static_cast<std::size_t>(p);
  const auto t = static_cast<std::size_t>(ctx.tid());

  if (p == 1 || n < kRadixSeqCutoff) {
    // Entry barrier: every thread has read data's header (the size check
    // above) before tid 0 starts mutating the vector below.
    if (p > 1) ctx.barrier();
    if (ctx.tid() == 0) {
      s.keys.resize(n);
      for (std::size_t i = 0; i < n; ++i) s.keys[i] = key(data[i]);
      // Sort an index permutation so each key() is still computed once.
      std::vector<std::uint32_t> perm(n);
      for (std::size_t i = 0; i < n; ++i) perm[i] = static_cast<std::uint32_t>(i);
      std::stable_sort(perm.begin(), perm.end(),
                       [&](std::uint32_t a, std::uint32_t b) {
                         return s.keys[a] < s.keys[b];
                       });
      s.aux.resize(n);
      s.keys_aux.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        s.aux[i] = std::move(data[perm[i]]);
        s.keys_aux[i] = s.keys[perm[i]];
      }
      data.swap(s.aux);
      s.keys.swap(s.keys_aux);
    }
    if (p > 1) ctx.barrier();
    return;
  }

  if (ctx.tid() == 0) {
    s.aux.resize(n);
    s.keys.resize(n);
    s.keys_aux.resize(n);
    s.counts.resize(P * kRadixSlabStride);
    s.scan.resize(kRadixBuckets * P);
    s.or_partial.resize(P);
    s.scan_scratch.ensure(p);
  }
  ctx.barrier();

  const IndexRange r = block_range(n, ctx.tid(), ctx.nthreads());
  // Cache the keys (the only key() evaluation) and OR-reduce them to find
  // which byte positions actually vary.
  {
    std::uint64_t acc = 0;
    for (std::size_t i = r.begin; i < r.end; ++i) {
      const std::uint64_t k = key(data[i]);
      s.keys[i] = k;
      acc |= k;
    }
    s.or_partial[t].value = acc;
  }
  ctx.barrier();
  if (ctx.tid() == 0) {
    std::uint64_t acc = 0;
    for (std::size_t t2 = 0; t2 < P; ++t2) acc |= s.or_partial[t2].value;
    s.key_or = acc;
  }
  ctx.barrier();
  const std::uint64_t key_or = s.key_or;

  T* src = data.data();
  T* dst = s.aux.data();
  std::uint64_t* ksrc = s.keys.data();
  std::uint64_t* kdst = s.keys_aux.data();
  std::uint64_t* my_counts = s.counts.data() + t * kRadixSlabStride;
  const IndexRange br = block_range(kRadixBuckets, ctx.tid(), ctx.nthreads());
  bool flipped = false;

  for (int shift = 0; shift < 64; shift += kRadixBits) {
    if (((key_or >> shift) & (kRadixBuckets - 1)) == 0) continue;  // constant byte
    std::fill(my_counts, my_counts + kRadixBuckets, 0);
    for (std::size_t i = r.begin; i < r.end; ++i) {
      ++my_counts[(ksrc[i] >> shift) & (kRadixBuckets - 1)];
    }
    ctx.barrier();
    // Transpose the padded slabs into one bucket-major array: scanning that
    // in (bucket, thread) order is what makes the scatter stable.
    for (std::size_t b = br.begin; b < br.end; ++b) {
      for (std::size_t t2 = 0; t2 < P; ++t2) {
        s.scan[b * P + t2] = s.counts[t2 * kRadixSlabStride + b];
      }
    }
    ctx.barrier();
    if (p >= kRadixParallelScanThreads) {
      (void)prefix_sum_in_region(
          ctx, std::span<std::uint64_t>(s.scan.data(), kRadixBuckets * P),
          s.scan_scratch);
    } else {
      if (ctx.tid() == 0) {
        (void)exclusive_scan_seq(
            std::span<std::uint64_t>(s.scan.data(), kRadixBuckets * P));
      }
      ctx.barrier();
    }
    // Transpose back so the scatter cursors live in the thread's own slab.
    for (std::size_t b = br.begin; b < br.end; ++b) {
      for (std::size_t t2 = 0; t2 < P; ++t2) {
        s.counts[t2 * kRadixSlabStride + b] = s.scan[b * P + t2];
      }
    }
    ctx.barrier();
    for (std::size_t i = r.begin; i < r.end; ++i) {
      const std::size_t b = (ksrc[i] >> shift) & (kRadixBuckets - 1);
      const std::uint64_t pos = my_counts[b]++;
      dst[pos] = std::move(src[i]);
      kdst[pos] = ksrc[i];
    }
    ctx.barrier();
    std::swap(src, dst);
    std::swap(ksrc, kdst);
    flipped = !flipped;
  }

  if (ctx.tid() == 0 && flipped) {
    data.swap(s.aux);
    s.keys.swap(s.keys_aux);
  }
  ctx.barrier();
}

/// Fork-join wrapper around radix_sort_in_region: the whole sort — OR pass,
/// every counting pass, every scatter — runs as ONE SPMD region (the old
/// implementation forked one region per byte pass plus one for the OR
/// reduction).  Callers already inside a region must use the in-region
/// variant instead (regions do not nest).
template <class T, class KeyFn>
void radix_sort_by_key(ThreadTeam& team, std::vector<T>& data, KeyFn&& key) {
  if (data.size() < 2) return;
  RadixSortScratch<T> scratch;
  team.run([&](TeamCtx& ctx) {
    radix_sort_in_region(ctx, data, scratch, key);
  });
}

}  // namespace smp
