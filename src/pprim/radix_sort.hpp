#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "pprim/partition.hpp"
#include "pprim/thread_team.hpp"

namespace smp {

/// Parallel LSD radix sort by a 64-bit unsigned key, 8 bits per pass.
///
/// Stable.  Passes over all-zero high bytes are skipped, so sorting keys
/// that only occupy k bits costs ceil(k/8) scatters.  An alternative to
/// sample sort when the key is a machine integer (e.g. packed supervertex
/// pairs in compact-graph); see bench_ablation_radix for the comparison.
///
/// `key` must be pure (called several times per element).
template <class T, class KeyFn>
void radix_sort_by_key(ThreadTeam& team, std::vector<T>& data, KeyFn&& key) {
  const std::size_t n = data.size();
  if (n < 2) return;
  constexpr int kBits = 8;
  constexpr std::size_t kBuckets = std::size_t{1} << kBits;
  const auto p = static_cast<std::size_t>(team.size());

  // Which byte positions actually vary?  OR of all keys tells us.
  std::uint64_t key_or = 0;
  {
    std::vector<std::uint64_t> partial(p, 0);
    team.run([&](TeamCtx& ctx) {
      std::uint64_t acc = 0;
      const IndexRange r = block_range(n, ctx.tid(), ctx.nthreads());
      for (std::size_t i = r.begin; i < r.end; ++i) acc |= key(data[i]);
      partial[static_cast<std::size_t>(ctx.tid())] = acc;
    });
    for (const auto v : partial) key_or |= v;
  }

  std::vector<T> aux(n);
  std::vector<std::uint64_t> counts(kBuckets * p);
  T* src = data.data();
  T* dst = aux.data();
  bool flipped = false;

  for (int shift = 0; shift < 64; shift += kBits) {
    if (((key_or >> shift) & (kBuckets - 1)) == 0) continue;  // constant byte
    std::fill(counts.begin(), counts.end(), 0);
    team.run([&](TeamCtx& ctx) {
      const auto t = static_cast<std::size_t>(ctx.tid());
      const IndexRange r = block_range(n, ctx.tid(), ctx.nthreads());
      for (std::size_t i = r.begin; i < r.end; ++i) {
        const std::size_t b = (key(src[i]) >> shift) & (kBuckets - 1);
        ++counts[b * p + t];
      }
      ctx.barrier();
      if (ctx.tid() == 0) {
        std::uint64_t running = 0;
        for (std::size_t b = 0; b < kBuckets; ++b) {
          for (std::size_t t2 = 0; t2 < p; ++t2) {
            const std::uint64_t c = counts[b * p + t2];
            counts[b * p + t2] = running;
            running += c;
          }
        }
      }
      ctx.barrier();
      for (std::size_t i = r.begin; i < r.end; ++i) {
        const std::size_t b = (key(src[i]) >> shift) & (kBuckets - 1);
        dst[counts[b * p + t]++] = src[i];
      }
    });
    std::swap(src, dst);
    flipped = !flipped;
  }
  if (flipped) data.swap(aux);
}

}  // namespace smp
