#pragma once

#include <cstddef>
#include <cstdint>

namespace smp {

/// Instruction set the 64-bit min-scan kernel dispatches to at runtime.
enum class SimdIsa { kScalar, kAvx2, kNeon };

/// Detected once per process and cached: what u64_argmin() will run.
[[nodiscard]] SimdIsa active_simd_isa();

/// "scalar" | "avx2" | "neon" — stamped into bench records and stats dumps
/// so a committed JSON file says which kernel produced its numbers.
[[nodiscard]] const char* simd_isa_name();

/// Index of the minimum of keys[0..n), ties resolved to the LOWEST index.
///
/// This is the branch-light inner loop of the packed-key find-min step: the
/// keys encode ⟨weight, orig⟩ (see core/find_min.hpp), so the unsigned
/// integer argmin IS the lightest-arc argmin.  All paths (scalar, AVX2,
/// NEON) return the identical index for identical input — the dispatch is a
/// pure speed choice, never a semantic one.  n == 0 returns 0.
[[nodiscard]] std::size_t u64_argmin(const std::uint64_t* keys, std::size_t n);

/// Pinned-path variants, exposed for the kernel unit tests (the scalar one
/// doubles as the dispatcher's fallback).
[[nodiscard]] std::size_t u64_argmin_scalar(const std::uint64_t* keys,
                                            std::size_t n);
#if defined(__x86_64__) || defined(_M_X64)
/// Compiled with a per-function target attribute; call only when
/// active_simd_isa() == SimdIsa::kAvx2 (or under an explicit CPU check).
[[nodiscard]] std::size_t u64_argmin_avx2(const std::uint64_t* keys,
                                          std::size_t n);
#endif
#if defined(__aarch64__)
[[nodiscard]] std::size_t u64_argmin_neon(const std::uint64_t* keys,
                                          std::size_t n);
#endif

}  // namespace smp
