#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace smp {

/// Length at or below which insertion sort beats O(n log n) sorts.  The
/// paper's profiling of Bor-AL found ~80% of per-vertex adjacency lists have
/// 1–100 elements and picks insertion sort for those (§2.2); we adopt the
/// same cutoff (tunable; see bench_ablation_sortcutoff).
inline constexpr std::size_t kInsertionSortCutoff = 100;

/// Classic binary insertion-free insertion sort; optimal for tiny inputs.
template <class T, class Less>
void insertion_sort(std::span<T> a, Less less) {
  for (std::size_t i = 1; i < a.size(); ++i) {
    T key = std::move(a[i]);
    std::size_t j = i;
    while (j > 0 && less(key, a[j - 1])) {
      a[j] = std::move(a[j - 1]);
      --j;
    }
    a[j] = std::move(key);
  }
}

/// Non-recursive (bottom-up) merge sort — the paper's engineering choice for
/// long adjacency lists and for sequential Kruskal, where it beat qsort, GNU
/// quicksort and recursive merge sort on large inputs (§5.2).
///
/// `scratch` must be at least a.size() elements.
template <class T, class Less>
void merge_sort_bottomup(std::span<T> a, std::span<T> scratch, Less less) {
  const std::size_t n = a.size();
  if (n < 2) return;
  // Seed with insertion-sorted runs to cut merge passes.
  constexpr std::size_t kRun = 32;
  for (std::size_t lo = 0; lo < n; lo += kRun) {
    const std::size_t hi = lo + kRun < n ? lo + kRun : n;
    insertion_sort(a.subspan(lo, hi - lo), less);
  }

  T* src = a.data();
  T* dst = scratch.data();
  bool flipped = false;
  for (std::size_t width = kRun; width < n; width *= 2) {
    for (std::size_t lo = 0; lo < n; lo += 2 * width) {
      const std::size_t mid = lo + width < n ? lo + width : n;
      const std::size_t hi = lo + 2 * width < n ? lo + 2 * width : n;
      std::size_t i = lo, j = mid, k = lo;
      while (i < mid && j < hi) dst[k++] = less(src[j], src[i]) ? std::move(src[j++]) : std::move(src[i++]);
      while (i < mid) dst[k++] = std::move(src[i++]);
      while (j < hi) dst[k++] = std::move(src[j++]);
    }
    std::swap(src, dst);
    flipped = !flipped;
  }
  if (flipped) {
    for (std::size_t i = 0; i < n; ++i) a[i] = std::move(src[i]);
  }
}

/// The hybrid the paper uses for Bor-AL's per-list sorts: insertion sort for
/// short lists, non-recursive merge sort otherwise.
template <class T, class Less>
void seq_sort(std::span<T> a, std::span<T> scratch, Less less,
              std::size_t insertion_cutoff = kInsertionSortCutoff) {
  if (a.size() <= insertion_cutoff) {
    insertion_sort(a, less);
  } else {
    merge_sort_bottomup(a, scratch, less);
  }
}

}  // namespace smp
