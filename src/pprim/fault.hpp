#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace smp {

/// What an armed fault point throws when it fires.
enum class FaultKind {
  kBadAlloc,      ///< std::bad_alloc — simulates allocation failure
  kRuntimeError,  ///< std::runtime_error — simulates a logic fault
  kCrash,         ///< std::_Exit(137) — simulates kill -9 at the point (no
                  ///< destructors, no atexit, no buffered-IO flush), the
                  ///< primitive under the crash-point chaos harness
};

/// Deterministic fault injection for tests.
///
/// The library is salted with named fault points — `fault_point("site")` —
/// at the allocator hook of Arena and at the find-min / connect / compact
/// steps of every parallel algorithm (both at the orchestration level and
/// *inside* barrier-synchronized regions, where a throw used to mean either
/// std::terminate or a team deadlocked at the barrier).  Tests arm a site,
/// run the kernel, and observe the failure surface as a catchable error.
///
/// Semantics: `arm(site, kind, skip)` makes the (skip+1)-th hit of `site`
/// throw, exactly once per arm — later hits pass through.  Firing exactly
/// once matters for the barrier tests: one team thread throws while its
/// siblings proceed to the barrier, exercising the poisoned-release path.
///
/// When nothing is armed, a fault point costs one relaxed atomic load.
class FaultInjector {
 public:
  static void arm(std::string_view site, FaultKind kind = FaultKind::kBadAlloc,
                  std::uint64_t skip = 0) {
    State& s = state();
    std::lock_guard<std::mutex> lk(s.mutex);
    for (auto& a : s.armed) {
      if (a->name == site) {
        a->kind = kind;
        a->remaining.store(static_cast<std::int64_t>(skip) + 1,
                           std::memory_order_relaxed);
        a->hits.store(0, std::memory_order_relaxed);
        s.any_armed.store(true, std::memory_order_relaxed);
        return;
      }
    }
    auto site_rec = std::make_unique<Site>();
    site_rec->name = std::string(site);
    site_rec->kind = kind;
    site_rec->remaining.store(static_cast<std::int64_t>(skip) + 1,
                              std::memory_order_relaxed);
    s.armed.push_back(std::move(site_rec));
    s.any_armed.store(true, std::memory_order_relaxed);
  }

  static void disarm_all() {
    State& s = state();
    std::lock_guard<std::mutex> lk(s.mutex);
    s.armed.clear();
    s.any_armed.store(false, std::memory_order_relaxed);
  }

  /// Hits recorded for `site` since it was armed (0 if never armed).
  static std::uint64_t hits(std::string_view site) {
    State& s = state();
    std::lock_guard<std::mutex> lk(s.mutex);
    for (const auto& a : s.armed) {
      if (a->name == site) return a->hits.load(std::memory_order_relaxed);
    }
    return 0;
  }

  /// The body of fault_point(); split so the disarmed fast path inlines.
  static void check(std::string_view site) {
    if (!state().any_armed.load(std::memory_order_relaxed)) return;
    check_slow(site);
  }

 private:
  struct Site {
    std::string name;
    FaultKind kind = FaultKind::kBadAlloc;
    std::atomic<std::int64_t> remaining{0};  ///< fires when this hits 0 exactly
    std::atomic<std::uint64_t> hits{0};
  };

  struct State {
    std::mutex mutex;
    std::vector<std::unique_ptr<Site>> armed;
    std::atomic<bool> any_armed{false};
  };

  static State& state() {
    static State s;
    return s;
  }

  static void check_slow(std::string_view site) {
    State& s = state();
    Site* found = nullptr;
    {
      std::lock_guard<std::mutex> lk(s.mutex);
      for (const auto& a : s.armed) {
        if (a->name == site) {
          found = a.get();
          break;
        }
      }
    }
    if (found == nullptr) return;
    found->hits.fetch_add(1, std::memory_order_relaxed);
    // fetch_sub returning exactly 1 marks the single firing hit; the counter
    // keeps falling so no later hit can observe 1 again.
    if (found->remaining.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
    switch (found->kind) {
      case FaultKind::kBadAlloc:
        throw std::bad_alloc();
      case FaultKind::kRuntimeError:
        throw std::runtime_error("injected fault at " + found->name);
      case FaultKind::kCrash:
        std::_Exit(137);  // the same exit a SIGKILLed process reports
    }
  }
};

/// Named fault point; no-op (one relaxed load) unless a test armed `site`.
inline void fault_point(std::string_view site) { FaultInjector::check(site); }

}  // namespace smp
