#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "pprim/cacheline.hpp"
#include "pprim/partition.hpp"
#include "pprim/prefix_sum.hpp"
#include "pprim/parallel_for.hpp"
#include "pprim/radix_sort.hpp"
#include "pprim/thread_team.hpp"
#include "pprim/tuning.hpp"

namespace smp {

/// Cache-aware parallel hash-map dedup: keeps one winner per distinct 64-bit
/// key without ever sorting.  The input is range-partitioned by the high bits
/// of a multiplicative hash into `nb` buckets (a single stable counting-sort
/// scatter), then each bucket is resolved in a small open-addressing table
/// that fits in L2, and the winners are compacted back into the input vector.
///
/// Layout per probe table slot is a {key, value} pair split across two
/// parallel arrays (8-byte keys probe at full cache-line density; values are
/// only touched on hit/insert).  Tables are per-thread and sized to the
/// largest bucket, so a solve reuses two slabs per thread for its lifetime.
///
/// Determinism: the scatter is stable and the bucket layout depends only on
/// the input (never on the team size), elements are inserted in input order,
/// and winners are emitted in slot order — so the output sequence is
/// identical for every p.  The sequential path below triggers on input size
/// only (not on p == 1) for the same reason.

/// Sentinel for empty probe slots.  Callers must never present ~0 as a key;
/// compact-graph's packed (u << 32 | v) keys cannot reach it because that
/// would require u == v == 0xffffffff, i.e. a self-loop, and self-loops are
/// filtered out before dedup.
inline constexpr std::uint64_t kHashEmptyKey = ~std::uint64_t{0};

/// Probe-behaviour counters, surfaced through PhaseStats/--stats-json so
/// benches can tell a healthy ~0.5-load-factor run from a clustered one.
struct HashDedupStats {
  std::uint64_t keys = 0;         ///< elements inserted across all dedups
  std::uint64_t probe_steps = 0;  ///< linear-probe advances past the home slot
  std::uint64_t max_probe = 0;    ///< longest single probe chain observed
  std::uint64_t dedup_calls = 0;  ///< number of dedup invocations

  HashDedupStats& operator+=(const HashDedupStats& o) {
    keys += o.keys;
    probe_steps += o.probe_steps;
    max_probe = std::max(max_probe, o.max_probe);
    dedup_calls += o.dedup_calls;
    return *this;
  }
};

/// Fibonacci bucket hash: top `lg_nb` bits of the golden-ratio product.  The
/// multiplier diffuses low-entropy packed ⟨u, v⟩ keys across buckets even
/// when all arcs share a handful of supervertices.
[[nodiscard]] inline std::uint64_t hash_bucket_of(std::uint64_t k, int lg_nb) {
  return (k * 0x9e3779b97f4a7c15ULL) >> (64 - lg_nb);
}

/// splitmix64 finalizer for the in-bucket probe position.  Independent of the
/// bucket hash (which consumes the top bits), so keys that collide into one
/// bucket still spread inside its table.
[[nodiscard]] inline std::uint64_t hash_mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

[[nodiscard]] inline std::size_t next_pow2_size(std::size_t v) {
  std::size_t r = 1;
  while (r < v) r <<= 1;
  return r;
}

/// Team-shared scratch for radix_hash_dedup_in_region.  Grow-only across
/// calls within a solve; `release()` returns everything to the allocator so
/// CompactScratch can shed peak-iteration slabs once the graph has shrunk.
template <class T>
struct RadixHashMapScratch {
  std::vector<std::uint64_t> keys;       ///< key cache aligned with the input
  std::vector<T> part;                   ///< bucket-partitioned elements
  std::vector<std::uint64_t> part_keys;  ///< keys aligned with `part`
  std::vector<std::uint64_t> counts;     ///< thread-major padded count slabs
  std::vector<std::uint64_t> scan;       ///< bucket-major cross-thread scan
  std::vector<std::uint64_t> bucket_start;  ///< nb + 1 segment bounds
  std::vector<std::uint64_t> uniq;          ///< nb + 1 winners per bucket
  std::vector<std::vector<std::uint64_t>> slot_keys;  ///< per-thread tables
  std::vector<std::vector<T>> slot_vals;
  std::vector<Padded<HashDedupStats>> stat_partial;
  ScanScratch<std::uint64_t> scan_scratch;
  std::atomic<std::size_t> cursor{0};
  std::size_t max_bucket = 0;  ///< published by tid 0 behind a barrier

  [[nodiscard]] std::size_t footprint_bytes() const {
    std::size_t b = 0;
    b += keys.capacity() * sizeof(std::uint64_t);
    b += part.capacity() * sizeof(T);
    b += part_keys.capacity() * sizeof(std::uint64_t);
    b += counts.capacity() * sizeof(std::uint64_t);
    b += scan.capacity() * sizeof(std::uint64_t);
    b += bucket_start.capacity() * sizeof(std::uint64_t);
    b += uniq.capacity() * sizeof(std::uint64_t);
    for (const auto& v : slot_keys) b += v.capacity() * sizeof(std::uint64_t);
    for (const auto& v : slot_vals) b += v.capacity() * sizeof(T);
    return b;
  }

  void release() {
    std::vector<std::uint64_t>().swap(keys);
    std::vector<T>().swap(part);
    std::vector<std::uint64_t>().swap(part_keys);
    std::vector<std::uint64_t>().swap(counts);
    std::vector<std::uint64_t>().swap(scan);
    std::vector<std::uint64_t>().swap(bucket_start);
    std::vector<std::uint64_t>().swap(uniq);
    std::vector<std::vector<std::uint64_t>>().swap(slot_keys);
    std::vector<std::vector<T>>().swap(slot_vals);
  }
};

/// Deduplicate `data` by 64-bit key, keeping the `better()`-minimal element
/// of every key group, as an in-region primitive: all team threads call it
/// inside an open SPMD region with identical arguments; synchronization is
/// ctx.barrier() only.  On return `data` holds exactly one element per
/// distinct key (order deterministic and p-independent, but NOT sorted).
///
/// `key(elem)` must be pure and never return kHashEmptyKey.  `better(a, b)`
/// must be a strict total order on same-key elements so the winner does not
/// depend on encounter order.  Probe statistics are accumulated into `stats`
/// (tid 0 only, behind the exit barrier) when non-null.
template <class T, class KeyFn, class Better>
void radix_hash_dedup_in_region(TeamCtx& ctx, std::vector<T>& data,
                                RadixHashMapScratch<T>& s, KeyFn&& key,
                                Better&& better,
                                HashDedupStats* stats = nullptr) {
  const std::size_t n = data.size();
  const int p = ctx.nthreads();
  const auto P = static_cast<std::size_t>(p);
  const auto t = static_cast<std::size_t>(ctx.tid());

  // Trivial inputs: still barrier before returning, so every thread's size
  // read is ordered before any caller-side mutation of `data` after this
  // call (e.g. compact-graph swapping the vector on tid 0).
  if (n < 2) {
    if (p > 1) ctx.barrier();
    return;
  }

  // Sequential path, gated on input size ONLY (never on p) so the output is
  // bit-identical across team sizes.  The gate value is the runtime tuning
  // knob (machine calibration may move it); like every cutoff it must not
  // change while a region executes, so all threads read the same value.
  if (n < compact_hash_seq_cutoff()) {
    if (p > 1) ctx.barrier();  // entry: all threads read the header first
    if (ctx.tid() == 0) {
      HashDedupStats local;
      const std::size_t tb = next_pow2_size(std::max<std::size_t>(2 * n, 8));
      const std::uint64_t mask = tb - 1;
      if (s.slot_keys.empty()) s.slot_keys.resize(1);
      if (s.slot_vals.empty()) s.slot_vals.resize(1);
      if (s.slot_keys[0].size() < tb) s.slot_keys[0].resize(tb);
      if (s.slot_vals[0].size() < tb) s.slot_vals[0].resize(tb);
      std::uint64_t* tk = s.slot_keys[0].data();
      T* tv = s.slot_vals[0].data();
      std::fill(tk, tk + tb, kHashEmptyKey);
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t k = key(data[i]);
        std::size_t slot = hash_mix64(k) & mask;
        std::uint64_t chain = 0;
        for (;;) {
          if (tk[slot] == kHashEmptyKey) {
            tk[slot] = k;
            tv[slot] = data[i];
            break;
          }
          if (tk[slot] == k) {
            if (better(data[i], tv[slot])) tv[slot] = data[i];
            break;
          }
          slot = (slot + 1) & mask;
          ++chain;
        }
        local.probe_steps += chain;
        local.max_probe = std::max(local.max_probe, chain);
      }
      local.keys = n;
      local.dedup_calls = 1;
      std::size_t out = 0;
      for (std::size_t slot = 0; slot < tb; ++slot) {
        if (tk[slot] != kHashEmptyKey) data[out++] = tv[slot];
      }
      data.resize(out);
      if (stats) *stats += local;
    }
    if (p > 1) ctx.barrier();
    return;
  }

  // Bucket count: ~kCompactHashBucketTarget elements per bucket so each
  // probe table (2x slots, key array + value array) stays L2-resident.
  // Depends only on n, never on p.
  int lg_nb = 1;
  while ((std::size_t{1} << lg_nb) * kCompactHashBucketTarget < n &&
         lg_nb < 16) {
    ++lg_nb;
  }
  const std::size_t nb = std::size_t{1} << lg_nb;
  const std::size_t stride = nb + kCacheLineBytes / sizeof(std::uint64_t);

  if (ctx.tid() == 0) {
    s.keys.resize(n);
    s.part.resize(n);
    s.part_keys.resize(n);
    s.counts.resize(P * stride);
    s.scan.resize(nb * P);
    s.bucket_start.resize(nb + 1);
    s.uniq.assign(nb + 1, 0);
    if (s.slot_keys.size() < P) s.slot_keys.resize(P);
    if (s.slot_vals.size() < P) s.slot_vals.resize(P);
    s.stat_partial.resize(P);
    s.scan_scratch.ensure(p);
    s.cursor.store(0, std::memory_order_relaxed);
  }
  ctx.barrier();

  // Count pass: cache the keys (the only key() evaluation) and histogram
  // them into this thread's padded slab.
  const IndexRange r = block_range(n, ctx.tid(), p);
  std::uint64_t* my_counts = s.counts.data() + t * stride;
  std::fill(my_counts, my_counts + nb, 0);
  for (std::size_t i = r.begin; i < r.end; ++i) {
    const std::uint64_t k = key(data[i]);
    s.keys[i] = k;
    ++my_counts[hash_bucket_of(k, lg_nb)];
  }
  ctx.barrier();

  // Transpose to bucket-major, scan, transpose back: scanning in (bucket,
  // thread) order is what makes the scatter stable (same idiom as the radix
  // sort's counting passes).
  const IndexRange br = block_range(nb, ctx.tid(), p);
  for (std::size_t b = br.begin; b < br.end; ++b) {
    for (std::size_t t2 = 0; t2 < P; ++t2) {
      s.scan[b * P + t2] = s.counts[t2 * stride + b];
    }
  }
  ctx.barrier();
  if (p >= kRadixParallelScanThreads) {
    (void)prefix_sum_in_region(
        ctx, std::span<std::uint64_t>(s.scan.data(), nb * P), s.scan_scratch);
  } else {
    if (ctx.tid() == 0) {
      (void)exclusive_scan_seq(
          std::span<std::uint64_t>(s.scan.data(), nb * P));
    }
    ctx.barrier();
  }
  if (ctx.tid() == 0) {
    std::size_t mx = 0;
    for (std::size_t b = 0; b < nb; ++b) {
      s.bucket_start[b] = s.scan[b * P];
      if (b > 0) mx = std::max(mx, s.bucket_start[b] - s.bucket_start[b - 1]);
    }
    s.bucket_start[nb] = n;
    mx = std::max(mx, n - s.bucket_start[nb - 1]);
    s.max_bucket = mx;
  }
  for (std::size_t b = br.begin; b < br.end; ++b) {
    for (std::size_t t2 = 0; t2 < P; ++t2) {
      s.counts[t2 * stride + b] = s.scan[b * P + t2];
    }
  }
  ctx.barrier();

  // Stable scatter into bucket segments.
  for (std::size_t i = r.begin; i < r.end; ++i) {
    const std::size_t b = hash_bucket_of(s.keys[i], lg_nb);
    const std::uint64_t pos = my_counts[b]++;
    s.part[pos] = data[i];
    s.part_keys[pos] = s.keys[i];
  }
  ctx.barrier();

  // Probe phase: dynamically schedule buckets (sizes skew when many arcs
  // share one supervertex pair); each thread owns one table slab sized to
  // the largest bucket and re-masks it per bucket.
  {
    const std::size_t cap =
        next_pow2_size(std::max<std::size_t>(2 * s.max_bucket, 8));
    if (s.slot_keys[t].size() < cap) s.slot_keys[t].resize(cap);
    if (s.slot_vals[t].size() < cap) s.slot_vals[t].resize(cap);
    std::uint64_t* tk = s.slot_keys[t].data();
    T* tv = s.slot_vals[t].data();
    HashDedupStats local;
    for_range_dynamic(ctx, s.cursor, nb, 1, [&](std::size_t b) {
      const std::size_t lo = s.bucket_start[b];
      const std::size_t hi = s.bucket_start[b + 1];
      const std::size_t len = hi - lo;
      if (len == 0) return;  // s.uniq[b + 1] stays 0
      const std::size_t tb = next_pow2_size(std::max<std::size_t>(2 * len, 8));
      const std::uint64_t mask = tb - 1;
      std::fill(tk, tk + tb, kHashEmptyKey);
      for (std::size_t i = lo; i < hi; ++i) {
        const std::uint64_t k = s.part_keys[i];
        std::size_t slot = hash_mix64(k) & mask;
        std::uint64_t chain = 0;
        for (;;) {
          if (tk[slot] == kHashEmptyKey) {
            tk[slot] = k;
            tv[slot] = s.part[i];
            break;
          }
          if (tk[slot] == k) {
            if (better(s.part[i], tv[slot])) tv[slot] = s.part[i];
            break;
          }
          slot = (slot + 1) & mask;
          ++chain;
        }
        local.probe_steps += chain;
        local.max_probe = std::max(local.max_probe, chain);
      }
      local.keys += len;
      // Winners overwrite the bucket's own segment prefix (every source
      // element already lives in the table), emitted in slot order.
      std::size_t out = lo;
      for (std::size_t slot = 0; slot < tb; ++slot) {
        if (tk[slot] != kHashEmptyKey) s.part[out++] = tv[slot];
      }
      s.uniq[b + 1] = out - lo;
    });
    s.stat_partial[t].value = local;
  }
  ctx.barrier();

  // Compact bucket prefixes into the output.  nb + 1 is small (n / ~4096),
  // so tid 0 scans it sequentially; the shrink never reallocates.
  if (ctx.tid() == 0) {
    for (std::size_t b = 0; b < nb; ++b) s.uniq[b + 1] += s.uniq[b];
    data.resize(s.uniq[nb]);
    if (stats) {
      HashDedupStats sum;
      for (std::size_t t2 = 0; t2 < P; ++t2) sum += s.stat_partial[t2].value;
      sum.dedup_calls = 1;
      *stats += sum;
    }
  }
  ctx.barrier();
  for (std::size_t b = br.begin; b < br.end; ++b) {
    const std::size_t cnt = s.uniq[b + 1] - s.uniq[b];
    std::copy(s.part.begin() + static_cast<std::ptrdiff_t>(s.bucket_start[b]),
              s.part.begin() +
                  static_cast<std::ptrdiff_t>(s.bucket_start[b] + cnt),
              data.begin() + static_cast<std::ptrdiff_t>(s.uniq[b]));
  }
  ctx.barrier();
}

/// Fork-join wrapper for tests and callers not already inside a region.
template <class T, class KeyFn, class Better>
void radix_hash_dedup(ThreadTeam& team, std::vector<T>& data, KeyFn&& key,
                      Better&& better, HashDedupStats* stats = nullptr) {
  RadixHashMapScratch<T> scratch;
  team.run([&](TeamCtx& ctx) {
    radix_hash_dedup_in_region(ctx, data, scratch, key, better, stats);
  });
}

}  // namespace smp
