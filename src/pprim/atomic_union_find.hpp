#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace smp {

/// Lock-free concurrent union-find (wait-free finds, CAS-based unions with
/// hook-to-smaller-root ordering).
///
/// This is the building block of the *modern* descendants of the paper's
/// Borůvka variants (Galois, GBBS): instead of materializing the contracted
/// graph, components are tracked in a shared disjoint-set structure that all
/// threads update concurrently.  Hooks always point the larger root at the
/// smaller one, so parent values only decrease — that monotonicity rules out
/// cycles under any interleaving and makes the structure ABA-free.
class AtomicUnionFind {
 public:
  explicit AtomicUnionFind(std::uint32_t n) : parent_(n) {
    for (std::uint32_t i = 0; i < n; ++i) {
      parent_[i].store(i, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(parent_.size());
  }

  /// Root of x's set, with path halving (benign concurrent writes: parents
  /// only ever move closer to a root).
  std::uint32_t find(std::uint32_t x) {
    for (;;) {
      std::uint32_t p = parent_[x].load(std::memory_order_relaxed);
      if (p == x) return x;
      const std::uint32_t gp = parent_[p].load(std::memory_order_relaxed);
      if (p == gp) return p;
      // Halve: x -> grandparent.  Failure is fine; someone else improved it.
      parent_[x].compare_exchange_weak(p, gp, std::memory_order_relaxed,
                                       std::memory_order_relaxed);
      x = gp;
    }
  }

  /// Merge the sets of a and b; returns true iff this call performed the
  /// merge (exactly one winner per logical union under races).
  bool unite(std::uint32_t a, std::uint32_t b) {
    for (;;) {
      a = find(a);
      b = find(b);
      if (a == b) return false;
      if (a > b) std::swap(a, b);  // hook larger root under smaller
      std::uint32_t expected = b;
      if (parent_[b].compare_exchange_strong(expected, a,
                                             std::memory_order_acq_rel,
                                             std::memory_order_relaxed)) {
        return true;
      }
      // b gained a parent concurrently; retry from the new roots.
    }
  }

  /// True if currently in the same set (racy under concurrent unions, exact
  /// once unions have quiesced).
  bool connected(std::uint32_t a, std::uint32_t b) { return find(a) == find(b); }

  /// Number of sets; call only after concurrent phases have quiesced.
  [[nodiscard]] std::size_t num_sets() {
    std::size_t roots = 0;
    for (std::uint32_t i = 0; i < size(); ++i) roots += find(i) == i;
    return roots;
  }

 private:
  std::vector<std::atomic<std::uint32_t>> parent_;
};

}  // namespace smp
