#pragma once

#include <cstdint>

namespace smp {

/// SplitMix64 — used to expand seeds into independent streams.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — small, fast, high-quality PRNG.  Every generator and
/// algorithm in this repo draws randomness through Rng so that runs are
/// bit-reproducible under a fixed seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
  }

  /// Derive an independent stream, e.g. one per thread: Rng(seed).fork(tid).
  [[nodiscard]] Rng fork(std::uint64_t stream) const {
    Rng r(0);
    std::uint64_t sm = s_[0] ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
    for (auto& s : r.s_) s = splitmix64(sm);
    return r;
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound); bound must be > 0.  Lemire's method.
  std::uint64_t next_below(std::uint64_t bound) {
    // Rejection-free multiply-shift is fine for our non-cryptographic needs.
    const unsigned __int128 m = static_cast<unsigned __int128>(next()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace smp
