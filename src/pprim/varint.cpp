#include "pprim/varint.hpp"

#include "pprim/simd.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#endif

#include <cstring>

namespace smp {

std::size_t varint_decode_bulk_scalar(const std::uint8_t* p,
                                      const std::uint8_t* end,
                                      std::size_t count, std::uint32_t* out) {
  (void)end;  // trusted: the region was validated at build/open time
  const std::uint8_t* start = p;
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = varint_decode_u32(p);
  }
  return static_cast<std::size_t>(p - start);
}

#if defined(__x86_64__) || defined(_M_X64)

// Boundary discovery via movemask: one 32-byte load yields a bitmask whose
// set bits mark continuation bytes, so the zero bits ARE the varint
// terminators.  The all-ones-clear case (32 one-byte varints — dense rows,
// small graphs) widens bytes straight to u32 lanes; the mixed case walks the
// terminator mask with tzcnt and extracts each varint's payload bits in one
// pext, replacing the scalar shift-or loop with a single BMI2 gather.  Both
// cases need up to 8 readable bytes past the last *consumed* byte, hence the
// `end` guard; the scalar loop finishes the tail.
__attribute__((target("avx2,bmi,bmi2"))) std::size_t varint_decode_bulk_avx2(
    const std::uint8_t* p, const std::uint8_t* end, std::size_t count,
    std::uint32_t* out) {
  const std::uint8_t* start = p;
  std::size_t produced = 0;
  while (count - produced >= 32 && end - p >= 40) {
    const __m256i chunk =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
    const std::uint32_t cont =
        static_cast<std::uint32_t>(_mm256_movemask_epi8(chunk));
    if (cont == 0) {
      // 32 single-byte varints: widen 8 bytes -> 8 u32 lanes, four times.
      const __m128i lo = _mm256_castsi256_si128(chunk);
      const __m128i hi = _mm256_extracti128_si256(chunk, 1);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + produced),
                          _mm256_cvtepu8_epi32(lo));
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(out + produced + 8),
          _mm256_cvtepu8_epi32(_mm_srli_si128(lo, 8)));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + produced + 16),
                          _mm256_cvtepu8_epi32(hi));
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(out + produced + 24),
          _mm256_cvtepu8_epi32(_mm_srli_si128(hi, 8)));
      produced += 32;
      p += 32;
      continue;
    }
    std::uint32_t term = ~cont;  // zero bits of cont = terminator bytes
    std::size_t consumed = 0;    // bytes of complete varints in this chunk
    while (term != 0 && produced < count) {
      const unsigned t = static_cast<unsigned>(_tzcnt_u32(term));
      const std::size_t len = t + 1 - consumed;
      std::uint64_t word;
      std::memcpy(&word, p + consumed, 8);
      if (len < 8) word &= (std::uint64_t{1} << (8 * len)) - 1;
      out[produced++] =
          static_cast<std::uint32_t>(_pext_u64(word, 0x7F7F7F7F7F7F7F7FULL));
      consumed = t + 1;
      term &= term - 1;
    }
    // A varint whose continuation run crosses byte 31 is left for the next
    // round (or the scalar tail); only complete varints were consumed.
    if (consumed == 0) break;  // corrupt run of >=32 continuation bytes
    p += consumed;
  }
  p += varint_decode_bulk_scalar(p, end, count - produced, out + produced);
  return static_cast<std::size_t>(p - start);
}

#endif  // x86_64

namespace {

bool bulk_use_avx2() {
#if defined(__x86_64__) || defined(_M_X64)
  static const bool ok = active_simd_isa() == SimdIsa::kAvx2 &&
                         __builtin_cpu_supports("bmi") &&
                         __builtin_cpu_supports("bmi2");
  return ok;
#else
  return false;
#endif
}

}  // namespace

std::size_t varint_decode_bulk(const std::uint8_t* p, const std::uint8_t* end,
                               std::size_t count, std::uint32_t* out) {
#if defined(__x86_64__) || defined(_M_X64)
  if (bulk_use_avx2()) return varint_decode_bulk_avx2(p, end, count, out);
#endif
  return varint_decode_bulk_scalar(p, end, count, out);
}

bool varint_decode_bulk_checked(const std::uint8_t* p, const std::uint8_t* end,
                                std::size_t count, std::uint32_t* out,
                                std::size_t* consumed) {
  const std::uint8_t* start = p;
  for (std::size_t i = 0; i < count; ++i) {
    std::uint32_t v;
    std::size_t len;
    if (!varint_decode_u32_checked(p, end, &v, &len)) return false;
    out[i] = v;
    p += len;
  }
  *consumed = static_cast<std::size_t>(p - start);
  return true;
}

bool varint_validate_region(const std::uint8_t* p, const std::uint8_t* end,
                            std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    std::uint32_t v;
    std::size_t len;
    if (!varint_decode_u32_checked(p, end, &v, &len)) return false;
    p += len;
  }
  return p == end;  // no trailing bytes
}

}  // namespace smp
