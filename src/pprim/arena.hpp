#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "pprim/cacheline.hpp"

namespace smp {

/// Chunked bump allocator backing one thread's scratch allocations.
///
/// This is the repo's stand-in for Bor-ALM's Solaris per-thread memory
/// segments (§2.2): the system `malloc` serializes threads on a shared
/// kernel/heap lock, so each thread instead carves POD arrays out of private
/// chunks it requests from the OS in large units.  `reset()` recycles all
/// chunks without returning them, so steady-state iterations allocate with
/// zero synchronization and zero system calls.
///
/// Only trivially-destructible types may be allocated (no destructors run).
class Arena {
 public:
  explicit Arena(std::size_t chunk_bytes = std::size_t{1} << 20)
      : chunk_bytes_(chunk_bytes) {}

  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;

  void* allocate(std::size_t bytes, std::size_t align);

  template <class T>
  std::span<T> alloc_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    if (count == 0) return {};
    auto* p = static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
    return {p, count};
  }

  /// Recycle every chunk; previously returned pointers become invalid.
  void reset();

  [[nodiscard]] std::size_t bytes_reserved() const { return bytes_reserved_; }
  [[nodiscard]] std::size_t bytes_in_use() const { return bytes_in_use_; }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> mem;
    std::size_t capacity = 0;
  };

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;  // index of the chunk being bumped
  std::size_t offset_ = 0;   // bump offset within chunks_[current_]
  std::size_t bytes_reserved_ = 0;
  std::size_t bytes_in_use_ = 0;
};

/// One Arena per team thread, cache-line isolated.
class ThreadArenas {
 public:
  explicit ThreadArenas(int nthreads, std::size_t chunk_bytes = std::size_t{1} << 20);

  Arena& local(int tid) { return slots_[static_cast<std::size_t>(tid)].value; }

  void reset_all();

  [[nodiscard]] int size() const { return static_cast<int>(slots_.size()); }

 private:
  std::vector<Padded<Arena>> slots_;
};

}  // namespace smp
