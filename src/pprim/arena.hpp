#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "pprim/cacheline.hpp"

namespace smp {

/// Chunked bump allocator backing one thread's scratch allocations.
///
/// This is the repo's stand-in for Bor-ALM's Solaris per-thread memory
/// segments (§2.2): the system `malloc` serializes threads on a shared
/// kernel/heap lock, so each thread instead carves POD arrays out of private
/// chunks it requests from the OS in large units.  `reset()` recycles all
/// chunks without returning them, so steady-state iterations allocate with
/// zero synchronization and zero system calls.
///
/// Only trivially-destructible types may be allocated (no destructors run).
///
/// Resource limits: an arena can share a reservation ledger (an atomic byte
/// counter owned by ThreadArenas) with a cap.  Reserving a chunk that would
/// push the shared total past the cap throws std::bad_alloc *before*
/// touching the system allocator — this is how ExecutionBudget's memory cap
/// degrades a request gracefully instead of OOM-killing the process.  The
/// "arena.alloc" fault point lets tests simulate allocation failure
/// deterministically.
class Arena {
 public:
  explicit Arena(std::size_t chunk_bytes = std::size_t{1} << 20)
      : chunk_bytes_(chunk_bytes) {}

  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;

  void* allocate(std::size_t bytes, std::size_t align);

  template <class T>
  std::span<T> alloc_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    if (count == 0) return {};
    auto* p = static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
    return {p, count};
  }

  /// Recycle every chunk; previously returned pointers become invalid.
  void reset();

  /// Count chunk reservations against `ledger`; throw std::bad_alloc when a
  /// reservation would push it past `cap_bytes` (cap 0 = count only).
  void set_reservation_ledger(std::atomic<std::size_t>* ledger,
                              std::size_t cap_bytes) {
    shared_reserved_ = ledger;
    shared_cap_ = cap_bytes;
  }

  [[nodiscard]] std::size_t bytes_reserved() const { return bytes_reserved_; }
  [[nodiscard]] std::size_t bytes_in_use() const { return bytes_in_use_; }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> mem;
    std::size_t capacity = 0;
  };

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;  // index of the chunk being bumped
  std::size_t offset_ = 0;   // bump offset within chunks_[current_]
  std::size_t bytes_reserved_ = 0;
  std::size_t bytes_in_use_ = 0;
  std::atomic<std::size_t>* shared_reserved_ = nullptr;
  std::size_t shared_cap_ = 0;
};

/// One Arena per team thread, cache-line isolated.
///
/// With `cap_bytes` > 0 the arenas share one reservation ledger: the sum of
/// chunk bytes reserved across all threads never exceeds the cap, and the
/// allocation that would cross it throws std::bad_alloc instead.
class ThreadArenas {
 public:
  explicit ThreadArenas(int nthreads,
                        std::size_t chunk_bytes = std::size_t{1} << 20,
                        std::size_t cap_bytes = 0);

  Arena& local(int tid) { return slots_[static_cast<std::size_t>(tid)].value; }

  void reset_all();

  [[nodiscard]] int size() const { return static_cast<int>(slots_.size()); }
  [[nodiscard]] std::size_t total_reserved() const {
    return total_reserved_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<Padded<Arena>> slots_;
  std::atomic<std::size_t> total_reserved_{0};
};

}  // namespace smp
