#pragma once

#include <atomic>
#include <cstdint>

#include "pprim/cacheline.hpp"

namespace smp {

/// Centralized generation-counting barrier.
///
/// The last arriver of each phase resets the count and bumps the generation;
/// everyone else waits for the generation to move.  Unlike a classic
/// sense-reversing barrier this keeps *no per-thread state*, so it stays
/// correct when participants are destroyed and recreated between phases
/// (exactly what happens between two ThreadTeam::run regions, which build
/// fresh TeamCtx objects each time).
///
/// Blocking uses C++20 atomic wait/notify (futex-backed on Linux) rather
/// than spinning, so the barrier stays cheap when threads are oversubscribed
/// onto few cores — the common case for this repo's thread-sweep benchmarks.
///
/// The barrier can be *poisoned* when a participant dies mid-region (it threw
/// and will never arrive): poison() releases every current and future waiter
/// with a `false` return instead of leaving them blocked forever.  The owner
/// must reset() before reusing the barrier for a fresh region, since a
/// poisoned phase leaves the arrival count in an arbitrary state.
class SenseBarrier {
 public:
  /// Kept for API symmetry; carries no state in the generation scheme.
  struct LocalSense {};

  explicit SenseBarrier(int num_threads) : n_(num_threads), count_(num_threads) {}

  SenseBarrier(const SenseBarrier&) = delete;
  SenseBarrier& operator=(const SenseBarrier&) = delete;

  /// Block until all `num_threads` participants arrive.  Returns true on a
  /// normal release; false if the barrier was poisoned (the region is
  /// unwinding and phase separation no longer holds).
  [[nodiscard]] bool arrive_and_wait() {
    if (poisoned_.load(std::memory_order_acquire)) return false;
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    if (count_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      count_.store(n_, std::memory_order_relaxed);
      generation_.fetch_add(1, std::memory_order_release);
      generation_.notify_all();
    } else {
      std::uint64_t observed = generation_.load(std::memory_order_acquire);
      while (observed == gen) {
        generation_.wait(observed, std::memory_order_acquire);
        observed = generation_.load(std::memory_order_acquire);
      }
    }
    return !poisoned_.load(std::memory_order_acquire);
  }

  [[nodiscard]] bool arrive_and_wait(LocalSense&) { return arrive_and_wait(); }

  /// Release all current and future waiters with a failure indication.  Safe
  /// to call from any thread, any number of times.
  void poison() {
    poisoned_.store(true, std::memory_order_release);
    generation_.fetch_add(1, std::memory_order_release);
    generation_.notify_all();
  }

  [[nodiscard]] bool poisoned() const {
    return poisoned_.load(std::memory_order_acquire);
  }

  /// Restore a clean state for the next region.  Callers must guarantee no
  /// participant is inside arrive_and_wait() (ThreadTeam::run does: it only
  /// resets after every worker reported region completion).
  void reset() {
    poisoned_.store(false, std::memory_order_relaxed);
    count_.store(n_, std::memory_order_relaxed);
  }

 private:
  int n_;
  alignas(kCacheLineBytes) std::atomic<int> count_;
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> generation_{0};
  alignas(kCacheLineBytes) std::atomic<bool> poisoned_{false};
};

}  // namespace smp
