#pragma once

#include <atomic>
#include <cstdint>

#include "pprim/cacheline.hpp"

namespace smp {

/// Centralized generation-counting barrier.
///
/// The last arriver of each phase resets the count and bumps the generation;
/// everyone else waits for the generation to move.  Unlike a classic
/// sense-reversing barrier this keeps *no per-thread state*, so it stays
/// correct when participants are destroyed and recreated between phases
/// (exactly what happens between two ThreadTeam::run regions, which build
/// fresh TeamCtx objects each time).
///
/// Blocking uses C++20 atomic wait/notify (futex-backed on Linux) rather
/// than spinning, so the barrier stays cheap when threads are oversubscribed
/// onto few cores — the common case for this repo's thread-sweep benchmarks.
class SenseBarrier {
 public:
  /// Kept for API symmetry; carries no state in the generation scheme.
  struct LocalSense {};

  explicit SenseBarrier(int num_threads) : n_(num_threads), count_(num_threads) {}

  SenseBarrier(const SenseBarrier&) = delete;
  SenseBarrier& operator=(const SenseBarrier&) = delete;

  /// Block until all `num_threads` participants arrive.
  void arrive_and_wait() {
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    if (count_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      count_.store(n_, std::memory_order_relaxed);
      generation_.fetch_add(1, std::memory_order_release);
      generation_.notify_all();
    } else {
      std::uint64_t observed = generation_.load(std::memory_order_acquire);
      while (observed == gen) {
        generation_.wait(observed, std::memory_order_acquire);
        observed = generation_.load(std::memory_order_acquire);
      }
    }
  }

  void arrive_and_wait(LocalSense&) { arrive_and_wait(); }

 private:
  int n_;
  alignas(kCacheLineBytes) std::atomic<int> count_;
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> generation_{0};
};

}  // namespace smp
