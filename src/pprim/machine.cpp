#include "pprim/machine.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <sstream>
#include <thread>
#include <vector>

#include "pprim/parallel_for.hpp"
#include "pprim/sample_sort.hpp"
#include "pprim/simd.hpp"
#include "pprim/thread_team.hpp"
#include "pprim/tuning.hpp"

#if defined(__linux__)
#include <sched.h>
#include <unistd.h>
#endif

namespace smp {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

#if defined(__linux__)
std::size_t sysconf_bytes(int name) {
  const long v = ::sysconf(name);
  return v > 0 ? static_cast<std::size_t>(v) : 0;
}
#endif

MachineProfile detect() {
  MachineProfile p;
  p.hardware_threads = std::max(1u, std::thread::hardware_concurrency());
  p.available_threads = p.hardware_threads;
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (::sched_getaffinity(0, sizeof(set), &set) == 0) {
    const int cnt = CPU_COUNT(&set);
    if (cnt > 0) p.available_threads = static_cast<unsigned>(cnt);
  }
  p.cache_line_bytes = sysconf_bytes(_SC_LEVEL1_DCACHE_LINESIZE);
  p.l1d_bytes = sysconf_bytes(_SC_LEVEL1_DCACHE_SIZE);
  p.l2_bytes = sysconf_bytes(_SC_LEVEL2_CACHE_SIZE);
  p.l3_bytes = sysconf_bytes(_SC_LEVEL3_CACHE_SIZE);
  p.page_bytes = sysconf_bytes(_SC_PAGESIZE);
#endif
  if (p.cache_line_bytes == 0) p.cache_line_bytes = 64;
  if (p.page_bytes == 0) p.page_bytes = 4096;
  p.simd = simd_isa_name();
  return p;
}

/// Deterministic 64-bit mixer for calibration work items — no libc RNG, so
/// repeated calibrations on one host time the identical workload.
std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  return x;
}

/// Smallest grid size where the parallel path beat the inline loop, or
/// `fallback` when it never did.
std::size_t crossover(const std::vector<std::size_t>& grid,
                      const std::vector<bool>& par_won, std::size_t fallback) {
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (par_won[i]) return grid[i];
  }
  return fallback;
}

}  // namespace

const MachineProfile& machine_profile() {
  static const MachineProfile p = detect();
  return p;
}

std::string machine_profile_json() {
  const MachineProfile& p = machine_profile();
  std::ostringstream os;
  os << "{\"hardware_threads\": " << p.hardware_threads
     << ", \"available_threads\": " << p.available_threads
     << ", \"cache_line_bytes\": " << p.cache_line_bytes
     << ", \"l1d_bytes\": " << p.l1d_bytes << ", \"l2_bytes\": " << p.l2_bytes
     << ", \"l3_bytes\": " << p.l3_bytes
     << ", \"page_bytes\": " << p.page_bytes << ", \"simd\": \"" << p.simd
     << "\"}";
  return os.str();
}

CalibrationResult auto_calibrate(bool apply) {
  const Clock::time_point t0 = Clock::now();
  const MachineProfile& mp = machine_profile();
  CalibrationResult r;

  // Hash-dedup sequential gate: a sequential probe table of n keys occupies
  // ~2n slots x 16 B (key + value); keep it inside the measured L2 so the
  // single-threaded path never thrashes, and never gate lower than the
  // compile-time default.
  const std::size_t l2 = mp.l2_bytes ? mp.l2_bytes : (1u << 20);
  r.compact_hash_seq_cutoff = std::clamp(l2 / 32, kCompactHashSeqCutoff,
                                         std::size_t{1} << 17);

  if (mp.available_threads <= 1) {
    // One usable CPU: forking a team is pure overhead at every size the
    // micro-bench could measure, and oversubscribed teams (threads > 1 on
    // 1 CPU, the blind-calibration failure BENCH_05 recorded) only make it
    // worse.  Push the parallel gates high instead of timing noise.
    r.parallel_for_cutoff = std::size_t{1} << 20;
    r.sample_sort_cutoff = std::size_t{1} << 21;
  } else {
    ThreadTeam team(static_cast<int>(mp.available_threads));

    // parallel_for crossover: time an inline transform vs the forked one on
    // a doubling grid, take the first size where the fork pays for itself.
    {
      std::vector<std::size_t> grid;
      for (std::size_t n = 1u << 11; n <= (1u << 18); n <<= 2) {
        grid.push_back(n);
      }
      std::vector<bool> par_won(grid.size(), false);
      std::vector<std::uint64_t> buf(grid.back());
      for (std::size_t gi = 0; gi < grid.size(); ++gi) {
        const std::size_t n = grid[gi];
        Clock::time_point t = Clock::now();
        for (std::size_t i = 0; i < n; ++i) buf[i] = mix(i);
        const double seq = seconds_since(t);
        ScopedTuning force(1, 0);  // make parallel_for actually fork
        t = Clock::now();
        parallel_for(team, n, [&](std::size_t i) { buf[i] = mix(i); });
        par_won[gi] = seconds_since(t) < seq;
      }
      r.parallel_for_cutoff =
          crossover(grid, par_won, std::size_t{1} << 20);
    }

    // sample_sort crossover vs std::sort on u64 keys.
    {
      std::vector<std::size_t> grid;
      for (std::size_t n = 1u << 13; n <= (1u << 19); n <<= 2) {
        grid.push_back(n);
      }
      std::vector<bool> par_won(grid.size(), false);
      for (std::size_t gi = 0; gi < grid.size(); ++gi) {
        const std::size_t n = grid[gi];
        std::vector<std::uint64_t> a(n), b(n);
        for (std::size_t i = 0; i < n; ++i) a[i] = b[i] = mix(i ^ 0x9E3779B9u);
        Clock::time_point t = Clock::now();
        std::sort(a.begin(), a.end());
        const double seq = seconds_since(t);
        ScopedTuning force(0, 1);  // make sample_sort actually sample-sort
        t = Clock::now();
        sample_sort(team, b, std::less<std::uint64_t>{});
        par_won[gi] = seconds_since(t) < seq;
      }
      r.sample_sort_cutoff =
          crossover(grid, par_won, std::size_t{1} << 21);
    }
  }

  if (apply) {
    set_parallel_for_cutoff(r.parallel_for_cutoff);
    set_sample_sort_cutoff(r.sample_sort_cutoff);
    set_compact_hash_seq_cutoff(r.compact_hash_seq_cutoff);
    r.applied = true;
  }
  r.elapsed_s = seconds_since(t0);
  return r;
}

std::string calibration_json(const CalibrationResult& r) {
  std::ostringstream os;
  os << "{\"parallel_for_cutoff\": " << r.parallel_for_cutoff
     << ", \"sample_sort_cutoff\": " << r.sample_sort_cutoff
     << ", \"compact_hash_seq_cutoff\": " << r.compact_hash_seq_cutoff
     << ", \"elapsed_s\": " << r.elapsed_s
     << ", \"applied\": " << (r.applied ? "true" : "false") << "}";
  return os.str();
}

}  // namespace smp
