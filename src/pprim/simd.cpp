#include "pprim/simd.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace smp {

namespace {

/// Below this length the vector paths fall back to the plain loop: the
/// horizontal reduce plus the second locate pass cost more than they save.
constexpr std::size_t kVectorCutoff = 16;

}  // namespace

std::size_t u64_argmin_scalar(const std::uint64_t* keys, std::size_t n) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (keys[i] < keys[best]) best = i;
  }
  return best;
}

#if defined(__x86_64__) || defined(_M_X64)

// Two-pass argmin: pass 1 is a pure vertical min-reduce (no index tracking,
// so the loop is a load + compare + blend per 4 lanes), pass 2 locates the
// first element equal to that min, which is exactly the lowest-index
// tie-break the scalar loop implements.  AVX2 has no unsigned 64-bit compare,
// so both operands are sign-flipped and compared signed — an
// order-preserving bijection on uint64.
__attribute__((target("avx2"))) std::size_t u64_argmin_avx2(
    const std::uint64_t* keys, std::size_t n) {
  if (n < kVectorCutoff) return u64_argmin_scalar(keys, n);
  const __m256i sign =
      _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));
  __m256i vmin = _mm256_xor_si256(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys)), sign);
  std::size_t i = 4;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i)), sign);
    vmin = _mm256_blendv_epi8(vmin, v, _mm256_cmpgt_epi64(vmin, v));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), vmin);
  std::uint64_t m = lanes[0] ^ 0x8000000000000000ULL;
  for (int l = 1; l < 4; ++l) {
    const std::uint64_t cand = lanes[l] ^ 0x8000000000000000ULL;
    if (cand < m) m = cand;
  }
  for (std::size_t t = i; t < n; ++t) {
    if (keys[t] < m) m = keys[t];
  }
  const __m256i vm = _mm256_set1_epi64x(static_cast<long long>(m));
  for (i = 0; i + 4 <= n; i += 4) {
    const __m256i eq = _mm256_cmpeq_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i)), vm);
    const int mask = _mm256_movemask_pd(_mm256_castsi256_pd(eq));
    if (mask != 0) {
      return i + static_cast<std::size_t>(__builtin_ctz(mask));
    }
  }
  for (; i < n; ++i) {
    if (keys[i] == m) return i;
  }
  return 0;  // unreachable: m was read from keys[0..n)
}

#endif  // x86_64

#if defined(__aarch64__)

std::size_t u64_argmin_neon(const std::uint64_t* keys, std::size_t n) {
  if (n < kVectorCutoff) return u64_argmin_scalar(keys, n);
  uint64x2_t vmin = vld1q_u64(keys);
  std::size_t i = 2;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t v = vld1q_u64(keys + i);
    vmin = vbslq_u64(vcgtq_u64(vmin, v), v, vmin);
  }
  std::uint64_t m = vgetq_lane_u64(vmin, 0);
  if (vgetq_lane_u64(vmin, 1) < m) m = vgetq_lane_u64(vmin, 1);
  for (std::size_t t = i; t < n; ++t) {
    if (keys[t] < m) m = keys[t];
  }
  const uint64x2_t vm = vdupq_n_u64(m);
  for (i = 0; i + 2 <= n; i += 2) {
    const uint64x2_t eq = vceqq_u64(vld1q_u64(keys + i), vm);
    if (vgetq_lane_u64(eq, 0) != 0) return i;
    if (vgetq_lane_u64(eq, 1) != 0) return i + 1;
  }
  for (; i < n; ++i) {
    if (keys[i] == m) return i;
  }
  return 0;  // unreachable: m was read from keys[0..n)
}

#endif  // aarch64

namespace {

SimdIsa detect_isa() {
#if defined(__x86_64__) || defined(_M_X64)
  if (__builtin_cpu_supports("avx2")) return SimdIsa::kAvx2;
  return SimdIsa::kScalar;
#elif defined(__aarch64__)
  return SimdIsa::kNeon;
#else
  return SimdIsa::kScalar;
#endif
}

}  // namespace

SimdIsa active_simd_isa() {
  static const SimdIsa isa = detect_isa();
  return isa;
}

const char* simd_isa_name() {
  switch (active_simd_isa()) {
    case SimdIsa::kAvx2:
      return "avx2";
    case SimdIsa::kNeon:
      return "neon";
    case SimdIsa::kScalar:
      return "scalar";
  }
  return "scalar";
}

std::size_t u64_argmin(const std::uint64_t* keys, std::size_t n) {
  switch (active_simd_isa()) {
#if defined(__x86_64__) || defined(_M_X64)
    case SimdIsa::kAvx2:
      return u64_argmin_avx2(keys, n);
#endif
#if defined(__aarch64__)
    case SimdIsa::kNeon:
      return u64_argmin_neon(keys, n);
#endif
    default:
      return u64_argmin_scalar(keys, n);
  }
}

}  // namespace smp
