#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "pprim/rng.hpp"
#include "pprim/sample_sort.hpp"
#include "pprim/thread_team.hpp"

namespace smp {

/// Sequential Fisher–Yates permutation of 0..n-1.
inline std::vector<std::uint32_t> random_permutation(std::uint32_t n, std::uint64_t seed) {
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  Rng rng(seed);
  for (std::uint32_t i = n; i > 1; --i) {
    const auto j = static_cast<std::uint32_t>(rng.next_below(i));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

/// Parallel random permutation by sorting random keys (Sanders [30] observes
/// this is simple and work-efficient in practice).  MST-BC uses this to
/// reorder the vertex set, guaranteeing progress w.h.p. (§4 of the paper).
inline std::vector<std::uint32_t> random_permutation(ThreadTeam& team, std::uint32_t n,
                                                     std::uint64_t seed) {
  struct Keyed {
    std::uint64_t key;
    std::uint32_t idx;
  };
  std::vector<Keyed> keyed(n);
  team.run([&](TeamCtx& ctx) {
    Rng rng = Rng(seed).fork(static_cast<std::uint64_t>(ctx.tid()));
    const IndexRange r = block_range(n, ctx.tid(), ctx.nthreads());
    for (std::size_t i = r.begin; i < r.end; ++i) {
      keyed[i] = {rng.next(), static_cast<std::uint32_t>(i)};
    }
  });
  sample_sort(team, keyed, [](const Keyed& a, const Keyed& b) {
    return a.key < b.key || (a.key == b.key && a.idx < b.idx);
  });
  std::vector<std::uint32_t> perm(n);
  for (std::uint32_t i = 0; i < n; ++i) perm[i] = keyed[i].idx;
  return perm;
}

}  // namespace smp
