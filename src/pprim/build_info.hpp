#pragma once

#include <cstdio>
#include <string>
#include <thread>

namespace smp {

/// Toolchain and machine facts stamped into committed BENCH_*.json runs and
/// the serving layer's stats dump, so numbers stay attributable and
/// comparable across machines (same graph + different compiler is not a
/// regression).
struct BuildInfo {
  std::string compiler;    ///< e.g. "gcc 12.2.0"
  std::string build_type;  ///< CMAKE_BUILD_TYPE at configure time
  unsigned hardware_threads = 0;
};

[[nodiscard]] inline BuildInfo build_info() {
  BuildInfo b;
#if defined(__clang__)
  b.compiler = std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  b.compiler = std::string("gcc ") + __VERSION__;
#else
  b.compiler = "unknown";
#endif
#ifdef SMPMSF_BUILD_TYPE
  b.build_type = SMPMSF_BUILD_TYPE;
#else
  b.build_type = "unknown";
#endif
  b.hardware_threads = std::thread::hardware_concurrency();
  return b;
}

/// Minimal JSON string escape (quotes, backslashes, control chars) for the
/// hand-rolled JSON emitters in the CLI, the serve layer and the benches.
[[nodiscard]] inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// The build block shared by every stats emitter:
/// {"compiler": "...", "build_type": "...", "hardware_threads": N}
[[nodiscard]] inline std::string build_info_json() {
  const BuildInfo b = build_info();
  return "{\"compiler\": \"" + json_escape(b.compiler) +
         "\", \"build_type\": \"" + json_escape(b.build_type) +
         "\", \"hardware_threads\": " + std::to_string(b.hardware_threads) +
         "}";
}

}  // namespace smp
