#include "pprim/thread_team.hpp"

#include <cassert>

namespace smp {

void TeamCtx::barrier() { team_.region_barrier_.arrive_and_wait(sense_); }

ThreadTeam::ThreadTeam(int num_threads)
    : nthreads_(num_threads > 0 ? num_threads : 1),
      region_barrier_(nthreads_) {
  workers_.reserve(static_cast<std::size_t>(nthreads_ - 1));
  for (int tid = 1; tid < nthreads_; ++tid) {
    workers_.emplace_back([this, tid] { worker_loop(tid); });
  }
}

ThreadTeam::~ThreadTeam() {
  shutdown_.store(true, std::memory_order_release);
  generation_.fetch_add(1, std::memory_order_release);
  generation_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadTeam::run(const std::function<void(TeamCtx&)>& fn) {
  if (nthreads_ == 1) {
    TeamCtx ctx(*this, 0, 1);
    fn(ctx);
    return;
  }
  job_ = &fn;
  done_count_.store(0, std::memory_order_relaxed);
  generation_.fetch_add(1, std::memory_order_release);
  generation_.notify_all();

  TeamCtx ctx(*this, 0, nthreads_);
  fn(ctx);

  // Wait until all workers report completion of this region.
  int done = done_count_.load(std::memory_order_acquire);
  while (done != nthreads_ - 1) {
    done_count_.wait(done, std::memory_order_acquire);
    done = done_count_.load(std::memory_order_acquire);
  }
  job_ = nullptr;
}

void ThreadTeam::worker_loop(int tid) {
  std::uint64_t seen = 0;
  for (;;) {
    std::uint64_t gen = generation_.load(std::memory_order_acquire);
    while (gen == seen) {
      generation_.wait(gen, std::memory_order_acquire);
      gen = generation_.load(std::memory_order_acquire);
    }
    seen = gen;
    if (shutdown_.load(std::memory_order_acquire)) return;
    assert(job_ != nullptr);
    TeamCtx ctx(*this, tid, nthreads_);
    (*job_)(ctx);
    done_count_.fetch_add(1, std::memory_order_release);
    done_count_.notify_one();
  }
}

}  // namespace smp
