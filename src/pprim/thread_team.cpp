#include "pprim/thread_team.hpp"

#include <cassert>
#include <utility>

namespace smp {

void TeamCtx::barrier() {
  if (!team_.region_barrier_.arrive_and_wait(sense_)) throw RegionPoisoned{};
}

ThreadTeam::ThreadTeam(int num_threads)
    : nthreads_(num_threads > 0 ? num_threads : 1),
      region_barrier_(nthreads_) {
  workers_.reserve(static_cast<std::size_t>(nthreads_ - 1));
  for (int tid = 1; tid < nthreads_; ++tid) {
    workers_.emplace_back([this, tid] { worker_loop(tid); });
  }
}

ThreadTeam::~ThreadTeam() {
  shutdown_.store(true, std::memory_order_release);
  generation_.fetch_add(1, std::memory_order_release);
  generation_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadTeam::record_region_error(std::exception_ptr e) {
  {
    std::lock_guard<std::mutex> lk(error_mutex_);
    if (!region_error_) region_error_ = std::move(e);
  }
  // Release every thread blocked at (or headed for) a region barrier; they
  // unwind via RegionPoisoned and reach the region exit.
  region_barrier_.poison();
}

void ThreadTeam::run(const std::function<void(TeamCtx&)>& fn) {
  regions_started_.fetch_add(1, std::memory_order_relaxed);
  if (nthreads_ == 1) {
    TeamCtx ctx(*this, 0, 1);
    fn(ctx);  // exceptions propagate directly; no siblings to unwind
    return;
  }
  // A poisoned previous region leaves the barrier count arbitrary; restore a
  // clean state before workers can enter the new region.
  region_barrier_.reset();
  region_error_ = nullptr;
  job_ = &fn;
  done_count_.store(0, std::memory_order_relaxed);
  generation_.fetch_add(1, std::memory_order_release);
  generation_.notify_all();

  TeamCtx ctx(*this, 0, nthreads_);
  try {
    fn(ctx);
  } catch (const RegionPoisoned&) {
    // A worker threw first; its exception is already recorded.
  } catch (...) {
    record_region_error(std::current_exception());
  }

  // Wait until all workers report completion of this region — also on the
  // error path, so no worker still touches region state after run() returns.
  int done = done_count_.load(std::memory_order_acquire);
  while (done != nthreads_ - 1) {
    done_count_.wait(done, std::memory_order_acquire);
    done = done_count_.load(std::memory_order_acquire);
  }
  job_ = nullptr;
  if (region_error_) {
    // The done_count_ acquire loop ordered the workers' error publication
    // before this read; no lock needed.
    std::exception_ptr e = std::exchange(region_error_, nullptr);
    std::rethrow_exception(e);
  }
}

void ThreadTeam::worker_loop(int tid) {
  std::uint64_t seen = 0;
  for (;;) {
    std::uint64_t gen = generation_.load(std::memory_order_acquire);
    while (gen == seen) {
      generation_.wait(gen, std::memory_order_acquire);
      gen = generation_.load(std::memory_order_acquire);
    }
    seen = gen;
    if (shutdown_.load(std::memory_order_acquire)) return;
    assert(job_ != nullptr);
    TeamCtx ctx(*this, tid, nthreads_);
    try {
      (*job_)(ctx);
    } catch (const RegionPoisoned&) {
      // Sibling threw first; nothing to record.
    } catch (...) {
      record_region_error(std::current_exception());
    }
    done_count_.fetch_add(1, std::memory_order_release);
    done_count_.notify_one();
  }
}

}  // namespace smp
