#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <utility>

namespace smp {

/// Lock-free log-scale histogram of non-negative integer values (latency in
/// microseconds, batch sizes, queue depths).
///
/// Bucketing is HDR-style with 2 sub-bucket bits: values 0..3 get exact
/// buckets; a larger value with MSB position e lands in one of 4 linear
/// sub-buckets of the octave [2^e, 2^(e+1)), so any reported quantile is
/// within 25% of the true value while the whole histogram stays 252 fixed
/// counters — no allocation, no locks, record() is one relaxed fetch_add
/// per concurrent writer plus a sum/max update.
///
/// Readers take snapshot() — a plain copy of the counters — and compute
/// quantiles on the copy, so a scrape never blocks the serving hot path.
/// Counts are monotone; a snapshot taken during concurrent record() calls is
/// a valid histogram of *some* interleaving prefix.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 252;

  void record(std::uint64_t value) {
    buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    std::uint64_t prev = max_.load(std::memory_order_relaxed);
    while (prev < value &&
           !max_.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
    }
  }

  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  /// Immutable copy for quantile math off the hot path.
  struct Snapshot {
    std::array<std::uint64_t, kBuckets> buckets{};
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;

    [[nodiscard]] double mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }

    /// Value at quantile `q` in [0, 1]: the recorded max for q >= 1, with
    /// linear interpolation inside the containing bucket (exact for values
    /// < 4, <= 25% relative error above).  Capped at the recorded max so a
    /// top-bucket interpolation never reports a value nothing ever hit.
    [[nodiscard]] double quantile(double q) const {
      if (count == 0) return 0.0;
      if (q >= 1.0) return static_cast<double>(max);
      if (q < 0.0) q = 0.0;
      // Rank of the target sample, 1-based; q = 0 means the first sample.
      const double rank = q * static_cast<double>(count - 1) + 1.0;
      std::uint64_t seen = 0;
      for (std::size_t b = 0; b < kBuckets; ++b) {
        if (buckets[b] == 0) continue;
        const auto here = static_cast<double>(buckets[b]);
        if (static_cast<double>(seen) + here >= rank) {
          // Rank seen+1 maps to lo, rank seen+c to hi; a lone sample
          // reports the bucket's lower bound (exact for the small buckets).
          const double frac =
              here > 1.0
                  ? (rank - static_cast<double>(seen) - 1.0) / (here - 1.0)
                  : 0.0;
          const auto [lo, hi] = bucket_bounds(b);
          const double v = static_cast<double>(lo) +
                           frac * static_cast<double>(hi - lo);
          return v < static_cast<double>(max) ? v : static_cast<double>(max);
        }
        seen += buckets[b];
      }
      return static_cast<double>(max);
    }
  };

  [[nodiscard]] Snapshot snapshot() const {
    Snapshot s;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      s.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
    }
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
    return s;
  }

  /// Bucket index of `value` (also the unit test's oracle).
  [[nodiscard]] static constexpr std::size_t bucket_of(std::uint64_t value) {
    if (value < 4) return static_cast<std::size_t>(value);
    const int e = std::bit_width(value) - 1;  // 2^e <= value < 2^(e+1), e >= 2
    const auto sub = static_cast<std::size_t>((value >> (e - 2)) & 3);
    return static_cast<std::size_t>(e - 1) * 4 + sub;
  }

  /// Inclusive lower / exclusive upper value bound of bucket `b`.
  [[nodiscard]] static constexpr std::pair<std::uint64_t, std::uint64_t>
  bucket_bounds(std::size_t b) {
    if (b < 4) return {b, b + 1};
    const int e = static_cast<int>(b / 4) + 1;
    const auto sub = static_cast<std::uint64_t>(b % 4);
    const std::uint64_t width = std::uint64_t{1} << (e - 2);
    const std::uint64_t lo = (std::uint64_t{1} << e) + sub * width;
    const std::uint64_t hi = lo + width;  // wraps to 0 for the top bucket
    return {lo, hi == 0 ? ~std::uint64_t{0} : hi};
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace smp
