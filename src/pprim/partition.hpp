#pragma once

#include <cstddef>
#include <utility>

namespace smp {

/// Half-open index range [begin, end).
struct IndexRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] std::size_t size() const { return end - begin; }
  [[nodiscard]] bool empty() const { return begin >= end; }
};

/// Contiguous block of `n` items assigned to thread `tid` of `nthreads`,
/// balanced to within one element.
inline IndexRange block_range(std::size_t n, int tid, int nthreads) {
  const auto p = static_cast<std::size_t>(nthreads);
  const auto t = static_cast<std::size_t>(tid);
  const std::size_t base = n / p;
  const std::size_t extra = n % p;
  const std::size_t begin = t * base + (t < extra ? t : extra);
  const std::size_t len = base + (t < extra ? 1 : 0);
  return {begin, begin + len};
}

}  // namespace smp
