#pragma once

#include <atomic>
#include <cstddef>

#include "pprim/partition.hpp"
#include "pprim/thread_team.hpp"
#include "pprim/tuning.hpp"

namespace smp {

/// Statically partitioned parallel loop: each team thread gets one contiguous
/// block of [0, n).  `fn(i)` must be safe to run concurrently for distinct i.
template <class Fn>
void parallel_for(ThreadTeam& team, std::size_t n, Fn&& fn) {
  if (team.size() == 1 || n < parallel_for_cutoff()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  team.run([&](TeamCtx& ctx) {
    const IndexRange r = block_range(n, ctx.tid(), ctx.nthreads());
    for (std::size_t i = r.begin; i < r.end; ++i) fn(i);
  });
}

/// Variant usable *inside* an SPMD region: statically partitioned, no
/// implicit barrier (call ctx.barrier() yourself when needed).
template <class Fn>
void for_range(TeamCtx& ctx, std::size_t n, Fn&& fn) {
  const IndexRange r = block_range(n, ctx.tid(), ctx.nthreads());
  for (std::size_t i = r.begin; i < r.end; ++i) fn(i);
}

/// Dynamically scheduled loop usable *inside* an SPMD region.  `cursor` is
/// team-shared state: reset it to zero before the team reaches this call
/// (on the orchestrating thread before the region, or on tid 0 followed by a
/// ctx.barrier()).  No implicit barrier on exit — a thread that drains the
/// cursor returns while others may still be working on their last chunk.
template <class Fn>
void for_range_dynamic(TeamCtx& ctx, std::atomic<std::size_t>& cursor,
                       std::size_t n, std::size_t chunk, Fn&& fn) {
  (void)ctx;  // taken for API symmetry with the other in-region primitives
  for (;;) {
    const std::size_t begin = cursor.fetch_add(chunk, std::memory_order_relaxed);
    if (begin >= n) break;
    const std::size_t end = begin + chunk < n ? begin + chunk : n;
    for (std::size_t i = begin; i < end; ++i) fn(i);
  }
}

/// Dynamically scheduled parallel loop for irregular per-item cost (e.g. the
/// per-supervertex scans of Bor-FAL whose list lengths vary wildly).  Threads
/// grab fixed-size chunks from a shared atomic cursor.
template <class Fn>
void parallel_for_dynamic(ThreadTeam& team, std::size_t n, std::size_t chunk, Fn&& fn) {
  if (team.size() == 1 || n < 2 * chunk) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> cursor{0};
  team.run([&](TeamCtx&) {
    for (;;) {
      const std::size_t begin = cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) break;
      const std::size_t end = begin + chunk < n ? begin + chunk : n;
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }
  });
}

}  // namespace smp
