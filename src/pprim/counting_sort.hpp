#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "pprim/partition.hpp"
#include "pprim/thread_team.hpp"

namespace smp {

/// In-region parallel counting sort: stable scatter of `items` into `out`
/// ordered by key(item) in [0, num_keys), usable inside an open SPMD region.
/// All team threads call it with identical arguments; `counts` is team-shared
/// scratch (grow-only, resized by tid 0 behind a barrier).  Also fills
/// `key_offsets` (size num_keys + 1) with the start of each key's run in
/// `out` — exactly a CSR offsets array.  The final barrier publishes `out`
/// and `key_offsets` to every thread.
template <class T, class KeyFn>
void counting_sort_in_region(TeamCtx& ctx, std::span<const T> items,
                             std::span<T> out, std::size_t num_keys, KeyFn&& key,
                             std::vector<std::uint64_t>& key_offsets,
                             std::vector<std::uint64_t>& counts) {
  const std::size_t n = items.size();
  const int p = ctx.nthreads();
  const auto P = static_cast<std::size_t>(p);

  if (p == 1 || n < 1u << 14) {
    if (ctx.tid() == 0) {
      key_offsets.assign(num_keys + 1, 0);
      for (std::size_t i = 0; i < n; ++i) ++key_offsets[key(items[i]) + 1];
      for (std::size_t k = 1; k <= num_keys; ++k) key_offsets[k] += key_offsets[k - 1];
      counts.assign(key_offsets.begin(), key_offsets.end() - 1);
      for (std::size_t i = 0; i < n; ++i) out[counts[key(items[i])]++] = items[i];
    }
    if (p > 1) ctx.barrier();
    return;
  }

  if (ctx.tid() == 0) {
    key_offsets.assign(num_keys + 1, 0);
    counts.assign(num_keys * P, 0);
  }
  ctx.barrier();
  const auto t = static_cast<std::size_t>(ctx.tid());
  const IndexRange r = block_range(n, ctx.tid(), ctx.nthreads());
  for (std::size_t i = r.begin; i < r.end; ++i) {
    ++counts[key(items[i]) * P + t];
  }
  ctx.barrier();
  if (ctx.tid() == 0) {
    std::uint64_t running = 0;
    for (std::size_t k = 0; k < num_keys; ++k) {
      key_offsets[k] = running;
      for (std::size_t t2 = 0; t2 < P; ++t2) {
        const std::uint64_t c = counts[k * P + t2];
        counts[k * P + t2] = running;
        running += c;
      }
    }
    key_offsets[num_keys] = running;
  }
  ctx.barrier();
  // Scatter: each thread uses its own cursors in counts[.. * P + t].
  for (std::size_t i = r.begin; i < r.end; ++i) {
    const std::size_t k = key(items[i]);
    out[counts[k * P + t]++] = items[i];
  }
  ctx.barrier();
}

/// Parallel counting sort by a small integer key: stable scatter of `items`
/// into `out` ordered by key(item) in [0, num_keys).
///
/// This is the workhorse behind parallel CSR construction: keys are vertex
/// ids, items are arcs.  Two passes: per-thread key histograms, a serial
/// scan over the (num_keys × p) count matrix in key-major order (so the
/// output is stable: key first, then thread/block order = input order), and
/// a scatter.
///
/// Also fills `key_offsets` (size num_keys + 1) with the start of each key's
/// run in `out` — exactly a CSR offsets array.
template <class T, class KeyFn>
void counting_sort_by_key(ThreadTeam& team, std::span<const T> items,
                          std::span<T> out, std::size_t num_keys, KeyFn&& key,
                          std::vector<std::uint64_t>& key_offsets) {
  const std::size_t n = items.size();
  const auto p = static_cast<std::size_t>(team.size());
  key_offsets.assign(num_keys + 1, 0);

  if (team.size() == 1 || n < 1u << 14) {
    for (std::size_t i = 0; i < n; ++i) ++key_offsets[key(items[i]) + 1];
    for (std::size_t k = 1; k <= num_keys; ++k) key_offsets[k] += key_offsets[k - 1];
    std::vector<std::uint64_t> cursor(key_offsets.begin(), key_offsets.end() - 1);
    for (std::size_t i = 0; i < n; ++i) out[cursor[key(items[i])]++] = items[i];
    return;
  }

  // counts[k * p + t]: occurrences of key k in thread t's block.
  std::vector<std::uint64_t> counts(num_keys * p, 0);
  team.run([&](TeamCtx& ctx) {
    const auto t = static_cast<std::size_t>(ctx.tid());
    const IndexRange r = block_range(n, ctx.tid(), ctx.nthreads());
    for (std::size_t i = r.begin; i < r.end; ++i) {
      ++counts[key(items[i]) * p + t];
    }
    ctx.barrier();
    if (ctx.tid() == 0) {
      std::uint64_t running = 0;
      for (std::size_t k = 0; k < num_keys; ++k) {
        key_offsets[k] = running;
        for (std::size_t t2 = 0; t2 < p; ++t2) {
          const std::uint64_t c = counts[k * p + t2];
          counts[k * p + t2] = running;
          running += c;
        }
      }
      key_offsets[num_keys] = running;
    }
    ctx.barrier();
    // Scatter: each thread uses its own cursors in counts[.. * p + t].
    for (std::size_t i = r.begin; i < r.end; ++i) {
      const std::size_t k = key(items[i]);
      out[counts[k * p + t]++] = items[i];
    }
  });
}

}  // namespace smp
