#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "pprim/barrier.hpp"
#include "pprim/cacheline.hpp"

namespace smp {

class ThreadTeam;

/// Internal unwind signal: thrown by TeamCtx::barrier() on the surviving
/// threads of a region whose sibling already threw (the barrier was poisoned
/// so nobody blocks forever).  It never escapes ThreadTeam::run — the caller
/// rethrows the sibling's original exception instead.
struct RegionPoisoned {};

/// Per-thread context handed to the body of a parallel region.
///
/// Mirrors the SPMD style of the paper's SIMPLE primitive library [Bader &
/// JáJá 1999]: every thread runs the same function, distinguished by `tid`,
/// and synchronizes through `barrier()`.
class TeamCtx {
 public:
  TeamCtx(ThreadTeam& team, int tid, int nthreads)
      : team_(team), tid_(tid), nthreads_(nthreads) {}

  [[nodiscard]] int tid() const { return tid_; }
  [[nodiscard]] int nthreads() const { return nthreads_; }
  [[nodiscard]] ThreadTeam& team() const { return team_; }

  /// Synchronize all threads of the enclosing parallel region.  Throws
  /// RegionPoisoned when another thread of the region threw: the region is
  /// unwinding, and continuing past the barrier would compute on partial
  /// phase-1 state.
  void barrier();

 private:
  ThreadTeam& team_;
  int tid_;
  int nthreads_;
  SenseBarrier::LocalSense sense_{};
  friend class ThreadTeam;
};

/// A persistent team of worker threads executing fork-join SPMD regions.
///
/// The team is created once and reused for every parallel region, avoiding
/// per-iteration thread-spawn cost (each Borůvka iteration contains several
/// regions).  The calling thread participates as tid 0, so `ThreadTeam(1)`
/// runs everything inline with zero threading overhead.
///
/// Exception safety: a region body that throws on any thread does not
/// terminate the process and cannot deadlock the team.  The first exception
/// is captured, the region barrier is poisoned so sibling threads blocked in
/// (or headed for) barrier() unwind via RegionPoisoned, run() waits until
/// every worker has left the region, and then rethrows the captured
/// exception on the calling thread.  The team itself survives and can run
/// further regions.
class ThreadTeam {
 public:
  explicit ThreadTeam(int num_threads);
  ~ThreadTeam();

  ThreadTeam(const ThreadTeam&) = delete;
  ThreadTeam& operator=(const ThreadTeam&) = delete;

  [[nodiscard]] int size() const { return nthreads_; }

  /// Number of SPMD regions this team has started since construction.
  /// Deltas of this counter are how PhaseStats proves an algorithm iteration
  /// really ran as one fused region instead of a string of fork-joins.
  [[nodiscard]] std::uint64_t regions_started() const {
    return regions_started_.load(std::memory_order_relaxed);
  }

  /// Execute `fn(ctx)` on all team threads; returns when every thread has
  /// finished.  Regions must not nest.  If any thread's body throws, the
  /// first exception is rethrown here after the whole team has unwound.
  void run(const std::function<void(TeamCtx&)>& fn);

 private:
  void worker_loop(int tid);

  /// Record the first real exception of the current region and poison the
  /// barrier so the remaining threads unwind instead of blocking.
  void record_region_error(std::exception_ptr e);

  int nthreads_;
  SenseBarrier region_barrier_;
  std::vector<std::thread> workers_;

  // Job dispatch: a generation counter bumped per region; workers futex-wait
  // on it.  `done_count_` lets the caller wait for region completion.
  const std::function<void(TeamCtx&)>* job_ = nullptr;
  std::atomic<std::uint64_t> regions_started_{0};
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> generation_{0};
  alignas(kCacheLineBytes) std::atomic<int> done_count_{0};
  std::atomic<bool> shutdown_{false};

  // First exception thrown by any thread of the current region (cold path;
  // the mutex only serializes concurrent throwers).
  std::mutex error_mutex_;
  std::exception_ptr region_error_;

  friend class TeamCtx;
};

}  // namespace smp
