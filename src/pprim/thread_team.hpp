#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "pprim/barrier.hpp"
#include "pprim/cacheline.hpp"

namespace smp {

class ThreadTeam;

/// Per-thread context handed to the body of a parallel region.
///
/// Mirrors the SPMD style of the paper's SIMPLE primitive library [Bader &
/// JáJá 1999]: every thread runs the same function, distinguished by `tid`,
/// and synchronizes through `barrier()`.
class TeamCtx {
 public:
  TeamCtx(ThreadTeam& team, int tid, int nthreads)
      : team_(team), tid_(tid), nthreads_(nthreads) {}

  [[nodiscard]] int tid() const { return tid_; }
  [[nodiscard]] int nthreads() const { return nthreads_; }
  [[nodiscard]] ThreadTeam& team() const { return team_; }

  /// Synchronize all threads of the enclosing parallel region.
  void barrier();

 private:
  ThreadTeam& team_;
  int tid_;
  int nthreads_;
  SenseBarrier::LocalSense sense_{};
  friend class ThreadTeam;
};

/// A persistent team of worker threads executing fork-join SPMD regions.
///
/// The team is created once and reused for every parallel region, avoiding
/// per-iteration thread-spawn cost (each Borůvka iteration contains several
/// regions).  The calling thread participates as tid 0, so `ThreadTeam(1)`
/// runs everything inline with zero threading overhead.
class ThreadTeam {
 public:
  explicit ThreadTeam(int num_threads);
  ~ThreadTeam();

  ThreadTeam(const ThreadTeam&) = delete;
  ThreadTeam& operator=(const ThreadTeam&) = delete;

  [[nodiscard]] int size() const { return nthreads_; }

  /// Execute `fn(ctx)` on all team threads; returns when every thread has
  /// finished.  Regions must not nest.
  void run(const std::function<void(TeamCtx&)>& fn);

 private:
  void worker_loop(int tid);

  int nthreads_;
  SenseBarrier region_barrier_;
  std::vector<std::thread> workers_;

  // Job dispatch: a generation counter bumped per region; workers futex-wait
  // on it.  `done_count_` lets the caller wait for region completion.
  const std::function<void(TeamCtx&)>* job_ = nullptr;
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> generation_{0};
  alignas(kCacheLineBytes) std::atomic<int> done_count_{0};
  std::atomic<bool> shutdown_{false};

  friend class TeamCtx;
};

}  // namespace smp
