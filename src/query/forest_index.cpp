#include "query/forest_index.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <utility>

#include "core/connected_components.hpp"
#include "core/find_min.hpp"
#include "graph/edge_list.hpp"
#include "graph/msf_result.hpp"
#include "pprim/counting_sort.hpp"
#include "pprim/parallel_for.hpp"
#include "pprim/simd.hpp"

namespace smp::query {

namespace {

/// One directed forest arc for the CSR build: counting-sorted by src, so
/// adjacency runs are contiguous and (being a stable sort over arcs emitted
/// in ascending forest-position order) deterministically ordered.
struct Arc {
  graph::VertexId src;
  graph::VertexId dst;
  std::uint32_t eidx;  ///< forest position (index into fedges_)
};

/// top_k candidate under the full edge order: monotone weight bits, ties by
/// store id.
struct Cand {
  std::uint64_t bits;
  graph::EdgeId id;
  friend bool operator<(const Cand& a, const Cand& b) {
    return a.bits != b.bits ? a.bits < b.bits : a.id < b.id;
  }
};

}  // namespace

std::uint64_t labels_digest(std::span<const graph::VertexId> labels) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64
  for (const graph::VertexId l : labels) {
    std::uint32_t x = l;
    for (int b = 0; b < 4; ++b) {
      h ^= (x >> (8 * b)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

ForestIndex::ForestIndex(ThreadTeam& team, const dynamic::EdgeStore& store,
                         std::span<const graph::EdgeId> forest_ids,
                         std::uint64_t version) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t mf = forest_ids.size();
  stats_.version = version;

  // 1. Gather the forest, ascending store id.  Position in fedges_ is the
  // input index build_weight_ranks breaks ties by, so rank order ==
  // ⟨weight, store-id⟩ — the repo-wide WeightOrder.
  fedges_.resize(mf);
  fids_.assign(forest_ids.begin(), forest_ids.end());
  parallel_for(team, mf, [&](std::size_t i) {
    fedges_[i] = store.edge(forest_ids[i]);
  });
  build(team, store.num_vertices(), t0);
}

ForestIndex::ForestIndex(ThreadTeam& team, graph::VertexId num_vertices,
                         std::vector<graph::WEdge> fedges,
                         std::vector<graph::EdgeId> fids,
                         std::uint64_t version) {
  const auto t0 = std::chrono::steady_clock::now();
  stats_.version = version;
  fedges_ = std::move(fedges);
  fids_ = std::move(fids);
  build(team, num_vertices, t0);
}

void ForestIndex::build(ThreadTeam& team, graph::VertexId n,
                        std::chrono::steady_clock::time_point t0) {
  const std::size_t mf = fedges_.size();
  stats_.num_vertices = n;
  stats_.num_forest_edges = mf;

  graph::EdgeList fel(n);
  fel.edges = fedges_;
  std::vector<std::uint32_t> rank = core::build_weight_ranks(team, fel);

  // 2. CSR adjacency over the 2·mf arcs (stable counting sort by source).
  std::vector<Arc> arcs(2 * mf);
  parallel_for(team, mf, [&](std::size_t i) {
    const graph::WEdge& e = fedges_[i];
    const auto ei = static_cast<std::uint32_t>(i);
    arcs[2 * i] = Arc{e.u, e.v, ei};
    arcs[2 * i + 1] = Arc{e.v, e.u, ei};
  });
  std::vector<Arc> adj(arcs.size());
  std::vector<std::uint64_t> off;
  {
    std::vector<std::uint64_t> counts;
    team.run([&](TeamCtx& ctx) {
      counting_sort_in_region(
          ctx, std::span<const Arc>(arcs), std::span<Arc>(adj), n,
          [](const Arc& a) { return static_cast<std::size_t>(a.src); }, off,
          counts);
    });
  }
  arcs.clear();
  arcs.shrink_to_fit();

  // 3. Deterministic component labels; the root of each component is its
  // minimum vertex id (atomic write-min).
  core::CcResult cc = core::connected_components(team, fel);
  comp_ = std::move(cc.label);
  stats_.num_components = cc.num_components;
  const std::size_t C = cc.num_components;

  std::vector<graph::VertexId> root(C, graph::kInvalidVertex);
  std::vector<std::uint32_t> comp_size(C, 0);
  parallel_for(team, n, [&](std::size_t v) {
    const graph::VertexId c = comp_[v];
    std::atomic_ref<std::uint32_t>(comp_size[c])
        .fetch_add(1, std::memory_order_relaxed);
    std::atomic_ref<graph::VertexId> r(root[c]);
    graph::VertexId cur = r.load(std::memory_order_relaxed);
    const auto vv = static_cast<graph::VertexId>(v);
    while (vv < cur &&
           !r.compare_exchange_weak(cur, vv, std::memory_order_relaxed)) {
    }
  });
  std::vector<std::uint32_t> comp_base(C + 1, 0);
  for (std::size_t c = 0; c < C; ++c) {
    comp_base[c + 1] = comp_base[c] + comp_size[c];
  }

  // 4. Per-component DFS (components dispatched dynamically across the
  // team — each walk is sequential, so deep path-like trees cost O(size)
  // with a tiny constant instead of a level-synchronous BFS's O(depth)
  // rounds).  Fills parent/depth/parent-key and the Euler tour: preorder
  // positions, each component contiguous at comp_base[c].
  parent_.resize(n);
  depth_.resize(n);
  pkey_.assign(n, 0);
  tour_.resize(n);
  tin_.resize(n);
  tout_.resize(n);
  std::atomic<std::size_t> cursor{0};
  team.run([&](TeamCtx& ctx) {
    std::vector<std::pair<graph::VertexId, std::uint64_t>> stack;
    for_range_dynamic(ctx, cursor, C, 16, [&](std::size_t c) {
      const graph::VertexId r = root[c];
      std::uint32_t pos = comp_base[c];
      parent_[r] = r;
      depth_[r] = 0;
      tin_[r] = pos;
      tour_[pos++] = r;
      stack.clear();
      stack.emplace_back(r, off[r]);
      while (!stack.empty()) {
        auto& [x, cur] = stack.back();
        if (cur == off[x + 1]) {
          tout_[x] = pos;
          stack.pop_back();
          continue;
        }
        const Arc& a = adj[cur++];
        if (a.dst == parent_[x]) continue;
        const graph::VertexId w = a.dst;
        parent_[w] = x;
        depth_[w] = depth_[x] + 1;
        pkey_[w] = core::pack_key(rank[a.eidx], a.eidx);
        tin_[w] = pos;
        tour_[pos++] = w;
        stack.emplace_back(w, off[w]);
      }
    });
  });

  std::uint32_t max_depth = 0;
  {
    // Parallel max-reduce over depths (deterministic: max is commutative).
    std::atomic<std::uint32_t> md{0};
    team.run([&](TeamCtx& ctx) {
      std::uint32_t local = 0;
      for_range(ctx, n, [&](std::size_t v) {
        local = std::max(local, depth_[v]);
      });
      std::uint32_t cur = md.load(std::memory_order_relaxed);
      while (local > cur &&
             !md.compare_exchange_weak(cur, local, std::memory_order_relaxed)) {
      }
    });
    max_depth = md.load(std::memory_order_relaxed);
  }
  stats_.max_depth = max_depth;

  // 5. Skip-level tables: level k jumps 2^k ancestors carrying the max
  // packed key of the jumped edges (roots self-loop with key 0 — a real
  // path always contributes at least one genuine parent key, so the
  // neutral 0 never decides a bottleneck).
  levels_ = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(std::bit_width(max_depth)));
  stats_.levels = levels_;
  up_.resize(static_cast<std::size_t>(levels_) * n);
  upkey_.resize(static_cast<std::size_t>(levels_) * n);
  parallel_for(team, n, [&](std::size_t v) {
    up_[v] = parent_[v];
    upkey_[v] = pkey_[v];
  });
  for (std::uint32_t k = 1; k < levels_; ++k) {
    const graph::VertexId* up_prev = up_.data() + (k - 1) * std::size_t{n};
    const std::uint64_t* key_prev = upkey_.data() + (k - 1) * std::size_t{n};
    graph::VertexId* up_k = up_.data() + k * std::size_t{n};
    std::uint64_t* key_k = upkey_.data() + k * std::size_t{n};
    parallel_for(team, n, [&](std::size_t v) {
      const graph::VertexId mid = up_prev[v];
      up_k[v] = up_prev[mid];
      key_k[v] = std::max(key_prev[v], key_prev[mid]);
    });
  }

  built_at_ = std::chrono::steady_clock::now();
  stats_.build_seconds =
      std::chrono::duration<double>(built_at_ - t0).count();
}

ForestIndex::PathMax ForestIndex::path_max(graph::VertexId u,
                                           graph::VertexId v) const {
  PathMax r;
  if (comp_[u] != comp_[v]) return r;
  r.connected = true;
  if (u == v) return r;

  const std::size_t n = stats_.num_vertices;
  std::uint64_t best = 0;
  if (depth_[u] < depth_[v]) std::swap(u, v);
  std::uint32_t diff = depth_[u] - depth_[v];
  for (std::uint32_t k = 0; diff != 0; ++k, diff >>= 1) {
    if (diff & 1) {
      best = std::max(best, upkey_[k * n + u]);
      u = up_[k * n + u];
    }
  }
  if (u != v) {
    for (std::uint32_t k = levels_; k-- > 0;) {
      if (up_[k * n + u] != up_[k * n + v]) {
        best = std::max(best, upkey_[k * n + u]);
        best = std::max(best, upkey_[k * n + v]);
        u = up_[k * n + u];
        v = up_[k * n + v];
      }
    }
    best = std::max(best, pkey_[u]);
    best = std::max(best, pkey_[v]);
  }

  const auto pos = static_cast<std::size_t>(core::key_index(best));
  r.edge_id = fids_[pos];
  r.u = fedges_[pos].u;
  r.v = fedges_[pos].v;
  r.weight = fedges_[pos].w;
  return r;
}

const core::Dendrogram& ForestIndex::dendrogram() const {
  std::lock_guard<std::mutex> lk(dend_mu_);
  if (!dend_) {
    // A forest-shaped MsfResult: edge "ids" are the store ids, so the
    // dendrogram's Kruskal pass breaks weight ties exactly like every
    // solver in the repo.
    graph::MsfResult msf;
    msf.edges = fedges_;
    msf.edge_ids = fids_;
    dend_ = std::make_unique<core::Dendrogram>(stats_.num_vertices, msf);
  }
  return *dend_;
}

ForestIndex::Cut ForestIndex::cut(graph::Weight threshold,
                                  std::vector<graph::VertexId>* labels) const {
  const core::Dendrogram& d = dendrogram();
  Cut c;
  std::vector<graph::VertexId> l = d.cut_at(threshold, &c.num_clusters);
  c.labels_digest = labels_digest(l);
  if (labels != nullptr) *labels = std::move(l);
  return c;
}

namespace {

/// The shared top_k scan kernel: `slots` positions, each exposing a sort key
/// (kEmptyKey = skip), a store id, and the edge itself.  Positions must be
/// ascending by store id so positional and id tie-breaks agree.
template <typename KeyFn, typename IdFn, typename EdgeFn>
std::vector<ForestIndex::TopkEdge> scan_top_k(ThreadTeam& team,
                                              std::size_t slots, std::size_t k,
                                              KeyFn&& key_of, IdFn&& id_of,
                                              EdgeFn&& edge_of) {
  std::vector<ForestIndex::TopkEdge> out;
  const std::size_t block = 1024;
  const std::size_t num_blocks = (slots + block - 1) / block;
  const int p = team.size();
  // Per-thread bounded worst-first heaps (heap top == current k-th bound).
  std::vector<std::vector<Cand>> heaps(static_cast<std::size_t>(p));
  std::atomic<std::size_t> cursor{0};
  team.run([&](TeamCtx& ctx) {
    auto& heap = heaps[static_cast<std::size_t>(ctx.tid())];
    heap.reserve(k);
    std::vector<std::uint64_t> keys(block);
    const auto consider = [&](Cand c) {
      if (heap.size() < k) {
        heap.push_back(c);
        std::push_heap(heap.begin(), heap.end());
      } else if (c < heap.front()) {
        std::pop_heap(heap.begin(), heap.end());
        heap.back() = c;
        std::push_heap(heap.begin(), heap.end());
      }
    };
    for_range_dynamic(ctx, cursor, num_blocks, 4, [&](std::size_t b) {
      const std::size_t lo = b * block;
      const std::size_t hi = std::min(lo + block, slots);
      const std::size_t bn = hi - lo;
      // Key pass: weight bits for live cluster-crossing edges, all-ones
      // (loses every min) for the rest.
      for (std::size_t i = 0; i < bn; ++i) keys[i] = key_of(lo + i);
      // SIMD skim: repeatedly pull the block's argmin; once it cannot beat
      // the heap's bound the whole remainder of the block is out.
      for (;;) {
        const std::size_t a = u64_argmin(keys.data(), bn);
        const std::uint64_t bits = keys[a];
        if (bits == core::kEmptyKey) break;
        if (heap.size() == k) {
          const Cand& worst = heap.front();
          if (bits > worst.bits) break;
          if (bits == worst.bits && id_of(lo + a) > worst.id) {
            keys[a] = core::kEmptyKey;
            continue;
          }
        }
        consider(Cand{bits, id_of(lo + a)});
        keys[a] = core::kEmptyKey;
      }
    });
  });

  std::vector<Cand> all;
  for (const auto& h : heaps) all.insert(all.end(), h.begin(), h.end());
  std::sort(all.begin(), all.end());
  if (all.size() > k) all.resize(k);
  out.reserve(all.size());
  for (const Cand& c : all) {
    const graph::WEdge e = edge_of(c.id);
    out.push_back(ForestIndex::TopkEdge{c.id, e.u, e.v, e.w});
  }
  return out;
}

}  // namespace

std::vector<ForestIndex::TopkEdge> ForestIndex::top_k(
    ThreadTeam& team, const dynamic::EdgeStore& store, std::size_t k,
    std::optional<graph::Weight> lambda) const {
  if (k == 0) return {};
  std::vector<graph::VertexId> labels;
  if (lambda.has_value()) (void)cut(*lambda, &labels);
  const graph::VertexId* cl = labels.empty() ? nullptr : labels.data();
  return scan_top_k(
      team, static_cast<std::size_t>(store.size()), k,
      [&](std::size_t pos) {
        const auto id = static_cast<graph::EdgeId>(pos);
        if (!store.is_live(id)) return core::kEmptyKey;
        const graph::WEdge& e = store.edge(id);
        if (cl != nullptr && cl[e.u] == cl[e.v]) return core::kEmptyKey;
        return core::monotone_weight_bits(e.w);
      },
      [](std::size_t pos) { return static_cast<graph::EdgeId>(pos); },
      [&](graph::EdgeId id) { return store.edge(id); });
}

std::vector<ForestIndex::TopkEdge> ForestIndex::top_k(
    ThreadTeam& team, std::span<const graph::WEdge> live,
    std::span<const graph::EdgeId> live_ids, std::size_t k,
    std::optional<graph::Weight> lambda) const {
  if (k == 0) return {};
  std::vector<graph::VertexId> labels;
  if (lambda.has_value()) (void)cut(*lambda, &labels);
  const graph::VertexId* cl = labels.empty() ? nullptr : labels.data();
  // Positions enumerate the snapshot's live edges; live_ids is ascending, so
  // positional order and store-id order agree as the kernel requires.
  return scan_top_k(
      team, live.size(), k,
      [&](std::size_t pos) {
        const graph::WEdge& e = live[pos];
        if (cl != nullptr && cl[e.u] == cl[e.v]) return core::kEmptyKey;
        return core::monotone_weight_bits(e.w);
      },
      [&](std::size_t pos) { return live_ids[pos]; },
      [&](graph::EdgeId id) {
        const auto it = std::lower_bound(live_ids.begin(), live_ids.end(), id);
        return live[static_cast<std::size_t>(it - live_ids.begin())];
      });
}

}  // namespace smp::query
