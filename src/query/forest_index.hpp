#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "core/dendrogram.hpp"
#include "dynamic/edge_store.hpp"
#include "graph/types.hpp"
#include "pprim/thread_team.hpp"

namespace smp::query {

/// Immutable Euler-tour topology index over one committed version of a
/// maintained forest — the query engine the serving layer answers pathmax /
/// conn / cut / topk from, and the substrate the polylog dynamic-deletion
/// line (Holm–Rotenberg–Wulff-Nilsen; ROADMAP) will search replacement
/// edges on.
///
/// Built in parallel on the solver ThreadTeam from the forest edge list:
///
///   1. forest edges gathered ascending by store id, so the position of an
///      edge in the index IS its WeightOrder tie-break rank order input —
///      core::build_weight_ranks then yields a 32-bit *weight rank* per
///      forest edge whose unsigned order equals ⟨weight, store-id⟩ exactly
///      (the find_min packed-key scheme of PR 5, reused verbatim);
///   2. a CSR adjacency over the 2·m_f forest arcs (stable counting sort,
///      so child order is deterministic and thread-count independent);
///   3. deterministic component labels (core::connected_components) and
///      per-component roots (minimum vertex id of the component);
///   4. an Euler/DFS tour: preorder vertex sequence with each component
///      contiguous, entry/exit positions (tin/tout: the subtree of v is
///      tour[tin(v), tout(v))), parent pointers, depths, and the packed
///      ⟨rank, forest-position⟩ key of each vertex's parent edge;
///   5. skip-level (binary-lifting) ancestor + path-max tables over the
///      packed keys, so one unsigned uint64 max along a path is the full
///      WeightOrder bottleneck comparison.
///
/// The whole object is immutable after construction (the lazily built
/// dendrogram for cut() is memoized under an internal mutex); readers on
/// any number of threads may query one instance concurrently.  Consistency
/// with the live session state is the serving layer's job: each index
/// carries the session `version` it was built from, and ServiceCore swaps
/// whole instances via shared_ptr so a query never observes a half-built
/// index.
class ForestIndex {
 public:
  struct Stats {
    std::uint64_t version = 0;
    graph::VertexId num_vertices = 0;
    std::size_t num_forest_edges = 0;
    std::size_t num_components = 0;
    std::uint32_t max_depth = 0;
    std::uint32_t levels = 0;
    double build_seconds = 0;
  };

  /// Bottleneck edge on the u–v forest path.  `connected == false` means
  /// no path; u == v yields connected == true with edge_id == kInvalidEdge
  /// (an empty path has no bottleneck — the serve layer rejects it before
  /// it gets here).
  struct PathMax {
    bool connected = false;
    graph::EdgeId edge_id = graph::kInvalidEdge;  ///< store id
    graph::VertexId u = graph::kInvalidVertex;    ///< bottleneck endpoints
    graph::VertexId v = graph::kInvalidVertex;
    graph::Weight weight = 0;
  };

  /// Single-linkage cut at a threshold: cluster count plus an
  /// order-sensitive FNV-1a digest of the (deterministic) label sequence,
  /// cheap enough to ship over the wire and strong enough for the stress
  /// suite's bit-identity comparison.
  struct Cut {
    std::size_t num_clusters = 0;
    std::uint64_t labels_digest = 0;
  };

  struct TopkEdge {
    graph::EdgeId id = graph::kInvalidEdge;  ///< store id
    graph::VertexId u = 0;
    graph::VertexId v = 0;
    graph::Weight w = 0;
  };

  /// Builds from the live store and the maintained forest's store ids
  /// (ascending, as DynamicMsf::forest_edge_ids returns them).  Runs a
  /// sequence of parallel phases on `team` — the caller must own the team
  /// (serving: hold solver_mu) and must not be inside an open region.
  ForestIndex(ThreadTeam& team, const dynamic::EdgeStore& store,
              std::span<const graph::EdgeId> forest_ids, std::uint64_t version);

  /// Builds from an already-materialized forest — no EdgeStore needed.
  /// `fedges` must be ascending by store id and `fids` its parallel store
  /// ids (exactly what a serve-layer MVCC snapshot captures at publish
  /// time), so the index can be built long after the store has moved on.
  ForestIndex(ThreadTeam& team, graph::VertexId num_vertices,
              std::vector<graph::WEdge> fedges,
              std::vector<graph::EdgeId> fids, std::uint64_t version);

  [[nodiscard]] std::uint64_t version() const { return stats_.version; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::chrono::steady_clock::time_point built_at() const {
    return built_at_;
  }

  /// O(1): same tree of the forest?
  [[nodiscard]] bool connected(graph::VertexId u, graph::VertexId v) const {
    return comp_[u] == comp_[v];
  }

  /// O(log n) bottleneck edge on the forest path (see PathMax).
  [[nodiscard]] PathMax path_max(graph::VertexId u, graph::VertexId v) const;

  /// Single-linkage clustering at threshold (edges with weight <= threshold
  /// merge).  Memoizes the dendrogram on first use.  If `labels` is
  /// non-null it receives the per-vertex cluster labels (dense, numbered by
  /// first occurrence — deterministic).
  [[nodiscard]] Cut cut(graph::Weight threshold,
                        std::vector<graph::VertexId>* labels = nullptr) const;

  /// The k lightest live edges of `store` crossing distinct clusters, in
  /// ascending ⟨weight, store-id⟩ order.  With `lambda` the clusters are
  /// cut(*lambda); without, every vertex is its own cluster, i.e. the k
  /// lightest live edges overall.  The caller must hold the session state
  /// (shared) lock: unlike the other ops this reads the mutable EdgeStore,
  /// not just the index.  Scans in blocks, skimming each block with the
  /// u64_argmin SIMD kernel over monotone weight bits so only candidates
  /// that beat the current k-th bound are examined individually.
  [[nodiscard]] std::vector<TopkEdge> top_k(
      ThreadTeam& team, const dynamic::EdgeStore& store, std::size_t k,
      std::optional<graph::Weight> lambda) const;

  /// top_k over an immutable live-edge snapshot (`live` parallel to
  /// `live_ids`, ascending store ids) instead of the mutable store — the
  /// MVCC read path, needing no lock at all.  Identical results to the
  /// store overload on the same committed state.
  [[nodiscard]] std::vector<TopkEdge> top_k(
      ThreadTeam& team, std::span<const graph::WEdge> live,
      std::span<const graph::EdgeId> live_ids, std::size_t k,
      std::optional<graph::Weight> lambda) const;

  // --- topology accessors (tests; later: replacement-edge search) ---
  [[nodiscard]] graph::VertexId num_vertices() const {
    return stats_.num_vertices;
  }
  [[nodiscard]] std::size_t num_forest_edges() const { return fedges_.size(); }
  [[nodiscard]] const graph::WEdge& forest_edge(std::size_t i) const {
    return fedges_[i];
  }
  [[nodiscard]] graph::EdgeId forest_id(std::size_t i) const {
    return fids_[i];
  }
  [[nodiscard]] graph::VertexId component(graph::VertexId v) const {
    return comp_[v];
  }
  [[nodiscard]] graph::VertexId parent(graph::VertexId v) const {
    return parent_[v];
  }
  [[nodiscard]] std::uint32_t depth(graph::VertexId v) const {
    return depth_[v];
  }
  [[nodiscard]] std::uint32_t tin(graph::VertexId v) const { return tin_[v]; }
  [[nodiscard]] std::uint32_t tout(graph::VertexId v) const { return tout_[v]; }
  [[nodiscard]] const std::vector<graph::VertexId>& tour() const {
    return tour_;
  }

 private:
  /// Shared build phases 2–5; fedges_/fids_/stats_.version already set.
  void build(ThreadTeam& team, graph::VertexId num_vertices,
             std::chrono::steady_clock::time_point t0);

  [[nodiscard]] const core::Dendrogram& dendrogram() const;

  Stats stats_;
  std::chrono::steady_clock::time_point built_at_;

  // Forest edges ascending by store id; position is the packed-key index.
  std::vector<graph::WEdge> fedges_;
  std::vector<graph::EdgeId> fids_;

  // Per-vertex topology.
  std::vector<graph::VertexId> comp_;    ///< dense component label
  std::vector<graph::VertexId> parent_;  ///< roots point at themselves
  std::vector<std::uint32_t> depth_;
  std::vector<std::uint64_t> pkey_;  ///< packed key of parent edge; 0 at roots
  std::vector<graph::VertexId> tour_;
  std::vector<std::uint32_t> tin_;
  std::vector<std::uint32_t> tout_;

  // Level-major skip tables: up_[k * n + v] jumps 2^k ancestors;
  // upkey_[k * n + v] is the packed max key along that jump.
  std::uint32_t levels_ = 0;
  std::vector<graph::VertexId> up_;
  std::vector<std::uint64_t> upkey_;

  // Lazily built single-linkage dendrogram for cut().
  mutable std::mutex dend_mu_;
  mutable std::unique_ptr<core::Dendrogram> dend_;
};

/// Order-sensitive FNV-1a over a label sequence — the digest cut() reports.
[[nodiscard]] std::uint64_t labels_digest(
    std::span<const graph::VertexId> labels);

}  // namespace smp::query
