#include "serve/placement.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace smp::serve::placement {

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

ShardRing::ShardRing(int shards, int vnodes) : shards_(std::max(1, shards)) {
  vnodes = std::max(1, vnodes);
  ring_.reserve(static_cast<std::size_t>(shards_) *
                static_cast<std::size_t>(vnodes));
  char buf[48];
  for (int s = 0; s < shards_; ++s) {
    for (int v = 0; v < vnodes; ++v) {
      std::snprintf(buf, sizeof buf, "shard-%d#%d", s, v);
      ring_.emplace_back(fnv1a(buf), s);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

int ShardRing::shard_for(std::string_view key) const {
  if (shards_ == 1) return 0;
  const std::uint64_t h = fnv1a(key);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const std::pair<std::uint64_t, int>& p, std::uint64_t x) {
        return p.first < x;
      });
  if (it == ring_.end()) it = ring_.begin();  // wrap around the ring
  return it->second;
}

std::vector<int> parse_cpulist(std::string_view s) {
  std::vector<int> out;
  std::size_t i = 0;
  const auto read_int = [&](long& v) {
    std::size_t start = i;
    while (i < s.size() && s[i] >= '0' && s[i] <= '9') ++i;
    if (i == start) return false;
    v = std::stol(std::string(s.substr(start, i - start)));
    return true;
  };
  while (i < s.size()) {
    long lo = 0;
    if (!read_int(lo)) return {};
    long hi = lo;
    if (i < s.size() && s[i] == '-') {
      ++i;
      if (!read_int(hi)) return {};
    }
    if (hi < lo || hi - lo > 4096) return {};
    for (long c = lo; c <= hi; ++c) out.push_back(static_cast<int>(c));
    while (i < s.size() && (s[i] == ',' || s[i] == '\n' || s[i] == ' ')) ++i;
  }
  return out;
}

std::vector<std::vector<int>> numa_nodes() {
  std::vector<std::vector<int>> nodes;
#ifdef __linux__
  for (int n = 0; n < 1024; ++n) {
    const std::string path =
        "/sys/devices/system/node/node" + std::to_string(n) + "/cpulist";
    std::ifstream f(path);
    if (!f.is_open()) break;
    std::string list;
    std::getline(f, list);
    std::vector<int> cpus = parse_cpulist(list);
    if (!cpus.empty()) nodes.push_back(std::move(cpus));
  }
#endif
  return nodes;
}

void pin_current_thread(const std::vector<int>& cpus) {
  if (cpus.empty()) return;
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  for (const int c : cpus) {
    if (c >= 0 && c < CPU_SETSIZE) CPU_SET(c, &set);
  }
  pthread_setaffinity_np(pthread_self(), sizeof set, &set);
#endif
}

}  // namespace smp::serve::placement
