#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/msf.hpp"
#include "persist/session_log.hpp"
#include "pprim/thread_team.hpp"
#include "serve/metrics.hpp"
#include "serve/placement.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"

namespace smp::query {
class ForestIndex;
}

namespace smp::serve {

struct Session;          // service_core.cpp
struct SessionSnapshot;  // service_core.cpp

struct ServeOptions {
  /// Solver backend for every session: algorithm, seed, fallback policy.
  /// `msf.threads` sizes each shard's solver ThreadTeam; within one shard
  /// solves are scheduled one at a time; per-request budgets are installed
  /// by the dispatcher, so any budget set here is ignored.
  core::MsfOptions msf;
  /// Dispatcher threads per shard executing requests off that shard's
  /// queue.  Reads are served inline on the submitting thread when
  /// possible; queued work (writes, admin ops, reads against a not-yet-open
  /// session) needs >= 2 dispatchers for write coalescing to ever happen
  /// (one thread flushing while others feed the session's pending list).
  int dispatchers = 4;
  /// Per-shard admission-controlled request queue bound: a submit against a
  /// full queue fails fast with kOverloaded instead of growing the backlog.
  std::size_t queue_capacity = 256;
  /// Deadline applied to requests that carry none; 0 = unbounded.
  double default_deadline_s = 0;
  /// Coalescing window: after picking up the first write of a burst the
  /// flusher waits this long before draining the session's pending list, so
  /// a burst arriving over the window pays ONE sparsified solve instead of
  /// N (the request-batching shape of inference serving).  0 = flush
  /// immediately; bursts then only coalesce while a previous solve runs.
  double coalesce_window_s = 0;
  /// Store compaction trigger, checked after each flush: compact when
  /// live/slots < compact_live_ratio and slots >= compact_min_slots.
  double compact_live_ratio = 0.5;
  std::size_t compact_min_slots = 4096;
  /// Rebuild a query-active session's ForestIndex eagerly at the end of each
  /// write flush (while no further writes are pending), so the query fast
  /// path finds a pre-built index on the latest snapshot instead of building
  /// lazily on the read path.  Sessions that never saw a query op never pay
  /// this.
  bool query_index_eager = true;

  // --- scale-out serving (PR 9) ---
  /// Solver shards: each shard owns a ThreadTeam, a bounded request queue
  /// and its dispatcher pool; sessions are placed on shards by consistent
  /// hashing of the session name.  1 (default) reproduces the single-pool
  /// behavior of earlier PRs exactly; 0 auto-sizes from the machine's
  /// hardware threads.
  int shards = 1;
  /// MVCC snapshot ring: how many committed epochs each session retains for
  /// pinned reads.  Older epochs are reclaimed (and pinning them fails with
  /// kInvalidInput).  Minimum 1 — the latest epoch always exists.
  int snapshot_ring = 8;
  /// Per-client token-bucket rate limit on write/admin ops (requests per
  /// second, 0 = off).  Read-shaped ops ride the priority lane and are never
  /// rate limited — under overload the cheap reads keep flowing while
  /// writers are shed with kRateLimited.  Clients are identified by
  /// Request::client_id (stamped by the transports); unattributed requests
  /// are never limited.
  double rate_limit_rps = 0;
  /// Bucket depth (burst allowance); 0 = same as rate_limit_rps.
  double rate_limit_burst = 0;

  // --- durability (PR 6) ---
  /// Root of the durable state: each session persists to
  /// <data_dir>/<name>/ (WAL segments + snapshots, see persist/).  Empty
  /// disables persistence entirely — the in-memory behavior every earlier
  /// test relies on.  Opening the service recovers every session found
  /// under the root before the first request is admitted; corruption that
  /// recovery must not guess past makes the constructor throw.
  std::string data_dir;
  /// When an acknowledged write is actually on disk (see persist::FsyncPolicy).
  persist::FsyncPolicy fsync = persist::FsyncPolicy::kInterval;
  /// Group-commit window for fsync=interval, seconds.
  double fsync_interval_s = 0.005;
  /// Snapshot + WAL-rotation triggers and snapshot retention.
  std::uint64_t snapshot_wal_bytes = 64ull << 20;
  std::uint64_t snapshot_every_records = 0;  ///< 0 = size-based only
  int snapshot_retain = 2;
  /// Write the clean-shutdown epilogue (final snapshot + CLEAN marker) on
  /// shutdown().  Benches and recovery tests turn this off to leave a WAL
  /// tail behind for the next cold start to replay.
  bool clean_shutdown = true;
};

/// Transport-agnostic core of the MSF service: owns named graph sessions
/// (EdgeStore + DynamicMsf each), the solver shards (ThreadTeam + bounded
/// MPMC queue + dispatcher pool each), and the metrics registry.  The UDS
/// daemon, the TCP daemon, the in-process bench and the tests all drive
/// exactly this object — the wire protocols are thin layers on top.
///
/// Concurrency model per session:
///  * every committed mutation publishes an immutable epoch-stamped MVCC
///    snapshot (live graph + forest + lazily built query index); reads and
///    queries serve from a snapshot without ever touching the writer lock,
///    so they are wait-free with respect to writers and are executed inline
///    on the submitting thread (the read priority lane);
///  * a bounded ring of recent epochs stays pinnable (Request::pin_epoch);
///    epochs that fall off the ring are reclaimed and refuse pins;
///  * writes enter a per-session pending list; one dispatcher becomes the
///    flusher, merges every compatible queued write into a single
///    apply_batch under the exclusive lock, and answers all of them —
///    coalescing N queued writes into one sparsified solve;
///  * solves (initial, apply, recompute) are scheduled one at a time per
///    shard on that shard's ThreadTeam; sessions hash onto shards by name,
///    so cross-session solver load spreads across shards instead of
///    queueing behind one pool.
///
/// Every request carries a deadline (its own or the default) mapped onto
/// smp::ExecutionBudget: a slow solve returns kDeadlineExceeded at the next
/// iteration checkpoint instead of wedging the queue.  A write that fails
/// *mid-solve* has already mutated the store; the service repairs the
/// forest with an unbudgeted recompute before touching the session again
/// (response field `applied` says which side of the line a failure fell).
class ServiceCore {
 public:
  explicit ServiceCore(ServeOptions opts = {});
  ~ServiceCore();

  ServiceCore(const ServiceCore&) = delete;
  ServiceCore& operator=(const ServiceCore&) = delete;

  /// Asynchronous entry point: admit the request or fail fast.  `done` is
  /// invoked exactly once — inline on this thread for read-shaped ops and
  /// rejections, on a dispatcher thread otherwise — and must not block on
  /// the service.  Returns false when the request was rejected up front
  /// (queue full, rate limited, or shutting down; `done` has already run).
  bool submit(Request req, std::function<void(Response)> done);

  /// Synchronous convenience wrapper around submit().
  Response call(Request req);

  /// Stops admitting, drains every queued request, joins the dispatchers.
  /// Idempotent; the destructor calls it.
  void shutdown();

  /// Transport registry, reported by the health verb: servers announce
  /// themselves ("uds:/path", "tcp:9090") on start and retract on stop.
  void add_listener(const std::string& name);
  void remove_listener(const std::string& name);

  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] std::string stats_json() const;
  [[nodiscard]] const ServeOptions& options() const { return opts_; }
  [[nodiscard]] int shard_count() const {
    return static_cast<int>(shards_.size());
  }
  /// What startup recovery did (sessions restored, records replayed, torn
  /// tails truncated, snapshot generations skipped) — one line per event,
  /// for the daemon to log.  Empty when persistence is off or the data dir
  /// was empty.
  [[nodiscard]] const std::vector<std::string>& recovery_notes() const {
    return recovery_notes_;
  }

 private:
  friend struct Session;  // pending lists hold QueuedRequest

  using Clock = std::chrono::steady_clock;

  struct QueuedRequest {
    Request req;
    std::function<void(Response)> done;
    Clock::time_point submitted;
    Clock::time_point deadline;  ///< Clock::time_point::max() = none
  };

  /// One solver shard: a ThreadTeam (one solve at a time, serialized by
  /// solver_mu), a bounded request queue with its dispatcher pool, and the
  /// NUMA cpu set its team threads are pinned to (empty = no pinning).
  struct Shard {
    int id = 0;
    std::unique_ptr<ThreadTeam> team;
    std::mutex solver_mu;  ///< serializes solves on `team`
    std::unique_ptr<BoundedQueue<QueuedRequest>> queue;
    std::vector<std::thread> dispatchers;
    std::vector<int> cpus;
  };

  struct TokenBucket {
    double tokens = 0;
    Clock::time_point last{};
  };

  void dispatcher_loop(Shard& shard);
  void execute(QueuedRequest qr);
  void finish(QueuedRequest& qr, Response r);

  [[nodiscard]] Shard& shard_of(const std::string& session_name);
  [[nodiscard]] std::shared_ptr<Session> find_session(const std::string& name);
  /// Token-bucket admission for write/admin ops; true = admit.
  [[nodiscard]] bool rate_admit(const std::string& client_id);

  Response do_open(const Request& req);
  Response do_drop(const Request& req);
  Response do_list();
  Response do_health(const Request& req);
  Response do_read(Session& s, const QueuedRequest& qr);
  Response do_recompute(Session& s, const QueuedRequest& qr);
  Response do_compact(Session& s);
  /// kPathMax / kConn / kCut / kTopK, served entirely from the MVCC
  /// snapshot the request pins (latest by default): no state lock, so they
  /// never queue behind coalesced writes.
  Response do_query(Session& s, const QueuedRequest& qr);

  // --- MVCC snapshot machinery ---
  /// Publishes an immutable snapshot of the session's committed state as
  /// the newest epoch, retiring the oldest ring entry when the ring is
  /// full.  Caller holds the exclusive state lock (or the session is not
  /// yet visible).
  void publish_snapshot_locked(Session& s);
  /// The snapshot for `pin_epoch` (0 = latest).  Returns nullptr and fills
  /// `err` when the epoch was retired or never committed.
  [[nodiscard]] std::shared_ptr<SessionSnapshot> pinned_snapshot(
      Session& s, std::uint64_t pin_epoch, Response* err);
  /// The snapshot's ForestIndex, building it on first use.  `eager` builds
  /// on the session's shard team (caller: the write flusher, holding the
  /// exclusive state lock); lazy builds run inline on the calling thread.
  std::shared_ptr<const query::ForestIndex> snapshot_index(
      Session& s, SessionSnapshot& snap, bool eager);

  void enqueue_write(const std::shared_ptr<Session>& s, QueuedRequest qr);
  void flush_writes(Session& s);
  void maybe_compact(Session& s);
  void repair_after_failed_apply(Session& s);

  // --- durability plumbing (all no-ops when data_dir is empty) ---
  [[nodiscard]] persist::SessionLogOptions log_options();
  [[nodiscard]] std::string session_dir(const std::string& name) const;
  void recover_sessions();
  void replay_tail(Session& s, std::vector<persist::WalRecord> tail);
  /// Appends a WAL record for an applied group and registers its
  /// idempotency ids; returns the commit LSN (0 when logging is off or the
  /// log failed — see Session::log_broken).
  std::uint64_t log_applied_group(Session& s,
                                  std::vector<graph::WEdge> insertions,
                                  std::vector<graph::EdgeId> deletions,
                                  std::vector<std::string> idem_ids);
  /// Appends a compact marker record (replay must reproduce the store-id
  /// renumbering at the same point); returns its LSN, 0 when logging is off.
  std::uint64_t log_compact_record(Session& s);
  /// Snapshots the session state at its current committed LSN (caller holds
  /// the exclusive state lock).
  void snapshot_session_locked(Session& s);

  ServeOptions opts_;
  MetricsRegistry metrics_;
  Clock::time_point started_;

  std::vector<std::unique_ptr<Shard>> shards_;
  placement::ShardRing ring_;

  mutable std::mutex sessions_mu_;
  std::map<std::string, std::shared_ptr<Session>> sessions_;
  std::vector<std::string> recovery_notes_;

  std::mutex listeners_mu_;
  std::vector<std::string> listeners_;

  std::mutex rl_mu_;
  std::unordered_map<std::string, TokenBucket> buckets_;

  std::atomic<bool> stopping_{false};
  std::once_flag shutdown_once_;
};

}  // namespace smp::serve
