#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/msf.hpp"
#include "persist/session_log.hpp"
#include "pprim/thread_team.hpp"
#include "serve/metrics.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"

namespace smp::query {
class ForestIndex;
}

namespace smp::serve {

struct Session;  // service_core.cpp

struct ServeOptions {
  /// Solver backend for every session: algorithm, seed, fallback policy.
  /// `msf.threads` sizes the shared solver ThreadTeam — one pool for the
  /// whole service, scheduled one solve at a time; per-request budgets are
  /// installed by the dispatcher, so any budget set here is ignored.
  core::MsfOptions msf;
  /// Dispatcher threads executing requests off the queue.  Reads on one
  /// session run concurrently (shared lock), so this is also the read
  /// concurrency; it must be >= 2 for write coalescing to ever happen (one
  /// thread flushing while others feed the session's pending list).
  int dispatchers = 4;
  /// Admission-controlled request queue bound: a submit against a full
  /// queue fails fast with kOverloaded instead of growing the backlog.
  std::size_t queue_capacity = 256;
  /// Deadline applied to requests that carry none; 0 = unbounded.
  double default_deadline_s = 0;
  /// Coalescing window: after picking up the first write of a burst the
  /// flusher waits this long before draining the session's pending list, so
  /// a burst arriving over the window pays ONE sparsified solve instead of
  /// N (the request-batching shape of inference serving).  0 = flush
  /// immediately; bursts then only coalesce while a previous solve runs.
  double coalesce_window_s = 0;
  /// Store compaction trigger, checked after each flush: compact when
  /// live/slots < compact_live_ratio and slots >= compact_min_slots.
  double compact_live_ratio = 0.5;
  std::size_t compact_min_slots = 4096;
  /// Rebuild a query-active session's ForestIndex eagerly at the end of each
  /// write flush (while no further writes are pending), so the query fast
  /// path finds a version-matched index instead of rebuilding lazily under
  /// the shared lock.  Sessions that never saw a query op never pay this.
  bool query_index_eager = true;

  // --- durability (PR 6) ---
  /// Root of the durable state: each session persists to
  /// <data_dir>/<name>/ (WAL segments + snapshots, see persist/).  Empty
  /// disables persistence entirely — the in-memory behavior every earlier
  /// test relies on.  Opening the service recovers every session found
  /// under the root before the first request is admitted; corruption that
  /// recovery must not guess past makes the constructor throw.
  std::string data_dir;
  /// When an acknowledged write is actually on disk (see persist::FsyncPolicy).
  persist::FsyncPolicy fsync = persist::FsyncPolicy::kInterval;
  /// Group-commit window for fsync=interval, seconds.
  double fsync_interval_s = 0.005;
  /// Snapshot + WAL-rotation triggers and snapshot retention.
  std::uint64_t snapshot_wal_bytes = 64ull << 20;
  std::uint64_t snapshot_every_records = 0;  ///< 0 = size-based only
  int snapshot_retain = 2;
  /// Write the clean-shutdown epilogue (final snapshot + CLEAN marker) on
  /// shutdown().  Benches and recovery tests turn this off to leave a WAL
  /// tail behind for the next cold start to replay.
  bool clean_shutdown = true;
};

/// Transport-agnostic core of the MSF service: owns named graph sessions
/// (EdgeStore + DynamicMsf each), a bounded MPMC request queue, the
/// dispatcher pool, the shared solver ThreadTeam, and the metrics registry.
/// The UDS daemon, the in-process bench and the tests all drive exactly
/// this object — the wire protocol is a thin layer on top.
///
/// Concurrency model per session:
///  * reads take a shared lock and run concurrently (with each other and
///    with reads on other sessions);
///  * writes enter a per-session pending list; one dispatcher becomes the
///    flusher, merges every compatible queued write into a single
///    apply_batch under the exclusive lock, and answers all of them —
///    coalescing N queued writes into one sparsified solve;
///  * solves (initial, apply, recompute) are scheduled one at a time on the
///    shared ThreadTeam, so cross-session solver load queues here instead
///    of oversubscribing the machine.
///
/// Every request carries a deadline (its own or the default) mapped onto
/// smp::ExecutionBudget: a slow solve returns kDeadlineExceeded at the next
/// iteration checkpoint instead of wedging the queue.  A write that fails
/// *mid-solve* has already mutated the store; the service repairs the
/// forest with an unbudgeted recompute before touching the session again
/// (response field `applied` says which side of the line a failure fell).
class ServiceCore {
 public:
  explicit ServiceCore(ServeOptions opts = {});
  ~ServiceCore();

  ServiceCore(const ServiceCore&) = delete;
  ServiceCore& operator=(const ServiceCore&) = delete;

  /// Asynchronous entry point: admit the request or fail fast.  `done` is
  /// invoked exactly once, on a dispatcher thread (or inline for a
  /// rejection), and must not block on the service.  Returns false when the
  /// request was rejected up front (queue full or shutting down; `done` has
  /// already run with kOverloaded / kShuttingDown).
  bool submit(Request req, std::function<void(Response)> done);

  /// Synchronous convenience wrapper around submit().
  Response call(Request req);

  /// Stops admitting, drains every queued request, joins the dispatchers.
  /// Idempotent; the destructor calls it.
  void shutdown();

  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] std::string stats_json() const;
  [[nodiscard]] const ServeOptions& options() const { return opts_; }
  /// What startup recovery did (sessions restored, records replayed, torn
  /// tails truncated, snapshot generations skipped) — one line per event,
  /// for the daemon to log.  Empty when persistence is off or the data dir
  /// was empty.
  [[nodiscard]] const std::vector<std::string>& recovery_notes() const {
    return recovery_notes_;
  }

 private:
  friend struct Session;  // pending lists hold QueuedRequest

  using Clock = std::chrono::steady_clock;

  struct QueuedRequest {
    Request req;
    std::function<void(Response)> done;
    Clock::time_point submitted;
    Clock::time_point deadline;  ///< Clock::time_point::max() = none
  };

  void dispatcher_loop();
  void execute(QueuedRequest qr);
  void finish(QueuedRequest& qr, Response r);

  [[nodiscard]] std::shared_ptr<Session> find_session(const std::string& name);

  Response do_open(const Request& req);
  Response do_drop(const Request& req);
  Response do_list();
  Response do_health(const Request& req);
  Response do_read(Session& s, const QueuedRequest& qr);
  Response do_recompute(Session& s, const QueuedRequest& qr);
  Response do_compact(Session& s);
  /// kPathMax / kConn / kCut / kTopK.  The first three serve entirely from
  /// the session's published ForestIndex when it matches the committed
  /// version — no state lock, so they never queue behind coalesced writes;
  /// a stale index is rebuilt under the shared lock.  kTopK also scans the
  /// live EdgeStore and always runs under the shared lock.
  Response do_query(Session& s, const QueuedRequest& qr);
  /// The currently published index (possibly stale or null); lock-free
  /// apart from the pointer-swap mutex.
  [[nodiscard]] std::shared_ptr<const query::ForestIndex> index_snapshot(
      Session& s);
  /// Returns a version-matched index, rebuilding on the solver team if the
  /// published one is stale.  Caller must hold s.state_mu (shared or
  /// exclusive) so `version` cannot move underneath the build.
  std::shared_ptr<const query::ForestIndex> refresh_index_locked(Session& s);
  void enqueue_write(const std::shared_ptr<Session>& s, QueuedRequest qr);
  void flush_writes(Session& s);
  void maybe_compact(Session& s);
  void repair_after_failed_apply(Session& s);

  // --- durability plumbing (all no-ops when data_dir is empty) ---
  [[nodiscard]] persist::SessionLogOptions log_options();
  [[nodiscard]] std::string session_dir(const std::string& name) const;
  void recover_sessions();
  void replay_tail(Session& s, std::vector<persist::WalRecord> tail);
  /// Appends a WAL record for an applied group and registers its
  /// idempotency ids; returns the commit LSN (0 when logging is off or the
  /// log failed — see Session::log_broken).
  std::uint64_t log_applied_group(Session& s,
                                  std::vector<graph::WEdge> insertions,
                                  std::vector<graph::EdgeId> deletions,
                                  std::vector<std::string> idem_ids);
  /// Appends a compact marker record (replay must reproduce the store-id
  /// renumbering at the same point); returns its LSN, 0 when logging is off.
  std::uint64_t log_compact_record(Session& s);
  /// Snapshots the session state at its current committed LSN (caller holds
  /// the exclusive state lock).
  void snapshot_session_locked(Session& s);

  ServeOptions opts_;
  ThreadTeam solver_team_;
  std::mutex solver_mu_;  ///< serializes solves on solver_team_
  MetricsRegistry metrics_;
  Clock::time_point started_;

  mutable std::mutex sessions_mu_;
  std::map<std::string, std::shared_ptr<Session>> sessions_;
  std::vector<std::string> recovery_notes_;

  BoundedQueue<QueuedRequest> queue_;
  std::vector<std::thread> dispatchers_;
  std::atomic<bool> stopping_{false};
  std::once_flag shutdown_once_;
};

}  // namespace smp::serve
