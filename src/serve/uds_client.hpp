#pragma once

#include <string>
#include <vector>

namespace smp::serve {

/// Minimal synchronous client for the UDS line protocol: connect, send one
/// request line, read the response block.  Used by the smpmsf_client tool
/// and the socket end-to-end tests; one instance per connection, not
/// thread-safe.
class UdsClient {
 public:
  /// Connects; throws Error{kInvalidInput} when nobody listens on `path`.
  explicit UdsClient(const std::string& path);
  ~UdsClient();

  UdsClient(const UdsClient&) = delete;
  UdsClient& operator=(const UdsClient&) = delete;

  /// Sends `line` and reads the full response block for it: the header
  /// line, plus — for the multi-line verbs (`edges`, `stats`) on success —
  /// payload lines up to and including the terminating ".".  Returns the
  /// response lines (terminator excluded).  Throws Error{kInvalidInput} if
  /// the server hangs up mid-response.
  std::vector<std::string> request(const std::string& line);

  /// Sends without reading — for pipelined bursts; pair with read_response.
  void send_line(const std::string& line);
  /// Reads one response block for a previously sent `line` (the request
  /// text decides whether a payload block is expected).
  std::vector<std::string> read_response(const std::string& line);

 private:
  std::string read_line();

  int fd_ = -1;
  std::string acc_;
};

}  // namespace smp::serve
