#pragma once

#include <string>

#include "serve/request.hpp"

namespace smp::serve {

/// One parsed wire line.  `quit` and `shutdown` are connection/daemon
/// control verbs that never reach the ServiceCore.
struct WireRequest {
  Request req;
  bool quit = false;      ///< close this connection
  bool shutdown = false;  ///< stop the daemon (after responding)
};

/// Hard cap on `topk NAME K`: bounds both the response size and the
/// per-thread candidate heaps of the scan.
inline constexpr std::size_t kMaxTopK = 100000;

/// Parses one request line of the line protocol (see docs/SERVING.md):
///
///   ping | list | stats | quit | shutdown | health [NAME]
///   open NAME (n=N | file=PATH)
///   drop NAME | weight NAME | recompute NAME | compact NAME
///   connected NAME U V
///   edges NAME [max=K]
///   insert NAME U V W [U V W ...]
///   delete NAME U V [U V ...]
///   pathmax NAME U V | conn NAME U V
///   cut NAME LAMBDA
///   topk NAME K [lambda=L]
///
/// any of which may end with `deadline=MS` (milliseconds) and/or
/// `epoch=E` (pin a read/query to MVCC epoch E; 0 or absent = latest).
/// Vertices are 1-based on the wire (DIMACS convention) and 0-based in the
/// returned Request.  Throws Error{kInvalidInput} on anything malformed;
/// the server answers those with `err invalid_input ...` instead of
/// dropping the connection.
[[nodiscard]] WireRequest parse_line(const std::string& line);

/// Renders a core response as wire text — one `ok ...` / `err ...` header
/// line, plus a payload block terminated by a lone `.` for the multi-line
/// ops (edges, stats).  Always newline-terminated.  `op` selects the
/// response shape; pass the op of the request that produced `r`.
[[nodiscard]] std::string render_response(Op op, const Response& r);

}  // namespace smp::serve
