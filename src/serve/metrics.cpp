#include "serve/metrics.hpp"

#include <cinttypes>
#include <cstdio>

#include "pprim/build_info.hpp"

namespace smp::serve {

namespace {

std::string histogram_json(const Histogram& h) {
  const Histogram::Snapshot s = h.snapshot();
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"count\": %" PRIu64
                ", \"mean\": %.1f, \"p50\": %.1f, \"p95\": %.1f, "
                "\"p99\": %.1f, \"max\": %" PRIu64 "}",
                s.count, s.mean(), s.quantile(0.50), s.quantile(0.95),
                s.quantile(0.99), s.max);
  return buf;
}

}  // namespace

std::string MetricsRegistry::to_json(
    std::size_t queue_capacity, double uptime_s,
    const std::vector<std::uint64_t>& shard_depths) const {
  const auto u64 = [](const std::atomic<std::uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  char buf[512];
  std::string json = "{";
  json += "\"build\": " + build_info_json();
  std::snprintf(buf, sizeof buf, ", \"uptime_s\": %.3f", uptime_s);
  json += buf;
  std::snprintf(
      buf, sizeof buf,
      ", \"queue\": {\"capacity\": %zu, \"depth\": %" PRIu64
      ", \"max_depth\": %" PRIu64 ", \"submitted\": %" PRIu64
      ", \"rejected_overload\": %" PRIu64 ", \"rejected_shutdown\": %" PRIu64
      "}",
      queue_capacity, u64(queue_depth), u64(max_queue_depth), u64(submitted),
      u64(rejected_overload), u64(rejected_shutdown));
  json += buf;
  json += ", \"shards\": [";
  for (std::size_t i = 0; i < shard_depths.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%s{\"id\": %zu, \"depth\": %" PRIu64 "}",
                  i == 0 ? "" : ", ", i, shard_depths[i]);
    json += buf;
  }
  json += "]";
  std::snprintf(buf, sizeof buf,
                ", \"serving\": {\"reads_inline\": %" PRIu64
                ", \"rejected_rate_limited\": %" PRIu64
                ", \"snapshots_published\": %" PRIu64
                ", \"epochs_reclaimed\": %" PRIu64 "}",
                u64(reads_inline), u64(rejected_rate_limited),
                u64(snapshots_published), u64(epochs_reclaimed));
  json += buf;
  std::snprintf(buf, sizeof buf,
                ", \"coalescing\": {\"apply_batches\": %" PRIu64
                ", \"coalesced_writes\": %" PRIu64 ", \"conflicts\": %" PRIu64
                ", \"batch_size\": ",
                u64(apply_batches), u64(coalesced_writes),
                u64(coalesce_conflicts));
  json += buf;
  json += histogram_json(coalesce_size) + "}";
  std::snprintf(buf, sizeof buf,
                ", \"deadline_exceeded\": %" PRIu64
                ", \"solver_repairs\": %" PRIu64 ", \"compactions\": %" PRIu64
                ", \"slots_reclaimed\": %" PRIu64,
                u64(deadline_exceeded), u64(solver_repairs), u64(compactions),
                u64(slots_reclaimed));
  json += buf;
  std::snprintf(buf, sizeof buf,
                ", \"persist\": {\"wal_appends\": %" PRIu64
                ", \"wal_bytes\": %" PRIu64 ", \"fsyncs\": %" PRIu64
                ", \"snapshots\": %" PRIu64 ", \"recoveries\": %" PRIu64
                ", \"replayed_records\": %" PRIu64 ", \"dedup_hits\": %" PRIu64
                "}",
                u64(persist.wal_appends), u64(persist.wal_bytes),
                u64(persist.fsyncs), u64(persist.snapshots), u64(recoveries),
                u64(replayed_records), u64(dedup_hits));
  json += buf;
  std::snprintf(buf, sizeof buf,
                ", \"query_index\": {\"rebuilds\": %" PRIu64
                ", \"hits\": %" PRIu64 ", \"misses\": %" PRIu64
                ", \"rebuild_us\": ",
                u64(index_rebuilds), u64(index_hits), u64(index_misses));
  json += buf;
  json += histogram_json(index_rebuild_us) + "}";
  json += ", \"ops\": {";
  bool first = true;
  for (int i = 0; i < kNumOps; ++i) {
    const OpMetrics& m = ops[static_cast<std::size_t>(i)];
    const std::uint64_t completed = m.completed.load(std::memory_order_relaxed);
    if (completed == 0) continue;
    if (!first) json += ", ";
    first = false;
    json += "\"" + std::string(to_string(static_cast<Op>(i))) + "\": ";
    std::snprintf(buf, sizeof buf,
                  "{\"completed\": %" PRIu64 ", \"errors\": %" PRIu64
                  ", \"latency_us\": ",
                  completed, m.errors.load(std::memory_order_relaxed));
    json += buf;
    json += histogram_json(m.latency_us) + "}";
  }
  json += "}}";
  return json;
}

}  // namespace smp::serve
