#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/service_core.hpp"

namespace smp::serve {

struct UdsServerOptions {
  std::string socket_path;
  /// Hard cap on one request line; a longer line fails the connection
  /// instead of buffering without bound.
  std::size_t max_line = std::size_t{1} << 20;
  int listen_backlog = 64;
};

/// Line-protocol transport over an AF_UNIX stream socket: an accept-loop
/// thread plus one thread per connection, each parsing request lines with
/// protocol.hpp and driving the shared ServiceCore.  Requests that arrive
/// together on one connection are submitted together before the responses
/// are written back (in order), so a pipelined client coalesces its own
/// write bursts just like concurrent clients do.
///
/// A stale socket file (daemon died without unlinking) is detected by
/// probing connect() and replaced; a live one fails start() so two daemons
/// never fight over a path.  stop() closes the listener, shuts every
/// connection down, joins all threads and unlinks the socket.  The wire
/// verb `shutdown` makes wait() return so the owning daemon can stop()
/// gracefully from its main thread.
class UdsServer {
 public:
  UdsServer(ServiceCore& core, UdsServerOptions opts);
  ~UdsServer();

  UdsServer(const UdsServer&) = delete;
  UdsServer& operator=(const UdsServer&) = delete;

  /// Binds, listens and starts accepting.  Throws Error{kInvalidInput} when
  /// the path is unusable or another daemon is live on it.
  void start();

  /// Blocks until stop() is called from another thread or a client sends
  /// the `shutdown` verb.
  void wait();

  /// Stops accepting, disconnects every client, joins all threads, unlinks
  /// the socket.  Idempotent and safe to call from several threads (e.g. a
  /// signal-watcher racing the main thread).  Must not be called from a
  /// connection thread (the `shutdown` verb signals wait() instead).
  void stop();

  [[nodiscard]] const std::string& socket_path() const {
    return opts_.socket_path;
  }

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void serve_connection(Connection& conn);
  void reap_finished_locked();

  ServiceCore& core_;
  UdsServerOptions opts_;

  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::mutex stop_mu_;  ///< serializes concurrent stop() callers
  bool started_ = false;
  bool stopped_ = false;

  std::mutex conns_mu_;
  std::vector<std::unique_ptr<Connection>> conns_;

  std::mutex wait_mu_;
  std::condition_variable wait_cv_;
  bool wake_waiters_ = false;
};

}  // namespace smp::serve
