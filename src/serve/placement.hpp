#pragma once

#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

namespace smp::serve::placement {

/// FNV-1a 64-bit — the session-name hash of the shard ring (and the digest
/// primitive the query layer already uses, kept dependency-free here).
[[nodiscard]] std::uint64_t fnv1a(std::string_view s);

/// Consistent-hash ring mapping session names onto solver shards.  Each
/// shard owns `vnodes` virtual points on the ring; a name maps to the
/// first point clockwise of its hash.  Consistency is the point: growing
/// the shard count by one moves only ~1/shards of the keyspace, so a
/// future dynamic-resharding path can migrate a bounded set of sessions
/// instead of rehashing the world.
class ShardRing {
 public:
  explicit ShardRing(int shards, int vnodes = 64);

  [[nodiscard]] int shard_for(std::string_view key) const;
  [[nodiscard]] int shards() const { return shards_; }

 private:
  int shards_;
  std::vector<std::pair<std::uint64_t, int>> ring_;  ///< sorted by hash
};

/// Parse a kernel cpulist string ("0-3,8,10-11") into explicit cpu ids.
/// Malformed input yields an empty list, never a throw — topology parsing
/// must not take the service down.
[[nodiscard]] std::vector<int> parse_cpulist(std::string_view s);

/// CPU sets of the machine's NUMA nodes, parsed from
/// /sys/devices/system/node/node*/cpulist.  Single-node machines (and any
/// platform without that sysfs tree) return one empty-or-single entry;
/// callers treat size() <= 1 as "no placement to do".
[[nodiscard]] std::vector<std::vector<int>> numa_nodes();

/// Pin the calling thread to `cpus`.  No-op when the list is empty or the
/// platform lacks thread affinity.
void pin_current_thread(const std::vector<int>& cpus);

}  // namespace smp::serve::placement
