#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace smp::serve {

/// Bounded multi-producer / multi-consumer FIFO with *rejecting* admission
/// control: a full queue fails the push immediately instead of blocking the
/// producer or growing without bound.  That is the load-shedding contract of
/// the serving layer — under overload, clients get a fast `overloaded`
/// response and retry with backoff, and queue latency stays bounded by
/// capacity x service time instead of compounding.
///
/// Consumers block in pop() until an item or close() arrives.  close()
/// drains: items already admitted are still handed out, then pop() returns
/// nullopt to every waiter.  A mutex + condvar is deliberate — the queue
/// hands requests to solvers that run for milliseconds, so contention on
/// the queue lock is nowhere near the critical path, and the blocking pop
/// keeps idle dispatcher threads parked in the kernel instead of spinning.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// False when the queue is full or closed; the item is not consumed then.
  [[nodiscard]] bool try_push(T&& item) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks for the next item; nullopt once closed and drained.
  [[nodiscard]] std::optional<T> pop() {
    std::unique_lock<std::mutex> lk(mu_);
    ready_.wait(lk, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace smp::serve
