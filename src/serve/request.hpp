#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "graph/edge_list.hpp"
#include "graph/types.hpp"

namespace smp::serve {

/// The request vocabulary of the serving layer.  Reads (kWeight, kConnected,
/// kForestEdges, kSnapshot) run concurrently under a shared session lock;
/// writes (kInsert, kDelete) are coalesced per session into one apply_batch;
/// kRecompute and kCompact are exclusive but never coalesced.  The query ops
/// (kPathMax, kConn, kCut) are served from the session's immutable
/// ForestIndex snapshot — when the index matches the committed version they
/// never take the state lock at all, so they cannot queue behind coalesced
/// writes; kTopK additionally scans the live EdgeStore and therefore runs
/// under the shared lock like the other reads.
enum class Op : int {
  kPing = 0,
  kOpen,         ///< create a session (empty graph or loaded from file)
  kDrop,         ///< destroy a session
  kList,         ///< enumerate sessions
  kWeight,       ///< forest weight / tree count / edge counts
  kConnected,    ///< are u and v in the same forest component?
  kForestEdges,  ///< materialize forest edges (optionally capped)
  kInsert,       ///< insert an edge batch
  kDelete,       ///< delete an edge batch (by endpoints, canonical edge)
  kRecompute,    ///< force a from-scratch solve of the live graph
  kCompact,      ///< drop tombstoned store slots
  kStats,        ///< metrics dump as JSON
  kSnapshot,     ///< in-process only: atomic live-graph + forest snapshot
  kHealth,       ///< liveness probe: queue depth, sessions, LSN, uptime
  kPathMax,      ///< bottleneck edge on the u-v forest path (O(log n))
  kConn,         ///< O(1) connectivity from the index component labels
  kCut,          ///< single-linkage clustering cut at threshold lambda
  kTopK,         ///< k lightest live cluster-crossing edges
};
inline constexpr int kNumOps = static_cast<int>(Op::kTopK) + 1;

[[nodiscard]] constexpr std::string_view to_string(Op op) {
  switch (op) {
    case Op::kPing:
      return "ping";
    case Op::kOpen:
      return "open";
    case Op::kDrop:
      return "drop";
    case Op::kList:
      return "list";
    case Op::kWeight:
      return "weight";
    case Op::kConnected:
      return "connected";
    case Op::kForestEdges:
      return "edges";
    case Op::kInsert:
      return "insert";
    case Op::kDelete:
      return "delete";
    case Op::kRecompute:
      return "recompute";
    case Op::kCompact:
      return "compact";
    case Op::kStats:
      return "stats";
    case Op::kSnapshot:
      return "snapshot";
    case Op::kHealth:
      return "health";
    case Op::kPathMax:
      return "pathmax";
    case Op::kConn:
      return "conn";
    case Op::kCut:
      return "cut";
    case Op::kTopK:
      return "topk";
  }
  return "?";
}

/// Response status.  kOk aside, these are the failure surface of the
/// service: admission control (kOverloaded), per-request budgets
/// (kDeadlineExceeded / kCancelled / kOutOfMemory via PR 1's
/// ExecutionBudget), request validation (kInvalidInput, kNotFound,
/// kAlreadyExists), and lifecycle (kShuttingDown).  kInternal is the
/// catch-all for a solver failure the service could not classify.
enum class Status : int {
  kOk = 0,
  kOverloaded,
  kDeadlineExceeded,
  kCancelled,
  kOutOfMemory,
  kInvalidInput,
  kNotFound,
  kAlreadyExists,
  kShuttingDown,
  kInternal,
  kRateLimited,  ///< per-client token bucket empty (tiered back-pressure)
};

[[nodiscard]] constexpr std::string_view to_string(Status s) {
  switch (s) {
    case Status::kOk:
      return "ok";
    case Status::kOverloaded:
      return "overloaded";
    case Status::kDeadlineExceeded:
      return "deadline_exceeded";
    case Status::kCancelled:
      return "cancelled";
    case Status::kOutOfMemory:
      return "out_of_memory";
    case Status::kInvalidInput:
      return "invalid_input";
    case Status::kNotFound:
      return "not_found";
    case Status::kAlreadyExists:
      return "already_exists";
    case Status::kShuttingDown:
      return "shutting_down";
    case Status::kInternal:
      return "internal";
    case Status::kRateLimited:
      return "rate_limited";
  }
  return "?";
}

/// One service request.  Vertices are 0-based here (the wire protocol is
/// 1-based, DIMACS style; protocol.cpp converts).  `deadline_s` is relative
/// to submission; 0 means "use the service default" (which may be none).
struct Request {
  Op op = Op::kPing;
  std::string session;
  // kOpen: exactly one of num_vertices (> 0, empty graph) or path (load).
  graph::VertexId num_vertices = 0;
  std::string path;
  // kConnected.
  graph::VertexId u = 0;
  graph::VertexId v = 0;
  // kInsert / kDelete payloads.
  std::vector<graph::WEdge> insertions;
  std::vector<std::pair<graph::VertexId, graph::VertexId>> deletions;
  // kForestEdges: cap on returned edges (0 = all).  kTopK: k (>= 1).
  std::size_t limit = 0;
  // kCut: the clustering threshold.  kTopK: optional (has_lambda) cluster
  // threshold restricting results to cluster-crossing edges.
  double lambda = 0;
  bool has_lambda = false;
  double deadline_s = 0;
  /// kInsert / kDelete: optional client idempotency id.  A retried write
  /// carrying the id of an already-committed one is answered from the
  /// committed state instead of being applied twice (see Response::dedup).
  std::string idem_id;
  /// Reads and queries: pin the answer to this MVCC epoch (a committed
  /// session version).  0 = latest.  Pinning an epoch that has fallen off
  /// the session's retire ring is an error, not a stale answer.
  std::uint64_t pin_epoch = 0;
  /// Transport-assigned client identity for per-client token-bucket rate
  /// limiting.  Empty = unattributed (never rate limited).
  std::string client_id;
};

/// In-process snapshot payload (kSnapshot): the live graph, its store ids,
/// and the maintained forest, captured under one shared lock — i.e. all
/// three are consistent with each other.  The stress tests solve `live`
/// from scratch and demand bit-identity with `forest_ids`/`weight`.
struct SnapshotData {
  graph::EdgeList live;
  std::vector<graph::EdgeId> live_ids;
  std::vector<graph::EdgeId> forest_ids;  ///< ascending store ids
  graph::Weight weight = 0;
  std::size_t trees = 0;
  /// Committed session version this snapshot captured.  Query responses
  /// stamp the index version they answered from, so a stress reader can
  /// pair an answer with the snapshot of the *same* committed state.
  std::uint64_t version = 0;
};

struct Response {
  Status status = Status::kOk;
  std::string detail;  ///< human-readable reason on error
  // Forest facts (kWeight, kOpen, kInsert, kDelete, kRecompute, kCompact).
  graph::Weight weight = 0;
  std::size_t trees = 0;
  std::size_t forest_edges = 0;
  std::size_t live_edges = 0;
  bool connected = false;      // kConnected
  std::vector<graph::WEdge> edges;  // kForestEdges payload
  std::size_t edges_total = 0;      // kForestEdges: forest size before `limit`
  // Writes: how many requests the service merged into the apply_batch that
  // carried this one (>= 1), and whether this request's mutation reached the
  // store (a write failing *mid-solve* is applied; one rejected up front or
  // expired while queued is not).
  std::size_t coalesced = 0;
  bool applied = false;
  std::size_t remapped = 0;          // kCompact: live edges renumbered
  std::vector<std::string> sessions;  // kList
  std::string stats_json;             // kStats
  std::shared_ptr<SnapshotData> snapshot;  // kSnapshot
  // Durability (writes, when the service runs with a data dir): the commit
  // LSN the mutation is logged under (0 = persistence off), whether this
  // request deduplicated against an already-committed idempotency id, and
  // the echoed id so retrying clients can match responses to requests.
  std::uint64_t lsn = 0;
  bool dedup = false;
  std::string idem_id;
  // kHealth.
  std::uint64_t health_queue_depth = 0;
  std::size_t health_sessions = 0;
  double uptime_s = 0;
  std::vector<std::uint64_t> shard_depths;  // kHealth: per-shard queue depth
  std::uint64_t reclaimed_epochs = 0;  // kHealth: retired MVCC snapshots
  std::vector<std::string> listeners;  // kHealth: active transport listeners
  /// MVCC epoch the answer was served from (reads/queries), or the epoch a
  /// write committed as.  Equals the committed session version.
  std::uint64_t epoch = 0;
  // Query ops.  `index_version` is the committed version of the ForestIndex
  // snapshot that produced the answer (kPathMax/kConn/kCut/kTopK).
  std::uint64_t index_version = 0;
  bool pathmax_found = false;          // kPathMax: false = disconnected
  graph::EdgeId pathmax_id = 0;        // store id of the bottleneck edge
  graph::VertexId pathmax_u = 0;       // its endpoints (0-based here)
  graph::VertexId pathmax_v = 0;
  graph::Weight pathmax_w = 0;
  std::size_t clusters = 0;            // kCut
  std::uint64_t cut_digest = 0;        // kCut: FNV-1a over the label sequence
  std::vector<graph::EdgeId> edge_ids;  // kTopK: store ids parallel to edges
  // kHealth, per session (when a session name was given): query-index state.
  bool index_status = false;  ///< a session was named; index fields are valid
  bool index_present = false;  ///< the session has a published index
  bool index_fresh = false;
  std::size_t index_vertices = 0;
  std::size_t index_edges = 0;
  double index_age_s = 0;       ///< seconds since last rebuild
  double index_build_s = 0;     ///< duration of that rebuild
  std::uint64_t index_rebuilds = 0;

  [[nodiscard]] bool ok() const { return status == Status::kOk; }
};

}  // namespace smp::serve
