#include "serve/uds_client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>

#include "core/error.hpp"

namespace smp::serve {

namespace {

/// First whitespace-delimited token of the request — enough to know the
/// response shape (edges/stats carry a payload block on success).
std::string verb_of(const std::string& line) {
  std::size_t i = 0;
  while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) {
    ++i;
  }
  std::size_t j = i;
  while (j < line.size() &&
         !std::isspace(static_cast<unsigned char>(line[j]))) {
    ++j;
  }
  return line.substr(i, j - i);
}

}  // namespace

UdsClient::UdsClient(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof addr.sun_path) {
    throw Error(ErrorCode::kInvalidInput, "bad socket path: '" + path + "'");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw Error(ErrorCode::kInvalidInput,
                std::string("socket: ") + std::strerror(errno));
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const std::string why = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw Error(ErrorCode::kInvalidInput,
                "cannot connect to '" + path + "': " + why);
  }
}

UdsClient::~UdsClient() {
  if (fd_ >= 0) ::close(fd_);
}

void UdsClient::send_line(const std::string& line) {
  const std::string data = line + "\n";
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      throw Error(ErrorCode::kInvalidInput, "server closed the connection");
    }
    off += static_cast<std::size_t>(n);
  }
}

std::string UdsClient::read_line() {
  for (;;) {
    const std::size_t nl = acc_.find('\n');
    if (nl != std::string::npos) {
      std::string line = acc_.substr(0, nl);
      acc_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      throw Error(ErrorCode::kInvalidInput,
                  "server hung up mid-response");
    }
    acc_.append(buf, static_cast<std::size_t>(n));
  }
}

std::vector<std::string> UdsClient::read_response(const std::string& line) {
  std::vector<std::string> out;
  out.push_back(read_line());
  const std::string verb = verb_of(line);
  const bool multi = (verb == "edges" || verb == "stats" || verb == "topk") &&
                     out.front().rfind("ok", 0) == 0;
  if (multi) {
    for (std::string l = read_line(); l != "."; l = read_line()) {
      out.push_back(std::move(l));
    }
  }
  return out;
}

std::vector<std::string> UdsClient::request(const std::string& line) {
  send_line(line);
  return read_response(line);
}

}  // namespace smp::serve
