#include "serve/protocol.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <vector>

#include "core/error.hpp"

namespace smp::serve {

namespace {

[[noreturn]] void bad(const std::string& why) {
  throw Error(ErrorCode::kInvalidInput, why);
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i])) != 0) {
      ++i;
    }
    const std::size_t start = i;
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i])) == 0) {
      ++i;
    }
    if (i > start) out.push_back(line.substr(start, i - start));
  }
  return out;
}

std::uint64_t parse_u64(const std::string& tok, const char* what) {
  if (tok.empty() || tok[0] == '-') bad(std::string(what) + ": '" + tok + "'");
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
  if (errno != 0 || end != tok.c_str() + tok.size()) {
    bad(std::string(what) + ": '" + tok + "'");
  }
  return v;
}

double parse_double(const std::string& tok, const char* what) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(tok.c_str(), &end);
  if (tok.empty() || errno != 0 || end != tok.c_str() + tok.size()) {
    bad(std::string(what) + ": '" + tok + "'");
  }
  return v;
}

/// Wire vertices are 1-based; 0 is the DIMACS "no such vertex".
graph::VertexId parse_vertex(const std::string& tok) {
  const std::uint64_t v = parse_u64(tok, "bad vertex");
  if (v == 0 || v > std::numeric_limits<graph::VertexId>::max()) {
    bad("vertex out of range (wire vertices are 1-based): '" + tok + "'");
  }
  return static_cast<graph::VertexId>(v - 1);
}

bool consume_option(std::vector<std::string>& toks, const std::string& key,
                    std::string* value) {
  // Options are trailing `key=value` tokens; order among them is free.
  for (auto it = toks.begin(); it != toks.end(); ++it) {
    if (it->rfind(key + "=", 0) == 0) {
      *value = it->substr(key.size() + 1);
      toks.erase(it);
      return true;
    }
  }
  return false;
}

std::string need_session(const std::vector<std::string>& toks) {
  if (toks.size() < 2) bad("missing session name");
  return toks[1];
}

std::string fmt_weight(graph::Weight w) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", w);
  return buf;
}

void append_forest_facts(std::string& out, const Response& r) {
  out += " weight=" + fmt_weight(r.weight);
  out += " trees=" + std::to_string(r.trees);
  out += " forest=" + std::to_string(r.forest_edges);
  out += " live=" + std::to_string(r.live_edges);
}

bool is_write_shaped(Op op) {
  return op == Op::kInsert || op == Op::kDelete || op == Op::kRecompute ||
         op == Op::kCompact;
}

}  // namespace

WireRequest parse_line(const std::string& line) {
  std::vector<std::string> toks = tokenize(line);
  if (toks.empty()) bad("empty request line");

  WireRequest wr;
  std::string opt;
  if (consume_option(toks, "deadline", &opt)) {
    const double ms = parse_double(opt, "bad deadline");
    if (ms <= 0) bad("deadline must be positive milliseconds");
    wr.req.deadline_s = ms / 1000.0;
  }
  if (consume_option(toks, "epoch", &opt)) {
    // MVCC pin for reads/queries: answer from this committed epoch instead
    // of the latest.  Ignored by ops that don't read session state.
    wr.req.pin_epoch = parse_u64(opt, "bad epoch");
  }

  const std::string& verb = toks[0];
  if (verb == "quit") {
    wr.quit = true;
    return wr;
  }
  if (verb == "shutdown") {
    wr.shutdown = true;
    return wr;
  }
  if (verb == "ping") {
    wr.req.op = Op::kPing;
  } else if (verb == "list") {
    wr.req.op = Op::kList;
  } else if (verb == "stats") {
    wr.req.op = Op::kStats;
  } else if (verb == "health") {
    wr.req.op = Op::kHealth;
    if (toks.size() > 2) bad("usage: health [NAME]");
    if (toks.size() == 2) wr.req.session = toks[1];
  } else if (verb == "open") {
    wr.req.op = Op::kOpen;
    wr.req.session = need_session(toks);
    std::string n;
    std::string file;
    const bool has_n = consume_option(toks, "n", &n);
    const bool has_file = consume_option(toks, "file", &file);
    if (has_n == has_file) bad("open needs exactly one of n=N or file=PATH");
    if (has_n) {
      const std::uint64_t v = parse_u64(n, "bad vertex count");
      if (v == 0 || v > std::numeric_limits<graph::VertexId>::max()) {
        bad("vertex count out of range: '" + n + "'");
      }
      wr.req.num_vertices = static_cast<graph::VertexId>(v);
    } else {
      if (file.empty()) bad("empty file path");
      wr.req.path = file;
    }
    if (toks.size() != 2) bad("trailing tokens after open");
  } else if (verb == "drop" || verb == "weight" || verb == "recompute" ||
             verb == "compact") {
    wr.req.op = verb == "drop"        ? Op::kDrop
                : verb == "weight"    ? Op::kWeight
                : verb == "recompute" ? Op::kRecompute
                                      : Op::kCompact;
    wr.req.session = need_session(toks);
    if (toks.size() != 2) bad("trailing tokens after " + verb);
  } else if (verb == "connected") {
    wr.req.op = Op::kConnected;
    wr.req.session = need_session(toks);
    if (toks.size() != 4) bad("usage: connected NAME U V");
    wr.req.u = parse_vertex(toks[2]);
    wr.req.v = parse_vertex(toks[3]);
  } else if (verb == "edges") {
    wr.req.op = Op::kForestEdges;
    wr.req.session = need_session(toks);
    std::string max;
    if (consume_option(toks, "max", &max)) {
      wr.req.limit = parse_u64(max, "bad max");
      if (wr.req.limit == 0) bad("max must be >= 1 (omit it for all edges)");
    }
    if (toks.size() != 2) bad("trailing tokens after edges");
  } else if (verb == "insert") {
    wr.req.op = Op::kInsert;
    wr.req.session = need_session(toks);
    consume_option(toks, "id", &wr.req.idem_id);
    if (toks.size() < 5 || (toks.size() - 2) % 3 != 0) {
      bad("usage: insert NAME U V W [U V W ...]");
    }
    for (std::size_t i = 2; i + 2 < toks.size(); i += 3) {
      graph::WEdge e;
      e.u = parse_vertex(toks[i]);
      e.v = parse_vertex(toks[i + 1]);
      e.w = parse_double(toks[i + 2], "bad weight");
      wr.req.insertions.push_back(e);
    }
  } else if (verb == "pathmax" || verb == "conn") {
    wr.req.op = verb == "pathmax" ? Op::kPathMax : Op::kConn;
    wr.req.session = need_session(toks);
    if (toks.size() != 4) bad("usage: " + verb + " NAME U V");
    wr.req.u = parse_vertex(toks[2]);
    wr.req.v = parse_vertex(toks[3]);
  } else if (verb == "cut") {
    wr.req.op = Op::kCut;
    wr.req.session = need_session(toks);
    if (toks.size() != 3) bad("usage: cut NAME LAMBDA");
    wr.req.lambda = parse_double(toks[2], "bad lambda");
    if (!std::isfinite(wr.req.lambda)) bad("lambda must be finite");
    wr.req.has_lambda = true;
  } else if (verb == "topk") {
    wr.req.op = Op::kTopK;
    wr.req.session = need_session(toks);
    std::string lambda;
    if (consume_option(toks, "lambda", &lambda)) {
      wr.req.lambda = parse_double(lambda, "bad lambda");
      if (!std::isfinite(wr.req.lambda)) bad("lambda must be finite");
      wr.req.has_lambda = true;
    }
    if (toks.size() != 3) bad("usage: topk NAME K [lambda=L]");
    wr.req.limit = parse_u64(toks[2], "bad k");
    if (wr.req.limit == 0 || wr.req.limit > kMaxTopK) {
      bad("k must be in [1, " + std::to_string(kMaxTopK) + "]");
    }
  } else if (verb == "delete") {
    wr.req.op = Op::kDelete;
    wr.req.session = need_session(toks);
    consume_option(toks, "id", &wr.req.idem_id);
    if (toks.size() < 4 || (toks.size() - 2) % 2 != 0) {
      bad("usage: delete NAME U V [U V ...]");
    }
    for (std::size_t i = 2; i + 1 < toks.size(); i += 2) {
      wr.req.deletions.emplace_back(parse_vertex(toks[i]),
                                    parse_vertex(toks[i + 1]));
    }
  } else {
    bad("unknown verb '" + verb + "'");
  }
  return wr;
}

std::string render_response(Op op, const Response& r) {
  if (!r.ok()) {
    std::string out = "err ";
    out += to_string(r.status);
    // A write can fail *after* its store mutation went in (deadline tripped
    // mid-solve; the service repaired the forest).  Clients must be able to
    // tell that from a clean rejection, so the applied bit rides along.
    if (is_write_shaped(op)) out += r.applied ? " applied=1" : " applied=0";
    if (!r.detail.empty()) out += " " + r.detail;
    out += "\n";
    return out;
  }
  switch (op) {
    case Op::kPing:
    case Op::kDrop:
      return "ok\n";
    case Op::kList: {
      std::string out = "ok count=" + std::to_string(r.sessions.size());
      out += " sessions=";
      for (std::size_t i = 0; i < r.sessions.size(); ++i) {
        if (i > 0) out += ",";
        out += r.sessions[i];
      }
      return out + "\n";
    }
    case Op::kConnected:
      return std::string("ok connected=") + (r.connected ? "1" : "0") + "\n";
    case Op::kForestEdges: {
      std::string out = "ok count=" + std::to_string(r.edges.size()) +
                        " total=" + std::to_string(r.edges_total) + "\n";
      for (const graph::WEdge& e : r.edges) {
        out += "e " + std::to_string(e.u + 1) + " " + std::to_string(e.v + 1) +
               " " + fmt_weight(e.w) + "\n";
      }
      return out + ".\n";
    }
    case Op::kStats:
      return "ok\n" + r.stats_json + "\n.\n";
    case Op::kHealth: {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.3f", r.uptime_s);
      std::string out = "ok queue=" + std::to_string(r.health_queue_depth) +
                        " sessions=" + std::to_string(r.health_sessions) +
                        " lsn=" + std::to_string(r.lsn) + " uptime_s=" + buf;
      // Scale-out gauges: per-shard queue depths, retired MVCC epochs, and
      // the transports currently listening.
      if (!r.shard_depths.empty()) {
        out += " shards=";
        for (std::size_t i = 0; i < r.shard_depths.size(); ++i) {
          if (i > 0) out += ",";
          out += std::to_string(r.shard_depths[i]);
        }
      }
      out += " reclaimed=" + std::to_string(r.reclaimed_epochs);
      if (!r.listeners.empty()) {
        out += " listeners=";
        for (std::size_t i = 0; i < r.listeners.size(); ++i) {
          if (i > 0) out += ",";
          out += r.listeners[i];
        }
      }
      // Per-session status, present when a session was named.
      if (r.index_status) out += " epoch=" + std::to_string(r.epoch);
      if (r.index_status && !r.index_present) out += " index=none";
      if (r.index_present) {
        out += " index_version=" + std::to_string(r.index_version);
        out += std::string(" index_fresh=") + (r.index_fresh ? "1" : "0");
        out += " index_n=" + std::to_string(r.index_vertices);
        out += " index_edges=" + std::to_string(r.index_edges);
        std::snprintf(buf, sizeof buf, "%.3f", r.index_age_s);
        out += std::string(" index_age_s=") + buf;
        std::snprintf(buf, sizeof buf, "%.6f", r.index_build_s);
        out += std::string(" index_build_s=") + buf;
        out += " index_rebuilds=" + std::to_string(r.index_rebuilds);
      }
      return out + "\n";
    }
    case Op::kConn:
      return std::string("ok connected=") + (r.connected ? "1" : "0") + "\n";
    case Op::kPathMax: {
      if (!r.pathmax_found) return "ok connected=0\n";
      return "ok connected=1 id=" + std::to_string(r.pathmax_id) + " u=" +
             std::to_string(r.pathmax_u + 1) + " v=" +
             std::to_string(r.pathmax_v + 1) + " weight=" +
             fmt_weight(r.pathmax_w) + "\n";
    }
    case Op::kCut: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%016llx",
                    static_cast<unsigned long long>(r.cut_digest));
      return "ok clusters=" + std::to_string(r.clusters) + " digest=" + buf +
             "\n";
    }
    case Op::kTopK: {
      std::string out = "ok count=" + std::to_string(r.edges.size()) + "\n";
      for (std::size_t i = 0; i < r.edges.size(); ++i) {
        const graph::WEdge& e = r.edges[i];
        out += "e " + std::to_string(e.u + 1) + " " + std::to_string(e.v + 1) +
               " " + fmt_weight(e.w) + " id=" + std::to_string(r.edge_ids[i]) +
               "\n";
      }
      return out + ".\n";
    }
    case Op::kInsert:
    case Op::kDelete: {
      std::string out = "ok applied=1 coalesced=" + std::to_string(r.coalesced);
      append_forest_facts(out, r);
      // Durability/idempotency fields only appear when set, so responses
      // from a persistence-free service render exactly as before.
      if (r.dedup) out += " dedup=1";
      if (r.lsn != 0) out += " lsn=" + std::to_string(r.lsn);
      if (!r.idem_id.empty()) out += " id=" + r.idem_id;
      return out + "\n";
    }
    case Op::kRecompute: {
      std::string out = "ok applied=1";
      append_forest_facts(out, r);
      return out + "\n";
    }
    case Op::kCompact: {
      std::string out = "ok applied=1 remapped=" + std::to_string(r.remapped);
      append_forest_facts(out, r);
      if (r.lsn != 0) out += " lsn=" + std::to_string(r.lsn);
      return out + "\n";
    }
    case Op::kOpen:
    case Op::kWeight:
    default: {
      std::string out = "ok";
      append_forest_facts(out, r);
      return out + "\n";
    }
  }
}

}  // namespace smp::serve
