#include "serve/uds_server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <future>
#include <utility>

#include "core/error.hpp"
#include "serve/protocol.hpp"

namespace smp::serve {

namespace {

[[noreturn]] void fail(const std::string& why) {
  throw Error(ErrorCode::kInvalidInput, why + ": " + std::strerror(errno));
}

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof addr.sun_path) {
    throw Error(ErrorCode::kInvalidInput,
                "socket path must be 1.." +
                    std::to_string(sizeof addr.sun_path - 1) + " bytes: '" +
                    path + "'");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// True when a daemon is actually accepting on `path` (as opposed to a
/// stale socket file left by a crash).  Probes with the `health` op instead
/// of a bare connect: a refused connect is the definitive stale signal,
/// a protocol-shaped reply ("ok ..." from this version, "err ..." from an
/// older daemon that predates the verb) is definitive liveness, and
/// anything ambiguous (timeout, send failure) stays conservative — never
/// clobber a path that might be serving.
bool socket_is_live(const sockaddr_un& addr) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return true;  // be conservative: do not clobber the path
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return false;  // stale socket file: nothing accepting behind it
  }
  timeval tv{};
  tv.tv_usec = 500 * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  bool live = true;
  if (send_all(fd, "health\n")) {
    char buf[256];
    const ssize_t n = ::recv(fd, buf, sizeof buf - 1, 0);
    if (n >= 2) {
      live = std::strncmp(buf, "ok", 2) == 0 || std::strncmp(buf, "er", 2) == 0;
    }
  }
  ::close(fd);
  return live;
}

}  // namespace

UdsServer::UdsServer(ServiceCore& core, UdsServerOptions opts)
    : core_(core), opts_(std::move(opts)) {}

UdsServer::~UdsServer() { stop(); }

void UdsServer::start() {
  const sockaddr_un addr = make_addr(opts_.socket_path);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) fail("socket");
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    if (errno != EADDRINUSE || socket_is_live(addr)) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw Error(ErrorCode::kInvalidInput,
                  "cannot bind '" + opts_.socket_path +
                      "' (another daemon live on it?)");
    }
    // Stale socket file from a crashed daemon: reclaim the path.
    ::unlink(opts_.socket_path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      fail("bind");
    }
  }
  if (::listen(listen_fd_, opts_.listen_backlog) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(opts_.socket_path.c_str());
    fail("listen");
  }
  started_ = true;
  core_.add_listener("uds:" + opts_.socket_path);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void UdsServer::wait() {
  std::unique_lock<std::mutex> lk(wait_mu_);
  wait_cv_.wait(lk, [&] { return wake_waiters_; });
}

void UdsServer::stop() {
  std::lock_guard<std::mutex> stop_lk(stop_mu_);
  if (!started_ || stopped_) return;
  stopped_ = true;
  stopping_.store(true, std::memory_order_release);
  // Wake the accept loop; on Linux shutdown() on a listening socket makes
  // blocked accept() return.
  ::shutdown(listen_fd_, SHUT_RDWR);
  accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    for (auto& c : conns_) {
      if (c->fd >= 0) ::shutdown(c->fd, SHUT_RDWR);
    }
    for (auto& c : conns_) {
      if (c->thread.joinable()) c->thread.join();
      ::close(c->fd);
    }
    conns_.clear();
  }
  ::unlink(opts_.socket_path.c_str());
  core_.remove_listener("uds:" + opts_.socket_path);
  {
    std::lock_guard<std::mutex> lk(wait_mu_);
    wake_waiters_ = true;
  }
  wait_cv_.notify_all();
}

void UdsServer::reap_finished_locked() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      ::close((*it)->fd);
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void UdsServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (stopping_.load(std::memory_order_acquire)) return;
      if (errno == ECONNABORTED) continue;
      return;  // listener is gone; stop() will finish the teardown
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    std::lock_guard<std::mutex> lk(conns_mu_);
    reap_finished_locked();
    auto conn = std::make_unique<Connection>();
    Connection& c = *conn;
    c.fd = fd;
    conns_.push_back(std::move(conn));
    c.thread = std::thread([this, &c] { serve_connection(c); });
  }
}

void UdsServer::serve_connection(Connection& conn) {
  const int fd = conn.fd;
  std::string acc;
  // Responses go back in request order; futures keep several requests in
  // flight at once so a pipelined burst reaches the core together (and its
  // writes coalesce) before we write anything back.
  std::deque<std::pair<Op, std::future<Response>>> inflight;
  bool alive = true;
  bool ask_shutdown = false;

  const auto drain_all = [&] {
    while (!inflight.empty()) {
      auto [op, fut] = std::move(inflight.front());
      inflight.pop_front();
      if (!send_all(fd, render_response(op, fut.get()))) alive = false;
    }
  };

  char buf[4096];
  while (alive) {
    // No complete line buffered: everything submitted so far must answer
    // before we block on the peer again.
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    acc.append(buf, static_cast<std::size_t>(n));
    if (acc.size() > opts_.max_line) {
      send_all(fd, "err invalid_input request line too long\n");
      break;
    }

    std::size_t start = 0;
    for (std::size_t nl = acc.find('\n', start); nl != std::string::npos;
         nl = acc.find('\n', start)) {
      std::string line = acc.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      try {
        WireRequest wr = parse_line(line);
        // Per-connection client identity for the rate limiter; UDS peers
        // are local, so the fd is as good an identity as the transport has.
        wr.req.client_id = "uds#" + std::to_string(fd);
        if (wr.quit || wr.shutdown) {
          drain_all();
          send_all(fd, "ok\n");
          if (wr.shutdown) ask_shutdown = true;
          alive = false;
          break;
        }
        auto promise = std::make_shared<std::promise<Response>>();
        inflight.emplace_back(wr.req.op, promise->get_future());
        core_.submit(std::move(wr.req), [promise](Response r) {
          promise->set_value(std::move(r));
        });
      } catch (const Error& e) {
        drain_all();
        if (!send_all(fd, std::string("err invalid_input ") + e.what() +
                              "\n")) {
          alive = false;
        }
      }
      if (!alive) break;
    }
    acc.erase(0, start);
    if (alive) drain_all();
  }
  drain_all();
  // The fd is closed by whoever joins this thread (reap or stop) — closing
  // it here would race a concurrent stop() shutting the same fd down after
  // the kernel reused the number.
  conn.done.store(true, std::memory_order_release);
  if (ask_shutdown) {
    std::lock_guard<std::mutex> lk(wait_mu_);
    wake_waiters_ = true;
    wait_cv_.notify_all();
  }
}

}  // namespace smp::serve
