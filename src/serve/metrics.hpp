#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "persist/session_log.hpp"
#include "pprim/histogram.hpp"
#include "serve/request.hpp"

namespace smp::serve {

/// Per-op serving metrics: end-to-end latency (submission to completion,
/// microseconds — queue wait included, because that is what a client
/// experiences) plus completion and error counts.
struct OpMetrics {
  Histogram latency_us;
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> errors{0};  ///< non-kOk completions
};

/// All counters of the service, updated lock-free on the hot path and
/// dumped as one JSON document by the `stats` request.  Everything here is
/// monotone or a gauge, so concurrent scrapes are always consistent enough
/// to difference across time.
class MetricsRegistry {
 public:
  // --- admission / queue ---
  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> rejected_overload{0};
  std::atomic<std::uint64_t> rejected_shutdown{0};
  std::atomic<std::uint64_t> queue_depth{0};      ///< gauge
  std::atomic<std::uint64_t> max_queue_depth{0};  ///< high-water mark

  // --- scale-out serving ---
  /// Read-shaped ops served inline on the submitting thread (the priority
  /// lane) instead of crossing a shard queue.
  std::atomic<std::uint64_t> reads_inline{0};
  /// Write/admin ops shed by the per-client token bucket.
  std::atomic<std::uint64_t> rejected_rate_limited{0};
  /// MVCC epochs published / retired off session snapshot rings.
  std::atomic<std::uint64_t> snapshots_published{0};
  std::atomic<std::uint64_t> epochs_reclaimed{0};

  // --- write coalescing ---
  /// apply_batch calls issued (each serves >= 1 write request).
  std::atomic<std::uint64_t> apply_batches{0};
  /// Write requests served by those batches; mean batch size is the ratio.
  std::atomic<std::uint64_t> coalesced_writes{0};
  /// Batch-size distribution (requests per apply_batch).
  Histogram coalesce_size;
  /// Merges cut short because a later write depended on an earlier one in
  /// the same group (delete of a just-inserted or just-deleted edge).
  std::atomic<std::uint64_t> coalesce_conflicts{0};

  // --- budgets / maintenance ---
  std::atomic<std::uint64_t> deadline_exceeded{0};
  std::atomic<std::uint64_t> solver_repairs{0};  ///< recompute() after a failed apply
  std::atomic<std::uint64_t> compactions{0};
  std::atomic<std::uint64_t> slots_reclaimed{0};

  // --- query index ---
  /// ForestIndex rebuilds (eager post-flush + lazy on the query path) and
  /// their build-time distribution.
  std::atomic<std::uint64_t> index_rebuilds{0};
  Histogram index_rebuild_us;
  /// Query fast path: answers served from a version-matched index without
  /// the state lock vs. queries that found the index stale (or absent).
  std::atomic<std::uint64_t> index_hits{0};
  std::atomic<std::uint64_t> index_misses{0};

  // --- durability ---
  /// WAL append/fsync/snapshot counters, fed directly by the SessionLogs.
  persist::PersistCounters persist;
  /// Sessions restored from disk at startup and WAL records replayed.
  std::atomic<std::uint64_t> recoveries{0};
  std::atomic<std::uint64_t> replayed_records{0};
  /// Writes answered from the idempotency window instead of re-applying.
  std::atomic<std::uint64_t> dedup_hits{0};

  std::array<OpMetrics, kNumOps> ops;

  OpMetrics& op(Op o) { return ops[static_cast<std::size_t>(o)]; }
  const OpMetrics& op(Op o) const { return ops[static_cast<std::size_t>(o)]; }

  void record_queue_depth(std::uint64_t depth) {
    queue_depth.store(depth, std::memory_order_relaxed);
    std::uint64_t prev = max_queue_depth.load(std::memory_order_relaxed);
    while (prev < depth && !max_queue_depth.compare_exchange_weak(
                               prev, depth, std::memory_order_relaxed)) {
    }
  }

  void record_completion(Op o, Status s, std::uint64_t latency_us) {
    OpMetrics& m = op(o);
    m.latency_us.record(latency_us);
    m.completed.fetch_add(1, std::memory_order_relaxed);
    if (s != Status::kOk) m.errors.fetch_add(1, std::memory_order_relaxed);
    if (s == Status::kDeadlineExceeded) {
      deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Zeroes every counter and histogram.  Bench/test support for isolating
  /// a measured window from setup traffic — not used on the serving path,
  /// and not atomic with respect to concurrent recorders.
  void reset_counters() {
    submitted.store(0, std::memory_order_relaxed);
    rejected_overload.store(0, std::memory_order_relaxed);
    rejected_shutdown.store(0, std::memory_order_relaxed);
    queue_depth.store(0, std::memory_order_relaxed);
    max_queue_depth.store(0, std::memory_order_relaxed);
    reads_inline.store(0, std::memory_order_relaxed);
    rejected_rate_limited.store(0, std::memory_order_relaxed);
    snapshots_published.store(0, std::memory_order_relaxed);
    epochs_reclaimed.store(0, std::memory_order_relaxed);
    apply_batches.store(0, std::memory_order_relaxed);
    coalesced_writes.store(0, std::memory_order_relaxed);
    coalesce_size.reset();
    coalesce_conflicts.store(0, std::memory_order_relaxed);
    deadline_exceeded.store(0, std::memory_order_relaxed);
    solver_repairs.store(0, std::memory_order_relaxed);
    compactions.store(0, std::memory_order_relaxed);
    slots_reclaimed.store(0, std::memory_order_relaxed);
    index_rebuilds.store(0, std::memory_order_relaxed);
    index_rebuild_us.reset();
    index_hits.store(0, std::memory_order_relaxed);
    index_misses.store(0, std::memory_order_relaxed);
    persist.wal_appends.store(0, std::memory_order_relaxed);
    persist.wal_bytes.store(0, std::memory_order_relaxed);
    persist.fsyncs.store(0, std::memory_order_relaxed);
    persist.snapshots.store(0, std::memory_order_relaxed);
    recoveries.store(0, std::memory_order_relaxed);
    replayed_records.store(0, std::memory_order_relaxed);
    dedup_hits.store(0, std::memory_order_relaxed);
    for (OpMetrics& m : ops) {
      m.latency_us.reset();
      m.completed.store(0, std::memory_order_relaxed);
      m.errors.store(0, std::memory_order_relaxed);
    }
  }

  /// One JSON object with build info, queue/admission counters, per-shard
  /// queue depths, coalescing stats, serving-lane counters and per-op
  /// latency percentiles (p50/p95/p99/max, microseconds).  Ops that never
  /// completed are omitted.  `shard_depths` holds each shard queue's
  /// current depth (one entry for the unsharded configuration).
  [[nodiscard]] std::string to_json(
      std::size_t queue_capacity, double uptime_s,
      const std::vector<std::uint64_t>& shard_depths = {}) const;
};

}  // namespace smp::serve
