#include "serve/service_core.hpp"

#include <algorithm>
#include <cctype>
#include <exception>
#include <future>
#include <optional>
#include <shared_mutex>
#include <unordered_set>
#include <utility>

#include "core/connected_components.hpp"
#include "core/error.hpp"
#include "dynamic/dynamic_msf.hpp"
#include "graph/io.hpp"

namespace smp::serve {

using graph::EdgeId;
using graph::EdgeList;
using graph::VertexId;
using graph::WEdge;

/// One named graph session.  `state_mu` is the reader/writer lock of the
/// tentpole: reads share it, the write flusher and recompute/compact hold it
/// exclusively.  The pending list + flushing flag implement write
/// coalescing; the cc cache memoizes forest component labels per committed
/// forest version so repeated connectivity queries cost O(1) after the
/// first.
struct Session {
  std::string name;

  std::shared_mutex state_mu;
  std::unique_ptr<dynamic::DynamicMsf> msf;  ///< guarded by state_mu
  std::uint64_t version = 0;  ///< committed-mutation counter, guarded by state_mu
  std::atomic<bool> ready{false};  ///< set once the initial solve committed

  std::mutex pending_mu;
  std::vector<ServiceCore::QueuedRequest> pending;
  bool flushing = false;

  std::mutex cc_mu;
  std::uint64_t cc_version = ~std::uint64_t{0};
  core::CcResult cc;
};

namespace {

constexpr auto kNoDeadline =
    std::chrono::steady_clock::time_point::max();

Response make_error(Status s, std::string detail) {
  Response r;
  r.status = s;
  r.detail = std::move(detail);
  return r;
}

Status status_of(const Error& e) {
  switch (e.code()) {
    case ErrorCode::kCancelled:
      return Status::kCancelled;
    case ErrorCode::kDeadlineExceeded:
      return Status::kDeadlineExceeded;
    case ErrorCode::kOutOfMemory:
      return Status::kOutOfMemory;
    case ErrorCode::kInvalidInput:
      return Status::kInvalidInput;
  }
  return Status::kInternal;
}

bool valid_session_name(const std::string& name) {
  if (name.empty() || name.size() > 64) return false;
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_' &&
        c != '-' && c != '.') {
      return false;
    }
  }
  return true;
}

void fill_forest_facts(Response& r, const dynamic::DynamicMsf& m) {
  r.weight = m.total_weight();
  r.trees = m.num_trees();
  r.forest_edges = m.forest_edge_ids().size();
  r.live_edges = m.store().num_live();
}

std::uint64_t pair_key(VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

ServeOptions normalize(ServeOptions opts) {
  opts.msf.threads = std::max(1, opts.msf.threads);
  opts.dispatchers = std::max(1, opts.dispatchers);
  opts.queue_capacity = std::max<std::size_t>(1, opts.queue_capacity);
  // Per-request budgets are installed by the dispatcher; a caller-supplied
  // one would dangle across requests.
  opts.msf.budget = nullptr;
  return opts;
}

}  // namespace

ServiceCore::ServiceCore(ServeOptions opts)
    : opts_(normalize(std::move(opts))),
      solver_team_(opts_.msf.threads),
      started_(Clock::now()),
      queue_(opts_.queue_capacity) {
  dispatchers_.reserve(static_cast<std::size_t>(opts_.dispatchers));
  for (int i = 0; i < opts_.dispatchers; ++i) {
    dispatchers_.emplace_back([this] { dispatcher_loop(); });
  }
}

ServiceCore::~ServiceCore() { shutdown(); }

void ServiceCore::shutdown() {
  std::call_once(shutdown_once_, [&] {
    stopping_.store(true, std::memory_order_release);
    queue_.close();  // admitted requests still drain
    for (auto& t : dispatchers_) t.join();
  });
}

bool ServiceCore::submit(Request req, std::function<void(Response)> done) {
  metrics_.submitted.fetch_add(1, std::memory_order_relaxed);
  QueuedRequest qr;
  qr.req = std::move(req);
  qr.done = std::move(done);
  qr.submitted = Clock::now();
  qr.deadline = kNoDeadline;
  const double dl =
      qr.req.deadline_s > 0 ? qr.req.deadline_s : opts_.default_deadline_s;
  if (dl > 0) {
    qr.deadline =
        qr.submitted + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(dl));
  }
  if (!queue_.try_push(std::move(qr))) {
    // try_push only consumes the item on success, so qr is intact here.
    const bool down = stopping_.load(std::memory_order_acquire);
    auto& counter = down ? metrics_.rejected_shutdown : metrics_.rejected_overload;
    counter.fetch_add(1, std::memory_order_relaxed);
    qr.done(make_error(down ? Status::kShuttingDown : Status::kOverloaded,
                       down ? "service is shutting down"
                            : "request queue is full"));
    return false;
  }
  metrics_.record_queue_depth(queue_.size());
  return true;
}

Response ServiceCore::call(Request req) {
  std::promise<Response> p;
  std::future<Response> f = p.get_future();
  submit(std::move(req), [&p](Response r) { p.set_value(std::move(r)); });
  return f.get();
}

std::string ServiceCore::stats_json() const {
  const double uptime =
      std::chrono::duration<double>(Clock::now() - started_).count();
  return metrics_.to_json(queue_.capacity(), uptime);
}

void ServiceCore::dispatcher_loop() {
  while (auto item = queue_.pop()) {
    metrics_.record_queue_depth(queue_.size());
    execute(std::move(*item));
  }
}

void ServiceCore::finish(QueuedRequest& qr, Response r) {
  const auto us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            qr.submitted)
          .count());
  metrics_.record_completion(qr.req.op, r.status, us);
  qr.done(std::move(r));
}

std::shared_ptr<Session> ServiceCore::find_session(const std::string& name) {
  std::lock_guard<std::mutex> lk(sessions_mu_);
  const auto it = sessions_.find(name);
  if (it == sessions_.end() ||
      !it->second->ready.load(std::memory_order_acquire)) {
    return nullptr;
  }
  return it->second;
}

void ServiceCore::execute(QueuedRequest qr) {
  if (qr.deadline != kNoDeadline && Clock::now() >= qr.deadline) {
    finish(qr, make_error(Status::kDeadlineExceeded,
                          "deadline expired while queued"));
    return;
  }
  try {
    switch (qr.req.op) {
      case Op::kPing:
        finish(qr, Response{});
        return;
      case Op::kStats: {
        Response r;
        r.stats_json = stats_json();
        finish(qr, std::move(r));
        return;
      }
      case Op::kOpen:
        finish(qr, do_open(qr.req));
        return;
      case Op::kDrop:
        finish(qr, do_drop(qr.req));
        return;
      case Op::kList:
        finish(qr, do_list());
        return;
      default:
        break;
    }
    const std::shared_ptr<Session> s = find_session(qr.req.session);
    if (s == nullptr) {
      finish(qr, make_error(Status::kNotFound,
                            "no session named '" + qr.req.session + "'"));
      return;
    }
    switch (qr.req.op) {
      case Op::kInsert:
      case Op::kDelete:
        enqueue_write(s, std::move(qr));  // responds from the flusher
        return;
      case Op::kRecompute:
        finish(qr, do_recompute(*s, qr));
        return;
      case Op::kCompact:
        finish(qr, do_compact(*s));
        return;
      default:
        finish(qr, do_read(*s, qr));
        return;
    }
  } catch (const Error& e) {
    finish(qr, make_error(status_of(e), e.what()));
  } catch (const std::exception& e) {
    finish(qr, make_error(Status::kInternal, e.what()));
  }
}

Response ServiceCore::do_open(const Request& req) {
  if (!valid_session_name(req.session)) {
    return make_error(Status::kInvalidInput,
                      "session names are [A-Za-z0-9_.-]{1,64}");
  }
  if (req.path.empty() && req.num_vertices == 0) {
    return make_error(Status::kInvalidInput,
                      "open needs a vertex count or a graph file");
  }
  auto session = std::make_shared<Session>();
  session->name = req.session;
  {
    // Reserve the name first so two concurrent opens cannot both build the
    // (possibly expensive) initial solve for it.
    std::lock_guard<std::mutex> lk(sessions_mu_);
    const auto [it, inserted] = sessions_.emplace(req.session, session);
    if (!inserted) {
      return make_error(
          it->second->ready.load(std::memory_order_acquire)
              ? Status::kAlreadyExists
              : Status::kInvalidInput,
          "session '" + req.session + "' already exists or is opening");
    }
  }
  const auto drop_placeholder = [&] {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    sessions_.erase(req.session);
  };
  try {
    dynamic::DynamicMsfOptions dopts;
    dopts.msf = opts_.msf;
    dopts.team = &solver_team_;
    if (req.path.empty()) {
      session->msf = std::make_unique<dynamic::DynamicMsf>(req.num_vertices,
                                                           dopts);
    } else {
      const bool binary = req.path.size() > 5 &&
                          req.path.compare(req.path.size() - 5, 5, ".smpg") == 0;
      const EdgeList g = binary ? graph::read_binary_file(req.path)
                                : graph::read_dimacs_file(req.path);
      // The initial solve is scheduled like any other on the shared team.
      std::lock_guard<std::mutex> solver(solver_mu_);
      session->msf = std::make_unique<dynamic::DynamicMsf>(g, dopts);
    }
  } catch (const Error& e) {
    drop_placeholder();
    return make_error(status_of(e), e.what());
  } catch (const std::exception& e) {
    drop_placeholder();
    return make_error(Status::kInvalidInput, e.what());
  }
  session->ready.store(true, std::memory_order_release);
  Response r;
  fill_forest_facts(r, *session->msf);
  return r;
}

Response ServiceCore::do_drop(const Request& req) {
  std::lock_guard<std::mutex> lk(sessions_mu_);
  const auto it = sessions_.find(req.session);
  if (it == sessions_.end() ||
      !it->second->ready.load(std::memory_order_acquire)) {
    return make_error(Status::kNotFound,
                      "no session named '" + req.session + "'");
  }
  // In-flight requests hold their own shared_ptr and finish against the
  // detached session; new lookups fail from here on.
  sessions_.erase(it);
  return Response{};
}

Response ServiceCore::do_list() {
  Response r;
  std::lock_guard<std::mutex> lk(sessions_mu_);
  for (const auto& [name, s] : sessions_) {
    if (s->ready.load(std::memory_order_acquire)) r.sessions.push_back(name);
  }
  return r;
}

Response ServiceCore::do_read(Session& s, const QueuedRequest& qr) {
  std::shared_lock<std::shared_mutex> lk(s.state_mu);
  const dynamic::DynamicMsf& m = *s.msf;
  Response r;
  switch (qr.req.op) {
    case Op::kWeight:
      fill_forest_facts(r, m);
      return r;
    case Op::kConnected: {
      const VertexId n = m.store().num_vertices();
      if (qr.req.u >= n || qr.req.v >= n) {
        return make_error(Status::kInvalidInput, "vertex out of range");
      }
      // Forest component labels, memoized per committed forest version.
      // Rebuilding under the shared state lock is safe: writers need the
      // exclusive lock to change the forest, so the cache cannot go stale
      // mid-build, and cc_mu serializes concurrent readers rebuilding.
      std::lock_guard<std::mutex> cc_lk(s.cc_mu);
      if (s.cc_version != s.version) {
        EdgeList fg(n);
        fg.edges.reserve(m.forest_edge_ids().size());
        for (const EdgeId id : m.forest_edge_ids()) {
          fg.edges.push_back(m.store().edge(id));
        }
        s.cc = core::connected_components(fg, 1);
        s.cc_version = s.version;
      }
      r.connected = s.cc.label[qr.req.u] == s.cc.label[qr.req.v];
      return r;
    }
    case Op::kForestEdges: {
      fill_forest_facts(r, m);
      const auto& forest = m.forest_edge_ids();
      r.edges_total = forest.size();
      const std::size_t take = qr.req.limit == 0
                                   ? forest.size()
                                   : std::min(qr.req.limit, forest.size());
      r.edges.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        r.edges.push_back(m.store().edge(forest[i]));
      }
      return r;
    }
    case Op::kSnapshot: {
      auto snap = std::make_shared<SnapshotData>();
      snap->live = m.store().live_graph(&snap->live_ids);
      snap->forest_ids = m.forest_edge_ids();
      snap->weight = m.total_weight();
      snap->trees = m.num_trees();
      fill_forest_facts(r, m);
      r.snapshot = std::move(snap);
      return r;
    }
    default:
      return make_error(Status::kInternal, "bad read dispatch");
  }
}

Response ServiceCore::do_recompute(Session& s, const QueuedRequest& qr) {
  std::unique_lock<std::shared_mutex> lk(s.state_mu);
  ExecutionBudget budget;
  const bool bounded = qr.deadline != kNoDeadline;
  if (bounded) {
    budget.set_deadline_after(
        std::chrono::duration<double>(qr.deadline - Clock::now()).count());
  }
  Response r;
  try {
    s.msf->set_budget(bounded ? &budget : nullptr);
    {
      std::lock_guard<std::mutex> solver(solver_mu_);
      s.msf->recompute();
    }
    s.msf->set_budget(nullptr);
    ++s.version;
    fill_forest_facts(r, *s.msf);
    r.applied = true;
    return r;
  } catch (const Error& e) {
    // recompute() does not mutate the store, so a budget failure leaves the
    // previous (still valid) forest in place — nothing to repair.
    s.msf->set_budget(nullptr);
    return make_error(status_of(e), e.what());
  }
}

Response ServiceCore::do_compact(Session& s) {
  std::unique_lock<std::shared_mutex> lk(s.state_mu);
  const std::size_t before = s.msf->store().size();
  s.msf->compact_store();
  const std::size_t after = s.msf->store().size();
  metrics_.compactions.fetch_add(1, std::memory_order_relaxed);
  metrics_.slots_reclaimed.fetch_add(before - after, std::memory_order_relaxed);
  Response r;
  fill_forest_facts(r, *s.msf);
  r.remapped = after;
  r.applied = true;
  return r;
}

void ServiceCore::maybe_compact(Session& s) {
  // Caller holds the exclusive state lock.
  const std::size_t slots = s.msf->store().size();
  const std::size_t live = s.msf->store().num_live();
  if (slots < opts_.compact_min_slots) return;
  if (static_cast<double>(live) >=
      opts_.compact_live_ratio * static_cast<double>(slots)) {
    return;
  }
  s.msf->compact_store();
  metrics_.compactions.fetch_add(1, std::memory_order_relaxed);
  metrics_.slots_reclaimed.fetch_add(slots - s.msf->store().size(),
                                     std::memory_order_relaxed);
}

void ServiceCore::enqueue_write(const std::shared_ptr<Session>& s,
                                QueuedRequest qr) {
  {
    std::lock_guard<std::mutex> lk(s->pending_mu);
    s->pending.push_back(std::move(qr));
    if (s->flushing) return;  // the active flusher will pick it up
    s->flushing = true;
  }
  // This thread became the session's flusher.  An optional coalescing
  // window lets a burst accumulate behind us before the first drain.
  if (opts_.coalesce_window_s > 0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(opts_.coalesce_window_s));
  }
  flush_writes(*s);
}

void ServiceCore::flush_writes(Session& s) {
  std::unique_lock<std::shared_mutex> state(s.state_mu);
  for (;;) {
    std::vector<QueuedRequest> batch;
    {
      std::lock_guard<std::mutex> lk(s.pending_mu);
      batch.swap(s.pending);
      if (batch.empty()) {
        s.flushing = false;
        return;
      }
    }

    // Merge the drained writes, in arrival order, into groups that one
    // apply_batch can serve.  A group ends early only when a later delete
    // depends on the outcome of an earlier write in the same group (it
    // targets a just-inserted pair, or the canonical live edge it resolves
    // to is already being deleted) — applying first keeps replay
    // order-exact, exactly like the CLI's trace flush.
    std::size_t i = 0;
    while (i < batch.size()) {
      std::vector<std::size_t> members;
      std::vector<WEdge> ins;
      std::vector<EdgeId> del;
      std::unordered_set<std::uint64_t> ins_pairs;
      std::unordered_set<EdgeId> del_ids;
      auto earliest = kNoDeadline;
      const auto now = Clock::now();

      while (i < batch.size()) {
        QueuedRequest& w = batch[i];
        if (w.deadline != kNoDeadline && now >= w.deadline) {
          // Expired while waiting to be merged: dropped atomically, nothing
          // of it reaches the store.
          Response r = make_error(Status::kDeadlineExceeded,
                                  "deadline expired before apply");
          finish(w, std::move(r));
          ++i;
          continue;
        }
        if (w.req.op == Op::kInsert) {
          bool bad = false;
          for (const WEdge& e : w.req.insertions) {
            try {
              s.msf->store().validate_edge(e.u, e.v, e.w);
            } catch (const Error& err) {
              finish(w, make_error(Status::kInvalidInput, err.what()));
              bad = true;
              break;
            }
          }
          if (!bad) {
            members.push_back(i);
            for (const WEdge& e : w.req.insertions) {
              ins.push_back(e);
              ins_pairs.insert(pair_key(e.u, e.v));
            }
            if (w.deadline < earliest) earliest = w.deadline;
          }
          ++i;
          continue;
        }
        // Op::kDelete: resolve endpoint pairs to canonical live store ids.
        std::vector<EdgeId> resolved;
        bool conflict = false;
        std::string bad;
        const VertexId n = s.msf->store().num_vertices();
        for (const auto& [u, v] : w.req.deletions) {
          if (u >= n || v >= n || u == v) {
            bad = "delete endpoint out of range";
            break;
          }
          if (ins_pairs.count(pair_key(u, v)) != 0) {
            conflict = true;  // may target an edge this group inserts
            break;
          }
          const auto id = s.msf->store().find_live(u, v);
          if (!id) {
            bad = "no live edge (" + std::to_string(u + 1) + "," +
                  std::to_string(v + 1) + ")";
            break;
          }
          if (del_ids.count(*id) != 0) {
            conflict = true;  // canonical edge already deleted by the group
            break;
          }
          if (std::find(resolved.begin(), resolved.end(), *id) !=
              resolved.end()) {
            bad = "duplicate delete of the same canonical edge in one request";
            break;
          }
          resolved.push_back(*id);
        }
        if (conflict) {
          // Leave w for the next group; the current group applies first.
          metrics_.coalesce_conflicts.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        if (!bad.empty()) {
          finish(w, make_error(Status::kInvalidInput, bad));
          ++i;
          continue;
        }
        members.push_back(i);
        for (const EdgeId id : resolved) {
          del.push_back(id);
          del_ids.insert(id);
        }
        if (w.deadline < earliest) earliest = w.deadline;
        ++i;
      }

      if (members.empty()) continue;

      // One apply_batch for the whole group — this is the coalescing the
      // tentpole is about: burst traffic pays one sparsified solve.
      ExecutionBudget budget;
      const bool bounded = earliest != kNoDeadline;
      if (bounded) {
        budget.set_deadline_after(
            std::chrono::duration<double>(earliest - Clock::now()).count());
      }
      try {
        s.msf->set_budget(bounded ? &budget : nullptr);
        {
          std::lock_guard<std::mutex> solver(solver_mu_);
          s.msf->apply_batch(ins, del);
        }
        s.msf->set_budget(nullptr);
        ++s.version;
        metrics_.apply_batches.fetch_add(1, std::memory_order_relaxed);
        metrics_.coalesced_writes.fetch_add(members.size(),
                                            std::memory_order_relaxed);
        metrics_.coalesce_size.record(members.size());
        Response base;
        fill_forest_facts(base, *s.msf);
        base.applied = true;
        base.coalesced = members.size();
        for (const std::size_t idx : members) {
          finish(batch[idx], Response(base));
        }
      } catch (const Error& e) {
        s.msf->set_budget(nullptr);
        const Status st = status_of(e);
        if (st == Status::kInvalidInput) {
          // apply_batch validates before mutating, so nothing was applied.
          for (const std::size_t idx : members) {
            finish(batch[idx], make_error(st, e.what()));
          }
        } else {
          // Mid-solve failure (deadline/cancel/OOM): the store mutations
          // are in, the forest is stale.  Repair with an unbudgeted
          // recompute so later requests see a correct forest — the failed
          // deadline must not poison the session.
          repair_after_failed_apply(s);
          Response r = make_error(st, e.what());
          r.applied = true;
          r.coalesced = members.size();
          for (const std::size_t idx : members) {
            finish(batch[idx], Response(r));
          }
        }
      } catch (const std::exception& e) {
        s.msf->set_budget(nullptr);
        repair_after_failed_apply(s);
        Response r = make_error(Status::kInternal, e.what());
        r.applied = true;
        for (const std::size_t idx : members) {
          finish(batch[idx], Response(r));
        }
      }
    }
    maybe_compact(s);
  }
}

void ServiceCore::repair_after_failed_apply(Session& s) {
  metrics_.solver_repairs.fetch_add(1, std::memory_order_relaxed);
  try {
    std::lock_guard<std::mutex> solver(solver_mu_);
    s.msf->recompute();
    ++s.version;
  } catch (...) {
    // Repair itself failed (true OOM): the forest stays stale.  The next
    // successful apply/recompute will fix it; readers meanwhile see the
    // pre-batch forest, which is the documented DynamicMsf failure surface.
  }
}

}  // namespace smp::serve
