#include "serve/service_core.hpp"

#include <algorithm>
#include <cctype>
#include <deque>
#include <exception>
#include <filesystem>
#include <future>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "core/connected_components.hpp"
#include "core/error.hpp"
#include "dynamic/dynamic_msf.hpp"
#include "graph/io.hpp"
#include "query/forest_index.hpp"

namespace smp::serve {

using graph::EdgeId;
using graph::EdgeList;
using graph::VertexId;
using graph::WEdge;

/// One named graph session.  `state_mu` is the reader/writer lock of the
/// tentpole: reads share it, the write flusher and recompute/compact hold it
/// exclusively.  The pending list + flushing flag implement write
/// coalescing; the cc cache memoizes forest component labels per committed
/// forest version so repeated connectivity queries cost O(1) after the
/// first.
struct Session {
  std::string name;

  std::shared_mutex state_mu;
  std::unique_ptr<dynamic::DynamicMsf> msf;  ///< guarded by state_mu
  std::uint64_t version = 0;  ///< committed-mutation counter, guarded by state_mu
  std::atomic<bool> ready{false};  ///< set once the initial solve committed

  std::mutex pending_mu;
  std::vector<ServiceCore::QueuedRequest> pending;
  bool flushing = false;

  std::mutex cc_mu;
  std::uint64_t cc_version = ~std::uint64_t{0};
  core::CcResult cc;

  // --- query engine (src/query) ---
  /// Lock-free mirror of `version`, updated by every committer right after
  /// the bump: the query fast path compares it against the published
  /// index's version without touching state_mu.
  std::atomic<std::uint64_t> committed_version{0};
  /// Set by the first query op; write flushes only rebuild the index
  /// eagerly for sessions that actually serve queries.
  std::atomic<bool> query_active{false};
  /// Guards the `index` pointer swap and serializes rebuilds (the cc_mu
  /// pattern).  Readers copy the shared_ptr and drop the mutex — the index
  /// object itself is immutable, so a whole-object swap means no query ever
  /// observes a half-built index.
  std::mutex index_mu;
  std::shared_ptr<const query::ForestIndex> index;
  std::atomic<std::uint64_t> index_rebuilds{0};

  // --- durability (log is null when the service runs without a data dir).
  // All SessionLog mutations (append / snapshot / mark_clean) happen under
  // the exclusive state lock; only wait_durable runs unlocked, so reads
  // never block on an fsync. ---
  std::unique_ptr<persist::SessionLog> log;
  std::atomic<bool> dropped{false};  ///< directory is being deleted
  std::atomic<std::uint64_t> committed_lsn{0};
  bool log_broken = false;  ///< an append failed; serve on, stop logging
  /// Idempotency window: id -> commit LSN, FIFO-bounded.  Guarded by the
  /// exclusive state lock (single active flusher; recovery runs before
  /// serving starts).
  std::unordered_map<std::string, std::uint64_t> idem;
  std::deque<std::string> idem_fifo;
};

namespace {

constexpr auto kNoDeadline =
    std::chrono::steady_clock::time_point::max();

Response make_error(Status s, std::string detail) {
  Response r;
  r.status = s;
  r.detail = std::move(detail);
  return r;
}

Status status_of(const Error& e) {
  switch (e.code()) {
    case ErrorCode::kCancelled:
      return Status::kCancelled;
    case ErrorCode::kDeadlineExceeded:
      return Status::kDeadlineExceeded;
    case ErrorCode::kOutOfMemory:
      return Status::kOutOfMemory;
    case ErrorCode::kInvalidInput:
      return Status::kInvalidInput;
  }
  return Status::kInternal;
}

bool valid_session_name(const std::string& name) {
  if (name.empty() || name.size() > 64) return false;
  // Session names double as directory names under the data dir: "." and
  // ".." would escape it, and the ".dropping" suffix is reserved for
  // half-deleted directories startup recovery sweeps away.
  if (name == "." || name == "..") return false;
  if (name.size() >= 9 &&
      name.compare(name.size() - 9, 9, ".dropping") == 0) {
    return false;
  }
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_' &&
        c != '-' && c != '.') {
      return false;
    }
  }
  return true;
}

/// Bound on remembered idempotency ids per session; old ids age out FIFO.
constexpr std::size_t kIdemWindow = 65536;

void register_idem(Session& s, std::string id, std::uint64_t lsn) {
  if (id.empty()) return;
  const auto [it, inserted] = s.idem.emplace(std::move(id), lsn);
  if (!inserted) {
    it->second = lsn;
    return;
  }
  s.idem_fifo.push_back(it->first);
  while (s.idem_fifo.size() > kIdemWindow) {
    s.idem.erase(s.idem_fifo.front());
    s.idem_fifo.pop_front();
  }
}

/// The idempotency window as snapshot payload, oldest first.
std::vector<std::pair<std::string, std::uint64_t>> idem_window(
    const Session& s) {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(s.idem_fifo.size());
  for (const std::string& id : s.idem_fifo) {
    const auto it = s.idem.find(id);
    if (it != s.idem.end()) out.emplace_back(it->first, it->second);
  }
  return out;
}

/// Committed-mutation bump, called under the exclusive state lock.  Every
/// path that changes what a scratch solve of the session would return
/// (apply / recompute / repair / compact — compaction renumbers the store
/// ids the query index holds) goes through here, so the lock-free mirror
/// the query fast path reads stays in step with the locked counter.
void bump_version(Session& s) {
  ++s.version;
  s.committed_version.store(s.version, std::memory_order_release);
}

void fill_forest_facts(Response& r, const dynamic::DynamicMsf& m) {
  r.weight = m.total_weight();
  r.trees = m.num_trees();
  r.forest_edges = m.forest_edge_ids().size();
  r.live_edges = m.store().num_live();
}

std::uint64_t pair_key(VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

ServeOptions normalize(ServeOptions opts) {
  opts.msf.threads = std::max(1, opts.msf.threads);
  opts.dispatchers = std::max(1, opts.dispatchers);
  opts.queue_capacity = std::max<std::size_t>(1, opts.queue_capacity);
  // Per-request budgets are installed by the dispatcher; a caller-supplied
  // one would dangle across requests.
  opts.msf.budget = nullptr;
  if (opts.fsync_interval_s <= 0) opts.fsync_interval_s = 0.005;
  opts.snapshot_retain = std::max(1, opts.snapshot_retain);
  return opts;
}

}  // namespace

ServiceCore::ServiceCore(ServeOptions opts)
    : opts_(normalize(std::move(opts))),
      solver_team_(opts_.msf.threads),
      started_(Clock::now()),
      queue_(opts_.queue_capacity) {
  // Recovery happens before the first dispatcher exists, so every restored
  // session is fully replayed before any request can observe it.
  if (!opts_.data_dir.empty()) recover_sessions();
  dispatchers_.reserve(static_cast<std::size_t>(opts_.dispatchers));
  for (int i = 0; i < opts_.dispatchers; ++i) {
    dispatchers_.emplace_back([this] { dispatcher_loop(); });
  }
}

ServiceCore::~ServiceCore() { shutdown(); }

void ServiceCore::shutdown() {
  std::call_once(shutdown_once_, [&] {
    stopping_.store(true, std::memory_order_release);
    queue_.close();  // admitted requests still drain
    for (auto& t : dispatchers_) t.join();
    if (!opts_.data_dir.empty() && opts_.clean_shutdown) {
      // Graceful drain: every write is flushed and logged, so a final
      // snapshot + CLEAN marker lets the next startup skip replay.
      std::lock_guard<std::mutex> lk(sessions_mu_);
      for (auto& [name, s] : sessions_) {
        if (!s->ready.load(std::memory_order_acquire) || s->log == nullptr ||
            s->log_broken || s->dropped.load(std::memory_order_acquire)) {
          continue;
        }
        std::unique_lock<std::shared_mutex> state(s->state_mu);
        try {
          s->log->mark_clean(s->msf->store(), s->msf->forest_edge_ids(),
                             idem_window(*s));
        } catch (...) {
          // Best effort: without the marker the next start replays the WAL.
        }
      }
    }
  });
}

bool ServiceCore::submit(Request req, std::function<void(Response)> done) {
  metrics_.submitted.fetch_add(1, std::memory_order_relaxed);
  QueuedRequest qr;
  qr.req = std::move(req);
  qr.done = std::move(done);
  qr.submitted = Clock::now();
  qr.deadline = kNoDeadline;
  const double dl =
      qr.req.deadline_s > 0 ? qr.req.deadline_s : opts_.default_deadline_s;
  if (dl > 0) {
    qr.deadline =
        qr.submitted + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(dl));
  }
  if (!queue_.try_push(std::move(qr))) {
    // try_push only consumes the item on success, so qr is intact here.
    const bool down = stopping_.load(std::memory_order_acquire);
    auto& counter = down ? metrics_.rejected_shutdown : metrics_.rejected_overload;
    counter.fetch_add(1, std::memory_order_relaxed);
    qr.done(make_error(down ? Status::kShuttingDown : Status::kOverloaded,
                       down ? "service is shutting down"
                            : "request queue is full"));
    return false;
  }
  metrics_.record_queue_depth(queue_.size());
  return true;
}

Response ServiceCore::call(Request req) {
  std::promise<Response> p;
  std::future<Response> f = p.get_future();
  submit(std::move(req), [&p](Response r) { p.set_value(std::move(r)); });
  return f.get();
}

std::string ServiceCore::stats_json() const {
  const double uptime =
      std::chrono::duration<double>(Clock::now() - started_).count();
  return metrics_.to_json(queue_.capacity(), uptime);
}

void ServiceCore::dispatcher_loop() {
  while (auto item = queue_.pop()) {
    metrics_.record_queue_depth(queue_.size());
    execute(std::move(*item));
  }
}

void ServiceCore::finish(QueuedRequest& qr, Response r) {
  const auto us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            qr.submitted)
          .count());
  metrics_.record_completion(qr.req.op, r.status, us);
  qr.done(std::move(r));
}

std::shared_ptr<Session> ServiceCore::find_session(const std::string& name) {
  std::lock_guard<std::mutex> lk(sessions_mu_);
  const auto it = sessions_.find(name);
  if (it == sessions_.end() ||
      !it->second->ready.load(std::memory_order_acquire)) {
    return nullptr;
  }
  return it->second;
}

void ServiceCore::execute(QueuedRequest qr) {
  if (qr.deadline != kNoDeadline && Clock::now() >= qr.deadline) {
    finish(qr, make_error(Status::kDeadlineExceeded,
                          "deadline expired while queued"));
    return;
  }
  try {
    switch (qr.req.op) {
      case Op::kPing:
        finish(qr, Response{});
        return;
      case Op::kStats: {
        Response r;
        r.stats_json = stats_json();
        finish(qr, std::move(r));
        return;
      }
      case Op::kOpen:
        finish(qr, do_open(qr.req));
        return;
      case Op::kDrop:
        finish(qr, do_drop(qr.req));
        return;
      case Op::kList:
        finish(qr, do_list());
        return;
      case Op::kHealth:
        finish(qr, do_health(qr.req));
        return;
      default:
        break;
    }
    const std::shared_ptr<Session> s = find_session(qr.req.session);
    if (s == nullptr) {
      finish(qr, make_error(Status::kNotFound,
                            "no session named '" + qr.req.session + "'"));
      return;
    }
    switch (qr.req.op) {
      case Op::kInsert:
      case Op::kDelete:
        enqueue_write(s, std::move(qr));  // responds from the flusher
        return;
      case Op::kRecompute:
        finish(qr, do_recompute(*s, qr));
        return;
      case Op::kCompact:
        finish(qr, do_compact(*s));
        return;
      case Op::kPathMax:
      case Op::kConn:
      case Op::kCut:
      case Op::kTopK:
        finish(qr, do_query(*s, qr));
        return;
      default:
        finish(qr, do_read(*s, qr));
        return;
    }
  } catch (const Error& e) {
    finish(qr, make_error(status_of(e), e.what()));
  } catch (const std::exception& e) {
    finish(qr, make_error(Status::kInternal, e.what()));
  }
}

Response ServiceCore::do_open(const Request& req) {
  if (!valid_session_name(req.session)) {
    return make_error(Status::kInvalidInput,
                      "session names are [A-Za-z0-9_.-]{1,64}");
  }
  if (req.path.empty() && req.num_vertices == 0) {
    return make_error(Status::kInvalidInput,
                      "open needs a vertex count or a graph file");
  }
  auto session = std::make_shared<Session>();
  session->name = req.session;
  {
    // Reserve the name first so two concurrent opens cannot both build the
    // (possibly expensive) initial solve for it.
    std::lock_guard<std::mutex> lk(sessions_mu_);
    const auto [it, inserted] = sessions_.emplace(req.session, session);
    if (!inserted) {
      return make_error(
          it->second->ready.load(std::memory_order_acquire)
              ? Status::kAlreadyExists
              : Status::kInvalidInput,
          "session '" + req.session + "' already exists or is opening");
    }
  }
  const auto drop_placeholder = [&] {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    sessions_.erase(req.session);
  };
  try {
    dynamic::DynamicMsfOptions dopts;
    dopts.msf = opts_.msf;
    dopts.team = &solver_team_;
    if (req.path.empty()) {
      session->msf = std::make_unique<dynamic::DynamicMsf>(req.num_vertices,
                                                           dopts);
    } else {
      const bool binary = req.path.size() > 5 &&
                          req.path.compare(req.path.size() - 5, 5, ".smpg") == 0;
      const EdgeList g = binary ? graph::read_binary_file(req.path)
                                : graph::read_dimacs_file(req.path);
      // The initial solve is scheduled like any other on the shared team.
      std::lock_guard<std::mutex> solver(solver_mu_);
      session->msf = std::make_unique<dynamic::DynamicMsf>(g, dopts);
    }
  } catch (const Error& e) {
    drop_placeholder();
    return make_error(status_of(e), e.what());
  } catch (const std::exception& e) {
    drop_placeholder();
    return make_error(Status::kInvalidInput, e.what());
  }
  if (!opts_.data_dir.empty()) {
    const std::string dir = session_dir(req.session);
    try {
      persist::RecoveredState st;
      session->log = std::make_unique<persist::SessionLog>(dir, log_options(),
                                                           &st);
      if (st.have_snapshot || !st.tail.empty()) {
        // Unreachable after a correct recovery pass, but never overwrite
        // durable state that a fresh open did not create.
        throw Error(ErrorCode::kInvalidInput,
                    "directory '" + dir + "' already holds durable state");
      }
      // Initial snapshot at LSN 0: recovery reads the vertex count (and any
      // file-loaded edges) from it, so it must exist before open is acked.
      session->log->write_snapshot(session->msf->store(),
                                   session->msf->forest_edge_ids(), {});
    } catch (const Error& e) {
      session->log.reset();
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
      drop_placeholder();
      return make_error(status_of(e), e.what());
    }
  }
  session->ready.store(true, std::memory_order_release);
  Response r;
  fill_forest_facts(r, *session->msf);
  return r;
}

Response ServiceCore::do_drop(const Request& req) {
  std::shared_ptr<Session> victim;
  {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    const auto it = sessions_.find(req.session);
    if (it == sessions_.end() ||
        !it->second->ready.load(std::memory_order_acquire)) {
      return make_error(Status::kNotFound,
                        "no session named '" + req.session + "'");
    }
    // In-flight requests hold their own shared_ptr and finish against the
    // detached session; new lookups fail from here on.
    victim = it->second;
    sessions_.erase(it);
  }
  if (victim->log != nullptr) {
    // Atomic-rename the directory out of the namespace first: a crash
    // mid-delete leaves a '<name>.dropping' husk recovery sweeps, never a
    // half-valid session.  Open fds inside keep working (writes land in
    // unlinked inodes), so a straggling flusher is harmless.
    victim->dropped.store(true, std::memory_order_release);
    const std::string dir = session_dir(req.session);
    const std::string doomed = dir + ".dropping";
    std::error_code ec;
    std::filesystem::rename(dir, doomed, ec);
    if (!ec) std::filesystem::remove_all(doomed, ec);
  }
  return Response{};
}

Response ServiceCore::do_list() {
  Response r;
  std::lock_guard<std::mutex> lk(sessions_mu_);
  for (const auto& [name, s] : sessions_) {
    if (s->ready.load(std::memory_order_acquire)) r.sessions.push_back(name);
  }
  return r;
}

Response ServiceCore::do_health(const Request& req) {
  Response r;
  r.health_queue_depth = queue_.size();
  r.uptime_s = std::chrono::duration<double>(Clock::now() - started_).count();
  std::lock_guard<std::mutex> lk(sessions_mu_);
  std::uint64_t lsn = 0;
  std::size_t count = 0;
  for (const auto& [name, s] : sessions_) {
    if (!s->ready.load(std::memory_order_acquire)) continue;
    ++count;
    lsn = std::max(lsn, s->committed_lsn.load(std::memory_order_relaxed));
  }
  if (!req.session.empty()) {
    const auto it = sessions_.find(req.session);
    if (it == sessions_.end() ||
        !it->second->ready.load(std::memory_order_acquire)) {
      return make_error(Status::kNotFound,
                        "no session named '" + req.session + "'");
    }
    Session& s = *it->second;
    lsn = s.committed_lsn.load(std::memory_order_relaxed);
    // Per-session query-index status.  The pointer copy is the only thing
    // under index_mu; the index object itself is immutable.
    r.index_status = true;
    r.index_rebuilds = s.index_rebuilds.load(std::memory_order_relaxed);
    std::shared_ptr<const query::ForestIndex> idx;
    {
      std::lock_guard<std::mutex> ilk(s.index_mu);
      idx = s.index;
    }
    if (idx != nullptr) {
      r.index_present = true;
      r.index_version = idx->version();
      r.index_fresh =
          idx->version() ==
          s.committed_version.load(std::memory_order_acquire);
      r.index_vertices = idx->num_vertices();
      r.index_edges = idx->num_forest_edges();
      r.index_age_s =
          std::chrono::duration<double>(Clock::now() - idx->built_at())
              .count();
      r.index_build_s = idx->stats().build_seconds;
    }
  }
  r.health_sessions = count;
  r.lsn = lsn;
  return r;
}

Response ServiceCore::do_read(Session& s, const QueuedRequest& qr) {
  std::shared_lock<std::shared_mutex> lk(s.state_mu);
  const dynamic::DynamicMsf& m = *s.msf;
  Response r;
  switch (qr.req.op) {
    case Op::kWeight:
      fill_forest_facts(r, m);
      return r;
    case Op::kConnected: {
      const VertexId n = m.store().num_vertices();
      if (qr.req.u >= n || qr.req.v >= n) {
        return make_error(Status::kInvalidInput, "vertex out of range");
      }
      // Forest component labels, memoized per committed forest version.
      // Rebuilding under the shared state lock is safe: writers need the
      // exclusive lock to change the forest, so the cache cannot go stale
      // mid-build, and cc_mu serializes concurrent readers rebuilding.
      std::lock_guard<std::mutex> cc_lk(s.cc_mu);
      if (s.cc_version != s.version) {
        EdgeList fg(n);
        fg.edges.reserve(m.forest_edge_ids().size());
        for (const EdgeId id : m.forest_edge_ids()) {
          fg.edges.push_back(m.store().edge(id));
        }
        s.cc = core::connected_components(fg, 1);
        s.cc_version = s.version;
      }
      r.connected = s.cc.label[qr.req.u] == s.cc.label[qr.req.v];
      return r;
    }
    case Op::kForestEdges: {
      fill_forest_facts(r, m);
      const auto& forest = m.forest_edge_ids();
      r.edges_total = forest.size();
      const std::size_t take = qr.req.limit == 0
                                   ? forest.size()
                                   : std::min(qr.req.limit, forest.size());
      r.edges.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        r.edges.push_back(m.store().edge(forest[i]));
      }
      return r;
    }
    case Op::kSnapshot: {
      auto snap = std::make_shared<SnapshotData>();
      snap->live = m.store().live_graph(&snap->live_ids);
      snap->forest_ids = m.forest_edge_ids();
      snap->weight = m.total_weight();
      snap->trees = m.num_trees();
      snap->version = s.version;
      fill_forest_facts(r, m);
      r.snapshot = std::move(snap);
      return r;
    }
    default:
      return make_error(Status::kInternal, "bad read dispatch");
  }
}

std::shared_ptr<const query::ForestIndex> ServiceCore::index_snapshot(
    Session& s) {
  std::lock_guard<std::mutex> lk(s.index_mu);
  return s.index;
}

std::shared_ptr<const query::ForestIndex> ServiceCore::refresh_index_locked(
    Session& s) {
  // index_mu serializes concurrent rebuilders (the cc_mu pattern): the
  // first one builds, the rest find the fresh index published under the
  // same mutex.  `s.version` is stable — the caller holds state_mu.
  std::lock_guard<std::mutex> lk(s.index_mu);
  if (s.index != nullptr && s.index->version() == s.version) return s.index;
  std::shared_ptr<const query::ForestIndex> idx;
  {
    std::lock_guard<std::mutex> solver(solver_mu_);
    idx = std::make_shared<query::ForestIndex>(
        solver_team_, s.msf->store(),
        std::span<const EdgeId>(s.msf->forest_edge_ids()), s.version);
  }
  s.index = idx;
  s.index_rebuilds.fetch_add(1, std::memory_order_relaxed);
  metrics_.index_rebuilds.fetch_add(1, std::memory_order_relaxed);
  metrics_.index_rebuild_us.record(
      static_cast<std::uint64_t>(idx->stats().build_seconds * 1e6));
  return idx;
}

Response ServiceCore::do_query(Session& s, const QueuedRequest& qr) {
  s.query_active.store(true, std::memory_order_relaxed);
  const Request& req = qr.req;
  std::shared_ptr<const query::ForestIndex> idx;
  Response r;
  if (req.op == Op::kTopK) {
    if (req.limit == 0) {
      return make_error(Status::kInvalidInput, "topk needs k >= 1");
    }
    // topk reads the mutable EdgeStore, not just the index, so it runs
    // under the shared lock like any other read (concurrent with reads,
    // excluded from the flusher's apply).
    std::shared_lock<std::shared_mutex> state(s.state_mu);
    idx = refresh_index_locked(s);
    r.index_version = idx->version();
    std::optional<graph::Weight> lambda;
    if (req.has_lambda) lambda = req.lambda;
    std::vector<query::ForestIndex::TopkEdge> top;
    {
      // The scan runs as a team region; solver_mu keeps the team exclusive.
      std::lock_guard<std::mutex> solver(solver_mu_);
      top = idx->top_k(solver_team_, s.msf->store(), req.limit, lambda);
    }
    r.edges.reserve(top.size());
    r.edge_ids.reserve(top.size());
    for (const auto& e : top) {
      r.edges.push_back(WEdge{e.u, e.v, e.w});
      r.edge_ids.push_back(e.id);
    }
    return r;
  }

  // pathmax / conn / cut: fast path first — if the published index matches
  // the committed version, answer from it without touching the state lock,
  // so these reads never queue behind a coalesced write burst.
  idx = index_snapshot(s);
  if (idx != nullptr &&
      idx->version() == s.committed_version.load(std::memory_order_acquire)) {
    metrics_.index_hits.fetch_add(1, std::memory_order_relaxed);
  } else {
    metrics_.index_misses.fetch_add(1, std::memory_order_relaxed);
    std::shared_lock<std::shared_mutex> state(s.state_mu);
    idx = refresh_index_locked(s);
  }
  r.index_version = idx->version();
  const VertexId n = idx->num_vertices();
  switch (req.op) {
    case Op::kConn:
      if (req.u >= n || req.v >= n) {
        return make_error(Status::kInvalidInput, "vertex out of range");
      }
      r.connected = idx->connected(req.u, req.v);
      return r;
    case Op::kPathMax: {
      if (req.u >= n || req.v >= n) {
        return make_error(Status::kInvalidInput, "vertex out of range");
      }
      if (req.u == req.v) {
        return make_error(Status::kInvalidInput,
                          "pathmax endpoints must differ (empty path has no "
                          "bottleneck edge)");
      }
      const query::ForestIndex::PathMax pm = idx->path_max(req.u, req.v);
      r.pathmax_found = pm.connected;
      r.connected = pm.connected;
      if (pm.connected) {
        r.pathmax_id = pm.edge_id;
        r.pathmax_u = pm.u;
        r.pathmax_v = pm.v;
        r.pathmax_w = pm.weight;
      }
      return r;
    }
    case Op::kCut: {
      const query::ForestIndex::Cut c = idx->cut(req.lambda);
      r.clusters = c.num_clusters;
      r.cut_digest = c.labels_digest;
      return r;
    }
    default:
      return make_error(Status::kInternal, "bad query dispatch");
  }
}

Response ServiceCore::do_recompute(Session& s, const QueuedRequest& qr) {
  std::unique_lock<std::shared_mutex> lk(s.state_mu);
  ExecutionBudget budget;
  const bool bounded = qr.deadline != kNoDeadline;
  if (bounded) {
    budget.set_deadline_after(
        std::chrono::duration<double>(qr.deadline - Clock::now()).count());
  }
  Response r;
  try {
    s.msf->set_budget(bounded ? &budget : nullptr);
    {
      std::lock_guard<std::mutex> solver(solver_mu_);
      s.msf->recompute();
    }
    s.msf->set_budget(nullptr);
    bump_version(s);
    fill_forest_facts(r, *s.msf);
    r.applied = true;
    return r;
  } catch (const Error& e) {
    // recompute() does not mutate the store, so a budget failure leaves the
    // previous (still valid) forest in place — nothing to repair.
    s.msf->set_budget(nullptr);
    return make_error(status_of(e), e.what());
  }
}

Response ServiceCore::do_compact(Session& s) {
  std::unique_lock<std::shared_mutex> lk(s.state_mu);
  const std::size_t before = s.msf->store().size();
  s.msf->compact_store();
  bump_version(s);
  const std::size_t after = s.msf->store().size();
  metrics_.compactions.fetch_add(1, std::memory_order_relaxed);
  metrics_.slots_reclaimed.fetch_add(before - after, std::memory_order_relaxed);
  // Compaction renumbers store ids, which every later WAL record names —
  // replay must reproduce the renumbering at exactly this point.
  const std::uint64_t lsn = log_compact_record(s);
  Response r;
  fill_forest_facts(r, *s.msf);
  r.remapped = after;
  r.applied = true;
  r.lsn = lsn;
  lk.unlock();
  if (lsn != 0) s.log->wait_durable(lsn);
  return r;
}

void ServiceCore::maybe_compact(Session& s) {
  // Caller holds the exclusive state lock.
  const std::size_t slots = s.msf->store().size();
  const std::size_t live = s.msf->store().num_live();
  if (slots < opts_.compact_min_slots) return;
  if (static_cast<double>(live) >=
      opts_.compact_live_ratio * static_cast<double>(slots)) {
    return;
  }
  s.msf->compact_store();
  bump_version(s);
  metrics_.compactions.fetch_add(1, std::memory_order_relaxed);
  metrics_.slots_reclaimed.fetch_add(slots - s.msf->store().size(),
                                     std::memory_order_relaxed);
  // Logged but not awaited: auto-compaction is not separately acked, and
  // any later acked write has a higher LSN, whose fsync covers this record.
  log_compact_record(s);
}

void ServiceCore::enqueue_write(const std::shared_ptr<Session>& s,
                                QueuedRequest qr) {
  {
    std::lock_guard<std::mutex> lk(s->pending_mu);
    s->pending.push_back(std::move(qr));
    if (s->flushing) return;  // the active flusher will pick it up
    s->flushing = true;
  }
  // This thread became the session's flusher.  An optional coalescing
  // window lets a burst accumulate behind us before the first drain.
  if (opts_.coalesce_window_s > 0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(opts_.coalesce_window_s));
  }
  flush_writes(*s);
}

void ServiceCore::flush_writes(Session& s) {
  std::unique_lock<std::shared_mutex> state(s.state_mu);
  for (;;) {
    std::vector<QueuedRequest> batch;
    {
      std::lock_guard<std::mutex> lk(s.pending_mu);
      batch.swap(s.pending);
      if (batch.empty()) {
        s.flushing = false;
        return;
      }
    }

    // Merge the drained writes, in arrival order, into groups that one
    // apply_batch can serve.  A group ends early only when a later delete
    // depends on the outcome of an earlier write in the same group (it
    // targets a just-inserted pair, or the canonical live edge it resolves
    // to is already being deleted) — applying first keeps replay
    // order-exact, exactly like the CLI's trace flush.
    std::size_t i = 0;
    while (i < batch.size()) {
      std::vector<std::size_t> members;
      std::vector<WEdge> ins;
      std::vector<EdgeId> del;
      std::vector<std::string> group_idem;
      std::unordered_set<std::string> group_idem_set;
      std::unordered_set<std::uint64_t> ins_pairs;
      std::unordered_set<EdgeId> del_ids;
      auto earliest = kNoDeadline;
      const auto now = Clock::now();

      while (i < batch.size()) {
        QueuedRequest& w = batch[i];
        if (w.deadline != kNoDeadline && now >= w.deadline) {
          // Expired while waiting to be merged: dropped atomically, nothing
          // of it reaches the store.
          Response r = make_error(Status::kDeadlineExceeded,
                                  "deadline expired before apply");
          finish(w, std::move(r));
          ++i;
          continue;
        }
        if (!w.req.idem_id.empty()) {
          const auto hit = s.idem.find(w.req.idem_id);
          if (hit != s.idem.end()) {
            // A retry of a write that already committed (the ack was lost in
            // transit): answer from the idempotency window instead of
            // re-applying, echoing the original commit LSN.  The original
            // ack already waited for durability, so no wait here.
            metrics_.dedup_hits.fetch_add(1, std::memory_order_relaxed);
            Response r;
            fill_forest_facts(r, *s.msf);
            r.applied = true;
            r.coalesced = 1;
            r.dedup = true;
            r.lsn = hit->second;
            r.idem_id = w.req.idem_id;
            finish(w, std::move(r));
            ++i;
            continue;
          }
          if (group_idem_set.count(w.req.idem_id) != 0) {
            // Same id twice in one group (an eager retry caught up with the
            // original): cut the group here; once it commits and registers
            // its ids, the retry dedups on the next pass.
            metrics_.coalesce_conflicts.fetch_add(1,
                                                  std::memory_order_relaxed);
            break;
          }
        }
        if (w.req.op == Op::kInsert) {
          bool bad = false;
          for (const WEdge& e : w.req.insertions) {
            try {
              s.msf->store().validate_edge(e.u, e.v, e.w);
            } catch (const Error& err) {
              finish(w, make_error(Status::kInvalidInput, err.what()));
              bad = true;
              break;
            }
          }
          if (!bad) {
            members.push_back(i);
            for (const WEdge& e : w.req.insertions) {
              ins.push_back(e);
              ins_pairs.insert(pair_key(e.u, e.v));
            }
            if (!w.req.idem_id.empty()) {
              group_idem.push_back(w.req.idem_id);
              group_idem_set.insert(w.req.idem_id);
            }
            if (w.deadline < earliest) earliest = w.deadline;
          }
          ++i;
          continue;
        }
        // Op::kDelete: resolve endpoint pairs to canonical live store ids.
        std::vector<EdgeId> resolved;
        bool conflict = false;
        std::string bad;
        const VertexId n = s.msf->store().num_vertices();
        for (const auto& [u, v] : w.req.deletions) {
          if (u >= n || v >= n || u == v) {
            bad = "delete endpoint out of range";
            break;
          }
          if (ins_pairs.count(pair_key(u, v)) != 0) {
            conflict = true;  // may target an edge this group inserts
            break;
          }
          const auto id = s.msf->store().find_live(u, v);
          if (!id) {
            bad = "no live edge (" + std::to_string(u + 1) + "," +
                  std::to_string(v + 1) + ")";
            break;
          }
          if (del_ids.count(*id) != 0) {
            conflict = true;  // canonical edge already deleted by the group
            break;
          }
          if (std::find(resolved.begin(), resolved.end(), *id) !=
              resolved.end()) {
            bad = "duplicate delete of the same canonical edge in one request";
            break;
          }
          resolved.push_back(*id);
        }
        if (conflict) {
          // Leave w for the next group; the current group applies first.
          metrics_.coalesce_conflicts.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        if (!bad.empty()) {
          finish(w, make_error(Status::kInvalidInput, bad));
          ++i;
          continue;
        }
        members.push_back(i);
        for (const EdgeId id : resolved) {
          del.push_back(id);
          del_ids.insert(id);
        }
        if (!w.req.idem_id.empty()) {
          group_idem.push_back(w.req.idem_id);
          group_idem_set.insert(w.req.idem_id);
        }
        if (w.deadline < earliest) earliest = w.deadline;
        ++i;
      }

      if (members.empty()) continue;

      // One apply_batch for the whole group — this is the coalescing the
      // tentpole is about: burst traffic pays one sparsified solve.
      ExecutionBudget budget;
      const bool bounded = earliest != kNoDeadline;
      if (bounded) {
        budget.set_deadline_after(
            std::chrono::duration<double>(earliest - Clock::now()).count());
      }
      try {
        s.msf->set_budget(bounded ? &budget : nullptr);
        {
          std::lock_guard<std::mutex> solver(solver_mu_);
          s.msf->apply_batch(ins, del);
        }
        s.msf->set_budget(nullptr);
        bump_version(s);
        metrics_.apply_batches.fetch_add(1, std::memory_order_relaxed);
        metrics_.coalesced_writes.fetch_add(members.size(),
                                            std::memory_order_relaxed);
        metrics_.coalesce_size.record(members.size());
        // Commit: one WAL record for the whole group, appended under the
        // same exclusive lock as the mutation so log order == store order.
        const std::uint64_t lsn = log_applied_group(
            s, std::move(ins), std::move(del), std::move(group_idem));
        // Compact before the ack goes out so a reader that sees the write
        // response also sees the post-compaction store (and a due snapshot
        // below captures the compacted, smaller store).
        maybe_compact(s);
        // Query-active sessions get their ForestIndex rebuilt eagerly while
        // we still hold the exclusive lock — but only when no further
        // writes are pending, so a coalesced burst pays one rebuild at its
        // tail, not one per group.  Sized by the acceptance gate: the
        // rebuild must stay within 1x of the apply_batch solve it follows.
        if (opts_.query_index_eager &&
            s.query_active.load(std::memory_order_relaxed)) {
          bool more;
          {
            std::lock_guard<std::mutex> lk(s.pending_mu);
            more = !s.pending.empty();
          }
          if (!more && i >= batch.size()) refresh_index_locked(s);
        }
        Response base;
        fill_forest_facts(base, *s.msf);
        base.applied = true;
        base.coalesced = members.size();
        base.lsn = lsn;
        if (s.log != nullptr && s.log->snapshot_due()) {
          snapshot_session_locked(s);
        }
        // Acks only after the commit LSN is durable.  Only the wait runs
        // unlocked — reads proceed, the pending list refills behind us, and
        // no other flusher can exist while s.flushing is set.
        state.unlock();
        if (lsn != 0) s.log->wait_durable(lsn);
        for (const std::size_t idx : members) {
          Response r(base);
          r.idem_id = batch[idx].req.idem_id;
          finish(batch[idx], std::move(r));
        }
        state.lock();
      } catch (const Error& e) {
        s.msf->set_budget(nullptr);
        const Status st = status_of(e);
        if (st == Status::kInvalidInput) {
          // apply_batch validates before mutating, so nothing was applied.
          for (const std::size_t idx : members) {
            finish(batch[idx], make_error(st, e.what()));
          }
        } else {
          // Mid-solve failure (deadline/cancel/OOM): the store mutations
          // are in, the forest is stale.  The mutation still happened, so
          // it is logged like a success (replay must reproduce the store);
          // then repair with an unbudgeted recompute so later requests see
          // a correct forest — the failed deadline must not poison the
          // session.
          const std::uint64_t lsn = log_applied_group(
              s, std::move(ins), std::move(del), std::move(group_idem));
          repair_after_failed_apply(s);
          maybe_compact(s);
          Response r = make_error(st, e.what());
          r.applied = true;
          r.coalesced = members.size();
          r.lsn = lsn;
          state.unlock();
          if (lsn != 0) s.log->wait_durable(lsn);
          for (const std::size_t idx : members) {
            Response resp(r);
            resp.idem_id = batch[idx].req.idem_id;
            finish(batch[idx], std::move(resp));
          }
          state.lock();
        }
      } catch (const std::exception& e) {
        s.msf->set_budget(nullptr);
        const std::uint64_t lsn = log_applied_group(
            s, std::move(ins), std::move(del), std::move(group_idem));
        repair_after_failed_apply(s);
        maybe_compact(s);
        Response r = make_error(Status::kInternal, e.what());
        r.applied = true;
        r.lsn = lsn;
        state.unlock();
        if (lsn != 0) s.log->wait_durable(lsn);
        for (const std::size_t idx : members) {
          Response resp(r);
          resp.idem_id = batch[idx].req.idem_id;
          finish(batch[idx], std::move(resp));
        }
        state.lock();
      }
    }
  }
}

persist::SessionLogOptions ServiceCore::log_options() {
  persist::SessionLogOptions lo;
  lo.fsync = opts_.fsync;
  lo.fsync_interval_s = opts_.fsync_interval_s;
  lo.snapshot_wal_bytes = opts_.snapshot_wal_bytes;
  lo.snapshot_every_records = opts_.snapshot_every_records;
  lo.snapshot_retain = opts_.snapshot_retain;
  lo.counters = &metrics_.persist;
  return lo;
}

std::string ServiceCore::session_dir(const std::string& name) const {
  return opts_.data_dir + "/" + name;
}

void ServiceCore::recover_sessions() {
  namespace fs = std::filesystem;
  fs::create_directories(opts_.data_dir);
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(opts_.data_dir)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() >= 9 &&
        name.compare(name.size() - 9, 9, ".dropping") == 0) {
      // A drop that died between rename and remove: finish it.
      std::error_code ec;
      fs::remove_all(entry.path(), ec);
      recovery_notes_.push_back("removed interrupted drop '" + name + "'");
      continue;
    }
    if (!valid_session_name(name)) {
      recovery_notes_.push_back("ignoring non-session entry '" + name + "'");
      continue;
    }
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());

  for (const std::string& name : names) {
    persist::RecoveredState st;
    std::unique_ptr<persist::SessionLog> log;
    try {
      log = std::make_unique<persist::SessionLog>(session_dir(name),
                                                  log_options(), &st);
    } catch (const Error& e) {
      throw Error(e.code(), "recovering session '" + name + "': " + e.what());
    }
    if (!st.have_snapshot) {
      // open() crashed before the initial snapshot: the open was never
      // acknowledged, so the session does not exist.  Remove the husk.
      log.reset();
      std::error_code ec;
      fs::remove_all(session_dir(name), ec);
      recovery_notes_.push_back("removed half-opened session '" + name + "'");
      continue;
    }
    for (const std::string& w : st.warnings) {
      recovery_notes_.push_back("session '" + name + "': " + w);
    }

    auto session = std::make_shared<Session>();
    session->name = name;
    dynamic::DynamicMsfOptions dopts;
    dopts.msf = opts_.msf;
    dopts.team = &solver_team_;
    const std::size_t tail_records = st.tail.size();
    try {
      session->msf = std::make_unique<dynamic::DynamicMsf>(
          std::move(st.store), std::move(st.forest), dopts);
      for (auto& [id, lsn] : st.idem) {
        register_idem(*session, std::move(id), lsn);
      }
      session->log = std::move(log);
      if (!st.tail.empty()) replay_tail(*session, std::move(st.tail));
    } catch (const Error& e) {
      throw Error(e.code(), "recovering session '" + name + "': " + e.what());
    }
    session->committed_lsn.store(session->log->last_lsn(),
                                 std::memory_order_relaxed);
    session->ready.store(true, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lk(sessions_mu_);
      sessions_.emplace(name, std::move(session));
    }
    metrics_.recoveries.fetch_add(1, std::memory_order_relaxed);
    metrics_.replayed_records.fetch_add(tail_records,
                                        std::memory_order_relaxed);
    std::string note = "recovered session '" + name + "': snapshot lsn " +
                       std::to_string(st.snapshot_lsn);
    note += st.clean ? ", clean shutdown"
                     : ", replayed " + std::to_string(tail_records) +
                           " WAL records";
    if (st.torn_tail_truncated) note += ", torn tail truncated";
    recovery_notes_.push_back(std::move(note));
  }
}

void ServiceCore::replay_tail(Session& s,
                              std::vector<persist::WalRecord> tail) {
  // Replay reuses the live path's coalescing: consecutive batch records
  // merge into one apply_batch (one sparsified solve) until a record's
  // deletion targets an id this group inserts, repeats a deletion, or a
  // compact record intervenes — the same dependency cuts the flusher makes,
  // so a 10^6-record tail costs a handful of solves, not 10^6.
  std::size_t i = 0;
  while (i < tail.size()) {
    if (tail[i].compact) {
      s.msf->compact_store();
      bump_version(s);
      ++i;
      continue;
    }
    std::vector<WEdge> ins;
    std::vector<EdgeId> del;
    std::unordered_set<EdgeId> del_ids;
    const EdgeId group_base = s.msf->store().size();
    std::size_t j = i;
    while (j < tail.size() && !tail[j].compact) {
      bool cut = false;
      for (const EdgeId id : tail[j].deletions) {
        if (id >= group_base || del_ids.count(id) != 0) {
          cut = true;
          break;
        }
      }
      // j == i cannot legitimately cut (a record's deletions always name
      // pre-record ids); if a malformed log does, the record goes through
      // alone and apply_batch rejects it with a clear diagnostic.
      if (cut && j > i) break;
      ins.insert(ins.end(), tail[j].insertions.begin(),
                 tail[j].insertions.end());
      for (const EdgeId id : tail[j].deletions) {
        del.push_back(id);
        del_ids.insert(id);
      }
      for (std::string& id : tail[j].idem_ids) {
        register_idem(s, std::move(id), tail[j].lsn);
      }
      ++j;
    }
    {
      std::lock_guard<std::mutex> solver(solver_mu_);
      s.msf->apply_batch(ins, del);
    }
    bump_version(s);
    i = j;
  }
}

std::uint64_t ServiceCore::log_applied_group(
    Session& s, std::vector<WEdge> insertions, std::vector<EdgeId> deletions,
    std::vector<std::string> idem_ids) {
  std::uint64_t lsn = 0;
  if (s.log != nullptr && !s.log_broken &&
      !s.dropped.load(std::memory_order_acquire)) {
    persist::WalRecord rec;
    rec.insertions = std::move(insertions);
    rec.deletions = std::move(deletions);
    rec.idem_ids = idem_ids;
    try {
      lsn = s.log->append(std::move(rec));
      s.committed_lsn.store(lsn, std::memory_order_relaxed);
    } catch (...) {
      // The mutation is applied in memory but could not be logged.  Any
      // later append would leave a gap replay refuses to cross, so logging
      // stops for this session: served state stays correct, durability
      // degrades to the last good record, and responses carry lsn 0.
      s.log_broken = true;
      lsn = 0;
    }
  }
  // Registered even without a log (persistence off, or just broken): the
  // mutation IS applied, so a client retry must dedup either way.
  for (std::string& id : idem_ids) register_idem(s, std::move(id), lsn);
  return lsn;
}

std::uint64_t ServiceCore::log_compact_record(Session& s) {
  if (s.log == nullptr || s.log_broken ||
      s.dropped.load(std::memory_order_acquire)) {
    return 0;
  }
  persist::WalRecord rec;
  rec.compact = true;
  std::uint64_t lsn = 0;
  try {
    lsn = s.log->append(std::move(rec));
  } catch (...) {
    s.log_broken = true;
    return 0;
  }
  s.committed_lsn.store(lsn, std::memory_order_relaxed);
  return lsn;
}

void ServiceCore::snapshot_session_locked(Session& s) {
  if (s.log == nullptr || s.log_broken ||
      s.dropped.load(std::memory_order_acquire)) {
    return;
  }
  try {
    s.log->write_snapshot(s.msf->store(), s.msf->forest_edge_ids(),
                          idem_window(s));
  } catch (...) {
    // Not fatal: the WAL still covers everything; the next due snapshot
    // retries.
  }
}

void ServiceCore::repair_after_failed_apply(Session& s) {
  metrics_.solver_repairs.fetch_add(1, std::memory_order_relaxed);
  try {
    std::lock_guard<std::mutex> solver(solver_mu_);
    s.msf->recompute();
    bump_version(s);
  } catch (...) {
    // Repair itself failed (true OOM): the forest stays stale.  The next
    // successful apply/recompute will fix it; readers meanwhile see the
    // pre-batch forest, which is the documented DynamicMsf failure surface.
  }
}

}  // namespace smp::serve
