#include "serve/service_core.hpp"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <cmath>
#include <deque>
#include <exception>
#include <filesystem>
#include <future>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "core/connected_components.hpp"
#include "core/error.hpp"
#include "dynamic/dynamic_msf.hpp"
#include "dynamic/edge_slab.hpp"
#include "graph/io.hpp"
#include "query/forest_index.hpp"
#include "serve/protocol.hpp"

namespace smp::serve {

using graph::EdgeId;
using graph::EdgeList;
using graph::VertexId;
using graph::WEdge;

/// One published MVCC epoch of a session: the committed live graph + forest
/// (SnapshotData, immutable once published) plus lazily built read caches —
/// the materialized forest edge list, the forest component labels, and the
/// query ForestIndex.  A reader holding a shared_ptr to one of these
/// answers weight/edges/connected/pathmax/conn/cut/topk bit-identically to
/// a scratch solve of this epoch's graph, no matter how far the session has
/// moved on since.
struct SessionSnapshot {
  std::uint64_t epoch = 0;
  std::shared_ptr<SnapshotData> data;

  /// Lazy caches, each built at most once from `data` alone.  aux_mu guards
  /// the cheap ones; the index (expensive, separately buildable) has its
  /// own mutex so a slow index build never blocks a `connected` read.
  mutable std::mutex aux_mu;
  mutable std::shared_ptr<const std::vector<WEdge>> fedges;
  mutable std::shared_ptr<const core::CcResult> cc;
  mutable std::mutex index_mu;
  mutable std::shared_ptr<const query::ForestIndex> index;
};

/// One named graph session.  `state_mu` is the writer lock: the write
/// flusher and recompute/compact hold it exclusively.  Reads never take it
/// — every committed mutation publishes an immutable SessionSnapshot into
/// the epoch ring, and reads serve from a ring entry (latest by default,
/// pinned via Request::pin_epoch otherwise), making them wait-free with
/// respect to writers.  The pending list + flushing flag implement write
/// coalescing.
struct Session {
  std::string name;

  std::shared_mutex state_mu;
  std::unique_ptr<dynamic::DynamicMsf> msf;  ///< guarded by state_mu
  std::uint64_t version = 0;  ///< committed-mutation counter, guarded by state_mu
  std::atomic<bool> ready{false};  ///< set once the initial solve committed

  ServiceCore::Shard* home = nullptr;  ///< shard placement, fixed at open

  std::mutex pending_mu;
  std::vector<ServiceCore::QueuedRequest> pending;
  bool flushing = false;

  // --- MVCC epoch ring ---
  /// snap_mu guards only the deque itself (push/retire/back); the snapshots
  /// are immutable, so a reader copies one shared_ptr and drops the mutex.
  std::mutex snap_mu;
  std::deque<std::shared_ptr<SessionSnapshot>> snaps;
  std::atomic<std::uint64_t> reclaimed_epochs{0};

  // --- query engine (src/query) ---
  /// Lock-free mirror of `version`, updated by every committer right after
  /// the bump: health compares it against the latest snapshot's index
  /// version without touching state_mu.
  std::atomic<std::uint64_t> committed_version{0};
  /// Set by the first query op; write flushes only rebuild the index
  /// eagerly for sessions that actually serve queries.
  std::atomic<bool> query_active{false};
  std::atomic<std::uint64_t> index_rebuilds{0};

  // --- durability (log is null when the service runs without a data dir).
  // All SessionLog mutations (append / snapshot / mark_clean) happen under
  // the exclusive state lock; only wait_durable runs unlocked, so reads
  // never block on an fsync. ---
  std::unique_ptr<persist::SessionLog> log;
  std::atomic<bool> dropped{false};  ///< directory is being deleted
  std::atomic<std::uint64_t> committed_lsn{0};
  bool log_broken = false;  ///< an append failed; serve on, stop logging
  /// Idempotency window: id -> commit LSN, FIFO-bounded.  Guarded by the
  /// exclusive state lock (single active flusher; recovery runs before
  /// serving starts).
  std::unordered_map<std::string, std::uint64_t> idem;
  std::deque<std::string> idem_fifo;
};

namespace {

constexpr auto kNoDeadline =
    std::chrono::steady_clock::time_point::max();

Response make_error(Status s, std::string detail) {
  Response r;
  r.status = s;
  r.detail = std::move(detail);
  return r;
}

Status status_of(const Error& e) {
  switch (e.code()) {
    case ErrorCode::kCancelled:
      return Status::kCancelled;
    case ErrorCode::kDeadlineExceeded:
      return Status::kDeadlineExceeded;
    case ErrorCode::kOutOfMemory:
      return Status::kOutOfMemory;
    case ErrorCode::kInvalidInput:
      return Status::kInvalidInput;
  }
  return Status::kInternal;
}

bool valid_session_name(const std::string& name) {
  if (name.empty() || name.size() > 64) return false;
  // Session names double as directory names under the data dir: "." and
  // ".." would escape it, and the ".dropping" suffix is reserved for
  // half-deleted directories startup recovery sweeps away.
  if (name == "." || name == "..") return false;
  if (name.size() >= 9 &&
      name.compare(name.size() - 9, 9, ".dropping") == 0) {
    return false;
  }
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_' &&
        c != '-' && c != '.') {
      return false;
    }
  }
  return true;
}

/// Read-shaped ops serve from an immutable MVCC snapshot: no state lock, no
/// queueing — submit() executes them inline (the priority lane).
bool is_read_shaped(Op op) {
  switch (op) {
    case Op::kWeight:
    case Op::kConnected:
    case Op::kForestEdges:
    case Op::kSnapshot:
    case Op::kPathMax:
    case Op::kConn:
    case Op::kCut:
    case Op::kTopK:
      return true;
    default:
      return false;
  }
}

bool is_query_op(Op op) {
  return op == Op::kPathMax || op == Op::kConn || op == Op::kCut ||
         op == Op::kTopK;
}

/// Bound on remembered idempotency ids per session; old ids age out FIFO.
constexpr std::size_t kIdemWindow = 65536;

void register_idem(Session& s, std::string id, std::uint64_t lsn) {
  if (id.empty()) return;
  const auto [it, inserted] = s.idem.emplace(std::move(id), lsn);
  if (!inserted) {
    it->second = lsn;
    return;
  }
  s.idem_fifo.push_back(it->first);
  while (s.idem_fifo.size() > kIdemWindow) {
    s.idem.erase(s.idem_fifo.front());
    s.idem_fifo.pop_front();
  }
}

/// The idempotency window as snapshot payload, oldest first.
std::vector<std::pair<std::string, std::uint64_t>> idem_window(
    const Session& s) {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(s.idem_fifo.size());
  for (const std::string& id : s.idem_fifo) {
    const auto it = s.idem.find(id);
    if (it != s.idem.end()) out.emplace_back(it->first, it->second);
  }
  return out;
}

/// Committed-mutation bump, called under the exclusive state lock.  Every
/// path that changes what a scratch solve of the session would return
/// (apply / recompute / repair / compact — compaction renumbers the store
/// ids the query index holds) goes through here, so the lock-free mirror
/// stays in step with the locked counter.  The committer publishes an MVCC
/// snapshot once its run of bumps is complete.
void bump_version(Session& s) {
  ++s.version;
  s.committed_version.store(s.version, std::memory_order_release);
}

void fill_forest_facts(Response& r, const dynamic::DynamicMsf& m) {
  r.weight = m.total_weight();
  r.trees = m.num_trees();
  r.forest_edges = m.forest_edge_ids().size();
  r.live_edges = m.store().num_live();
}

void fill_snapshot_facts(Response& r, const SnapshotData& d) {
  r.weight = d.weight;
  r.trees = d.trees;
  r.forest_edges = d.forest_ids.size();
  r.live_edges = d.live.num_edges();
}

/// The snapshot's forest edges (ascending by store id), built once under
/// aux_mu.  forest_ids is a subsequence of live_ids and both are ascending,
/// so a two-pointer merge materializes the list in one pass.
std::shared_ptr<const std::vector<WEdge>> snapshot_forest_edges(
    const SessionSnapshot& snap) {
  std::lock_guard<std::mutex> lk(snap.aux_mu);
  if (snap.fedges != nullptr) return snap.fedges;
  const SnapshotData& d = *snap.data;
  auto fe = std::make_shared<std::vector<WEdge>>();
  fe->reserve(d.forest_ids.size());
  std::size_t pos = 0;
  for (const EdgeId id : d.forest_ids) {
    while (pos < d.live_ids.size() && d.live_ids[pos] < id) ++pos;
    if (pos < d.live_ids.size() && d.live_ids[pos] == id) {
      fe->push_back(d.live.edges[pos]);
    }
  }
  snap.fedges = fe;
  return fe;
}

/// The snapshot's forest component labels (kConnected), built once.
std::shared_ptr<const core::CcResult> snapshot_cc(const SessionSnapshot& snap) {
  const auto fe = snapshot_forest_edges(snap);
  std::lock_guard<std::mutex> lk(snap.aux_mu);
  if (snap.cc != nullptr) return snap.cc;
  EdgeList fg(snap.data->live.num_vertices);
  fg.edges = *fe;
  auto cc = std::make_shared<core::CcResult>(core::connected_components(fg, 1));
  snap.cc = cc;
  return cc;
}

std::uint64_t pair_key(VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

int auto_shards() {
  const unsigned hw = std::thread::hardware_concurrency();
  // One shard per four hardware threads: a shard spends its parallelism on
  // its solver team, not on shard count, and small machines stay at 1.
  return std::max(1, static_cast<int>(hw / 4));
}

ServeOptions normalize(ServeOptions opts) {
  opts.msf.threads = std::max(1, opts.msf.threads);
  opts.dispatchers = std::max(1, opts.dispatchers);
  opts.queue_capacity = std::max<std::size_t>(1, opts.queue_capacity);
  if (opts.shards == 0) opts.shards = auto_shards();
  opts.shards = std::max(1, opts.shards);
  opts.snapshot_ring = std::max(1, opts.snapshot_ring);
  if (opts.rate_limit_rps > 0 && opts.rate_limit_burst <= 0) {
    opts.rate_limit_burst = opts.rate_limit_rps;
  }
  // Per-request budgets are installed by the dispatcher; a caller-supplied
  // one would dangle across requests.
  opts.msf.budget = nullptr;
  if (opts.fsync_interval_s <= 0) opts.fsync_interval_s = 0.005;
  opts.snapshot_retain = std::max(1, opts.snapshot_retain);
  return opts;
}

}  // namespace

ServiceCore::ServiceCore(ServeOptions opts)
    : opts_(normalize(std::move(opts))),
      started_(Clock::now()),
      ring_(opts_.shards) {
  // Shards first: recovery schedules replay solves on their teams.  With
  // several memory nodes, shard i's solver team pins to node i mod nodes so
  // each shard's working set stays node-local.
  const std::vector<std::vector<int>> nodes = placement::numa_nodes();
  shards_.reserve(static_cast<std::size_t>(opts_.shards));
  for (int i = 0; i < opts_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->id = i;
    shard->team = std::make_unique<ThreadTeam>(opts_.msf.threads);
    shard->queue =
        std::make_unique<BoundedQueue<QueuedRequest>>(opts_.queue_capacity);
    if (nodes.size() > 1 && opts_.shards > 1) {
      shard->cpus = nodes[static_cast<std::size_t>(i) % nodes.size()];
      const std::vector<int>& cpus = shard->cpus;
      // Workers self-pin; tid 0 is this (caller) thread and stays free.
      shard->team->run([&cpus](TeamCtx& ctx) {
        if (ctx.tid() != 0) placement::pin_current_thread(cpus);
      });
    }
    shards_.push_back(std::move(shard));
  }
  // Recovery happens before the first dispatcher exists, so every restored
  // session is fully replayed before any request can observe it.
  if (!opts_.data_dir.empty()) recover_sessions();
  for (auto& shard : shards_) {
    shard->dispatchers.reserve(static_cast<std::size_t>(opts_.dispatchers));
    for (int i = 0; i < opts_.dispatchers; ++i) {
      Shard* sp = shard.get();
      shard->dispatchers.emplace_back([this, sp] { dispatcher_loop(*sp); });
    }
  }
}

ServiceCore::~ServiceCore() { shutdown(); }

void ServiceCore::shutdown() {
  std::call_once(shutdown_once_, [&] {
    stopping_.store(true, std::memory_order_release);
    for (auto& shard : shards_) shard->queue->close();  // admitted work drains
    for (auto& shard : shards_) {
      for (auto& t : shard->dispatchers) t.join();
    }
    if (!opts_.data_dir.empty() && opts_.clean_shutdown) {
      // Graceful drain: every write is flushed and logged, so a final
      // snapshot + CLEAN marker lets the next startup skip replay.
      std::lock_guard<std::mutex> lk(sessions_mu_);
      for (auto& [name, s] : sessions_) {
        if (!s->ready.load(std::memory_order_acquire) || s->log == nullptr ||
            s->log_broken || s->dropped.load(std::memory_order_acquire)) {
          continue;
        }
        std::unique_lock<std::shared_mutex> state(s->state_mu);
        try {
          s->log->mark_clean(s->msf->store(), s->msf->forest_edge_ids(),
                             idem_window(*s));
        } catch (...) {
          // Best effort: without the marker the next start replays the WAL.
        }
      }
    }
  });
}

void ServiceCore::add_listener(const std::string& name) {
  std::lock_guard<std::mutex> lk(listeners_mu_);
  listeners_.push_back(name);
}

void ServiceCore::remove_listener(const std::string& name) {
  std::lock_guard<std::mutex> lk(listeners_mu_);
  const auto it = std::find(listeners_.begin(), listeners_.end(), name);
  if (it != listeners_.end()) listeners_.erase(it);
}

ServiceCore::Shard& ServiceCore::shard_of(const std::string& session_name) {
  if (shards_.size() == 1 || session_name.empty()) return *shards_[0];
  return *shards_[static_cast<std::size_t>(ring_.shard_for(session_name))];
}

bool ServiceCore::rate_admit(const std::string& client_id) {
  if (opts_.rate_limit_rps <= 0 || client_id.empty()) return true;
  std::lock_guard<std::mutex> lk(rl_mu_);
  const auto now = Clock::now();
  TokenBucket& b = buckets_[client_id];
  if (b.last == Clock::time_point{}) {
    b.tokens = opts_.rate_limit_burst;  // first sight: a full bucket
    b.last = now;
  }
  const double dt = std::chrono::duration<double>(now - b.last).count();
  b.tokens = std::min(opts_.rate_limit_burst,
                      b.tokens + opts_.rate_limit_rps * dt);
  b.last = now;
  if (b.tokens >= 1.0) {
    b.tokens -= 1.0;
    return true;
  }
  return false;
}

bool ServiceCore::submit(Request req, std::function<void(Response)> done) {
  metrics_.submitted.fetch_add(1, std::memory_order_relaxed);
  QueuedRequest qr;
  qr.req = std::move(req);
  qr.done = std::move(done);
  qr.submitted = Clock::now();
  qr.deadline = kNoDeadline;
  const double dl =
      qr.req.deadline_s > 0 ? qr.req.deadline_s : opts_.default_deadline_s;
  if (dl > 0) {
    qr.deadline =
        qr.submitted + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(dl));
  }
  if (stopping_.load(std::memory_order_acquire)) {
    metrics_.rejected_shutdown.fetch_add(1, std::memory_order_relaxed);
    qr.done(make_error(Status::kShuttingDown, "service is shutting down"));
    return false;
  }
  const bool read_lane = is_read_shaped(qr.req.op);
  // Tiered back-pressure: write/admin ops pay the per-client token bucket;
  // read-shaped ops ride the priority lane below and are never limited.
  if (!read_lane && !rate_admit(qr.req.client_id)) {
    metrics_.rejected_rate_limited.fetch_add(1, std::memory_order_relaxed);
    qr.done(make_error(Status::kRateLimited,
                       "client '" + qr.req.client_id + "' over rate limit"));
    return false;
  }
  if (read_lane) {
    // The read priority lane: snapshot reads are wait-free, so they run
    // inline on the submitting (transport) thread — no queueing behind
    // writes, no dispatcher handoff, and overload shedding never touches
    // them.  Unknown sessions fall through to the queue for the uniform
    // kNotFound path.
    if (const std::shared_ptr<Session> s = find_session(qr.req.session)) {
      metrics_.reads_inline.fetch_add(1, std::memory_order_relaxed);
      try {
        finish(qr, is_query_op(qr.req.op) ? do_query(*s, qr)
                                          : do_read(*s, qr));
      } catch (const Error& e) {
        finish(qr, make_error(status_of(e), e.what()));
      } catch (const std::exception& e) {
        finish(qr, make_error(Status::kInternal, e.what()));
      }
      return true;
    }
  }
  Shard& shard = shard_of(qr.req.session);
  if (!shard.queue->try_push(std::move(qr))) {
    // try_push only consumes the item on success, so qr is intact here.
    const bool down = stopping_.load(std::memory_order_acquire);
    auto& counter = down ? metrics_.rejected_shutdown : metrics_.rejected_overload;
    counter.fetch_add(1, std::memory_order_relaxed);
    qr.done(make_error(down ? Status::kShuttingDown : Status::kOverloaded,
                       down ? "service is shutting down"
                            : "request queue is full"));
    return false;
  }
  metrics_.record_queue_depth(shard.queue->size());
  return true;
}

Response ServiceCore::call(Request req) {
  std::promise<Response> p;
  std::future<Response> f = p.get_future();
  submit(std::move(req), [&p](Response r) { p.set_value(std::move(r)); });
  return f.get();
}

std::string ServiceCore::stats_json() const {
  const double uptime =
      std::chrono::duration<double>(Clock::now() - started_).count();
  std::vector<std::uint64_t> depths;
  depths.reserve(shards_.size());
  for (const auto& shard : shards_) depths.push_back(shard->queue->size());
  return metrics_.to_json(opts_.queue_capacity, uptime, depths);
}

void ServiceCore::dispatcher_loop(Shard& shard) {
  if (!shard.cpus.empty()) placement::pin_current_thread(shard.cpus);
  while (auto item = shard.queue->pop()) {
    metrics_.record_queue_depth(shard.queue->size());
    execute(std::move(*item));
  }
}

void ServiceCore::finish(QueuedRequest& qr, Response r) {
  const auto us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            qr.submitted)
          .count());
  metrics_.record_completion(qr.req.op, r.status, us);
  qr.done(std::move(r));
}

std::shared_ptr<Session> ServiceCore::find_session(const std::string& name) {
  std::lock_guard<std::mutex> lk(sessions_mu_);
  const auto it = sessions_.find(name);
  if (it == sessions_.end() ||
      !it->second->ready.load(std::memory_order_acquire)) {
    return nullptr;
  }
  return it->second;
}

void ServiceCore::execute(QueuedRequest qr) {
  if (qr.deadline != kNoDeadline && Clock::now() >= qr.deadline) {
    finish(qr, make_error(Status::kDeadlineExceeded,
                          "deadline expired while queued"));
    return;
  }
  try {
    switch (qr.req.op) {
      case Op::kPing:
        finish(qr, Response{});
        return;
      case Op::kStats: {
        Response r;
        r.stats_json = stats_json();
        finish(qr, std::move(r));
        return;
      }
      case Op::kOpen:
        finish(qr, do_open(qr.req));
        return;
      case Op::kDrop:
        finish(qr, do_drop(qr.req));
        return;
      case Op::kList:
        finish(qr, do_list());
        return;
      case Op::kHealth:
        finish(qr, do_health(qr.req));
        return;
      default:
        break;
    }
    const std::shared_ptr<Session> s = find_session(qr.req.session);
    if (s == nullptr) {
      finish(qr, make_error(Status::kNotFound,
                            "no session named '" + qr.req.session + "'"));
      return;
    }
    switch (qr.req.op) {
      case Op::kInsert:
      case Op::kDelete:
        enqueue_write(s, std::move(qr));  // responds from the flusher
        return;
      case Op::kRecompute:
        finish(qr, do_recompute(*s, qr));
        return;
      case Op::kCompact:
        finish(qr, do_compact(*s));
        return;
      case Op::kPathMax:
      case Op::kConn:
      case Op::kCut:
      case Op::kTopK:
        finish(qr, do_query(*s, qr));
        return;
      default:
        finish(qr, do_read(*s, qr));
        return;
    }
  } catch (const Error& e) {
    finish(qr, make_error(status_of(e), e.what()));
  } catch (const std::exception& e) {
    finish(qr, make_error(Status::kInternal, e.what()));
  }
}

void ServiceCore::publish_snapshot_locked(Session& s) {
  {
    std::lock_guard<std::mutex> lk(s.snap_mu);
    if (!s.snaps.empty() && s.snaps.back()->epoch == s.version) {
      // Nothing committed since the last publish (e.g. a failed repair left
      // the version in place) — the published epoch stays immutable.
      return;
    }
  }
  auto snap = std::make_shared<SessionSnapshot>();
  auto data = std::make_shared<SnapshotData>();
  data->live = s.msf->store().live_graph(&data->live_ids);
  data->forest_ids = s.msf->forest_edge_ids();
  data->weight = s.msf->total_weight();
  data->trees = s.msf->num_trees();
  data->version = s.version;
  snap->epoch = s.version;
  snap->data = std::move(data);
  {
    std::lock_guard<std::mutex> lk(s.snap_mu);
    s.snaps.push_back(std::move(snap));
    while (s.snaps.size() > static_cast<std::size_t>(opts_.snapshot_ring)) {
      s.snaps.pop_front();
      s.reclaimed_epochs.fetch_add(1, std::memory_order_relaxed);
      metrics_.epochs_reclaimed.fetch_add(1, std::memory_order_relaxed);
    }
  }
  metrics_.snapshots_published.fetch_add(1, std::memory_order_relaxed);
}

std::shared_ptr<SessionSnapshot> ServiceCore::pinned_snapshot(
    Session& s, std::uint64_t pin_epoch, Response* err) {
  std::lock_guard<std::mutex> lk(s.snap_mu);
  if (s.snaps.empty()) {
    *err = make_error(Status::kInternal, "session has no published snapshot");
    return nullptr;
  }
  if (pin_epoch == 0) return s.snaps.back();
  for (const auto& snap : s.snaps) {
    if (snap->epoch == pin_epoch) return snap;
  }
  if (pin_epoch > s.snaps.back()->epoch) {
    *err = make_error(Status::kInvalidInput,
                      "epoch " + std::to_string(pin_epoch) +
                          " not committed yet (latest is " +
                          std::to_string(s.snaps.back()->epoch) + ")");
  } else {
    *err = make_error(Status::kInvalidInput,
                      "epoch " + std::to_string(pin_epoch) +
                          " retired (ring keeps " +
                          std::to_string(s.snaps.size()) +
                          " epochs, oldest is " +
                          std::to_string(s.snaps.front()->epoch) + ")");
  }
  return nullptr;
}

std::shared_ptr<const query::ForestIndex> ServiceCore::snapshot_index(
    Session& s, SessionSnapshot& snap, bool eager) {
  // index_mu serializes concurrent builders: the first one builds, the rest
  // find the published index under the same mutex.
  std::lock_guard<std::mutex> lk(snap.index_mu);
  if (snap.index != nullptr) return snap.index;
  std::vector<WEdge> fedges = *snapshot_forest_edges(snap);
  std::vector<EdgeId> fids = snap.data->forest_ids;
  std::shared_ptr<const query::ForestIndex> idx;
  if (eager) {
    // Flusher path (exclusive state lock held): build in parallel on the
    // session's shard team.
    std::lock_guard<std::mutex> solver(s.home->solver_mu);
    idx = std::make_shared<query::ForestIndex>(
        *s.home->team, snap.data->live.num_vertices, std::move(fedges),
        std::move(fids), snap.epoch);
  } else {
    // Read path: build inline on the calling thread — a ThreadTeam of one
    // runs regions in place with zero threading overhead, and the shard
    // team stays free for solves.
    ThreadTeam local(1);
    idx = std::make_shared<query::ForestIndex>(
        local, snap.data->live.num_vertices, std::move(fedges),
        std::move(fids), snap.epoch);
  }
  snap.index = idx;
  s.index_rebuilds.fetch_add(1, std::memory_order_relaxed);
  metrics_.index_rebuilds.fetch_add(1, std::memory_order_relaxed);
  metrics_.index_rebuild_us.record(
      static_cast<std::uint64_t>(idx->stats().build_seconds * 1e6));
  return idx;
}

Response ServiceCore::do_open(const Request& req) {
  if (!valid_session_name(req.session)) {
    return make_error(Status::kInvalidInput,
                      "session names are [A-Za-z0-9_.-]{1,64}");
  }
  if (req.path.empty() && req.num_vertices == 0) {
    return make_error(Status::kInvalidInput,
                      "open needs a vertex count or a graph file");
  }
  auto session = std::make_shared<Session>();
  session->name = req.session;
  session->home = &shard_of(req.session);
  {
    // Reserve the name first so two concurrent opens cannot both build the
    // (possibly expensive) initial solve for it.
    std::lock_guard<std::mutex> lk(sessions_mu_);
    const auto [it, inserted] = sessions_.emplace(req.session, session);
    if (!inserted) {
      return make_error(
          it->second->ready.load(std::memory_order_acquire)
              ? Status::kAlreadyExists
              : Status::kInvalidInput,
          "session '" + req.session + "' already exists or is opening");
    }
  }
  const auto drop_placeholder = [&] {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    sessions_.erase(req.session);
  };
  try {
    dynamic::DynamicMsfOptions dopts;
    dopts.msf = opts_.msf;
    dopts.team = session->home->team.get();
    const auto has_suffix = [&](const char* sfx) {
      const std::size_t len = std::strlen(sfx);
      return req.path.size() > len &&
             req.path.compare(req.path.size() - len, len, sfx) == 0;
    };
    if (req.path.empty()) {
      session->msf = std::make_unique<dynamic::DynamicMsf>(req.num_vertices,
                                                           dopts);
    } else if (has_suffix(".slab")) {
      // mmap-backed preload: the store adopts the slab as its base layer, so
      // the session serves edge reads from the page cache instead of a heap
      // copy (the --preload path for billion-edge sessions).
      auto slab = std::make_shared<const dynamic::EdgeSlab>(
          dynamic::EdgeSlab::open(req.path));
      std::lock_guard<std::mutex> solver(session->home->solver_mu);
      session->msf = std::make_unique<dynamic::DynamicMsf>(
          dynamic::EdgeStore(std::move(slab)), dopts);
    } else {
      const EdgeList g = has_suffix(".smpg") ? graph::read_binary_file(req.path)
                                             : graph::read_dimacs_file(req.path);
      // The initial solve is scheduled like any other on the home shard.
      std::lock_guard<std::mutex> solver(session->home->solver_mu);
      session->msf = std::make_unique<dynamic::DynamicMsf>(g, dopts);
    }
  } catch (const Error& e) {
    drop_placeholder();
    return make_error(status_of(e), e.what());
  } catch (const std::exception& e) {
    drop_placeholder();
    return make_error(Status::kInvalidInput, e.what());
  }
  if (!opts_.data_dir.empty()) {
    const std::string dir = session_dir(req.session);
    try {
      persist::RecoveredState st;
      session->log = std::make_unique<persist::SessionLog>(dir, log_options(),
                                                           &st);
      if (st.have_snapshot || !st.tail.empty()) {
        // Unreachable after a correct recovery pass, but never overwrite
        // durable state that a fresh open did not create.
        throw Error(ErrorCode::kInvalidInput,
                    "directory '" + dir + "' already holds durable state");
      }
      // Initial snapshot at LSN 0: recovery reads the vertex count (and any
      // file-loaded edges) from it, so it must exist before open is acked.
      session->log->write_snapshot(session->msf->store(),
                                   session->msf->forest_edge_ids(), {});
    } catch (const Error& e) {
      session->log.reset();
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
      drop_placeholder();
      return make_error(status_of(e), e.what());
    }
  }
  // Epoch 0 — the initial committed state — publishes before the session is
  // visible, so a read can never find an empty ring.
  publish_snapshot_locked(*session);
  session->ready.store(true, std::memory_order_release);
  Response r;
  fill_forest_facts(r, *session->msf);
  return r;
}

Response ServiceCore::do_drop(const Request& req) {
  std::shared_ptr<Session> victim;
  {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    const auto it = sessions_.find(req.session);
    if (it == sessions_.end() ||
        !it->second->ready.load(std::memory_order_acquire)) {
      return make_error(Status::kNotFound,
                        "no session named '" + req.session + "'");
    }
    // In-flight requests hold their own shared_ptr and finish against the
    // detached session; new lookups fail from here on.
    victim = it->second;
    sessions_.erase(it);
  }
  if (victim->log != nullptr) {
    // Atomic-rename the directory out of the namespace first: a crash
    // mid-delete leaves a '<name>.dropping' husk recovery sweeps, never a
    // half-valid session.  Open fds inside keep working (writes land in
    // unlinked inodes), so a straggling flusher is harmless.
    victim->dropped.store(true, std::memory_order_release);
    const std::string dir = session_dir(req.session);
    const std::string doomed = dir + ".dropping";
    std::error_code ec;
    std::filesystem::rename(dir, doomed, ec);
    if (!ec) std::filesystem::remove_all(doomed, ec);
  }
  return Response{};
}

Response ServiceCore::do_list() {
  Response r;
  std::lock_guard<std::mutex> lk(sessions_mu_);
  for (const auto& [name, s] : sessions_) {
    if (s->ready.load(std::memory_order_acquire)) r.sessions.push_back(name);
  }
  return r;
}

Response ServiceCore::do_health(const Request& req) {
  Response r;
  std::uint64_t depth_sum = 0;
  r.shard_depths.reserve(shards_.size());
  for (const auto& shard : shards_) {
    const std::uint64_t d = shard->queue->size();
    r.shard_depths.push_back(d);
    depth_sum += d;
  }
  r.health_queue_depth = depth_sum;
  r.uptime_s = std::chrono::duration<double>(Clock::now() - started_).count();
  {
    std::lock_guard<std::mutex> lk(listeners_mu_);
    r.listeners = listeners_;
  }
  std::lock_guard<std::mutex> lk(sessions_mu_);
  std::uint64_t lsn = 0;
  std::uint64_t reclaimed = 0;
  std::size_t count = 0;
  for (const auto& [name, s] : sessions_) {
    if (!s->ready.load(std::memory_order_acquire)) continue;
    ++count;
    lsn = std::max(lsn, s->committed_lsn.load(std::memory_order_relaxed));
    reclaimed += s->reclaimed_epochs.load(std::memory_order_relaxed);
  }
  r.reclaimed_epochs = reclaimed;
  if (!req.session.empty()) {
    const auto it = sessions_.find(req.session);
    if (it == sessions_.end() ||
        !it->second->ready.load(std::memory_order_acquire)) {
      return make_error(Status::kNotFound,
                        "no session named '" + req.session + "'");
    }
    Session& s = *it->second;
    lsn = s.committed_lsn.load(std::memory_order_relaxed);
    r.epoch = s.committed_version.load(std::memory_order_acquire);
    // Per-session query-index status, read off the latest MVCC snapshot.
    r.index_status = true;
    r.index_rebuilds = s.index_rebuilds.load(std::memory_order_relaxed);
    std::shared_ptr<SessionSnapshot> snap;
    {
      std::lock_guard<std::mutex> slk(s.snap_mu);
      if (!s.snaps.empty()) snap = s.snaps.back();
    }
    std::shared_ptr<const query::ForestIndex> idx;
    if (snap != nullptr) {
      std::lock_guard<std::mutex> ilk(snap->index_mu);
      idx = snap->index;
    }
    if (idx != nullptr) {
      r.index_present = true;
      r.index_version = idx->version();
      r.index_fresh =
          idx->version() ==
          s.committed_version.load(std::memory_order_acquire);
      r.index_vertices = idx->num_vertices();
      r.index_edges = idx->num_forest_edges();
      r.index_age_s =
          std::chrono::duration<double>(Clock::now() - idx->built_at())
              .count();
      r.index_build_s = idx->stats().build_seconds;
    }
  }
  r.health_sessions = count;
  r.lsn = lsn;
  return r;
}

Response ServiceCore::do_read(Session& s, const QueuedRequest& qr) {
  Response err;
  const std::shared_ptr<SessionSnapshot> snap =
      pinned_snapshot(s, qr.req.pin_epoch, &err);
  if (snap == nullptr) return err;
  const SnapshotData& d = *snap->data;
  Response r;
  r.epoch = snap->epoch;
  switch (qr.req.op) {
    case Op::kWeight:
      fill_snapshot_facts(r, d);
      return r;
    case Op::kConnected: {
      const VertexId n = d.live.num_vertices;
      if (qr.req.u >= n || qr.req.v >= n) {
        return make_error(Status::kInvalidInput, "vertex out of range");
      }
      const auto cc = snapshot_cc(*snap);
      r.connected = cc->label[qr.req.u] == cc->label[qr.req.v];
      return r;
    }
    case Op::kForestEdges: {
      fill_snapshot_facts(r, d);
      const auto fe = snapshot_forest_edges(*snap);
      r.edges_total = fe->size();
      const std::size_t take = qr.req.limit == 0
                                   ? fe->size()
                                   : std::min(qr.req.limit, fe->size());
      r.edges.assign(fe->begin(),
                     fe->begin() + static_cast<std::ptrdiff_t>(take));
      return r;
    }
    case Op::kSnapshot:
      // The published SnapshotData is immutable and shared — handing the
      // pointer out is the whole copy.
      fill_snapshot_facts(r, d);
      r.snapshot = snap->data;
      return r;
    default:
      return make_error(Status::kInternal, "bad read dispatch");
  }
}

Response ServiceCore::do_query(Session& s, const QueuedRequest& qr) {
  s.query_active.store(true, std::memory_order_relaxed);
  const Request& req = qr.req;
  Response r;
  const std::shared_ptr<SessionSnapshot> snap =
      pinned_snapshot(s, req.pin_epoch, &r);
  if (snap == nullptr) return r;
  // Fast path: the snapshot's index is already built (eagerly at a flush
  // tail, or by an earlier query against this epoch).
  std::shared_ptr<const query::ForestIndex> idx;
  {
    std::lock_guard<std::mutex> lk(snap->index_mu);
    idx = snap->index;
  }
  if (idx != nullptr) {
    metrics_.index_hits.fetch_add(1, std::memory_order_relaxed);
  } else {
    metrics_.index_misses.fetch_add(1, std::memory_order_relaxed);
    idx = snapshot_index(s, *snap, /*eager=*/false);
  }
  r.epoch = snap->epoch;
  r.index_version = idx->version();
  const VertexId n = idx->num_vertices();
  switch (req.op) {
    case Op::kConn:
      if (req.u >= n || req.v >= n) {
        return make_error(Status::kInvalidInput, "vertex out of range");
      }
      r.connected = idx->connected(req.u, req.v);
      return r;
    case Op::kPathMax: {
      if (req.u >= n || req.v >= n) {
        return make_error(Status::kInvalidInput, "vertex out of range");
      }
      if (req.u == req.v) {
        return make_error(Status::kInvalidInput,
                          "pathmax endpoints must differ (empty path has no "
                          "bottleneck edge)");
      }
      const query::ForestIndex::PathMax pm = idx->path_max(req.u, req.v);
      r.pathmax_found = pm.connected;
      r.connected = pm.connected;
      if (pm.connected) {
        r.pathmax_id = pm.edge_id;
        r.pathmax_u = pm.u;
        r.pathmax_v = pm.v;
        r.pathmax_w = pm.weight;
      }
      return r;
    }
    case Op::kCut: {
      if (!std::isfinite(req.lambda)) {
        return make_error(Status::kInvalidInput, "lambda must be finite");
      }
      const query::ForestIndex::Cut c = idx->cut(req.lambda);
      r.clusters = c.num_clusters;
      r.cut_digest = c.labels_digest;
      return r;
    }
    case Op::kTopK: {
      // The line protocol validates these before the core; the binary
      // protocol hands requests straight through, so the core re-checks.
      if (req.limit == 0 || req.limit > kMaxTopK) {
        return make_error(Status::kInvalidInput,
                          "topk needs k in [1, " + std::to_string(kMaxTopK) +
                              "]");
      }
      std::optional<graph::Weight> lambda;
      if (req.has_lambda) {
        if (!std::isfinite(req.lambda)) {
          return make_error(Status::kInvalidInput, "lambda must be finite");
        }
        lambda = req.lambda;
      }
      const SnapshotData& d = *snap->data;
      // The scan runs over the snapshot's immutable live edges — no lock,
      // inline on this thread.
      ThreadTeam local(1);
      const std::vector<query::ForestIndex::TopkEdge> top = idx->top_k(
          local, std::span<const WEdge>(d.live.edges),
          std::span<const EdgeId>(d.live_ids), req.limit, lambda);
      r.edges.reserve(top.size());
      r.edge_ids.reserve(top.size());
      for (const auto& e : top) {
        r.edges.push_back(WEdge{e.u, e.v, e.w});
        r.edge_ids.push_back(e.id);
      }
      return r;
    }
    default:
      return make_error(Status::kInternal, "bad query dispatch");
  }
}

Response ServiceCore::do_recompute(Session& s, const QueuedRequest& qr) {
  std::unique_lock<std::shared_mutex> lk(s.state_mu);
  ExecutionBudget budget;
  const bool bounded = qr.deadline != kNoDeadline;
  if (bounded) {
    budget.set_deadline_after(
        std::chrono::duration<double>(qr.deadline - Clock::now()).count());
  }
  Response r;
  try {
    s.msf->set_budget(bounded ? &budget : nullptr);
    {
      std::lock_guard<std::mutex> solver(s.home->solver_mu);
      s.msf->recompute();
    }
    s.msf->set_budget(nullptr);
    bump_version(s);
    publish_snapshot_locked(s);
    fill_forest_facts(r, *s.msf);
    r.applied = true;
    r.epoch = s.version;
    return r;
  } catch (const Error& e) {
    // recompute() does not mutate the store, so a budget failure leaves the
    // previous (still valid) forest in place — nothing to repair.
    s.msf->set_budget(nullptr);
    return make_error(status_of(e), e.what());
  }
}

Response ServiceCore::do_compact(Session& s) {
  std::unique_lock<std::shared_mutex> lk(s.state_mu);
  const std::size_t before = s.msf->store().size();
  s.msf->compact_store();
  bump_version(s);
  const std::size_t after = s.msf->store().size();
  metrics_.compactions.fetch_add(1, std::memory_order_relaxed);
  metrics_.slots_reclaimed.fetch_add(before - after, std::memory_order_relaxed);
  // Compaction renumbers store ids, which every later WAL record names —
  // replay must reproduce the renumbering at exactly this point.
  const std::uint64_t lsn = log_compact_record(s);
  publish_snapshot_locked(s);
  Response r;
  fill_forest_facts(r, *s.msf);
  r.remapped = after;
  r.applied = true;
  r.lsn = lsn;
  r.epoch = s.version;
  lk.unlock();
  if (lsn != 0) s.log->wait_durable(lsn);
  return r;
}

void ServiceCore::maybe_compact(Session& s) {
  // Caller holds the exclusive state lock and publishes the snapshot after.
  const std::size_t slots = s.msf->store().size();
  const std::size_t live = s.msf->store().num_live();
  if (slots < opts_.compact_min_slots) return;
  if (static_cast<double>(live) >=
      opts_.compact_live_ratio * static_cast<double>(slots)) {
    return;
  }
  s.msf->compact_store();
  bump_version(s);
  metrics_.compactions.fetch_add(1, std::memory_order_relaxed);
  metrics_.slots_reclaimed.fetch_add(slots - s.msf->store().size(),
                                     std::memory_order_relaxed);
  // Logged but not awaited: auto-compaction is not separately acked, and
  // any later acked write has a higher LSN, whose fsync covers this record.
  log_compact_record(s);
}

void ServiceCore::enqueue_write(const std::shared_ptr<Session>& s,
                                QueuedRequest qr) {
  {
    std::lock_guard<std::mutex> lk(s->pending_mu);
    s->pending.push_back(std::move(qr));
    if (s->flushing) return;  // the active flusher will pick it up
    s->flushing = true;
  }
  // This thread became the session's flusher.  An optional coalescing
  // window lets a burst accumulate behind us before the first drain.
  if (opts_.coalesce_window_s > 0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(opts_.coalesce_window_s));
  }
  flush_writes(*s);
}

void ServiceCore::flush_writes(Session& s) {
  std::unique_lock<std::shared_mutex> state(s.state_mu);
  for (;;) {
    std::vector<QueuedRequest> batch;
    {
      std::lock_guard<std::mutex> lk(s.pending_mu);
      batch.swap(s.pending);
      if (batch.empty()) {
        s.flushing = false;
        return;
      }
    }

    // Merge the drained writes, in arrival order, into groups that one
    // apply_batch can serve.  A group ends early only when a later delete
    // depends on the outcome of an earlier write in the same group (it
    // targets a just-inserted pair, or the canonical live edge it resolves
    // to is already being deleted) — applying first keeps replay
    // order-exact, exactly like the CLI's trace flush.
    std::size_t i = 0;
    while (i < batch.size()) {
      std::vector<std::size_t> members;
      std::vector<WEdge> ins;
      std::vector<EdgeId> del;
      std::vector<std::string> group_idem;
      std::unordered_set<std::string> group_idem_set;
      std::unordered_set<std::uint64_t> ins_pairs;
      std::unordered_set<EdgeId> del_ids;
      auto earliest = kNoDeadline;
      const auto now = Clock::now();

      while (i < batch.size()) {
        QueuedRequest& w = batch[i];
        if (w.deadline != kNoDeadline && now >= w.deadline) {
          // Expired while waiting to be merged: dropped atomically, nothing
          // of it reaches the store.
          Response r = make_error(Status::kDeadlineExceeded,
                                  "deadline expired before apply");
          finish(w, std::move(r));
          ++i;
          continue;
        }
        if (!w.req.idem_id.empty()) {
          const auto hit = s.idem.find(w.req.idem_id);
          if (hit != s.idem.end()) {
            // A retry of a write that already committed (the ack was lost in
            // transit): answer from the idempotency window instead of
            // re-applying, echoing the original commit LSN.  The original
            // ack already waited for durability, so no wait here.
            metrics_.dedup_hits.fetch_add(1, std::memory_order_relaxed);
            Response r;
            fill_forest_facts(r, *s.msf);
            r.applied = true;
            r.coalesced = 1;
            r.dedup = true;
            r.lsn = hit->second;
            r.idem_id = w.req.idem_id;
            r.epoch = s.version;
            finish(w, std::move(r));
            ++i;
            continue;
          }
          if (group_idem_set.count(w.req.idem_id) != 0) {
            // Same id twice in one group (an eager retry caught up with the
            // original): cut the group here; once it commits and registers
            // its ids, the retry dedups on the next pass.
            metrics_.coalesce_conflicts.fetch_add(1,
                                                  std::memory_order_relaxed);
            break;
          }
        }
        if (w.req.op == Op::kInsert) {
          bool bad = false;
          for (const WEdge& e : w.req.insertions) {
            try {
              s.msf->store().validate_edge(e.u, e.v, e.w);
            } catch (const Error& err) {
              finish(w, make_error(Status::kInvalidInput, err.what()));
              bad = true;
              break;
            }
          }
          if (!bad) {
            members.push_back(i);
            for (const WEdge& e : w.req.insertions) {
              ins.push_back(e);
              ins_pairs.insert(pair_key(e.u, e.v));
            }
            if (!w.req.idem_id.empty()) {
              group_idem.push_back(w.req.idem_id);
              group_idem_set.insert(w.req.idem_id);
            }
            if (w.deadline < earliest) earliest = w.deadline;
          }
          ++i;
          continue;
        }
        // Op::kDelete: resolve endpoint pairs to canonical live store ids.
        std::vector<EdgeId> resolved;
        bool conflict = false;
        std::string bad;
        const VertexId n = s.msf->store().num_vertices();
        for (const auto& [u, v] : w.req.deletions) {
          if (u >= n || v >= n || u == v) {
            bad = "delete endpoint out of range";
            break;
          }
          if (ins_pairs.count(pair_key(u, v)) != 0) {
            conflict = true;  // may target an edge this group inserts
            break;
          }
          const auto id = s.msf->store().find_live(u, v);
          if (!id) {
            bad = "no live edge (" + std::to_string(u + 1) + "," +
                  std::to_string(v + 1) + ")";
            break;
          }
          if (del_ids.count(*id) != 0) {
            conflict = true;  // canonical edge already deleted by the group
            break;
          }
          if (std::find(resolved.begin(), resolved.end(), *id) !=
              resolved.end()) {
            bad = "duplicate delete of the same canonical edge in one request";
            break;
          }
          resolved.push_back(*id);
        }
        if (conflict) {
          // Leave w for the next group; the current group applies first.
          metrics_.coalesce_conflicts.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        if (!bad.empty()) {
          finish(w, make_error(Status::kInvalidInput, bad));
          ++i;
          continue;
        }
        members.push_back(i);
        for (const EdgeId id : resolved) {
          del.push_back(id);
          del_ids.insert(id);
        }
        if (!w.req.idem_id.empty()) {
          group_idem.push_back(w.req.idem_id);
          group_idem_set.insert(w.req.idem_id);
        }
        if (w.deadline < earliest) earliest = w.deadline;
        ++i;
      }

      if (members.empty()) continue;

      // One apply_batch for the whole group — this is the coalescing the
      // serving layer is about: burst traffic pays one sparsified solve.
      ExecutionBudget budget;
      const bool bounded = earliest != kNoDeadline;
      if (bounded) {
        budget.set_deadline_after(
            std::chrono::duration<double>(earliest - Clock::now()).count());
      }
      try {
        s.msf->set_budget(bounded ? &budget : nullptr);
        {
          std::lock_guard<std::mutex> solver(s.home->solver_mu);
          s.msf->apply_batch(ins, del);
        }
        s.msf->set_budget(nullptr);
        bump_version(s);
        metrics_.apply_batches.fetch_add(1, std::memory_order_relaxed);
        metrics_.coalesced_writes.fetch_add(members.size(),
                                            std::memory_order_relaxed);
        metrics_.coalesce_size.record(members.size());
        // Commit: one WAL record for the whole group, appended under the
        // same exclusive lock as the mutation so log order == store order.
        const std::uint64_t lsn = log_applied_group(
            s, std::move(ins), std::move(del), std::move(group_idem));
        // Compact before the snapshot publishes so a reader that sees the
        // write response also sees the post-compaction store.
        maybe_compact(s);
        // Publish the committed state as the newest MVCC epoch — from here
        // on reads serve this (or a pinned older) snapshot.
        publish_snapshot_locked(s);
        // Query-active sessions get the new epoch's ForestIndex built
        // eagerly on the shard team while we still hold the exclusive lock
        // — but only when no further writes are pending, so a coalesced
        // burst pays one build at its tail, not one per group.
        if (opts_.query_index_eager &&
            s.query_active.load(std::memory_order_relaxed)) {
          bool more;
          {
            std::lock_guard<std::mutex> lk(s.pending_mu);
            more = !s.pending.empty();
          }
          if (!more && i >= batch.size()) {
            std::shared_ptr<SessionSnapshot> snap;
            {
              std::lock_guard<std::mutex> lk(s.snap_mu);
              snap = s.snaps.back();
            }
            snapshot_index(s, *snap, /*eager=*/true);
          }
        }
        Response base;
        fill_forest_facts(base, *s.msf);
        base.applied = true;
        base.coalesced = members.size();
        base.lsn = lsn;
        base.epoch = s.version;
        if (s.log != nullptr && s.log->snapshot_due()) {
          snapshot_session_locked(s);
        }
        // Acks only after the commit LSN is durable.  Only the wait runs
        // unlocked — reads proceed, the pending list refills behind us, and
        // no other flusher can exist while s.flushing is set.
        state.unlock();
        if (lsn != 0) s.log->wait_durable(lsn);
        for (const std::size_t idx : members) {
          Response r(base);
          r.idem_id = batch[idx].req.idem_id;
          finish(batch[idx], std::move(r));
        }
        state.lock();
      } catch (const Error& e) {
        s.msf->set_budget(nullptr);
        const Status st = status_of(e);
        if (st == Status::kInvalidInput) {
          // apply_batch validates before mutating, so nothing was applied.
          for (const std::size_t idx : members) {
            finish(batch[idx], make_error(st, e.what()));
          }
        } else {
          // Mid-solve failure (deadline/cancel/OOM): the store mutations
          // are in, the forest is stale.  The mutation still happened, so
          // it is logged like a success (replay must reproduce the store);
          // then repair with an unbudgeted recompute so later requests see
          // a correct forest — the failed deadline must not poison the
          // session.
          const std::uint64_t lsn = log_applied_group(
              s, std::move(ins), std::move(del), std::move(group_idem));
          repair_after_failed_apply(s);
          maybe_compact(s);
          publish_snapshot_locked(s);
          Response r = make_error(st, e.what());
          r.applied = true;
          r.coalesced = members.size();
          r.lsn = lsn;
          state.unlock();
          if (lsn != 0) s.log->wait_durable(lsn);
          for (const std::size_t idx : members) {
            Response resp(r);
            resp.idem_id = batch[idx].req.idem_id;
            finish(batch[idx], std::move(resp));
          }
          state.lock();
        }
      } catch (const std::exception& e) {
        s.msf->set_budget(nullptr);
        const std::uint64_t lsn = log_applied_group(
            s, std::move(ins), std::move(del), std::move(group_idem));
        repair_after_failed_apply(s);
        maybe_compact(s);
        publish_snapshot_locked(s);
        Response r = make_error(Status::kInternal, e.what());
        r.applied = true;
        r.lsn = lsn;
        state.unlock();
        if (lsn != 0) s.log->wait_durable(lsn);
        for (const std::size_t idx : members) {
          Response resp(r);
          resp.idem_id = batch[idx].req.idem_id;
          finish(batch[idx], std::move(resp));
        }
        state.lock();
      }
    }
  }
}

persist::SessionLogOptions ServiceCore::log_options() {
  persist::SessionLogOptions lo;
  lo.fsync = opts_.fsync;
  lo.fsync_interval_s = opts_.fsync_interval_s;
  lo.snapshot_wal_bytes = opts_.snapshot_wal_bytes;
  lo.snapshot_every_records = opts_.snapshot_every_records;
  lo.snapshot_retain = opts_.snapshot_retain;
  lo.counters = &metrics_.persist;
  return lo;
}

std::string ServiceCore::session_dir(const std::string& name) const {
  return opts_.data_dir + "/" + name;
}

void ServiceCore::recover_sessions() {
  namespace fs = std::filesystem;
  fs::create_directories(opts_.data_dir);
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(opts_.data_dir)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() >= 9 &&
        name.compare(name.size() - 9, 9, ".dropping") == 0) {
      // A drop that died between rename and remove: finish it.
      std::error_code ec;
      fs::remove_all(entry.path(), ec);
      recovery_notes_.push_back("removed interrupted drop '" + name + "'");
      continue;
    }
    if (!valid_session_name(name)) {
      recovery_notes_.push_back("ignoring non-session entry '" + name + "'");
      continue;
    }
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());

  for (const std::string& name : names) {
    persist::RecoveredState st;
    std::unique_ptr<persist::SessionLog> log;
    try {
      log = std::make_unique<persist::SessionLog>(session_dir(name),
                                                  log_options(), &st);
    } catch (const Error& e) {
      throw Error(e.code(), "recovering session '" + name + "': " + e.what());
    }
    if (!st.have_snapshot) {
      // open() crashed before the initial snapshot: the open was never
      // acknowledged, so the session does not exist.  Remove the husk.
      log.reset();
      std::error_code ec;
      fs::remove_all(session_dir(name), ec);
      recovery_notes_.push_back("removed half-opened session '" + name + "'");
      continue;
    }
    for (const std::string& w : st.warnings) {
      recovery_notes_.push_back("session '" + name + "': " + w);
    }

    auto session = std::make_shared<Session>();
    session->name = name;
    session->home = &shard_of(name);
    dynamic::DynamicMsfOptions dopts;
    dopts.msf = opts_.msf;
    dopts.team = session->home->team.get();
    const std::size_t tail_records = st.tail.size();
    try {
      session->msf = std::make_unique<dynamic::DynamicMsf>(
          std::move(st.store), std::move(st.forest), dopts);
      for (auto& [id, lsn] : st.idem) {
        register_idem(*session, std::move(id), lsn);
      }
      session->log = std::move(log);
      if (!st.tail.empty()) replay_tail(*session, std::move(st.tail));
    } catch (const Error& e) {
      throw Error(e.code(), "recovering session '" + name + "': " + e.what());
    }
    session->committed_lsn.store(session->log->last_lsn(),
                                 std::memory_order_relaxed);
    // One snapshot for the recovered state: replay published nothing (a
    // live-graph copy per replay group would be pure waste), so the final
    // state becomes the ring's first epoch here.
    publish_snapshot_locked(*session);
    session->ready.store(true, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lk(sessions_mu_);
      sessions_.emplace(name, std::move(session));
    }
    metrics_.recoveries.fetch_add(1, std::memory_order_relaxed);
    metrics_.replayed_records.fetch_add(tail_records,
                                        std::memory_order_relaxed);
    std::string note = "recovered session '" + name + "': snapshot lsn " +
                       std::to_string(st.snapshot_lsn);
    note += st.clean ? ", clean shutdown"
                     : ", replayed " + std::to_string(tail_records) +
                           " WAL records";
    if (st.torn_tail_truncated) note += ", torn tail truncated";
    recovery_notes_.push_back(std::move(note));
  }
}

void ServiceCore::replay_tail(Session& s,
                              std::vector<persist::WalRecord> tail) {
  // Replay reuses the live path's coalescing: consecutive batch records
  // merge into one apply_batch (one sparsified solve) until a record's
  // deletion targets an id this group inserts, repeats a deletion, or a
  // compact record intervenes — the same dependency cuts the flusher makes,
  // so a 10^6-record tail costs a handful of solves, not 10^6.
  std::size_t i = 0;
  while (i < tail.size()) {
    if (tail[i].compact) {
      s.msf->compact_store();
      bump_version(s);
      ++i;
      continue;
    }
    std::vector<WEdge> ins;
    std::vector<EdgeId> del;
    std::unordered_set<EdgeId> del_ids;
    const EdgeId group_base = s.msf->store().size();
    std::size_t j = i;
    while (j < tail.size() && !tail[j].compact) {
      bool cut = false;
      for (const EdgeId id : tail[j].deletions) {
        if (id >= group_base || del_ids.count(id) != 0) {
          cut = true;
          break;
        }
      }
      // j == i cannot legitimately cut (a record's deletions always name
      // pre-record ids); if a malformed log does, the record goes through
      // alone and apply_batch rejects it with a clear diagnostic.
      if (cut && j > i) break;
      ins.insert(ins.end(), tail[j].insertions.begin(),
                 tail[j].insertions.end());
      for (const EdgeId id : tail[j].deletions) {
        del.push_back(id);
        del_ids.insert(id);
      }
      for (std::string& id : tail[j].idem_ids) {
        register_idem(s, std::move(id), tail[j].lsn);
      }
      ++j;
    }
    {
      std::lock_guard<std::mutex> solver(s.home->solver_mu);
      s.msf->apply_batch(ins, del);
    }
    bump_version(s);
    i = j;
  }
}

std::uint64_t ServiceCore::log_applied_group(
    Session& s, std::vector<WEdge> insertions, std::vector<EdgeId> deletions,
    std::vector<std::string> idem_ids) {
  std::uint64_t lsn = 0;
  if (s.log != nullptr && !s.log_broken &&
      !s.dropped.load(std::memory_order_acquire)) {
    persist::WalRecord rec;
    rec.insertions = std::move(insertions);
    rec.deletions = std::move(deletions);
    rec.idem_ids = idem_ids;
    try {
      lsn = s.log->append(std::move(rec));
      s.committed_lsn.store(lsn, std::memory_order_relaxed);
    } catch (...) {
      // The mutation is applied in memory but could not be logged.  Any
      // later append would leave a gap replay refuses to cross, so logging
      // stops for this session: served state stays correct, durability
      // degrades to the last good record, and responses carry lsn 0.
      s.log_broken = true;
      lsn = 0;
    }
  }
  // Registered even without a log (persistence off, or just broken): the
  // mutation IS applied, so a client retry must dedup either way.
  for (std::string& id : idem_ids) register_idem(s, std::move(id), lsn);
  return lsn;
}

std::uint64_t ServiceCore::log_compact_record(Session& s) {
  if (s.log == nullptr || s.log_broken ||
      s.dropped.load(std::memory_order_acquire)) {
    return 0;
  }
  persist::WalRecord rec;
  rec.compact = true;
  std::uint64_t lsn = 0;
  try {
    lsn = s.log->append(std::move(rec));
  } catch (...) {
    s.log_broken = true;
    return 0;
  }
  s.committed_lsn.store(lsn, std::memory_order_relaxed);
  return lsn;
}

void ServiceCore::snapshot_session_locked(Session& s) {
  if (s.log == nullptr || s.log_broken ||
      s.dropped.load(std::memory_order_acquire)) {
    return;
  }
  try {
    s.log->write_snapshot(s.msf->store(), s.msf->forest_edge_ids(),
                          idem_window(s));
  } catch (...) {
    // Not fatal: the WAL still covers everything; the next due snapshot
    // retries.
  }
}

void ServiceCore::repair_after_failed_apply(Session& s) {
  metrics_.solver_repairs.fetch_add(1, std::memory_order_relaxed);
  try {
    std::lock_guard<std::mutex> solver(s.home->solver_mu);
    s.msf->recompute();
    bump_version(s);
  } catch (...) {
    // Repair itself failed (true OOM): the forest stays stale.  The next
    // successful apply/recompute will fix it; readers meanwhile see the
    // pre-batch forest, which is the documented DynamicMsf failure surface.
  }
}

}  // namespace smp::serve
