#pragma once

// Binary wire protocol for the TCP transport.
//
// Stream layout: a sequence of frames, each
//
//     u32  payload_len   (little-endian, <= kMaxFrame)
//     u32  crc32c        (CRC32C of the payload bytes)
//     u8[] payload
//
// A payload starts with a kind byte: kMessage (one message) or kBatch
// (`u32 count` then `count` length-prefixed messages).  Every message is
//
//     u64 id    request id, echoed verbatim in the response; responses may
//               arrive out of order, the id is the correlation key
//     u8  ver   protocol version (kProtoVersion)
//     u8  op    serve::Op as a byte, or kOpQuit / kOpShutdown
//     ...       fixed field layout (request or response direction)
//
// All integers are little-endian; strings and arrays are u32 length-prefixed.
// Malformed input is a protocol error, never UB: a CRC mismatch or a parse
// failure inside a well-delimited frame is recoverable (the connection
// survives and an error response is sent); only an oversized length prefix —
// where resynchronisation is impossible — closes the connection, and even
// then after an error response.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "serve/request.hpp"

namespace smp::net {

/// Hard cap on a frame payload.  Large enough for a 100k-row topk response,
/// small enough that a corrupt length prefix cannot balloon memory.
inline constexpr std::uint32_t kMaxFrame = 16u << 20;

inline constexpr std::uint8_t kProtoVersion = 1;

/// Payload kind byte.
inline constexpr std::uint8_t kKindMessage = 1;
inline constexpr std::uint8_t kKindBatch = 2;

/// Control op bytes (outside the serve::Op range).
inline constexpr std::uint8_t kOpQuit = 254;
inline constexpr std::uint8_t kOpShutdown = 255;

/// One decoded request-direction message.
struct BinRequest {
  std::uint64_t id = 0;
  serve::Request req;
  bool quit = false;
  bool shutdown = false;
};

/// One decoded response-direction message.
struct BinResponse {
  std::uint64_t id = 0;
  serve::Op op = serve::Op::kPing;
  serve::Response resp;
};

// -- Encoding ---------------------------------------------------------------

/// Serialize one request-direction message body (id/ver/op + fields).
void encode_request(std::string& out, const BinRequest& r);

/// Serialize one response-direction message body.
void encode_response(std::string& out, const BinResponse& r);

/// Wrap one already-encoded message body in a kMessage frame.
void frame_message(std::string& out, std::string_view msg);

/// Wrap several already-encoded message bodies in one kBatch frame.
void frame_batch(std::string& out, const std::vector<std::string>& msgs);

/// Convenience: encode + frame a single response.
void encode_response_frame(std::string& out, const BinResponse& r);

// -- Decoding ---------------------------------------------------------------

enum class DecodeStatus {
  kNeedMore,  ///< not enough buffered bytes for a whole frame
  kOk,        ///< one frame extracted
  kBadFrame,  ///< frame delimited but corrupt (CRC); consumed, recoverable
  kFatal,     ///< length prefix unusable; connection must close
};

/// Try to extract one frame payload from `buf` starting at `off`.  On kOk and
/// kBadFrame, `off` advances past the frame.  `payload` views into `buf` and
/// is only valid until the buffer mutates.
DecodeStatus try_read_frame(std::string_view buf, std::size_t& off,
                            std::string_view& payload, std::string& error);

/// Decode a frame payload (kMessage or kBatch) into request messages.
/// Returns false on a malformed payload; `out` holds any messages decoded
/// before the error and `error` says what went wrong.
bool decode_request_payload(std::string_view payload,
                            std::vector<BinRequest>& out, std::string& error);

/// Decode a frame payload into response messages.
bool decode_response_payload(std::string_view payload,
                             std::vector<BinResponse>& out, std::string& error);

}  // namespace smp::net
