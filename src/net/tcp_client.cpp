#include "net/tcp_client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "core/error.hpp"

namespace smp::net {

TcpClient::TcpClient(const std::string& host, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw Error(ErrorCode::kInvalidInput, "tcp client: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const char* h = host.empty() || host == "localhost" ? "127.0.0.1" : host.c_str();
  if (::inet_pton(AF_INET, h, &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw Error(ErrorCode::kInvalidInput,
                "tcp client: cannot resolve host '" + host + "'");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw Error(ErrorCode::kInvalidInput,
                "tcp client: cannot connect to " + host + ":" +
                    std::to_string(port) + ": " + std::strerror(err));
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

TcpClient::~TcpClient() {
  // Best effort: anything still queued belongs on the wire (a caller may
  // have pipelined fire-and-forget writes and dropped the client).
  try {
    flush_pending();
  } catch (...) {
  }
  if (fd_ >= 0) ::close(fd_);
}

namespace {
/// Flush once the queue holds this much — bounds client memory while still
/// letting request bursts coalesce.
constexpr std::size_t kFlushThresholdBytes = std::size_t{256} << 10;
/// iovecs per sendmsg gather (well under any platform IOV_MAX).
constexpr std::size_t kMaxIov = 64;
}  // namespace

void TcpClient::queue_frame(std::string frame) {
  pending_bytes_ += frame.size();
  pending_.push_back(std::move(frame));
  if (pending_bytes_ >= kFlushThresholdBytes) flush_pending();
}

void TcpClient::flush_pending() {
  while (!pending_.empty()) {
    iovec iov[kMaxIov];
    std::size_t cnt = 0;
    for (std::size_t i = 0; i < pending_.size() && cnt < kMaxIov; ++i) {
      const std::string& s = pending_[i];
      const std::size_t off = i == 0 ? pending_off_ : 0;
      iov[cnt].iov_base = const_cast<char*>(s.data() + off);
      iov[cnt].iov_len = s.size() - off;
      ++cnt;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = cnt;
    const ssize_t n = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(ErrorCode::kInvalidInput,
                  "tcp client: connection lost on send");
    }
    // Retire fully-written frames; a partial write leaves pending_off_
    // pointing at the resume byte of the (new) front frame.
    std::size_t left = static_cast<std::size_t>(n);
    pending_bytes_ -= left;
    while (left > 0) {
      const std::size_t avail = pending_.front().size() - pending_off_;
      if (left < avail) {
        pending_off_ += left;
        break;
      }
      left -= avail;
      pending_.pop_front();
      pending_off_ = 0;
    }
  }
}

std::uint64_t TcpClient::send(const serve::Request& req) {
  BinRequest br;
  br.id = next_id_++;
  br.req = req;
  std::string msg;
  encode_request(msg, br);
  std::string frame;
  frame_message(frame, msg);
  queue_frame(std::move(frame));
  return br.id;
}

std::vector<std::uint64_t> TcpClient::send_batch(
    const std::vector<serve::Request>& reqs) {
  std::vector<std::uint64_t> ids;
  ids.reserve(reqs.size());
  std::vector<std::string> msgs;
  msgs.reserve(reqs.size());
  for (const serve::Request& req : reqs) {
    BinRequest br;
    br.id = next_id_++;
    br.req = req;
    ids.push_back(br.id);
    std::string msg;
    encode_request(msg, br);
    msgs.push_back(std::move(msg));
  }
  std::string frame;
  frame_batch(frame, msgs);
  queue_frame(std::move(frame));
  return ids;
}

BinResponse TcpClient::recv() {
  flush_pending();  // the server cannot answer requests it has not seen
  for (;;) {
    if (!ready_.empty()) {
      BinResponse r = std::move(ready_.front());
      ready_.pop_front();
      return r;
    }
    // Decode everything already buffered before reading more.
    std::string_view payload;
    std::string err;
    const DecodeStatus st = try_read_frame(acc_, acc_off_, payload, err);
    if (st == DecodeStatus::kOk) {
      std::vector<BinResponse> out;
      if (!decode_response_payload(payload, out, err))
        throw Error(ErrorCode::kInvalidInput,
                    "tcp client: malformed response: " + err);
      for (BinResponse& r : out) ready_.push_back(std::move(r));
      continue;
    }
    if (st != DecodeStatus::kNeedMore)
      throw Error(ErrorCode::kInvalidInput,
                  "tcp client: corrupt response stream: " + err);
    if (acc_off_ == acc_.size()) {
      acc_.clear();
      acc_off_ = 0;
    } else if (acc_off_ > 65536) {
      acc_.erase(0, acc_off_);
      acc_off_ = 0;
    }
    char buf[65536];
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n > 0) {
      acc_.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw Error(ErrorCode::kInvalidInput,
                "tcp client: server hung up mid-response");
  }
}

serve::Response TcpClient::call(const serve::Request& req) {
  const std::uint64_t id = send(req);
  for (;;) {
    BinResponse r = recv();
    if (r.id == id) return std::move(r.resp);
    // A stray response from an earlier pipelined send: keep draining.
  }
}

void TcpClient::control(std::uint8_t op) {
  BinRequest br;
  br.id = next_id_++;
  br.quit = op == kOpQuit;
  br.shutdown = op == kOpShutdown;
  std::string msg;
  encode_request(msg, br);
  std::string frame;
  frame_message(frame, msg);
  queue_frame(std::move(frame));
  const std::uint64_t id = br.id;
  for (;;) {
    BinResponse r = recv();
    if (r.id == id) return;
  }
}

void TcpClient::quit() { control(kOpQuit); }

void TcpClient::shutdown() { control(kOpShutdown); }

}  // namespace smp::net
