#pragma once

// TCP binary-protocol server: an event-loop transport in front of
// serve::ServiceCore, serving the length-prefixed CRC-framed protocol of
// net/frame.hpp.
//
// Architecture: a small pool of I/O threads, each running its own poller
// (epoll on Linux, poll(2) elsewhere) over a disjoint set of connections.
// Thread 0 additionally owns the listening socket and hands accepted
// connections out round-robin.  Frames are decoded on the owning I/O thread;
// each decoded request is submitted to the ServiceCore, which executes
// cheap snapshot reads inline on the I/O thread (the priority lane) and
// queues writes to the session's shard.  Responses carry the request id and
// are written back in completion order — out-of-order relative to the
// requests, which is what lets one connection pipeline reads past a
// coalescing write.
//
// Malformed input is answered, not punished: a CRC-corrupt frame or an
// undecodable message produces an error response (correlation id 0 when the
// id could not be parsed) and the connection stays up.  Only an oversized
// length prefix — after which the stream cannot be resynchronised — closes
// the connection, and even then after an error response is flushed.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace smp::serve {
class ServiceCore;
}

namespace smp::net {

struct TcpServerOptions {
  /// Port to bind (loopback + any).  0 picks an ephemeral port; read it
  /// back with port() after start().
  std::uint16_t port = 0;
  /// I/O event-loop threads.  Values < 1 are clamped to 1.
  int io_threads = 2;
  int listen_backlog = 128;
  /// A connection whose unsent response backlog exceeds this is dropped:
  /// the peer has stopped reading and buffering further is unbounded risk.
  std::size_t max_outbound_bytes = 64u << 20;
};

class TcpServer {
 public:
  TcpServer(serve::ServiceCore& core, TcpServerOptions opts);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens, and spawns the I/O threads.  Throws Error{kInvalidInput}
  /// when the port cannot be bound.
  void start();

  /// The bound port (after start()); useful with opts.port == 0.
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Blocks until a client sends the shutdown control message or stop() is
  /// called from another thread.
  void wait();

  /// Stops accepting, closes all connections, joins the I/O threads.
  /// Idempotent.
  void stop();

 private:
  struct IoThread;
  struct Conn;

  void io_loop(IoThread& io, bool is_listener);
  void accept_ready(IoThread& io);
  void handle_readable(IoThread& io, const std::shared_ptr<Conn>& conn);
  void process_input(IoThread& io, const std::shared_ptr<Conn>& conn);
  void dispatch_message(const std::shared_ptr<Conn>& conn,
                        struct BinRequest&& msg);
  void flush(IoThread& io, const std::shared_ptr<Conn>& conn);
  void close_conn(IoThread& io, const std::shared_ptr<Conn>& conn);
  void notify_stop_wait();

  serve::ServiceCore& core_;
  TcpServerOptions opts_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::vector<std::shared_ptr<IoThread>> threads_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> next_client_{0};
  std::atomic<std::size_t> next_io_{0};

  std::mutex wait_mu_;
  std::condition_variable wait_cv_;
  bool wait_done_ = false;

  std::mutex stop_mu_;
  bool stopped_ = false;
  bool started_ = false;
};

}  // namespace smp::net
