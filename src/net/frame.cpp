#include "net/frame.hpp"

#include <cstring>

#include "persist/crc32c.hpp"

namespace smp::net {
namespace {

// -- Little-endian writer ---------------------------------------------------

void put_u8(std::string& out, std::uint8_t x) {
  out.push_back(static_cast<char>(x));
}

void put_u32(std::string& out, std::uint32_t x) {
  char b[4];
  b[0] = static_cast<char>(x & 0xff);
  b[1] = static_cast<char>((x >> 8) & 0xff);
  b[2] = static_cast<char>((x >> 16) & 0xff);
  b[3] = static_cast<char>((x >> 24) & 0xff);
  out.append(b, 4);
}

void put_u64(std::string& out, std::uint64_t x) {
  put_u32(out, static_cast<std::uint32_t>(x & 0xffffffffu));
  put_u32(out, static_cast<std::uint32_t>(x >> 32));
}

void put_f64(std::string& out, double x) {
  std::uint64_t bits;
  std::memcpy(&bits, &x, sizeof bits);
  put_u64(out, bits);
}

void put_str(std::string& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s.data(), s.size());
}

// -- Bounds-checked little-endian reader ------------------------------------

struct Reader {
  const unsigned char* p;
  std::size_t n;
  std::size_t off = 0;
  bool ok = true;

  explicit Reader(std::string_view s)
      : p(reinterpret_cast<const unsigned char*>(s.data())), n(s.size()) {}

  bool need(std::size_t k) {
    if (!ok || n - off < k) {
      ok = false;
      return false;
    }
    return true;
  }

  std::uint8_t u8() {
    if (!need(1)) return 0;
    return p[off++];
  }

  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t x = static_cast<std::uint32_t>(p[off]) |
                      (static_cast<std::uint32_t>(p[off + 1]) << 8) |
                      (static_cast<std::uint32_t>(p[off + 2]) << 16) |
                      (static_cast<std::uint32_t>(p[off + 3]) << 24);
    off += 4;
    return x;
  }

  std::uint64_t u64() {
    std::uint64_t lo = u32();
    std::uint64_t hi = u32();
    return lo | (hi << 32);
  }

  double f64() {
    std::uint64_t bits = u64();
    double x = 0;
    std::memcpy(&x, &bits, sizeof x);
    return x;
  }

  std::string str() {
    std::uint32_t len = u32();
    if (!need(len)) return {};
    std::string s(reinterpret_cast<const char*>(p + off), len);
    off += len;
    return s;
  }

  std::string_view view(std::size_t len) {
    if (!need(len)) return {};
    std::string_view s(reinterpret_cast<const char*>(p + off), len);
    off += len;
    return s;
  }
};

// Array counts inside a message are still bounded by the frame size, but a
// corrupt count could otherwise trigger a huge reserve before the per-element
// reads fail.  Any count larger than the remaining bytes is malformed.
bool plausible_count(const Reader& r, std::uint64_t count,
                     std::size_t min_elem_bytes) {
  return count * min_elem_bytes <= r.n - r.off;
}

bool decode_request_msg(std::string_view msg, BinRequest& out,
                        std::string& error) {
  Reader r(msg);
  out.id = r.u64();
  const std::uint8_t ver = r.u8();
  const std::uint8_t op = r.u8();
  if (!r.ok) {
    error = "truncated message header";
    return false;
  }
  if (ver != kProtoVersion) {
    error = "unsupported protocol version " + std::to_string(ver);
    return false;
  }
  if (op == kOpQuit) {
    out.quit = true;
    return true;
  }
  if (op == kOpShutdown) {
    out.shutdown = true;
    return true;
  }
  if (op >= serve::kNumOps) {
    error = "unknown op byte " + std::to_string(op);
    return false;
  }
  serve::Request& q = out.req;
  q.op = static_cast<serve::Op>(op);
  q.session = r.str();
  q.num_vertices = r.u32();
  q.path = r.str();
  q.u = r.u32();
  q.v = r.u32();
  const std::uint32_t n_ins = r.u32();
  if (!r.ok || !plausible_count(r, n_ins, 16)) {
    error = "bad insertion count";
    return false;
  }
  q.insertions.reserve(n_ins);
  for (std::uint32_t i = 0; i < n_ins && r.ok; ++i) {
    graph::WEdge e;
    e.u = r.u32();
    e.v = r.u32();
    e.w = r.f64();
    q.insertions.push_back(e);
  }
  const std::uint32_t n_del = r.u32();
  if (!r.ok || !plausible_count(r, n_del, 8)) {
    error = "bad deletion count";
    return false;
  }
  q.deletions.reserve(n_del);
  for (std::uint32_t i = 0; i < n_del && r.ok; ++i) {
    graph::VertexId u = r.u32();
    graph::VertexId v = r.u32();
    q.deletions.emplace_back(u, v);
  }
  q.limit = r.u64();
  q.lambda = r.f64();
  q.has_lambda = r.u8() != 0;
  q.deadline_s = r.f64();
  q.idem_id = r.str();
  q.pin_epoch = r.u64();
  if (!r.ok) {
    error = "truncated request body";
    return false;
  }
  return true;
}

bool decode_response_msg(std::string_view msg, BinResponse& out,
                         std::string& error) {
  Reader r(msg);
  out.id = r.u64();
  const std::uint8_t ver = r.u8();
  const std::uint8_t op = r.u8();
  if (!r.ok) {
    error = "truncated message header";
    return false;
  }
  if (ver != kProtoVersion) {
    error = "unsupported protocol version " + std::to_string(ver);
    return false;
  }
  if (op >= serve::kNumOps) {
    error = "unknown op byte " + std::to_string(op);
    return false;
  }
  out.op = static_cast<serve::Op>(op);
  serve::Response& p = out.resp;
  const std::uint8_t status = r.u8();
  if (status > static_cast<std::uint8_t>(serve::Status::kRateLimited)) {
    error = "unknown status byte " + std::to_string(status);
    return false;
  }
  p.status = static_cast<serve::Status>(status);
  p.detail = r.str();
  p.weight = r.f64();
  p.trees = r.u64();
  p.forest_edges = r.u64();
  p.live_edges = r.u64();
  p.connected = r.u8() != 0;
  p.applied = r.u8() != 0;
  p.dedup = r.u8() != 0;
  p.pathmax_found = r.u8() != 0;
  p.coalesced = r.u64();
  p.remapped = r.u64();
  p.edges_total = r.u64();
  const std::uint32_t n_edges = r.u32();
  if (!r.ok || !plausible_count(r, n_edges, 16)) {
    error = "bad edge count";
    return false;
  }
  p.edges.reserve(n_edges);
  for (std::uint32_t i = 0; i < n_edges && r.ok; ++i) {
    graph::WEdge e;
    e.u = r.u32();
    e.v = r.u32();
    e.w = r.f64();
    p.edges.push_back(e);
  }
  const std::uint32_t n_ids = r.u32();
  if (!r.ok || !plausible_count(r, n_ids, 8)) {
    error = "bad edge-id count";
    return false;
  }
  p.edge_ids.reserve(n_ids);
  for (std::uint32_t i = 0; i < n_ids && r.ok; ++i) p.edge_ids.push_back(r.u64());
  const std::uint32_t n_sessions = r.u32();
  if (!r.ok || !plausible_count(r, n_sessions, 4)) {
    error = "bad session count";
    return false;
  }
  p.sessions.reserve(n_sessions);
  for (std::uint32_t i = 0; i < n_sessions && r.ok; ++i)
    p.sessions.push_back(r.str());
  p.stats_json = r.str();
  p.lsn = r.u64();
  p.idem_id = r.str();
  p.health_queue_depth = r.u64();
  p.health_sessions = r.u64();
  p.uptime_s = r.f64();
  const std::uint32_t n_shards = r.u32();
  if (!r.ok || !plausible_count(r, n_shards, 8)) {
    error = "bad shard count";
    return false;
  }
  p.shard_depths.reserve(n_shards);
  for (std::uint32_t i = 0; i < n_shards && r.ok; ++i)
    p.shard_depths.push_back(r.u64());
  p.reclaimed_epochs = r.u64();
  const std::uint32_t n_listeners = r.u32();
  if (!r.ok || !plausible_count(r, n_listeners, 4)) {
    error = "bad listener count";
    return false;
  }
  p.listeners.reserve(n_listeners);
  for (std::uint32_t i = 0; i < n_listeners && r.ok; ++i)
    p.listeners.push_back(r.str());
  p.epoch = r.u64();
  p.index_version = r.u64();
  p.pathmax_id = r.u64();
  p.pathmax_u = r.u32();
  p.pathmax_v = r.u32();
  p.pathmax_w = r.f64();
  p.clusters = r.u64();
  p.cut_digest = r.u64();
  p.index_status = r.u8() != 0;
  p.index_present = r.u8() != 0;
  p.index_fresh = r.u8() != 0;
  p.index_vertices = r.u64();
  p.index_edges = r.u64();
  p.index_age_s = r.f64();
  p.index_build_s = r.f64();
  p.index_rebuilds = r.u64();
  if (!r.ok) {
    error = "truncated response body";
    return false;
  }
  return true;
}

template <typename Msg>
bool decode_payload(std::string_view payload, std::vector<Msg>& out,
                    std::string& error,
                    bool (*decode_one)(std::string_view, Msg&, std::string&)) {
  Reader r(payload);
  const std::uint8_t kind = r.u8();
  if (!r.ok) {
    error = "empty payload";
    return false;
  }
  if (kind == kKindMessage) {
    Msg m;
    if (!decode_one(payload.substr(1), m, error)) return false;
    out.push_back(std::move(m));
    return true;
  }
  if (kind != kKindBatch) {
    error = "unknown payload kind " + std::to_string(kind);
    return false;
  }
  const std::uint32_t count = r.u32();
  if (!r.ok || !plausible_count(r, count, 10)) {
    error = "bad batch count";
    return false;
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t len = r.u32();
    std::string_view msg = r.view(len);
    if (!r.ok) {
      error = "truncated batch member " + std::to_string(i);
      return false;
    }
    Msg m;
    if (!decode_one(msg, m, error)) return false;
    out.push_back(std::move(m));
  }
  if (r.off != r.n) {
    error = "trailing bytes after batch";
    return false;
  }
  return true;
}

}  // namespace

void encode_request(std::string& out, const BinRequest& r) {
  put_u64(out, r.id);
  put_u8(out, kProtoVersion);
  if (r.quit || r.shutdown) {
    put_u8(out, r.quit ? kOpQuit : kOpShutdown);
    return;
  }
  const serve::Request& q = r.req;
  put_u8(out, static_cast<std::uint8_t>(q.op));
  put_str(out, q.session);
  put_u32(out, q.num_vertices);
  put_str(out, q.path);
  put_u32(out, q.u);
  put_u32(out, q.v);
  put_u32(out, static_cast<std::uint32_t>(q.insertions.size()));
  for (const graph::WEdge& e : q.insertions) {
    put_u32(out, e.u);
    put_u32(out, e.v);
    put_f64(out, e.w);
  }
  put_u32(out, static_cast<std::uint32_t>(q.deletions.size()));
  for (const auto& [u, v] : q.deletions) {
    put_u32(out, u);
    put_u32(out, v);
  }
  put_u64(out, q.limit);
  put_f64(out, q.lambda);
  put_u8(out, q.has_lambda ? 1 : 0);
  put_f64(out, q.deadline_s);
  put_str(out, q.idem_id);
  put_u64(out, q.pin_epoch);
}

void encode_response(std::string& out, const BinResponse& r) {
  put_u64(out, r.id);
  put_u8(out, kProtoVersion);
  put_u8(out, static_cast<std::uint8_t>(r.op));
  const serve::Response& p = r.resp;
  put_u8(out, static_cast<std::uint8_t>(p.status));
  put_str(out, p.detail);
  put_f64(out, p.weight);
  put_u64(out, p.trees);
  put_u64(out, p.forest_edges);
  put_u64(out, p.live_edges);
  put_u8(out, p.connected ? 1 : 0);
  put_u8(out, p.applied ? 1 : 0);
  put_u8(out, p.dedup ? 1 : 0);
  put_u8(out, p.pathmax_found ? 1 : 0);
  put_u64(out, p.coalesced);
  put_u64(out, p.remapped);
  put_u64(out, p.edges_total);
  put_u32(out, static_cast<std::uint32_t>(p.edges.size()));
  for (const graph::WEdge& e : p.edges) {
    put_u32(out, e.u);
    put_u32(out, e.v);
    put_f64(out, e.w);
  }
  put_u32(out, static_cast<std::uint32_t>(p.edge_ids.size()));
  for (graph::EdgeId id : p.edge_ids) put_u64(out, id);
  put_u32(out, static_cast<std::uint32_t>(p.sessions.size()));
  for (const std::string& s : p.sessions) put_str(out, s);
  put_str(out, p.stats_json);
  put_u64(out, p.lsn);
  put_str(out, p.idem_id);
  put_u64(out, p.health_queue_depth);
  put_u64(out, p.health_sessions);
  put_f64(out, p.uptime_s);
  put_u32(out, static_cast<std::uint32_t>(p.shard_depths.size()));
  for (std::uint64_t d : p.shard_depths) put_u64(out, d);
  put_u64(out, p.reclaimed_epochs);
  put_u32(out, static_cast<std::uint32_t>(p.listeners.size()));
  for (const std::string& s : p.listeners) put_str(out, s);
  put_u64(out, p.epoch);
  put_u64(out, p.index_version);
  put_u64(out, p.pathmax_id);
  put_u32(out, p.pathmax_u);
  put_u32(out, p.pathmax_v);
  put_f64(out, p.pathmax_w);
  put_u64(out, p.clusters);
  put_u64(out, p.cut_digest);
  put_u8(out, p.index_status ? 1 : 0);
  put_u8(out, p.index_present ? 1 : 0);
  put_u8(out, p.index_fresh ? 1 : 0);
  put_u64(out, p.index_vertices);
  put_u64(out, p.index_edges);
  put_f64(out, p.index_age_s);
  put_f64(out, p.index_build_s);
  put_u64(out, p.index_rebuilds);
}

namespace {

void frame_payload(std::string& out, std::string_view payload) {
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, persist::crc32c(payload.data(), payload.size()));
  out.append(payload.data(), payload.size());
}

}  // namespace

void frame_message(std::string& out, std::string_view msg) {
  std::string payload;
  payload.reserve(1 + msg.size());
  put_u8(payload, kKindMessage);
  payload.append(msg.data(), msg.size());
  frame_payload(out, payload);
}

void frame_batch(std::string& out, const std::vector<std::string>& msgs) {
  std::string payload;
  std::size_t total = 5;
  for (const std::string& m : msgs) total += 4 + m.size();
  payload.reserve(total);
  put_u8(payload, kKindBatch);
  put_u32(payload, static_cast<std::uint32_t>(msgs.size()));
  for (const std::string& m : msgs) {
    put_u32(payload, static_cast<std::uint32_t>(m.size()));
    payload.append(m);
  }
  frame_payload(out, payload);
}

void encode_response_frame(std::string& out, const BinResponse& r) {
  std::string msg;
  encode_response(msg, r);
  frame_message(out, msg);
}

DecodeStatus try_read_frame(std::string_view buf, std::size_t& off,
                            std::string_view& payload, std::string& error) {
  if (buf.size() - off < 8) return DecodeStatus::kNeedMore;
  Reader r(buf.substr(off));
  const std::uint32_t len = r.u32();
  const std::uint32_t crc = r.u32();
  if (len > kMaxFrame) {
    error = "frame length " + std::to_string(len) + " exceeds limit " +
            std::to_string(kMaxFrame);
    return DecodeStatus::kFatal;
  }
  if (buf.size() - off - 8 < len) return DecodeStatus::kNeedMore;
  payload = buf.substr(off + 8, len);
  off += 8 + static_cast<std::size_t>(len);
  if (persist::crc32c(payload.data(), payload.size()) != crc) {
    error = "frame checksum mismatch";
    return DecodeStatus::kBadFrame;
  }
  return DecodeStatus::kOk;
}

bool decode_request_payload(std::string_view payload,
                            std::vector<BinRequest>& out, std::string& error) {
  return decode_payload<BinRequest>(payload, out, error, &decode_request_msg);
}

bool decode_response_payload(std::string_view payload,
                             std::vector<BinResponse>& out,
                             std::string& error) {
  return decode_payload<BinResponse>(payload, out, error,
                                     &decode_response_msg);
}

}  // namespace smp::net
