#include "net/tcp_server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "core/error.hpp"
#include "net/frame.hpp"
#include "serve/service_core.hpp"

#ifdef __linux__
#include <sys/epoll.h>
#include <sys/eventfd.h>
#endif

namespace smp::net {
namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

/// Readiness events over a set of fds: epoll where available, poll(2)
/// elsewhere.  Single-threaded — each I/O thread owns one.
class Poller {
 public:
  struct Ev {
    int fd;
    bool in;
    bool out;
    bool err;
  };

#ifdef __linux__
  Poller() : ep_(::epoll_create1(EPOLL_CLOEXEC)) {}
  ~Poller() {
    if (ep_ >= 0) ::close(ep_);
  }

  void add(int fd, bool rd, bool wr) { ctl(EPOLL_CTL_ADD, fd, rd, wr); }
  void mod(int fd, bool rd, bool wr) { ctl(EPOLL_CTL_MOD, fd, rd, wr); }
  void del(int fd) { ::epoll_ctl(ep_, EPOLL_CTL_DEL, fd, nullptr); }

  int wait(std::vector<Ev>& out, int timeout_ms) {
    epoll_event evs[64];
    int n = ::epoll_wait(ep_, evs, 64, timeout_ms);
    if (n < 0) n = 0;
    out.clear();
    for (int i = 0; i < n; ++i) {
      Ev e;
      e.fd = evs[i].data.fd;
      e.in = (evs[i].events & (EPOLLIN | EPOLLHUP)) != 0;
      e.out = (evs[i].events & EPOLLOUT) != 0;
      e.err = (evs[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      out.push_back(e);
    }
    return n;
  }

 private:
  void ctl(int op, int fd, bool rd, bool wr) {
    epoll_event ev{};
    ev.data.fd = fd;
    ev.events = (rd ? EPOLLIN : 0u) | (wr ? EPOLLOUT : 0u);
    ::epoll_ctl(ep_, op, fd, &ev);
  }

  int ep_;
#else
  void add(int fd, bool rd, bool wr) { entries_.push_back({fd, rd, wr}); }
  void mod(int fd, bool rd, bool wr) {
    for (auto& e : entries_)
      if (e.fd == fd) {
        e.rd = rd;
        e.wr = wr;
      }
  }
  void del(int fd) {
    std::erase_if(entries_, [fd](const Entry& e) { return e.fd == fd; });
  }

  int wait(std::vector<Ev>& out, int timeout_ms) {
    std::vector<pollfd> pfds;
    pfds.reserve(entries_.size());
    for (const Entry& e : entries_)
      pfds.push_back({e.fd,
                      static_cast<short>((e.rd ? POLLIN : 0) |
                                         (e.wr ? POLLOUT : 0)),
                      0});
    int n = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (n < 0) n = 0;
    out.clear();
    for (const pollfd& p : pfds) {
      if (p.revents == 0) continue;
      Ev e;
      e.fd = p.fd;
      e.in = (p.revents & (POLLIN | POLLHUP)) != 0;
      e.out = (p.revents & POLLOUT) != 0;
      e.err = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      out.push_back(e);
    }
    return n;
  }

 private:
  struct Entry {
    int fd;
    bool rd;
    bool wr;
  };
  std::vector<Entry> entries_;
#endif
};

serve::Response protocol_error(const std::string& detail) {
  serve::Response r;
  r.status = serve::Status::kInvalidInput;
  r.detail = detail;
  return r;
}

}  // namespace

struct TcpServer::Conn {
  int fd = -1;
  std::size_t owner_slot = 0;  // index into threads_, fixed at accept time
  std::string client_id;
  // Input side: owner-thread only.
  std::string in;
  std::size_t in_off = 0;
  bool closing = false;  // owner-thread bookkeeping mirror of closing_any
  // Output side: shared with dispatcher callbacks.
  std::mutex out_mu;
  std::string out;
  std::size_t out_off = 0;
  bool want_write = false;  // owner-thread only: EPOLLOUT registered
  std::atomic<bool> in_processing{false};
  std::atomic<bool> closed{false};
  std::atomic<bool> closing_any{false};  // quit/shutdown/EOF seen
  std::atomic<std::uint64_t> outstanding{0};
};

struct TcpServer::IoThread {
  int id = 0;
  Poller poller;
  int wake_r = -1;
  int wake_w = -1;
  std::thread th;
  std::unordered_map<int, std::shared_ptr<Conn>> conns;
  std::mutex pending_mu;
  std::vector<std::shared_ptr<Conn>> pending_adds;
  std::vector<std::shared_ptr<Conn>> dirty;
  std::atomic<bool> stop{false};

  IoThread() {
#ifdef __linux__
    wake_r = wake_w = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
#else
    int p[2] = {-1, -1};
    if (::pipe(p) == 0) {
      wake_r = p[0];
      wake_w = p[1];
      set_nonblocking(wake_r);
      set_nonblocking(wake_w);
    }
#endif
  }

  ~IoThread() {
    if (wake_r >= 0) ::close(wake_r);
    if (wake_w >= 0 && wake_w != wake_r) ::close(wake_w);
  }

  void wake() {
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_w, &one, sizeof one);
  }

  void drain_wake() {
    std::uint64_t buf[16];
    while (::read(wake_r, buf, sizeof buf) > 0) {
    }
  }

  void mark_dirty(const std::shared_ptr<Conn>& c) {
    std::lock_guard<std::mutex> lk(pending_mu);
    dirty.push_back(c);
  }
};

TcpServer::TcpServer(serve::ServiceCore& core, TcpServerOptions opts)
    : core_(core), opts_(opts) {
  if (opts_.io_threads < 1) opts_.io_threads = 1;
}

TcpServer::~TcpServer() { stop(); }

void TcpServer::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0)
    throw Error(ErrorCode::kInvalidInput, "tcp: socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(opts_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listen_fd_, opts_.listen_backlog) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error(ErrorCode::kInvalidInput,
                "tcp: cannot listen on port " + std::to_string(opts_.port) +
                    ": " + std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen);
  port_ = ntohs(bound.sin_port);
  set_nonblocking(listen_fd_);

  threads_.reserve(static_cast<std::size_t>(opts_.io_threads));
  for (int i = 0; i < opts_.io_threads; ++i) {
    auto io = std::make_shared<IoThread>();
    io->id = i;
    threads_.push_back(io);
  }
  for (int i = 0; i < opts_.io_threads; ++i) {
    IoThread& io = *threads_[static_cast<std::size_t>(i)];
    io.poller.add(io.wake_r, true, false);
    if (i == 0) io.poller.add(listen_fd_, true, false);
    io.th = std::thread([this, &io, i] { io_loop(io, i == 0); });
  }
  {
    std::lock_guard<std::mutex> lk(stop_mu_);
    started_ = true;
    stopped_ = false;
  }
  core_.add_listener("tcp:" + std::to_string(port_));
}

void TcpServer::wait() {
  std::unique_lock<std::mutex> lk(wait_mu_);
  wait_cv_.wait(lk, [this] { return wait_done_; });
}

void TcpServer::notify_stop_wait() {
  std::lock_guard<std::mutex> lk(wait_mu_);
  wait_done_ = true;
  wait_cv_.notify_all();
}

void TcpServer::stop() {
  {
    std::lock_guard<std::mutex> lk(stop_mu_);
    if (!started_ || stopped_) {
      notify_stop_wait();
      return;
    }
    stopped_ = true;
  }
  stopping_.store(true, std::memory_order_release);
  for (auto& io : threads_) {
    io->stop.store(true, std::memory_order_release);
    io->wake();
  }
  for (auto& io : threads_) {
    if (io->th.joinable()) io->th.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  core_.remove_listener("tcp:" + std::to_string(port_));
  notify_stop_wait();
}

void TcpServer::io_loop(IoThread& io, bool is_listener) {
  std::vector<Poller::Ev> events;
  std::vector<std::shared_ptr<Conn>> batch;
  while (!io.stop.load(std::memory_order_acquire)) {
    // Adopt connections handed over by the acceptor.
    {
      std::lock_guard<std::mutex> lk(io.pending_mu);
      batch.swap(io.pending_adds);
    }
    for (auto& c : batch) {
      io.conns.emplace(c->fd, c);
      io.poller.add(c->fd, true, false);
    }
    batch.clear();
    // Flush connections dirtied by dispatcher-thread completions.
    {
      std::lock_guard<std::mutex> lk(io.pending_mu);
      batch.swap(io.dirty);
    }
    for (auto& c : batch) {
      if (!c->closed.load(std::memory_order_acquire)) flush(io, c);
    }
    batch.clear();

    io.poller.wait(events, 500);
    for (const Poller::Ev& ev : events) {
      if (ev.fd == io.wake_r) {
        io.drain_wake();
        continue;
      }
      if (is_listener && ev.fd == listen_fd_) {
        accept_ready(io);
        continue;
      }
      auto it = io.conns.find(ev.fd);
      if (it == io.conns.end()) continue;
      std::shared_ptr<Conn> conn = it->second;
      if (ev.in) handle_readable(io, conn);
      if (!conn->closed.load(std::memory_order_acquire) && ev.out)
        flush(io, conn);
      if (!conn->closed.load(std::memory_order_acquire) && ev.err && !ev.in)
        close_conn(io, conn);
    }
  }
  // Shutdown: drop every connection this thread owns.
  std::vector<std::shared_ptr<Conn>> all;
  all.reserve(io.conns.size());
  for (auto& [fd, c] : io.conns) all.push_back(c);
  for (auto& c : all) close_conn(io, c);
}

void TcpServer::accept_ready(IoThread& io) {
  (void)io;
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or a transient accept error: try again on next event
    }
    set_nonblocking(fd);
    set_nodelay(fd);
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    conn->client_id =
        "tcp:" + std::to_string(next_client_.fetch_add(1,
                                                       std::memory_order_relaxed));
    const std::size_t slot =
        next_io_.fetch_add(1, std::memory_order_relaxed) % threads_.size();
    conn->owner_slot = slot;
    IoThread& target = *threads_[slot];
    {
      std::lock_guard<std::mutex> lk(target.pending_mu);
      target.pending_adds.push_back(std::move(conn));
    }
    target.wake();
  }
}

void TcpServer::handle_readable(IoThread& io, const std::shared_ptr<Conn>& conn) {
  char buf[65536];
  bool peer_eof = false;
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof buf, 0);
    if (n > 0) {
      conn->in.append(buf, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < sizeof buf) break;
      continue;
    }
    if (n == 0) {
      peer_eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    close_conn(io, conn);
    return;
  }

  conn->in_processing.store(true, std::memory_order_release);
  process_input(io, conn);
  conn->in_processing.store(false, std::memory_order_release);

  if (peer_eof) {
    conn->closing = true;
    conn->closing_any.store(true, std::memory_order_release);
  }
  flush(io, conn);
}

void TcpServer::process_input(IoThread& io, const std::shared_ptr<Conn>& conn) {
  auto owner = threads_[static_cast<std::size_t>(io.id)];
  auto respond_error = [&](const std::string& detail) {
    BinResponse br;
    br.id = 0;
    br.op = serve::Op::kPing;
    br.resp = protocol_error(detail);
    std::string frame;
    encode_response_frame(frame, br);
    std::lock_guard<std::mutex> lk(conn->out_mu);
    if (!conn->closed.load(std::memory_order_relaxed)) conn->out += frame;
  };

  while (!conn->closing) {
    std::string_view payload;
    std::string err;
    const DecodeStatus st =
        try_read_frame(conn->in, conn->in_off, payload, err);
    if (st == DecodeStatus::kNeedMore) break;
    if (st == DecodeStatus::kFatal) {
      // The stream cannot be resynchronised; answer, then close after the
      // flush drains the error.
      respond_error(err);
      conn->closing = true;
      conn->closing_any.store(true, std::memory_order_release);
      ::shutdown(conn->fd, SHUT_RD);
      break;
    }
    if (st == DecodeStatus::kBadFrame) {
      respond_error(err);
      continue;
    }
    std::vector<BinRequest> msgs;
    const bool ok = decode_request_payload(payload, msgs, err);
    for (BinRequest& m : msgs) dispatch_message(conn, std::move(m));
    if (!ok) respond_error(err);
  }

  // Compact the consumed prefix so the buffer does not grow without bound.
  if (conn->in_off == conn->in.size()) {
    conn->in.clear();
    conn->in_off = 0;
  } else if (conn->in_off > 65536) {
    conn->in.erase(0, conn->in_off);
    conn->in_off = 0;
  }
}

void TcpServer::dispatch_message(const std::shared_ptr<Conn>& conn,
                                 BinRequest&& msg) {
  // The owner handle outlives the server via shared_ptr, so dispatcher
  // callbacks completing after stop() still have a valid wake target.
  std::shared_ptr<IoThread> owner = threads_[conn->owner_slot];

  auto append_response = [](const std::shared_ptr<Conn>& c,
                            const std::shared_ptr<IoThread>& own,
                            BinResponse&& br) {
    std::string frame;
    encode_response_frame(frame, br);
    {
      std::lock_guard<std::mutex> lk(c->out_mu);
      if (c->closed.load(std::memory_order_relaxed)) return;
      c->out += frame;
    }
    if (!c->in_processing.load(std::memory_order_acquire)) {
      own->mark_dirty(c);
      own->wake();
    }
  };

  if (msg.quit || msg.shutdown) {
    BinResponse br;
    br.id = msg.id;
    br.op = serve::Op::kPing;
    br.resp.status = serve::Status::kOk;
    append_response(conn, owner, std::move(br));
    conn->closing = true;
    conn->closing_any.store(true, std::memory_order_release);
    if (msg.shutdown) notify_stop_wait();
    return;
  }
  if (msg.req.op == serve::Op::kSnapshot) {
    BinResponse br;
    br.id = msg.id;
    br.op = serve::Op::kSnapshot;
    br.resp = protocol_error("snapshot is in-process only");
    append_response(conn, owner, std::move(br));
    return;
  }

  msg.req.client_id = conn->client_id;
  const std::uint64_t id = msg.id;
  const serve::Op op = msg.req.op;
  conn->outstanding.fetch_add(1, std::memory_order_acq_rel);
  core_.submit(std::move(msg.req),
               [conn, owner, id, op, append_response](serve::Response r) {
                 BinResponse br;
                 br.id = id;
                 br.op = op;
                 br.resp = std::move(r);
                 append_response(conn, owner, std::move(br));
                 conn->outstanding.fetch_sub(1, std::memory_order_acq_rel);
                 if (conn->closing_any.load(std::memory_order_acquire)) {
                   owner->mark_dirty(conn);
                   owner->wake();
                 }
               });
}

void TcpServer::flush(IoThread& io, const std::shared_ptr<Conn>& conn) {
  if (conn->closed.load(std::memory_order_acquire)) return;
  bool drained = false;
  bool dead = false;
  bool over_budget = false;
  {
    std::lock_guard<std::mutex> lk(conn->out_mu);
    while (conn->out_off < conn->out.size()) {
      const ssize_t n =
          ::send(conn->fd, conn->out.data() + conn->out_off,
                 conn->out.size() - conn->out_off, MSG_NOSIGNAL);
      if (n > 0) {
        conn->out_off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      dead = true;
      break;
    }
    if (conn->out_off == conn->out.size()) {
      conn->out.clear();
      conn->out_off = 0;
      drained = true;
    } else if (conn->out.size() - conn->out_off > opts_.max_outbound_bytes) {
      over_budget = true;
    }
  }
  if (dead || over_budget) {
    close_conn(io, conn);
    return;
  }
  if (!drained && !conn->want_write) {
    conn->want_write = true;
    io.poller.mod(conn->fd, true, true);
  } else if (drained && conn->want_write) {
    conn->want_write = false;
    io.poller.mod(conn->fd, true, false);
  }
  if (drained && conn->closing &&
      conn->outstanding.load(std::memory_order_acquire) == 0) {
    close_conn(io, conn);
  }
}

void TcpServer::close_conn(IoThread& io, const std::shared_ptr<Conn>& conn) {
  if (conn->closed.exchange(true, std::memory_order_acq_rel)) return;
  io.poller.del(conn->fd);
  ::close(conn->fd);
  io.conns.erase(conn->fd);
}

}  // namespace smp::net
