#pragma once

// Synchronous client for the TCP binary protocol (net/frame.hpp).  One
// instance per connection, not thread-safe.  Supports three shapes of use:
//
//   * call(req)            — send one request, block for its response
//   * send(req) / recv()   — pipelining: many sends, then drain responses
//   * send_batch(reqs)     — many requests in a single kBatch frame (one
//                            syscall, one CRC), the high-throughput path
//
// Responses may arrive out of order; recv() returns them in arrival order
// with their correlation ids, call() matches on id and stashes strays.

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "serve/request.hpp"

namespace smp::net {

class TcpClient {
 public:
  /// Connects; throws Error{kInvalidInput} when nobody listens.
  TcpClient(const std::string& host, std::uint16_t port);
  ~TcpClient();

  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  /// Send one request and block for its response.
  serve::Response call(const serve::Request& req);

  /// Pipelined send: one kMessage frame per request.  Returns the request id.
  ///
  /// Frames are not written to the socket immediately: they queue in the
  /// client and are coalesced into one sendmsg/iovec gather the next time
  /// the client needs the wire — recv()/call()/quit()/shutdown(), the
  /// destructor, or the queue passing ~256 KiB.  A burst of N pipelined
  /// sends therefore costs O(N / IOV) syscalls instead of N, with no
  /// observable protocol difference (responses are only ever awaited
  /// through recv(), which flushes first).
  std::uint64_t send(const serve::Request& req);

  /// Send `reqs` as a single kBatch frame.  Returns the assigned ids in
  /// request order.
  std::vector<std::uint64_t> send_batch(const std::vector<serve::Request>& reqs);

  /// Block for the next response (any id).  Throws Error{kInvalidInput} on
  /// EOF or a malformed server frame.
  BinResponse recv();

  /// Send the quit control message and read the acknowledgement.
  void quit();

  /// Send the shutdown control message and read the acknowledgement.
  void shutdown();

 private:
  /// Queue one encoded frame; flushes when the queue exceeds the threshold.
  void queue_frame(std::string frame);
  /// Write every queued frame with sendmsg/iovec gathers (partial-write and
  /// EINTR safe).  No-op when nothing is pending.
  void flush_pending();
  void control(std::uint8_t op);

  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  std::string acc_;
  std::size_t acc_off_ = 0;
  std::deque<BinResponse> ready_;
  std::deque<std::string> pending_;  // encoded frames not yet on the wire
  std::size_t pending_off_ = 0;      // bytes of pending_.front() already sent
  std::size_t pending_bytes_ = 0;    // total unsent bytes across pending_
};

}  // namespace smp::net
