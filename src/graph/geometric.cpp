#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "graph/generators.hpp"
#include "pprim/rng.hpp"

namespace smp::graph {

namespace {

struct Point {
  double x, y;
};

double sq_dist(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

}  // namespace

EdgeList geometric_knn(VertexId n, int k, std::uint64_t seed) {
  if (k <= 0 || static_cast<EdgeId>(k) >= n) {
    throw std::invalid_argument("geometric_knn: need 0 < k < n");
  }
  smp::Rng rng(seed);
  std::vector<Point> pts(n);
  for (auto& p : pts) p = {rng.next_double(), rng.next_double()};

  // Uniform grid bucketing: with cells sized so that a cell holds ~2 points,
  // a k-NN query only inspects a few rings of cells.
  const auto grid = static_cast<std::uint32_t>(
      std::max(1.0, std::floor(std::sqrt(static_cast<double>(n) / 2.0))));
  const auto cell_of = [&](const Point& p) {
    auto cx = static_cast<std::uint32_t>(p.x * grid);
    auto cy = static_cast<std::uint32_t>(p.y * grid);
    if (cx >= grid) cx = grid - 1;
    if (cy >= grid) cy = grid - 1;
    return cy * grid + cx;
  };

  // Counting-sort points into cells.
  std::vector<std::uint32_t> cell_start(static_cast<std::size_t>(grid) * grid + 1, 0);
  for (VertexId i = 0; i < n; ++i) ++cell_start[cell_of(pts[i]) + 1];
  for (std::size_t c = 1; c < cell_start.size(); ++c) cell_start[c] += cell_start[c - 1];
  std::vector<VertexId> cell_items(n);
  {
    std::vector<std::uint32_t> cur(cell_start.begin(), cell_start.end() - 1);
    for (VertexId i = 0; i < n; ++i) cell_items[cur[cell_of(pts[i])]++] = i;
  }

  struct Cand {
    double d2;
    VertexId v;
    bool operator<(const Cand& o) const { return d2 < o.d2 || (d2 == o.d2 && v < o.v); }
  };

  std::vector<std::uint64_t> pair_keys;
  pair_keys.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(k));
  std::vector<Cand> cands;
  for (VertexId i = 0; i < n; ++i) {
    const Point& p = pts[i];
    auto cx = static_cast<std::int64_t>(p.x * grid);
    auto cy = static_cast<std::int64_t>(p.y * grid);
    cx = std::min<std::int64_t>(cx, grid - 1);
    cy = std::min<std::int64_t>(cy, grid - 1);
    cands.clear();
    // Expand rings until we have k neighbours whose distance bound is safe:
    // ring r guarantees correctness once the k-th best distance is below
    // (r / grid)^2, i.e. within the fully-covered square.
    for (std::int64_t ring = 0;; ++ring) {
      bool any_cell = false;
      for (std::int64_t dy = -ring; dy <= ring; ++dy) {
        for (std::int64_t dx = -ring; dx <= ring; ++dx) {
          if (std::max(std::abs(dx), std::abs(dy)) != ring) continue;  // ring shell only
          const std::int64_t x = cx + dx;
          const std::int64_t y = cy + dy;
          if (x < 0 || y < 0 || x >= grid || y >= grid) continue;
          any_cell = true;
          const std::size_t c = static_cast<std::size_t>(y) * grid + static_cast<std::size_t>(x);
          for (std::uint32_t s = cell_start[c]; s < cell_start[c + 1]; ++s) {
            const VertexId j = cell_items[s];
            if (j == i) continue;
            cands.push_back({sq_dist(p, pts[j]), j});
          }
        }
      }
      if (static_cast<int>(cands.size()) >= k) {
        std::nth_element(cands.begin(), cands.begin() + (k - 1), cands.end());
        const double kth = cands[static_cast<std::size_t>(k) - 1].d2;
        const double safe = static_cast<double>(ring) / grid;
        if (kth <= safe * safe) break;
      }
      if (!any_cell && ring > static_cast<std::int64_t>(grid)) break;  // scanned everything
    }
    const int take = std::min<int>(k, static_cast<int>(cands.size()));
    std::partial_sort(cands.begin(), cands.begin() + take, cands.end());
    for (int t = 0; t < take; ++t) {
      VertexId a = i, b = cands[static_cast<std::size_t>(t)].v;
      if (a > b) std::swap(a, b);
      pair_keys.push_back((static_cast<std::uint64_t>(a) << 32) | b);
    }
  }

  // Symmetrize: i→j and j→i collapse to one undirected edge.
  std::sort(pair_keys.begin(), pair_keys.end());
  pair_keys.erase(std::unique(pair_keys.begin(), pair_keys.end()), pair_keys.end());

  EdgeList g(n);
  g.edges.reserve(pair_keys.size());
  for (const std::uint64_t key : pair_keys) {
    const auto u = static_cast<VertexId>(key >> 32);
    const auto v = static_cast<VertexId>(key & 0xFFFFFFFFu);
    g.add_edge(u, v, std::sqrt(sq_dist(pts[u], pts[v])));
  }
  return g;
}

}  // namespace smp::graph
