#include "graph/validate.hpp"

#include <algorithm>
#include <cstdint>
#include <queue>
#include <unordered_map>
#include <vector>

#include "graph/stats.hpp"
#include "seq/union_find.hpp"

namespace smp::graph {

namespace {

struct Canon {
  VertexId a, b;
  Weight w;
  friend bool operator<(const Canon& x, const Canon& y) {
    if (x.a != y.a) return x.a < y.a;
    if (x.b != y.b) return x.b < y.b;
    return x.w < y.w;
  }
  friend bool operator==(const Canon&, const Canon&) = default;
};

Canon canon_of(const WEdge& e) {
  return e.u <= e.v ? Canon{e.u, e.v, e.w} : Canon{e.v, e.u, e.w};
}

}  // namespace

ForestCheck validate_spanning_forest(const EdgeList& g, std::span<const WEdge> forest) {
  ForestCheck res;

  // 1. Membership (multiset-aware): every forest edge must match a distinct
  //    graph edge with identical endpoints and weight.
  std::vector<Canon> have;
  have.reserve(g.edges.size());
  for (const auto& e : g.edges) have.push_back(canon_of(e));
  std::sort(have.begin(), have.end());
  std::vector<Canon> want;
  want.reserve(forest.size());
  for (const auto& e : forest) want.push_back(canon_of(e));
  std::sort(want.begin(), want.end());
  {
    std::size_t hi = 0;
    for (const auto& e : want) {
      while (hi < have.size() && have[hi] < e) ++hi;
      if (hi == have.size() || !(have[hi] == e)) {
        res.error = "forest edge not present in graph";
        return res;
      }
      ++hi;  // consume the matched graph edge
    }
  }

  // 2. Acyclicity.
  smp::seq::UnionFind uf(g.num_vertices);
  for (const auto& e : forest) {
    if (e.u >= g.num_vertices || e.v >= g.num_vertices) {
      res.error = "forest edge endpoint out of range";
      return res;
    }
    if (!uf.unite(e.u, e.v)) {
      res.error = "forest contains a cycle";
      return res;
    }
    res.total_weight += e.w;
  }

  // 3. Maximality: exactly n - #components(g) edges.
  const std::size_t comps = num_components(g);
  const std::size_t expect =
      static_cast<std::size_t>(g.num_vertices) - comps;
  if (forest.size() != expect) {
    res.error = "forest does not span every component (got " +
                std::to_string(forest.size()) + " edges, want " +
                std::to_string(expect) + ")";
    return res;
  }

  res.num_trees = comps;
  res.ok = true;
  return res;
}

EdgeList canonicalize_parallel_edges(const EdgeList& g,
                                     std::vector<EdgeId>* kept_ids) {
  const auto pair_key = [](const WEdge& e) {
    const VertexId a = e.u <= e.v ? e.u : e.v;
    const VertexId b = e.u <= e.v ? e.v : e.u;
    return (static_cast<std::uint64_t>(a) << 32) | b;
  };

  // Pass 1: per endpoint pair, the WeightOrder-minimal edge id.
  std::unordered_map<std::uint64_t, EdgeId> best;
  best.reserve(g.edges.size());
  for (EdgeId i = 0; i < g.edges.size(); ++i) {
    const auto [it, fresh] = best.try_emplace(pair_key(g.edges[i]), i);
    if (!fresh) {
      const EdgeId j = it->second;
      if (WeightOrder{g.edges[i].w, i} < WeightOrder{g.edges[j].w, j}) {
        it->second = i;
      }
    }
  }

  // Pass 2: keep the winners in input order.
  EdgeList out(g.num_vertices);
  out.edges.reserve(best.size());
  if (kept_ids != nullptr) {
    kept_ids->clear();
    kept_ids->reserve(best.size());
  }
  for (EdgeId i = 0; i < g.edges.size(); ++i) {
    if (best.at(pair_key(g.edges[i])) != i) continue;
    out.edges.push_back(g.edges[i]);
    if (kept_ids != nullptr) kept_ids->push_back(i);
  }
  return out;
}

bool verify_cut_property(const EdgeList& g, std::span<const WEdge> forest,
                         std::string* error) {
  // Forest adjacency.
  std::vector<std::vector<VertexId>> adj(g.num_vertices);
  for (const auto& e : forest) {
    adj[e.u].push_back(e.v);
    adj[e.v].push_back(e.u);
  }
  std::vector<char> side(g.num_vertices, 0);
  std::vector<VertexId> frontier;
  for (std::size_t fe = 0; fe < forest.size(); ++fe) {
    const WEdge& cut_edge = forest[fe];
    // Flood the u-side of the tree with edge (u,v) removed.
    std::fill(side.begin(), side.end(), 0);
    frontier.clear();
    frontier.push_back(cut_edge.u);
    side[cut_edge.u] = 1;
    while (!frontier.empty()) {
      const VertexId x = frontier.back();
      frontier.pop_back();
      for (const VertexId y : adj[x]) {
        if ((x == cut_edge.u && y == cut_edge.v) ||
            (x == cut_edge.v && y == cut_edge.u)) {
          continue;  // skip the removed edge itself
        }
        if (!side[y]) {
          side[y] = 1;
          frontier.push_back(y);
        }
      }
    }
    // No graph edge crossing the cut may be strictly lighter.
    for (const auto& e : g.edges) {
      if (side[e.u] != side[e.v] && e.w < cut_edge.w) {
        if (error) {
          *error = "cut property violated: forest edge (" +
                   std::to_string(cut_edge.u) + "," + std::to_string(cut_edge.v) +
                   ") w=" + std::to_string(cut_edge.w) + " vs graph edge (" +
                   std::to_string(e.u) + "," + std::to_string(e.v) +
                   ") w=" + std::to_string(e.w);
        }
        return false;
      }
    }
  }
  return true;
}

}  // namespace smp::graph
