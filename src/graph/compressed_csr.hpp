#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "graph/edge_list.hpp"
#include "graph/mmap_file.hpp"
#include "graph/types.hpp"
#include "pprim/varint.hpp"

namespace smp::graph {

/// Delta/varint-compressed CSR: the billion-edge storage format (.smpz).
///
/// Each undirected edge is stored ONCE, on its smaller endpoint, so the
/// structure is an upper-triangular adjacency: vertex u's row holds its
/// neighbors v >= u in strictly increasing order, encoded as LEB128 varints
/// of the gaps (first value = v0 - u, then v_i - v_{i-1}; see
/// pprim/varint.hpp).  Edge *identity* is implicit — edge id e is the e-th
/// arc of the row walk — which is what keeps the structure under ~4 bytes
/// per edge on degree-10 graphs: no per-edge id, no reverse arc.  Weights
/// stay a raw f64 array indexed by that implicit id (they are incompressible
/// and the solvers touch them exactly once, to build weight ranks).
///
/// Canonical order invariant: rows are built from the edge list after
/// normalizing u <= v, sorting by (u, v) and deduplicating parallel edges
/// keeping the ⟨weight, input-id⟩-minimal one — the same canonical choice
/// as canonicalize_parallel_edges, so the forest computed on the compressed
/// graph equals the forest on the canonicalized uncompressed graph
/// edge-for-edge (the bit-identity suite pins this at p in {1,2,4,8}).
///
/// On-disk layout (native-endian, like SMPG; sections 8-byte aligned):
///   header   { "SMPZ", u32 version=1, u32 flags, u32 n, u64 m, u64 adj_bytes }
///   edge_offsets   (n+1) x u32    row -> first implicit edge id
///   byte_offsets   (n+1) x u32    row -> first adjacency byte (u64 when
///                                 flags bit0 set, i.e. adj_bytes >= 4 GiB)
///   adjacency      adj_bytes x u8 concatenated varint gap streams
///   weights        m x f64
///
/// open_file() maps the file read-only and VALIDATES everything once —
/// header geometry, offset monotonicity, per-row varint structure (so the
/// trusted SIMD bulk decoder can never overrun), target range/monotonicity,
/// weight finiteness; any violation throws smp::Error{kInvalidInput} naming
/// the path and byte offset.  After that every decode runs the unchecked
/// fast path.
class CompressedCsr {
 public:
  CompressedCsr() = default;

  /// Builds from an arbitrary edge list: normalizes endpoints, sorts,
  /// dedups parallel edges canonically.  `kept_input_ids` (optional out)
  /// maps each compressed edge id to the input index of the edge it kept.
  [[nodiscard]] static CompressedCsr build(
      const EdgeList& g, std::vector<EdgeId>* kept_input_ids = nullptr);

  /// The canonicalized edge list build() compressed — decode_edge_list()
  /// returns exactly this.  Exposed so callers can solve the identical
  /// input uncompressed for comparison.
  [[nodiscard]] EdgeList decode_edge_list() const;

  /// Decodes every target (larger endpoint) in implicit edge-id order via
  /// the bulk varint kernel + per-row prefix reconstruction.  `out` must
  /// hold num_edges() values.  This is the hot load of the streaming solve
  /// path and what the decode-GB/s bench times.
  void decode_targets(VertexId* out) const;

  /// Decodes row `u` (targets only) into out[0 .. out_degree(u)).
  void decode_row(VertexId u, VertexId* out) const;

  [[nodiscard]] VertexId num_vertices() const { return n_; }
  [[nodiscard]] EdgeId num_edges() const { return m_; }
  [[nodiscard]] EdgeId edge_offset(VertexId u) const { return edge_off_[u]; }
  [[nodiscard]] std::uint32_t out_degree(VertexId u) const {
    return edge_off_[u + 1] - edge_off_[u];
  }
  /// Smaller endpoint of edge e in O(log n) (binary search of edge_offsets);
  /// row walks get it for free.
  [[nodiscard]] VertexId source_of(EdgeId e) const;
  [[nodiscard]] const Weight* weights() const { return weights_; }
  [[nodiscard]] Weight weight(EdgeId e) const { return weights_[e]; }

  /// Sequential row walk: fn(EdgeId id, VertexId u, VertexId v, Weight w)
  /// in implicit edge-id order.
  template <class Fn>
  void for_each_edge(Fn&& fn) const {
    const std::uint8_t* p = adj_;
    for (VertexId u = 0; u < n_; ++u) {
      VertexId v = u;
      const EdgeId e_end = edge_off_[u + 1];
      for (EdgeId e = edge_off_[u]; e < e_end; ++e) {
        v += decode_gap(p);
        fn(e, u, v, weights_[e]);
      }
    }
  }

  /// Adjacency varint bytes alone.
  [[nodiscard]] std::size_t adjacency_bytes() const { return adj_bytes_; }
  /// Adjacency + both offset arrays — the "structure" term of bytes/edge
  /// (weights are reported separately; see docs/PERFORMANCE.md).
  [[nodiscard]] std::size_t structure_bytes() const;
  /// Structure + weights: total resident bytes of the graph.
  [[nodiscard]] std::size_t total_bytes() const {
    return structure_bytes() + sizeof(Weight) * static_cast<std::size_t>(m_);
  }
  [[nodiscard]] bool mapped() const { return !map_.path().empty(); }

  void write_file(const std::string& path) const;
  /// Maps and fully validates a .smpz file (see class comment).
  [[nodiscard]] static CompressedCsr open_file(const std::string& path);

 private:
  static VertexId decode_gap(const std::uint8_t*& p) {
    return varint_decode_u32(p);
  }
  [[nodiscard]] std::uint64_t byte_off(VertexId u) const {
    return off64_ ? byte_off64_[u] : byte_off32_[u];
  }
  void adopt_views(bool off64);

  VertexId n_ = 0;
  EdgeId m_ = 0;
  std::size_t adj_bytes_ = 0;
  bool off64_ = false;

  // Owned storage (build path) — empty when mmap-backed.
  std::vector<std::uint32_t> own_edge_off_;
  std::vector<std::uint32_t> own_byte_off32_;
  std::vector<std::uint64_t> own_byte_off64_;
  std::vector<std::uint8_t> own_adj_;
  std::vector<Weight> own_weights_;
  MmapFile map_;

  // Views into whichever storage backs the instance.
  const std::uint32_t* edge_off_ = nullptr;
  const std::uint32_t* byte_off32_ = nullptr;
  const std::uint64_t* byte_off64_ = nullptr;
  const std::uint8_t* adj_ = nullptr;
  const Weight* weights_ = nullptr;
};

/// Streaming .smpz writer for graphs that never fit in memory: feed edges in
/// canonical order (u <= v normalized by the caller, (u, v) strictly
/// lexicographically increasing — i.e. already merged and deduplicated) and
/// finish() produces a file CompressedCsr::open_file accepts.  Only the two
/// offset arrays are held in RAM (12(n+1) bytes); adjacency varints and
/// weights stream through side files that finish() splices into place.
/// smpmsf-convert's k-way run merge is the intended producer.
class CompressedCsrWriter {
 public:
  /// Creates `path` plus two `path + ".adj"/".w"` side files (replaced on
  /// finish, removed on destruction).  Throws Error{kInvalidInput} when any
  /// of the three cannot be opened.
  CompressedCsrWriter(std::string path, VertexId n);
  ~CompressedCsrWriter();
  CompressedCsrWriter(const CompressedCsrWriter&) = delete;
  CompressedCsrWriter& operator=(const CompressedCsrWriter&) = delete;

  /// Requires u <= v, no self-loop, v < n, (u, v) strictly greater than the
  /// previous call's pair, finite w; throws Error{kInvalidInput} otherwise.
  void add_edge(VertexId u, VertexId v, Weight w);

  /// Assembles the final file; returns the edge count.  The writer is spent
  /// afterwards.
  EdgeId finish();

 private:
  void catch_up_rows(VertexId u);

  std::string path_;
  VertexId n_ = 0;
  EdgeId m_ = 0;
  VertexId row_ = 0;
  VertexId prev_v_ = 0;
  bool have_prev_ = false;
  bool finished_ = false;
  std::uint64_t adj_bytes_ = 0;
  std::vector<std::uint32_t> edge_off_;
  std::vector<std::uint64_t> byte_off_;
  std::vector<std::uint8_t> adj_buf_;
  std::vector<Weight> w_buf_;
  std::FILE* adj_file_ = nullptr;
  std::FILE* w_file_ = nullptr;
};

}  // namespace smp::graph
