#pragma once

#include <cstddef>

#include "graph/edge_list.hpp"

namespace smp::graph {

/// Number of connected components (isolated vertices count).
std::size_t num_components(const EdgeList& g);

/// Degree statistics of the undirected graph.
struct DegreeStats {
  std::size_t min_degree = 0;
  std::size_t max_degree = 0;
  double mean_degree = 0.0;
};
DegreeStats degree_stats(const EdgeList& g);

/// True if the graph has no self loops and no duplicate undirected edges.
bool is_simple(const EdgeList& g);

}  // namespace smp::graph
