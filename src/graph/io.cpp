#include "graph/io.hpp"

#include "graph/validate.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace smp::graph {

namespace {

/// Reserve space for a declared edge count without trusting it: a corrupt
/// header must never force a huge up-front allocation (or an overflowing
/// count*sizeof multiply) before any edge record is parsed and rejected.
/// Shared by both readers; the cap only bounds the *reservation* — files
/// with more edges than the cap still load, growing geometrically.
void reserve_declared_edges(std::vector<WEdge>& edges, std::uint64_t declared) {
  constexpr std::uint64_t kMaxUpfrontReserve = std::uint64_t{1} << 20;
  edges.reserve(static_cast<std::size_t>(std::min(declared, kMaxUpfrontReserve)));
}

/// Shared tail of both readers: apply the caller's duplicate policy after the
/// file has fully parsed and validated.
EdgeList finish_load(EdgeList g, ParallelEdgePolicy policy) {
  if (policy == ParallelEdgePolicy::kKeepAll) return g;
  return canonicalize_parallel_edges(g);
}

}  // namespace

void write_dimacs(std::ostream& os, const EdgeList& g) {
  os << "c smpmsf graph\n";
  os << "p edge " << g.num_vertices << ' ' << g.num_edges() << '\n';
  os << std::setprecision(std::numeric_limits<Weight>::max_digits10);
  for (const auto& e : g.edges) {
    os << "e " << (e.u + 1) << ' ' << (e.v + 1) << ' ' << e.w << '\n';
  }
}

void write_dimacs_file(const std::string& path, const EdgeList& g) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("write_dimacs_file: cannot open " + path);
  write_dimacs(os, g);
}

EdgeList read_dimacs(std::istream& is, ParallelEdgePolicy policy) {
  EdgeList g;
  bool have_header = false;
  EdgeId declared_edges = 0;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream ls(line);
    char tag = 0;
    ls >> tag;
    if (tag == 'p') {
      std::string fmt;
      VertexId n = 0;
      ls >> fmt >> n >> declared_edges;
      if (!ls || fmt != "edge") {
        throw std::runtime_error("read_dimacs: bad problem line at line " +
                                 std::to_string(lineno));
      }
      g.num_vertices = n;
      reserve_declared_edges(g.edges, declared_edges);
      have_header = true;
    } else if (tag == 'e') {
      if (!have_header) throw std::runtime_error("read_dimacs: edge before problem line");
      VertexId u = 0, v = 0;
      Weight w = 0;
      ls >> u >> v >> w;
      if (!ls || u == 0 || v == 0 || u > g.num_vertices || v > g.num_vertices) {
        throw std::runtime_error("read_dimacs: bad edge at line " + std::to_string(lineno));
      }
      // A nan weight poisons every comparison (and the tie-breaking
      // uniqueness argument all algorithms rely on); inf breaks weight sums.
      if (!std::isfinite(w)) {
        throw std::runtime_error("read_dimacs: non-finite weight at line " +
                                 std::to_string(lineno));
      }
      g.add_edge(u - 1, v - 1, w);
    } else {
      throw std::runtime_error("read_dimacs: unknown line tag at line " +
                               std::to_string(lineno));
    }
  }
  if (!have_header) throw std::runtime_error("read_dimacs: missing problem line");
  if (g.num_edges() != declared_edges) {
    throw std::runtime_error("read_dimacs: edge count mismatch");
  }
  return finish_load(std::move(g), policy);
}

EdgeList read_dimacs_file(const std::string& path, ParallelEdgePolicy policy) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("read_dimacs_file: cannot open " + path);
  return read_dimacs(is, policy);
}

namespace {

constexpr char kMagic[4] = {'S', 'M', 'P', 'G'};
constexpr std::uint32_t kBinaryVersion = 1;

template <class T>
void put(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <class T>
T get(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) throw std::runtime_error("read_binary: truncated input");
  return v;
}

}  // namespace

void write_binary(std::ostream& os, const EdgeList& g) {
  os.write(kMagic, 4);
  put(os, kBinaryVersion);
  put(os, g.num_vertices);
  put(os, static_cast<std::uint64_t>(g.num_edges()));
  for (const auto& e : g.edges) {
    put(os, e.u);
    put(os, e.v);
    put(os, e.w);
  }
  if (!os) throw std::runtime_error("write_binary: stream failure");
}

void write_binary_file(const std::string& path, const EdgeList& g) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("write_binary_file: cannot open " + path);
  write_binary(os, g);
}

EdgeList read_binary(std::istream& is, ParallelEdgePolicy policy) {
  char magic[4] = {};
  is.read(magic, 4);
  if (!is || std::memcmp(magic, kMagic, 4) != 0) {
    throw std::runtime_error("read_binary: bad magic (not an SMPG file)");
  }
  const auto version = get<std::uint32_t>(is);
  if (version != kBinaryVersion) {
    throw std::runtime_error("read_binary: unsupported version " +
                             std::to_string(version));
  }
  EdgeList g;
  g.num_vertices = get<VertexId>(is);
  const auto m = get<std::uint64_t>(is);
  reserve_declared_edges(g.edges, m);
  for (std::uint64_t i = 0; i < m; ++i) {
    WEdge e;
    e.u = get<VertexId>(is);
    e.v = get<VertexId>(is);
    e.w = get<Weight>(is);
    if (e.u >= g.num_vertices || e.v >= g.num_vertices) {
      throw std::runtime_error("read_binary: endpoint out of range");
    }
    if (!std::isfinite(e.w)) {
      throw std::runtime_error("read_binary: non-finite weight");
    }
    g.edges.push_back(e);
  }
  return finish_load(std::move(g), policy);
}

EdgeList read_binary_file(const std::string& path, ParallelEdgePolicy policy) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("read_binary_file: cannot open " + path);
  return read_binary(is, policy);
}

}  // namespace smp::graph
