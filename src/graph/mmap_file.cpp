#include "graph/mmap_file.hpp"

#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

#include "core/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace smp::graph {

namespace {

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw Error(ErrorCode::kInvalidInput,
              "mmap " + path + ": " + what + " (" + std::strerror(errno) + ")");
}

}  // namespace

MmapFile MmapFile::open(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail(path, "cannot open");
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    fail(path, "cannot stat");
  }
  MmapFile m;
  m.path_ = path;
  m.size_ = static_cast<std::size_t>(st.st_size);
  if (m.size_ == 0) {
    ::close(fd);
    return m;
  }
  void* p = ::mmap(nullptr, m.size_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (p == MAP_FAILED) {
    fail(path, "map of " + std::to_string(m.size_) + " bytes failed");
  }
  m.data_ = static_cast<const std::uint8_t*>(p);
  return m;
#else
  (void)path;
  throw Error(ErrorCode::kInvalidInput,
              "mmap " + path + ": not supported on this platform");
#endif
}

MmapFile::~MmapFile() {
#if defined(__unix__) || defined(__APPLE__)
  if (data_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }
#endif
}

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(other.data_), size_(other.size_), path_(std::move(other.path_)) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    this->~MmapFile();
    data_ = other.data_;
    size_ = other.size_;
    path_ = std::move(other.path_);
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

}  // namespace smp::graph
