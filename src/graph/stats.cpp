#include "graph/stats.hpp"

#include <algorithm>
#include <vector>

#include "seq/union_find.hpp"

namespace smp::graph {

std::size_t num_components(const EdgeList& g) {
  smp::seq::UnionFind uf(g.num_vertices);
  for (const auto& e : g.edges) uf.unite(e.u, e.v);
  return uf.num_sets();
}

DegreeStats degree_stats(const EdgeList& g) {
  std::vector<std::size_t> deg(g.num_vertices, 0);
  for (const auto& e : g.edges) {
    ++deg[e.u];
    ++deg[e.v];
  }
  DegreeStats s;
  if (deg.empty()) return s;
  s.min_degree = *std::min_element(deg.begin(), deg.end());
  s.max_degree = *std::max_element(deg.begin(), deg.end());
  s.mean_degree = g.num_vertices == 0
                      ? 0.0
                      : 2.0 * static_cast<double>(g.num_edges()) /
                            static_cast<double>(g.num_vertices);
  return s;
}

bool is_simple(const EdgeList& g) {
  std::vector<std::uint64_t> keys;
  keys.reserve(g.edges.size());
  for (const auto& e : g.edges) {
    if (e.u == e.v) return false;
    VertexId a = e.u, b = e.v;
    if (a > b) std::swap(a, b);
    keys.push_back((static_cast<std::uint64_t>(a) << 32) | b);
  }
  std::sort(keys.begin(), keys.end());
  return std::adjacent_find(keys.begin(), keys.end()) == keys.end();
}

}  // namespace smp::graph
