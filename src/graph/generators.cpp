#include "graph/generators.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "pprim/rng.hpp"

namespace smp::graph {

namespace {

/// Canonical 64-bit key of an undirected vertex pair (u < v after swap).
std::uint64_t pair_key(VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

}  // namespace

EdgeList random_graph(VertexId n, EdgeId m, std::uint64_t seed) {
  if (n < 2 && m > 0) throw std::invalid_argument("random_graph: n < 2 with m > 0");
  const auto max_edges =
      static_cast<EdgeId>(n) * (static_cast<EdgeId>(n) - 1) / 2;
  if (m > max_edges) throw std::invalid_argument("random_graph: m exceeds n*(n-1)/2");

  smp::Rng rng(seed);
  // Draw unique unordered pairs by oversample + sort + unique, topping up
  // until exactly m distinct pairs exist.  For sparse graphs (m << n^2) this
  // terminates in one or two rounds.
  // Drawing exactly the missing count each round (never more) keeps the
  // final set uniform over m-subsets: it is the LEDA "add random edges,
  // skip duplicates" process in batches.
  std::vector<std::uint64_t> keys;
  keys.reserve(static_cast<std::size_t>(m));
  while (keys.size() < m) {
    const EdgeId need = m - static_cast<EdgeId>(keys.size());
    for (EdgeId i = 0; i < need; ++i) {
      const auto u = static_cast<VertexId>(rng.next_below(n));
      auto v = static_cast<VertexId>(rng.next_below(n - 1));
      if (v >= u) ++v;  // uniform over v != u
      keys.push_back(pair_key(u, v));
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  }

  EdgeList g(n);
  g.edges.reserve(m);
  for (const std::uint64_t k : keys) {
    const auto u = static_cast<VertexId>(k >> 32);
    const auto v = static_cast<VertexId>(k & 0xFFFFFFFFu);
    g.add_edge(u, v, rng.next_double());
  }
  return g;
}

EdgeList mesh2d(VertexId rows, VertexId cols, std::uint64_t seed) {
  return mesh2d_p(rows, cols, 1.0, seed);
}

EdgeList mesh2d_p(VertexId rows, VertexId cols, double p, std::uint64_t seed) {
  smp::Rng rng(seed);
  const auto n = static_cast<EdgeId>(rows) * cols;
  if (n > kInvalidVertex) throw std::invalid_argument("mesh2d_p: too many vertices");
  EdgeList g(static_cast<VertexId>(n));
  g.edges.reserve(static_cast<std::size_t>(2.0 * static_cast<double>(n) * p));
  const auto id = [cols](VertexId r, VertexId c) {
    return r * cols + c;
  };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols && rng.next_double() < p) {
        g.add_edge(id(r, c), id(r, c + 1), rng.next_double());
      }
      if (r + 1 < rows && rng.next_double() < p) {
        g.add_edge(id(r, c), id(r + 1, c), rng.next_double());
      }
    }
  }
  return g;
}

EdgeList mesh3d_p(VertexId nx, VertexId ny, VertexId nz, double p, std::uint64_t seed) {
  smp::Rng rng(seed);
  const auto n = static_cast<EdgeId>(nx) * ny * nz;
  if (n > kInvalidVertex) throw std::invalid_argument("mesh3d_p: too many vertices");
  EdgeList g(static_cast<VertexId>(n));
  g.edges.reserve(static_cast<std::size_t>(3.0 * static_cast<double>(n) * p));
  const auto id = [ny, nz](VertexId x, VertexId y, VertexId z) {
    return (x * ny + y) * nz + z;
  };
  for (VertexId x = 0; x < nx; ++x) {
    for (VertexId y = 0; y < ny; ++y) {
      for (VertexId z = 0; z < nz; ++z) {
        if (x + 1 < nx && rng.next_double() < p) {
          g.add_edge(id(x, y, z), id(x + 1, y, z), rng.next_double());
        }
        if (y + 1 < ny && rng.next_double() < p) {
          g.add_edge(id(x, y, z), id(x, y + 1, z), rng.next_double());
        }
        if (z + 1 < nz && rng.next_double() < p) {
          g.add_edge(id(x, y, z), id(x, y, z + 1), rng.next_double());
        }
      }
    }
  }
  return g;
}

}  // namespace smp::graph
