#include "graph/flex_adj_list.hpp"

#include <numeric>

#include "pprim/parallel_for.hpp"
#include "pprim/sample_sort.hpp"

namespace smp::graph {

FlexAdjList::FlexAdjList(const CsrGraph& csr)
    : csr_(&csr), num_super_(csr.num_vertices()) {
  const VertexId n = num_super_;
  label_.resize(n);
  head_.resize(n);
  tail_.resize(n);
  next_.assign(n, kInvalidVertex);
  std::iota(label_.begin(), label_.end(), VertexId{0});
  std::iota(head_.begin(), head_.end(), VertexId{0});
  std::iota(tail_.begin(), tail_.end(), VertexId{0});
}

std::size_t FlexAdjList::member_count(VertexId s) const {
  std::size_t c = 0;
  for_each_member(s, [&](VertexId) { ++c; });
  return c;
}

void FlexAdjList::contract(ThreadTeam& team, std::span<const VertexId> new_label,
                           VertexId new_n) {
  const auto cur_n = static_cast<VertexId>(new_label.size());

  // Sort the current supervertices by their new label so merging groups are
  // contiguous ("compact-graph first sorts the n vertices", §3).
  std::vector<VertexId> order(cur_n);
  std::iota(order.begin(), order.end(), VertexId{0});
  sample_sort(team, order, [&](VertexId a, VertexId b) {
    return new_label[a] != new_label[b] ? new_label[a] < new_label[b] : a < b;
  });

  // Group starts: new labels are dense, every group non-empty.
  std::vector<VertexId> group_start(static_cast<std::size_t>(new_n) + 1, 0);
  parallel_for(team, cur_n, [&](std::size_t i) {
    if (i == 0 || new_label[order[i]] != new_label[order[i - 1]]) {
      group_start[new_label[order[i]]] = static_cast<VertexId>(i);
    }
  });
  group_start[new_n] = cur_n;

  // O(n) pointer appends: chain the member lists of each group.
  std::vector<VertexId> new_head(new_n);
  std::vector<VertexId> new_tail(new_n);
  parallel_for_dynamic(team, new_n, 64, [&](std::size_t s) {
    const VertexId gs = group_start[s];
    const VertexId ge = group_start[s + 1];
    new_head[s] = head_[order[gs]];
    VertexId t = tail_[order[gs]];
    for (VertexId gi = gs + 1; gi < ge; ++gi) {
      const VertexId o = order[gi];
      next_[t] = head_[o];
      t = tail_[o];
    }
    new_tail[s] = t;
  });
  head_.swap(new_head);
  tail_.swap(new_tail);
  head_.resize(new_n);
  tail_.resize(new_n);

  // Lookup-table update: original vertex → new supervertex.
  parallel_for(team, label_.size(), [&](std::size_t x) {
    label_[x] = new_label[label_[x]];
  });
  num_super_ = new_n;
}

}  // namespace smp::graph
