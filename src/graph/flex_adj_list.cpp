#include "graph/flex_adj_list.hpp"

#include <numeric>

#include "pprim/parallel_for.hpp"
#include "pprim/sample_sort.hpp"

namespace smp::graph {

FlexAdjList::FlexAdjList(const CsrGraph& csr)
    : FlexAdjList(csr.num_vertices(), csr.offsets()) {}

FlexAdjList::FlexAdjList(VertexId n, std::span<const EdgeId> offsets)
    : offsets_(offsets), num_super_(n) {
  label_.resize(n);
  head_.resize(n);
  tail_.resize(n);
  next_.assign(n, kInvalidVertex);
  std::iota(label_.begin(), label_.end(), VertexId{0});
  std::iota(head_.begin(), head_.end(), VertexId{0});
  std::iota(tail_.begin(), tail_.end(), VertexId{0});
  live_end_.assign(offsets.begin() + 1, offsets.end());
}

EdgeId FlexAdjList::live_arcs() const {
  EdgeId total = 0;
  for (std::size_t x = 0; x < live_end_.size(); ++x) {
    total += live_end_[x] - offsets_[x];
  }
  return total;
}

std::size_t FlexAdjList::member_count(VertexId s) const {
  std::size_t c = 0;
  for_each_member(s, [&](VertexId) { ++c; });
  return c;
}

void FlexAdjList::contract(ThreadTeam& team, std::span<const VertexId> new_label,
                           VertexId new_n) {
  ContractScratch scratch;
  team.run([&](TeamCtx& ctx) { contract(ctx, new_label, new_n, scratch); });
}

void FlexAdjList::contract(TeamCtx& ctx, std::span<const VertexId> new_label,
                           VertexId new_n, ContractScratch& s) {
  const auto cur_n = static_cast<VertexId>(new_label.size());
  if (ctx.tid() == 0) {
    s.order.resize(cur_n);
    s.group_start.resize(static_cast<std::size_t>(new_n) + 1);
    s.new_head.resize(new_n);
    s.new_tail.resize(new_n);
    s.chain_cursor.store(0, std::memory_order_relaxed);
  }
  ctx.barrier();

  // Sort the current supervertices by their new label so merging groups are
  // contiguous ("compact-graph first sorts the n vertices", §3).
  for_range(ctx, cur_n, [&](std::size_t i) {
    s.order[i] = static_cast<VertexId>(i);
  });
  ctx.barrier();
  sample_sort_in_region(ctx, s.order, s.sort, [&](VertexId a, VertexId b) {
    return new_label[a] != new_label[b] ? new_label[a] < new_label[b] : a < b;
  });

  // Group starts: new labels are dense, every group non-empty.
  for_range(ctx, cur_n, [&](std::size_t i) {
    if (i == 0 || new_label[s.order[i]] != new_label[s.order[i - 1]]) {
      s.group_start[new_label[s.order[i]]] = static_cast<VertexId>(i);
    }
  });
  if (ctx.tid() == 0) s.group_start[new_n] = cur_n;
  ctx.barrier();

  // O(n) pointer appends: chain the member lists of each group.
  for_range_dynamic(ctx, s.chain_cursor, new_n, 64, [&](std::size_t sv) {
    const VertexId gs = s.group_start[sv];
    const VertexId ge = s.group_start[sv + 1];
    s.new_head[sv] = head_[s.order[gs]];
    VertexId t = tail_[s.order[gs]];
    for (VertexId gi = gs + 1; gi < ge; ++gi) {
      const VertexId o = s.order[gi];
      next_[t] = head_[o];
      t = tail_[o];
    }
    s.new_tail[sv] = t;
  });
  ctx.barrier();

  // Publish the new head/tail arrays (new_n ≤ cur_n, so in-place copy fits)
  // and update the lookup table: original vertex → new supervertex.
  for_range(ctx, new_n, [&](std::size_t sv) {
    head_[sv] = s.new_head[sv];
    tail_[sv] = s.new_tail[sv];
  });
  for_range(ctx, label_.size(), [&](std::size_t x) {
    label_[x] = new_label[label_[x]];
  });
  ctx.barrier();
  if (ctx.tid() == 0) {
    head_.resize(new_n);
    tail_.resize(new_n);
    num_super_ = new_n;
  }
  ctx.barrier();
}

}  // namespace smp::graph
