#pragma once

#include <vector>

#include "graph/edge_list.hpp"

namespace smp::graph {

/// Cut edges (bridges) and articulation points of an undirected graph, by
/// one iterative Tarjan DFS over the CSR form; O(n + m).
///
/// Bridges relate tightly to spanning forests: a bridge lies in *every*
/// spanning forest, so `bridges(g) ⊆ msf(g).edge_ids` is an invariant the
/// test suite checks across all MSF algorithms.
struct CutStructure {
  /// Indices into EdgeList::edges of the bridge edges, ascending.
  std::vector<EdgeId> bridges;
  /// Vertices whose removal disconnects their component, ascending.
  std::vector<VertexId> articulation_points;
};

CutStructure find_cut_structure(const EdgeList& g);

}  // namespace smp::graph
