#include "graph/csr.hpp"

namespace smp::graph {

CsrGraph::CsrGraph(const EdgeList& g) {
  const VertexId n = g.num_vertices;
  offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& e : g.edges) {
    ++offsets_[e.u + 1];
    ++offsets_[e.v + 1];
  }
  for (std::size_t i = 1; i < offsets_.size(); ++i) offsets_[i] += offsets_[i - 1];

  const EdgeId arcs = offsets_.back();
  targets_.resize(arcs);
  weights_.resize(arcs);
  arc_orig_.resize(arcs);
  std::vector<EdgeId> cursor(offsets_.begin(), offsets_.end() - 1);
  for (EdgeId i = 0; i < g.edges.size(); ++i) {
    const WEdge& e = g.edges[i];
    EdgeId a = cursor[e.u]++;
    targets_[a] = e.v;
    weights_[a] = e.w;
    arc_orig_[a] = i;
    a = cursor[e.v]++;
    targets_[a] = e.u;
    weights_[a] = e.w;
    arc_orig_[a] = i;
  }
}

}  // namespace smp::graph
