#pragma once

#include <vector>

#include "graph/edge_list.hpp"

namespace smp::graph {

/// Graph surgery helpers used by applications and tests.

/// The subgraph induced by `keep[v] == true`, with vertices renumbered
/// densely in ascending original order.  `old_of_new` (optional out) maps
/// new ids back to original ids.
EdgeList induced_subgraph(const EdgeList& g, const std::vector<bool>& keep,
                          std::vector<VertexId>* old_of_new = nullptr);

/// The subgraph of the largest connected component (ties broken toward the
/// component with the smallest vertex id).
EdgeList largest_component(const EdgeList& g,
                           std::vector<VertexId>* old_of_new = nullptr);

/// A copy with every weight negated.  minimum_spanning_forest of the result
/// is the *maximum* spanning forest of `g` (same edge ids; weights flip
/// back trivially).
EdgeList negate_weights(const EdgeList& g);

}  // namespace smp::graph
