#pragma once

#include <span>
#include <string>

#include "graph/edge_list.hpp"

namespace smp::graph {

/// Result of checking a claimed minimum spanning forest.
struct ForestCheck {
  bool ok = false;
  std::string error;          ///< empty when ok
  std::size_t num_trees = 0;  ///< number of trees in the forest
  Weight total_weight = 0;    ///< sum of forest edge weights

  explicit operator bool() const { return ok; }
};

/// Structural validation of `forest` against `g`:
///   * every forest edge is an edge of g (same endpoints and weight),
///   * the forest is acyclic,
///   * the forest is maximal: it has exactly n − #components(g) edges,
///     i.e. it spans every connected component.
///
/// Minimality is *not* checked here (use verify_cut_property or compare the
/// total weight with a reference algorithm).
ForestCheck validate_spanning_forest(const EdgeList& g, std::span<const WEdge> forest);

/// Full minimality check via the cut property: for every forest edge e, e is
/// the lightest edge (under WeightOrder with the forest edge's position as
/// tie-break proxy) crossing the cut defined by removing e from its tree.
/// O(m · t) where t = forest size — use on small graphs in tests only.
bool verify_cut_property(const EdgeList& g, std::span<const WEdge> forest,
                         std::string* error = nullptr);

}  // namespace smp::graph
