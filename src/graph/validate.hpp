#pragma once

#include <span>
#include <string>

#include "graph/edge_list.hpp"

namespace smp::graph {

/// Result of checking a claimed minimum spanning forest.
struct ForestCheck {
  bool ok = false;
  std::string error;          ///< empty when ok
  std::size_t num_trees = 0;  ///< number of trees in the forest
  Weight total_weight = 0;    ///< sum of forest edge weights

  explicit operator bool() const { return ok; }
};

/// Structural validation of `forest` against `g`:
///   * every forest edge is an edge of g (same endpoints and weight),
///   * the forest is acyclic,
///   * the forest is maximal: it has exactly n − #components(g) edges,
///     i.e. it spans every connected component.
///
/// Minimality is *not* checked here (use verify_cut_property or compare the
/// total weight with a reference algorithm).
ForestCheck validate_spanning_forest(const EdgeList& g, std::span<const WEdge> forest);

/// Full minimality check via the cut property: for every forest edge e, e is
/// the lightest edge (under WeightOrder with the forest edge's position as
/// tie-break proxy) crossing the cut defined by removing e from its tree.
/// O(m · t) where t = forest size — use on small graphs in tests only.
bool verify_cut_property(const EdgeList& g, std::span<const WEdge> forest,
                         std::string* error = nullptr);

/// Deterministic parallel-edge canonicalization.
///
/// Among every set of edges with the same unordered endpoint pair, exactly
/// one edge is kept: the one minimal under WeightOrder ⟨weight, edge-id⟩ —
/// the only member of the set that can ever enter the minimum spanning
/// forest (any heavier/later parallel edge closes a 2-cycle in which it is
/// the maximum).  Kept edges preserve their relative input order, so the
/// result is a deterministic function of the input edge list alone —
/// dynamic batch apply (and delete-by-endpoints update traces) depend on
/// this canonical choice being reproducible across runs and readers.
///
/// `kept_ids` (optional out) maps each position in the returned edge list
/// to the index of that edge in `g.edges`.  Self-loops are preserved as-is
/// (rejecting them is validate_request's job, not this transform's).
EdgeList canonicalize_parallel_edges(const EdgeList& g,
                                     std::vector<EdgeId>* kept_ids = nullptr);

}  // namespace smp::graph
