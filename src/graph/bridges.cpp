#include "graph/bridges.hpp"

#include <algorithm>

#include "graph/csr.hpp"

namespace smp::graph {

CutStructure find_cut_structure(const EdgeList& g) {
  const CsrGraph csr(g);
  const VertexId n = csr.num_vertices();
  CutStructure res;

  constexpr std::uint32_t kUnvisited = 0xFFFFFFFFu;
  std::vector<std::uint32_t> disc(n, kUnvisited);  // discovery time
  std::vector<std::uint32_t> low(n, 0);
  std::vector<char> is_ap(n, 0);

  // Iterative DFS frame: vertex, index of next arc to scan, the arc's
  // original edge id used to enter the vertex (to skip the tree-parent edge
  // without being confused by parallel edges).
  struct Frame {
    VertexId v;
    EdgeId arc;
    EdgeId entered_via;  // original edge id, kInvalidEdge at roots
  };
  std::vector<Frame> stack;
  std::uint32_t timer = 0;

  for (VertexId root = 0; root < n; ++root) {
    if (disc[root] != kUnvisited) continue;
    std::uint32_t root_children = 0;
    disc[root] = low[root] = timer++;
    stack.push_back({root, csr.offsets()[root], kInvalidEdge});
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.arc < csr.offsets()[f.v + 1]) {
        const EdgeId a = f.arc++;
        const VertexId u = csr.targets()[a];
        const EdgeId orig = csr.arc_origs()[a];
        if (orig == f.entered_via) continue;  // the tree edge upward
        if (disc[u] == kUnvisited) {
          if (f.v == root) ++root_children;
          disc[u] = low[u] = timer++;
          stack.push_back({u, csr.offsets()[u], orig});
        } else {
          low[f.v] = std::min(low[f.v], disc[u]);  // back edge
        }
      } else {
        // Done with f.v: fold its low into the parent and test the edge.
        const Frame done = f;
        stack.pop_back();
        if (!stack.empty()) {
          Frame& parent = stack.back();
          low[parent.v] = std::min(low[parent.v], low[done.v]);
          if (low[done.v] > disc[parent.v]) res.bridges.push_back(done.entered_via);
          if (parent.v != root && low[done.v] >= disc[parent.v]) is_ap[parent.v] = 1;
        }
      }
    }
    if (root_children >= 2) is_ap[root] = 1;
  }

  std::sort(res.bridges.begin(), res.bridges.end());
  for (VertexId v = 0; v < n; ++v) {
    if (is_ap[v]) res.articulation_points.push_back(v);
  }
  return res;
}

}  // namespace smp::graph
