#include <cmath>
#include <stdexcept>
#include <vector>

#include "graph/generators.hpp"
#include "pprim/rng.hpp"

namespace smp::graph {

namespace {

/// Chain `verts` with weights strictly increasing along the chain, all inside
/// [base, base + 0.9).  Monotone weights make a chain contract to a single
/// supervertex in one Borůvka iteration (every vertex's minimum incident edge
/// points "left", so the picked edges connect the whole chain).
void add_chain(EdgeList& g, const std::vector<VertexId>& verts, std::size_t lo,
               std::size_t hi, double base) {
  const std::size_t len = hi - lo;
  if (len < 2) return;
  const double step = 0.9 / static_cast<double>(len);
  for (std::size_t j = lo + 1; j < hi; ++j) {
    g.add_edge(verts[j - 1], verts[j], base + static_cast<double>(j - lo) * step);
  }
}

}  // namespace

EdgeList structured_graph(int variant, VertexId n, std::uint64_t seed) {
  if (variant < 0 || variant > 3) throw std::invalid_argument("structured_graph: variant 0..3");
  if (n == 0) return EdgeList(0);

  smp::Rng rng(seed);
  EdgeList g(n);
  g.edges.reserve(static_cast<std::size_t>(n) - 1);

  std::vector<VertexId> active(n);
  for (VertexId i = 0; i < n; ++i) active[i] = i;
  std::vector<VertexId> next;
  double base = 0.0;

  while (active.size() > 1) {
    const std::size_t sz = active.size();
    next.clear();
    switch (variant) {
      case 0: {  // pairs: vertex count exactly halves (iteration-count worst case)
        for (std::size_t i = 0; i < sz; i += 2) {
          if (i + 1 < sz) {
            g.add_edge(active[i], active[i + 1], base + 0.9 * rng.next_double());
          }
          next.push_back(active[i]);
        }
        break;
      }
      case 1: {  // chains of ~sqrt(sz) vertices
        const auto gsz = static_cast<std::size_t>(
            std::ceil(std::sqrt(static_cast<double>(sz))));
        for (std::size_t lo = 0; lo < sz; lo += gsz) {
          const std::size_t hi = std::min(lo + gsz, sz);
          add_chain(g, active, lo, hi, base);
          next.push_back(active[lo]);
        }
        break;
      }
      case 2: {  // half a chain, half pairs
        if (sz <= 3) {
          add_chain(g, active, 0, sz, base);
          next.push_back(active[0]);
          break;
        }
        const std::size_t half = sz / 2;
        add_chain(g, active, 0, half, base);
        next.push_back(active[0]);
        for (std::size_t i = half; i < sz; i += 2) {
          if (i + 1 < sz) {
            g.add_edge(active[i], active[i + 1], base + 0.9 * rng.next_double());
          }
          next.push_back(active[i]);
        }
        break;
      }
      case 3: {  // complete binary trees of ~sqrt(sz) vertices
        const auto gsz = static_cast<std::size_t>(
            std::ceil(std::sqrt(static_cast<double>(sz))));
        for (std::size_t lo = 0; lo < sz; lo += gsz) {
          const std::size_t hi = std::min(lo + gsz, sz);
          const std::size_t len = hi - lo;
          const double step = 0.9 / static_cast<double>(len + 1);
          for (std::size_t j = 1; j < len; ++j) {  // heap-shaped tree on the group
            g.add_edge(active[lo + j], active[lo + (j - 1) / 2],
                       base + static_cast<double>(j) * step);
          }
          next.push_back(active[lo]);
        }
        break;
      }
      default:
        break;
    }
    active.swap(next);
    base += 1.0;
  }
  return g;
}

}  // namespace smp::graph
