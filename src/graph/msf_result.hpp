#pragma once

#include <cstddef>
#include <vector>

#include "graph/types.hpp"

namespace smp::graph {

/// Output of every MSF algorithm in this repo, sequential or parallel.
///
/// Because all algorithms share one total order on edges (WeightOrder: weight
/// with input-edge-index tie-break), the minimum spanning forest is unique
/// and `edge_ids` — sorted — must be *identical* across algorithms.  The test
/// suite checks exactly that.
struct MsfResult {
  /// Forest edges, endpoints in the caller's vertex ids.
  std::vector<WEdge> edges;
  /// For each forest edge, the index of the matching edge in the input
  /// EdgeList::edges (parallel to `edges`).
  std::vector<EdgeId> edge_ids;
  /// Sum of forest edge weights.
  Weight total_weight = 0;
  /// Number of trees = number of connected components of the input
  /// (isolated vertices count as single-vertex trees).
  std::size_t num_trees = 0;
  /// True when the dispatcher degraded a failing parallel run to sequential
  /// Kruskal (see MsfOptions::allow_sequential_fallback); benches and the
  /// CLI report it so degraded timings are never mistaken for parallel ones.
  bool degraded_to_sequential = false;
};

}  // namespace smp::graph
