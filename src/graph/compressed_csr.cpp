#include "graph/compressed_csr.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>

#include "core/error.hpp"

namespace smp::graph {

namespace {

constexpr char kMagic[4] = {'S', 'M', 'P', 'Z'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kFlagByteOff64 = 1u << 0;
constexpr std::size_t kHeaderBytes = 32;

constexpr std::size_t align8(std::size_t x) { return (x + 7) & ~std::size_t{7}; }

[[noreturn]] void fail(const std::string& path, const std::string& what,
                       std::uint64_t offset) {
  throw Error(ErrorCode::kInvalidInput, "compressed csr " + path + ": " +
                                            what + " at offset " +
                                            std::to_string(offset));
}

struct SortItem {
  VertexId u, v;
  Weight w;
  EdgeId orig;
};

}  // namespace

void CompressedCsr::adopt_views(bool off64) {
  off64_ = off64;
  edge_off_ = own_edge_off_.data();
  if (off64) {
    byte_off64_ = own_byte_off64_.data();
    byte_off32_ = nullptr;
  } else {
    byte_off32_ = own_byte_off32_.data();
    byte_off64_ = nullptr;
  }
  adj_ = own_adj_.data();
  weights_ = own_weights_.data();
}

CompressedCsr CompressedCsr::build(const EdgeList& g,
                                   std::vector<EdgeId>* kept_input_ids) {
  if (g.num_edges() > std::numeric_limits<std::uint32_t>::max()) {
    throw Error(ErrorCode::kInvalidInput,
                "CompressedCsr::build: more than 2^32-1 edges");
  }
  std::vector<SortItem> items;
  items.reserve(g.edges.size());
  for (EdgeId i = 0; i < g.num_edges(); ++i) {
    const WEdge& e = g.edges[i];
    const VertexId u = std::min(e.u, e.v);
    const VertexId v = std::max(e.u, e.v);
    items.push_back(SortItem{u, v, e.w, i});
  }
  // Canonical order: by row, then target; parallel edges resolve to the
  // WeightOrder-minimal one, the same winner canonicalize_parallel_edges
  // keeps.
  std::sort(items.begin(), items.end(),
            [](const SortItem& a, const SortItem& b) {
              if (a.u != b.u) return a.u < b.u;
              if (a.v != b.v) return a.v < b.v;
              return WeightOrder{a.w, a.orig} < WeightOrder{b.w, b.orig};
            });

  CompressedCsr c;
  c.n_ = g.num_vertices;
  c.own_edge_off_.assign(std::size_t{c.n_} + 1, 0);
  std::vector<std::uint64_t> byte_off(std::size_t{c.n_} + 1, 0);
  c.own_adj_.reserve(items.size() * 2);
  c.own_weights_.reserve(items.size());
  if (kept_input_ids != nullptr) {
    kept_input_ids->clear();
    kept_input_ids->reserve(items.size());
  }

  VertexId row = 0;
  VertexId prev_v = 0;
  bool have_prev = false;
  EdgeId m = 0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const SortItem& it = items[i];
    if (i > 0 && it.u == items[i - 1].u && it.v == items[i - 1].v) {
      continue;  // parallel edge: the sort already put the winner first
    }
    while (row < it.u) {
      ++row;
      c.own_edge_off_[row] = static_cast<std::uint32_t>(m);
      byte_off[row] = c.own_adj_.size();
      have_prev = false;
    }
    const VertexId gap = have_prev ? it.v - prev_v : it.v - it.u;
    varint_append_u32(c.own_adj_, gap);
    c.own_weights_.push_back(it.w);
    if (kept_input_ids != nullptr) kept_input_ids->push_back(it.orig);
    prev_v = it.v;
    have_prev = true;
    ++m;
  }
  while (row < c.n_) {
    ++row;
    c.own_edge_off_[row] = static_cast<std::uint32_t>(m);
    byte_off[row] = c.own_adj_.size();
  }
  c.m_ = m;
  c.adj_bytes_ = c.own_adj_.size();

  const bool off64 =
      c.adj_bytes_ > std::numeric_limits<std::uint32_t>::max();
  if (off64) {
    c.own_byte_off64_ = std::move(byte_off);
  } else {
    c.own_byte_off32_.assign(byte_off.begin(), byte_off.end());
  }
  c.adopt_views(off64);
  return c;
}

VertexId CompressedCsr::source_of(EdgeId e) const {
  // First row whose end offset exceeds e.
  const std::uint32_t* it =
      std::upper_bound(edge_off_ + 1, edge_off_ + n_ + 1,
                       static_cast<std::uint32_t>(e));
  return static_cast<VertexId>(it - (edge_off_ + 1));
}

void CompressedCsr::decode_targets(VertexId* out) const {
  static_assert(sizeof(VertexId) == sizeof(std::uint32_t));
  // Pass 1: one bulk varint decode of the whole region (SIMD fast path) —
  // rows are concatenated, so gaps land in implicit edge-id order.
  varint_decode_bulk(adj_, adj_ + adj_bytes_, m_, out);
  // Pass 2: per-row prefix reconstruction, v_i = u + sum(gaps 0..i).
  for (VertexId u = 0; u < n_; ++u) {
    VertexId acc = u;
    const EdgeId e_end = edge_off_[u + 1];
    for (EdgeId e = edge_off_[u]; e < e_end; ++e) {
      acc += out[e];
      out[e] = acc;
    }
  }
}

void CompressedCsr::decode_row(VertexId u, VertexId* out) const {
  const std::uint8_t* p = adj_ + byte_off(u);
  VertexId acc = u;
  const std::uint32_t deg = out_degree(u);
  for (std::uint32_t k = 0; k < deg; ++k) {
    acc += decode_gap(p);
    out[k] = acc;
  }
}

EdgeList CompressedCsr::decode_edge_list() const {
  EdgeList g(n_);
  g.edges.reserve(m_);
  for_each_edge([&](EdgeId, VertexId u, VertexId v, Weight w) {
    g.edges.push_back(WEdge{u, v, w});
  });
  return g;
}

std::size_t CompressedCsr::structure_bytes() const {
  const std::size_t per_off = off64_ ? 8 : 4;
  return adj_bytes_ + (std::size_t{n_} + 1) * (4 + per_off);
}

void CompressedCsr::write_file(const std::string& path) const {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) {
    throw Error(ErrorCode::kInvalidInput,
                "compressed csr " + path + ": cannot open for write");
  }
  std::uint32_t flags = off64_ ? kFlagByteOff64 : 0;
  std::uint64_t m64 = m_, ab = adj_bytes_;
  os.write(kMagic, 4);
  os.write(reinterpret_cast<const char*>(&kVersion), 4);
  os.write(reinterpret_cast<const char*>(&flags), 4);
  os.write(reinterpret_cast<const char*>(&n_), 4);
  os.write(reinterpret_cast<const char*>(&m64), 8);
  os.write(reinterpret_cast<const char*>(&ab), 8);
  const char pad[8] = {};
  auto pad_to8 = [&](std::size_t written) {
    const std::size_t aligned = align8(written);
    if (aligned != written) {
      os.write(pad, static_cast<std::streamsize>(aligned - written));
    }
    return aligned;
  };
  std::size_t sz = (std::size_t{n_} + 1) * 4;
  os.write(reinterpret_cast<const char*>(edge_off_),
           static_cast<std::streamsize>(sz));
  pad_to8(sz);
  sz = (std::size_t{n_} + 1) * (off64_ ? 8 : 4);
  os.write(off64_ ? reinterpret_cast<const char*>(byte_off64_)
                  : reinterpret_cast<const char*>(byte_off32_),
           static_cast<std::streamsize>(sz));
  pad_to8(sz);
  os.write(reinterpret_cast<const char*>(adj_),
           static_cast<std::streamsize>(adj_bytes_));
  pad_to8(adj_bytes_);
  os.write(reinterpret_cast<const char*>(weights_),
           static_cast<std::streamsize>(sizeof(Weight) * m_));
  if (!os) {
    throw Error(ErrorCode::kInvalidInput,
                "compressed csr " + path + ": write failed");
  }
}

CompressedCsr CompressedCsr::open_file(const std::string& path) {
  MmapFile map = MmapFile::open(path);
  const std::uint8_t* base = map.data();
  const std::size_t size = map.size();
  if (size < kHeaderBytes) fail(path, "short header", size);
  if (std::memcmp(base, kMagic, 4) != 0) {
    fail(path, "bad magic (not an SMPZ file)", 0);
  }
  std::uint32_t version, flags, n;
  std::uint64_t m, adj_bytes;
  std::memcpy(&version, base + 4, 4);
  std::memcpy(&flags, base + 8, 4);
  std::memcpy(&n, base + 12, 4);
  std::memcpy(&m, base + 16, 8);
  std::memcpy(&adj_bytes, base + 24, 8);
  if (version != kVersion) fail(path, "unsupported version", 4);
  if ((flags & ~kFlagByteOff64) != 0) fail(path, "unknown flags", 8);
  if (m > std::numeric_limits<std::uint32_t>::max()) {
    fail(path, "edge count exceeds format limit", 16);
  }
  const bool off64 = (flags & kFlagByteOff64) != 0;

  const std::size_t n1 = std::size_t{n} + 1;
  const std::size_t edge_off_at = kHeaderBytes;
  const std::size_t byte_off_at = align8(edge_off_at + n1 * 4);
  const std::size_t adj_at = align8(byte_off_at + n1 * (off64 ? 8 : 4));
  const std::size_t weights_at = align8(adj_at + adj_bytes);
  const std::size_t expect = weights_at + sizeof(Weight) * m;
  if (size != expect) {
    fail(path,
         "file size " + std::to_string(size) + " != expected " +
             std::to_string(expect) + " (truncated or trailing bytes)",
         size < expect ? size : expect);
  }

  CompressedCsr c;
  c.n_ = n;
  c.m_ = m;
  c.adj_bytes_ = adj_bytes;
  c.off64_ = off64;
  c.edge_off_ = reinterpret_cast<const std::uint32_t*>(base + edge_off_at);
  if (off64) {
    c.byte_off64_ = reinterpret_cast<const std::uint64_t*>(base + byte_off_at);
  } else {
    c.byte_off32_ = reinterpret_cast<const std::uint32_t*>(base + byte_off_at);
  }
  c.adj_ = base + adj_at;
  c.weights_ = reinterpret_cast<const Weight*>(base + weights_at);

  // --- one-time validation: everything the trusted decoders assume ---
  if (c.edge_off_[0] != 0) fail(path, "edge_offsets[0] != 0", edge_off_at);
  if (c.edge_off_[n] != m) {
    fail(path, "edge_offsets[n] != m", edge_off_at + n1 * 4 - 4);
  }
  if (c.byte_off(0) != 0) fail(path, "byte_offsets[0] != 0", byte_off_at);
  if (c.byte_off(n) != adj_bytes) {
    fail(path, "byte_offsets[n] != adj_bytes",
         byte_off_at + (n1 - 1) * (off64 ? 8 : 4));
  }
  for (VertexId u = 0; u < n; ++u) {
    if (c.edge_off_[u + 1] < c.edge_off_[u]) {
      fail(path, "edge_offsets not monotone at vertex " + std::to_string(u),
           edge_off_at + (std::size_t{u} + 1) * 4);
    }
    const std::uint64_t b0 = c.byte_off(u), b1 = c.byte_off(u + 1);
    if (b1 < b0 || b1 > adj_bytes) {
      fail(path, "byte_offsets not monotone at vertex " + std::to_string(u),
           byte_off_at + (std::size_t{u} + 1) * (off64 ? 8 : 4));
    }
    // Structural varint check first (bounds the trusted decoder), then the
    // semantic row decode (range + strict monotonicity of targets).
    const std::uint8_t* row = c.adj_ + b0;
    const std::uint8_t* row_end = c.adj_ + b1;
    const std::uint32_t deg = c.edge_off_[u + 1] - c.edge_off_[u];
    if (!varint_validate_region(row, row_end, deg)) {
      fail(path, "malformed varint row at vertex " + std::to_string(u),
           adj_at + b0);
    }
    std::uint64_t v = u;
    for (std::uint32_t k = 0; k < deg; ++k) {
      const std::uint32_t gap = varint_decode_u32(row);
      if (k > 0 && gap == 0) {
        fail(path, "duplicate target at vertex " + std::to_string(u),
             adj_at + b0);
      }
      v += gap;
      if (v >= n) {
        fail(path, "target out of range at vertex " + std::to_string(u),
             adj_at + b0);
      }
    }
  }
  for (EdgeId e = 0; e < m; ++e) {
    if (!std::isfinite(c.weights_[e])) {
      fail(path, "non-finite weight for edge " + std::to_string(e),
           weights_at + e * sizeof(Weight));
    }
  }
  c.map_ = std::move(map);
  // Re-point views: moving the MmapFile does not move the mapping itself
  // (the pointers stay valid), but keep them derived from the member for
  // clarity.
  return c;
}

namespace {

constexpr std::size_t kWriterBufEdges = std::size_t{1} << 16;

void flush_bytes(std::FILE* f, const void* data, std::size_t bytes,
                 const std::string& path) {
  if (bytes != 0 && std::fwrite(data, 1, bytes, f) != bytes) {
    throw Error(ErrorCode::kInvalidInput,
                "compressed csr " + path + ": side-file write failed");
  }
}

}  // namespace

CompressedCsrWriter::CompressedCsrWriter(std::string path, VertexId n)
    : path_(std::move(path)), n_(n) {
  edge_off_.assign(std::size_t{n_} + 1, 0);
  byte_off_.assign(std::size_t{n_} + 1, 0);
  adj_file_ = std::fopen((path_ + ".adj").c_str(), "wb+");
  w_file_ = adj_file_ != nullptr ? std::fopen((path_ + ".w").c_str(), "wb+")
                                 : nullptr;
  if (adj_file_ == nullptr || w_file_ == nullptr) {
    if (adj_file_ != nullptr) std::fclose(adj_file_);
    adj_file_ = nullptr;
    throw Error(ErrorCode::kInvalidInput,
                "compressed csr " + path_ + ": cannot open side files");
  }
}

CompressedCsrWriter::~CompressedCsrWriter() {
  if (adj_file_ != nullptr) std::fclose(adj_file_);
  if (w_file_ != nullptr) std::fclose(w_file_);
  std::remove((path_ + ".adj").c_str());
  std::remove((path_ + ".w").c_str());
}

void CompressedCsrWriter::catch_up_rows(VertexId u) {
  while (row_ < u) {
    ++row_;
    edge_off_[row_] = static_cast<std::uint32_t>(m_);
    byte_off_[row_] = adj_bytes_;
    have_prev_ = false;
  }
}

void CompressedCsrWriter::add_edge(VertexId u, VertexId v, Weight w) {
  if (u >= v || v >= n_ || !std::isfinite(w)) {
    throw Error(ErrorCode::kInvalidInput,
                "compressed csr " + path_ + ": bad edge (" + std::to_string(u) +
                    ", " + std::to_string(v) + ") at edge " +
                    std::to_string(m_) +
                    " (need u < v < n and a finite weight)");
  }
  if (u < row_ || (u == row_ && have_prev_ && v <= prev_v_)) {
    throw Error(ErrorCode::kInvalidInput,
                "compressed csr " + path_ + ": edge (" + std::to_string(u) +
                    ", " + std::to_string(v) + ") out of canonical order at edge " +
                    std::to_string(m_));
  }
  if (m_ == std::numeric_limits<std::uint32_t>::max()) {
    throw Error(ErrorCode::kInvalidInput,
                "compressed csr " + path_ + ": more than 2^32-1 edges");
  }
  catch_up_rows(u);
  const std::size_t before = adj_buf_.size();
  varint_append_u32(adj_buf_, have_prev_ ? v - prev_v_ : v - u);
  adj_bytes_ += adj_buf_.size() - before;
  w_buf_.push_back(w);
  prev_v_ = v;
  have_prev_ = true;
  ++m_;
  if (w_buf_.size() >= kWriterBufEdges) {
    flush_bytes(adj_file_, adj_buf_.data(), adj_buf_.size(), path_);
    flush_bytes(w_file_, w_buf_.data(), w_buf_.size() * sizeof(Weight), path_);
    adj_buf_.clear();
    w_buf_.clear();
  }
}

EdgeId CompressedCsrWriter::finish() {
  if (finished_) {
    throw Error(ErrorCode::kInvalidInput,
                "compressed csr " + path_ + ": finish() called twice");
  }
  finished_ = true;
  flush_bytes(adj_file_, adj_buf_.data(), adj_buf_.size(), path_);
  flush_bytes(w_file_, w_buf_.data(), w_buf_.size() * sizeof(Weight), path_);
  adj_buf_.clear();
  w_buf_.clear();
  catch_up_rows(n_);

  std::ofstream os(path_, std::ios::binary | std::ios::trunc);
  if (!os) {
    throw Error(ErrorCode::kInvalidInput,
                "compressed csr " + path_ + ": cannot open for write");
  }
  const bool off64 = adj_bytes_ > std::numeric_limits<std::uint32_t>::max();
  const std::uint32_t flags = off64 ? kFlagByteOff64 : 0;
  const std::uint64_t m64 = m_;
  os.write(kMagic, 4);
  os.write(reinterpret_cast<const char*>(&kVersion), 4);
  os.write(reinterpret_cast<const char*>(&flags), 4);
  os.write(reinterpret_cast<const char*>(&n_), 4);
  os.write(reinterpret_cast<const char*>(&m64), 8);
  os.write(reinterpret_cast<const char*>(&adj_bytes_), 8);
  const char pad[8] = {};
  auto pad_to8 = [&](std::size_t written) {
    const std::size_t aligned = align8(written);
    if (aligned != written) {
      os.write(pad, static_cast<std::streamsize>(aligned - written));
    }
  };
  std::size_t sz = (std::size_t{n_} + 1) * 4;
  os.write(reinterpret_cast<const char*>(edge_off_.data()),
           static_cast<std::streamsize>(sz));
  pad_to8(sz);
  if (off64) {
    sz = (std::size_t{n_} + 1) * 8;
    os.write(reinterpret_cast<const char*>(byte_off_.data()),
             static_cast<std::streamsize>(sz));
  } else {
    std::vector<std::uint32_t> narrow(byte_off_.begin(), byte_off_.end());
    sz = narrow.size() * 4;
    os.write(reinterpret_cast<const char*>(narrow.data()),
             static_cast<std::streamsize>(sz));
  }
  pad_to8(sz);

  // Splice the side files in (sections already 8-byte aligned except the
  // adjacency tail, padded below).
  const auto splice = [&](std::FILE* f, std::uint64_t expect,
                          const char* what) {
    std::fflush(f);
    std::rewind(f);
    std::vector<char> buf(std::size_t{1} << 20);
    std::uint64_t copied = 0;
    for (;;) {
      const std::size_t got = std::fread(buf.data(), 1, buf.size(), f);
      if (got == 0) break;
      os.write(buf.data(), static_cast<std::streamsize>(got));
      copied += got;
    }
    if (copied != expect) {
      throw Error(ErrorCode::kInvalidInput,
                  "compressed csr " + path_ + ": " + what +
                      " side file short (" + std::to_string(copied) + " of " +
                      std::to_string(expect) + " bytes)");
    }
  };
  splice(adj_file_, adj_bytes_, "adjacency");
  pad_to8(adj_bytes_);
  splice(w_file_, sizeof(Weight) * std::uint64_t{m_}, "weight");
  if (!os) {
    throw Error(ErrorCode::kInvalidInput,
                "compressed csr " + path_ + ": write failed");
  }
  return m_;
}

}  // namespace smp::graph
