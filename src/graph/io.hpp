#pragma once

#include <iosfwd>
#include <string>

#include "graph/edge_list.hpp"

namespace smp::graph {

/// What readers do with duplicate parallel edges (same unordered endpoint
/// pair appearing more than once in a file).
///
/// The default, kCanonicalize, keeps only the ⟨weight, edge-id⟩-minimal
/// edge of each pair (see canonicalize_parallel_edges in graph/validate.hpp)
/// so a loaded graph is a deterministic function of the file contents — the
/// batch-dynamic subsystem resolves delete-by-endpoints trace operations
/// against exactly this canonical form.  kKeepAll preserves the file
/// verbatim (the MSF itself is unaffected either way: the shared total edge
/// order already breaks weight ties by input index).
enum class ParallelEdgePolicy {
  kCanonicalize,
  kKeepAll,
};

/// Text serialization in DIMACS-like format:
///
///   c <comment>
///   p edge <num_vertices> <num_edges>
///   e <u> <v> <weight>        (vertices are 1-based on disk)
///
/// Weights round-trip exactly (printed with max_digits10 precision).
void write_dimacs(std::ostream& os, const EdgeList& g);
void write_dimacs_file(const std::string& path, const EdgeList& g);

/// Parses the format above; throws std::runtime_error on malformed input.
/// The declared-edge-count check runs against the file *before* duplicate
/// canonicalization, so a canonicalized load can return fewer edges than
/// the header declares.
EdgeList read_dimacs(std::istream& is,
                     ParallelEdgePolicy policy = ParallelEdgePolicy::kCanonicalize);
EdgeList read_dimacs_file(const std::string& path,
                          ParallelEdgePolicy policy = ParallelEdgePolicy::kCanonicalize);

/// Compact binary serialization for large graphs (little-endian):
///
///   magic "SMPG" | u32 version | u32 num_vertices | u64 num_edges |
///   num_edges × { u32 u, u32 v, f64 w }
///
/// Roughly 6x smaller and an order of magnitude faster to parse than the
/// text format at the paper's 1M/20M scale.
void write_binary(std::ostream& os, const EdgeList& g);
void write_binary_file(const std::string& path, const EdgeList& g);
EdgeList read_binary(std::istream& is,
                     ParallelEdgePolicy policy = ParallelEdgePolicy::kCanonicalize);
EdgeList read_binary_file(const std::string& path,
                          ParallelEdgePolicy policy = ParallelEdgePolicy::kCanonicalize);

}  // namespace smp::graph
