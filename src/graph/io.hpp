#pragma once

#include <iosfwd>
#include <string>

#include "graph/edge_list.hpp"

namespace smp::graph {

/// Text serialization in DIMACS-like format:
///
///   c <comment>
///   p edge <num_vertices> <num_edges>
///   e <u> <v> <weight>        (vertices are 1-based on disk)
///
/// Weights round-trip exactly (printed with max_digits10 precision).
void write_dimacs(std::ostream& os, const EdgeList& g);
void write_dimacs_file(const std::string& path, const EdgeList& g);

/// Parses the format above; throws std::runtime_error on malformed input.
EdgeList read_dimacs(std::istream& is);
EdgeList read_dimacs_file(const std::string& path);

/// Compact binary serialization for large graphs (little-endian):
///
///   magic "SMPG" | u32 version | u32 num_vertices | u64 num_edges |
///   num_edges × { u32 u, u32 v, f64 w }
///
/// Roughly 6x smaller and an order of magnitude faster to parse than the
/// text format at the paper's 1M/20M scale.
void write_binary(std::ostream& os, const EdgeList& g);
void write_binary_file(const std::string& path, const EdgeList& g);
EdgeList read_binary(std::istream& is);
EdgeList read_binary_file(const std::string& path);

}  // namespace smp::graph
