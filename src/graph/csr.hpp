#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/edge_list.hpp"
#include "graph/types.hpp"

namespace smp::graph {

/// Cache-friendly adjacency arrays (CSR), the representation the paper
/// prefers over pointer-chasing adjacency lists [Park, Penner & Prasanna].
///
/// Every undirected edge appears as two directed arcs.  Each arc remembers
/// the index of the originating undirected edge (`arc_orig`) so that MSF
/// edges selected deep inside a contraction cascade can be reported in terms
/// of the caller's edge list.
class CsrGraph {
 public:
  CsrGraph() = default;

  /// Build from an edge list; O(n + m), two passes.
  explicit CsrGraph(const EdgeList& g);

  [[nodiscard]] VertexId num_vertices() const {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }
  [[nodiscard]] EdgeId num_arcs() const { return targets_.size(); }

  [[nodiscard]] std::size_t degree(VertexId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Arc range of v: parallel spans into targets/weights/orig ids.
  [[nodiscard]] std::span<const VertexId> neighbors(VertexId v) const {
    return {targets_.data() + offsets_[v], targets_.data() + offsets_[v + 1]};
  }
  [[nodiscard]] std::span<const Weight> weights(VertexId v) const {
    return {weights_.data() + offsets_[v], weights_.data() + offsets_[v + 1]};
  }
  [[nodiscard]] std::span<const EdgeId> origs(VertexId v) const {
    return {arc_orig_.data() + offsets_[v], arc_orig_.data() + offsets_[v + 1]};
  }

  [[nodiscard]] const std::vector<EdgeId>& offsets() const { return offsets_; }
  [[nodiscard]] const std::vector<VertexId>& targets() const { return targets_; }
  [[nodiscard]] const std::vector<Weight>& arc_weights() const { return weights_; }
  [[nodiscard]] const std::vector<EdgeId>& arc_origs() const { return arc_orig_; }

 private:
  std::vector<EdgeId> offsets_;  // n + 1
  std::vector<VertexId> targets_;
  std::vector<Weight> weights_;
  std::vector<EdgeId> arc_orig_;
};

}  // namespace smp::graph
