#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace smp::graph {

/// Read-only memory map of a whole file, the storage substrate under
/// CompressedCsr::open_file and the dynamic layer's edge slabs.  Every
/// failure mode — unopenable path, unstattable file, a map the kernel
/// refuses — surfaces as smp::Error{kInvalidInput} naming the path (and
/// size where it helps), never a crash; callers layer their own
/// format-level offset diagnostics on top.  Move-only; unmaps on
/// destruction.  A default-constructed instance is an empty map.
class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// Maps `path` read-only.  Throws smp::Error{kInvalidInput} on any
  /// failure.  A zero-length file maps to {nullptr, 0} successfully.
  [[nodiscard]] static MmapFile open(const std::string& path);

  [[nodiscard]] const std::uint8_t* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::string path_;
};

}  // namespace smp::graph
