#pragma once

#include <atomic>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"
#include "pprim/sample_sort.hpp"
#include "pprim/thread_team.hpp"

namespace smp::graph {

/// Flexible adjacency list (§2.3 of the paper).
///
/// Augments plain adjacency arrays by letting each *supervertex* hold a
/// linked list of adjacency arrays: contraction appends each member vertex's
/// original (immutable) adjacency array to its supervertex's list with O(1)
/// pointer operations, instead of sorting and copying edges.  Self-loops and
/// multi-edges are *not* removed — the find-min step filters them lazily
/// through the vertex → supervertex lookup table (`super_of`).
///
/// Because every original vertex contributes exactly one segment, the
/// segment list of a supervertex is simply the linked list of its member
/// vertices; each member's segment is its slice of the original CSR.
class FlexAdjList {
 public:
  /// Start state: every vertex is its own supervertex with one segment.
  explicit FlexAdjList(const CsrGraph& csr);

  /// Same, from bare adjacency offsets (n + 1 entries, caller keeps them
  /// alive) — the packed find-min path carries targets inside its key array
  /// and never materializes a full CsrGraph.
  FlexAdjList(VertexId n, std::span<const EdgeId> offsets);

  [[nodiscard]] VertexId num_super() const { return num_super_; }

  /// Current supervertex of an original vertex (the lookup table).
  [[nodiscard]] VertexId super_of(VertexId orig) const { return label_[orig]; }
  [[nodiscard]] std::span<const VertexId> labels() const { return label_; }

  /// Live-arc working set (packed-key find-min acceleration): for each
  /// original vertex x, only the arc slots in [csr.offsets()[x],
  /// live_ends()[x]) can still connect x's supervertex to another one.
  /// Initialized to the full slice; find-min block-compacts arcs out of the
  /// prefix once the labels prove them permanent supervertex self-loops
  /// (contraction only ever merges supervertices, so a dead arc stays dead).
  /// Contraction itself never touches the set — segments stay keyed by
  /// original vertex.  FindMinMode::kScan ignores it.
  [[nodiscard]] std::span<EdgeId> live_ends() { return live_end_; }
  [[nodiscard]] std::span<const EdgeId> live_ends() const { return live_end_; }

  /// Directed arcs still live across all vertices (Σ slice lengths).
  [[nodiscard]] EdgeId live_arcs() const;

  /// Visit every member (original vertex) of supervertex `s`.
  template <class Fn>
  void for_each_member(VertexId s, Fn&& fn) const {
    for (VertexId x = head_[s]; x != kInvalidVertex; x = next_[x]) fn(x);
  }

  /// Number of members of supervertex `s` (walks the list; for tests).
  [[nodiscard]] std::size_t member_count(VertexId s) const;

  /// Team-shared scratch for the in-region `contract` overload.  Grow-only
  /// across Borůvka iterations (supervertex counts only shrink).
  struct ContractScratch {
    std::vector<VertexId> order;
    std::vector<VertexId> group_start;
    std::vector<VertexId> new_head;
    std::vector<VertexId> new_tail;
    SampleSortScratch<VertexId> sort;
    std::atomic<std::size_t> chain_cursor{0};
  };

  /// compact-graph: merge supervertices according to `new_label`, which maps
  /// every current supervertex id to its new dense id in [0, new_n).
  ///
  /// Cost per the paper: one parallel sort of the current supervertices (to
  /// group those merging together), O(current n) pointer appends, and the
  /// lookup-table update — no edge is touched or copied.
  void contract(ThreadTeam& team, std::span<const VertexId> new_label, VertexId new_n);

  /// In-region variant: all team threads call it inside an open SPMD region
  /// with identical arguments; synchronizes via ctx.barrier() only, and the
  /// trailing barrier publishes the contracted state to every thread.
  void contract(TeamCtx& ctx, std::span<const VertexId> new_label, VertexId new_n,
                ContractScratch& scratch);

 private:
  std::span<const EdgeId> offsets_;  // n + 1 adjacency offsets (not owned)
  VertexId num_super_;
  std::vector<VertexId> label_;  // per original vertex
  std::vector<VertexId> head_;   // per supervertex: first member
  std::vector<VertexId> tail_;   // per supervertex: last member
  std::vector<VertexId> next_;   // per original vertex: next member in list
  std::vector<EdgeId> live_end_;  // per original vertex: end of live prefix
};

}  // namespace smp::graph
