#pragma once

#include <cstdint>
#include <limits>

namespace smp::graph {

using VertexId = std::uint32_t;
using EdgeId = std::uint64_t;
using Weight = double;

inline constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();

/// One undirected weighted edge.
struct WEdge {
  VertexId u = 0;
  VertexId v = 0;
  Weight w = 0;

  friend bool operator==(const WEdge&, const WEdge&) = default;
};

/// Total order on (weight, original-edge-id) pairs.
///
/// The paper's correctness proofs assume distinct edge weights (Appendix B).
/// We realize that assumption for arbitrary inputs by breaking weight ties
/// with the edge's index in the input edge list; every algorithm in this
/// repo — sequential and parallel — uses this same order, so they all
/// compute the *identical* spanning forest, which the tests exploit.
struct WeightOrder {
  Weight w;
  EdgeId orig;

  friend bool operator<(const WeightOrder& a, const WeightOrder& b) {
    if (a.w != b.w) return a.w < b.w;
    return a.orig < b.orig;
  }
  friend bool operator==(const WeightOrder&, const WeightOrder&) = default;
};

}  // namespace smp::graph
