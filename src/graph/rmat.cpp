#include <algorithm>
#include <stdexcept>
#include <vector>

#include "graph/generators.hpp"
#include "pprim/rng.hpp"

namespace smp::graph {

namespace {

/// One R-MAT edge draw: descend `scale` levels of the recursive quadrant
/// matrix, with light probability smoothing per level to avoid the
/// degenerate exact-self-similarity artifacts (standard practice).
std::pair<VertexId, VertexId> rmat_draw(int scale, double a, double b, double c,
                                        smp::Rng& rng) {
  std::uint64_t u = 0, v = 0;
  for (int level = 0; level < scale; ++level) {
    const double noise = 0.9 + 0.2 * rng.next_double();  // multiplicative ±10%
    const double aa = a * noise;
    const double bb = b * (2.0 - noise);
    const double cc = c * (2.0 - noise);
    const double r = rng.next_double() * (aa + bb + cc + (1.0 - a - b - c));
    u <<= 1;
    v <<= 1;
    if (r < aa) {
      // top-left quadrant: no bits set
    } else if (r < aa + bb) {
      v |= 1;
    } else if (r < aa + bb + cc) {
      u |= 1;
    } else {
      u |= 1;
      v |= 1;
    }
  }
  return {static_cast<VertexId>(u), static_cast<VertexId>(v)};
}

}  // namespace

EdgeList rmat_graph(int scale, EdgeId m, double a, double b, double c,
                    std::uint64_t seed) {
  if (scale < 1 || scale > 30) throw std::invalid_argument("rmat_graph: scale 1..30");
  if (a <= 0 || b < 0 || c < 0 || a + b + c >= 1.0) {
    throw std::invalid_argument("rmat_graph: need a>0, b,c>=0, a+b+c<1");
  }
  const auto n = static_cast<VertexId>(VertexId{1} << scale);
  const auto max_edges =
      static_cast<EdgeId>(n) * (static_cast<EdgeId>(n) - 1) / 2;
  if (m > max_edges / 2) {
    // The skewed distribution revisits hot pairs; demanding more than half
    // of all pairs makes the redraw loop pathological.
    throw std::invalid_argument("rmat_graph: m too large for this scale");
  }

  smp::Rng rng(seed);
  std::vector<std::uint64_t> keys;
  keys.reserve(m);
  while (keys.size() < m) {
    const EdgeId need = m - static_cast<EdgeId>(keys.size());
    for (EdgeId i = 0; i < need; ++i) {
      auto [u, v] = rmat_draw(scale, a, b, c, rng);
      if (u == v) continue;  // redraw self-loops via the top-up loop
      if (u > v) std::swap(u, v);
      keys.push_back((static_cast<std::uint64_t>(u) << 32) | v);
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  }

  EdgeList g(n);
  g.edges.reserve(m);
  for (const std::uint64_t k : keys) {
    g.add_edge(static_cast<VertexId>(k >> 32), static_cast<VertexId>(k & 0xFFFFFFFFu),
               rng.next_double());
  }
  return g;
}

EdgeList rmat_graph(int scale, EdgeId m, std::uint64_t seed) {
  return rmat_graph(scale, m, 0.57, 0.19, 0.19, seed);
}

}  // namespace smp::graph
