#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

#include "graph/types.hpp"

namespace smp::graph {

/// An undirected weighted graph as a flat list of edges (each stored once).
///
/// This is the neutral interchange representation: generators produce it,
/// the public MSF API consumes it, and the algorithms build their own
/// internal representations (directed edge list, adjacency arrays, flexible
/// adjacency list) from it.
struct EdgeList {
  VertexId num_vertices = 0;
  std::vector<WEdge> edges;

  EdgeList() = default;
  explicit EdgeList(VertexId n) : num_vertices(n) {}

  [[nodiscard]] EdgeId num_edges() const { return edges.size(); }

  void add_edge(VertexId u, VertexId v, Weight w) {
    assert(u < num_vertices && v < num_vertices && u != v);
    edges.push_back(WEdge{u, v, w});
  }

  [[nodiscard]] Weight total_weight() const {
    Weight s = 0;
    for (const auto& e : edges) s += e.w;
    return s;
  }
};

}  // namespace smp::graph
