#include "graph/transform.hpp"

#include <algorithm>

#include "seq/union_find.hpp"

namespace smp::graph {

EdgeList induced_subgraph(const EdgeList& g, const std::vector<bool>& keep,
                          std::vector<VertexId>* old_of_new) {
  std::vector<VertexId> new_id(g.num_vertices, kInvalidVertex);
  VertexId next = 0;
  for (VertexId v = 0; v < g.num_vertices; ++v) {
    if (keep[v]) new_id[v] = next++;
  }
  EdgeList out(next);
  if (old_of_new != nullptr) {
    old_of_new->clear();
    old_of_new->reserve(next);
    for (VertexId v = 0; v < g.num_vertices; ++v) {
      if (keep[v]) old_of_new->push_back(v);
    }
  }
  for (const auto& e : g.edges) {
    if (keep[e.u] && keep[e.v]) out.add_edge(new_id[e.u], new_id[e.v], e.w);
  }
  return out;
}

EdgeList largest_component(const EdgeList& g, std::vector<VertexId>* old_of_new) {
  seq::UnionFind uf(g.num_vertices);
  for (const auto& e : g.edges) uf.unite(e.u, e.v);
  std::vector<std::size_t> size(g.num_vertices, 0);
  for (VertexId v = 0; v < g.num_vertices; ++v) ++size[uf.find(v)];
  VertexId best_root = 0;
  for (VertexId v = 0; v < g.num_vertices; ++v) {
    if (size[v] > size[best_root]) best_root = v;
  }
  std::vector<bool> keep(g.num_vertices);
  for (VertexId v = 0; v < g.num_vertices; ++v) keep[v] = uf.find(v) == best_root;
  return induced_subgraph(g, keep, old_of_new);
}

EdgeList negate_weights(const EdgeList& g) {
  EdgeList out(g.num_vertices);
  out.edges.reserve(g.edges.size());
  for (const auto& e : g.edges) out.edges.push_back({e.u, e.v, -e.w});
  return out;
}

}  // namespace smp::graph
