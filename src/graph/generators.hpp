#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace smp::graph {

/// The sparse-graph families of §5.1 of the paper.  All generators are
/// deterministic under `seed` and produce edge weights that are distinct
/// under WeightOrder (random weights, ties broken by edge index).

/// Arbitrary random graph: m unique edges added to n vertices (the LEDA
/// construction), uniform random weights in [0, 1).
EdgeList random_graph(VertexId n, EdgeId m, std::uint64_t seed);

/// Regular 2D mesh: rows x cols grid, 4-neighbour connectivity, uniform
/// random weights.
EdgeList mesh2d(VertexId rows, VertexId cols, std::uint64_t seed);

/// "2D60": 2D mesh where each potential edge is present with probability
/// 0.6 (the DIMACS connected-components input family).
EdgeList mesh2d_p(VertexId rows, VertexId cols, double p, std::uint64_t seed);

/// "3D40": 3D mesh where each potential edge is present with probability 0.4.
EdgeList mesh3d_p(VertexId nx, VertexId ny, VertexId nz, double p, std::uint64_t seed);

/// Geometric graph (Moret & Shapiro): n points uniform in the unit square,
/// each vertex connected to its k nearest neighbours; symmetrized; weights
/// are Euclidean distances.
EdgeList geometric_knn(VertexId n, int k, std::uint64_t seed);

/// Chung–Condon structured graphs: degenerate inputs (already trees) with a
/// recursive structure that mirrors the Borůvka iteration.
///
///   str0: with n vertices, pairs form — vertex count exactly halves per
///         iteration (worst case in iteration count).
///   str1: with n vertices, chains of √n vertices form (monotone weights
///         along a chain make it contract fully in one iteration).
///   str2: with n vertices, n/2 form one chain and n/2 form pairs.
///   str3: with n vertices, groups of √n vertices form complete binary trees.
EdgeList structured_graph(int variant, VertexId n, std::uint64_t seed);

/// R-MAT power-law graph (Chakrabarti–Zhan–Faloutsos) — not in the paper,
/// but the standard skewed-degree workload of the studies that followed it
/// (GAP, PBBS/GBBS); included as an extension family.  `scale` gives
/// n = 2^scale vertices; exactly `m` distinct undirected non-loop edges are
/// produced (duplicates redrawn), with recursive quadrant probabilities
/// (a, b, c, 1−a−b−c) and uniform random weights.
EdgeList rmat_graph(int scale, EdgeId m, double a, double b, double c,
                    std::uint64_t seed);

/// R-MAT with the customary (0.57, 0.19, 0.19, 0.05) skew.
EdgeList rmat_graph(int scale, EdgeId m, std::uint64_t seed);

}  // namespace smp::graph
