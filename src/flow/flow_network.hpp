#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "graph/types.hpp"

namespace smp::flow {

using Cap = std::int64_t;

/// Directed flow network in residual-arc-pair form: arc 2i is the forward
/// copy of input edge i, arc 2i+1 its reverse; `rev(a) == a ^ 1`.  Residual
/// capacity lives directly on the arcs, so pushing flow is two updates.
///
/// §6 of the paper lists maximum flow among the problems its SMP techniques
/// should transfer to; this network plus the two solvers in this directory
/// are that substrate.
class FlowNetwork {
 public:
  explicit FlowNetwork(graph::VertexId n) : head_(n, kNone) {}

  [[nodiscard]] graph::VertexId num_vertices() const {
    return static_cast<graph::VertexId>(head_.size());
  }
  [[nodiscard]] std::size_t num_arcs() const { return to_.size(); }

  /// Adds a directed edge u→v with capacity `cap` (and an optional reverse
  /// capacity, e.g. for undirected networks).  Returns the forward arc id.
  std::uint32_t add_edge(graph::VertexId u, graph::VertexId v, Cap cap,
                         Cap rev_cap = 0) {
    assert(u < num_vertices() && v < num_vertices() && cap >= 0 && rev_cap >= 0);
    const auto a = static_cast<std::uint32_t>(to_.size());
    to_.push_back(v);
    residual_.push_back(cap);
    next_.push_back(head_[u]);
    head_[u] = a;
    to_.push_back(u);
    residual_.push_back(rev_cap);
    next_.push_back(head_[v]);
    head_[v] = a + 1;
    return a;
  }

  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

  [[nodiscard]] std::uint32_t first_arc(graph::VertexId v) const { return head_[v]; }
  [[nodiscard]] std::uint32_t next_arc(std::uint32_t a) const { return next_[a]; }
  [[nodiscard]] graph::VertexId arc_target(std::uint32_t a) const { return to_[a]; }
  [[nodiscard]] Cap residual(std::uint32_t a) const { return residual_[a]; }
  static constexpr std::uint32_t rev(std::uint32_t a) { return a ^ 1u; }

  /// Push `amount` along arc a (must not exceed its residual).
  void push(std::uint32_t a, Cap amount) {
    assert(amount >= 0 && amount <= residual_[a]);
    residual_[a] -= amount;
    residual_[rev(a)] += amount;
  }

  /// Flow currently on forward arc 2i = what its reverse has accumulated
  /// beyond the initial reverse capacity; valid for edges added with
  /// rev_cap = 0.
  [[nodiscard]] Cap flow_on(std::uint32_t forward_arc) const {
    return residual_[rev(forward_arc)];
  }

  /// Reset all residuals to the original capacities.
  void reset() {
    if (original_.empty()) return;
    residual_ = original_;
  }

  /// Snapshot capacities so reset() can restore them (call once, after
  /// building).
  void freeze() { original_ = residual_; }

 private:
  std::vector<std::uint32_t> head_;      // per vertex: first arc
  std::vector<graph::VertexId> to_;      // per arc
  std::vector<Cap> residual_;            // per arc
  std::vector<std::uint32_t> next_;      // per arc: next arc of same source
  std::vector<Cap> original_;
};

/// Maximum s–t flow via Dinic's algorithm: BFS level graph + blocking-flow
/// DFS with the current-arc optimization.  O(V^2 E) worst case, O(E sqrt(V))
/// on unit-capacity networks (bipartite matching).
Cap max_flow_dinic(FlowNetwork& net, graph::VertexId s, graph::VertexId t);

/// Maximum s–t flow via FIFO push–relabel with the gap heuristic and
/// periodic global relabeling; O(V^3), typically the fastest sequential
/// choice on hard instances.
Cap max_flow_push_relabel(FlowNetwork& net, graph::VertexId s, graph::VertexId t);

/// Returns the s-side of a minimum cut in the *residual* network (call after
/// a max-flow run): vertices reachable from s over positive-residual arcs.
std::vector<bool> min_cut_side(const FlowNetwork& net, graph::VertexId s);

}  // namespace smp::flow
