#include <limits>
#include <vector>

#include "flow/flow_network.hpp"

namespace smp::flow {

using graph::VertexId;

namespace {

/// Dinic state reused across phases.
struct DinicState {
  std::vector<std::uint32_t> level;
  std::vector<std::uint32_t> current;  // current-arc per vertex
  std::vector<VertexId> queue;

  explicit DinicState(VertexId n) : level(n), current(n), queue() {
    queue.reserve(n);
  }
};

constexpr std::uint32_t kUnreached = 0xFFFFFFFFu;

/// BFS from s over positive-residual arcs; true if t is reachable.
bool build_levels(const FlowNetwork& net, VertexId s, VertexId t, DinicState& st) {
  std::fill(st.level.begin(), st.level.end(), kUnreached);
  st.queue.clear();
  st.level[s] = 0;
  st.queue.push_back(s);
  for (std::size_t qi = 0; qi < st.queue.size(); ++qi) {
    const VertexId x = st.queue[qi];
    for (std::uint32_t a = net.first_arc(x); a != FlowNetwork::kNone;
         a = net.next_arc(a)) {
      const VertexId y = net.arc_target(a);
      if (net.residual(a) > 0 && st.level[y] == kUnreached) {
        st.level[y] = st.level[x] + 1;
        st.queue.push_back(y);
      }
    }
  }
  return st.level[t] != kUnreached;
}

/// Iterative blocking-flow DFS pushing up to `limit` from s to t.
Cap blocking_flow(FlowNetwork& net, VertexId s, VertexId t, DinicState& st) {
  Cap total = 0;
  // Path stack of arcs.
  std::vector<std::uint32_t> path;
  for (;;) {
    // Advance from the tip of the current path.
    const VertexId x = path.empty() ? s : net.arc_target(path.back());
    if (x == t) {
      // Found an augmenting path: push its bottleneck.
      Cap bottleneck = std::numeric_limits<Cap>::max();
      for (const std::uint32_t a : path) bottleneck = std::min(bottleneck, net.residual(a));
      for (const std::uint32_t a : path) net.push(a, bottleneck);
      total += bottleneck;
      // Retreat to before the first saturated arc.
      std::size_t cut = 0;
      while (cut < path.size() && net.residual(path[cut]) > 0) ++cut;
      path.resize(cut);
      continue;
    }
    // Scan x's current arc.
    std::uint32_t& a = st.current[x];
    while (a != FlowNetwork::kNone &&
           !(net.residual(a) > 0 &&
             st.level[net.arc_target(a)] == st.level[x] + 1)) {
      a = net.next_arc(a);
    }
    if (a == FlowNetwork::kNone) {
      // Dead end: retreat (or finish if at the source).
      if (path.empty()) break;
      st.level[x] = kUnreached;  // prune x for this phase
      path.pop_back();
    } else {
      path.push_back(a);
    }
  }
  return total;
}

}  // namespace

Cap max_flow_dinic(FlowNetwork& net, VertexId s, VertexId t) {
  if (s == t) return 0;
  DinicState st(net.num_vertices());
  Cap flow = 0;
  while (build_levels(net, s, t, st)) {
    for (VertexId v = 0; v < net.num_vertices(); ++v) st.current[v] = net.first_arc(v);
    flow += blocking_flow(net, s, t, st);
  }
  return flow;
}

std::vector<bool> min_cut_side(const FlowNetwork& net, VertexId s) {
  std::vector<bool> side(net.num_vertices(), false);
  std::vector<VertexId> stack{s};
  side[s] = true;
  while (!stack.empty()) {
    const VertexId x = stack.back();
    stack.pop_back();
    for (std::uint32_t a = net.first_arc(x); a != FlowNetwork::kNone;
         a = net.next_arc(a)) {
      const VertexId y = net.arc_target(a);
      if (net.residual(a) > 0 && !side[y]) {
        side[y] = true;
        stack.push_back(y);
      }
    }
  }
  return side;
}

}  // namespace smp::flow
