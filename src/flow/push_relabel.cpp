#include <deque>
#include <limits>
#include <vector>

#include "flow/flow_network.hpp"

namespace smp::flow {

using graph::VertexId;

namespace {

/// FIFO push–relabel with the gap heuristic and periodic global relabeling.
class PushRelabel {
 public:
  PushRelabel(FlowNetwork& net, VertexId s, VertexId t)
      : net_(net),
        s_(s),
        t_(t),
        n_(net.num_vertices()),
        height_(n_, 0),
        excess_(n_, 0),
        current_(n_, FlowNetwork::kNone),
        height_count_(2 * static_cast<std::size_t>(n_) + 1, 0),
        active_(),
        in_queue_(n_, false) {}

  Cap run() {
    // Saturate all source arcs.
    height_[s_] = n_;
    for (std::uint32_t a = net_.first_arc(s_); a != FlowNetwork::kNone;
         a = net_.next_arc(a)) {
      const Cap c = net_.residual(a);
      if (c > 0) {
        net_.push(a, c);
        excess_[net_.arc_target(a)] += c;
        excess_[s_] -= c;
        enqueue(net_.arc_target(a));
      }
    }
    global_relabel();
    for (VertexId v = 0; v < n_; ++v) ++height_count_[height_[v]];

    std::size_t work = 0;
    const std::size_t relabel_period = 8 * static_cast<std::size_t>(n_) + net_.num_arcs();
    while (!active_.empty()) {
      const VertexId v = active_.front();
      active_.pop_front();
      in_queue_[v] = false;
      work += discharge(v);
      if (work > relabel_period) {
        work = 0;
        std::fill(height_count_.begin(), height_count_.end(), 0);
        global_relabel();
        for (VertexId x = 0; x < n_; ++x) ++height_count_[height_[x]];
      }
    }
    return excess_[t_];
  }

 private:
  void enqueue(VertexId v) {
    if (v != s_ && v != t_ && !in_queue_[v] && excess_[v] > 0 &&
        height_[v] < 2 * n_) {
      in_queue_[v] = true;
      active_.push_back(v);
    }
  }

  /// Push from v while it has excess; relabel when no admissible arc is
  /// left.  Returns a work estimate for the global-relabel trigger.
  std::size_t discharge(VertexId v) {
    std::size_t work = 0;
    while (excess_[v] > 0) {
      if (current_[v] == FlowNetwork::kNone) {
        // Relabel: one above the lowest admissible neighbour.
        const std::uint32_t old_height = height_[v];
        std::uint32_t best = 2 * n_;
        for (std::uint32_t a = net_.first_arc(v); a != FlowNetwork::kNone;
             a = net_.next_arc(a)) {
          ++work;
          if (net_.residual(a) > 0) {
            best = std::min(best, height_[net_.arc_target(a)] + 1);
          }
        }
        // Gap heuristic: if v was the only vertex at its height, every
        // vertex above the gap is unreachable from t — lift them all.
        if (--height_count_[old_height] == 0 && old_height < n_) {
          for (VertexId x = 0; x < n_; ++x) {
            if (x != s_ && height_[x] > old_height &&
                height_[x] <= static_cast<std::uint32_t>(n_)) {
              --height_count_[height_[x]];
              height_[x] = n_ + 1;
              ++height_count_[height_[x]];
            }
          }
        }
        height_[v] = best;
        ++height_count_[best];
        if (best >= 2 * n_) break;  // v can never push again
        current_[v] = net_.first_arc(v);
      }
      std::uint32_t& a = current_[v];
      while (a != FlowNetwork::kNone) {
        ++work;
        const VertexId u = net_.arc_target(a);
        if (net_.residual(a) > 0 && height_[v] == height_[u] + 1) {
          const Cap amount = std::min(excess_[v], net_.residual(a));
          net_.push(a, amount);
          excess_[v] -= amount;
          excess_[u] += amount;
          enqueue(u);
          if (excess_[v] == 0) break;
        } else {
          a = net_.next_arc(a);
        }
      }
      if (excess_[v] > 0 && a == FlowNetwork::kNone) {
        continue;  // triggers a relabel at the loop top
      }
    }
    return work;
  }

  /// Exact heights = BFS distance to t in the residual graph (reverse arcs).
  void global_relabel() {
    std::fill(height_.begin(), height_.end(), 2 * n_);
    std::vector<VertexId> queue;
    queue.reserve(n_);
    height_[t_] = 0;
    queue.push_back(t_);
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      const VertexId x = queue[qi];
      for (std::uint32_t a = net_.first_arc(x); a != FlowNetwork::kNone;
           a = net_.next_arc(a)) {
        // Arc x→y exists; flow could move y→x if rev(a) has residual.
        const VertexId y = net_.arc_target(a);
        if (net_.residual(FlowNetwork::rev(a)) > 0 && height_[y] == 2 * n_ && y != s_) {
          height_[y] = height_[x] + 1;
          queue.push_back(y);
        }
      }
    }
    height_[s_] = n_;
    for (VertexId v = 0; v < n_; ++v) {
      current_[v] = net_.first_arc(v);
      enqueue(v);
    }
  }

  FlowNetwork& net_;
  VertexId s_, t_;
  std::uint32_t n_;
  std::vector<std::uint32_t> height_;
  std::vector<Cap> excess_;
  std::vector<std::uint32_t> current_;
  std::vector<std::uint32_t> height_count_;
  std::deque<VertexId> active_;
  std::vector<bool> in_queue_;
};

}  // namespace

Cap max_flow_push_relabel(FlowNetwork& net, VertexId s, VertexId t) {
  if (s == t) return 0;
  PushRelabel pr(net, s, t);
  return pr.run();
}

}  // namespace smp::flow
