#include "persist/wal.hpp"

#include <cstring>
#include <fstream>

#include "core/error.hpp"
#include "persist/crc32c.hpp"

namespace smp::persist {

namespace {

constexpr std::uint8_t kTypeBatch = 1;
constexpr std::uint8_t kTypeCompact = 2;
/// Sanity bound on one record: a coalesced group is at most a few MB of
/// edges; anything bigger in a length prefix is garbage, not a record.
constexpr std::uint32_t kMaxPayload = 1u << 30;

template <typename T>
void put(std::string& out, T v) {
  char buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  out.append(buf, sizeof v);
}

template <typename T>
[[nodiscard]] bool get(const std::string& buf, std::size_t& off, T* v) {
  if (off + sizeof *v > buf.size()) return false;
  std::memcpy(v, buf.data() + off, sizeof *v);
  off += sizeof *v;
  return true;
}

[[noreturn]] void corrupt(const std::string& path, std::uint64_t offset,
                          const std::string& why) {
  throw Error(ErrorCode::kInvalidInput,
              "corrupt WAL record in '" + path + "' at byte offset " +
                  std::to_string(offset) + ": " + why +
                  " (refusing to replay past it; restore from a snapshot or "
                  "truncate the log manually)");
}

}  // namespace

FsyncPolicy parse_fsync_policy(const std::string& s) {
  if (s == "always") return FsyncPolicy::kAlways;
  if (s == "interval") return FsyncPolicy::kInterval;
  if (s == "none") return FsyncPolicy::kNone;
  throw Error(ErrorCode::kInvalidInput,
              "unknown fsync policy '" + s + "' (valid: always interval none)");
}

std::string encode_record(const WalRecord& rec) {
  std::string payload;
  payload.reserve(32 + rec.insertions.size() * 16 + rec.deletions.size() * 8);
  put<std::uint8_t>(payload, rec.compact ? kTypeCompact : kTypeBatch);
  put<std::uint64_t>(payload, rec.lsn);
  put<std::uint32_t>(payload, static_cast<std::uint32_t>(rec.insertions.size()));
  put<std::uint32_t>(payload, static_cast<std::uint32_t>(rec.deletions.size()));
  put<std::uint32_t>(payload, static_cast<std::uint32_t>(rec.idem_ids.size()));
  for (const graph::WEdge& e : rec.insertions) {
    put<std::uint32_t>(payload, e.u);
    put<std::uint32_t>(payload, e.v);
    put<double>(payload, e.w);
  }
  for (const graph::EdgeId id : rec.deletions) put<std::uint64_t>(payload, id);
  for (const std::string& id : rec.idem_ids) {
    put<std::uint16_t>(payload, static_cast<std::uint16_t>(id.size()));
    payload += id;
  }

  std::string frame;
  frame.reserve(8 + payload.size());
  put<std::uint32_t>(frame, static_cast<std::uint32_t>(payload.size()));
  put<std::uint32_t>(frame, crc32c(payload.data(), payload.size()));
  frame += payload;
  return frame;
}

WalScan scan_wal(const std::string& path, std::uint64_t expected_lsn) {
  WalScan scan;
  std::string data;
  {
    std::ifstream is(path, std::ios::binary);
    if (!is) return scan;  // missing segment == empty segment
    data.assign(std::istreambuf_iterator<char>(is),
                std::istreambuf_iterator<char>());
  }

  std::size_t off = 0;
  while (off < data.size()) {
    const std::uint64_t record_start = off;
    std::uint32_t len = 0;
    std::uint32_t crc = 0;
    if (!get(data, off, &len) || !get(data, off, &crc)) {
      scan.torn_tail = true;  // header cut off mid-write
      break;
    }
    if (len > kMaxPayload) {
      corrupt(path, record_start, "implausible payload length " +
                                      std::to_string(len));
    }
    if (off + len > data.size()) {
      scan.torn_tail = true;  // payload cut off mid-write
      break;
    }
    const char* payload = data.data() + off;
    if (crc32c(payload, len) != crc) {
      // The whole frame is on disk, so this is a flipped bit, not a torn
      // append (a torn append leaves a short file, never a full bad frame).
      corrupt(path, record_start, "CRC32C mismatch");
    }

    const std::string body(payload, len);
    std::size_t p = 0;
    std::uint8_t type = 0;
    WalRecord rec;
    std::uint32_t n_ins = 0, n_del = 0, n_ids = 0;
    if (!get(body, p, &type) || !get(body, p, &rec.lsn) ||
        !get(body, p, &n_ins) || !get(body, p, &n_del) || !get(body, p, &n_ids)) {
      corrupt(path, record_start, "truncated record header inside payload");
    }
    if (type != kTypeBatch && type != kTypeCompact) {
      corrupt(path, record_start,
              "unknown record type " + std::to_string(type));
    }
    rec.compact = type == kTypeCompact;
    if (expected_lsn != 0 && rec.lsn != expected_lsn) {
      corrupt(path, record_start,
              rec.lsn < expected_lsn
                  ? "duplicate LSN " + std::to_string(rec.lsn) + " (expected " +
                        std::to_string(expected_lsn) + ")"
                  : "LSN gap: got " + std::to_string(rec.lsn) + ", expected " +
                        std::to_string(expected_lsn));
    }
    expected_lsn = rec.lsn + 1;
    rec.insertions.resize(n_ins);
    for (graph::WEdge& e : rec.insertions) {
      if (!get(body, p, &e.u) || !get(body, p, &e.v) || !get(body, p, &e.w)) {
        corrupt(path, record_start, "insertions overrun payload");
      }
    }
    rec.deletions.resize(n_del);
    for (graph::EdgeId& id : rec.deletions) {
      if (!get(body, p, &id)) {
        corrupt(path, record_start, "deletions overrun payload");
      }
    }
    rec.idem_ids.resize(n_ids);
    for (std::string& id : rec.idem_ids) {
      std::uint16_t id_len = 0;
      if (!get(body, p, &id_len) || p + id_len > body.size()) {
        corrupt(path, record_start, "idempotency ids overrun payload");
      }
      id.assign(body.data() + p, id_len);
      p += id_len;
    }
    if (p != body.size()) {
      corrupt(path, record_start, "trailing bytes inside payload");
    }

    off += len;
    scan.valid_bytes = off;
    scan.records.push_back(std::move(rec));
  }
  if (!scan.torn_tail) scan.valid_bytes = data.size();
  return scan;
}

}  // namespace smp::persist
