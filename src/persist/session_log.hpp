#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dynamic/edge_store.hpp"
#include "graph/types.hpp"
#include "persist/snapshot.hpp"
#include "persist/wal.hpp"

namespace smp::persist {

/// Process-wide persistence counters many SessionLogs can feed (relaxed
/// atomics; the serving metrics registry embeds one).
struct PersistCounters {
  std::atomic<std::uint64_t> wal_appends{0};
  std::atomic<std::uint64_t> wal_bytes{0};
  std::atomic<std::uint64_t> fsyncs{0};
  std::atomic<std::uint64_t> snapshots{0};
};

struct SessionLogOptions {
  FsyncPolicy fsync = FsyncPolicy::kInterval;
  /// Group-commit window for FsyncPolicy::kInterval: the flusher thread
  /// issues at most one fdatasync per interval, and every ack waits for the
  /// fsync covering its LSN.  5 ms keeps ack latency bounded while letting
  /// one fsync absorb every batch committed in the window.
  double fsync_interval_s = 0.005;
  /// Snapshot (and rotate the WAL) once the active segment exceeds this.
  std::uint64_t snapshot_wal_bytes = 64ull << 20;
  /// Additionally snapshot every N logged records (0 = size-based only).
  std::uint64_t snapshot_every_records = 0;
  /// Snapshot generations to keep; WAL segments older than the oldest
  /// retained generation are deleted with it.  Clamped to >= 1.
  int snapshot_retain = 2;
  /// Optional shared counters, bumped alongside the per-log stats().
  PersistCounters* counters = nullptr;
};

/// What recovery found in a session directory.  `store` + `forest` + `idem`
/// come from the newest loadable snapshot (identity state when none —
/// `have_snapshot` false — which only happens for a brand-new directory);
/// `tail` holds the WAL records past the snapshot, in LSN order, still to be
/// replayed through DynamicMsf::apply_batch.
struct RecoveredState {
  bool have_snapshot = false;
  std::uint64_t snapshot_lsn = 0;
  dynamic::EdgeStore store;
  std::vector<graph::EdgeId> forest;
  std::vector<std::pair<std::string, std::uint64_t>> idem;
  std::vector<WalRecord> tail;
  /// Clean-shutdown marker matched the newest snapshot and the tail is
  /// empty: replay (and the replay solve) can be skipped entirely.
  bool clean = false;
  /// A torn trailing record was found and truncated (crash mid-append).
  bool torn_tail_truncated = false;
  /// Non-fatal recovery events (an unloadable snapshot generation that was
  /// skipped and deleted, a stale marker) — surfaced in server logs.
  std::vector<std::string> warnings;
};

/// Durable write-ahead log + snapshot manager for ONE session directory.
///
/// Layout of `<dir>`:
///
///   snap-<16 hex lsn>.snap   snapshot generations (see snapshot.hpp)
///   wal-<16 hex lsn>.log     WAL segments; the name is the LSN of the first
///                            record the segment may hold (= the LSN of the
///                            snapshot that rotated it into existence, + 1)
///   CLEAN                    clean-shutdown marker (decimal snapshot LSN)
///
/// The constructor *is* recovery: it picks the newest loadable snapshot,
/// chain-validates every WAL segment past it (LSN-continuous, CRC-intact),
/// truncates a torn tail on the final segment, refuses mid-log corruption
/// with a diagnostic, and reopens the final segment for appending.
///
/// Threading: append / write_snapshot / mark_clean / snapshot_due must be
/// called from one thread at a time (the session's flush thread — the
/// serving layer already serializes them).  wait_durable, durable_lsn and
/// stats are safe from any thread; FsyncPolicy::kInterval runs a private
/// flusher thread.
class SessionLog {
 public:
  /// Recovers `dir` (created if absent) into `*out` and opens the log.
  /// Throws Error{kInvalidInput} on corruption recovery must not guess past.
  SessionLog(std::string dir, SessionLogOptions opts, RecoveredState* out);
  ~SessionLog();
  SessionLog(const SessionLog&) = delete;
  SessionLog& operator=(const SessionLog&) = delete;

  /// Appends one record (rec.lsn is assigned here), returning its LSN.  The
  /// write is in the page cache on return; durability is wait_durable's job.
  /// Crash points: persist.pre_append, persist.mid_append (frame half
  /// written), persist.post_append (written, not yet fsynced).
  std::uint64_t append(WalRecord rec);

  /// Blocks until `lsn` is durable under the configured policy (kAlways:
  /// already durable; kInterval: waits for the covering group fsync; kNone:
  /// returns immediately).  Crash point persist.pre_ack fires on the way
  /// out — durable on disk, caller not yet told.
  void wait_durable(std::uint64_t lsn);

  /// True when enough WAL accumulated since the last snapshot that the next
  /// quiescent moment should snapshot (size or record-count trigger).
  [[nodiscard]] bool snapshot_due() const;

  /// Writes a snapshot of the given session state at last_lsn(), rotates to
  /// a fresh WAL segment, applies snapshot retention and deletes WAL
  /// segments no retained generation needs.  The caller guarantees `store`/
  /// `forest` reflect every record up to last_lsn() applied.
  void write_snapshot(
      const dynamic::EdgeStore& store,
      const std::vector<graph::EdgeId>& forest,
      const std::vector<std::pair<std::string, std::uint64_t>>& idem);

  /// Graceful-shutdown epilogue: snapshots any unsnapshotted tail, then
  /// writes the CLEAN marker so the next startup can skip replay.  The
  /// marker is deleted (by recovery) the moment the directory is reopened.
  void mark_clean(
      const dynamic::EdgeStore& store,
      const std::vector<graph::EdgeId>& forest,
      const std::vector<std::pair<std::string, std::uint64_t>>& idem);

  [[nodiscard]] std::uint64_t last_lsn() const {
    return last_lsn_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t durable_lsn() const;
  [[nodiscard]] std::uint64_t last_snapshot_lsn() const {
    return last_snapshot_lsn_;
  }
  [[nodiscard]] FsyncPolicy policy() const { return opts_.fsync; }

  struct Stats {
    std::uint64_t appends = 0;
    std::uint64_t append_bytes = 0;
    std::uint64_t fsyncs = 0;
    std::uint64_t snapshots = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  void open_segment(std::uint64_t base);
  /// fdatasync the active segment and advance durable_lsn_ to everything
  /// appended before the call.
  void fsync_now();
  void flusher_main();
  /// Deletes WAL segments entirely covered by the oldest retained snapshot.
  void trim_segments();

  std::string dir_;
  SessionLogOptions opts_;

  // Owned by the appending thread.
  std::uint64_t segment_base_ = 1;
  std::uint64_t segment_bytes_ = 0;
  std::uint64_t records_since_snapshot_ = 0;
  std::uint64_t last_snapshot_lsn_ = 0;

  std::atomic<std::uint64_t> last_lsn_{0};

  /// Serializes fdatasync against segment rotation's close/swap of fd_.
  /// Lock order where both are held: fsync_mu_ before mu_.
  std::mutex fsync_mu_;
  int fd_ = -1;  ///< active segment; guarded by fsync_mu_ for the swap

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t durable_lsn_ = 0;
  bool stop_ = false;
  Stats stats_;
  std::thread flusher_;
};

}  // namespace smp::persist
