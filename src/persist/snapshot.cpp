#include "persist/snapshot.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>

#include "core/error.hpp"
#include "persist/crc32c.hpp"
#include "pprim/fault.hpp"

namespace smp::persist {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[8] = {'S', 'M', 'P', 'S', 'N', 'A', 'P', '1'};
constexpr std::uint32_t kEndMagic = 0x50414E53u;  // "SNAP"

template <typename T>
void put(std::string& out, T v) {
  char buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  out.append(buf, sizeof v);
}

template <typename T>
T take(const std::string& buf, std::size_t& off, const std::string& path,
       const char* what) {
  if (off + sizeof(T) > buf.size()) {
    throw Error(ErrorCode::kInvalidInput,
                "snapshot '" + path + "': truncated " + what);
  }
  T v;
  std::memcpy(&v, buf.data() + off, sizeof v);
  off += sizeof v;
  return v;
}

[[noreturn]] void sys_fail(const std::string& what, const std::string& path) {
  throw Error(ErrorCode::kInvalidInput,
              what + " '" + path + "': " + std::strerror(errno));
}

/// write() + fsync() + close(), throwing on any failure.  `split_at` > 0
/// interposes the mid-snapshot fault point after that many bytes, so an
/// armed crash leaves a half-written tmp file on disk.
void write_file_durably(const std::string& path, const std::string& data,
                        std::size_t split_at) {
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) sys_fail("cannot create", path);
  const auto write_all = [&](const char* p, std::size_t n) {
    while (n > 0) {
      const ssize_t w = ::write(fd, p, n);
      if (w < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        sys_fail("write to", path);
      }
      p += w;
      n -= static_cast<std::size_t>(w);
    }
  };
  split_at = std::min(split_at, data.size());
  write_all(data.data(), split_at);
  fault_point("persist.mid_snapshot");
  write_all(data.data() + split_at, data.size() - split_at);
  if (::fsync(fd) != 0) {
    ::close(fd);
    sys_fail("fsync", path);
  }
  ::close(fd);
}

void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) sys_fail("cannot open directory", dir);
  if (::fsync(fd) != 0) {
    ::close(fd);
    sys_fail("fsync directory", dir);
  }
  ::close(fd);
}

/// snap-<16 hex digits>.snap -> lsn, or nullopt for anything else.
std::optional<std::uint64_t> parse_snapshot_name(const std::string& name) {
  if (name.size() != 4 + 1 + 16 + 5 || name.rfind("snap-", 0) != 0 ||
      name.compare(name.size() - 5, 5, ".snap") != 0) {
    return std::nullopt;
  }
  std::uint64_t lsn = 0;
  for (std::size_t i = 5; i < 5 + 16; ++i) {
    const char c = name[i];
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return std::nullopt;
    }
    lsn = (lsn << 4) | static_cast<std::uint64_t>(digit);
  }
  return lsn;
}

}  // namespace

std::string snapshot_path(const std::string& dir, std::uint64_t lsn) {
  char name[32];
  std::snprintf(name, sizeof name, "snap-%016" PRIx64 ".snap", lsn);
  return dir + "/" + name;
}

void write_snapshot_file(
    const std::string& dir, std::uint64_t lsn, const dynamic::EdgeStore& store,
    const std::vector<graph::EdgeId>& forest,
    const std::vector<std::pair<std::string, std::uint64_t>>& idem) {
  std::string data(kMagic, sizeof kMagic);
  put<std::uint64_t>(data, lsn);
  store.serialize(data);
  put<std::uint64_t>(data, forest.size());
  for (const graph::EdgeId id : forest) put<std::uint64_t>(data, id);
  put<std::uint32_t>(data, static_cast<std::uint32_t>(idem.size()));
  for (const auto& [id, id_lsn] : idem) {
    put<std::uint16_t>(data, static_cast<std::uint16_t>(id.size()));
    data += id;
    put<std::uint64_t>(data, id_lsn);
  }
  put<std::uint32_t>(data, crc32c(data.data(), data.size()));
  put<std::uint32_t>(data, kEndMagic);

  const std::string final_path = snapshot_path(dir, lsn);
  const std::string tmp_path = final_path + ".tmp";
  write_file_durably(tmp_path, data, data.size() / 2);
  fault_point("persist.mid_rename");
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    sys_fail("rename snapshot into", final_path);
  }
  // The rename is only durable once the directory entry is: without this a
  // power cut can resurrect the old directory state and lose the snapshot.
  fsync_dir(dir);
}

SnapshotBody load_snapshot_file(const std::string& path) {
  std::string data;
  {
    std::ifstream is(path, std::ios::binary);
    if (!is) {
      throw Error(ErrorCode::kInvalidInput,
                  "snapshot '" + path + "': cannot open");
    }
    data.assign(std::istreambuf_iterator<char>(is),
                std::istreambuf_iterator<char>());
  }
  if (data.size() < sizeof kMagic + 8 + 8) {
    throw Error(ErrorCode::kInvalidInput,
                "snapshot '" + path + "': too short (" +
                    std::to_string(data.size()) + " bytes)");
  }
  if (std::memcmp(data.data(), kMagic, sizeof kMagic) != 0) {
    throw Error(ErrorCode::kInvalidInput,
                "snapshot '" + path + "': bad magic");
  }
  {
    std::size_t toff = data.size() - 8;
    const auto crc = take<std::uint32_t>(data, toff, path, "trailer");
    const auto end = take<std::uint32_t>(data, toff, path, "trailer");
    if (end != kEndMagic) {
      throw Error(ErrorCode::kInvalidInput,
                  "snapshot '" + path + "': missing end marker (truncated?)");
    }
    if (crc32c(data.data(), data.size() - 8) != crc) {
      throw Error(ErrorCode::kInvalidInput,
                  "snapshot '" + path + "': CRC32C mismatch");
    }
  }

  SnapshotBody body;
  std::size_t off = sizeof kMagic;
  body.lsn = take<std::uint64_t>(data, off, path, "lsn");
  std::size_t consumed = 0;
  body.store = dynamic::EdgeStore::restore(
      reinterpret_cast<const unsigned char*>(data.data()) + off,
      data.size() - 8 - off, &consumed);
  off += consumed;
  const auto n_forest = take<std::uint64_t>(data, off, path, "forest count");
  if (n_forest > (data.size() - off) / 8) {
    throw Error(ErrorCode::kInvalidInput,
                "snapshot '" + path + "': forest count overruns the file");
  }
  body.forest.reserve(static_cast<std::size_t>(n_forest));
  for (std::uint64_t i = 0; i < n_forest; ++i) {
    body.forest.push_back(take<std::uint64_t>(data, off, path, "forest id"));
  }
  const auto n_idem = take<std::uint32_t>(data, off, path, "idem count");
  body.idem.reserve(n_idem);
  for (std::uint32_t i = 0; i < n_idem; ++i) {
    const auto len = take<std::uint16_t>(data, off, path, "idem id");
    if (off + len > data.size() - 8) {
      throw Error(ErrorCode::kInvalidInput,
                  "snapshot '" + path + "': idempotency id overruns the file");
    }
    std::string id(data.data() + off, len);
    off += len;
    const auto lsn = take<std::uint64_t>(data, off, path, "idem lsn");
    body.idem.emplace_back(std::move(id), lsn);
  }
  if (off != data.size() - 8) {
    throw Error(ErrorCode::kInvalidInput,
                "snapshot '" + path + "': trailing bytes before the trailer");
  }
  return body;
}

std::vector<std::uint64_t> list_snapshots(const std::string& dir) {
  std::vector<std::uint64_t> lsns;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const auto lsn = parse_snapshot_name(entry.path().filename().string());
    if (lsn) lsns.push_back(*lsn);
  }
  std::sort(lsns.rbegin(), lsns.rend());
  return lsns;
}

void retain_snapshots(const std::string& dir, int keep) {
  const std::vector<std::uint64_t> lsns = list_snapshots(dir);
  for (std::size_t i = static_cast<std::size_t>(std::max(1, keep));
       i < lsns.size(); ++i) {
    std::error_code ec;
    fs::remove(snapshot_path(dir, lsns[i]), ec);
  }
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("snap-", 0) == 0 &&
        name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      std::error_code rm;
      fs::remove(entry.path(), rm);
    }
  }
}

}  // namespace smp::persist
