#include "persist/crc32c.hpp"

#include <array>

namespace smp::persist {

namespace {

struct Tables {
  std::array<std::array<std::uint32_t, 256>, 4> t;

  Tables() {
    constexpr std::uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? (c >> 1) ^ kPoly : c >> 1;
      }
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFFu];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFFu];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFFu];
    }
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t size, std::uint32_t crc) {
  const auto& t = tables().t;
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  while (size >= 4) {
    crc ^= static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
    crc = t[3][crc & 0xFFu] ^ t[2][(crc >> 8) & 0xFFu] ^
          t[1][(crc >> 16) & 0xFFu] ^ t[0][crc >> 24];
    p += 4;
    size -= 4;
  }
  while (size-- > 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFFu];
  }
  return ~crc;
}

}  // namespace smp::persist
