#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "graph/types.hpp"

namespace smp::persist {

/// When an acknowledged write must actually be on disk.
enum class FsyncPolicy {
  kAlways,    ///< fdatasync before every ack — strongest, slowest
  kInterval,  ///< group commit: a flusher thread fsyncs at most once per
              ///< interval; acks wait for the covering fsync (default)
  kNone,      ///< ack after the page-cache write; durability is best-effort
};

[[nodiscard]] constexpr std::string_view to_string(FsyncPolicy p) {
  switch (p) {
    case FsyncPolicy::kAlways:
      return "always";
    case FsyncPolicy::kInterval:
      return "interval";
    case FsyncPolicy::kNone:
      return "none";
  }
  return "?";
}

/// Parses "always" / "interval" / "none"; throws Error{kInvalidInput}.
[[nodiscard]] FsyncPolicy parse_fsync_policy(const std::string& s);

/// One logged mutation of a session.  `compact` records carry no payload —
/// they mark the point where the store dropped its tombstones, so replaying
/// them reproduces the same store-id renumbering the live service performed.
/// Batch records hold the *resolved* coalesced group exactly as it went
/// into DynamicMsf::apply_batch (insert edges in arrival order, deletions
/// as canonical store ids), plus the idempotency ids the batch committed.
struct WalRecord {
  std::uint64_t lsn = 0;
  bool compact = false;
  std::vector<graph::WEdge> insertions;
  std::vector<graph::EdgeId> deletions;
  std::vector<std::string> idem_ids;
};

/// Serializes `rec` as one framed WAL record:
///
///   [u32 payload_len][u32 crc32c(payload)][payload]
///   payload = [u8 type][u64 lsn][u32 n_ins][u32 n_del][u32 n_ids]
///             n_ins * (u32 u, u32 v, f64 w)  n_del * (u64 id)
///             n_ids * (u16 len, bytes)
///
/// Little-endian throughout (the only byte order this repo targets).
[[nodiscard]] std::string encode_record(const WalRecord& rec);

/// Result of scanning one WAL segment file.
struct WalScan {
  std::vector<WalRecord> records;
  /// Byte offset of the first invalid byte — where a torn tail starts, or
  /// the file size when the segment is fully valid.
  std::uint64_t valid_bytes = 0;
  /// True when trailing bytes formed an incomplete record (a crash mid
  /// append): the tail is safe to truncate at `valid_bytes`.
  bool torn_tail = false;
};

/// Scans a segment file, validating framing, CRC and LSN continuity
/// (`expected_lsn` is the LSN the first record must carry; pass 0 to accept
/// any start).  An *incomplete* trailing record — header or payload cut off
/// by the end of the file — is a torn tail: scanning stops cleanly with
/// `torn_tail = true`.  A *complete* record whose CRC mismatches, whose
/// type is unknown, or whose LSN breaks the sequence is corruption, not a
/// tear, and throws Error{kInvalidInput} with the file offset — recovery
/// must refuse to guess past it.  A missing or zero-length file is a valid
/// empty segment.
[[nodiscard]] WalScan scan_wal(const std::string& path,
                               std::uint64_t expected_lsn);

}  // namespace smp::persist
