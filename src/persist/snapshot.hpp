#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "dynamic/edge_store.hpp"
#include "graph/types.hpp"

namespace smp::persist {

/// Everything a snapshot file captures: the commit LSN it is consistent
/// with, the full EdgeStore (live + tombstoned slots, so store ids are
/// stable across the round trip), the committed forest, and the session's
/// idempotency-id window (oldest first) so deduplication survives restarts.
struct SnapshotBody {
  std::uint64_t lsn = 0;
  dynamic::EdgeStore store;
  std::vector<graph::EdgeId> forest;
  std::vector<std::pair<std::string, std::uint64_t>> idem;
};

/// File layout:
///
///   "SMPSNAP1"  u64 lsn
///   EdgeStore::serialize bytes
///   u64 n_forest  n_forest * (u64 id)
///   u32 n_idem    n_idem * (u16 len, bytes, u64 lsn)
///   trailer: u32 crc32c(everything above)  u32 0x50414E53 ("SNAP")
///
/// The trailer makes "file complete and intact" a single check: a crash mid
/// write leaves either no file (we write to snap-*.tmp first) or a .tmp the
/// loader never considers; a flipped bit fails the CRC.

[[nodiscard]] std::string snapshot_path(const std::string& dir,
                                        std::uint64_t lsn);

/// Serializes a snapshot to `snapshot_path(dir, lsn)` via tmp file, fsync,
/// atomic rename, directory fsync.  Fault points `persist.mid_snapshot`
/// (half the body written) and `persist.mid_rename` (tmp durable, final
/// name absent) mark the crash windows the chaos harness drills.
void write_snapshot_file(
    const std::string& dir, std::uint64_t lsn, const dynamic::EdgeStore& store,
    const std::vector<graph::EdgeId>& forest,
    const std::vector<std::pair<std::string, std::uint64_t>>& idem);

/// Loads + fully validates one snapshot file.  Throws Error{kInvalidInput}
/// on a missing, truncated, or checksum-failing file.
[[nodiscard]] SnapshotBody load_snapshot_file(const std::string& path);

/// LSNs of the snapshot generations present in `dir`, newest first.
[[nodiscard]] std::vector<std::uint64_t> list_snapshots(const std::string& dir);

/// Unlinks all but the newest `keep` snapshot generations, plus any stale
/// snap-*.tmp leftovers from interrupted writes.
void retain_snapshots(const std::string& dir, int keep);

}  // namespace smp::persist
