#include "persist/session_log.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>

#include "core/error.hpp"
#include "pprim/fault.hpp"

namespace smp::persist {

namespace fs = std::filesystem;

namespace {

constexpr const char* kCleanMarker = "CLEAN";

[[noreturn]] void sys_fail(const std::string& what, const std::string& path) {
  throw Error(ErrorCode::kInvalidInput,
              what + " '" + path + "': " + std::strerror(errno));
}

std::string wal_path(const std::string& dir, std::uint64_t base) {
  char name[32];
  std::snprintf(name, sizeof name, "wal-%016" PRIx64 ".log", base);
  return dir + "/" + name;
}

/// wal-<16 hex digits>.log -> base lsn, or nullopt for anything else.
std::optional<std::uint64_t> parse_segment_name(const std::string& name) {
  if (name.size() != 3 + 1 + 16 + 4 || name.rfind("wal-", 0) != 0 ||
      name.compare(name.size() - 4, 4, ".log") != 0) {
    return std::nullopt;
  }
  std::uint64_t base = 0;
  for (std::size_t i = 4; i < 4 + 16; ++i) {
    const char c = name[i];
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return std::nullopt;
    }
    base = (base << 4) | static_cast<std::uint64_t>(digit);
  }
  return base;
}

/// Segment base LSNs present in `dir`, ascending.
std::vector<std::uint64_t> list_segments(const std::string& dir) {
  std::vector<std::uint64_t> bases;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const auto base = parse_segment_name(entry.path().filename().string());
    if (base) bases.push_back(*base);
  }
  std::sort(bases.begin(), bases.end());
  return bases;
}

void write_all(int fd, const char* p, std::size_t n, const std::string& path) {
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      sys_fail("write to WAL", path);
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) sys_fail("cannot open directory", dir);
  if (::fsync(fd) != 0) {
    ::close(fd);
    sys_fail("fsync directory", dir);
  }
  ::close(fd);
}

}  // namespace

SessionLog::SessionLog(std::string dir, SessionLogOptions opts,
                       RecoveredState* out)
    : dir_(std::move(dir)), opts_(opts) {
  if (opts_.snapshot_retain < 1) opts_.snapshot_retain = 1;
  fs::create_directories(dir_);
  RecoveredState st;

  // ---- Clean-shutdown marker: read, then unlink immediately — it attests
  // to the directory state at shutdown, not to anything we do next. ----
  std::uint64_t marker_lsn = 0;
  bool have_marker = false;
  {
    const std::string marker = dir_ + "/" + kCleanMarker;
    std::ifstream is(marker);
    if (is) {
      have_marker = static_cast<bool>(is >> marker_lsn);
      is.close();
      std::error_code ec;
      fs::remove(marker, ec);
      fsync_dir(dir_);
    }
  }

  // ---- Newest loadable snapshot; unloadable generations are proven bad
  // (complete .snap files failing validation), so delete them rather than
  // let retention ever prefer them over an older good one. ----
  for (const std::uint64_t lsn : list_snapshots(dir_)) {
    const std::string path = snapshot_path(dir_, lsn);
    try {
      SnapshotBody body = load_snapshot_file(path);
      st.have_snapshot = true;
      st.snapshot_lsn = body.lsn;
      st.store = std::move(body.store);
      st.forest = std::move(body.forest);
      st.idem = std::move(body.idem);
      break;
    } catch (const Error& e) {
      st.warnings.push_back(std::string("skipping snapshot generation: ") +
                            e.what());
      std::error_code ec;
      fs::remove(path, ec);
    }
  }

  // ---- Chain-validate the WAL segments past the snapshot. ----
  const std::vector<std::uint64_t> bases = list_segments(dir_);
  if (!st.have_snapshot && !bases.empty()) {
    throw Error(ErrorCode::kInvalidInput,
                "session directory '" + dir_ +
                    "' has WAL segments but no loadable snapshot: the vertex "
                    "count is unrecoverable (every session writes an initial "
                    "snapshot at open)");
  }
  // Segments fully covered by the snapshot need no replay; start from the
  // newest base <= snapshot_lsn + 1 and skip records the snapshot contains.
  std::size_t first = 0;
  for (std::size_t i = 0; i < bases.size(); ++i) {
    if (bases[i] <= st.snapshot_lsn + 1) first = i;
  }
  std::uint64_t expected = 0;
  std::uint64_t active_base = st.snapshot_lsn + 1;
  std::uint64_t active_valid = 0;
  bool active_exists = false;
  for (std::size_t i = first; i < bases.size(); ++i) {
    const std::uint64_t base = bases[i];
    const std::string path = wal_path(dir_, base);
    if (expected == 0) {
      if (base > st.snapshot_lsn + 1) {
        throw Error(ErrorCode::kInvalidInput,
                    "WAL segment gap in '" + dir_ + "': snapshot covers lsn " +
                        std::to_string(st.snapshot_lsn) +
                        " but the oldest segment starts at lsn " +
                        std::to_string(base) +
                        " (records in between are missing)");
      }
      expected = base;
    } else if (base != expected) {
      throw Error(ErrorCode::kInvalidInput,
                  "WAL segment gap in '" + dir_ + "': segment '" + path +
                      "' starts at lsn " + std::to_string(base) +
                      " but the previous segment ended at lsn " +
                      std::to_string(expected - 1));
    }
    WalScan scan = scan_wal(path, base);
    if (scan.torn_tail && i + 1 != bases.size()) {
      throw Error(ErrorCode::kInvalidInput,
                  "corrupt WAL in '" + dir_ + "': segment '" + path +
                      "' has a torn record at byte " +
                      std::to_string(scan.valid_bytes) +
                      " but later segments exist — a crash tears only the "
                      "final segment (refusing to replay past it)");
    }
    for (WalRecord& rec : scan.records) {
      expected = rec.lsn + 1;
      if (rec.lsn > st.snapshot_lsn) st.tail.push_back(std::move(rec));
    }
    if (i + 1 == bases.size()) {
      active_base = base;
      active_valid = scan.valid_bytes;
      active_exists = true;
      st.torn_tail_truncated = scan.torn_tail;
    }
  }

  const std::uint64_t last = expected == 0 ? st.snapshot_lsn : expected - 1;
  last_lsn_.store(last, std::memory_order_release);
  last_snapshot_lsn_ = st.snapshot_lsn;
  durable_lsn_ = last;  // everything recovery just read back is on disk
  st.clean = have_marker && marker_lsn == st.snapshot_lsn && st.tail.empty();
  if (have_marker && !st.clean) {
    st.warnings.push_back("stale clean-shutdown marker (lsn " +
                          std::to_string(marker_lsn) +
                          ") ignored; replaying the WAL tail");
  }

  // ---- Truncate a torn tail durably *before* appending after it, so a
  // second crash cannot interleave old torn bytes with a new record. ----
  if (active_exists && st.torn_tail_truncated) {
    const std::string path = wal_path(dir_, active_base);
    const int tfd = ::open(path.c_str(), O_WRONLY);
    if (tfd < 0) sys_fail("cannot reopen WAL segment", path);
    if (::ftruncate(tfd, static_cast<off_t>(active_valid)) != 0 ||
        ::fdatasync(tfd) != 0) {
      ::close(tfd);
      sys_fail("truncate torn tail of", path);
    }
    ::close(tfd);
  }

  open_segment(active_base);
  segment_bytes_ = active_valid;
  records_since_snapshot_ = st.tail.size();

  if (opts_.fsync == FsyncPolicy::kInterval) {
    flusher_ = std::thread([this] { flusher_main(); });
  }
  *out = std::move(st);
}

SessionLog::~SessionLog() {
  if (flusher_.joinable()) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    flusher_.join();
  }
  // Best-effort final sync: a non-clean teardown (error path) still leaves
  // every appended record durable.
  if (opts_.fsync != FsyncPolicy::kNone &&
      durable_lsn() < last_lsn_.load(std::memory_order_acquire)) {
    try {
      fsync_now();
    } catch (const Error&) {
      // Destructor: nothing to do but leave the records to the page cache.
    }
  }
  if (fd_ >= 0) ::close(fd_);
}

void SessionLog::open_segment(std::uint64_t base) {
  const std::string path = wal_path(dir_, base);
  fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
  if (fd_ < 0) sys_fail("cannot open WAL segment", path);
  fsync_dir(dir_);  // the segment file itself must survive a crash
  segment_base_ = base;
}

std::uint64_t SessionLog::append(WalRecord rec) {
  rec.lsn = last_lsn_.load(std::memory_order_relaxed) + 1;
  const std::string frame = encode_record(rec);
  const std::string path = wal_path(dir_, segment_base_);
  fault_point("persist.pre_append");
  // Two write() calls so the mid-append crash point sits between them and a
  // kill there leaves exactly the torn-tail shape recovery truncates.
  const std::size_t half = frame.size() / 2;
  write_all(fd_, frame.data(), half, path);
  fault_point("persist.mid_append");
  write_all(fd_, frame.data() + half, frame.size() - half, path);
  fault_point("persist.post_append");
  segment_bytes_ += frame.size();
  ++records_since_snapshot_;
  last_lsn_.store(rec.lsn, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.appends;
    stats_.append_bytes += frame.size();
    if (opts_.fsync == FsyncPolicy::kNone) durable_lsn_ = rec.lsn;
  }
  if (opts_.counters != nullptr) {
    opts_.counters->wal_appends.fetch_add(1, std::memory_order_relaxed);
    opts_.counters->wal_bytes.fetch_add(frame.size(),
                                        std::memory_order_relaxed);
  }
  if (opts_.fsync == FsyncPolicy::kAlways) fsync_now();
  return rec.lsn;
}

void SessionLog::fsync_now() {
  const std::uint64_t target = last_lsn_.load(std::memory_order_acquire);
  {
    std::lock_guard<std::mutex> fsync_lk(fsync_mu_);
    if (fd_ >= 0 && ::fdatasync(fd_) != 0) {
      sys_fail("fdatasync WAL segment", wal_path(dir_, segment_base_));
    }
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    // Only `target` is credited: writes racing the fdatasync may or may not
    // have made it, so their ack keeps waiting for the next sync.
    durable_lsn_ = std::max(durable_lsn_, target);
    ++stats_.fsyncs;
  }
  if (opts_.counters != nullptr) {
    opts_.counters->fsyncs.fetch_add(1, std::memory_order_relaxed);
  }
  cv_.notify_all();
}

void SessionLog::flusher_main() {
  const auto interval = std::chrono::duration<double>(opts_.fsync_interval_s);
  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_) {
    cv_.wait_for(lk, interval);
    if (stop_) break;
    if (durable_lsn_ >= last_lsn_.load(std::memory_order_acquire)) continue;
    lk.unlock();
    fsync_now();
    lk.lock();
  }
}

void SessionLog::wait_durable(std::uint64_t lsn) {
  if (opts_.fsync == FsyncPolicy::kInterval) {
    bool need_inline = false;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] { return durable_lsn_ >= lsn || stop_; });
      need_inline = durable_lsn_ < lsn;
    }
    if (need_inline) fsync_now();  // flusher stopped under us: sync inline
  }
  // kAlways synced inline in append(); kNone acks from the page cache.
  fault_point("persist.pre_ack");
}

bool SessionLog::snapshot_due() const {
  if (records_since_snapshot_ == 0) return false;
  if (segment_bytes_ >= opts_.snapshot_wal_bytes) return true;
  return opts_.snapshot_every_records > 0 &&
         records_since_snapshot_ >= opts_.snapshot_every_records;
}

void SessionLog::write_snapshot(
    const dynamic::EdgeStore& store, const std::vector<graph::EdgeId>& forest,
    const std::vector<std::pair<std::string, std::uint64_t>>& idem) {
  const std::uint64_t lsn = last_lsn_.load(std::memory_order_acquire);
  write_snapshot_file(dir_, lsn, store, forest, idem);

  if (segment_base_ != lsn + 1) {
    const std::string path = wal_path(dir_, lsn + 1);
    const int nfd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
    if (nfd < 0) sys_fail("cannot open WAL segment", path);
    fsync_dir(dir_);
    int old;
    {
      std::lock_guard<std::mutex> fsync_lk(fsync_mu_);
      old = fd_;
      fd_ = nfd;
    }
    if (old >= 0) ::close(old);
    segment_base_ = lsn + 1;
    segment_bytes_ = 0;
  }
  records_since_snapshot_ = 0;
  last_snapshot_lsn_ = lsn;
  {
    std::lock_guard<std::mutex> lk(mu_);
    // The snapshot *is* the durable copy of every record it covers, so it
    // doubles as a group commit for any ack still waiting below `lsn`.
    durable_lsn_ = std::max(durable_lsn_, lsn);
    ++stats_.snapshots;
  }
  if (opts_.counters != nullptr) {
    opts_.counters->snapshots.fetch_add(1, std::memory_order_relaxed);
  }
  cv_.notify_all();

  retain_snapshots(dir_, opts_.snapshot_retain);
  trim_segments();
}

void SessionLog::mark_clean(
    const dynamic::EdgeStore& store, const std::vector<graph::EdgeId>& forest,
    const std::vector<std::pair<std::string, std::uint64_t>>& idem) {
  if (last_lsn_.load(std::memory_order_acquire) > last_snapshot_lsn_) {
    write_snapshot(store, forest, idem);
  }
  const std::string marker = dir_ + "/" + kCleanMarker;
  const int fd = ::open(marker.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) sys_fail("cannot create clean marker", marker);
  const std::string text = std::to_string(last_snapshot_lsn_) + "\n";
  write_all(fd, text.data(), text.size(), marker);
  if (::fsync(fd) != 0) {
    ::close(fd);
    sys_fail("fsync clean marker", marker);
  }
  ::close(fd);
  fsync_dir(dir_);
}

std::uint64_t SessionLog::durable_lsn() const {
  std::lock_guard<std::mutex> lk(mu_);
  return durable_lsn_;
}

SessionLog::Stats SessionLog::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void SessionLog::trim_segments() {
  const std::vector<std::uint64_t> snaps = list_snapshots(dir_);
  if (snaps.empty()) return;
  const std::uint64_t oldest = snaps.back();  // list is newest-first
  const std::vector<std::uint64_t> bases = list_segments(dir_);
  // Keep the newest segment starting at or before oldest+1 (it holds the
  // oldest retained snapshot's first tail record) and everything after it.
  std::size_t keep_from = 0;
  for (std::size_t i = 0; i < bases.size(); ++i) {
    if (bases[i] <= oldest + 1) keep_from = i;
  }
  for (std::size_t i = 0; i < keep_from; ++i) {
    std::error_code ec;
    fs::remove(wal_path(dir_, bases[i]), ec);
  }
}

}  // namespace smp::persist
