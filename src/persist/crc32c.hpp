#pragma once

#include <cstddef>
#include <cstdint>

namespace smp::persist {

/// CRC32C (Castagnoli, reflected polynomial 0x82F63B78) — the checksum
/// framing every WAL record and snapshot body.  Software slicing-by-4;
/// `crc` chains across calls (pass the previous return value), starting
/// from 0 for a fresh message.
[[nodiscard]] std::uint32_t crc32c(const void* data, std::size_t size,
                                   std::uint32_t crc = 0);

}  // namespace smp::persist
