#include <vector>

#include "graph/types.hpp"
#include "seq/seq_msf.hpp"
#include "seq/union_find.hpp"

namespace smp::seq {

using graph::EdgeId;
using graph::EdgeList;
using graph::kInvalidEdge;
using graph::MsfResult;
using graph::VertexId;
using graph::WeightOrder;

MsfResult boruvka_msf(const EdgeList& g) {
  MsfResult res;
  const VertexId n = g.num_vertices;
  if (n == 0) return res;

  // Live edges as indices into g.edges; self-loops (within a component) are
  // filtered out after each iteration, so total work is O(m log n).
  std::vector<EdgeId> live(g.edges.size());
  for (EdgeId i = 0; i < g.edges.size(); ++i) live[i] = i;

  UnionFind uf(n);
  std::vector<EdgeId> best(n, kInvalidEdge);  // indexed by component root

  while (!live.empty()) {
    // find-min: cheapest edge leaving each component.
    bool any = false;
    for (const EdgeId i : live) {
      const auto& e = g.edges[i];
      const VertexId ru = uf.find(e.u);
      const VertexId rv = uf.find(e.v);
      if (ru == rv) continue;
      const WeightOrder key{e.w, i};
      for (const VertexId r : {ru, rv}) {
        if (best[r] == kInvalidEdge ||
            key < WeightOrder{g.edges[best[r]].w, best[r]}) {
          best[r] = i;
          any = true;
        }
      }
    }
    if (!any) break;

    // connect-components: contract every chosen edge.  Gather the chosen set
    // *before* uniting (roots move as unions happen); an edge chosen by both
    // endpoints' components is recorded once because the second unite fails.
    for (VertexId v = 0; v < n; ++v) {
      const EdgeId i = best[v];
      if (i == kInvalidEdge) continue;
      const auto& e = g.edges[i];
      if (uf.unite(e.u, e.v)) {
        res.edges.push_back(e);
        res.edge_ids.push_back(i);
        res.total_weight += e.w;
      }
    }

    // compact-graph: drop intra-component edges; reset per-root candidates.
    std::vector<EdgeId> next;
    next.reserve(live.size());
    for (const EdgeId i : live) {
      const auto& e = g.edges[i];
      if (uf.find(e.u) != uf.find(e.v)) next.push_back(i);
    }
    live.swap(next);
    for (auto& b : best) b = kInvalidEdge;
  }

  res.num_trees = n - res.edges.size();
  return res;
}

}  // namespace smp::seq
