#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

namespace smp::seq {

/// d-ary min-heap over items identified by dense ids 0..n-1 with
/// decrease-key — the heap behind both sequential Prim and each processor's
/// private heap in MST-BC (Alg. 2 of the paper uses heap_insert /
/// heap_extract_min / heap_decrease_key on exactly this structure).
///
/// `Arity` trades comparisons for memory locality: wider nodes mean shorter
/// sift-up paths (decrease-key heavy workloads like Prim) at the cost of
/// more comparisons per sift-down; see bench_ablation_heap.
///
/// `Key` must be strict-weak-ordered by `Less`.
template <class Key, class Less = std::less<Key>, unsigned Arity = 2>
class IndexedHeap {
  static_assert(Arity >= 2, "a heap needs at least two children per node");
 public:
  explicit IndexedHeap(std::uint32_t capacity, Less less = Less())
      : pos_(capacity, kAbsent), less_(less) {}

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] bool contains(std::uint32_t id) const { return pos_[id] != kAbsent; }

  [[nodiscard]] const Key& key_of(std::uint32_t id) const {
    assert(contains(id));
    return heap_[pos_[id]].key;
  }

  /// Insert a new id (must not be present).
  void push(std::uint32_t id, const Key& key) {
    assert(!contains(id));
    heap_.push_back(Node{key, id});
    pos_[id] = static_cast<std::uint32_t>(heap_.size() - 1);
    sift_up(heap_.size() - 1);
  }

  /// Lower the key of a present id; no-op if the new key is not smaller.
  bool decrease(std::uint32_t id, const Key& key) {
    assert(contains(id));
    const std::uint32_t i = pos_[id];
    if (!less_(key, heap_[i].key)) return false;
    heap_[i].key = key;
    sift_up(i);
    return true;
  }

  /// Insert or decrease, whichever applies.
  void push_or_decrease(std::uint32_t id, const Key& key) {
    if (contains(id)) {
      decrease(id, key);
    } else {
      push(id, key);
    }
  }

  struct Entry {
    std::uint32_t id;
    Key key;
  };

  /// Remove and return the minimum element.
  Entry pop() {
    assert(!heap_.empty());
    Entry top{heap_[0].id, heap_[0].key};
    pos_[top.id] = kAbsent;
    if (heap_.size() > 1) {
      heap_[0] = heap_.back();
      pos_[heap_[0].id] = 0;
      heap_.pop_back();
      sift_down(0);
    } else {
      heap_.pop_back();
    }
    return top;
  }

  /// Drop all contents (capacity retained).
  void clear() {
    for (const auto& nd : heap_) pos_[nd.id] = kAbsent;
    heap_.clear();
  }

 private:
  static constexpr std::uint32_t kAbsent = 0xFFFFFFFFu;

  struct Node {
    Key key;
    std::uint32_t id;
  };

  void sift_up(std::size_t i) {
    Node nd = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / Arity;
      if (!less_(nd.key, heap_[parent].key)) break;
      heap_[i] = heap_[parent];
      pos_[heap_[i].id] = static_cast<std::uint32_t>(i);
      i = parent;
    }
    heap_[i] = nd;
    pos_[nd.id] = static_cast<std::uint32_t>(i);
  }

  void sift_down(std::size_t i) {
    Node nd = heap_[i];
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first = Arity * i + 1;
      if (first >= n) break;
      const std::size_t last = std::min(first + Arity, n);
      std::size_t child = first;
      for (std::size_t c = first + 1; c < last; ++c) {
        if (less_(heap_[c].key, heap_[child].key)) child = c;
      }
      if (!less_(heap_[child].key, nd.key)) break;
      heap_[i] = heap_[child];
      pos_[heap_[i].id] = static_cast<std::uint32_t>(i);
      i = child;
    }
    heap_[i] = nd;
    pos_[nd.id] = static_cast<std::uint32_t>(i);
  }

  std::vector<Node> heap_;
  std::vector<std::uint32_t> pos_;
  Less less_;
};

}  // namespace smp::seq
